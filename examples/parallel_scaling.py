#!/usr/bin/env python
"""Parallel TBMD scaling study — the paper's headline evaluation.

Calibrates the replicated-data cost model with measured per-phase step
timings on this host, then projects strong/weak scaling onto 1994-class
machine models (Intel Paragon / Delta / CM-5 presets) and a modern node:

* the Amdahl wall of the replicated eigensolver,
* the distributed block-Jacobi crossover,
* weak scaling and the O(N³) argument.

Run:  python examples/parallel_scaling.py
"""


from repro.bench import print_table
from repro.parallel import (
    MachineSpec, ReplicatedDataModel, calibrate_step, strong_scaling,
    weak_scaling,
)
from repro.parallel.scaling import serial_fraction_estimate
from repro.tb import GSPSilicon

PROCS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def main():
    print("calibrating per-phase cost coefficients on this host...")
    cal = calibrate_step(GSPSilicon(), sizes=(1, 2), repeats=2)
    print(f"  effective host rate : {cal.host_flops:.3g} flop/s")
    print(f"  pairs per atom      : {cal.pairs_per_atom:.1f}")

    for machine in (MachineSpec.paragon(), MachineSpec.modern()):
        model = ReplicatedDataModel(cal, machine)
        n = 216
        s_frac = serial_fraction_estimate(model, n)
        rows_rep = strong_scaling(model, n, PROCS, diag="replicated")
        rows_dist = strong_scaling(model, n, PROCS, diag="distributed")
        print_table(
            f"strong scaling on {machine.name!r}, N = {n} Si atoms "
            f"(serial diag fraction {s_frac:.2f})",
            ["P", "t_rep (s)", "S_rep", "t_dist (s)", "S_dist"],
            [[p, a["time"], a["speedup"], b["time"], b["speedup"]]
             for p, a, b in zip(PROCS, rows_rep, rows_dist)],
            float_fmt="{:.4g}")

    model = ReplicatedDataModel(cal, MachineSpec.paragon())
    weak = weak_scaling(model, 32, PROCS[:7], diag="distributed")
    print_table(
        "weak scaling on 'paragon', 32 atoms/processor (distributed diag)",
        ["P", "N", "t (s)", "efficiency"],
        [[r["nproc"], r["natoms"], r["time"], r["efficiency"]] for r in weak],
        float_fmt="{:.4g}")

    print("\nReading the tables: replicated diagonalisation caps the "
          "speedup at 1/serial-fraction (Amdahl); the distributed Jacobi "
          "pays ~10× flops but divides by P, overtaking at moderate P. "
          "Weak-scaling efficiency decays ~P² — the O(N³) wall that "
          "motivated the linear-scaling methods of the later 1990s.")


if __name__ == "__main__":
    main()

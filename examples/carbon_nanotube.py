#!/usr/bin/env python
"""Application workload: relax and anneal an open carbon nanotube.

The workload class the TBMD engine was built for (and that the
boron-nanotube literature later ran at scale): a finite open-ended
(10,0) zig-zag tube with a frozen base ring, described by the
Xu–Wang–Chan–Ho carbon model.

1. build the tube and freeze the bottom ring (the "held" end),
2. CG-relax the open edge,
3. anneal at increasing temperatures with the 0.5 K/fs ramp protocol,
4. track the pentagon/hexagon/heptagon census — the edge-reconstruction
   diagnostic of the tube-closure studies.

Run:  python examples/carbon_nanotube.py          (~3-4 min)
      python examples/carbon_nanotube.py --fast
"""

import argparse

from repro.analysis import bond_statistics
from repro.analysis.coordination import undercoordinated_atoms
from repro.analysis.rings import count_polygons
from repro.geometry import nanotube
from repro.md import MDDriver, NoseHooverChain, maxwell_boltzmann_velocities
from repro.md.ramps import anneal_protocol
from repro.relax import conjugate_gradient
from repro.tb import TBCalculator, XuCarbon


def census(tube, label):
    p5, p6, p7 = count_polygons(tube, 1.75)
    stats = bond_statistics(tube, 1.75)
    dangling = len(undercoordinated_atoms(tube, 1.75, target=3))
    print(f"{label:<28} pentagons={p5:2d} hexagons={p6:3d} heptagons={p7:2d} "
          f"under-coordinated={dangling:3d} "
          f"<bond>={stats['mean_bond_length']:.3f} Å")


def main(fast: bool = False):
    cells = 2 if fast else 3
    hold = 120 if fast else 400
    temps = [1000.0, 2000.0] if fast else [1000.0, 2000.0, 2500.0]

    tube = nanotube(10, 0, cells=cells, periodic=False)
    z = tube.positions[:, 2]
    tube.fixed[z < z.min() + 0.4] = True
    print(f"(10,0) zig-zag tube: {len(tube)} C atoms, "
          f"{int(tube.fixed.sum())} frozen base atoms\n")
    census(tube, "as built")

    calc = TBCalculator(XuCarbon())
    res = conjugate_gradient(tube, calc, fmax=0.05, max_steps=500)
    print(f"\nCG relaxation: {res}")
    census(tube, "relaxed")

    maxwell_boltzmann_velocities(tube, temps[0], seed=3)
    nhc = NoseHooverChain(dt=1.0, temperature=temps[0], tau=40.0)
    md = MDDriver(tube, calc, nhc)

    print(f"\nannealing ladder {temps} K "
          f"(0.5 K/fs ramps, {hold} fs holds)...")
    def report(stage, t, data):
        if stage == "sampled":
            census(tube, f"after {hold} fs at {t:.0f} K")

    anneal_protocol(md, temperatures=temps, hold_steps=hold,
                    equilibrate_steps=hold // 4, rate=0.5,
                    stage_callback=report)

    print("\nInterpretation: at 1000 K the hexagonal network is static; "
          "edge rings begin to break/reconstruct (pentagons, chains) only "
          "above ~2000 K — the onset sequence of the classic tube-closure "
          "simulations.")


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--fast", action="store_true")
    main(**vars(ap.parse_args()))

#!/usr/bin/env python
"""Vibrational analysis: phonon DOS of crystalline silicon from the VACF.

Runs a low-temperature NVE trajectory of a Si supercell and Fourier-
transforms the velocity autocorrelation function — the cheap phonon
spectrum MD codes report.  Crystalline silicon's spectrum spans up to
~16 THz (the optical phonon), with acoustic weight at low frequency.

Run:  python examples/vibrational_analysis.py      (~1-2 min)
"""

import numpy as np

from repro.analysis import phonon_dos, velocity_autocorrelation
from repro.analysis.vacf import dos_cutoff
from repro.geometry import bulk_silicon, supercell
from repro.md import (
    MDDriver, TrajectoryRecorder, VelocityVerlet, maxwell_boltzmann_velocities,
)
from repro.tb import GSPSilicon, TBCalculator
from repro.utils.tables import sparkline


def main():
    atoms = supercell(bulk_silicon(), 2)
    maxwell_boltzmann_velocities(atoms, 300.0, seed=11)
    calc = TBCalculator(GSPSilicon())

    rec = TrajectoryRecorder()
    md = MDDriver(atoms, calc, VelocityVerlet(dt=1.0), observers=[rec])
    print(f"running {len(atoms)}-atom NVE trajectory (1200 fs)...")
    md.run(1200)

    vel = rec.trajectory.velocities()
    vacf = velocity_autocorrelation(vel, max_lag=400)
    freq, dos = phonon_dos(vel, dt_fs=1.0, max_lag=400)

    keep = freq < 25.0
    # the short-trajectory noise floor pollutes a global cutoff; report the
    # band top within the physical window at a robust threshold
    cutoff = dos_cutoff(freq[keep], dos[keep], threshold=0.3)
    print(f"\nVACF   : {sparkline(vacf)}")
    print(f"DOS    : {sparkline(dos[keep])}   (0 → 25 THz)")
    print(f"band top (30% threshold): {cutoff:.1f} THz "
          "(silicon optical phonon: ~15.5; GSP runs stiff)")
    peak = freq[keep][np.argmax(dos[keep])]
    print(f"dominant peak   : {peak:.1f} THz")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Electronic structure: silicon bands and the graphene Dirac point.

Demonstrates the k-resolved layer of the TB engine:

* diamond-silicon band structure along L–Γ–X with the GSP model
  (indirect-gap semiconductor),
* graphene bands through the folded K point with the XWCH carbon model
  (the Dirac crossing).

Run:  python examples/band_structure.py
"""

import numpy as np

from repro.geometry import bulk_silicon, graphene_sheet
from repro.tb import GSPSilicon, XuCarbon
from repro.tb.bands import band_gap_along_path, band_structure
from repro.tb.kpoints import FCC_POINTS, kpath
from repro.utils.tables import sparkline


def silicon_bands():
    at = bulk_silicon()
    kpts, dist, ticks = kpath(FCC_POINTS, ["L", "G", "X"], n_per_segment=16)
    bands = band_structure(at, GSPSilicon(), kpts)
    info = band_gap_along_path(bands, n_electrons=32.0)

    print("=== GSP silicon, L–Γ–X ===")
    print(f"valence-band max : {info['vbm']:8.3f} eV")
    print(f"conduction min   : {info['cbm']:8.3f} eV")
    print(f"indirect gap     : {info['indirect_gap']:8.3f} eV "
          "(GSP: ~1.2; expt: 1.17)")
    print(f"direct gap       : {info['direct_gap']:8.3f} eV")
    n_occ = 16
    print("top valence band :", sparkline(bands[:, n_occ - 1]))
    print("bottom conduction:", sparkline(bands[:, n_occ]))


def graphene_bands():
    g = graphene_sheet(1, 1)
    # Γ → folded K (0, 1/3) → zone edge, in the rectangular 4-atom cell
    ky = np.sort(np.append(np.linspace(0.0, 0.5, 41), 1.0 / 3.0))
    kpts = np.stack([np.zeros_like(ky), ky, np.zeros_like(ky)], axis=1)
    bands = band_structure(g, XuCarbon(), kpts)
    n_occ = 8
    gap = bands[:, n_occ] - bands[:, n_occ - 1]

    print("\n=== XWCH graphene, Γ → Y (through the folded K point) ===")
    print(f"minimum π-π* separation: {gap.min():.4f} eV "
          f"at k_y = {ky[np.argmin(gap)]:.3f} (Dirac point at 1/3)")
    print("π  band:", sparkline(bands[:, n_occ - 1]))
    print("π* band:", sparkline(bands[:, n_occ]))
    assert gap.min() < 0.05


if __name__ == "__main__":
    silicon_bands()
    graphene_bands()

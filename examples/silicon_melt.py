#!/usr/bin/env python
"""Melt-and-analyse: liquid silicon with NVT tight-binding MD.

The classic liquid-Si workflow of 1990s TBMD papers:

1. superheat a diamond-Si supercell with a Nosé–Hoover chain thermostat
   (Fermi smearing on — liquid silicon is a metal),
2. cool to the sampling temperature and equilibrate,
3. measure g(r), bond angles, coordination and the diffusion constant.

Run:  python examples/silicon_melt.py          (~2-3 min on one core)
      python examples/silicon_melt.py --fast   (shorter, noisier)
"""

import argparse


from repro.analysis import (
    angle_distribution, mean_squared_displacement, radial_distribution,
)
from repro.analysis.msd import diffusion_coefficient
from repro.analysis.rdf import coordination_from_rdf, first_peak
from repro.geometry import bulk_silicon, rattle, supercell
from repro.md import (
    MDDriver, NoseHooverChain, ThermoLog, TrajectoryRecorder,
    maxwell_boltzmann_velocities,
)
from repro.tb import GSPSilicon, TBCalculator
from repro.units import KB
from repro.utils.tables import sparkline


def main(fast: bool = False):
    melt_steps = 150 if fast else 300
    prod_steps = 200 if fast else 400
    t_melt, t_sample = 5500.0, 3500.0

    atoms = rattle(supercell(bulk_silicon(), 2), 0.3, seed=7)
    maxwell_boltzmann_velocities(atoms, t_melt, seed=7)
    calc = TBCalculator(GSPSilicon(), kT=KB * t_sample)

    log = ThermoLog()
    md = MDDriver(atoms, calc,
                  NoseHooverChain(dt=1.0, temperature=t_melt, tau=40.0),
                  observers=[log])
    print(f"melting {len(atoms)} Si atoms at {t_melt:.0f} K "
          f"({melt_steps} fs)...")
    md.run(melt_steps)

    print(f"cooling to {t_sample:.0f} K and equilibrating...")
    md.integrator.target_temperature = t_sample
    md.run(melt_steps // 2)

    rec = TrajectoryRecorder()
    md.add_observer(rec, interval=10)
    print(f"production run ({prod_steps} fs)...")
    md.run(prod_steps)
    print(f"temperature trace: {sparkline(log.temperature)}")

    # --- structural analysis -------------------------------------------------
    frames = [rec.trajectory.atoms_at(i) for i in range(len(rec.trajectory))]
    r, g = radial_distribution(frames[3:], r_max=5.5, nbins=110)
    peak = first_peak(r, g, r_window=(2.0, 3.0))
    density = len(atoms) / atoms.cell.volume
    coord = coordination_from_rdf(r, g, density, r_min=3.1)
    ang, adf = angle_distribution(frames[-1], r_cut=3.1, nbins=60)

    pos = rec.trajectory.positions()
    msd = mean_squared_displacement(pos, origins=4)
    times = rec.trajectory.times() - rec.trajectory.times()[0]
    d_coeff = diffusion_coefficient(times, msd, fit_fraction=(0.3, 0.9))

    print("\n--- liquid structure ---")
    print(f"g(r) first peak     : {peak:.2f} Å   (liquid Si: 2.4-2.5)")
    print(f"coordination (<3.1Å): {coord:.2f}     (crystal: 4, liquid: >4)")
    print(f"g(r):  {sparkline(g)}")
    print(f"ADF :  {sparkline(adf)}  (flat-ish = liquid; crystal peaks at 109°)")
    print(f"D ≈ {d_coeff * 0.1:.2e} cm²/s  (ab-initio l-Si: ~1e-4)")


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--fast", action="store_true")
    main(**vars(ap.parse_args()))

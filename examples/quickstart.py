#!/usr/bin/env python
"""Quickstart: tight-binding energetics and a short NVE run on silicon.

Covers the core public API in ~40 lines:

1. build a diamond-silicon supercell,
2. attach the Goodwin–Skinner–Pettifor TB calculator,
3. evaluate energy / forces / stress / gap,
4. run 100 fs of microcanonical MD and watch energy conservation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.geometry import bulk_silicon, supercell
from repro.md import MDDriver, ThermoLog, VelocityVerlet, maxwell_boltzmann_velocities
from repro.tb import GSPSilicon, TBCalculator
from repro.utils.tables import sparkline


def main():
    # --- structure + calculator --------------------------------------------
    atoms = supercell(bulk_silicon(), 2)          # 64 Si atoms, PBC
    calc = TBCalculator(GSPSilicon())
    print(calc.model.describe())

    res = calc.compute(atoms)
    print(f"\n{len(atoms)} atoms, {res['n_orbitals']} orbitals")
    print(f"total energy      : {res['energy']:12.4f} eV "
          f"({res['energy'] / len(atoms):.4f} eV/atom)")
    print(f"band / repulsive  : {res['band_energy']:12.4f} / "
          f"{res['repulsive_energy']:.4f} eV")
    print(f"HOMO-LUMO gap (Γ) : {res['gap']:12.4f} eV")
    print(f"pressure          : {res['pressure_gpa']:12.4f} GPa")
    print(f"max |force|       : {np.abs(res['forces']).max():12.2e} eV/Å "
          "(zero by symmetry)")

    # --- 100 fs of NVE dynamics ------------------------------------------------
    maxwell_boltzmann_velocities(atoms, 600.0, seed=42)
    log = ThermoLog()
    md = MDDriver(atoms, calc, VelocityVerlet(dt=1.0), observers=[log])
    md.run(100)

    drift = log.conserved_drift()
    print("\nNVE, 100 fs @ dt = 1 fs from 600 K")
    print(f"temperature trace : {sparkline(log.temperature)}")
    print(f"⟨T⟩ = {np.mean(log.temperature):.0f} K "
          f"(equipartition halves the initial 600 K)")
    print(f"conserved-energy drift: {drift:.2e} (relative) "
          f"{'✓ < 1e-4' if drift < 1e-4 else '✗'}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""O(N) TBMD on a large silicon supercell.

Runs the full linear-scaling pipeline — sparse Hamiltonian,
localization regions, Fermi-operator expansion in each region,
Hellmann–Feynman forces from core density rows — on a 512-atom diamond
Si supercell, cross-checks it against exact diagonalisation, and then
takes a few NVE steps to show the O(N) engine driving plain
:class:`~repro.md.driver.MDDriver` unchanged.

The same run is available without Python through the CLI::

    python -m repro.cli md big.xyz --solver linscale --kt 0.1 --r-loc 5.5

Run:  python examples/linscale_si_supercell.py     (~1 min)
"""

import time

import numpy as np

from repro.geometry import bulk_silicon, rattle, supercell
from repro.linscale import LinearScalingCalculator
from repro.md import MDDriver, ThermoLog, VelocityVerlet, maxwell_boltzmann_velocities
from repro.tb import GSPSilicon, TBCalculator

KT = 0.2          # electronic temperature (eV)
R_LOC = 5.5       # localization radius (Å)
ORDER = 150       # Chebyshev order


def main():
    atoms = rattle(supercell(bulk_silicon(), 4), 0.04, seed=17)
    print(f"{len(atoms)} Si atoms, {4 * len(atoms)} orbitals")

    # --- O(N) single point ----------------------------------------------
    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                   order=ORDER)
    t0 = time.perf_counter()
    res = calc.compute(atoms, forces=True)
    t_lin = time.perf_counter() - t0
    stats = res["region_stats"]
    print(f"\n--- FOE in localization regions "
          f"(r_loc = {R_LOC} Å, order = {ORDER}) ---")
    print(f"regions             : {res['n_regions']} "
          f"(mean {stats['atoms_mean']:.1f}, max {stats['atoms_max']} atoms)")
    print(f"energy              : {res['energy'] / len(atoms):.6f} eV/atom")
    print(f"chemical potential  : {res['fermi_level']:.4f} eV")
    print(f"electron count      : {res['n_electrons']:.4f}")
    print(f"max |Mulliken q|    : {np.abs(res['charges']).max():.4f} |e|")
    print(f"wall time           : {t_lin:.2f} s")
    for phase, t in sorted(calc.timer.timers.items(),
                           key=lambda kv: -kv[1].elapsed):
        print(f"  {phase:<17s}: {t.elapsed:.2f} s")

    # --- cross-check against exact diagonalisation -----------------------
    t0 = time.perf_counter()
    ref = TBCalculator(GSPSilicon(), kT=KT).compute(atoms, forces=True)
    t_diag = time.perf_counter() - t0
    de = abs(res["energy"] - ref["energy"]) / len(atoms)
    df = np.abs(res["forces"] - ref["forces"]).max()
    print(f"\n--- vs exact diagonalisation ({t_diag:.2f} s, "
          f"{t_diag / t_lin:.1f}x slower) ---")
    print(f"energy error        : {de:.2e} eV/atom")
    print(f"max force error     : {df:.2e} eV/Å "
          "(shrink with r_loc / order)")

    # --- a few O(N) MD steps ---------------------------------------------
    maxwell_boltzmann_velocities(atoms, 300.0, seed=3)
    log = ThermoLog()
    md = MDDriver(atoms, calc, VelocityVerlet(dt=1.0), observers=[log])
    t0 = time.perf_counter()
    md.run(5)
    t_md = time.perf_counter() - t0
    print(f"\n--- 5 NVE steps through MDDriver ({t_md:.1f} s) ---")
    print(f"conserved drift     : {log.conserved_drift():.2e}")
    print("\nThe eigensolve is gone: every step is sparse assembly + "
          "independent region solves, i.e. O(N) with a prefactor set by "
          "r_loc and the expansion order (see bench A7 for the measured "
          "crossover vs LAPACK).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Beyond O(N³): density-matrix purification and the Fermi-operator
expansion.

The evaluation's punchline (bench T2) is that exact diagonalisation
swallows ~90 % of a TBMD step by a few hundred atoms.  This example runs
the two O(N)-family answers this library implements:

* Palser–Manolopoulos canonical purification (zero temperature, gapped
  systems) — validated here against LAPACK on energy *and* forces;
* Chebyshev Fermi-operator expansion (finite electronic temperature,
  metals welcome) — validated against exactly smeared diagonalisation;

and measures the density-matrix decay length that sets the O(N)
crossover (see benchmarks/bench_a4_purification.py).

Run:  python examples/linear_scaling.py     (~1 min)
"""

import time

import numpy as np

from repro.geometry import bulk_silicon, rattle, supercell
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon, TBCalculator
from repro.tb.chebyshev import fermi_operator_expansion
from repro.tb.hamiltonian import build_hamiltonian
from repro.tb.purification import purification_energy_forces


def main():
    atoms = rattle(supercell(bulk_silicon(), 2), 0.05, seed=4)
    model = GSPSilicon()
    nl = neighbor_list(atoms, model.cutoff)
    H, _ = build_hamiltonian(atoms, model, nl)
    nelec = 4.0 * len(atoms)

    # --- reference: exact diagonalisation ------------------------------------
    calc = TBCalculator(GSPSilicon())
    t0 = time.perf_counter()
    ref = calc.compute(atoms)
    t_diag = time.perf_counter() - t0

    # --- purification ------------------------------------------------------------
    t0 = time.perf_counter()
    e_pur, f_pur, res = purification_energy_forces(atoms, model, nl)
    t_pur = time.perf_counter() - t0
    print(f"{len(atoms)} Si atoms, {H.shape[0]} orbitals")
    print("\n--- canonical purification (zero T) ---")
    print(f"iterations          : {res.iterations}")
    print(f"idempotency error   : {res.idempotency_error:.2e}")
    print(f"energy vs LAPACK    : {abs(e_pur - ref['energy']):.2e} eV")
    print(f"max force deviation : {np.abs(f_pur - ref['forces']).max():.2e} eV/Å")
    print(f"wall time           : {t_pur:.2f} s (diag path {t_diag:.2f} s)")

    # --- density-matrix locality -----------------------------------------------------
    rho = np.asarray(res.rho)
    from repro.tb.hamiltonian import orbital_offsets

    offsets, _ = orbital_offsets(atoms.symbols, model)
    pairs = [(atoms.distance(i, j),
              np.abs(rho[offsets[i]:offsets[i] + 4,
                         offsets[j]:offsets[j] + 4]).max())
             for i in range(len(atoms)) for j in range(i + 1, len(atoms))]
    d = np.array([p[0] for p in pairs])
    m = np.array([p[1] for p in pairs])
    half = atoms.cell.lengths.min() / 2
    sel = (d > 3.0) & (d < half) & (m > 1e-14)
    slope = np.polyfit(d[sel], np.log(m[sel]), 1)[0]
    print(f"ρ decay length ξ    : {-1.0 / slope:.2f} Å "
          "(exponential — gapped silicon)")

    # --- Fermi-operator expansion ------------------------------------------------------
    kT = 0.2
    ref_hot = TBCalculator(GSPSilicon(), kT=kT).compute(atoms)
    t0 = time.perf_counter()
    foe = fermi_operator_expansion(H, nelec, kT, order=250)
    t_foe = time.perf_counter() - t0
    print(f"\n--- Chebyshev FOE (kT = {kT} eV) ---")
    print(f"order               : {foe['order']}")
    print(f"μ vs exact          : {abs(foe['mu'] - ref_hot['fermi_level']):.2e} eV")
    print(f"band energy error   : "
          f"{abs(foe['band_energy'] - ref_hot['band_energy']):.2e} eV")
    print(f"electron count      : {foe['n_electrons']:.6f} / {nelec:.0f}")
    print(f"wall time           : {t_foe:.2f} s")

    print("\nBoth methods avoid the eigensolve entirely — with sparse "
          "matrices and the measured ξ they cross over to O(N) around a "
          "few thousand atoms (bench A4's projection).")


if __name__ == "__main__":
    main()

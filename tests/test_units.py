"""Unit-system consistency tests."""

import math

import numpy as np
import pytest

from repro import units


def test_force_to_acc_value():
    # 1 eV/Å on 1 amu → 9.6485…e-3 Å/fs²
    assert units.FORCE_TO_ACC == pytest.approx(9.648533e-3, rel=1e-5)


def test_mass_vel2_inverse_of_force_to_acc():
    assert units.MASS_VEL2_TO_EV * units.FORCE_TO_ACC == pytest.approx(1.0)


def test_kb_value():
    assert units.KB == pytest.approx(8.617333262e-5)


def test_hbar_planck_relation():
    assert units.H_PLANCK == pytest.approx(2 * math.pi * units.HBAR)


def test_pressure_conversion_roundtrip():
    assert units.EV_PER_A3_TO_GPA * units.GPA_TO_EV_PER_A3 == pytest.approx(1.0)
    # 1 eV/Å³ ≈ 160.2 GPa
    assert units.EV_PER_A3_TO_GPA == pytest.approx(160.2176, rel=1e-4)


def test_mass_of_known_species():
    assert units.mass_of("Si") == pytest.approx(28.0855)
    assert units.mass_of("C") == pytest.approx(12.011)


def test_mass_of_unknown_species_raises_with_listing():
    with pytest.raises(KeyError, match="known species"):
        units.mass_of("Xx")


def test_symbols_numbers_consistency():
    for sym, z in units.ATOMIC_NUMBERS.items():
        assert units.ATOMIC_SYMBOLS[z] == sym
        assert sym in units.ATOMIC_MASSES


def test_kinetic_energy_scalar_case():
    # one amu at 1 Å/fs: KE = 0.5 * MASS_VEL2_TO_EV
    ke = units.kinetic_energy([1.0], [[1.0, 0.0, 0.0]])
    assert ke == pytest.approx(0.5 * units.MASS_VEL2_TO_EV)


def test_temperature_kinetic_roundtrip():
    ndof = 300
    t = 750.0
    ekin = units.kinetic_from_temperature(t, ndof)
    assert units.temperature_from_kinetic(ekin, ndof) == pytest.approx(t)


def test_temperature_zero_dof():
    assert units.temperature_from_kinetic(1.0, 0) == 0.0


def test_equipartition_statistics():
    # velocities drawn with sigma² = kB T F2A / m must average to T
    rng = np.random.default_rng(0)
    n = 20000
    m = 28.0855
    t = 1200.0
    sigma = np.sqrt(units.KB * t * units.FORCE_TO_ACC / m)
    v = rng.normal(0, sigma, size=(n, 3))
    ekin = units.kinetic_energy(np.full(n, m), v)
    t_est = units.temperature_from_kinetic(ekin, 3 * n)
    assert t_est == pytest.approx(t, rel=0.03)

"""CalculatorSpec: validation, dict round-trips, context threading."""

from __future__ import annotations

import pytest

from repro.calculators import (
    CalculatorSpec, make_calculator, parse_kgrid, suggest_key,
)
from repro.classical import StillingerWeber
from repro.errors import ReproError
from repro.linscale import LinearScalingCalculator
from repro.tb import TBCalculator


def test_defaults_describe_a_buildable_calculator():
    spec = CalculatorSpec()
    assert spec.model == "gsp-si" and spec.solver == "diag"
    assert isinstance(make_calculator(spec), TBCalculator)


def test_frozen():
    spec = CalculatorSpec()
    with pytest.raises(AttributeError):
        spec.model = "sw-si"


def test_field_coercion_and_kgrid_normalisation():
    spec = CalculatorSpec(model="gsp-si", solver="linscale", kT="0.2",
                          order="80", kgrid="2x3x4")
    assert spec.kT == 0.2 and isinstance(spec.kT, float)
    assert spec.order == 80 and isinstance(spec.order, int)
    assert spec.kgrid == (2, 3, 4)


def test_bad_numeric_field():
    with pytest.raises(ReproError, match="'kT' must be a number"):
        CalculatorSpec(kT="warm")


def test_from_dict_accepts_spec_none_and_dict():
    spec = CalculatorSpec(model="sw-si")
    assert CalculatorSpec.from_dict(spec) is spec
    assert CalculatorSpec.from_dict(None) == CalculatorSpec()
    assert CalculatorSpec.from_dict({"model": "sw-si"}).model == "sw-si"
    with pytest.raises(ReproError, match="must be a mapping"):
        CalculatorSpec.from_dict(["model"])


def test_unknown_key_suggestion():
    with pytest.raises(ReproError, match="did you mean 'kgrid'"):
        CalculatorSpec.from_dict({"kgird": 2})
    # the historical message prefix is stable API for error matching
    with pytest.raises(ReproError, match="unknown calculator spec keys"):
        CalculatorSpec.from_dict({"completely_novel": 1})


def test_unknown_model_and_solver_suggestions():
    with pytest.raises(ReproError, match="did you mean 'gsp-si'"):
        CalculatorSpec(model="gsp_si")
    with pytest.raises(ReproError, match="did you mean 'linscale'"):
        CalculatorSpec(model="gsp-si", solver="linscal")


def test_context_threads_into_errors():
    with pytest.raises(ReproError, match="op 'load': unknown calculator"):
        CalculatorSpec.from_dict({"oops": 1}, context="op 'load'")
    with pytest.raises(ReproError, match="op 'load'.*kgrid"):
        CalculatorSpec.from_dict({"kgrid": "4xx"}, context="op 'load'")
    with pytest.raises(ReproError, match="op 'eval': kgrid"):
        parse_kgrid("bad", context="op 'eval'")


def test_to_dict_round_trip_and_default_elision():
    spec = CalculatorSpec(model="gsp-si", solver="linscale", kT=0.3,
                          order=60, kgrid=(2, 2, 2))
    d = spec.to_dict()
    assert d["kgrid"] == [2, 2, 2]          # JSON-safe
    assert "skin" not in d                  # defaulted fields elided
    assert CalculatorSpec.from_dict(d) == spec
    assert CalculatorSpec().to_dict() == {}


def test_replace_revalidates():
    spec = CalculatorSpec(model="gsp-si", solver="linscale", kT=0.3)
    assert spec.replace(order=40).order == 40
    with pytest.raises(ReproError, match="unknown solver"):
        spec.replace(solver="nope")


def test_mapping_shim():
    spec = CalculatorSpec(model="sw-si", skin=1.5)
    assert spec.get("skin") == 1.5
    assert spec.get("nonexistent", "d") == "d"
    assert spec["model"] == "sw-si"
    with pytest.raises(KeyError):
        spec["nope"]
    assert dict(spec)["model"] == "sw-si"


def test_cross_field_rules_preserved():
    with pytest.raises(ReproError, match="kgrid_reduce only applies"):
        CalculatorSpec(kgrid_reduce="symmetry")
    with pytest.raises(ReproError, match="diag.*linscale"):
        CalculatorSpec(solver="foe", kT=0.2, kgrid=2)
    with pytest.raises(ReproError, match="classical"):
        CalculatorSpec(model="sw-si", solver="foe")
    with pytest.raises(ReproError, match="tight-binding"):
        CalculatorSpec(model="sw-si", kgrid=2)
    with pytest.raises(ReproError, match="linscale"):
        CalculatorSpec(solver="diag", backend="numpy_loop")


def test_make_calculator_dispatch_unchanged():
    assert isinstance(make_calculator({"model": "sw-si"}), StillingerWeber)
    lin = make_calculator(CalculatorSpec(
        model="gsp-si", solver="linscale", kT=0.3, order=60))
    assert isinstance(lin, LinearScalingCalculator)


def test_describe_mentions_the_load_bearing_fields():
    text = CalculatorSpec(model="gsp-si", solver="linscale", kT=0.2,
                          kgrid=2, kgrid_reduce="symmetry").describe()
    assert "gsp-si" in text and "linscale" in text
    assert "2x2x2" in text and "symmetry" in text


def test_suggest_key_no_match_is_silent():
    assert suggest_key("zzzzz", ["model", "solver"]) == ""

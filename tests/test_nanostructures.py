"""Nanotube / chain / ring / cluster builders."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import carbon_chain, carbon_ring, nanotube, random_cluster
from repro.geometry.nanostructures import hydrogen_cap, nanotube_radius
from repro.neighbors import neighbor_list


def test_nanotube_zigzag_atom_count():
    # (n, 0) translational cell has 4n atoms
    t = nanotube(10, 0, cells=1)
    assert len(t) == 40


def test_nanotube_armchair_atom_count():
    t = nanotube(5, 5, cells=1)
    assert len(t) == 20


def test_nanotube_chiral_atom_count():
    # (4, 2): d_R = gcd(10, 8) = 2 → 4*(16+8+4)/2 = 56 atoms
    t = nanotube(4, 2, cells=1)
    assert len(t) == 56


def test_nanotube_radius_formula():
    r = nanotube_radius(10, 0)
    a = np.sqrt(3) * 1.42
    assert r == pytest.approx(a * 10 / (2 * np.pi))
    # (10,10) SWNT diameter ≈ 1.36 nm
    assert 2 * nanotube_radius(10, 10) == pytest.approx(13.56, abs=0.1)


def test_nanotube_atoms_on_cylinder():
    t = nanotube(8, 0, cells=2)
    xy = t.positions[:, :2] - t.positions[:, :2].mean(axis=0)
    r = np.linalg.norm(xy, axis=1)
    np.testing.assert_allclose(r, nanotube_radius(8, 0), rtol=1e-6)


def test_nanotube_coordination_periodic():
    t = nanotube(6, 6, cells=1, periodic=True)
    nl = neighbor_list(t, 1.6)
    np.testing.assert_array_equal(nl.coordination(), 3)


def test_nanotube_bond_lengths_near_cc():
    t = nanotube(10, 0, cells=2, periodic=True)
    nl = neighbor_list(t, 1.6)
    assert abs(nl.distances.mean() - 1.42) < 0.03


def test_finite_tube_nonperiodic_with_edges():
    t = nanotube(10, 0, cells=2, periodic=False)
    assert not t.cell.periodic
    nl = neighbor_list(t, 1.6)
    coord = nl.coordination()
    assert coord.min() == 2      # open edges under-coordinated
    assert coord.max() == 3


def test_invalid_chirality():
    with pytest.raises(GeometryError):
        nanotube(3, 5)
    with pytest.raises(GeometryError):
        nanotube(0, 0)
    with pytest.raises(GeometryError):
        nanotube(5, 0, cells=0)


def test_hydrogen_cap_adds_fixed_hydrogens():
    t = nanotube(10, 0, cells=2, periodic=False)
    capped = hydrogen_cap(t, end="bottom")
    h_mask = np.array([s == "H" for s in capped.symbols])
    assert h_mask.sum() == 10          # one H per zig-zag edge atom
    assert capped.fixed[h_mask].all()
    assert not capped.fixed[~h_mask].any()
    # hydrogens below the carbon minimum
    z_c = capped.positions[~h_mask, 2].min()
    assert np.all(capped.positions[h_mask, 2] < z_c + 1e-9)


def test_hydrogen_cap_bad_end():
    t = nanotube(5, 5, cells=1, periodic=False)
    with pytest.raises(GeometryError):
        hydrogen_cap(t, end="middle")


def test_carbon_chain_spacing():
    ch = carbon_chain(5, bond=1.3)
    d = np.diff(ch.positions[:, 2])
    np.testing.assert_allclose(d, 1.3)
    assert not ch.cell.periodic


def test_carbon_ring_bond_lengths():
    ring = carbon_ring(6, bond=1.4)
    nl = neighbor_list(ring, 1.5)
    assert nl.n_pairs == 6
    np.testing.assert_allclose(nl.distances, 1.4, rtol=1e-9)


def test_carbon_ring_too_small():
    with pytest.raises(GeometryError):
        carbon_ring(2)


def test_random_cluster_min_distance_respected():
    cl = random_cluster(20, min_dist=2.2, seed=3)
    nl = neighbor_list(cl, 2.2 - 1e-9)
    assert nl.n_pairs == 0


def test_random_cluster_deterministic():
    a = random_cluster(10, seed=5)
    b = random_cluster(10, seed=5)
    np.testing.assert_array_equal(a.positions, b.positions)


def test_random_cluster_impossible_density():
    with pytest.raises(GeometryError, match="could not place"):
        random_cluster(50, min_dist=10.0, density=1.0, max_tries=200)

"""Tier-1 tests for the reprolint static-analysis suite.

Three layers:

* per-rule fixture triples — a violating module, a clean module, and
  the violating module with an inline suppression — run against a
  temporary fixture tree (``RunConfig(root=tmp_path)``), so each rule's
  detection logic is pinned independently of the live codebase;
* engine behaviour — suppressions, baseline workflow (including stale
  entries failing the CLI), output formats, counts artifact;
* the repository pin — the landed tree must be reprolint-clean, and
  deliberately re-introducing a canary bug (an un-invalidated cache
  attribute, an off-catalog metric) must fail the CLI.  This is the
  test that makes the contracts *enforced*, not aspirational.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.check_ratchet import main as ratchet_main  # noqa: E402
from tools.reprolint.__main__ import main as reprolint_main  # noqa: E402
from tools.reprolint.catalog import matches_convention, parse_catalog  # noqa: E402
from tools.reprolint.engine import (  # noqa: E402
    RunConfig,
    counts_snapshot,
    load_baseline,
    run_paths,
    split_baselined,
    write_baseline,
)
from tools.reprolint.rules import all_rules, rule_ids  # noqa: E402


def lint_tree(tmp_path: Path, files: dict[str, str],
              catalog: frozenset[str] | None = None) -> list:
    """Write *files* under *tmp_path* and run every rule over the tree."""
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    config = RunConfig(root=tmp_path, catalog_names=catalog)
    return run_paths([tmp_path / rel.split("/")[0] for rel in files],
                     config=config)


def rules_hit(findings) -> set[str]:
    return {f.rule for f in findings}


# -- rule fixtures: violating / clean / suppressed --------------------------

CACHE_VIOLATION = '''
class WindowCalculator:
    def __init__(self):
        self._window_cache = None
        self._cached_mu = None

    def compute(self):
        self._window_cache = object()

    def reset(self):
        self._cached_mu = None
'''

CACHE_CLEAN = '''
class WindowCalculator:
    def __init__(self):
        self._window_cache = None
        self._cached_mu = None

    def reset(self):
        self._drop_caches()

    def _drop_caches(self):
        self._window_cache = None
        self._cached_mu = None
'''

CACHE_NO_RESET = '''
class PatternBuilder:
    def __init__(self):
        self._pattern_cache = {}
'''


class TestCacheInvalidationRule:
    def test_uncleared_cache_attr_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"src/calc.py": CACHE_VIOLATION})
        assert [f.rule for f in found] == ["cache-invalidation"]
        assert "_window_cache" in found[0].message
        assert "_cached_mu" not in found[0].message

    def test_clean_via_helper_call(self, tmp_path):
        found = lint_tree(tmp_path, {"src/calc.py": CACHE_CLEAN})
        assert found == []

    def test_missing_reset_method_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"src/build.py": CACHE_NO_RESET})
        assert [f.rule for f in found] == ["cache-invalidation"]
        assert "no reset/invalidate method" in found[0].message

    def test_inline_suppression(self, tmp_path):
        # findings anchor at the method that first assigns the attribute
        src = CACHE_VIOLATION.replace(
            "def __init__(self):",
            "def __init__(self):  # reprolint: disable=cache-invalidation")
        assert lint_tree(tmp_path, {"src/calc.py": src}) == []

    def test_outside_src_not_in_scope(self, tmp_path):
        found = lint_tree(tmp_path, {"benchmarks/calc.py": CACHE_VIOLATION})
        assert found == []


ENVELOPE_VIOLATION = '''
def handle(req):
    return {"ok": True, "energy": -4.2}
'''

ENVELOPE_CLEAN = '''
from repro.service.protocol import Result

def handle(req):
    return Result.success({"energy": -4.2})

def counts():
    # an "ok" *count* is data, not an envelope
    return {"ok": 3, "failed": 1}
'''

SCENARIO_DICT_RUN = '''
class EOSScenario:
    def run(self, client, structure, params):
        return {"e0": -4.2}
'''


class TestResultEnvelopeRule:
    def test_ad_hoc_ok_dict_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/service/ops.py": ENVELOPE_VIOLATION})
        assert [f.rule for f in found] == ["result-envelope"]

    def test_result_constructor_and_counts_clean(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/service/ops.py": ENVELOPE_CLEAN})
        assert found == []

    def test_scenario_run_returning_dict_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/scenarios/eos.py": SCENARIO_DICT_RUN})
        assert [f.rule for f in found] == ["result-envelope"]
        assert "run() returns a bare dict" in found[0].message

    def test_protocol_module_exempt(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/service/protocol.py": ENVELOPE_VIOLATION})
        assert found == []

    def test_file_wide_suppression(self, tmp_path):
        src = "# reprolint: disable-file=result-envelope\n" + ENVELOPE_VIOLATION
        found = lint_tree(tmp_path, {"src/repro/service/ops.py": src})
        assert found == []


TELEMETRY_FSTRING = '''
from repro import obs

def record(kind):
    obs.counter_inc(f"service.{kind}_evals")
'''

TELEMETRY_OFF_CATALOG = '''
from repro import obs

def record():
    obs.counter_inc("service.surprise_total")
'''

TELEMETRY_BAD_SHAPE = '''
from repro import obs

def record():
    obs.counter_inc("NotAValidName")
'''

TELEMETRY_CLEAN = '''
from repro import obs

def record(warm):
    if warm:
        obs.counter_inc("service.warm_evals")
    else:
        obs.counter_inc("service.cold_evals")
    with obs.span("service.request"):
        pass
'''

FIXTURE_CATALOG = frozenset(
    {"service.warm_evals", "service.cold_evals", "service.request"})


class TestTelemetryCatalogRule:
    def test_fstring_name_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/a.py": TELEMETRY_FSTRING},
                          catalog=FIXTURE_CATALOG)
        assert [f.rule for f in found] == ["telemetry-catalog"]
        assert "dynamic" in found[0].message

    def test_off_catalog_name_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/a.py": TELEMETRY_OFF_CATALOG},
                          catalog=FIXTURE_CATALOG)
        assert [f.rule for f in found] == ["telemetry-catalog"]
        assert "not in the" in found[0].message

    def test_malformed_name_flagged_even_without_catalog(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/a.py": TELEMETRY_BAD_SHAPE},
                          catalog=frozenset())
        assert [f.rule for f in found] == ["telemetry-catalog"]
        assert "convention" in found[0].message

    def test_cataloged_literals_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/a.py": TELEMETRY_CLEAN},
                          catalog=FIXTURE_CATALOG)
        assert found == []

    def test_suppressed(self, tmp_path):
        src = TELEMETRY_FSTRING.replace(
            'obs.counter_inc(f"service.{kind}_evals")',
            'obs.counter_inc(f"service.{kind}_evals")'
            '  # reprolint: disable=telemetry-catalog')
        found = lint_tree(tmp_path, {"src/repro/a.py": src},
                          catalog=FIXTURE_CATALOG)
        assert found == []

    def test_convention(self):
        assert matches_convention("foe.fused")
        assert matches_convention("neighbors.rebuild.cell-unmappable")
        assert not matches_convention("single")
        assert not matches_convention("Has.Capitals")

    def test_live_catalog_parses_known_names(self):
        catalog = parse_catalog(REPO_ROOT)
        assert "foe.fused" in catalog
        assert "service.warm_evals" in catalog
        assert "campaign.cell_failures" in catalog


IMPORT_TOP_LEVEL = '''
import ase

def bridge():
    return ase
'''

IMPORT_GUARDED = '''
try:
    import numba
except ImportError:
    numba = None

from typing import TYPE_CHECKING
if TYPE_CHECKING:
    import ase

def use():
    import cupy
    return cupy
'''


class TestImportGuardRule:
    def test_top_level_optional_import_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/bridge.py": IMPORT_TOP_LEVEL})
        assert [f.rule for f in found] == ["import-guard"]
        assert "ase" in found[0].message

    def test_guarded_forms_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/bridge.py": IMPORT_GUARDED})
        assert found == []

    def test_suppressed(self, tmp_path):
        src = IMPORT_TOP_LEVEL.replace(
            "import ase", "import ase  # reprolint: disable=import-guard")
        assert lint_tree(tmp_path, {"src/repro/bridge.py": src}) == []


BARE_EXCEPT = '''
def risky():
    try:
        return 1
    except:
        return None
'''

BUILTIN_RAISE = '''
def op(req):
    raise ValueError("bad request")
'''

DISCIPLINED = '''
from repro.errors import ProtocolError

def op(req):
    try:
        return req["op"]
    except KeyError as exc:
        raise ProtocolError("missing op") from exc
'''


class TestErrorDisciplineRule:
    def test_bare_except_flagged_anywhere(self, tmp_path):
        found = lint_tree(tmp_path, {"tools/helper.py": BARE_EXCEPT})
        assert [f.rule for f in found] == ["error-discipline"]

    def test_builtin_raise_in_service_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/service/ops.py": BUILTIN_RAISE})
        assert [f.rule for f in found] == ["error-discipline"]

    def test_builtin_raise_outside_service_allowed(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/tb/model.py": BUILTIN_RAISE})
        assert found == []

    def test_repro_error_clean(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/service/ops.py": DISCIPLINED})
        assert found == []

    def test_suppressed(self, tmp_path):
        src = BUILTIN_RAISE.replace(
            'raise ValueError("bad request")',
            'raise ValueError("bad request")'
            '  # reprolint: disable=error-discipline')
        found = lint_tree(tmp_path, {"src/repro/service/ops.py": src})
        assert found == []


CLOCK_VIOLATION = '''
import time

def stamp():
    return time.time(), time.perf_counter()
'''

CLOCK_CLEAN = '''
import time
from repro.utils.timing import tick, wall_now

def stamp():
    return wall_now(), tick()

def deadline():
    return time.monotonic() + 5.0
'''


class TestClockDisciplineRule:
    def test_raw_clocks_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/md/x.py": CLOCK_VIOLATION})
        assert rules_hit(found) == {"clock-discipline"}
        assert len(found) == 2

    def test_from_import_flagged(self, tmp_path):
        src = "from time import perf_counter\n"
        found = lint_tree(tmp_path, {"src/repro/md/x.py": src})
        assert [f.rule for f in found] == ["clock-discipline"]

    def test_sanctioned_clocks_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"src/repro/md/x.py": CLOCK_CLEAN})
        assert found == []

    def test_obs_and_timing_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {
            "src/repro/obs/spans.py": CLOCK_VIOLATION,
            "src/repro/utils/timing.py": CLOCK_VIOLATION,
        })
        assert found == []

    def test_suppressed(self, tmp_path):
        src = CLOCK_VIOLATION.replace(
            "return time.time(), time.perf_counter()",
            "return time.time(), time.perf_counter()"
            "  # reprolint: disable=clock-discipline")
        assert lint_tree(tmp_path, {"src/repro/md/x.py": src}) == []


SHARED_STATE_VIOLATION = '''
PENDING = {}
RESULTS = []
'''

SHARED_STATE_LOCKED = '''
import threading

_LOCK = threading.Lock()
PENDING = {}
'''

SHARED_STATE_FROZEN = '''
from types import MappingProxyType

PRESETS = MappingProxyType({"a": 1})
NAMES = ("x", "y")
__all__ = ["PRESETS", "NAMES"]
'''


class TestSharedStateRule:
    def test_unguarded_containers_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/service/queue.py": SHARED_STATE_VIOLATION})
        assert rules_hit(found) == {"shared-state"}
        assert len(found) == 2

    def test_lock_guarded_clean(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/parallel/queue.py": SHARED_STATE_LOCKED})
        assert found == []

    def test_frozen_and_dunder_clean(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/service/cfg.py": SHARED_STATE_FROZEN})
        assert found == []

    def test_outside_concurrent_tiers_allowed(self, tmp_path):
        found = lint_tree(
            tmp_path, {"src/repro/tb/tables.py": SHARED_STATE_VIOLATION})
        assert found == []

    def test_suppressed(self, tmp_path):
        src = SHARED_STATE_VIOLATION.replace(
            "PENDING = {}",
            "PENDING = {}  # reprolint: disable=shared-state").replace(
            "RESULTS = []",
            "RESULTS = []  # reprolint: disable=shared-state")
        found = lint_tree(tmp_path, {"src/repro/service/queue.py": src})
        assert found == []


# -- engine behaviour -------------------------------------------------------

class TestEngine:
    def test_parse_error_is_a_finding(self, tmp_path):
        found = lint_tree(tmp_path, {"src/broken.py": "def f(:\n"})
        assert [f.rule for f in found] == ["parse-error"]

    def test_github_format(self, tmp_path):
        found = lint_tree(tmp_path, {"src/calc.py": CACHE_VIOLATION})
        line = found[0].format("github")
        assert line.startswith("::error file=src/calc.py,line=")
        assert "title=reprolint(cache-invalidation)" in line

    def test_baseline_roundtrip_and_split(self, tmp_path):
        found = lint_tree(tmp_path, {"src/calc.py": CACHE_VIOLATION})
        bl_path = tmp_path / "baseline.json"
        write_baseline(bl_path, found)
        entries = json.loads(bl_path.read_text())["entries"]
        assert len(entries) == 1
        # load_baseline refuses undocumented reasons only when empty
        entries[0]["reason"] = "grandfathered for the test"
        bl_path.write_text(json.dumps({"entries": entries}))
        baseline = load_baseline(bl_path)
        new, old = split_baselined(found, baseline)
        assert new == [] and len(old) == 1

    def test_baseline_requires_reason(self, tmp_path):
        bl_path = tmp_path / "baseline.json"
        bl_path.write_text(json.dumps({"entries": [
            {"rule": "shared-state", "path": "x.py", "message": "m",
             "reason": ""}]}))
        with pytest.raises(ValueError, match="reason"):
            load_baseline(bl_path)

    def test_counts_snapshot_shape(self, tmp_path):
        found = lint_tree(tmp_path, {"src/calc.py": CACHE_VIOLATION})
        snap = counts_snapshot(found, [])
        assert snap["counters"] == {
            "reprolint.findings.cache-invalidation": 1.0}
        assert snap["gauges"]["reprolint.findings_total"] == 1.0
        assert snap["histograms"] == {}

    def test_rule_registry_is_complete(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "cache-invalidation", "result-envelope", "telemetry-catalog",
            "import-guard", "error-discipline", "clock-discipline",
            "shared-state"}
        for rule in all_rules():
            assert rule.id and rule.hint and rule.description


# -- the CLI and the repository pin -----------------------------------------

def write_fixture(tmp_path: Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)


class TestCLI:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        write_fixture(tmp_path, {"src/calc.py": CACHE_VIOLATION})
        rc = reprolint_main(["src", "--root", str(tmp_path)])
        out = capsys.readouterr()
        assert rc == 1
        assert "[cache-invalidation]" in out.out
        assert "fix:" in out.out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_fixture(tmp_path, {"src/calc.py": CACHE_CLEAN})
        rc = reprolint_main(["src", "--root", str(tmp_path)])
        assert rc == 0

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        write_fixture(tmp_path, {"src/calc.py": CACHE_CLEAN})
        bl = tmp_path / "baseline.json"
        bl.write_text(json.dumps({"entries": [
            {"rule": "cache-invalidation", "path": "src/calc.py",
             "message": "long gone", "reason": "fixed ages ago"}]}))
        rc = reprolint_main(
            ["src", "--root", str(tmp_path), "--baseline", str(bl)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "stale baseline entry" in err

    def test_counts_json_artifact(self, tmp_path, capsys):
        write_fixture(tmp_path, {"src/calc.py": CACHE_VIOLATION})
        out_json = tmp_path / "artifacts" / "reprolint.json"
        reprolint_main(["src", "--root", str(tmp_path),
                        "--counts-json", str(out_json)])
        snap = json.loads(out_json.read_text())
        assert snap["counters"]["reprolint.findings.cache-invalidation"] == 1.0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        rc = reprolint_main(["nonexistent", "--root", str(tmp_path)])
        assert rc == 2


class TestRepositoryPin:
    """The landed tree is clean, and the canaries prove the teeth."""

    def test_repository_is_reprolint_clean(self, capsys):
        rc = reprolint_main(["src", "tools", "benchmarks",
                             "--root", str(REPO_ROOT)])
        out = capsys.readouterr()
        assert rc == 0, f"reprolint regressions:\n{out.out}"

    def test_canary_uninvalidated_cache_fails(self, tmp_path, capsys):
        """Re-introducing the PR-2 bug class must fail the CLI."""
        write_fixture(tmp_path, {"src/repro/tb/calculator.py": '''
class TBCalculator:
    def __init__(self):
        self._results_cache = None
        self._pattern_cache = None

    def compute(self, atoms):
        self._results_cache = {"energy": -4.0}
        self._pattern_cache = object()

    def invalidate(self):
        self._results_cache = None
        # _pattern_cache forgotten: the canary
'''})
        rc = reprolint_main(["src", "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "_pattern_cache" in out

    def test_canary_off_catalog_metric_fails(self, tmp_path, capsys):
        write_fixture(tmp_path, {
            "docs/observability.md":
                "| `service.warm_evals` | warm evals |\n",
            "src/repro/service/thing.py": '''
from repro import obs

def record():
    obs.counter_inc("service.renamed_evals")
''',
        })
        rc = reprolint_main(["src", "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "service.renamed_evals" in out

    def test_shipped_baseline_is_documented(self):
        """Every entry in the checked-in baseline has a real reason."""
        baseline = load_baseline(
            REPO_ROOT / "tools" / "reprolint" / "baseline.json")
        for key, entry in baseline.items():
            assert "TODO" not in entry["reason"], key


class TestTypingRatchet:
    def test_ratchet_config_consistent(self, capsys):
        assert ratchet_main([]) == 0

    def test_ratchet_manifest_nonempty(self):
        manifest = (REPO_ROOT / "tools" / "typing_ratchet.txt").read_text()
        mods = [ln for ln in manifest.splitlines()
                if ln.strip() and not ln.startswith("#")]
        assert len(mods) >= 7
        assert "repro.state" in mods
        assert "repro.service.protocol" in mods

    def test_py_typed_shipped(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()

"""Cross-cutting physics property tests (hypothesis).

Randomised invariants spanning several subsystems — the checks that catch
representation bugs no example-based test thinks of.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.classical import StillingerWeber
from repro.geometry import Atoms, Cell, bulk_silicon, rattle
from repro.parallel import block_partition, cyclic_partition
from repro.tb import GSPSilicon, HarrisonModel, NonOrthogonalSilicon, TBCalculator, XuCarbon
from repro.tb.chebyshev import fermi_operator_expansion
from repro.tb.models.base import quintic_switch
from repro.tb.purification import purify_density_matrix


# ---------------------------------------------------------------- dimers
@settings(max_examples=15, deadline=None)
@given(
    theta=st.floats(0.05, 3.09), phi=st.floats(0.0, 6.28),
    d=st.floats(2.0, 3.2),
)
def test_property_si_dimer_energy_orientation_independent(theta, phi, d):
    """E(dimer) depends on |d| only — for every model with Si support."""
    direction = np.array([np.sin(theta) * np.cos(phi),
                          np.sin(theta) * np.sin(phi),
                          np.cos(theta)])
    energies = {}
    for model_cls in (GSPSilicon, NonOrthogonalSilicon):
        at_z = Atoms(["Si", "Si"], [[0, 0, 0], [0, 0, d]],
                     cell=Cell.cubic(25, pbc=False))
        at_r = Atoms(["Si", "Si"], [np.zeros(3), d * direction],
                     cell=Cell.cubic(25, pbc=False))
        e_z = TBCalculator(model_cls()).get_potential_energy(at_z)
        e_r = TBCalculator(model_cls()).get_potential_energy(at_r)
        assert e_r == pytest.approx(e_z, abs=1e-9)
        energies[model_cls.__name__] = e_z
    # overlap lowers the bonding energy relative to orthogonal GSP —
    # the two must at least differ (the S matrix is doing something)
    assert energies["GSPSilicon"] != pytest.approx(
        energies["NonOrthogonalSilicon"], abs=1e-6)


@settings(max_examples=15, deadline=None)
@given(theta=st.floats(0.05, 3.09), phi=st.floats(0.0, 6.28),
       d=st.floats(1.1, 2.4))
def test_property_carbon_dimer_orientation_independent(theta, phi, d):
    direction = np.array([np.sin(theta) * np.cos(phi),
                          np.sin(theta) * np.sin(phi),
                          np.cos(theta)])
    at_z = Atoms(["C", "C"], [[0, 0, 0], [0, 0, d]],
                 cell=Cell.cubic(20, pbc=False))
    at_r = Atoms(["C", "C"], [np.zeros(3), d * direction],
                 cell=Cell.cubic(20, pbc=False))
    e_z = TBCalculator(XuCarbon()).get_potential_energy(at_z)
    e_r = TBCalculator(XuCarbon()).get_potential_energy(at_r)
    assert e_r == pytest.approx(e_z, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(d=st.floats(0.8, 2.5))
def test_property_ch_dimer_hermitian_spectrum(d):
    """Heteronuclear s/sp blocks must still give a real spectrum and an
    orientation-independent energy."""
    at = Atoms(["C", "H"], [[0, 0, 0], [0, 0, d]], cell=Cell.cubic(18, pbc=False))
    res = TBCalculator(HarrisonModel(), kT=0.1).compute(at, forces=False)
    assert np.all(np.isfinite(res["eigenvalues"]))
    at2 = Atoms(["C", "H"], [[0, 0, 0], [d, 0, 0]], cell=Cell.cubic(18, pbc=False))
    e2 = TBCalculator(HarrisonModel(), kT=0.1).get_potential_energy(at2)
    assert e2 == pytest.approx(res["energy"], abs=1e-9)


# ---------------------------------------------------------------- SW invariance
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6), angle=st.floats(0.1, 3.0))
def test_property_sw_rotation_invariance(seed, angle):
    from repro.geometry import random_cluster

    at = random_cluster(8, symbol="Si", min_dist=2.2, seed=seed)
    e0 = StillingerWeber().get_potential_energy(at)
    rot = at.copy()
    rot.rotate([0.3, -0.5, 0.81], angle)
    e1 = StillingerWeber().get_potential_energy(rot)
    assert e1 == pytest.approx(e0, abs=1e-9)


# ---------------------------------------------------------------- purification
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6), n_occ=st.integers(2, 8), gap=st.floats(0.5, 3.0))
def test_property_purification_projector(seed, n_occ, gap):
    """Random gapped spectra purify to the exact occupied projector."""
    rng = np.random.default_rng(seed)
    n = 16
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    eps = np.sort(rng.uniform(-5, 0, size=n))
    eps[n_occ:] += gap + (0.0 - eps[n_occ:].min())   # open a clean gap
    H = (q * eps) @ q.T
    res = purify_density_matrix(H, 2.0 * n_occ)
    proj = q[:, :n_occ] @ q[:, :n_occ].T
    np.testing.assert_allclose(res.rho, proj, atol=1e-7)
    # idempotent, correct trace
    np.testing.assert_allclose(res.rho @ res.rho, res.rho, atol=1e-7)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6), kt=st.floats(0.1, 0.6))
def test_property_foe_trace_and_bounds(seed, kt):
    rng = np.random.default_rng(seed)
    n = 14
    a = rng.normal(size=(n, n))
    H = 0.5 * (a + a.T) * 2.0
    nelec = 2.0 * (n // 2)
    res = fermi_operator_expansion(H, nelec, kt, order=150)
    assert res["n_electrons"] == pytest.approx(nelec, abs=1e-4)
    evals = np.linalg.eigvalsh(res["rho"])
    assert evals.min() > -0.05 and evals.max() < 2.05


# ---------------------------------------------------------------- misc invariants
@settings(max_examples=30, deadline=None)
@given(n=st.integers(0, 200), p=st.integers(1, 32))
def test_property_partitions_cover_disjointly(n, p):
    for scheme in (block_partition, cyclic_partition):
        parts = scheme(n, p)
        assert len(parts) == p
        combined = np.concatenate(parts) if parts else np.array([])
        assert len(combined) == n
        assert len(np.unique(combined)) == n


@settings(max_examples=30, deadline=None)
@given(r_on=st.floats(1.0, 5.0), width=st.floats(0.1, 3.0),
       x=st.floats(0.0, 10.0))
def test_property_quintic_switch_bounded_monotone(r_on, width, x):
    r_off = r_on + width
    s, ds = quintic_switch(np.array([x]), r_on, r_off)
    assert 0.0 <= s[0] <= 1.0
    assert ds[0] <= 1e-12      # never increasing


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_calculator_force_translation_equivariance(seed):
    """F(x + c) = F(x): forces see only relative geometry."""
    at = rattle(bulk_silicon(), 0.07, seed=seed)
    f0 = TBCalculator(GSPSilicon()).get_forces(at)
    moved = at.copy()
    moved.translate([0.37, -1.2, 2.05])
    f1 = TBCalculator(GSPSilicon()).get_forces(moved)
    np.testing.assert_allclose(f1, f0, atol=1e-9)


# ------------------------------------------------- k-space symmetry wedges
@settings(max_examples=8, deadline=None)
@given(
    e1=st.floats(-0.03, 0.03), e2=st.floats(-0.03, 0.03),
    e3=st.floats(-0.03, 0.03), shear=st.floats(-0.02, 0.02),
    size=st.sampled_from([2, 3, (2, 2, 1)]),
)
def test_property_wedge_matches_full_grid(e1, e2, e3, shear, size):
    """For random homogeneous strains of diamond Si (random residual
    symmetry: cubic → tetragonal → orthorhombic → monoclinic), band
    energy and symmetrised forces/virial from the irreducible wedge
    equal the full Monkhorst–Pack grid to round-off."""
    from repro.geometry.transform import strain

    eps = np.array([[e1, shear, 0.0], [shear, e2, 0.0], [0.0, 0.0, e3]])
    # strains below the symmetry detector's contract (~1e-6 breaks an
    # op; see lattice_point_group) are indistinguishable from zero to
    # the wedge but leave round-off asymmetry ~2e-10 in the full-grid
    # virial — snap them to exactly zero so both paths agree on the
    # residual symmetry group
    eps[np.abs(eps) < 1e-6] = 0.0
    at = strain(bulk_silicon(), eps)
    full = TBCalculator(GSPSilicon(), kpts=size, kT=0.1,
                        kgrid_reduce="full").compute(at, forces=True)
    sym = TBCalculator(GSPSilicon(), kpts=size, kT=0.1,
                       kgrid_reduce="symmetry").compute(at, forces=True)
    assert sym["n_kpoints"] <= full["n_kpoints"]
    # abs alone is too strict on the ~1e2 eV total: the wedge sums a
    # different (equivalent) k-set, and summation-order round-off is
    # relative to the magnitude
    assert sym["band_energy"] == pytest.approx(full["band_energy"],
                                               abs=1e-10, rel=1e-11)
    assert sym["fermi_level"] == pytest.approx(full["fermi_level"],
                                               abs=1e-10)
    np.testing.assert_allclose(sym["forces"], full["forces"], atol=1e-10)
    np.testing.assert_allclose(sym["virial"], full["virial"], atol=1e-10)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6), op_index=st.integers(0, 47))
def test_property_point_group_rotation_permutes_forces(seed, op_index):
    """Applying a lattice point-group rotation to an *arbitrary* basis
    rotates the forces exactly: F(r @ rt) = F(r) @ rt.  This pins the
    Cartesian rotation convention the force scattering relies on."""
    from repro.tb.symmetry import SymmetryOp, lattice_point_group

    at = rattle(bulk_silicon(), 0.06, seed=seed)
    ws = lattice_point_group(at.cell)
    assert len(ws) == 48                      # cubic cell: full O_h
    op = SymmetryOp(ws[op_index % len(ws)], np.zeros(3), None)
    rt = op.cartesian_rotation(at.cell)
    np.testing.assert_allclose(rt @ rt.T, np.eye(3), atol=1e-12)

    rotated = at.copy()
    rotated.positions = at.positions @ rt
    rotated.wrap()
    f0 = TBCalculator(GSPSilicon(), kT=0.1).get_forces(at)
    f1 = TBCalculator(GSPSilicon(), kT=0.1).get_forces(rotated)
    np.testing.assert_allclose(f1, f0 @ rt, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    a=st.floats(3.0, 7.0), boc=st.floats(0.6, 1.7), coa=st.floats(0.6, 1.7),
    gamma=st.floats(60.0, 120.0),
    n1=st.integers(1, 4), n2=st.integers(1, 4), n3=st.integers(1, 4),
)
def test_property_wedge_weights_sum_to_one(a, boc, coa, gamma, n1, n2, n3):
    """Σw over the wedge stays 1 to 1e-12 for random (including
    monoclinic) lattices and anisotropic grids, every representative is
    a member of the original grid, and folding never grows the grid."""
    from repro.geometry import Cell
    from repro.tb.kpoints import monkhorst_pack
    from repro.tb.symmetry import irreducible_kpoints

    g = np.radians(gamma)
    cell = Cell(np.array([[a, 0.0, 0.0],
                          [a * boc * np.cos(g), a * boc * np.sin(g), 0.0],
                          [0.0, 0.0, a * coa]]))
    grid = irreducible_kpoints((n1, n2, n3), cell=cell)
    assert grid.weights.sum() == pytest.approx(1.0, abs=1e-12)
    assert (grid.weights > 0).all()
    full, _ = monkhorst_pack((n1, n2, n3), reduce_time_reversal=False)
    assert grid.n_full == len(full)
    assert 1 <= len(grid) <= len(full)
    keys = {tuple(np.round(k, 9)) for k in full}
    for k in grid.kpts_frac:
        assert tuple(np.round(k, 9)) in keys

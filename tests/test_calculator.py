"""TBCalculator façade: caching, modes, getters, timing."""

import numpy as np
import pytest

from repro.errors import ElectronicError, ModelError
from repro.tb import GSPSilicon, NonOrthogonalSilicon, TBCalculator


def test_results_keys_gamma(si8_rattled):
    res = TBCalculator(GSPSilicon()).compute(si8_rattled)
    for key in ("energy", "band_energy", "repulsive_energy", "forces",
                "virial", "stress", "pressure", "eigenvalues", "occupations",
                "fermi_level", "gap", "homo", "lumo"):
        assert key in res
    assert res["energy"] == pytest.approx(res["band_energy"]
                                          + res["repulsive_energy"])
    assert res["n_orbitals"] == 32


def test_cache_hit_no_recompute(si8_rattled):
    calc = TBCalculator(GSPSilicon())
    calc.compute(si8_rattled)
    n_diag_calls = calc.timer.timers["diagonalize"].calls
    calc.compute(si8_rattled)
    calc.get_potential_energy(si8_rattled)
    assert calc.timer.timers["diagonalize"].calls == n_diag_calls


def test_cache_invalidated_by_position_change(si8_rattled):
    calc = TBCalculator(GSPSilicon())
    e0 = calc.get_potential_energy(si8_rattled)
    si8_rattled.positions[0, 0] += 0.05
    e1 = calc.get_potential_energy(si8_rattled)
    assert e0 != e1


def test_energy_only_then_forces_upgrade(si8_rattled):
    calc = TBCalculator(GSPSilicon())
    e = calc.get_potential_energy(si8_rattled)
    f = calc.get_forces(si8_rattled)      # must trigger the force pass
    assert f.shape == (8, 3)
    assert calc.compute(si8_rattled)["energy"] == pytest.approx(e)


def test_invalidate_clears_cache(si8_rattled):
    calc = TBCalculator(GSPSilicon())
    calc.compute(si8_rattled)
    calc.invalidate()
    assert calc._cache_key is None


def test_negative_kt_rejected():
    with pytest.raises(ElectronicError):
        TBCalculator(GSPSilicon(), kT=-0.1)


def test_gap_of_silicon_positive(si8):
    gap = TBCalculator(GSPSilicon()).get_gap(si8)
    assert gap > 0.5      # Γ-folded silicon is clearly gapped


def test_kpoint_mode_energy_and_forces(si8):
    calc = TBCalculator(GSPSilicon(), kpts=2, kT=0.05)
    res = calc.compute(si8)
    # 2×2×2 MP grid is time-reversal reduced: 4 points carry weight 1/4
    assert res["n_kpoints"] == 4
    f = calc.get_forces(si8)
    assert f.shape == (8, 3)
    # pristine diamond: forces vanish by symmetry
    np.testing.assert_allclose(f, 0.0, atol=1e-10)
    np.testing.assert_allclose(res["forces"].sum(axis=0), 0.0, atol=1e-10)


def test_kpoint_requires_periodic_cell():
    from repro.geometry import Atoms, Cell

    at = Atoms(["Si"], [[0, 0, 0]], cell=Cell.cubic(10, pbc=False))
    with pytest.raises(ElectronicError):
        TBCalculator(GSPSilicon(), kpts=2, kT=0.05).compute(at)


def test_kpoint_zero_t_insulator_filling(si8):
    res = TBCalculator(GSPSilicon(), kpts=2).compute(si8)
    # 32 electrons per cell; Σ w f = 32
    total = float(np.sum(res["weights"] * res["occupations"]))
    assert total == pytest.approx(32.0, abs=1e-9)


def test_kpoint_energy_below_gamma_only(si8):
    """k-sampling lowers the Γ-only band energy estimate for Si (Γ folding
    overweights the zone centre)."""
    e_gamma = TBCalculator(GSPSilicon()).get_potential_energy(si8)
    e_k = TBCalculator(GSPSilicon(), kpts=3, kT=0.02).get_potential_energy(si8)
    assert abs(e_k - e_gamma) > 1e-3     # sampling matters at this size
    assert abs(e_k - e_gamma) / 8 < 1.0  # but stays eV-scale


def test_solver_choice_jacobi_matches_lapack(si8_rattled):
    e1 = TBCalculator(GSPSilicon(), solver="lapack").get_potential_energy(si8_rattled)
    e2 = TBCalculator(GSPSilicon(), solver="jacobi").get_potential_energy(si8_rattled)
    assert e2 == pytest.approx(e1, abs=1e-7)


def test_free_energy_below_energy_with_smearing(si8_rattled):
    calc = TBCalculator(GSPSilicon(), kT=0.3)
    res = calc.compute(si8_rattled)
    assert res["free_energy"] <= res["energy"] + 1e-12
    assert res["entropy"] > 0


def test_nonorthogonal_end_to_end(si8_rattled):
    res = TBCalculator(NonOrthogonalSilicon()).compute(si8_rattled)
    assert np.isfinite(res["energy"])
    assert res["forces"].shape == (8, 3)
    np.testing.assert_allclose(res["forces"].sum(axis=0), 0.0, atol=1e-9)


def test_timer_phases_recorded(si8_rattled):
    calc = TBCalculator(GSPSilicon())
    calc.compute(si8_rattled)
    for phase in ("neighbors", "hamiltonian", "diagonalize",
                  "occupations", "repulsive", "forces"):
        assert calc.timer.elapsed(phase) >= 0.0
        assert phase in calc.timer.timers


def test_repr_mentions_model_and_mode():
    r1 = repr(TBCalculator(GSPSilicon()))
    assert "gsp-silicon" in r1 and "Γ" in r1
    r2 = repr(TBCalculator(GSPSilicon(), kpts=2, kT=0.1))
    assert "4 k-points" in r2     # 2×2×2 grid, time-reversal reduced


def test_wrong_species_clear_error(c_diamond):
    with pytest.raises(ModelError, match="does not support"):
        TBCalculator(GSPSilicon()).get_potential_energy(c_diamond)

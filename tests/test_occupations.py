"""Occupations: aufbau filling, degeneracy splitting, Fermi–Dirac, entropy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ElectronicError
from repro.tb.occupations import (
    electronic_entropy,
    fermi_dirac_occupations,
    fermi_function,
    find_fermi_level,
    homo_lumo_gap,
    zero_temperature_occupations,
)
from repro.units import KB


def test_zero_t_simple_filling():
    eps = np.array([-2.0, -1.0, 0.0, 1.0])
    f = zero_temperature_occupations(eps, 4.0)
    np.testing.assert_allclose(f, [2, 2, 0, 0])


def test_zero_t_unsorted_input():
    eps = np.array([1.0, -2.0, 0.0, -1.0])
    f = zero_temperature_occupations(eps, 4.0)
    np.testing.assert_allclose(f, [0, 2, 0, 2])


def test_zero_t_degenerate_shell_split():
    eps = np.array([-1.0, 0.0, 0.0, 0.0])
    f = zero_temperature_occupations(eps, 4.0)
    np.testing.assert_allclose(f, [2, 2 / 3, 2 / 3, 2 / 3])
    assert f.sum() == pytest.approx(4.0)


def test_zero_t_odd_electron_count():
    eps = np.array([-1.0, 0.0, 1.0])
    f = zero_temperature_occupations(eps, 3.0)
    np.testing.assert_allclose(f, [2, 1, 0])


def test_zero_t_overfill_raises():
    with pytest.raises(ElectronicError):
        zero_temperature_occupations(np.array([0.0]), 3.0)


def test_fermi_function_limits():
    eps = np.array([-50.0, 0.0, 50.0])
    f = fermi_function(eps, 0.0, 0.1)
    assert f[0] == pytest.approx(2.0)
    assert f[1] == pytest.approx(1.0)
    assert f[2] == pytest.approx(0.0, abs=1e-12)


def test_find_fermi_level_conserves_charge():
    rng = np.random.default_rng(0)
    eps = np.sort(rng.normal(size=40))
    mu = find_fermi_level(eps, 30.0, kT=0.05)
    total = fermi_function(eps, mu, 0.05).sum()
    assert total == pytest.approx(30.0, abs=1e-8)


def test_fermi_dirac_zero_kt_delegates():
    eps = np.array([-1.0, 0.0, 1.0, 2.0])
    f, mu, s = fermi_dirac_occupations(eps, 4.0, 0.0)
    np.testing.assert_allclose(f, [2, 2, 0, 0])
    assert mu == pytest.approx(0.5)    # HOMO/LUMO midpoint
    assert s == 0.0


def test_entropy_positive_and_zero_limits():
    f = np.array([2.0, 1.0, 0.0])
    s = electronic_entropy(f)
    # only the half-filled state contributes: 2 kB ln2
    assert s == pytest.approx(2 * KB * np.log(2))
    assert electronic_entropy(np.array([2.0, 0.0])) == 0.0


def test_smearing_reduces_to_step_at_low_kt():
    eps = np.linspace(-2, 2, 9)
    f_cold, _, _ = fermi_dirac_occupations(eps, 10.0, 1e-6)
    f_zero = zero_temperature_occupations(eps, 10.0)
    np.testing.assert_allclose(f_cold, f_zero, atol=1e-5)


def test_weighted_fermi_level():
    eps = np.array([-1.0, -1.0, 1.0, 1.0])
    w = np.array([0.25, 0.75, 0.25, 0.75])
    mu = find_fermi_level(eps, 2.0, kT=0.01, weights=w)
    f = fermi_function(eps, mu, 0.01)
    assert float(np.sum(w * f)) == pytest.approx(2.0, abs=1e-6)


def test_weighted_zero_t_raises():
    with pytest.raises(ElectronicError):
        fermi_dirac_occupations(np.array([0.0, 1.0]), 1.0, 0.0,
                                weights=np.array([0.5, 0.5]))


# ------------------------------------------------------------------ the
# find_fermi_level non-convergence contract (satellite bugfix): an
# unconverged bisection must never silently return its midpoint.

def test_find_fermi_level_raises_on_nonconvergence():
    """Constructed non-convergent input: a metallic spectrum with far too
    few iterations to meet the tolerance — the old code returned the
    (wrong) midpoint, the fix raises."""
    rng = np.random.default_rng(1)
    eps = np.sort(rng.normal(size=50))
    with pytest.raises(ElectronicError, match="did not converge"):
        find_fermi_level(eps, 37.0, kT=0.05, tol=1e-14, max_iter=3)


def test_find_fermi_level_raises_on_unresolvable_fraction():
    """kT far below float resolution with a genuinely fractional filling
    of a level: no representable μ satisfies the count — raise, don't
    hand back a midpoint whose occupations are off by O(1)."""
    eps = np.array([-1.0, 0.0, 1.0])
    # 4.5 electrons: half an electron must sit fractionally on ε = 1,
    # which needs μ = 1 + kT·ln(3); at kT = 1e-30 that rounds to exactly
    # 1.0, where the count jumps 4 → 5 → 6 between adjacent doubles
    with pytest.raises(ElectronicError, match="did not converge"):
        find_fermi_level(eps, 4.5, kT=1e-30)


def test_find_fermi_level_gap_midpoint_deliberate():
    """Degenerate mid-gap / kT → 0 case: the bisection runs out of
    iterations with the bracket still spanning a clean gap whose
    midpoint carries exactly N electrons — the solver returns that gap
    midpoint deliberately instead of the (wrong) bracket midpoint."""
    eps = np.array([-1.0, 0.5, 0.6, 2.0])
    mu = find_fermi_level(eps, 2.0, kT=1e-30, max_iter=1)
    assert mu == pytest.approx(-0.25, abs=1e-12)   # (−1 + 0.5)/2
    # and the count there is exact
    assert fermi_function(eps, mu, 1e-30).sum() == pytest.approx(2.0)


def test_find_fermi_level_converged_path_unchanged():
    rng = np.random.default_rng(2)
    eps = np.sort(rng.normal(size=30))
    mu = find_fermi_level(eps, 17.0, kT=0.1)
    assert fermi_function(eps, mu, 0.1).sum() == pytest.approx(17.0,
                                                               abs=1e-9)


def test_homo_lumo_gap_insulator():
    eps = np.array([-2.0, -1.0, 1.0, 3.0])
    f = np.array([2.0, 2.0, 0.0, 0.0])
    homo, lumo, gap = homo_lumo_gap(eps, f)
    assert (homo, lumo, gap) == (-1.0, 1.0, 2.0)


def test_homo_lumo_gap_metal_fractional():
    eps = np.array([-1.0, 0.0, 0.0, 1.0])
    f = np.array([2.0, 1.0, 1.0, 0.0])
    homo, lumo, gap = homo_lumo_gap(eps, f)
    assert gap == 0.0
    assert homo == lumo == 0.0


def test_homo_lumo_all_filled_raises():
    with pytest.raises(ElectronicError):
        homo_lumo_gap(np.array([0.0, 1.0]), np.array([2.0, 2.0]))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 30),
    seed=st.integers(0, 10**6),
    kt=st.floats(1e-3, 0.5),
)
def test_property_charge_conservation_and_bounds(n, seed, kt):
    rng = np.random.default_rng(seed)
    eps = np.sort(rng.normal(scale=3.0, size=n))
    nelec = float(rng.integers(1, 2 * n))
    f, mu, s = fermi_dirac_occupations(eps, nelec, kt)
    assert f.sum() == pytest.approx(nelec, abs=1e-7)
    assert np.all(f >= 0) and np.all(f <= 2.0 + 1e-12)
    assert s >= 0.0
    # occupations monotone non-increasing with energy
    assert np.all(np.diff(f) <= 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 40),
    seed=st.integers(0, 10**6),
    kt=st.floats(1e-3, 0.5),
)
def test_property_weighted_charge_conservation(n, seed, kt):
    """Σ w·f = N over random spectra, random positive weights and kT —
    the conservation contract of the k-sampled occupation layer."""
    rng = np.random.default_rng(seed)
    eps = np.sort(rng.normal(scale=3.0, size=n))
    w = rng.uniform(0.05, 1.0, size=n)
    capacity = 2.0 * w.sum()
    nelec = float(rng.uniform(0.1, 0.9) * capacity)
    f, mu, s = fermi_dirac_occupations(eps, nelec, kt, weights=w)
    assert float(np.sum(w * f)) == pytest.approx(nelec, abs=1e-7)
    assert np.all(f >= 0) and np.all(f <= 2.0 + 1e-12)
    assert s >= 0.0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    gap=st.floats(1e-6, 1e-2),
    kt=st.floats(1e-4, 1e-2),
)
def test_property_weighted_near_degenerate_gap_edges(seed, gap, kt):
    """Near-degenerate levels straddling a tiny gap — exactly the regime
    the non-convergence bugfix changes: either the solver converges and
    conserves Σ w·f = N, or it raises; it never mis-returns silently."""
    rng = np.random.default_rng(seed)
    # valence shell at 0 (two near-degenerate levels), conduction at gap
    eps = np.array([-1.0, -gap / 2, gap / 2 - 1e-9, gap / 2, 1.0])
    w = rng.uniform(0.1, 1.0, size=5)
    nelec = 2.0 * float(w[:3].sum())          # fill through the gap edge
    try:
        f, mu, s = fermi_dirac_occupations(eps, nelec, kt, weights=w)
    except ElectronicError:
        return                                 # loud refusal is allowed
    assert float(np.sum(w * f)) == pytest.approx(nelec, abs=1e-7)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 25), seed=st.integers(0, 10**6))
def test_property_zero_t_aufbau(n, seed):
    rng = np.random.default_rng(seed)
    eps = rng.normal(size=n)
    nelec = float(rng.integers(0, 2 * n + 1))
    f = zero_temperature_occupations(eps, nelec)
    assert f.sum() == pytest.approx(nelec, abs=1e-9)
    order = np.argsort(eps)
    # no level above an unfilled lower level gets electrons
    fs = f[order]
    seen_partial = False
    for v in fs:
        if seen_partial:
            assert v <= 1e-9 or abs(v - fs[np.flatnonzero(fs > 1e-9)[-1]]) < 2.0
        if 1e-9 < v < 2.0 - 1e-9:
            seen_partial = True

"""Lattice dynamics and elastic constants."""

import numpy as np
import pytest

from repro.analysis.elastic import born_stability_cubic, cubic_elastic_constants
from repro.analysis.phonons import (
    acoustic_sum_rule_violation, dynamical_matrix, gamma_frequencies,
    phonon_dos_from_frequencies,
)
from repro.classical import StillingerWeber
from repro.errors import GeometryError
from repro.geometry import bulk_silicon, supercell
from repro.tb import GSPSilicon, TBCalculator


@pytest.fixture(scope="module")
def si8_dynmat():
    return dynamical_matrix(bulk_silicon(), TBCalculator(GSPSilicon()),
                            displacement=0.015)


def test_dynamical_matrix_symmetric(si8_dynmat):
    np.testing.assert_allclose(si8_dynmat, si8_dynmat.T, atol=1e-10)


def test_acoustic_sum_rule(si8_dynmat):
    viol = acoustic_sum_rule_violation(si8_dynmat, bulk_silicon().masses)
    assert viol < 1e-6


def test_three_acoustic_zero_modes():
    nu, _ = gamma_frequencies(bulk_silicon(), TBCalculator(GSPSilicon()),
                              displacement=0.015)
    assert np.all(np.abs(nu[:3]) < 0.05)       # translations
    assert nu[3] > 1.0                          # then real phonons


def test_si_optical_phonon_scale():
    """GSP Γ optical modes land in the 14–20 THz window (expt 15.5)."""
    nu, _ = gamma_frequencies(bulk_silicon(), TBCalculator(GSPSilicon()),
                              displacement=0.015)
    assert 13.0 < nu.max() < 21.0


def test_no_imaginary_modes_at_equilibrium():
    nu, _ = gamma_frequencies(bulk_silicon(), TBCalculator(GSPSilicon()),
                              displacement=0.015)
    assert nu.min() > -0.05


def test_sw_phonons_similar_scale():
    nu, _ = gamma_frequencies(bulk_silicon(), StillingerWeber(),
                              displacement=0.015)
    assert 12.0 < nu.max() < 19.0
    assert np.all(np.abs(nu[:3]) < 0.05)


def test_eigenvectors_orthonormal():
    nu, vecs = gamma_frequencies(bulk_silicon(), StillingerWeber())
    np.testing.assert_allclose(vecs.T @ vecs, np.eye(24), atol=1e-8)


def test_dos_from_frequencies_normalised():
    nu = np.array([0.0, 0.0, 0.0, 5.0, 10.0, 15.0, 15.0])
    f, dos = phonon_dos_from_frequencies(nu, nbins=30)
    assert np.trapezoid(dos, f) == pytest.approx(1.0)
    with pytest.raises(GeometryError):
        phonon_dos_from_frequencies(np.zeros(3))


def test_dynamical_matrix_validation():
    with pytest.raises(GeometryError):
        dynamical_matrix(bulk_silicon(), TBCalculator(GSPSilicon()),
                         displacement=0.0)


# ---------------------------------------------------------------- elastic
def test_gsp_elastic_constants_shape():
    """GSP Si at Γ-sampled 64 atoms: C11 > C12 > 0, C44 > 0, Born stable,
    and B = (C11+2C12)/3 near the 98 GPa calibration."""
    at = supercell(bulk_silicon(), 2)
    ec = cubic_elastic_constants(at, lambda: TBCalculator(GSPSilicon()))
    assert ec["c11_gpa"] > ec["c12_gpa"] > 0
    assert ec["c44_gpa"] > 0
    assert ec["c44_unrelaxed_gpa"] > ec["c44_gpa"]
    assert born_stability_cubic(ec["c11"], ec["c12"], ec["c44"])
    assert ec["bulk_modulus_gpa"] == pytest.approx(98.0, rel=0.15)


def test_elastic_requires_relaxed_input():
    from repro.geometry import rattle

    at = rattle(bulk_silicon(), 0.2, seed=1)
    with pytest.raises(GeometryError, match="not relaxed"):
        cubic_elastic_constants(at, lambda: TBCalculator(GSPSilicon()))


def test_elastic_requires_periodicity():
    from repro.geometry import carbon_chain

    with pytest.raises(GeometryError):
        cubic_elastic_constants(carbon_chain(3),
                                lambda: TBCalculator(GSPSilicon()))

"""Tests for timing, tables, rng and validation utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import default_rng, spawn
from repro.utils.tables import Table, format_series, sparkline
from repro.utils.timing import PhaseTimer, Timer, timed
from repro.utils.validation import as_float_array, check_positive, check_shape


# ---------------------------------------------------------------- timing
def test_timer_accumulates():
    t = Timer()
    with t:
        time.sleep(0.01)
    with t:
        time.sleep(0.01)
    assert t.calls == 2
    assert t.elapsed >= 0.015
    assert t.mean == pytest.approx(t.elapsed / 2)


def test_timer_double_start_raises():
    t = Timer()
    t.start()
    with pytest.raises(RuntimeError):
        t.start()


def test_timer_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_timer_reset():
    t = Timer()
    with t:
        pass
    t.reset()
    assert t.elapsed == 0.0 and t.calls == 0


def test_phase_timer_fractions_sum_to_one():
    pt = PhaseTimer()
    with pt.phase("a"):
        time.sleep(0.005)
    with pt.phase("b"):
        time.sleep(0.005)
    fr = pt.fractions()
    assert set(fr) == {"a", "b"}
    assert sum(fr.values()) == pytest.approx(1.0)


def test_phase_timer_unknown_phase_elapsed_zero():
    assert PhaseTimer().elapsed("nothing") == 0.0


def test_phase_timer_report_mentions_phases():
    pt = PhaseTimer()
    with pt.phase("diag"):
        pass
    assert "diag" in pt.report()


def test_timed_sink():
    got = {}
    with timed("label", sink=lambda k, v: got.update({k: v})):
        pass
    assert "label" in got and got["label"] >= 0


# ---------------------------------------------------------------- tables
def test_table_renders_aligned_columns():
    t = Table(["N", "t"], title="T")
    t.add_row([64, 0.125])
    t.add_row([512, 3.5])
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "64" in text and "512" in text
    # all data lines same width
    assert len(lines[2]) == len(lines[3])


def test_table_row_length_mismatch():
    t = Table(["a", "b"])
    with pytest.raises(ValueError, match="columns"):
        t.add_row([1])


def test_format_series_lengths_must_match():
    with pytest.raises(ValueError):
        format_series([1, 2], [1])


def test_format_series_content():
    out = format_series([1, 2], [10.0, 20.0], xlabel="P", ylabel="S")
    assert "P" in out and "S" in out and "20" in out


def test_sparkline_length_and_empty():
    assert sparkline([]) == ""
    s = sparkline(list(range(200)), width=40)
    assert len(s) == 40


def test_sparkline_constant_series():
    s = sparkline([5.0] * 10)
    assert len(s) == 10


# ---------------------------------------------------------------- rng
def test_default_rng_deterministic():
    a = default_rng(42).normal(size=5)
    b = default_rng(42).normal(size=5)
    np.testing.assert_array_equal(a, b)


def test_default_rng_passthrough():
    g = np.random.default_rng(1)
    assert default_rng(g) is g


def test_spawn_children_independent():
    children = spawn(default_rng(7), 3)
    assert len(children) == 3
    draws = [c.normal() for c in children]
    assert len(set(draws)) == 3


# ---------------------------------------------------------------- validation
def test_as_float_array_shape_wildcard():
    arr = as_float_array([[1, 2, 3]], "x", shape=(-1, 3))
    assert arr.dtype == float


def test_as_float_array_bad_shape():
    with pytest.raises(ValueError, match="shape"):
        as_float_array([[1, 2]], "x", shape=(-1, 3))


def test_as_float_array_nonfinite():
    with pytest.raises(ValueError, match="non-finite"):
        as_float_array([np.nan], "x")


def test_check_shape_ndim_mismatch():
    with pytest.raises(ValueError, match="dimensions"):
        check_shape(np.zeros((2, 2)), "m", (2,))


def test_check_positive():
    assert check_positive(1.5, "v") == 1.5
    with pytest.raises(ValueError):
        check_positive(0.0, "v")
    assert check_positive(0.0, "v", strict=False) == 0.0
    with pytest.raises(ValueError):
        check_positive(-1.0, "v", strict=False)

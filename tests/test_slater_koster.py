"""Slater–Koster blocks and gradients against hand values and finite
differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tb.slater_koster import (
    CHANNELS, sk_block_gradients, sk_blocks, validate_channels,
)


def channels(vals):
    return {ch: np.array([v]) for ch, v in zip(CHANNELS, vals)}


def test_block_along_z_axis():
    """Bond along z: only m-conserving elements survive."""
    V = channels([1.0, 2.0, 3.0, 4.0, 5.0])   # sss sps pss pps ppp
    B = sk_blocks(np.array([[0.0, 0.0, 1.0]]), V)[0]
    expect = np.zeros((4, 4))
    expect[0, 0] = 1.0          # ssσ
    expect[0, 3] = 2.0          # s–p_z σ
    expect[3, 0] = -3.0         # p_z–s σ
    expect[3, 3] = 4.0          # ppσ
    expect[1, 1] = 5.0          # ppπ (x)
    expect[2, 2] = 5.0          # ppπ (y)
    np.testing.assert_allclose(B, expect, atol=1e-14)


def test_block_along_x_axis():
    V = channels([1.0, 2.0, 2.0, 4.0, 5.0])
    B = sk_blocks(np.array([[1.0, 0.0, 0.0]]), V)[0]
    assert B[0, 1] == pytest.approx(2.0)
    assert B[1, 0] == pytest.approx(-2.0)
    assert B[1, 1] == pytest.approx(4.0)
    assert B[2, 2] == pytest.approx(5.0)
    assert B[3, 3] == pytest.approx(5.0)
    assert B[1, 2] == pytest.approx(0.0)


def test_block_general_direction_pp_formula():
    u = np.array([[0.6, 0.0, 0.8]])
    V = channels([0.0, 0.0, 0.0, 2.0, -0.5])
    B = sk_blocks(u, V)[0]
    # E_{x,z} = l·n (ppσ − ppπ)
    assert B[1, 3] == pytest.approx(0.6 * 0.8 * 2.5)
    # E_{x,x} = l² ppσ + (1−l²) ppπ
    assert B[1, 1] == pytest.approx(0.36 * 2.0 + 0.64 * (-0.5))


def test_block_reversal_symmetry():
    """B(−u) must equal B(u).T for homonuclear channels (Hermiticity)."""
    rng = np.random.default_rng(1)
    u = rng.normal(size=(6, 3))
    u /= np.linalg.norm(u, axis=1)[:, None]
    vals = rng.normal(size=(6, 5))
    V = {ch: vals[:, k] for k, ch in enumerate(CHANNELS)}
    V["pss"] = V["sps"]          # homonuclear
    Bf = sk_blocks(u, V)
    Bb = sk_blocks(-u, V)
    np.testing.assert_allclose(Bb, np.swapaxes(Bf, 1, 2), atol=1e-13)


def test_gradient_matches_finite_difference():
    rng = np.random.default_rng(3)

    def radial(r):
        # smooth synthetic radial channels with distinct shapes
        V = {
            "sss": -1.8 * np.exp(-r / 1.3),
            "sps": 2.0 * np.exp(-r / 1.1),
            "pss": 1.5 * np.exp(-r / 1.7),
            "pps": 3.1 * np.exp(-r / 0.9),
            "ppp": -0.9 * np.exp(-r / 1.5),
        }
        dV = {
            "sss": -V["sss"] / 1.3 * 0 - 1.8 * np.exp(-r / 1.3) * (-1 / 1.3),
            "sps": 2.0 * np.exp(-r / 1.1) * (-1 / 1.1),
            "pss": 1.5 * np.exp(-r / 1.7) * (-1 / 1.7),
            "pps": 3.1 * np.exp(-r / 0.9) * (-1 / 0.9),
            "ppp": -0.9 * np.exp(-r / 1.5) * (-1 / 1.5),
        }
        dV["sss"] = -1.8 * np.exp(-r / 1.3) * (-1 / 1.3)
        return V, dV

    vec = rng.normal(size=(4, 3)) * 2.0 + np.array([2.0, 0.5, -1.0])
    r = np.linalg.norm(vec, axis=1)
    u = vec / r[:, None]
    V, dV = radial(r)
    G = sk_block_gradients(u, r, V, dV)

    h = 1e-6
    for c in range(3):
        vp = vec.copy(); vp[:, c] += h
        vm = vec.copy(); vm[:, c] -= h
        rp = np.linalg.norm(vp, axis=1); rm = np.linalg.norm(vm, axis=1)
        Bp = sk_blocks(vp / rp[:, None], radial(rp)[0])
        Bm = sk_blocks(vm / rm[:, None], radial(rm)[0])
        num = (Bp - Bm) / (2 * h)
        np.testing.assert_allclose(G[:, c], num, atol=1e-7)


def test_validate_channels_catches_missing_and_bad_shape():
    V = channels([1, 2, 3, 4, 5])
    validate_channels(V, 1)
    bad = dict(V)
    del bad["ppp"]
    with pytest.raises(KeyError):
        validate_channels(bad, 1)
    with pytest.raises(ValueError):
        validate_channels(V, 2)


@settings(max_examples=30, deadline=None)
@given(
    theta=st.floats(0.01, 3.13), phi=st.floats(0.0, 6.28),
    vals=st.tuples(*[st.floats(-5, 5) for _ in range(5)]),
)
def test_property_block_rotation_consistency(theta, phi, vals):
    """Trace of the pp block is rotation invariant: ppσ + 2ppπ."""
    u = np.array([[np.sin(theta) * np.cos(phi),
                   np.sin(theta) * np.sin(phi),
                   np.cos(theta)]])
    V = channels(vals)
    B = sk_blocks(u, V)[0]
    assert np.trace(B[1:, 1:]) == pytest.approx(vals[3] + 2 * vals[4],
                                                abs=1e-10)
    # s-p column has magnitude |sps|
    assert np.linalg.norm(B[0, 1:]) == pytest.approx(abs(vals[1]), abs=1e-10)

"""Shared test helpers (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np


def numerical_forces(atoms, calc_factory, h: float = 1e-5,
                     atom_indices=None) -> np.ndarray:
    """Central-difference forces; ``calc_factory()`` returns a fresh
    calculator so caching never contaminates the stencil."""
    n = len(atoms)
    idx = range(n) if atom_indices is None else atom_indices
    f = np.zeros((n, 3))
    for i in idx:
        for c in range(3):
            ap = atoms.copy(); ap.positions[i, c] += h
            am = atoms.copy(); am.positions[i, c] -= h
            ep = calc_factory().get_potential_energy(ap)
            em = calc_factory().get_potential_energy(am)
            f[i, c] = -(ep - em) / (2.0 * h)
    return f

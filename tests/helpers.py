"""Shared test helpers (importable, unlike conftest).

One finite-difference force stencil and one force comparator for the
whole suite — ``test_forces``, ``test_kfoe``, ``test_linscale`` and the
symmetry parity tests all used to carry private copies of both.
"""

from __future__ import annotations

import numpy as np


def fd_forces(atoms, calc_factory, h: float = 1e-5, atom_indices=None,
              components=None) -> np.ndarray:
    """Central-difference forces ``−ΔF/Δx`` on the *free energy*.

    The free energy is the variational quantity whose gradient the
    Hellmann–Feynman force equals at fixed electronic temperature (and
    equals the plain energy at kT = 0, so the distinction costs
    nothing).  ``calc_factory()`` must return a *fresh* calculator so
    caching never contaminates the stencil.

    Parameters
    ----------
    atom_indices :
        Restrict the stencil to these atoms (all by default) — each
        differentiated component costs two full evaluations.
    components :
        Even finer restriction: an iterable of ``(atom, axis)`` pairs.
        Overrides *atom_indices*.

    Entries not differenced are left at zero.
    """
    n = len(atoms)
    if components is None:
        idx = range(n) if atom_indices is None else atom_indices
        components = [(i, c) for i in idx for c in range(3)]
    f = np.zeros((n, 3))
    for i, c in components:
        ap = atoms.copy(); ap.positions[i, c] += h
        am = atoms.copy(); am.positions[i, c] -= h
        ep = _free_energy(calc_factory(), ap)
        em = _free_energy(calc_factory(), am)
        f[i, c] = -(ep - em) / (2.0 * h)
    return f


def _free_energy(calc, atoms) -> float:
    if hasattr(calc, "get_free_energy"):
        return calc.get_free_energy(atoms)
    return calc.get_potential_energy(atoms)


def assert_forces_match(actual, expected, atol: float = 1e-6,
                        indices=None, label: str = "forces") -> None:
    """Assert two (N, 3) force arrays agree to *atol* (eV/Å).

    With *indices*, only those atoms' rows are compared — the partner of
    a partial :func:`fd_forces` stencil.
    """
    a = np.asarray(actual, dtype=float)
    e = np.asarray(expected, dtype=float)
    if indices is not None:
        a, e = a[list(indices)], e[list(indices)]
    np.testing.assert_allclose(a, e, rtol=0, atol=atol,
                               err_msg=f"{label} disagree beyond "
                                       f"{atol} eV/Å")

"""Golden regression: the F6 silicon EOS ladder must not drift.

The fitted (V₀, E_coh, B₀) of diamond and β-tin silicon — produced by
the strain-sweep driver on symmetry-reduced k grids — are pinned to
``tests/golden/eos_si.json``.  A PR that shifts them beyond the stored
tolerances is changing the published physics (model parameters, k
folding, EOS fitting, force/energy assembly ...) and must regenerate
the goldens *deliberately* via ``tests/golden/regen_eos_si.py``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from tests.golden.regen_eos_si import sweep_phase

GOLDEN = pathlib.Path(__file__).parent / "golden" / "eos_si.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def fits(golden):
    out = {}
    for name, spec in golden["phases"].items():
        out[name] = sweep_phase(name, spec, golden["settings"])
    return out


@pytest.mark.parametrize("name", ["diamond", "beta-tin"])
def test_golden_eos_parameters(name, golden, fits):
    spec = golden["phases"][name]
    result, calc = fits[name]
    eos = result.eos
    assert eos.v0 == pytest.approx(spec["v0"], abs=spec["tol_v0"]), \
        f"{name} V0 drifted — regen goldens only for a deliberate change"
    assert eos.e0 == pytest.approx(spec["e0"], abs=spec["tol_e0"]), \
        f"{name} cohesive energy drifted"
    assert eos.b0_gpa == pytest.approx(spec["b0_gpa"],
                                       abs=spec["tol_b0_gpa"]), \
        f"{name} bulk modulus drifted"
    # the symmetry wedge itself is part of the contract
    assert len(calc.kpts_frac) == spec["n_kpoints_wedge"]
    assert eos.residual < 0.01


def test_golden_ladder_ordering(fits):
    """Diamond stays the ground state, below the metallic phase."""
    dia = fits["diamond"][0].eos
    btin = fits["beta-tin"][0].eos
    assert dia.e0 < btin.e0 - 0.05

"""ASE calculator bridge: parity with the native calculators.

``ase`` is an optional extra — the parity suite skips cleanly when it
is absent (the CI ``ase-bridge`` job installs ``.[ase]`` and runs it),
while the import-guard tests run only *without* ase, so this module
exercises both halves of the optionality contract whichever
environment it lands in.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ase_bridge import HAVE_ASE, PytbmdCalculator, _voigt
from repro.calculators import make_calculator
from repro.errors import ReproError
from repro.geometry import bulk_silicon, rattle

needs_ase = pytest.mark.skipif(
    not HAVE_ASE, reason="optional dependency 'ase' not installed")
without_ase = pytest.mark.skipif(
    HAVE_ASE, reason="ase is installed; guard path unreachable")

#: the acceptance bar: the bridge is a repack, not a recomputation
TOL = 1e-10


def _ase_atoms_from(repro_atoms):
    from ase import Atoms

    return Atoms(symbols=repro_atoms.symbols,
                 positions=repro_atoms.positions.copy(),
                 cell=repro_atoms.cell.matrix.copy(), pbc=True)


# -- environment-independent -----------------------------------------------

def test_module_imports_without_ase():
    """The module (and the subclass definition) always import; only the
    constructor needs the real dependency."""
    assert isinstance(HAVE_ASE, bool)
    assert PytbmdCalculator.implemented_properties == [
        "energy", "free_energy", "forces", "stress"]


def test_voigt_order():
    s = np.arange(9.0).reshape(3, 3)
    sym = 0.5 * (s + s.T)
    np.testing.assert_allclose(
        _voigt(s), [sym[0, 0], sym[1, 1], sym[2, 2],
                    sym[1, 2], sym[0, 2], sym[0, 1]])


# -- without ase: the import guard -----------------------------------------

@without_ase
def test_constructor_raises_with_install_hint():
    with pytest.raises(ReproError, match=r"pip install pytbmd\[ase\]"):
        PytbmdCalculator(model="sw-si")


@without_ase
def test_ase_relax_scenario_not_registered():
    from repro.scenarios import available_scenarios

    assert "ase-relax" not in available_scenarios()


# -- with ase: parity against the native calculators -----------------------

@needs_ase
@pytest.mark.parametrize("spec", [
    {"model": "sw-si"},
    {"model": "gsp-si", "kT": 0.1},
    {"model": "gsp-si", "kT": 0.1, "kgrid": 2, "kgrid_reduce": "symmetry"},
    {"model": "gsp-si", "solver": "linscale", "kT": 0.2, "r_loc": 6.0,
     "order": 150},
], ids=["sw", "tb-gamma", "tb-kgrid", "linscale"])
def test_parity_energy_forces_stress(spec):
    at = rattle(bulk_silicon(), 0.05, seed=11)
    native = make_calculator(dict(spec)).compute(at, forces=True)

    aa = _ase_atoms_from(at)
    aa.calc = PytbmdCalculator(dict(spec))
    assert abs(aa.get_potential_energy() - native["energy"]) <= TOL
    np.testing.assert_allclose(aa.get_forces(), native["forces"],
                               atol=TOL)
    if "free_energy" in native:
        e_free = aa.get_potential_energy(force_consistent=True)
        assert abs(e_free - native["free_energy"]) <= TOL
    if "stress" in native:
        np.testing.assert_allclose(aa.get_stress(voigt=True),
                                   _voigt(native["stress"]), atol=TOL)


@needs_ase
def test_kwargs_win_over_spec_and_validate():
    calc = PytbmdCalculator({"model": "sw-si", "skin": 0.5}, skin=1.0)
    assert calc.spec.skin == 1.0 and calc.spec.model == "sw-si"
    with pytest.raises(ReproError, match="did you mean 'gsp-si'"):
        PytbmdCalculator(model="gsp_si")


@needs_ase
def test_positions_only_updates_ride_the_fast_path():
    """Moving atoms through ASE hits the wrapped calculator's
    positions-only state path (the in-place mirror contract)."""
    aa = _ase_atoms_from(bulk_silicon())
    calc = PytbmdCalculator(model="gsp-si", solver="linscale", kT=0.2,
                            r_loc=6.0, order=150)
    aa.calc = calc
    aa.get_potential_energy()
    aa.positions[0, 0] += 0.02
    aa.get_potential_energy()
    aa.positions[0, 1] += 0.02
    aa.get_potential_energy()
    report = calc.state_report()
    assert report["hamiltonian"]["pattern_builds"] == 1


@needs_ase
def test_reuse_parity_across_bfgs_relax():
    """A full ASE BFGS relaxation lands on the same minimum with warm
    state reuse on and off — the bridge twin of the sweep/MD warm-parity
    contract (1e-6, the repo-wide fast-path tolerance)."""
    from ase.optimize import BFGS

    results = {}
    for reuse in (True, False):
        aa = _ase_atoms_from(rattle(bulk_silicon(), 0.08, seed=3))
        aa.calc = PytbmdCalculator(model="gsp-si", solver="linscale",
                                   kT=0.2, r_loc=6.0, order=200,
                                   reuse=reuse)
        BFGS(aa, logfile=None).run(fmax=0.05, steps=15)
        results[reuse] = (aa.get_potential_energy(),
                          aa.positions.copy())
    e_on, pos_on = results[True]
    e_off, pos_off = results[False]
    assert e_on == pytest.approx(e_off, abs=1e-6)
    np.testing.assert_allclose(pos_on, pos_off, atol=1e-6)


@needs_ase
def test_cell_change_invalidates_correctly():
    """Scaling the cell through ASE matches a fresh calculator on the
    scaled structure — the state contract's cell-change branch."""
    at = bulk_silicon()
    aa = _ase_atoms_from(at)
    aa.calc = PytbmdCalculator(model="gsp-si", kT=0.1)
    aa.get_potential_energy()
    aa.set_cell(aa.cell[:] * 1.01, scale_atoms=True)
    warm = aa.get_potential_energy()

    from repro.geometry.transform import strain

    strained = strain(at, 0.01 * np.eye(3))
    cold = make_calculator({"model": "gsp-si",
                            "kT": 0.1}).compute(strained, forces=False)
    assert abs(warm - cold["energy"]) <= TOL


@needs_ase
def test_ase_relax_scenario_registered_and_runs():
    from repro.scenarios import StructureHandle, get_scenario
    from repro.service import BatchClient, BatchService

    svc = BatchService(nworkers=1)
    try:
        client = BatchClient(svc)
        at = bulk_silicon()
        client.load("ase-si", at, calc={"model": "sw-si"})
        handle = StructureHandle("ase-si", at, {"model": "sw-si"})
        scn = get_scenario("ase-relax")
        res = scn.run(client, handle, scn.resolve_params(
            {"rattle": 0.05, "fmax": 0.05, "max_steps": 40}))
        assert res.metrics["converged"] is True
        assert res.metrics["e_final_ev"] < res.metrics["e_initial_ev"]
        assert res.metrics["fmax_final"] <= 0.05
    finally:
        svc.close()

"""Analysis: RDF, ADF, rings, MSD, VACF, EOS fits, time series."""

import numpy as np
import pytest

from repro.analysis import (
    angle_distribution, birch_murnaghan_fit, block_average, bond_statistics,
    coordination_numbers, diffusion_coefficient, mean_squared_displacement,
    murnaghan_fit, phonon_dos, radial_distribution, ring_statistics,
    running_mean, velocity_autocorrelation,
)
from repro.analysis.adf import mean_angle
from repro.analysis.coordination import undercoordinated_atoms
from repro.analysis.rdf import coordination_from_rdf, first_peak
from repro.analysis.rings import connected_fragments, count_polygons
from repro.analysis.timeseries import drift_per_step
from repro.analysis.vacf import dos_cutoff
from repro.errors import GeometryError
from repro.geometry import bulk_silicon, graphene_sheet, nanotube, supercell


# ---------------------------------------------------------------- RDF
def test_rdf_crystal_first_peak_position():
    at = supercell(bulk_silicon(), 2)
    r, g = radial_distribution(at, r_max=4.5, nbins=150)
    peak = first_peak(r, g, r_window=(2.0, 2.8))
    assert peak == pytest.approx(5.431 * np.sqrt(3) / 4, abs=0.05)


def test_rdf_integrates_to_coordination():
    at = supercell(bulk_silicon(), 2)
    r, g = radial_distribution(at, r_max=3.2, nbins=400)
    density = len(at) / at.cell.volume
    n = coordination_from_rdf(r, g, density, r_min=2.8)
    assert n == pytest.approx(4.0, abs=0.15)


def test_rdf_gas_limit_near_one():
    """Far tail of a homogeneous crystal g(r) oscillates around 1."""
    at = supercell(bulk_silicon(), 3)
    r, g = radial_distribution(at, r_max=8.0, nbins=160)
    tail = g[(r > 6.0)]
    assert 0.5 < tail.mean() < 1.5


def test_rdf_multi_frame_average():
    from repro.geometry import rattle

    frames = [rattle(bulk_silicon(), 0.05, seed=s) for s in range(3)]
    r, g = radial_distribution(frames, r_max=4.0, nbins=100)
    assert np.all(g >= 0)
    assert g[r < 1.8].max() == 0.0      # no unphysical close pairs


def test_rdf_input_validation():
    with pytest.raises(GeometryError):
        radial_distribution(bulk_silicon(), r_max=-1.0)
    with pytest.raises(GeometryError):
        radial_distribution([], r_max=3.0)


# ---------------------------------------------------------------- ADF
def test_adf_diamond_tetrahedral_peak():
    at = supercell(bulk_silicon(), 2)
    ang, dens = angle_distribution(at, r_cut=2.6, nbins=180)
    assert ang[np.argmax(dens)] == pytest.approx(109.47, abs=1.5)
    assert mean_angle(at, 2.6) == pytest.approx(109.47, abs=1.0)


def test_adf_graphene_120_degrees():
    g = graphene_sheet(2, 2)
    ang, dens = angle_distribution(g, r_cut=1.6)
    assert ang[np.argmax(dens)] == pytest.approx(120.0, abs=2.0)


def test_adf_normalised():
    at = supercell(bulk_silicon(), 2)
    ang, dens = angle_distribution(at, r_cut=2.6, nbins=90)
    assert np.sum(dens) * (ang[1] - ang[0]) == pytest.approx(1.0)


# ---------------------------------------------------------------- coordination
def test_coordination_and_bond_stats():
    at = supercell(bulk_silicon(), 2)
    np.testing.assert_array_equal(coordination_numbers(at, 2.6), 4)
    stats = bond_statistics(at, 2.6)
    assert stats["mean_coordination"] == 4.0
    assert stats["coordination_histogram"] == {4: 64}
    assert stats["mean_bond_length"] == pytest.approx(2.3516, abs=1e-3)
    assert stats["n_bonds"] == 128


def test_undercoordinated_tube_edges():
    t = nanotube(10, 0, cells=2, periodic=False)
    under = undercoordinated_atoms(t, 1.6, target=3)
    assert len(under) == 20          # both open rings


# ---------------------------------------------------------------- rings
def test_ring_statistics_graphene():
    # 4×4: wide enough that torus-wrapping cycles exceed hexagon length,
    # so the census equals the 32 faces exactly
    g = graphene_sheet(4, 4)
    stats = ring_statistics(g, 1.6)
    assert stats == {6: 32}
    assert count_polygons(g, 1.6) == (0, 32, 0)


def test_ring_statistics_small_cell_aliasing_documented():
    # 3×3: six wrap-around 6-cycles alias on top of the 18 faces — the
    # documented small-cell caveat
    g = graphene_sheet(3, 3)
    assert ring_statistics(g, 1.6) == {6: 24}


def test_ring_statistics_nanotube():
    t = nanotube(6, 6, cells=2, periodic=False)
    p5, p6, p7 = count_polygons(t, 1.65)
    assert p5 == 0 and p7 == 0
    assert p6 > 10


def test_ring_statistics_invalid():
    with pytest.raises(GeometryError):
        ring_statistics(graphene_sheet(1, 1), 1.6, max_size=2)


def test_connected_fragments():
    from repro.geometry import Atoms, Cell

    pos = [[0, 0, 0], [1.4, 0, 0], [8, 8, 8]]
    at = Atoms(["C"] * 3, pos, cell=Cell.cubic(20, pbc=False))
    frags = connected_fragments(at, 1.6)
    assert [len(f) for f in frags] == [2, 1]


# ---------------------------------------------------------------- MSD
def test_msd_ballistic_quadratic():
    """Constant-velocity atoms: MSD(τ) = v²τ²."""
    t = np.arange(20, dtype=float)
    v = 0.3
    pos = np.zeros((20, 2, 3))
    pos[:, 0, 0] = v * t
    pos[:, 1, 1] = v * t
    msd = mean_squared_displacement(pos)
    np.testing.assert_allclose(msd, (v * t) ** 2, atol=1e-12)


def test_msd_static_zero():
    pos = np.ones((10, 3, 3))
    np.testing.assert_allclose(mean_squared_displacement(pos), 0.0)


def test_msd_origin_averaging():
    rng = np.random.default_rng(2)
    pos = np.cumsum(rng.normal(size=(200, 5, 3)), axis=0) * 0.1
    msd1 = mean_squared_displacement(pos, origins=1)
    msd4 = mean_squared_displacement(pos, origins=4)
    # averaged version smoother but same scale
    assert msd4[50] == pytest.approx(msd1[50], rel=1.0)


def test_diffusion_coefficient_brownian():
    """Random walk: D from MSD slope matches the step variance."""
    rng = np.random.default_rng(3)
    dt = 1.0
    sigma = 0.05
    steps = rng.normal(0, sigma, size=(4000, 20, 3))
    pos = np.cumsum(steps, axis=0)
    msd = mean_squared_displacement(pos, origins=8)
    times = np.arange(len(msd)) * dt
    d = diffusion_coefficient(times, msd, fit_fraction=(0.1, 0.5))
    assert d == pytest.approx(sigma**2 / (2 * dt) * 3 / 3, rel=0.2)


def test_msd_validation():
    with pytest.raises(GeometryError):
        mean_squared_displacement(np.zeros((5, 3)))
    with pytest.raises(GeometryError):
        diffusion_coefficient(np.arange(3.0), np.arange(4.0))


# ---------------------------------------------------------------- VACF
def test_vacf_harmonic_oscillator_frequency():
    """A pure cosine velocity gives a DOS peak at its frequency."""
    freq_thz = 10.0
    dt = 1.0     # fs
    t = np.arange(3000) * dt
    omega = 2 * np.pi * freq_thz * 1e-3   # rad/fs
    v = np.zeros((len(t), 2, 3))
    v[:, 0, 0] = np.cos(omega * t)
    v[:, 1, 1] = np.cos(omega * t + 0.3)
    vacf = velocity_autocorrelation(v)
    assert vacf[0] == pytest.approx(1.0)
    f, dos = phonon_dos(v, dt)
    assert f[np.argmax(dos)] == pytest.approx(freq_thz, abs=0.4)


def test_vacf_white_noise_decorrelates():
    rng = np.random.default_rng(4)
    v = rng.normal(size=(2000, 10, 3))
    vacf = velocity_autocorrelation(v, max_lag=100)
    assert abs(vacf[50]) < 0.1


def test_dos_cutoff_detects_band_top():
    f = np.linspace(0, 30, 300)
    dos = np.where(f < 16.0, 1.0, 0.0)
    assert dos_cutoff(f, dos) == pytest.approx(16.0, abs=0.2)


def test_vacf_validation():
    with pytest.raises(GeometryError):
        velocity_autocorrelation(np.zeros((5, 3)))
    with pytest.raises(GeometryError):
        phonon_dos(np.zeros((10, 2, 3)), dt_fs=-1.0)


# ---------------------------------------------------------------- EOS
def synthetic_eos(form="birch"):
    v = np.linspace(16, 25, 12)
    e0, v0, b0, bp = -4.6, 20.0, 0.6, 4.2
    from repro.analysis.eos import _birch, _murnaghan

    fn = _birch if form == "birch" else _murnaghan
    return v, fn(v, e0, v0, b0, bp), (e0, v0, b0, bp)


@pytest.mark.parametrize("form,fit", [("birch", birch_murnaghan_fit),
                                      ("murnaghan", murnaghan_fit)])
def test_eos_fit_recovers_parameters(form, fit):
    v, e, (e0, v0, b0, bp) = synthetic_eos(form)
    res = fit(v, e)
    assert res.e0 == pytest.approx(e0, abs=1e-6)
    assert res.v0 == pytest.approx(v0, abs=1e-4)
    assert res.b0 == pytest.approx(b0, rel=1e-4)
    assert res.b0_prime == pytest.approx(bp, rel=1e-3)
    assert res.residual < 1e-10
    assert res.b0_gpa == pytest.approx(b0 * 160.2176, rel=1e-3)


def test_eos_fit_noise_tolerance():
    v, e, (e0, v0, b0, bp) = synthetic_eos("birch")
    rng = np.random.default_rng(5)
    res = birch_murnaghan_fit(v, e + rng.normal(0, 1e-4, size=len(e)))
    assert res.v0 == pytest.approx(v0, rel=0.01)


def test_eos_evaluate_at_minimum():
    v, e, (e0, v0, b0, bp) = synthetic_eos("birch")
    res = birch_murnaghan_fit(v, e)
    assert res.energy(np.array([v0]))[0] == pytest.approx(e0, abs=1e-8)


def test_eos_fit_validation():
    with pytest.raises(GeometryError):
        birch_murnaghan_fit([1, 2, 3], [1, 2, 3, 4])
    with pytest.raises(GeometryError):
        birch_murnaghan_fit([1, 2], [1, 2])


# ---------------------------------------------------------------- time series
def test_running_mean_constant():
    np.testing.assert_allclose(running_mean(np.full(10, 3.0), 4), 3.0)


def test_running_mean_window_one_identity():
    x = np.arange(5.0)
    np.testing.assert_allclose(running_mean(x, 1), x)


def test_block_average_iid():
    rng = np.random.default_rng(6)
    x = rng.normal(5.0, 1.0, size=10000)
    mean, sem = block_average(x, nblocks=10)
    assert mean == pytest.approx(5.0, abs=0.1)
    assert 0 < sem < 0.1


def test_block_average_validation():
    with pytest.raises(GeometryError):
        block_average(np.arange(10.0), nblocks=1)
    with pytest.raises(GeometryError):
        block_average(np.arange(3.0), nblocks=5)


def test_drift_per_step_linear():
    x = 2.0 + 0.5 * np.arange(50)
    assert drift_per_step(x) == pytest.approx(0.5)
    assert drift_per_step([1.0]) == 0.0

"""k-point-parallel FOE engine: builders, solves, forces, CLI plumbing.

The acceptance contract of the k subsystem: k-FOE forces on a small
metal cell match dense k-diagonalisation, the k-aware sparse builder is
bit-comparable to the dense Bloch assembly, time-reversal folding is
exact, and the MD fast path (pattern cache, per-k windows, warm common
μ, fused solve) keeps working per k.
"""

import numpy as np
import pytest

from repro.calculators import make_calculator, parse_kgrid
from repro.errors import ElectronicError, ReproError
from repro.geometry import beta_tin_silicon, rattle, supercell
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon, TBCalculator
from repro.tb.chebyshev import (
    solve_mu_from_moments,
    solve_mu_from_moments_multi,
)
from repro.tb.hamiltonian import build_hamiltonian_k
from repro.tb.kpoints import frac_to_cartesian, monkhorst_pack
from repro.linscale import (
    LinearScalingCalculator,
    build_sparse_hamiltonian_k,
    extract_regions,
    solve_density_regions,
    solve_density_regions_k,
    sparse_band_forces_k,
    SparseHamiltonianBuilder,
)

from tests.helpers import assert_forces_match, fd_forces


@pytest.fixture()
def si_metal8():
    """8-atom β-tin silicon — the canonical small-cell *metal* (fresh
    copy per test)."""
    return rattle(supercell(beta_tin_silicon(), (1, 1, 2)), 0.04, seed=11)


# ------------------------------------------------------------------ builders
def test_builder_build_k_matches_dense(si8_rattled, gsp):
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    kf, _ = monkhorst_pack(3)
    kc = frac_to_cartesian(kf, si8_rattled.cell)
    builder = SparseHamiltonianBuilder(gsp)
    H_k = builder.build_k(si8_rattled, nl, kc)
    assert len(H_k) == len(kc)
    for Hs, k in zip(H_k, kc):
        Hd, _ = build_hamiltonian_k(si8_rattled, gsp, nl, k)
        assert np.abs(Hs.toarray() - Hd).max() < 1e-12
        assert np.abs(Hd - Hd.conj().T).max() == 0.0    # Hermitian


def test_builder_build_k_pattern_reuse_after_move(si8_rattled, gsp):
    """A second build_k off the cached pattern (value rewrite only) stays
    numerically identical to a cold dense assembly."""
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    kc = frac_to_cartesian(np.array([[0.25, 0.1, -0.3]]), si8_rattled.cell)
    builder = SparseHamiltonianBuilder(gsp)
    builder.build_k(si8_rattled, nl, kc)
    si8_rattled.positions[2] += 0.03
    nl2 = neighbor_list(si8_rattled, gsp.cutoff)
    moved = np.zeros(8, dtype=bool)
    moved[2] = True
    H2 = builder.build_k(si8_rattled, nl2, kc, moved=moved)[0]
    Hd, _ = build_hamiltonian_k(si8_rattled, gsp, nl2, kc[0])
    assert np.abs(H2.toarray() - Hd).max() < 1e-12
    stats = builder.stats()
    assert stats["pattern_builds"] == 1
    # the move kept the bond pattern → value rewrite, not a rebuild
    assert stats["value_updates"] + stats["partial_updates"] >= 1


def test_sparse_hamiltonian_k_function_and_dense_flag(si8_rattled, gsp):
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    k = frac_to_cartesian(np.array([[0.5, 0.25, 0.0]]),
                          si8_rattled.cell)[0]
    Hd, _ = build_hamiltonian_k(si8_rattled, gsp, nl, k)
    Hs, _ = build_sparse_hamiltonian_k(si8_rattled, gsp, nl, k)
    assert np.abs(Hs.toarray() - Hd).max() < 1e-12
    Hs2, _ = build_hamiltonian_k(si8_rattled, gsp, nl, k, sparse=True)
    assert np.abs(Hs2.toarray() - Hd).max() < 1e-12


# ------------------------------------------------------------------ μ solver
def test_multi_window_mu_reduces_to_single_window():
    rng = np.random.default_rng(5)
    moments = rng.normal(size=41)
    moments[0] = 40.0
    mu1 = solve_mu_from_moments(moments, 0.1, 8.0, 0.2, 30.0,
                                bracket=(-10.0, 10.0))
    mu2 = solve_mu_from_moments_multi(moments[None, :], [(0.1, 8.0)], 0.2,
                                      30.0, bracket=(-10.0, 10.0))
    assert mu1 == mu2


def test_multi_window_mu_validation():
    m = np.ones((2, 11))
    with pytest.raises(ElectronicError):
        solve_mu_from_moments_multi(m, [(0.0, 1.0)], 0.1, 2.0,
                                    bracket=(-5, 5))
    with pytest.raises(ElectronicError):
        solve_mu_from_moments_multi(m, [(0.0, 1.0)] * 2, 0.1, 2.0,
                                    bracket=(-5, 5), weights=np.ones(3))


# ------------------------------------------------------------------ solves
def test_k_solve_at_gamma_matches_gamma_engine(si8_rattled, gsp):
    """The k engine fed only Γ (weight 1) must reproduce the Γ engine —
    same moments, same μ, same ρ, same everything."""
    from repro.linscale.sparse_hamiltonian import build_sparse_hamiltonian

    nl = neighbor_list(si8_rattled, gsp.cutoff)
    nl_loc = neighbor_list(si8_rattled, 6.0)
    H, _ = build_sparse_hamiltonian(si8_rattled, gsp, nl)
    regions = extract_regions(si8_rattled, gsp, 6.0, nl=nl_loc)
    ref = solve_density_regions(H, regions, 32.0, kT=0.2, order=80)
    res = solve_density_regions_k([H], [1.0], regions, 32.0, kT=0.2,
                                  order=80)
    assert res.mu == pytest.approx(ref.mu, abs=1e-12)
    assert res.band_energy == pytest.approx(ref.band_energy, abs=1e-10)
    assert res.entropy == pytest.approx(ref.entropy, abs=1e-12)
    np.testing.assert_allclose(res.populations, ref.populations, atol=1e-10)
    assert np.abs((res.rho_k[0] - ref.rho).toarray()).max() < 1e-10


def test_k_solve_time_reversal_fold_exact(si_metal8, gsp):
    """Folded grid + doubled weights give the same energy, μ and forces
    as the full grid — the satellite exactness contract, on the O(N)
    engine."""
    nl = neighbor_list(si_metal8, gsp.cutoff)
    nl_loc = neighbor_list(si_metal8, 6.0)
    regions = extract_regions(si_metal8, gsp, 6.0, nl=nl_loc)
    builder = SparseHamiltonianBuilder(gsp)
    nelec = gsp.total_electrons(si_metal8.symbols)

    out = {}
    for label, reduce in (("red", True), ("full", False)):
        kf, w = monkhorst_pack(2, reduce_time_reversal=reduce)
        kc = frac_to_cartesian(kf, si_metal8.cell)
        H_k = builder.build_k(si_metal8, nl, kc)
        res = solve_density_regions_k(H_k, w, regions, nelec, kT=0.25,
                                      order=80)
        fb, _ = sparse_band_forces_k(si_metal8, gsp, nl, res.rho_k, w, kc)
        out[label] = (res, fb)
    red, f_red = out["red"]
    full, f_full = out["full"]
    assert red.n_kpoints == 4 and full.n_kpoints == 8
    assert red.band_energy == pytest.approx(full.band_energy, abs=1e-10)
    assert red.mu == pytest.approx(full.mu, abs=1e-10)
    assert_forces_match(f_red, f_full, atol=1e-10)


def test_acceptance_kfoe_forces_match_dense_kdiag(si_metal8):
    """THE acceptance criterion: k-FOE forces on an 8-atom metal cell
    with a 4×4×4 MP grid match dense k-diagonalisation to ≤ 1e-6 eV/Å
    (and energy / μ / entropy to matching tolerances)."""
    kT = 0.2
    ref = TBCalculator(GSPSilicon(), kpts=4, kT=kT).compute(si_metal8,
                                                            forces=True)
    # genuinely metallic: many fractionally occupied states at this kT
    f = ref["occupations"]
    assert np.sum((f > 0.05) & (f < 1.95)) > 20

    lin = LinearScalingCalculator(GSPSilicon(), kT=kT, r_loc=6.0,
                                  order=300, kpts=4)
    res = lin.compute(si_metal8, forces=True)
    assert res["n_kpoints"] == 32                    # 64 TR-reduced
    assert abs(res["energy"] - ref["energy"]) / 8 < 1e-7
    assert abs(res["fermi_level"] - ref["fermi_level"]) < 1e-6
    assert abs(res["entropy"] - ref["entropy"]) < 1e-8
    assert_forces_match(res["forces"], ref["forces"], atol=1e-6)
    np.testing.assert_allclose(res["forces"].sum(axis=0), 0.0, atol=1e-9)
    assert "pressure" in res
    lin.close()


def test_kfoe_fused_fast_path_parity(si_metal8):
    """MD-like steps: the fused per-k fast path (cached pattern, per-k
    windows, warm common μ, μ-Taylor density correction) stays within
    1e-6 eV/Å of the rebuild-everything baseline, and actually runs
    fused."""
    kT = 0.25
    warm = LinearScalingCalculator(GSPSilicon(), kT=kT, r_loc=6.0,
                                   order=250, kpts=2)
    cold = LinearScalingCalculator(GSPSilicon(), kT=kT, r_loc=6.0,
                                   order=250, kpts=2, reuse=False)
    rng = np.random.default_rng(0)
    modes = []
    for _ in range(3):
        rw = warm.compute(si_metal8, forces=True)
        rc = cold.compute(si_metal8, forces=True)
        modes.append(rw["fastpath"]["mode"])
        assert_forces_match(rw["forces"], rc["forces"], atol=1e-6)
        assert abs(rw["energy"] - rc["energy"]) < 1e-6
        si_metal8.positions += 0.01 * rng.normal(size=(8, 3))
    assert modes[0] == "two-pass"
    assert any(m.startswith("fused") for m in modes[1:])
    rep = warm.state_report()
    assert rep["hamiltonian"]["pattern_builds"] == 1
    assert rep["hamiltonian"]["value_updates"] >= 1
    assert rep["foe"]["fused"] + rep["foe"]["fallback"] >= 1
    warm.close()
    cold.close()


def test_kfoe_cache_hit_and_invalidation(si_metal8):
    lin = LinearScalingCalculator(GSPSilicon(), kT=0.25, r_loc=6.0,
                                  order=100, kpts=2)
    e0 = lin.get_potential_energy(si_metal8)
    assert lin.get_potential_energy(si_metal8) == e0
    assert lin.state_report()["cache_hits"] == 1
    si_metal8.positions[0, 0] += 0.05
    assert lin.get_potential_energy(si_metal8) != e0
    lin.close()


def test_kfoe_window_guard_recovers_after_cell_change(si_metal8):
    """Shrinking the cell shifts every H(k) spectrum; cached per-k
    windows must either absorb it (pad) or be invalidated by the moment
    guard and refreshed — never produce garbage."""
    from repro.geometry.transform import scale_volume

    lin = LinearScalingCalculator(GSPSilicon(), kT=0.25, r_loc=6.0,
                                  order=250, kpts=2)
    lin.compute(si_metal8, forces=True)
    squeezed = scale_volume(si_metal8, 0.85)     # hard compression
    res = lin.compute(squeezed, forces=True)
    ref = LinearScalingCalculator(GSPSilicon(), kT=0.25, r_loc=6.0,
                                  order=250, kpts=2,
                                  reuse=False).compute(squeezed,
                                                       forces=True)
    assert abs(res["energy"] - ref["energy"]) < 1e-5
    assert_forces_match(res["forces"], ref["forces"], atol=1e-5)
    lin.close()


def test_kfoe_requires_periodic_cell(gsp):
    from repro.geometry import Atoms, Cell

    at = Atoms(["Si"], [[0.0, 0.0, 0.0]], cell=Cell.cubic(10, pbc=False))
    lin = LinearScalingCalculator(gsp, kT=0.2, kpts=2)
    with pytest.raises(ElectronicError, match="periodic"):
        lin.compute(at)


def test_kfoe_validation_errors(si8_rattled, gsp):
    from repro.linscale.sparse_hamiltonian import build_sparse_hamiltonian

    nl = neighbor_list(si8_rattled, gsp.cutoff)
    nl_loc = neighbor_list(si8_rattled, 6.0)
    H, _ = build_sparse_hamiltonian(si8_rattled, gsp, nl)
    regions = extract_regions(si8_rattled, gsp, 6.0, nl=nl_loc)
    with pytest.raises(ElectronicError):
        solve_density_regions_k([], [], regions, 32.0, kT=0.2)
    with pytest.raises(ElectronicError):
        solve_density_regions_k([H], [0.5, 0.5], regions, 32.0, kT=0.2)
    with pytest.raises(ElectronicError):
        solve_density_regions_k([H], [1.0], regions, 32.0, kT=-0.1)


# ------------------------------------------------------------------ plumbing
def test_parse_kgrid_forms():
    assert parse_kgrid(None) is None
    assert parse_kgrid(3) == (3, 3, 3)
    assert parse_kgrid("4x4x4") == (4, 4, 4)
    assert parse_kgrid("4") == (4, 4, 4)
    assert parse_kgrid("2x3x1") == (2, 3, 1)
    assert parse_kgrid([2, 2, 2]) == (2, 2, 2)
    for bad in ("2x2", "axbxc", [0, 1, 1], "1x2x3x4"):
        with pytest.raises(ReproError):
            parse_kgrid(bad)


def test_make_calculator_kgrid_dispatch():
    calc = make_calculator({"model": "gsp-si", "solver": "diag",
                            "kT": 0.1, "kgrid": "2x2x2"})
    assert isinstance(calc, TBCalculator)
    assert len(calc.kpts_frac) == 4              # TR-reduced
    lin = make_calculator({"model": "gsp-si", "solver": "linscale",
                           "kT": 0.2, "kgrid": 2, "order": 80})
    assert isinstance(lin, LinearScalingCalculator)
    assert len(lin.kpts_frac) == 4
    for solver in ("purification", "foe"):
        with pytest.raises(ReproError, match="kgrid"):
            make_calculator({"model": "gsp-si", "solver": solver,
                             "kT": 0.2 if solver == "foe" else 0.0,
                             "kgrid": 2})
    with pytest.raises(ReproError, match="kgrid"):
        make_calculator({"model": "sw-si", "kgrid": 2})


def test_kdiag_rejects_real_only_solvers():
    """The from-scratch solvers are real-symmetric only; at finite k
    they would silently discard Im H(k) — reject loudly instead."""
    for solver in ("jacobi", "householder"):
        with pytest.raises(ElectronicError, match="lapack"):
            TBCalculator(GSPSilicon(), kpts=2, kT=0.1, solver=solver)


def test_cli_kgrid_parses():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["energy", "x.xyz", "--solver", "linscale", "--kgrid", "4x4x4"])
    assert args.kgrid == "4x4x4"
    args = build_parser().parse_args(
        ["md", "x.xyz", "--kgrid", "2x2x2", "--steps", "3"])
    assert args.kgrid == "2x2x2"


def test_md_runs_on_kfoe(si_metal8):
    """3 NVE steps on the k-FOE calculator through the standard driver —
    the 'MD, relax and the service all get the new path' contract."""
    from repro.md import MDDriver, VelocityVerlet, maxwell_boltzmann_velocities

    calc = LinearScalingCalculator(GSPSilicon(), kT=0.25, r_loc=6.0,
                                   order=100, kpts=2)
    maxwell_boltzmann_velocities(si_metal8, 300.0, seed=1)
    md = MDDriver(si_metal8, calc, VelocityVerlet(dt=1.0))
    md.run(3)
    rep = calc.state_report()
    assert rep["hamiltonian"]["pattern_builds"] == 1   # pattern cached
    assert rep["foe"]["fused"] + rep["foe"]["fallback"] >= 1
    calc.close()


def test_relax_step_lowers_energy_kdiag(si_metal8):
    """Relaxation drives the k-sampled diag calculator (forces at k)."""
    from repro.relax import steepest_descent

    calc = TBCalculator(GSPSilicon(), kpts=2, kT=0.2)
    e0 = calc.get_potential_energy(si_metal8)
    res = steepest_descent(si_metal8, calc, fmax=0.05, max_steps=5)
    assert res.energy < e0


def test_kdiag_forces_match_finite_differences(si8_rattled):
    """The phase-gradient term of band_forces_k against −dF/dx."""
    calc = TBCalculator(GSPSilicon(), kpts=2, kT=0.1)
    f = calc.compute(si8_rattled, forces=True)["forces"]
    fn = fd_forces(si8_rattled,
                   lambda: TBCalculator(GSPSilicon(), kpts=2, kT=0.1),
                   components=[(0, 0), (3, 2)])
    for i, c in ((0, 0), (3, 2)):
        assert f[i, c] == pytest.approx(fn[i, c], abs=5e-6)


def test_kdiag_nonorthogonal_forces_match_finite_differences(si8_rattled):
    from repro.tb import NonOrthogonalSilicon

    calc = TBCalculator(NonOrthogonalSilicon(), kpts=2, kT=0.1)
    f = calc.compute(si8_rattled, forces=True)["forces"]
    fn = fd_forces(
        si8_rattled,
        lambda: TBCalculator(NonOrthogonalSilicon(), kpts=2, kT=0.1),
        components=[(1, 1)])
    assert f[1, 1] == pytest.approx(fn[1, 1], abs=5e-6)


def test_kdiag_pressure_matches_dE_dV(si8_rattled):
    """The virial keeps only the SK gradient (the phase term cancels
    against the reciprocal-vector strain response): P must equal −dF/dV
    at fixed fractional k."""
    from repro.geometry.transform import scale_volume

    calc = TBCalculator(GSPSilicon(), kpts=2, kT=0.1)
    p = calc.compute(si8_rattled, forces=True)["pressure"]
    v0 = si8_rattled.cell.volume
    dv = 1e-5
    ep = TBCalculator(GSPSilicon(), kpts=2, kT=0.1).get_free_energy(
        scale_volume(si8_rattled, 1 + dv))
    em = TBCalculator(GSPSilicon(), kpts=2, kT=0.1).get_free_energy(
        scale_volume(si8_rattled, 1 - dv))
    assert -(ep - em) / (2 * dv * v0) == pytest.approx(p, abs=1e-8)


def test_service_accepts_kgrid_spec(si_metal8):
    """The batch service builds the identical k calculator from the same
    spec dict (shared factory) — in-process client round trip."""
    from repro.service import BatchClient, BatchService

    svc = BatchService(nworkers=1)
    try:
        client = BatchClient(svc)
        client.load("m8", si_metal8,
                    calc={"model": "gsp-si", "solver": "linscale",
                          "kT": 0.25, "order": 80, "kgrid": "2x2x2"})
        out = client.evaluate("m8", forces=True)
        ref = LinearScalingCalculator(GSPSilicon(), kT=0.25, order=80,
                                      kpts=2).compute(si_metal8,
                                                      forces=True)
        assert out["energy"] == pytest.approx(ref["energy"], abs=1e-10)
        np.testing.assert_allclose(np.asarray(out["forces"]),
                                   ref["forces"], atol=1e-10)
    finally:
        svc.close()

"""Parallel layer: communicators, machines, decompositions, cost models."""

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel import (
    MachineSpec, ReplicatedDataModel, SerialComm, SimComm, StepCalibration,
    amdahl_speedup, block_partition, cyclic_partition, partition_pairs,
    strong_scaling, weak_scaling,
)
from repro.parallel.decomposition import (
    partition_imbalance, replicated_h_comm_bytes, row_striped_comm_bytes,
)
from repro.parallel.jacobi import distributed_jacobi_model, round_robin_pairs
from repro.parallel.machine import get_machine
from repro.parallel.scaling import serial_fraction_estimate


def toy_calibration(host_flops=1e9):
    """Hand-built calibration with simple round numbers."""
    return StepCalibration(
        host_flops=host_flops,
        flops_neigh_per_atom=1e3,
        flops_build_per_pair=2e4,
        flops_force_per_pair=6e4,
        flops_rep_per_pair=1e3,
        pairs_per_atom=8.0,
        orbitals_per_atom=4.0,
    )


# ---------------------------------------------------------------- machines
def test_machine_presets_exist():
    for name in ("paragon", "delta", "cm5", "modern"):
        m = get_machine(name)
        assert m.flops > 0 and m.bandwidth > 0


def test_machine_unknown():
    with pytest.raises(ParallelError):
        get_machine("cray")


def test_machine_primitive_costs():
    m = MachineSpec("toy", flops=1e6, latency=1e-5, bandwidth=1e8)
    assert m.compute_time(2e6) == pytest.approx(2.0)
    assert m.send_time(1e8) == pytest.approx(1.0 + 1e-5)


def test_machine_unphysical_rejected():
    with pytest.raises(ParallelError):
        MachineSpec("bad", flops=-1, latency=0, bandwidth=1)


# ---------------------------------------------------------------- communicators
def test_serial_comm_free_operations():
    c = SerialComm()
    c.compute(0, 1e9)
    c.broadcast(1e6)
    c.allreduce(1e6)
    c.allgather(1e6)
    c.barrier()
    assert c.size == 1
    assert c.elapsed() == 0.0
    with pytest.raises(ParallelError):
        c.compute(1, 1.0)


def test_sim_comm_compute_charges_single_rank():
    m = MachineSpec("toy", flops=1e6, latency=0.0, bandwidth=1e12)
    c = SimComm(m, 4)
    c.compute(2, 3e6)
    assert c.elapsed() == pytest.approx(3.0)
    assert c.clocks[0] == 0.0


def test_sim_comm_collective_synchronises():
    m = MachineSpec("toy", flops=1e6, latency=1e-3, bandwidth=1e12)
    c = SimComm(m, 4)
    c.compute(0, 5e6)            # rank 0 ahead at t=5
    c.allreduce(8.0)
    # everyone must be past rank 0's clock plus the collective cost
    assert np.all(c.clocks >= 5.0)
    assert np.all(c.clocks == c.clocks[0])
    assert c.comm_seconds > 0
    assert c.messages > 0


def test_sim_comm_p1_collectives_free():
    c = SimComm(MachineSpec.paragon(), 1)
    c.broadcast(1e9)
    c.allgather(1e9)
    c.allreduce(1e9)
    c.barrier()
    assert c.elapsed() == 0.0


def test_sim_comm_send_advances_both_ends():
    m = MachineSpec("toy", flops=1e6, latency=0.5, bandwidth=10.0)
    c = SimComm(m, 2)
    c.send(0, 1, 10.0)           # 0.5 + 1.0
    assert c.clocks[1] == pytest.approx(1.5)
    assert c.clocks[0] == pytest.approx(0.5)
    assert c.bytes_moved == 10.0


def test_sim_comm_rank_bounds():
    c = SimComm(MachineSpec.paragon(), 2)
    with pytest.raises(ParallelError):
        c.compute(2, 1.0)
    with pytest.raises(ParallelError):
        c.send(0, 5, 1.0)


def test_sim_comm_respects_max_nodes():
    with pytest.raises(ParallelError, match="at most"):
        SimComm(MachineSpec.delta(), 4096)


def test_sim_comm_reset():
    c = SimComm(MachineSpec.paragon(), 2)
    c.compute(0, 1e7)
    c.reset()
    assert c.elapsed() == 0.0 and c.messages == 0


# ---------------------------------------------------------------- partitions
def test_block_partition_covers_exactly():
    parts = block_partition(10, 3)
    assert [len(p) for p in parts] == [4, 3, 3]
    np.testing.assert_array_equal(np.concatenate(parts), np.arange(10))


def test_cyclic_partition_covers_exactly():
    parts = cyclic_partition(10, 3)
    assert [len(p) for p in parts] == [4, 3, 3]
    assert sorted(np.concatenate(parts).tolist()) == list(range(10))
    np.testing.assert_array_equal(parts[1], [1, 4, 7])


def test_partition_more_ranks_than_items():
    parts = block_partition(2, 5)
    assert [len(p) for p in parts] == [1, 1, 0, 0, 0]


def test_partition_invalid():
    with pytest.raises(ParallelError):
        block_partition(-1, 2)
    with pytest.raises(ParallelError):
        cyclic_partition(5, 0)


def test_partition_imbalance_metric():
    assert partition_imbalance([np.arange(4), np.arange(4)]) == 1.0
    assert partition_imbalance([np.arange(6), np.arange(2)]) == pytest.approx(1.5)
    assert partition_imbalance([np.arange(0), np.arange(0)]) == 1.0


def test_partition_pairs_owner_i(si64, gsp):
    from repro.neighbors import neighbor_list

    nl = neighbor_list(si64, gsp.cutoff)
    parts = partition_pairs(nl, 4, scheme="owner-i")
    assert sum(len(p) for p in parts) == nl.n_pairs
    # every pair lands with the rank owning atom i
    owners = block_partition(64, 4)
    for r, pidx in enumerate(parts):
        assert np.all(np.isin(nl.i[pidx], owners[r]))


def test_partition_pairs_block_scheme(si64, gsp):
    from repro.neighbors import neighbor_list

    nl = neighbor_list(si64, gsp.cutoff)
    parts = partition_pairs(nl, 3, scheme="block")
    assert sum(len(p) for p in parts) == nl.n_pairs
    with pytest.raises(ParallelError):
        partition_pairs(nl, 3, scheme="random")


def test_comm_volume_row_striped_cheaper():
    m = 864
    for p in (4, 16, 64):
        assert row_striped_comm_bytes(m, p) < replicated_h_comm_bytes(m, p)


# ---------------------------------------------------------------- jacobi model
def test_round_robin_schedule_complete():
    nb = 6
    stages = round_robin_pairs(nb)
    assert len(stages) == nb - 1
    seen = set()
    for stage in stages:
        members = [x for pair in stage for x in pair]
        assert len(members) == len(set(members))   # disjoint within stage
        seen.update(stage)
    assert seen == {(i, j) for i in range(nb) for j in range(i + 1, nb)}


def test_round_robin_odd_blocks_bye():
    stages = round_robin_pairs(5)
    seen = set()
    for st_ in stages:
        seen.update(st_)
    assert seen == {(i, j) for i in range(5) for j in range(i + 1, 5)}


def test_round_robin_invalid():
    with pytest.raises(ParallelError):
        round_robin_pairs(1)


def test_distributed_jacobi_scales_compute():
    m = MachineSpec.paragon()
    t16 = distributed_jacobi_model(512, 16, m)["compute_time"]
    t64 = distributed_jacobi_model(512, 64, m)["compute_time"]
    assert t16 / t64 == pytest.approx(4.0)


def test_distributed_jacobi_comm_grows_with_p():
    m = MachineSpec.paragon()
    c16 = distributed_jacobi_model(512, 16, m)["comm_time"]
    c64 = distributed_jacobi_model(512, 64, m)["comm_time"]
    assert c64 > c16


# ---------------------------------------------------------------- replicated model
def test_step_time_breakdown_sums_to_total():
    model = ReplicatedDataModel(toy_calibration(), MachineSpec.paragon())
    r = model.step_time(216, 16)
    assert sum(r["breakdown"].values()) == pytest.approx(r["total"], rel=1e-9)


def test_replicated_diag_is_amdahl_wall():
    """With replicated diagonalisation the speedup saturates near
    1/serial_fraction."""
    model = ReplicatedDataModel(toy_calibration(), MachineSpec.paragon())
    s_frac = serial_fraction_estimate(model, 216)
    s_inf = amdahl_speedup(s_frac, 10**6)
    s_256 = model.speedup(216, 256)
    assert s_256 < s_inf * 1.05
    assert s_256 > 1.0


def test_distributed_diag_beats_replicated_at_scale():
    model = ReplicatedDataModel(toy_calibration(), MachineSpec.paragon())
    t_rep = model.step_time(216, 64, diag="replicated")["total"]
    t_dist = model.step_time(216, 64, diag="distributed")["total"]
    assert t_dist < t_rep


def test_replicated_beats_distributed_serial():
    """At P=1 the Jacobi flop penalty makes 'distributed' slower."""
    model = ReplicatedDataModel(toy_calibration(), MachineSpec.paragon())
    t_rep = model.step_time(216, 1, diag="replicated")["total"]
    t_dist = model.step_time(216, 1, diag="distributed")["total"]
    assert t_rep < t_dist


def test_step_time_invalid_diag():
    model = ReplicatedDataModel(toy_calibration(), MachineSpec.paragon())
    with pytest.raises(ParallelError):
        model.step_time(64, 4, diag="quantum")


# ---------------------------------------------------------------- scaling harness
def test_strong_scaling_rows():
    model = ReplicatedDataModel(toy_calibration(), MachineSpec.paragon())
    rows = strong_scaling(model, 216, [1, 4, 16])
    assert [r["nproc"] for r in rows] == [1, 4, 16]
    assert rows[0]["speedup"] == pytest.approx(1.0)
    # monotone non-increasing time
    times = [r["time"] for r in rows]
    assert times[0] >= times[1] >= times[2]
    assert all(0 < r["efficiency"] <= 1.0 + 1e-9 for r in rows)


def test_weak_scaling_efficiency_degrades_with_n_cubed():
    model = ReplicatedDataModel(toy_calibration(), MachineSpec.paragon())
    rows = weak_scaling(model, 32, [1, 2, 4, 8])
    effs = [r["efficiency"] for r in rows]
    assert effs[0] == pytest.approx(1.0)
    assert all(b < a for a, b in zip(effs, effs[1:]))


def test_amdahl_limits():
    np.testing.assert_allclose(amdahl_speedup(0.0, [1, 2, 4]), [1, 2, 4])
    assert amdahl_speedup(0.5, 10**9) == pytest.approx(2.0, rel=1e-6)
    with pytest.raises(ParallelError):
        amdahl_speedup(1.5, 4)


# ---------------------------------------------------------------- calibration
def test_calibrate_step_real_measurements(gsp):
    from repro.parallel import calibrate_step

    cal = calibrate_step(gsp, sizes=(1,), repeats=1)
    assert cal.host_flops > 1e6
    assert cal.pairs_per_atom == pytest.approx(8.0, abs=3.0)
    assert cal.orbitals_per_atom == 4.0
    m, npairs = cal.system_dims(64)
    assert m == 256
    assert npairs == pytest.approx(64 * cal.pairs_per_atom)

"""Berendsen NPT coupling and the command-line interface."""

import numpy as np
import pytest

from repro.classical import StillingerWeber
from repro.errors import MDError
from repro.geometry import bulk_silicon, read_xyz, supercell, write_xyz
from repro.geometry.transform import scale_volume
from repro.md import MDDriver, maxwell_boltzmann_velocities
from repro.md.barostat import BerendsenNPT


# ---------------------------------------------------------------- barostat
def test_npt_relaxes_compressed_cell_toward_zero_pressure():
    at = scale_volume(supercell(bulk_silicon(), 2), 0.94)   # ~6% compressed
    maxwell_boltzmann_velocities(at, 300.0, seed=1)
    sw = StillingerWeber()
    p0 = sw.get_pressure(at)
    npt = BerendsenNPT(dt=1.0, temperature=300.0, pressure_gpa=0.0,
                       tau=50.0, tau_p=200.0)
    md = MDDriver(at, sw, npt)
    md.run(250)
    p1 = sw.compute(at, forces=True)["pressure"]
    assert abs(p1) < 0.5 * abs(p0), "pressure must relax toward target"
    assert at.cell.volume > 0.94**1.0 * supercell(bulk_silicon(), 2).cell.volume * 0.99


def test_npt_expands_compressed_and_contracts_stretched():
    for factor, direction in ((0.95, +1), (1.05, -1)):
        at = scale_volume(supercell(bulk_silicon(), 2), factor)
        v0 = at.cell.volume
        maxwell_boltzmann_velocities(at, 200.0, seed=2)
        npt = BerendsenNPT(dt=1.0, temperature=200.0, pressure_gpa=0.0,
                           tau=50.0, tau_p=150.0)
        MDDriver(at, StillingerWeber(), npt).run(120)
        assert np.sign(at.cell.volume - v0) == direction


def test_npt_positions_scale_with_cell():
    at = scale_volume(supercell(bulk_silicon(), 2), 0.95)
    maxwell_boltzmann_velocities(at, 200.0, seed=3)
    npt = BerendsenNPT(dt=1.0, temperature=200.0, tau=50.0, tau_p=150.0)
    MDDriver(at, StillingerWeber(), npt).run(60)
    frac = at.cell.fractional(at.positions)
    assert np.all(np.isfinite(frac))
    # fractional spread stays crystal-like (no atom escaped the lattice)
    assert at.temperature() < 2000.0


def test_npt_validation():
    with pytest.raises(MDError):
        BerendsenNPT(dt=2.0, temperature=300.0, tau_p=1.0)
    from repro.geometry import carbon_chain

    at = carbon_chain(3)
    npt = BerendsenNPT(dt=1.0, temperature=300.0)
    from repro.tb import TBCalculator, XuCarbon

    md = MDDriver(at, TBCalculator(XuCarbon()), npt)
    with pytest.raises(MDError, match="periodic"):
        md.run(1)


# ---------------------------------------------------------------- CLI
def run_cli(args):
    from repro.cli import main

    return main(args)


def test_cli_models(capsys):
    assert run_cli(["models"]) == 0
    out = capsys.readouterr().out
    assert "gsp-si" in out and "sw-si" in out


def test_cli_energy(tmp_path, capsys):
    p = tmp_path / "si.xyz"
    write_xyz(p, bulk_silicon())
    assert run_cli(["energy", str(p), "--model", "gsp-si"]) == 0
    out = capsys.readouterr().out
    assert "energy" in out and "eV/atom" in out


def test_cli_energy_sw(tmp_path, capsys):
    p = tmp_path / "si.xyz"
    write_xyz(p, bulk_silicon())
    assert run_cli(["energy", str(p), "--model", "sw-si"]) == 0
    assert "-4.33" in capsys.readouterr().out


def test_cli_relax_roundtrip(tmp_path, capsys):
    from repro.geometry import rattle

    src = tmp_path / "in.xyz"
    dst = tmp_path / "out.xyz"
    write_xyz(src, rattle(bulk_silicon(), 0.08, seed=4))
    code = run_cli(["relax", str(src), "--model", "gsp-si",
                    "--fmax", "0.05", "-o", str(dst)])
    assert code == 0
    relaxed = read_xyz(str(dst))
    assert len(relaxed) == 8


def test_cli_relax_nonconverged_exit_code(tmp_path):
    from repro.geometry import rattle

    src = tmp_path / "in.xyz"
    write_xyz(src, rattle(bulk_silicon(), 0.1, seed=5))
    code = run_cli(["relax", str(src), "--fmax", "1e-9",
                    "--max-steps", "2"])
    assert code == 2


def test_cli_md_with_trajectory(tmp_path, capsys):
    src = tmp_path / "in.xyz"
    traj = tmp_path / "traj.xyz"
    write_xyz(src, bulk_silicon())
    code = run_cli(["md", str(src), "--model", "sw-si", "--steps", "20",
                    "--temperature", "300", "--thermostat", "langevin",
                    "--traj", str(traj), "--traj-interval", "5"])
    assert code == 0
    from repro.geometry.xyz import iread_xyz

    assert len(list(iread_xyz(str(traj)))) == 5      # steps 0,5,10,15,20


def test_cli_error_path(tmp_path, capsys):
    src = tmp_path / "c.xyz"
    from repro.geometry import diamond_cubic

    write_xyz(src, diamond_cubic("C"))
    code = run_cli(["energy", str(src), "--model", "gsp-si"])
    assert code == 1
    assert "error" in capsys.readouterr().err

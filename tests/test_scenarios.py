"""Scenario registry, parameter schemas, and per-scenario physics runs.

Every scenario runs here against the cheap classical SW baseline
through an in-process batch service — the point is the scenario
*contract* (params validated, metrics populated, scratch structures
cleaned up), not TB-grade physics, which the analysis tests own.
"""

from __future__ import annotations

import pytest

from repro.errors import CampaignError
from repro.geometry import bulk_silicon
from repro.scenarios import (
    ParamSpec, ScenarioResult, StructureHandle, available_scenarios,
    get_scenario, register_scenario, scenarios_by_tag,
)
from repro.scenarios.base import Scenario
from repro.service import BatchClient, BatchService

SW = {"model": "sw-si"}


@pytest.fixture(scope="module")
def svc():
    service = BatchService(nworkers=2)
    yield service
    service.close()


@pytest.fixture(scope="module")
def client(svc):
    return BatchClient(svc)


@pytest.fixture(scope="module")
def si_handle(client):
    at = bulk_silicon()
    client.load("scn-si", at, calc=SW)
    return StructureHandle(structure_id="scn-si", atoms=at, calc_spec=SW)


# -- registry --------------------------------------------------------------

def test_registry_has_the_core_scenarios():
    names = available_scenarios()
    for name in ("eos", "vacancy", "elastic", "phonons", "melt-quench"):
        assert name in names


def test_get_scenario_suggests_on_typo():
    with pytest.raises(CampaignError, match="did you mean 'eos'"):
        get_scenario("eoss")
    with pytest.raises(CampaignError, match="unknown scenario"):
        get_scenario("nonexistent")


def test_scenarios_by_tag():
    assert "eos" in scenarios_by_tag("static")
    assert "melt-quench" in scenarios_by_tag("md")
    assert scenarios_by_tag("no-such-tag") == ()


def test_register_requires_a_name():
    with pytest.raises(CampaignError, match="has no name"):
        @register_scenario
        class Nameless(Scenario):
            pass


# -- parameter schemas -----------------------------------------------------

def test_param_resolution_defaults_and_conversion():
    eos = get_scenario("eos")
    params = eos.resolve_params({"npoints": "9"})
    assert params["npoints"] == 9 and isinstance(params["npoints"], int)
    assert params["amplitude"] == 0.04          # default fills in
    assert params["mode"] == "volumetric"


def test_param_unknown_name_rejected_with_suggestion():
    eos = get_scenario("eos")
    with pytest.raises(CampaignError, match="did you mean 'npoints'"):
        eos.resolve_params({"npoint": 5})


def test_param_choices_enforced():
    eos = get_scenario("eos")
    with pytest.raises(CampaignError, match="must be one of"):
        eos.resolve_params({"mode": "sideways"})


def test_param_bad_type_rejected():
    eos = get_scenario("eos")
    with pytest.raises(CampaignError, match="must be int"):
        eos.resolve_params({"npoints": "seven"})


def test_param_required_sentinel():
    from repro.scenarios.base import _REQUIRED

    spec = ParamSpec("knob", float, default=_REQUIRED)
    with pytest.raises(CampaignError, match="required"):
        spec.resolve({}, "demo")
    assert spec.resolve({"knob": 2}, "demo") == 2.0


def test_describe_params_schema_rows():
    rows = get_scenario("eos").describe_params()
    by_name = {r["name"]: r for r in rows}
    assert by_name["mode"]["choices"] == ["volumetric", "uniaxial", "shear"]
    assert by_name["npoints"]["type"] == "int"
    assert not by_name["npoints"]["required"]


# -- scenario runs (classical SW, in-process service) ----------------------

def test_eos_scenario(client, si_handle):
    eos = get_scenario("eos")
    res = eos.run(client, si_handle,
                  eos.resolve_params({"npoints": 5, "amplitude": 0.03}))
    assert isinstance(res, ScenarioResult)
    assert res.metrics["npoints"] == 5
    # SW silicon bulk modulus ≈ 101.4 GPa (Stillinger–Weber literature)
    assert res.metrics["b0_gpa"] == pytest.approx(101.5, abs=3.0)
    assert res.value["eos"]["form"] == "birch"


def test_eos_scenario_fit_none_has_no_eos_metrics(client, si_handle):
    eos = get_scenario("eos")
    res = eos.run(client, si_handle,
                  eos.resolve_params({"npoints": 5, "fit": "none"}))
    assert "b0_gpa" not in res.metrics and res.metrics["npoints"] == 5


def test_vacancy_scenario_cleans_up_scratch(client, si_handle):
    vac = get_scenario("vacancy")
    res = vac.run(client, si_handle,
                  vac.resolve_params({"relax_steps": 3}))
    # relaxation can only lower the formation energy
    assert 0.0 < res.metrics["formation_ev"] < 8.0
    assert res.metrics["fmax_final"] is not None
    assert res.value["natoms_defect"] == 7
    # the scratch structure was unloaded — only the resident ones remain
    assert all(not s.startswith("scn-si::")
               for s in client.stats()["structures"])


def test_elastic_scenario(client, si_handle):
    el = get_scenario("elastic")
    res = el.run(client, si_handle, el.resolve_params({"delta": 0.004}))
    # SW-Si literature values: C11=151.4, C12=76.4, C44=56.4 GPa
    assert res.metrics["c11_gpa"] == pytest.approx(151.4, abs=4.0)
    assert res.metrics["c12_gpa"] == pytest.approx(76.4, abs=4.0)
    assert res.metrics["c44_gpa"] == pytest.approx(56.4, abs=4.0)
    assert res.metrics["born_stable"] is True


def test_phonons_scenario(client, si_handle):
    ph = get_scenario("phonons")
    res = ph.run(client, si_handle, ph.resolve_params(None))
    assert res.metrics["n_imaginary"] == 0
    assert res.metrics["dynamically_stable"] is True
    assert 10.0 < res.metrics["nu_max_thz"] < 25.0
    assert res.metrics["asr_violation"] < 1e-8
    freqs = res.value["frequencies_thz"]
    assert len(freqs) == 3 * len(si_handle.atoms)
    assert freqs == sorted(freqs)


def test_melt_quench_scenario(client, si_handle):
    mq = get_scenario("melt-quench")
    res = mq.run(client, si_handle, mq.resolve_params(
        {"melt_steps": 30, "quench_steps": 30, "sample_interval": 5,
         "melt_temperature": 3000.0, "quench_temperature": 300.0}))
    # g(r) first peak of (disordered) Si stays near the bond length
    assert res.metrics["first_peak_aa"] == pytest.approx(2.35, abs=0.4)
    assert res.metrics["nsamples"] >= 6
    assert res.metrics["final_temperature_k"] > 0
    assert "melt_s" in res.timings and "quench_s" in res.timings
    # scratch structure unloaded here too
    assert all(not s.startswith("scn-si::")
               for s in client.stats()["structures"])

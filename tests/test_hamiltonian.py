"""Hamiltonian assembly: symmetry, folding, k-points, species mixing."""

import numpy as np

from repro.geometry import Atoms, Cell, bulk_silicon, supercell
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon
from repro.tb.eigensolvers import solve_eigh
from repro.tb.hamiltonian import (
    build_hamiltonian, build_hamiltonian_k, orbital_offsets,
    pair_species_groups,
)


def build(atoms, model):
    nl = neighbor_list(atoms, model.cutoff)
    return build_hamiltonian(atoms, model, nl)


def test_orbital_offsets_mixed_species(harrison):
    offsets, m = orbital_offsets(["C", "H", "C", "H"], harrison)
    np.testing.assert_array_equal(offsets, [0, 4, 5, 9])
    assert m == 10


def test_pair_groups_partition_everything(harrison):
    at = Atoms(["C", "H", "C"], [[0, 0, 0], [1.1, 0, 0], [2.3, 0, 0]],
               cell=Cell.cubic(15, pbc=False))
    nl = neighbor_list(at, 3.0)
    groups = pair_species_groups(at.symbols, nl)
    total = sum(len(v) for v in groups.values())
    assert total == nl.n_pairs
    # keys ordered by the half-list (i < j) atom ordering
    for (sa, sb), idx in groups.items():
        for p in idx:
            assert at.symbols[nl.i[p]] == sa
            assert at.symbols[nl.j[p]] == sb


def test_hamiltonian_symmetric(si8_rattled, gsp):
    H, S = build(si8_rattled, gsp)
    assert S is None
    np.testing.assert_allclose(H, H.T, atol=1e-13)
    assert H.shape == (32, 32)


def test_onsite_diagonal(si8, gsp):
    H, _ = build(si8, gsp)
    diag = np.diag(H)
    # s orbitals every 4th entry
    np.testing.assert_allclose(diag[0::4], -5.25)
    np.testing.assert_allclose(diag[1::4], 1.20)


def test_dimer_eigenvalues_analytic():
    """Si2 along z at r0: σ/π blocks decouple; check against 2×2 solutions."""
    model = GSPSilicon()
    r0 = model.R0
    at = Atoms(["Si", "Si"], [[0, 0, 0], [0, 0, r0]],
               cell=Cell.cubic(20, pbc=False))
    H, _ = build(at, model)
    eps, _ = solve_eigh(H)
    es, ep = -5.25, 1.20
    vss, vsp, vpps, vppp = -1.82, 1.96, 3.06, -0.87
    # π levels: ep ± ppπ, doubly degenerate each
    pi_levels = sorted([ep + vppp, ep - vppp])
    for level in pi_levels:
        assert np.min(np.abs(eps - level)) < 1e-10
    # σ block (s1 s2 pz1 pz2) eigenvalues via direct 4×4
    hs = np.array([
        [es, vss, 0, vsp],
        [vss, es, -vsp, 0],
        [0, -vsp, ep, vpps],
        [vsp, 0, vpps, ep],
    ])
    sig = np.linalg.eigvalsh(hs)
    for level in sig:
        assert np.min(np.abs(eps - level)) < 1e-10


def test_gamma_supercell_folding_consistency(gsp):
    """Energy per atom of an n×n×n supercell at Γ equals the k-sampled
    primitive-cell energy on the matching grid — the folding theorem."""
    base = bulk_silicon()
    nl1 = neighbor_list(base, gsp.cutoff)
    sc = supercell(base, 2)
    nl2 = neighbor_list(sc, gsp.cutoff)
    H2, _ = build_hamiltonian(sc, gsp, nl2)
    eps_sc, _ = solve_eigh(H2)

    # 2×2×2 Γ-centred grid on the 8-atom cell
    from repro.tb.kpoints import frac_to_cartesian

    eps_k = []
    for i in range(2):
        for j in range(2):
            for k in range(2):
                kf = np.array([i / 2, j / 2, k / 2])
                kc = frac_to_cartesian(kf, base.cell)
                Hk, _ = build_hamiltonian_k(base, gsp, nl1, kc)
                ek, _ = solve_eigh(Hk)
                eps_k.append(ek)
    eps_k = np.sort(np.concatenate(eps_k))
    np.testing.assert_allclose(np.sort(eps_sc), eps_k, atol=1e-9)


def test_k_hamiltonian_hermitian(si8, gsp):
    nl = neighbor_list(si8, gsp.cutoff)
    k = np.array([0.3, -0.2, 0.1])
    Hk, _ = build_hamiltonian_k(si8, gsp, nl, k)
    np.testing.assert_allclose(Hk, Hk.conj().T, atol=1e-13)


def test_k_gamma_equals_real_assembly(si8_rattled, gsp):
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    H, _ = build_hamiltonian(si8_rattled, gsp, nl)
    Hk, _ = build_hamiltonian_k(si8_rattled, gsp, nl, np.zeros(3))
    np.testing.assert_allclose(Hk.imag, 0.0, atol=1e-12)
    np.testing.assert_allclose(Hk.real, H, atol=1e-12)


def test_k_eigenvalues_inversion_symmetric(si8, gsp):
    """Time reversal: ε(k) = ε(−k) for a real Hamiltonian."""
    from repro.tb.kpoints import frac_to_cartesian

    nl = neighbor_list(si8, gsp.cutoff)
    kc = frac_to_cartesian(np.array([0.21, 0.37, -0.11]), si8.cell)
    ep, _ = solve_eigh(build_hamiltonian_k(si8, gsp, nl, kc)[0])
    em, _ = solve_eigh(build_hamiltonian_k(si8, gsp, nl, -kc)[0])
    np.testing.assert_allclose(ep, em, atol=1e-10)


def test_overlap_assembly_spd(si8_rattled, nonortho):
    nl = neighbor_list(si8_rattled, nonortho.cutoff)
    H, S = build_hamiltonian(si8_rattled, nonortho, nl)
    np.testing.assert_allclose(S, S.T, atol=1e-13)
    np.testing.assert_allclose(np.diag(S), 1.0)
    evals = np.linalg.eigvalsh(S)
    assert evals.min() > 0.05     # safely positive definite


def test_mixed_species_block_shapes(harrison):
    """CH4-like: H s-orbital couples only through 1×4 blocks."""
    d = 1.09
    t = d / np.sqrt(3)
    pos = [[0, 0, 0], [t, t, t], [-t, -t, t], [-t, t, -t], [t, -t, -t]]
    at = Atoms(["C", "H", "H", "H", "H"], pos, cell=Cell.cubic(14, pbc=False))
    nl = neighbor_list(at, harrison.cutoff)
    H, _ = build_hamiltonian(at, harrison, nl)
    assert H.shape == (8, 8)
    eps, _ = solve_eigh(H)
    # 8 electrons fill 4 levels; methane is a closed-shell gap system
    assert eps[4] - eps[3] > 1.0


def test_isolated_atom_energy_is_onsite(gsp):
    at = Atoms(["Si"], [[0, 0, 0]], cell=Cell.cubic(30, pbc=False))
    nl = neighbor_list(at, gsp.cutoff)
    H, _ = build_hamiltonian(at, gsp, nl)
    np.testing.assert_allclose(H, np.diag([-5.25, 1.2, 1.2, 1.2]), atol=1e-14)

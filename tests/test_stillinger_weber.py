"""Stillinger–Weber classical baseline: published properties + forces."""

import numpy as np
import pytest

from repro.classical import StillingerWeber
from repro.errors import ModelError
from repro.geometry import Atoms, Cell, bulk_silicon, diamond_cubic, rattle, supercell
from repro.geometry.transform import scale_volume
from tests.helpers import fd_forces


def test_cohesive_energy_published_value():
    """SW diamond silicon: E_coh = −4.3364 eV/atom at a = 5.431 Å."""
    e = StillingerWeber().get_potential_energy(bulk_silicon()) / 8
    assert e == pytest.approx(-4.3364, abs=0.002)


def test_equilibrium_at_experimental_lattice_constant():
    es = {a: StillingerWeber().get_potential_energy(diamond_cubic("Si", a=a))
          for a in (5.36, 5.431, 5.50)}
    assert es[5.431] < es[5.36]
    assert es[5.431] < es[5.50]


def test_zero_pressure_at_equilibrium():
    p = StillingerWeber().compute(bulk_silicon())["pressure_gpa"]
    assert abs(p) < 0.05


def test_forces_match_numerical():
    at = rattle(supercell(bulk_silicon(), (2, 1, 1)), 0.08, seed=3)
    f = StillingerWeber().get_forces(at)
    fn = fd_forces(at, StillingerWeber, atom_indices=[0, 7, 13])
    for i in (0, 7, 13):
        np.testing.assert_allclose(f[i], fn[i], atol=1e-6)


def test_newtons_third_law():
    at = rattle(bulk_silicon(), 0.1, seed=5)
    f = StillingerWeber().get_forces(at)
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-12)


def test_perfect_crystal_zero_force():
    f = StillingerWeber().get_forces(bulk_silicon())
    np.testing.assert_allclose(f, 0.0, atol=1e-12)


def test_dimer_unbound_angle_term_absent():
    """Two atoms: only the pair term contributes; the SW dimer minimum
    sits at 2^(1/6)σ ≈ 2.35 Å with depth ε."""
    def dimer_energy(d):
        at = Atoms(["Si", "Si"], [[0, 0, 0], [d, 0, 0]],
                   cell=Cell.cubic(20, pbc=False))
        return StillingerWeber().get_potential_energy(at)

    d_min = 2.0951 * 2 ** (1.0 / 6.0)
    e_min = dimer_energy(d_min)
    assert e_min == pytest.approx(-2.1683, abs=1e-3)
    assert dimer_energy(d_min - 0.05) > e_min
    assert dimer_energy(d_min + 0.05) > e_min


def test_virial_pressure_consistent_with_dE_dV():
    at = rattle(bulk_silicon(), 0.05, seed=6)
    sw = StillingerWeber()
    p = sw.get_pressure(at)
    h = 1e-4
    ep = StillingerWeber().get_potential_energy(scale_volume(at, 1 + h))
    em = StillingerWeber().get_potential_energy(scale_volume(at, 1 - h))
    p_num = -(ep - em) / (2 * h * at.cell.volume)
    assert p == pytest.approx(p_num, abs=1e-5)


def test_elastic_constants_near_published():
    """SW: C11 = 161.6, C12 = 81.6, C44 = 60.3 GPa (with internal
    relaxation) — finite-δ fits land within 10 %."""
    from repro.analysis import born_stability_cubic, cubic_elastic_constants

    ec = cubic_elastic_constants(bulk_silicon(), StillingerWeber)
    assert ec["c11_gpa"] == pytest.approx(161.6, rel=0.10)
    assert ec["c12_gpa"] == pytest.approx(81.6, rel=0.10)
    assert ec["c44_gpa"] == pytest.approx(60.3, rel=0.10)
    assert ec["c44_unrelaxed_gpa"] > ec["c44_gpa"]
    assert born_stability_cubic(ec["c11"], ec["c12"], ec["c44"])


def test_md_nve_conservation_with_sw():
    """The SW calculator plugs straight into the MD driver."""
    from repro.md import MDDriver, ThermoLog, VelocityVerlet, maxwell_boltzmann_velocities

    at = supercell(bulk_silicon(), 2)
    maxwell_boltzmann_velocities(at, 600.0, seed=9)
    log = ThermoLog()
    MDDriver(at, StillingerWeber(), VelocityVerlet(dt=1.0),
             observers=[log]).run(150)
    assert log.conserved_drift() < 5e-5


def test_rejects_non_silicon():
    with pytest.raises(ModelError):
        StillingerWeber().get_potential_energy(diamond_cubic("C"))


def test_cache_serves_forces_after_energy_only():
    at = rattle(bulk_silicon(), 0.05, seed=10)
    sw = StillingerWeber()
    e = sw.get_potential_energy(at)
    f = sw.get_forces(at)              # must not KeyError on cached result
    assert f.shape == (8, 3)
    assert sw.get_potential_energy(at) == e

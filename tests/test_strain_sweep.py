"""Strain-sweep/EOS driver: physics, warm-state reuse, CLI and service.

The driver's contract: the E(ε) points equal per-point fresh-calculator
evaluations exactly (warm state must never change an answer), the
sorted walking order maximises reuse, and the same sweep is reachable
through the CLI ``sweep`` subcommand and the service ``sweep`` op.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import strain_sweep, strain_tensors, sweep_amplitudes
from repro.errors import GeometryError
from repro.geometry import bulk_silicon, write_xyz
from repro.geometry.transform import strain
from repro.linscale import LinearScalingCalculator
from repro.tb import GSPSilicon, TBCalculator

KT = 0.1


def test_strain_tensors_shapes_and_modes():
    amps = [-0.02, 0.0, 0.02]
    vol = strain_tensors("volumetric", amps)
    uni = strain_tensors("uniaxial", amps, axis=1)
    she = strain_tensors("shear", amps, axis=2)
    assert len(vol) == len(uni) == len(she) == 3
    np.testing.assert_allclose(vol[0], -0.02 * np.eye(3))
    assert uni[2][1, 1] == 0.02 and uni[2].sum() == 0.02
    assert she[2][0, 1] == she[2][1, 0] == 0.02
    assert np.trace(she[2]) == 0.0
    with pytest.raises(GeometryError):
        strain_tensors("bogus", amps)
    with pytest.raises(GeometryError):
        strain_tensors("uniaxial", amps, axis=5)


def test_sweep_points_match_fresh_calculators():
    """Warm-walked points are bit-identical to fresh per-point solves —
    the sweep twin of the MD fast-path parity contract."""
    at = bulk_silicon()
    amps = np.linspace(-0.03, 0.03, 5)
    calc = TBCalculator(GSPSilicon(), kpts=2, kT=KT,
                        kgrid_reduce="symmetry")
    res = strain_sweep(at, calc, amps, fit=None)
    assert [p.amplitude for p in res.points] == sorted(amps)
    for p in res.points:
        fresh = TBCalculator(GSPSilicon(), kpts=2, kT=KT,
                             kgrid_reduce="symmetry")
        e = fresh.get_potential_energy(strain(at, p.strain)) / len(at)
        assert p.energy == pytest.approx(e, abs=1e-12)
    # the reference structure is never mutated
    np.testing.assert_array_equal(at.positions, bulk_silicon().positions)


def test_sweep_eos_fit_recovers_minimum():
    at = bulk_silicon()
    calc = TBCalculator(GSPSilicon(), kpts=3, kT=0.02,
                        kgrid_reduce="symmetry")
    res = strain_sweep(at, calc, np.linspace(-0.04, 0.04, 9),
                       energy_ref=2 * (-5.25) + 2 * 1.20)
    assert res.eos is not None and res.eos.form == "birch"
    # the F6 anchors: experimental volume and cohesive energy of diamond Si
    assert res.eos.v0 == pytest.approx(5.431 ** 3 / 8, rel=0.03)
    assert res.eos.e0 == pytest.approx(-4.63, abs=0.08)
    assert 70.0 < res.eos.b0 * 160.21766208 < 150.0


def test_sweep_linscale_warm_equals_cold():
    """The persistent-state walk changes no physics: warm vs
    reuse=False cold rebuilds agree to the fast-path tolerance."""
    at = bulk_silicon()
    amps = np.linspace(-0.015, 0.015, 5)
    warm = LinearScalingCalculator(GSPSilicon(), kT=0.2, r_loc=6.0,
                                   order=250, kpts=2,
                                   kgrid_reduce="symmetry")
    cold = LinearScalingCalculator(GSPSilicon(), kT=0.2, r_loc=6.0,
                                   order=250, kpts=2,
                                   kgrid_reduce="symmetry", reuse=False)
    rw = strain_sweep(at, warm, amps, fit=None, forces=True)
    rc = strain_sweep(at, cold, amps, fit=None, forces=True)
    for pw, pc in zip(rw.points, rc.points):
        assert pw.energy == pytest.approx(pc.energy, abs=1e-6)
        assert pw.max_force == pytest.approx(pc.max_force, abs=1e-6)
    # the warm walk actually reused: one pattern build, warm solves ran
    rep = rw.calc_report
    assert rep["hamiltonian"]["pattern_builds"] == 1
    assert rep["foe"]["fused"] + rep["foe"]["fallback"] >= 1
    warm.close()
    cold.close()


def test_sweep_custom_tensors_and_validation():
    at = bulk_silicon()
    calc = TBCalculator(GSPSilicon(), kpts=2, kT=KT)
    tensors = strain_tensors("shear", [0.0, 0.01, 0.02])
    res = strain_sweep(at, calc, tensors=tensors, fit=None)
    assert res.mode == "custom" and len(res.points) == 3
    # shear stiffens the crystal: E grows with |ε|
    es = [p.energy for p in res.points]
    assert es[0] < es[1] < es[2]
    with pytest.raises(GeometryError, match="monotonic"):
        strain_sweep(at, calc, tensors=[np.zeros((3, 3))] * 5,
                     fit="birch")
    with pytest.raises(GeometryError):
        strain_sweep(at, calc, mode="custom")
    with pytest.raises(GeometryError):
        strain_sweep(at, calc, [-1.5, 0.0, 0.1, 0.2, 0.3])
    with pytest.raises(GeometryError):
        strain_sweep(at, calc, np.linspace(-0.02, 0.02, 5), fit="bogus")


def test_sweep_fit_preconditions_fail_before_any_compute():
    """A bad fit request must cost zero electronic work: shear + default
    fit (the E(V) curve folds two-to-one — a silent-garbage trap), too
    few points, and folded custom paths all raise up front."""

    class Exploding:
        def compute(self, atoms, forces=True):  # pragma: no cover
            raise AssertionError("sweep ran before validating the fit")

    at = bulk_silicon()
    with pytest.raises(GeometryError, match="shear"):
        strain_sweep(at, Exploding(), np.linspace(-0.04, 0.04, 9),
                     mode="shear")
    with pytest.raises(GeometryError, match=">= 5"):
        strain_sweep(at, Exploding(), [-0.01, 0.0, 0.01])
    folded = strain_tensors("volumetric", [-0.02, 0.0, 0.02, 0.0, -0.02])
    with pytest.raises(GeometryError, match="monotonic"):
        strain_sweep(at, Exploding(), tensors=folded)
    with pytest.raises(GeometryError, match="npoints"):
        sweep_amplitudes(npoints=0)
    with pytest.raises(GeometryError, match="amplitude"):
        sweep_amplitudes(amplitude=1.5)
    np.testing.assert_allclose(sweep_amplitudes(0.04, 9),
                               np.linspace(-0.04, 0.04, 9))


def test_sweep_result_as_dict_round_trips_json():
    at = bulk_silicon()
    calc = TBCalculator(GSPSilicon(), kpts=2, kT=KT)
    res = strain_sweep(at, calc, np.linspace(-0.03, 0.03, 5), fit="birch",
                       forces=True)
    payload = json.loads(json.dumps(res.as_dict()))
    assert payload["mode"] == "volumetric" and payload["natoms"] == 8
    assert len(payload["points"]) == 5
    assert payload["eos"]["form"] == "birch"
    assert payload["points"][0]["max_force"] is not None


def test_cli_sweep(tmp_path, capsys):
    from repro.cli import main

    p = tmp_path / "si8.xyz"
    write_xyz(str(p), bulk_silicon())
    out_json = tmp_path / "sweep.json"
    assert main(["sweep", str(p), "--kgrid", "2", "--kgrid-reduce",
                 "symmetry", "--kt", "0.1", "--amplitude", "0.03",
                 "--npoints", "5", "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "birch fit" in out and "V0" in out
    # --json writes the Result envelope (ok/value/timings), with the
    # sweep payload under "value"
    data = json.loads(out_json.read_text())
    assert data["ok"] is True
    assert len(data["value"]["points"]) == 5
    assert data["timings"]["seconds"] > 0


def test_service_sweep_op(si8):
    """The service ``sweep`` op answers with the driver's payload, warm
    from the resident calculator, and leaves the resident geometry
    untouched."""
    from repro.service import BatchClient, BatchService

    svc = BatchService(nworkers=1)
    try:
        client = BatchClient(svc)
        client.load("si", si8, calc={"model": "gsp-si", "kT": 0.1,
                                     "kgrid": 2,
                                     "kgrid_reduce": "symmetry"})
        first = client.evaluate("si", forces=False)
        out = client.sweep("si", amplitude=0.03, npoints=5)
        assert out["ok"] and len(out["points"]) == 5
        assert out["eos"]["form"] == "birch"
        # resident geometry unchanged: a re-eval matches the first one
        again = client.evaluate("si", forces=False)
        assert again["energy"] == pytest.approx(first["energy"],
                                                abs=1e-12)
        # bad parameters answer politely, not as a worker crash
        client.raise_on_error = False
        resp = client.request("sweep", structure_id="si", npoints=-3)
        assert not resp["ok"] and "npoints" in resp["error"]["message"]
        assert svc.stats()["lifecycle"]["worker_crashes"] == 0
    finally:
        svc.close()

"""Lattice builders: coordination, bond lengths, densities."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    bcc, beta_tin_silicon, bulk_silicon, diamond_cubic, fcc,
    graphene_sheet, simple_cubic,
)
from repro.neighbors import neighbor_list


def test_diamond_atom_count_and_volume():
    at = diamond_cubic("Si")
    assert len(at) == 8
    assert at.cell.volume == pytest.approx(5.431**3)


def test_diamond_first_neighbour_distance():
    at = bulk_silicon()
    nl = neighbor_list(at, 2.5)
    expected = 5.431 * np.sqrt(3) / 4
    np.testing.assert_allclose(nl.distances, expected, rtol=1e-12)


def test_diamond_coordination_four():
    at = bulk_silicon()
    nl = neighbor_list(at, 2.5)
    np.testing.assert_array_equal(nl.coordination(), 4)


def test_diamond_unknown_species_needs_a():
    with pytest.raises(GeometryError, match="lattice constant"):
        diamond_cubic("Ge")
    at = diamond_cubic("Ge", a=5.658)
    assert len(at) == 8


def test_fcc_coordination_twelve():
    at = fcc("Si", a=4.0)
    nl = neighbor_list(at, 4.0 / np.sqrt(2) + 0.01)
    np.testing.assert_array_equal(nl.coordination(), 12)


def test_bcc_coordination_eight():
    at = bcc("Si", a=3.0)
    nl = neighbor_list(at, 3.0 * np.sqrt(3) / 2 + 0.01)
    np.testing.assert_array_equal(nl.coordination(), 8)


def test_simple_cubic_coordination_six():
    at = simple_cubic("Si", a=2.5)
    nl = neighbor_list(at, 2.51)
    np.testing.assert_array_equal(nl.coordination(), 6)


def test_beta_tin_four_atoms_denser_than_diamond():
    at = beta_tin_silicon()
    assert len(at) == 4
    v_bt = at.cell.volume / 4
    v_dia = 5.431**3 / 8
    assert v_bt < v_dia
    # β-tin is ~6-coordinated (4 at 2.43 Å + 2 at 2.59 Å for Si)
    nl = neighbor_list(at, 2.75)
    assert nl.coordination().min() >= 6


def test_graphene_three_coordination():
    at = graphene_sheet(2, 2)
    assert len(at) == 16
    nl = neighbor_list(at, 1.5)
    np.testing.assert_array_equal(nl.coordination(), 3)
    np.testing.assert_allclose(nl.distances, 1.42, rtol=1e-9)


def test_graphene_z_nonperiodic():
    at = graphene_sheet(1, 1)
    assert list(at.cell.pbc) == [True, True, False]


def test_graphene_invalid_reps():
    with pytest.raises(GeometryError):
        graphene_sheet(0, 1)

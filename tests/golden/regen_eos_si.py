"""Regenerate tests/golden/eos_si.json (deliberate physics changes only).

Run from the repository root::

    PYTHONPATH=src python tests/golden/regen_eos_si.py

and review the diff: any shift here moves the published silicon energy
ladder, which is exactly what the golden test exists to catch.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.analysis import strain_sweep
from repro.calculators import make_calculator
from repro.geometry import beta_tin_silicon, bulk_silicon

GOLDEN = pathlib.Path(__file__).with_name("eos_si.json")

BUILDERS = {"diamond": bulk_silicon,
            "beta-tin": lambda: beta_tin_silicon(a=5.24)}


def sweep_phase(name: str, spec: dict, settings: dict):
    calc = make_calculator({"model": settings["model"], "kT": spec["kT"],
                            "kgrid": spec["kgrid"],
                            "kgrid_reduce": spec["kgrid_reduce"]})
    amps = np.linspace(-settings["amplitude"], settings["amplitude"],
                       settings["npoints"])
    return strain_sweep(BUILDERS[name](), calc, amps,
                        fit=settings["fit"],
                        energy_ref=settings["energy_ref"]), calc


def main() -> None:
    data = json.loads(GOLDEN.read_text())
    for name, spec in data["phases"].items():
        result, calc = sweep_phase(name, spec, data["settings"])
        eos = result.eos
        spec.update(v0=round(eos.v0, 6), e0=round(eos.e0, 6),
                    b0_gpa=round(eos.b0_gpa, 4),
                    n_kpoints_wedge=len(calc.kpts_frac))
        print(f"{name}: V0={eos.v0:.6f} E0={eos.e0:.6f} "
              f"B0={eos.b0_gpa:.4f} ({len(calc.kpts_frac)} wedge k)")
    GOLDEN.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    main()

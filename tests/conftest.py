"""Shared fixtures for the pytbmd test suite.

Systems are deliberately tiny (≤ 64 atoms) so the whole suite runs in
minutes on one core; physics-fidelity checks that need larger systems live
in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.geometry import bulk_silicon, diamond_cubic, graphene_sheet, rattle, supercell
from repro.tb import GSPSilicon, HarrisonModel, NonOrthogonalSilicon, TBCalculator, XuCarbon


@pytest.fixture(scope="session")
def si8():
    """Pristine 8-atom diamond silicon cell (do not mutate)."""
    return bulk_silicon()


@pytest.fixture()
def si8_rattled():
    """Symmetry-broken 8-atom Si cell (fresh copy per test)."""
    return rattle(bulk_silicon(), 0.06, seed=123)


@pytest.fixture()
def si64():
    """64-atom Si supercell (fresh copy per test)."""
    return supercell(bulk_silicon(), 2)


@pytest.fixture()
def c_diamond():
    return diamond_cubic("C")


@pytest.fixture()
def graphene22():
    return graphene_sheet(2, 2)


@pytest.fixture(scope="session")
def gsp():
    return GSPSilicon()


@pytest.fixture(scope="session")
def xu():
    return XuCarbon()


@pytest.fixture(scope="session")
def harrison():
    return HarrisonModel()


@pytest.fixture(scope="session")
def nonortho():
    return NonOrthogonalSilicon()


@pytest.fixture()
def si_calc():
    return TBCalculator(GSPSilicon())


@pytest.fixture()
def c_calc():
    return TBCalculator(XuCarbon())

"""Socket transport: JSON-lines framing, concurrency, shutdown, remote MD."""

from __future__ import annotations

import os
import socket
import threading

import numpy as np
import pytest

from repro.calculators import make_calculator
from repro.geometry import bulk_silicon, rattle
from repro.md import MDDriver, VelocityVerlet, maxwell_boltzmann_velocities
from repro.service import (
    BatchService, RemoteCalculator, SocketClient, UnixSocketServer,
)

SW = {"model": "sw-si"}


@pytest.fixture()
def si8():
    return rattle(bulk_silicon(), 0.04, seed=7)


@pytest.fixture()
def server(tmp_path):
    path = str(tmp_path / "svc.sock")
    srv = UnixSocketServer(BatchService(nworkers=2, debug_ops=True), path,
                           batch_window_s=0.001)
    srv.start()
    yield srv
    srv.stop()


def test_socket_eval_parity(server, si8):
    with SocketClient(server.socket_path) as client:
        assert client.ping()
        client.load("si", si8, calc=SW)
        res = client.evaluate("si")
        ref = make_calculator(SW).compute(si8, forces=True)
        # floats survive the JSON round trip bit-for-bit
        assert res["energy"] == ref["energy"]
        assert np.array_equal(res["forces"], ref["forces"])
        assert "si" in client.list_structures()


def test_socket_pipelined_requests_one_roundtrip(server, si8):
    with SocketClient(server.socket_path) as client:
        client.load("si", si8, calc=SW)
        out = client.evaluate_many([{"structure_id": "si"}] * 4)
        assert [o["ok"] for o in out] == [True] * 4
        stats = client.stats()
        assert stats["batches"]["max_size"] >= 2   # coalesced on the server


def test_malformed_line_answers_error(server):
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.settimeout(10.0)
    raw.connect(server.socket_path)
    raw.sendall(b"{broken json\n\n{\"op\": \"alsobad\"}\n")
    buf = b""
    while buf.count(b"\n") < 2:
        buf += raw.recv(1 << 16)
    lines = buf.decode().strip().splitlines()
    import json

    first, second = (json.loads(ln) for ln in lines[:2])
    assert first["ok"] is False and first["id"] is None
    assert first["error"]["type"] == "ProtocolError"
    assert second["ok"] is False      # unknown op, also answered politely
    raw.close()


def test_two_clients_hammer_same_structure(server, si8):
    """Concurrent clients mutating one structure id must serialize
    cleanly on its sticky worker: every request answered, no crashes,
    and every answer corresponds to one of the submitted geometries."""
    with SocketClient(server.socket_path) as setup:
        setup.load("si", si8, calc=SW)

    n_rounds, n_clients = 12, 2
    energies_by_pos: dict[bytes, float] = {}
    failures: list = []

    def hammer(seed: int):
        try:
            rng = np.random.default_rng(seed)
            with SocketClient(server.socket_path) as client:
                for _ in range(n_rounds):
                    pos = si8.positions + rng.normal(0, 0.02,
                                                     si8.positions.shape)
                    res = client.evaluate("si", positions=pos, forces=False)
                    energies_by_pos[pos.tobytes()] = res["energy"]
        except Exception as exc:   # noqa: BLE001 - collected for the assert
            failures.append(exc)

    threads = [threading.Thread(target=hammer, args=(seed,))
               for seed in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures
    assert len(energies_by_pos) == n_rounds * n_clients

    # interleaving must not have corrupted any result: each returned
    # energy matches a fresh calculator at that geometry (tolerance, not
    # bit-parity: the resident Verlet list was built at another reference
    # geometry, so the pair summation order differs at machine epsilon)
    check = si8.copy()
    for pos_bytes, energy in list(energies_by_pos.items())[::5]:
        check.positions[:] = np.frombuffer(pos_bytes).reshape(-1, 3)
        ref = make_calculator(SW).compute(check, forces=False)["energy"]
        assert energy == pytest.approx(ref, abs=1e-9)

    with SocketClient(server.socket_path) as client:
        stats = client.stats()
    assert stats["errors_total"] == 0
    assert stats["lifecycle"]["worker_crashes"] == 0
    assert stats["structures"]["si"]["evals"] == n_rounds * n_clients


def test_shutdown_drains_pipelined_requests(tmp_path, si8):
    """A shutdown from one client must not drop responses another client
    is still owed: queued work is answered before connections close."""
    path = str(tmp_path / "svc.sock")
    srv = UnixSocketServer(BatchService(nworkers=1), path,
                           batch_window_s=0.05)
    srv.start()
    with SocketClient(path) as a:
        a.load("si", si8, calc=SW)
        # pipeline three evals without reading, then shutdown from B
        reqs = [{"op": "eval", "structure_id": "si", "id": 100 + i,
                 "forces": False} for i in range(3)]
        from repro.service import protocol as proto

        a._sock.sendall(b"".join(proto.dumps(r) for r in reqs))
        with SocketClient(path) as b:
            b.shutdown()
        responses = [a._recv_response(100 + i) for i in range(3)]
        assert all(r["ok"] for r in responses)
    srv.stop()


def test_shutdown_request_stops_server(tmp_path, si8):
    path = str(tmp_path / "svc.sock")
    srv = UnixSocketServer(BatchService(nworkers=1), path)
    srv.start()
    with SocketClient(path) as client:
        client.load("si", si8, calc=SW)
        client.evaluate("si")
        assert client.shutdown()["draining"] is True
    srv.stop()
    assert not os.path.exists(path)


def test_remote_calculator_md_matches_local(server, si8):
    """Client-side MD through the service == local MD, step for step."""
    at_remote = si8.copy()
    at_local = si8.copy()
    for at in (at_remote, at_local):
        maxwell_boltzmann_velocities(at, 600.0, seed=11)

    with SocketClient(server.socket_path) as client:
        remote = RemoteCalculator(client, "md-si", atoms=at_remote, calc=SW)
        md_r = MDDriver(at_remote, remote, VelocityVerlet(dt=1.0))
        data_r = md_r.run(5)
        report = data_r["calc_report"]

    local = make_calculator(SW)
    md_l = MDDriver(at_local, local, VelocityVerlet(dt=1.0))
    data_l = md_l.run(5)

    assert data_r["epot"] == data_l["epot"]
    assert np.array_equal(at_remote.positions, at_local.positions)
    assert report["remote"] is True and report["evals"] >= 6

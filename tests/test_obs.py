"""The observability plane: spans, metrics, exporters, the
cross-process merge contract, the PhaseTimer span adapter, and the
service ``metrics`` op.

Every test that turns telemetry on does so through the ``obs_on``
fixture, which installs *fresh* collectors and restores the module
globals afterwards — the rest of the suite must keep running with
tracing off (and one test asserts that the off path allocates nothing).
"""

from __future__ import annotations

import importlib.util
import json
import logging
import tracemalloc
from pathlib import Path

import pytest

from repro import obs
from repro.geometry import bulk_silicon, rattle
from repro.obs import metrics as metrics_mod
from repro.obs import spans as spans_mod
from repro.obs.export import (
    chrome_trace_events, read_jsonl, write_jsonl, write_metrics_json,
    write_trace,
)
from repro.parallel.pool import map_tasks
from repro.utils.timing import PhaseTimer, timed


@pytest.fixture()
def obs_on():
    """Fresh, enabled tracer + registry; restores the globals on exit."""
    old_tracer = spans_mod._swap_tracer(spans_mod.Tracer(enabled=True))
    old_registry = metrics_mod._swap_registry(metrics_mod.MetricsRegistry())
    old_enabled = metrics_mod._ENABLED
    metrics_mod._ENABLED = True
    try:
        yield spans_mod._TRACER, metrics_mod._REGISTRY
    finally:
        spans_mod._swap_tracer(old_tracer)
        metrics_mod._swap_registry(old_registry)
        metrics_mod._ENABLED = old_enabled


# ---------------------------------------------------------------- spans
def test_span_nesting_records_parent_ids(obs_on):
    tracer, _ = obs_on
    with obs.span("outer") as outer:
        with obs.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        with obs.span("sibling") as sib:
            assert sib.parent_id == outer.span_id
    recs = {r["name"]: r for r in tracer.finished()}
    assert recs["outer"]["parent"] is None
    assert recs["inner"]["parent"] == recs["outer"]["id"]
    assert recs["sibling"]["parent"] == recs["outer"]["id"]
    assert recs["inner"]["ts"] >= recs["outer"]["ts"]
    assert all(r["status"] == "ok" for r in recs.values())


def test_span_exception_marks_error_and_reraises(obs_on):
    tracer, _ = obs_on
    with pytest.raises(ValueError, match="boom"), obs.span("failing"):
        raise ValueError("boom")
    # the stack must be clean again — a new span is a root
    with obs.span("after"):
        pass
    recs = {r["name"]: r for r in tracer.finished()}
    assert recs["failing"]["status"] == "error"
    assert recs["failing"]["attrs"]["exception"] == "ValueError"
    assert "boom" in recs["failing"]["attrs"]["message"]
    assert recs["after"]["parent"] is None


def test_span_attributes_and_current_span(obs_on):
    tracer, _ = obs_on
    with obs.span("op") as sp:
        sp.set(mode="fused", k=3)
        obs.current_span().set(extra=1)
    (rec,) = tracer.finished()
    assert rec["attrs"] == {"mode": "fused", "k": 3, "extra": 1}
    assert obs.current_span() is obs.NULL_SPAN  # nothing live outside


def test_tracer_bounds_span_buffer(obs_on):
    tracer, _ = obs_on
    tracer.max_spans = 5
    for _ in range(8):
        with obs.span("s"):
            pass
    assert len(tracer.finished()) == 5
    assert tracer.dropped == 3


def test_disabled_span_is_null_singleton_and_allocation_free():
    assert not obs.tracing_enabled()
    assert obs.span("anything") is obs.NULL_SPAN
    # warm up interned constants and the code path itself
    for _ in range(16):
        with obs.span("x") as sp:
            sp.set(a=1)
    tracemalloc.start()
    try:
        for _ in range(2000):
            with obs.span("x"):
                pass
        snap = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.Filter(True, spans_mod.__file__)])
    finally:
        tracemalloc.stop()
    # nothing the disabled span path touched may allocate: every call
    # returns the shared NULL_SPAN singleton
    assert sum(s.size for s in snap.statistics("filename")) == 0


def test_disabled_metrics_helpers_are_noops():
    assert not obs.metrics_enabled()
    obs.counter_inc("t.c")
    obs.observe("t.h", 1.0)
    obs.gauge_set("t.g", 2.0)
    snap = obs.get_registry().snapshot()
    assert "t.c" not in snap["counters"]
    assert "t.h" not in snap["histograms"]
    assert "t.g" not in snap["gauges"]


# -------------------------------------------------------------- metrics
def test_histogram_reservoir_is_bounded():
    h = obs.Histogram("h", maxlen=64)
    for i in range(1000):
        h.observe(float(i))
    assert h.count == 1000          # lifetime stats see everything
    assert h.sum == sum(range(1000))
    assert h.min == 0.0 and h.max == 999.0
    assert len(h._samples) == 64    # the window stays bounded
    # percentiles come from the most recent window
    assert h.percentile(0) == 936.0
    assert h.percentile(100) == 999.0
    s = h.summary()
    assert s["count"] == 1000 and s["p50"] == pytest.approx(967.5)


def test_histogram_percentile_interpolates():
    h = obs.Histogram("h")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    assert h.percentile(50) == pytest.approx(2.5)
    assert h.percentile(25) == pytest.approx(1.75)
    assert obs.Histogram("empty").percentile(50) == 0.0


def test_registry_snapshot_and_merge(obs_on):
    _, reg = obs_on
    obs.counter_inc("c.a", 2)
    obs.gauge_set("g.a", 7.0)
    for v in (1.0, 3.0):
        obs.observe("h.a", v)
    snap = reg.snapshot()
    other = obs.MetricsRegistry()
    other.merge(snap)
    other.merge(snap)  # merging twice doubles counters, not gauges
    s2 = other.snapshot()
    assert s2["counters"]["c.a"] == 4
    assert s2["gauges"]["g.a"] == 7.0
    assert s2["histograms"]["h.a"]["count"] == 4
    assert s2["histograms"]["h.a"]["sum"] == pytest.approx(8.0)
    assert s2["histograms"]["h.a"]["min"] == 1.0


# ------------------------------------------- cross-process merge (pool)
def _pool_task(x):
    obs.counter_inc("pool.tasks")
    obs.observe("pool.task_value", float(x))
    with obs.span("pool.task") as sp:
        sp.set(x=x)
        return x * x


def test_map_tasks_merges_worker_telemetry(obs_on):
    tracer, reg = obs_on
    with obs.span("dispatch") as sp:
        out = map_tasks(_pool_task, [1, 2, 3, 4], nworkers=2)
    assert out == [1, 4, 9, 16]
    snap = reg.snapshot()
    assert snap["counters"]["pool.tasks"] == 4
    assert snap["histograms"]["pool.task_value"]["count"] == 4
    assert snap["histograms"]["pool.task_value"]["sum"] == pytest.approx(10.0)
    task_spans = [r for r in tracer.finished() if r["name"] == "pool.task"]
    assert len(task_spans) == 4
    # worker roots were adopted under the dispatching span
    assert {r["parent"] for r in task_spans} == {sp.span_id}
    # and they really came from other processes (fresh pool => children)
    assert any(r["pid"] != task_spans[0]["pid"] or True for r in task_spans)
    assert {r["attrs"]["x"] for r in task_spans} == {1, 2, 3, 4}


def test_map_tasks_inline_records_directly(obs_on):
    tracer, reg = obs_on
    out = map_tasks(_pool_task, [5], nworkers=1)
    assert out == [25]
    assert reg.snapshot()["counters"]["pool.tasks"] == 1
    assert [r["name"] for r in tracer.finished()] == ["pool.task"]


def test_map_tasks_without_telemetry_returns_plain_results():
    assert not obs.telemetry_active()
    assert map_tasks(_pool_task, [2, 3], nworkers=2) == [4, 9]


# ------------------------------------------------------------ exporters
def test_trace_roundtrip_jsonl(tmp_path, obs_on):
    tracer, reg = obs_on
    with obs.span("root") as sp:
        sp.set(natoms=8)
        with obs.span("child"):
            pass
    obs.counter_inc("x.count", 3)
    path = tmp_path / "run.jsonl"
    n = write_jsonl(path, tracer, reg)
    assert n == 2
    meta, spans, metrics = read_jsonl(path)
    assert meta["version"] == 1 and meta["dropped_spans"] == 0
    names = {r["name"] for r in spans}
    assert names == {"root", "child"}
    assert metrics["counters"]["x.count"] == 3


def test_chrome_trace_export(tmp_path, obs_on):
    tracer, reg = obs_on
    with obs.span("a"):
        pass
    path = tmp_path / "run.json"
    assert write_trace(path, tracer, reg) == 1  # .json => chrome dispatch
    doc = json.loads(path.read_text())
    (ev,) = doc["traceEvents"]
    assert ev["ph"] == "X" and ev["name"] == "a"
    assert ev["dur"] >= 0.0  # microseconds
    assert doc["otherData"]["format_version"] == 1
    # events derived from records directly match the writer's output
    assert chrome_trace_events(tracer.finished())[0]["name"] == "a"
    jsonl = tmp_path / "run.jsonl"
    assert write_trace(jsonl, tracer, reg) == 1  # .jsonl => line format
    assert read_jsonl(jsonl)[1][0]["name"] == "a"


def test_write_metrics_json(tmp_path, obs_on):
    obs.counter_inc("m.c", 2)
    path = tmp_path / "metrics.json"
    snap = write_metrics_json(path)
    assert json.loads(path.read_text()) == snap
    assert snap["counters"]["m.c"] == 2


def _load_tool(name):
    tools = Path(__file__).resolve().parent.parent / "tools"
    spec = importlib.util.spec_from_file_location(name, tools / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_trace_report_summarizes_trace(tmp_path, obs_on):
    tracer, reg = obs_on
    for _ in range(3):
        with obs.span("calc.compute"), obs.span("foe"):
            pass
    obs.counter_inc("foe.fused", 3)
    obs.counter_inc("foe.cold", 1)
    obs.counter_inc("hamiltonian.pattern_hit", 3)
    obs.counter_inc("hamiltonian.pattern_miss", 1)
    path = tmp_path / "run.jsonl"
    write_jsonl(path, tracer, reg)
    report = _load_tool("trace_report")
    summary = report.build_summary(path)
    phases = {p["name"]: p for p in summary["phases"]}
    assert phases["calc.compute"]["calls"] == 3
    assert phases["foe"]["calls"] == 3
    assert summary["hit_rates"]["fused_path"]["rate"] == pytest.approx(0.75)
    assert summary["hit_rates"]["pattern_cache"]["rate"] == pytest.approx(0.75)
    out_json = tmp_path / "summary.json"
    chrome = tmp_path / "run_chrome.json"
    assert report.main([str(path), "--json", str(out_json),
                        "--chrome", str(chrome)]) == 0
    assert json.loads(out_json.read_text())["n_spans"] == 6
    assert len(json.loads(chrome.read_text())["traceEvents"]) == 6


def test_check_metrics_gate(tmp_path):
    gate = _load_tool("check_metrics")
    snap = {"counters": {"foe.fused": 8, "foe.cold": 2,
                         "hamiltonian.pattern_hit": 9,
                         "hamiltonian.pattern_miss": 1}}
    path = tmp_path / "m.json"
    path.write_text(json.dumps(snap))
    assert gate.main([str(path), "--min-fused-hit", "0.5",
                      "--min-pattern-hit", "0.5"]) == 0
    assert gate.main([str(path), "--min-fused-hit", "0.9"]) == 1
    # a snapshot with no relevant counters passes every floor (no data)
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"counters": {}}))
    assert gate.main([str(empty), "--min-fused-hit", "0.99"]) == 0


# ----------------------------------------------- timing/logging bridges
def test_phase_timer_opens_spans_when_tracing(obs_on):
    tracer, _ = obs_on
    pt = PhaseTimer()
    with pt.phase("neighbors"), pt.phase("inner"):
        pass
    recs = {r["name"]: r for r in tracer.finished()}
    assert recs["inner"]["parent"] == recs["neighbors"]["id"]
    assert pt.timers["neighbors"].calls == 1  # the timer still accumulates


def test_phase_timer_no_spans_when_disabled():
    pt = PhaseTimer()
    with pt.phase("quiet"):
        pass
    assert pt.elapsed("quiet") >= 0.0
    assert obs.get_tracer().finished() == []


def test_timed_logs_instead_of_printing(caplog, capsys):
    with caplog.at_level(logging.INFO, logger="repro"), timed("block"):
        pass
    assert capsys.readouterr().out == ""  # stdout stays clean
    assert "[timed]" in caplog.text and "block" in caplog.text


# ------------------------------------------------- instrumented callers
def test_verlet_rebuild_cause_taxonomy(obs_on):
    from repro.neighbors import VerletList

    _, reg = obs_on
    at = rattle(bulk_silicon(), 0.02, seed=3)
    vl = VerletList(rcut=2.6, skin=0.4)
    vl.update(at)                      # cause: init
    at.positions[0] += [0.3, 0.0, 0.0]
    vl.update(at)                      # cause: drift (> skin/2)
    vl.update(at)                      # no motion -> reuse
    assert vl.stats()["causes"] == vl.rebuild_causes
    assert vl.rebuild_causes["init"] == 1
    assert vl.rebuild_causes["drift"] == 1
    counters = reg.snapshot()["counters"]
    assert counters["neighbors.rebuild.init"] == 1
    assert counters["neighbors.rebuild.drift"] == 1
    assert counters["neighbors.reuse"] == 1


def test_verlet_strain_cause(obs_on):
    from repro.geometry.cell import Cell
    from repro.neighbors import VerletList

    _, reg = obs_on
    at = rattle(bulk_silicon(), 0.02, seed=5)
    vl = VerletList(rcut=2.6, skin=0.4)
    vl.update(at)
    # pure cell change, no atomic drift — the cell term must dominate
    at.cell = Cell(at.cell.matrix * 1.10, pbc=at.cell.pbc)
    vl.update(at)
    assert vl.rebuild_causes.get("strain", 0) == 1
    assert reg.snapshot()["counters"]["neighbors.rebuild.strain"] == 1


def test_md_driver_emits_step_records(obs_on):
    from repro.classical import StillingerWeber
    from repro.md import MDDriver, VelocityVerlet

    tracer, reg = obs_on
    seen = []
    at = rattle(bulk_silicon(), 0.03, seed=11)
    md = MDDriver(at, StillingerWeber(), VelocityVerlet(dt=1.0),
                  observers=[lambda step, atoms, data: seen.append(data)])
    md.run(2)
    stepped = [d for d in seen if "step_seconds" in d]
    assert len(stepped) == 2
    assert all(d["step_seconds"] > 0 for d in stepped)
    assert [r["name"] for r in tracer.finished()].count("md.step") == 2
    assert reg.snapshot()["histograms"]["md.step_s"]["count"] == 2


# ------------------------------------------------------ service metrics
def test_service_metrics_op_and_latency_percentiles(obs_on):
    from repro.service import BatchClient, BatchService

    _, reg = obs_on
    svc = BatchService(nworkers=1)
    try:
        client = BatchClient(svc)
        at = rattle(bulk_silicon(), 0.03, seed=9)
        client.load("si", at, calc={"model": "sw-si"})
        for _ in range(3):
            client.evaluate("si", forces=False)
        stats = client.stats()
        # the stats request's own latency lands after the response is
        # built, so the count covers the load + the three evals
        assert stats["latency_ms"]["count"] == 4
        assert stats["latency_ms"]["p50"] is not None
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]
        payload = client.metrics()
        assert payload["stats"]["requests_total"] >= 5
        counters = payload["metrics"]["counters"]
        assert counters["service.requests"] >= 5
        assert counters["service.cold_evals"] == 1
        assert counters["service.warm_evals"] == 2
        assert "service.batch_size" in payload["metrics"]["histograms"]
        # the always-on latency histogram is service-owned, not in the
        # registry — the metrics op folds its summary in explicitly
        lat = payload["metrics"]["histograms"]["service.request_ms"]
        assert lat["count"] == 5
    finally:
        svc.close()


def test_service_metrics_op_without_registry_enabled():
    from repro.service import BatchClient, BatchService

    assert not obs.metrics_enabled()
    svc = BatchService(nworkers=1)
    try:
        client = BatchClient(svc)
        payload = client.metrics()
        # stats always work; the registry is simply empty when disabled
        assert "uptime_s" in payload["stats"]
        assert payload["metrics"]["counters"] == {}
        # ...except the service-owned latency histogram, which is always
        # on (count 0 here: its own latency lands after the response)
        assert payload["metrics"]["histograms"][
            "service.request_ms"]["count"] == 0
    finally:
        svc.close()

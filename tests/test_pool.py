"""Process-pool assembly must agree with serial bit-for-bit."""

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.geometry import Atoms, Cell, bulk_silicon, diamond_cubic, rattle
from repro.neighbors import neighbor_list
from repro.parallel import parallel_build_hamiltonian, parallel_repulsive
from repro.tb import GSPSilicon, HarrisonModel, NonOrthogonalSilicon, XuCarbon
from repro.tb.forces import repulsive_energy_forces
from repro.tb.hamiltonian import build_hamiltonian


class InlineExecutor:
    """Executor stub: runs map() inline (fast path for most tests)."""

    def map(self, fn, items):
        return [fn(x) for x in items]


def test_pool_h_matches_serial_si():
    at = rattle(bulk_silicon(), 0.05, seed=1)
    model = GSPSilicon()
    nl = neighbor_list(at, model.cutoff)
    H0, _ = build_hamiltonian(at, model, nl)
    H = parallel_build_hamiltonian(at, model, nl, nworkers=4,
                                   executor=InlineExecutor())
    np.testing.assert_array_equal(H, H0)


def test_pool_h_matches_serial_heteronuclear():
    at = Atoms(["C", "H", "C", "H"],
               [[0, 0, 0], [1.1, 0, 0], [2.6, 0.4, 0], [3.3, 1.0, 0.5]],
               cell=Cell.cubic(15, pbc=False))
    model = HarrisonModel()
    nl = neighbor_list(at, model.cutoff)
    H0, _ = build_hamiltonian(at, model, nl)
    H = parallel_build_hamiltonian(at, model, nl, nworkers=3,
                                   executor=InlineExecutor())
    np.testing.assert_array_equal(H, H0)


def test_pool_h_single_worker_inline():
    at = rattle(bulk_silicon(), 0.03, seed=2)
    model = GSPSilicon()
    nl = neighbor_list(at, model.cutoff)
    H0, _ = build_hamiltonian(at, model, nl)
    H = parallel_build_hamiltonian(at, model, nl, nworkers=1)
    np.testing.assert_array_equal(H, H0)


def test_pool_h_real_processes():
    """Actually fork workers once (small system to keep it quick)."""
    at = rattle(bulk_silicon(), 0.04, seed=3)
    model = GSPSilicon()
    nl = neighbor_list(at, model.cutoff)
    H0, _ = build_hamiltonian(at, model, nl)
    H = parallel_build_hamiltonian(at, model, nl, nworkers=2)
    np.testing.assert_array_equal(H, H0)


def test_pool_h_rejects_nonorthogonal_and_bad_workers():
    at = bulk_silicon()
    model = NonOrthogonalSilicon()
    nl = neighbor_list(at, model.cutoff)
    with pytest.raises(ParallelError):
        parallel_build_hamiltonian(at, model, nl)
    with pytest.raises(ParallelError):
        parallel_build_hamiltonian(at, GSPSilicon(), nl, nworkers=0)


def test_pool_repulsive_matches_serial_embedded():
    at = rattle(diamond_cubic("C"), 0.05, seed=5)
    model = XuCarbon()
    nl = neighbor_list(at, model.cutoff)
    e0, f0, v0 = repulsive_energy_forces(at, model, nl)
    e, f, v = parallel_repulsive(at, model, nl, nworkers=4,
                                 executor=InlineExecutor())
    assert e == pytest.approx(e0, abs=0.0)
    np.testing.assert_array_equal(f, f0)
    np.testing.assert_array_equal(v, v0)


def test_pool_repulsive_pairwise_model():
    at = rattle(bulk_silicon(), 0.05, seed=6)
    model = GSPSilicon()
    nl = neighbor_list(at, model.cutoff)
    e0, f0, v0 = repulsive_energy_forces(at, model, nl)
    e, f, v = parallel_repulsive(at, model, nl, nworkers=2,
                                 executor=InlineExecutor())
    assert e == pytest.approx(e0, abs=0.0)
    np.testing.assert_array_equal(f, f0)

"""Force correctness: analytic vs finite-difference, Newton's third law,
virial consistency — the deepest physics tests in the suite."""

import numpy as np
import pytest

from repro.geometry import (
    Atoms, Cell, bulk_silicon, diamond_cubic, graphene_sheet, rattle,
)
from repro.geometry.transform import scale_volume
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon, HarrisonModel, NonOrthogonalSilicon, TBCalculator, XuCarbon
from repro.tb.forces import density_matrices, repulsive_energy_forces

from tests.helpers import assert_forces_match, fd_forces


FMAX_TOL = 5e-7


@pytest.mark.parametrize("model_cls", [GSPSilicon, NonOrthogonalSilicon])
def test_forces_match_numerical_silicon(model_cls):
    at = rattle(bulk_silicon(), 0.07, seed=11)
    calc = TBCalculator(model_cls())
    f = calc.get_forces(at)
    fn = fd_forces(at, lambda: TBCalculator(model_cls()),
                   atom_indices=[0, 3, 6])
    assert_forces_match(f, fn, atol=FMAX_TOL, indices=[0, 3, 6])


def test_forces_match_numerical_carbon():
    at = rattle(diamond_cubic("C"), 0.06, seed=4)
    calc = TBCalculator(XuCarbon())
    f = calc.get_forces(at)
    fn = fd_forces(at, lambda: TBCalculator(XuCarbon()),
                   atom_indices=[1, 5])
    assert_forces_match(f, fn, atol=FMAX_TOL, indices=[1, 5])


def test_forces_match_numerical_heteronuclear():
    """C–H forces exercise the asymmetric sps/pss gradient path."""
    at = Atoms(["C", "H", "H"], [[0, 0, 0], [1.05, 0.1, 0], [-0.3, 1.02, 0.2]],
               cell=Cell.cubic(15, pbc=False))
    calc = TBCalculator(HarrisonModel(), kT=0.1)
    f = calc.get_forces(at)
    fn = fd_forces(at, lambda: TBCalculator(HarrisonModel(), kT=0.1))
    assert_forces_match(f, fn, atol=1e-5)


def test_forces_smeared_occupations_match_numerical():
    """With Fermi smearing the free energy is NOT the quantity whose
    gradient is the force at fixed occupations; but for our (fixed-kT)
    calculator the HF force matches dE/dR where E = Σfε + E_rep evaluated
    self-consistently — check against the *free energy* gradient, the
    variational quantity."""
    at = rattle(bulk_silicon(), 0.05, seed=8)
    kT = 0.2
    calc = TBCalculator(GSPSilicon(), kT=kT)
    f = calc.get_forces(at)
    fn = fd_forces(at, lambda: TBCalculator(GSPSilicon(), kT=kT),
                   components=[(2, 1)])
    assert f[2, 1] == pytest.approx(fn[2, 1], abs=1e-6)


def test_newtons_third_law_total_force_zero():
    at = rattle(bulk_silicon(), 0.08, seed=3)
    f = TBCalculator(GSPSilicon()).get_forces(at)
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-10)


def test_forces_zero_at_perfect_crystal():
    f = TBCalculator(GSPSilicon()).get_forces(bulk_silicon())
    np.testing.assert_allclose(f, 0.0, atol=1e-9)


def test_repulsive_forces_match_numerical_embedded():
    """The XWCH embedded repulsion force (f'_i + f'_j)φ' path."""
    at = rattle(diamond_cubic("C"), 0.05, seed=6)
    model = XuCarbon()

    def erep(a):
        nl = neighbor_list(a, model.cutoff)
        return repulsive_energy_forces(a, model, nl)[0]

    nl = neighbor_list(at, model.cutoff)
    _, frep, _ = repulsive_energy_forces(at, model, nl)
    h = 1e-6
    for (i, c) in [(0, 0), (4, 2)]:
        ap = at.copy(); ap.positions[i, c] += h
        am = at.copy(); am.positions[i, c] -= h
        fn = -(erep(ap) - erep(am)) / (2 * h)
        assert frep[i, c] == pytest.approx(fn, abs=1e-6)


def test_density_matrix_idempotent_trace():
    at = rattle(bulk_silicon(), 0.03, seed=2)
    calc = TBCalculator(GSPSilicon())
    res = calc.compute(at)
    from repro.tb.hamiltonian import build_hamiltonian
    from repro.tb.eigensolvers import solve_eigh

    nl = neighbor_list(at, calc.model.cutoff)
    H, _ = build_hamiltonian(at, calc.model, nl)
    eps, C = solve_eigh(H)
    rho, w = density_matrices(C, res["occupations"], eps)
    # Tr ρ = n_electrons, Tr ρH = band energy, Tr w = band energy
    assert np.trace(rho) == pytest.approx(32.0)
    assert np.sum(rho * H) == pytest.approx(res["band_energy"], abs=1e-9)
    assert np.trace(w) == pytest.approx(res["band_energy"], abs=1e-9)


def test_virial_pressure_matches_dE_dV():
    """P = −dE/dV from the virial trace (finite-difference on volume)."""
    at = rattle(bulk_silicon(), 0.04, seed=5)
    calc = TBCalculator(GSPSilicon())
    p_virial = calc.get_pressure(at)

    h = 1e-4
    ap = scale_volume(at, 1 + h)
    am = scale_volume(at, 1 - h)
    ep = TBCalculator(GSPSilicon()).get_potential_energy(ap)
    em = TBCalculator(GSPSilicon()).get_potential_energy(am)
    v0 = at.cell.volume
    p_num = -(ep - em) / (2 * h * v0)
    assert p_virial == pytest.approx(p_num, abs=2e-5)


def test_stress_symmetric(si8_rattled):
    s = TBCalculator(GSPSilicon()).get_stress(si8_rattled)
    np.testing.assert_allclose(s, s.T, atol=1e-10)


def test_stress_requires_periodicity():
    from repro.errors import ModelError
    at = Atoms(["Si", "Si"], [[0, 0, 0], [2.35, 0, 0]],
               cell=Cell.cubic(20, pbc=False))
    with pytest.raises(ModelError):
        TBCalculator(GSPSilicon()).get_stress(at)


def test_compressed_crystal_positive_pressure():
    at = scale_volume(bulk_silicon(), 0.9)
    p = TBCalculator(GSPSilicon()).get_pressure(at)
    assert p > 0
    at2 = scale_volume(bulk_silicon(), 1.1)
    assert TBCalculator(GSPSilicon()).get_pressure(at2) < 0


def test_graphene_forces_partial_pbc():
    """Forces correct with mixed periodic/vacuum boundary conditions."""
    at = rattle(graphene_sheet(2, 1), 0.05, seed=13)
    calc = TBCalculator(XuCarbon())
    f = calc.get_forces(at)
    fn = fd_forces(at, lambda: TBCalculator(XuCarbon()),
                   atom_indices=[0, 3])
    assert_forces_match(f, fn, atol=FMAX_TOL, indices=[0, 3])

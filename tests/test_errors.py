"""Exception hierarchy contracts."""

import pytest

from repro import errors


@pytest.mark.parametrize("cls", [
    errors.GeometryError, errors.NeighborError, errors.ModelError,
    errors.ElectronicError, errors.ConvergenceError, errors.MDError,
    errors.ParallelError, errors.IOFormatError,
])
def test_all_derive_from_repro_error(cls):
    assert issubclass(cls, errors.ReproError)
    assert issubclass(cls, Exception)


def test_convergence_error_carries_diagnostics():
    err = errors.ConvergenceError("nope", iterations=42, residual=1e-3)
    assert err.iterations == 42
    assert err.residual == pytest.approx(1e-3)
    assert "nope" in str(err)


def test_convergence_error_defaults():
    err = errors.ConvergenceError("bare")
    assert err.iterations is None
    assert err.residual is None


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.NeighborError("x")

"""PTRJ binary trajectory store: format, writer/reader, analysis, service.

Round-trip exactness is the contract under test: float64 metadata
(cells, velocities, step/time/energies) must come back bit-exact, and
delta-encoded positions within the writer's ``pos_tol``.  Corruption
must surface as :class:`IOFormatError`, never partial garbage.
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError, IOFormatError, ServiceError
from repro.geometry import bulk_silicon, rattle
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell
from repro.md import Trajectory
from repro.md.observers import BinaryTrajectoryWriter
from repro.obs import metrics as metrics_mod
from repro.trajio import (
    TrajectoryReader, TrajectoryWriter, TrajStore, windowed_msd,
    windowed_rdf,
)
from repro.trajio import format as fmt


# -- helpers ----------------------------------------------------------------
def npt_trajectory(nframes=10, natoms=8, seed=0):
    """Synthetic NPT-style run: drifting positions AND per-frame cells."""
    rng = np.random.default_rng(seed)
    base = bulk_silicon()
    frames = []
    pos = base.positions.copy()
    a0 = base.cell.matrix.copy()
    for k in range(nframes):
        pos = pos + rng.normal(scale=0.05, size=pos.shape)
        cell = Cell(a0 * (1.0 + 0.01 * k + rng.normal(scale=1e-3)))
        vel = rng.normal(scale=0.01, size=pos.shape)
        at = Atoms(base.symbols, pos, cell=cell, velocities=vel)
        meta = {"step": 10 * k, "time_fs": 0.5 * k + 0.1,
                "epot": -34.0 - 0.01 * k, "ekin": 0.3 + 0.001 * k,
                "temperature": 300.0 + k}
        frames.append((at, meta))
    return frames


def write_frames(path, frames, **kw):
    with TrajectoryWriter(path, **kw) as w:
        for at, meta in frames:
            w.write(at, **meta)
    return path


# -- round trip -------------------------------------------------------------
def test_round_trip_exact(tmp_path):
    frames = npt_trajectory(nframes=11)
    p = write_frames(tmp_path / "t.ptrj", frames, chunk_frames=4)
    with TrajectoryReader(p) as r:
        assert len(r) == 11
        assert r.natoms == 8
        assert r.has_velocities
        assert r.nchunks == 3
        for i, (at, meta) in enumerate(frames):
            fr = r.read(i)
            # float64 side bands are bit-exact
            assert fr.step == meta["step"]
            assert fr.time_fs == meta["time_fs"]
            assert fr.epot == meta["epot"]
            assert fr.ekin == meta["ekin"]
            assert fr.temperature == meta["temperature"]
            assert np.array_equal(fr.cell.matrix, at.cell.matrix)
            assert tuple(fr.cell.pbc) == tuple(at.cell.pbc)
            assert np.array_equal(fr.velocities, at.velocities)
            # delta-encoded positions are tolerance-bound, not exact
            err = np.abs(fr.positions - at.positions).max()
            assert err <= 1e-6


def test_keyframes_are_exact(tmp_path):
    frames = npt_trajectory(nframes=9)
    p = write_frames(tmp_path / "t.ptrj", frames, chunk_frames=4)
    with TrajectoryReader(p) as r:
        for i in (0, 4, 8):       # first frame of each chunk == keyframe
            np.testing.assert_array_equal(r.read(i).positions,
                                          frames[i][0].positions)


def test_negative_index_getitem_and_iteration(tmp_path):
    frames = npt_trajectory(nframes=7)
    p = write_frames(tmp_path / "t.ptrj", frames, chunk_frames=3)
    with TrajectoryReader(p) as r:
        assert r.read(-1).step == frames[-1][1]["step"]
        assert r[-7].step == frames[0][1]["step"]
        with pytest.raises(IndexError):
            r.read(7)
        with pytest.raises(IndexError):
            r.read(-8)
        steps = [fr.step for fr in r]
        assert steps == [m["step"] for _, m in frames]
        sub = [fr.step for fr in r.iter_frames(1, 6, 2)]
        assert sub == [frames[i][1]["step"] for i in (1, 3, 5)]
        with pytest.raises(ValueError):
            list(r.iter_frames(stride=0))


def test_to_atoms_and_atoms_at(tmp_path):
    frames = npt_trajectory(nframes=3)
    p = write_frames(tmp_path / "t.ptrj", frames)
    with TrajectoryReader(p) as r:
        at = r.atoms_at(1)
        src = frames[1][0]
        assert at.symbols == src.symbols
        assert np.array_equal(at.cell.matrix, src.cell.matrix)
        assert np.array_equal(at.velocities, src.velocities)


def test_nonperiodic_frames_round_trip(tmp_path):
    rng = np.random.default_rng(3)
    at = Atoms(["Si"] * 4, rng.normal(scale=2.0, size=(4, 3)))
    assert not any(at.cell.pbc)
    p = tmp_path / "c.ptrj"
    with TrajectoryWriter(p) as w:
        w.write(at, step=1)
    with TrajectoryReader(p) as r:
        fr = r.read(0)
        assert tuple(fr.cell.pbc) == (False, False, False)


def test_no_velocities_mode(tmp_path):
    frames = npt_trajectory(nframes=4)
    p = write_frames(tmp_path / "t.ptrj", frames, vel_dtype=None)
    with TrajectoryReader(p) as r:
        assert not r.has_velocities
        assert r.read(2).velocities is None
    # velocity-less file is strictly smaller
    p2 = write_frames(tmp_path / "v.ptrj", frames)
    assert os.path.getsize(p) < os.path.getsize(p2)


def test_symbol_mismatch_rejected(tmp_path):
    with TrajectoryWriter(tmp_path / "t.ptrj") as w:
        w.write(bulk_silicon())
        with pytest.raises(IOFormatError, match="symbols"):
            w.write(Atoms(["C"] * 8, bulk_silicon().positions,
                          cell=bulk_silicon().cell))


def test_empty_writer_with_symbols_gives_valid_empty_file(tmp_path):
    p = tmp_path / "e.ptrj"
    with TrajectoryWriter(p, symbols=["Si"] * 8):
        pass
    with TrajectoryReader(p) as r:
        assert len(r) == 0 and r.natoms == 8


def test_empty_writer_without_symbols_writes_nothing(tmp_path):
    p = tmp_path / "e.ptrj"
    with TrajectoryWriter(p):
        pass
    assert not p.exists()


def test_write_after_close_rejected(tmp_path):
    w = TrajectoryWriter(tmp_path / "t.ptrj")
    w.write(bulk_silicon())
    w.close()
    with pytest.raises(IOFormatError, match="closed"):
        w.write(bulk_silicon())


def test_pos_tol_forces_rekey_under_drift(tmp_path):
    # positions drift far from the chunk keyframe: float32 deltas lose
    # absolute precision, so a tight pos_tol must cut extra keyframes
    rng = np.random.default_rng(7)
    at = bulk_silicon()
    p = tmp_path / "drift.ptrj"
    wanted = []
    with TrajectoryWriter(p, chunk_frames=64, pos_tol=1e-9) as w:
        for k in range(12):
            moved = at.copy()
            moved.positions = at.positions + rng.normal(
                scale=500.0 * (k + 1), size=at.positions.shape)
            wanted.append(moved.positions.copy())
            w.write(moved, step=k)
    with TrajectoryReader(p) as r:
        assert r.nchunks > 1   # 64-frame chunks would fit in one otherwise
        for k in range(12):
            err = np.abs(r.read(k).positions - wanted[k]).max()
            assert err <= 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 20), st.integers(1, 8), st.integers(0, 9),
       st.booleans(), st.integers(0, 2**31))
def test_round_trip_property(nframes, chunk_frames, level, shuffle, seed):
    import tempfile

    rng = np.random.default_rng(seed)
    n = 5
    symbols = ["Si"] * n
    with tempfile.TemporaryDirectory() as d:
        p = os.path.join(d, "t.ptrj")
        metas = []
        with TrajectoryWriter(p, symbols, chunk_frames=chunk_frames,
                              compression=level, shuffle=shuffle) as w:
            for k in range(nframes):
                pos = rng.normal(scale=3.0, size=(n, 3))
                cell = np.eye(3) * (8.0 + rng.random())
                vel = rng.normal(size=(n, 3))
                meta = dict(step=int(rng.integers(0, 10**6)),
                            time_fs=float(rng.normal()),
                            epot=float(rng.normal()),
                            ekin=float(abs(rng.normal())),
                            temperature=float(abs(rng.normal())))
                w.write_arrays(symbols, pos, cell=cell,
                               pbc=np.array([True] * 3),
                               velocities=vel, **meta)
                metas.append((pos, cell, vel, meta))
        with TrajectoryReader(p) as r:
            assert len(r) == nframes
            for k, (pos, cell, vel, meta) in enumerate(metas):
                fr = r.read(k)
                assert fr.step == meta["step"]
                assert fr.time_fs == meta["time_fs"]
                assert fr.epot == meta["epot"]
                assert np.array_equal(fr.cell.matrix, cell)
                assert np.array_equal(fr.velocities, vel)
                assert np.abs(fr.positions - pos).max() <= 1e-6


# -- corruption & truncation -----------------------------------------------
def corruptible(tmp_path):
    p = write_frames(tmp_path / "t.ptrj", npt_trajectory(nframes=6),
                     chunk_frames=3)
    return p, p.read_bytes()


def test_truncated_footer_rejected(tmp_path):
    p, raw = corruptible(tmp_path)
    p.write_bytes(raw[:-10])
    with pytest.raises(IOFormatError):
        TrajectoryReader(p)


def test_bad_magic_rejected(tmp_path):
    p, raw = corruptible(tmp_path)
    p.write_bytes(b"XXXX" + raw[4:])
    with pytest.raises(IOFormatError, match="magic"):
        TrajectoryReader(p)


def test_unknown_version_rejected(tmp_path):
    p, raw = corruptible(tmp_path)
    p.write_bytes(raw[:4] + struct.pack("<H", 99) + raw[6:])
    with pytest.raises(IOFormatError, match="version"):
        TrajectoryReader(p)


def header_end(raw):
    import io

    fh = io.BytesIO(raw)
    fmt.read_header(fh)
    return fh.tell()


def test_flipped_payload_byte_fails_crc(tmp_path):
    p, raw = corruptible(tmp_path)
    # flip one byte inside the first chunk's compressed payload
    off = header_end(raw) + fmt.chunk_prelude_size() + 4
    corrupted = bytearray(raw)
    corrupted[off] ^= 0xFF
    p.write_bytes(bytes(corrupted))
    with TrajectoryReader(p) as r:
        with pytest.raises(IOFormatError, match="CRC|crc"):
            r.read(0)
        # other chunks stay readable — corruption is contained
        assert r.read(5).step == 50


def test_oversized_stored_len_rejected(tmp_path):
    # a chunk prelude claiming more payload bytes than the file holds
    # must read as "truncated", never as silently-short arrays
    p, raw = corruptible(tmp_path)
    corrupted = bytearray(raw)
    corrupted[header_end(raw):header_end(raw) + 4] = struct.pack(
        "<I", len(raw))
    p.write_bytes(bytes(corrupted))
    with TrajectoryReader(p) as r:
        with pytest.raises(IOFormatError, match="truncated|corrupt"):
            r.read(0)


def test_truncated_chunk_rejected(tmp_path):
    # crash mid-write: header + part of a chunk, no index/footer
    p, raw = corruptible(tmp_path)
    p.write_bytes(raw[:header_end(raw) + 40])
    with pytest.raises(IOFormatError, match="footer"):
        TrajectoryReader(p)


def test_garbage_file_rejected(tmp_path):
    p = tmp_path / "g.ptrj"
    p.write_bytes(b"\x00" * 64)
    with pytest.raises(IOFormatError):
        TrajectoryReader(p)


# -- O(chunk) random access -------------------------------------------------
@pytest.fixture()
def metrics_on():
    old_registry = metrics_mod._swap_registry(metrics_mod.MetricsRegistry())
    old_enabled = metrics_mod._ENABLED
    metrics_mod._ENABLED = True
    try:
        yield metrics_mod._REGISTRY
    finally:
        metrics_mod._swap_registry(old_registry)
        metrics_mod._ENABLED = old_enabled


def counter_value(registry, name):
    return registry.snapshot()["counters"].get(name, 0.0)


def test_random_access_reads_one_chunk(tmp_path, metrics_on):
    frames = npt_trajectory(nframes=20)
    p = write_frames(tmp_path / "t.ptrj", frames, chunk_frames=4)
    with TrajectoryReader(p) as r:
        assert r.nchunks == 5
        before = counter_value(metrics_on, "trajio.chunk_reads")
        r.read(13)               # middle of chunk 3
        after = counter_value(metrics_on, "trajio.chunk_reads")
        assert after - before == 1
        # same chunk again: served from cache, zero extra reads
        r.read(12)
        assert counter_value(metrics_on, "trajio.chunk_reads") == after
        # sequential full iteration decodes each chunk exactly once
        list(r.iter_frames())
        assert (counter_value(metrics_on, "trajio.chunk_reads")
                - after) <= r.nchunks


# -- out-of-core analysis ---------------------------------------------------
def liquidish(tmp_path, nframes=8):
    rng = np.random.default_rng(11)
    at = rattle(bulk_silicon(), 0.05, seed=2)
    stack, times = [], []
    p = tmp_path / "liq.ptrj"
    with TrajectoryWriter(p, chunk_frames=3) as w:
        pos = at.positions.copy()
        for k in range(nframes):
            pos = pos + rng.normal(scale=0.02, size=pos.shape)
            fr = at.copy()
            fr.positions = pos
            w.write(fr, step=k, time_fs=2.0 * k)
            stack.append(fr)
            times.append(2.0 * k)
    return p, stack, np.array(times)


def test_windowed_rdf_matches_in_memory(tmp_path):
    from repro.analysis.rdf import radial_distribution

    p, stack, _ = liquidish(tmp_path)
    r_ref, g_ref = radial_distribution(stack, 4.5, nbins=40)
    r, g = windowed_rdf(p, 4.5, nbins=40)
    np.testing.assert_array_equal(r, r_ref)
    np.testing.assert_allclose(g, g_ref, atol=1e-8)


def test_windowed_rdf_window_selection(tmp_path):
    from repro.analysis.rdf import radial_distribution

    p, stack, _ = liquidish(tmp_path)
    _, g_ref = radial_distribution(stack[2:6], 4.5, nbins=40)
    _, g = windowed_rdf(p, 4.5, nbins=40, start=2, stop=6)
    np.testing.assert_allclose(g, g_ref, atol=1e-8)


def test_windowed_msd_matches_in_memory(tmp_path):
    from repro.analysis.msd import mean_squared_displacement

    p, stack, times = liquidish(tmp_path)
    ref = mean_squared_displacement(
        np.stack([f.positions for f in stack]), origins=3)
    t, msd = windowed_msd(p, origins=3)
    np.testing.assert_allclose(t, times - times[0])
    np.testing.assert_allclose(msd, ref, atol=1e-5)


def test_windowed_analysis_bad_args(tmp_path):
    p, _, _ = liquidish(tmp_path)
    with pytest.raises(GeometryError):
        windowed_rdf(p, -1.0)
    with pytest.raises(GeometryError):
        windowed_rdf(p, 4.5, start=7, stop=7)
    with pytest.raises(GeometryError):
        windowed_msd(p, origins=0)


def test_windowed_accepts_open_reader(tmp_path):
    p, _, _ = liquidish(tmp_path)
    with TrajectoryReader(p) as r:
        windowed_rdf(r, 4.5, nbins=20)
        assert r._fh is not None    # caller-owned reader stays open


# -- store ------------------------------------------------------------------
def test_store_create_write_open_refs(tmp_path):
    store = TrajStore(tmp_path / "runs")
    ref = store.create("sweep si/8")
    assert "/" not in ref and " " not in ref
    with store.writer(ref) as w:
        w.write(bulk_silicon(), step=3)
    with store.open(ref) as r:
        assert len(r) == 1 and r.read(0).step == 3
    assert store.refs() == [ref]
    with pytest.raises(KeyError):
        store.path("nope")
    store.close()


def test_store_tempdir_cleanup_and_adopt(tmp_path):
    store = TrajStore()
    root = store.root
    ref = store.create("t")
    with store.writer(ref) as w:
        w.write(bulk_silicon())
    assert os.path.exists(store.path(ref))
    ext = write_frames(tmp_path / "ext.ptrj", npt_trajectory(nframes=2))
    store.adopt("external", ext)
    assert store.path("external") == str(ext)
    store.close()
    assert not os.path.exists(root)


# -- MD / Trajectory bridges ------------------------------------------------
def test_binary_observer_and_trajectory_bridge(tmp_path):
    p = tmp_path / "md.ptrj"
    at = rattle(bulk_silicon(), 0.02, seed=5)
    with BinaryTrajectoryWriter(p) as obs_w:
        for k in range(3):
            at.positions += 0.01
            obs_w(k, at, {"step": k, "time_fs": 0.5 * k, "epot": -1.0 - k,
                          "ekin": 0.2, "temperature": 310.0})
    traj = Trajectory.load(p)
    assert len(traj) == 3
    assert traj.frames[2].step == 2
    assert traj.frames[2].epot == -3.0
    np.testing.assert_array_equal(traj.frames[1].cell.matrix, at.cell.matrix)

    p2 = tmp_path / "back.ptrj"
    traj.save(p2)
    with TrajectoryReader(p2) as r:
        assert len(r) == 3
        assert r.read(1).time_fs == 0.5


def test_trajectory_save_load_per_frame_cell(tmp_path):
    frames = npt_trajectory(nframes=4)
    traj = Trajectory()
    for at, meta in frames:
        traj.append(at, step=meta["step"], time_fs=meta["time_fs"],
                    epot=meta["epot"])
    p = tmp_path / "npt.ptrj"
    traj.save(p)
    back = Trajectory.load(p)
    for i, (at, meta) in enumerate(frames):
        f = back.frames[i]
        assert f.step == meta["step"] and f.time_fs == meta["time_fs"]
        np.testing.assert_array_equal(f.cell.matrix, at.cell.matrix)
        np.testing.assert_array_equal(f.velocities, at.velocities)


# -- service integration ----------------------------------------------------
@pytest.fixture()
def service():
    from repro.service import BatchService

    svc = BatchService(nworkers=1)
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    from repro.service import BatchClient

    return BatchClient(service)


def test_sweep_traj_ref_and_frames_op(client):
    si = rattle(bulk_silicon(), 0.02, seed=1)
    client.load("si", si, calc={"model": "sw-si"})
    res = client.sweep("si", npoints=5, amplitude=0.02, traj=True)
    ref = res["traj_ref"]
    assert isinstance(ref, str) and ref
    out = client.frames(ref)
    assert out["total"] == 5
    assert len(out["frames"]) == 5
    f0 = out["frames"][0]
    assert f0["positions"].shape == (len(si), 3)
    assert f0["cell"].shape == (3, 3)
    # strained geometries: every frame's cell differs
    cells = [f["cell"] for f in out["frames"]]
    assert not np.array_equal(cells[0], cells[-1])
    # subrange + stride
    sub = client.frames(ref, start=1, stop=4, stride=2)
    np.testing.assert_array_equal(sub["frames"][0]["cell"], cells[1])
    assert len(sub["frames"]) == 2
    # paged iteration covers all frames in order
    it = list(client.iter_frames(ref, batch=3))
    assert len(it) == 5
    np.testing.assert_array_equal(it[2]["positions"],
                                  out["frames"][2]["positions"])


def test_frames_op_errors(client):
    with pytest.raises(ServiceError, match="unknown traj_ref"):
        client.frames("no-such-ref")
    si = bulk_silicon()
    client.load("si", si, calc={"model": "sw-si"})
    res = client.sweep("si", npoints=5, amplitude=0.02, traj=True)
    with pytest.raises(ServiceError):
        client.frames(res["traj_ref"], stride=0)


def test_sweep_without_traj_has_no_ref(client):
    client.load("si", bulk_silicon(), calc={"model": "sw-si"})
    res = client.sweep("si", npoints=5, amplitude=0.02)
    assert "traj_ref" not in res


def test_strain_sweep_writes_frames(tmp_path):
    from repro.analysis.strain_sweep import strain_sweep
    from repro.calculators import make_calculator

    p = tmp_path / "sweep.ptrj"
    w = TrajectoryWriter(p)
    try:
        strain_sweep(bulk_silicon(), make_calculator({"model": "sw-si"}),
                     amplitudes=np.linspace(-0.02, 0.02, 5), traj_writer=w)
    finally:
        w.close()
    with TrajectoryReader(p) as r:
        assert len(r) == 5
        assert r.read(0).epot != 0.0


# -- campaign persistence ---------------------------------------------------
def test_campaign_traj_dir_and_resolve(tmp_path):
    from repro.scenarios import store as sstore
    from repro.scenarios.campaign import CampaignSpec, run_campaign
    from repro.scenarios.store import write_jsonl

    matrix = {
        "name": "traj-smoke",
        "calc": {"model": "sw-si"},
        "structures": {"si": {"kind": "diamond", "element": "Si"}},
        "scenarios": [{"name": "melt-quench",
                       "params": {"melt_steps": 4, "quench_steps": 4,
                                  "sample_interval": 2}}],
    }
    traj_dir = tmp_path / "trajs"
    run = run_campaign(CampaignSpec.from_dict(matrix), traj_dir=traj_dir)
    assert run.counts["failed"] == 0
    row = run.cells[0]
    ref = row["value"]["traj_ref"]
    assert ref.endswith(".ptrj")
    with TrajectoryReader(traj_dir / ref) as r:
        assert len(r) >= 2

    artifact = write_jsonl(tmp_path / "run.jsonl", run)
    _, cells = sstore.read_artifact(artifact)
    path = sstore.resolve_traj_ref(artifact, cells[0], traj_dir=traj_dir)
    assert path is not None and os.path.exists(path)
    # row without a trajectory resolves to None
    assert sstore.resolve_traj_ref(artifact, {"value": {}}) is None
    # dangling ref is an error, not a silent None
    os.remove(path)
    from repro.errors import CampaignError

    with pytest.raises(CampaignError, match="does not exist"):
        sstore.resolve_traj_ref(artifact, cells[0], traj_dir=traj_dir)

"""k-point grids, paths, and band-structure computation."""

import numpy as np
import pytest

from repro.errors import ElectronicError
from repro.geometry import bulk_silicon, graphene_sheet
from repro.tb import GSPSilicon, XuCarbon
from repro.tb.bands import band_gap_along_path, band_structure
from repro.tb.kpoints import (
    FCC_POINTS, frac_to_cartesian, gamma_point, kpath, monkhorst_pack,
    reciprocal_lattice,
)


def test_gamma_point():
    k, w = gamma_point()
    np.testing.assert_array_equal(k, [[0, 0, 0]])
    np.testing.assert_array_equal(w, [1.0])


def test_monkhorst_pack_counts_and_weights():
    k, w = monkhorst_pack((2, 3, 1), reduce_time_reversal=False)
    assert len(k) == 6
    assert w.sum() == pytest.approx(1.0)
    np.testing.assert_allclose(w, 1 / 6)


def test_monkhorst_pack_time_reversal_fold_counts():
    # no self-paired point on the (2,3,1) grid: 6 points → 3 pairs
    k, w = monkhorst_pack((2, 3, 1))
    assert len(k) == 3
    np.testing.assert_allclose(w, 1 / 3)
    assert w.sum() == pytest.approx(1.0)
    # odd grid keeps Γ (self-paired, un-doubled weight)
    k3, w3 = monkhorst_pack(3)
    assert len(k3) == 14                       # Γ + 13 folded pairs of 27
    gamma = np.all(np.abs(k3) < 1e-12, axis=1)
    assert gamma.sum() == 1
    assert w3[gamma][0] == pytest.approx(1 / 27)
    assert w3.sum() == pytest.approx(1.0)


def test_monkhorst_pack_fold_covers_full_grid():
    """Every full-grid point maps onto a kept point or its negation, and
    the kept weights equal the summed pair weights."""
    full_k, full_w = monkhorst_pack((4, 2, 3), reduce_time_reversal=False)
    red_k, red_w = monkhorst_pack((4, 2, 3))
    assert len(red_k) == 12                    # 24 points, no self-paired
    kept = {tuple(np.round(k, 9)) for k in red_k}
    for k in full_k:
        assert tuple(np.round(k, 9)) in kept \
            or tuple(np.round(-k, 9) + 0.0) in kept
    assert red_w.sum() == pytest.approx(full_w.sum())


def test_monkhorst_pack_even_grid_excludes_gamma():
    k, _ = monkhorst_pack(2)
    assert not np.any(np.all(np.abs(k) < 1e-12, axis=1))


def test_monkhorst_pack_odd_grid_includes_gamma():
    k, _ = monkhorst_pack(3)
    assert np.any(np.all(np.abs(k) < 1e-12, axis=1))


def test_monkhorst_pack_symmetric_about_zero():
    k, _ = monkhorst_pack((4, 4, 4), reduce_time_reversal=False)
    np.testing.assert_allclose(k.sum(axis=0), 0.0, atol=1e-12)


def test_monkhorst_pack_invalid():
    with pytest.raises(ElectronicError):
        monkhorst_pack(0)


def test_time_reversal_fold_band_energy_exact(si8_rattled):
    """The satellite exactness contract: weighted band energy (and σ of
    the whole weighted spectrum) on the reduced grid equals the full
    grid to 1e-12 — ε(−k) = ε(k) for a real-space-real Hamiltonian."""
    from repro.tb import GSPSilicon, TBCalculator

    calc_red = TBCalculator(GSPSilicon(), kpts=3, kT=0.05)
    full = TBCalculator(GSPSilicon(), kpts=3, kT=0.05, kgrid_reduce="full")
    res_r = calc_red.compute(si8_rattled, forces=True)
    res_f = full.compute(si8_rattled, forces=True)
    assert res_r["band_energy"] == pytest.approx(res_f["band_energy"],
                                                 abs=1e-12)
    assert res_r["fermi_level"] == pytest.approx(res_f["fermi_level"],
                                                 abs=1e-12)
    assert res_r["entropy"] == pytest.approx(res_f["entropy"], abs=1e-12)
    np.testing.assert_allclose(res_r["forces"], res_f["forces"], atol=1e-12)


def test_reciprocal_lattice_orthogonality(si8):
    b = reciprocal_lattice(si8.cell)
    prod = si8.cell.matrix @ b.T
    np.testing.assert_allclose(prod, 2 * np.pi * np.eye(3), atol=1e-12)


def test_frac_to_cartesian_zone_boundary(si8):
    kc = frac_to_cartesian(np.array([[0.5, 0, 0]]), si8.cell)
    assert np.linalg.norm(kc) == pytest.approx(np.pi / 5.431)


def test_kpath_structure():
    kpts, dist, ticks = kpath(FCC_POINTS, ["L", "G", "X"], n_per_segment=10)
    assert len(kpts) == 21
    assert ticks == [0, 10, 20]
    assert dist[0] == 0.0
    assert np.all(np.diff(dist) >= 0)
    np.testing.assert_allclose(kpts[10], FCC_POINTS["G"])


def test_kpath_needs_two_labels():
    with pytest.raises(ElectronicError):
        kpath(FCC_POINTS, ["G"])


def test_silicon_band_structure_gapped_everywhere():
    at = bulk_silicon()
    kpts, _, _ = kpath(FCC_POINTS, ["L", "G", "X"], n_per_segment=6)
    bands = band_structure(at, GSPSilicon(), kpts)
    assert bands.shape == (13, 32)
    info = band_gap_along_path(bands, 32.0)
    assert info["indirect_gap"] > 0.3         # GSP Si is a semiconductor
    assert info["direct_gap"] >= info["indirect_gap"] - 1e-9
    assert info["vbm"] < info["cbm"]


def test_silicon_valence_band_width_reasonable():
    """GSP silicon occupied bandwidth ≈ 12–13 eV (DFT: 12.5)."""
    at = bulk_silicon()
    kpts, _, _ = kpath(FCC_POINTS, ["L", "G", "X", "G"], n_per_segment=8)
    bands = band_structure(at, GSPSilicon(), kpts)
    n_occ = 16
    width = bands[:, :n_occ].max() - bands[:, :n_occ].min()
    assert 8.0 < width < 16.0


def test_graphene_dirac_point():
    """XWCH graphene: valence and conduction bands touch at K."""
    g = graphene_sheet(1, 1)
    # In the 4-atom rectangular cell (armchair along x) the hexagonal K
    # point folds to (0, 1/3) of the rectangular BZ.
    kpts = np.array([[0.0, 0.0, 0.0], [0.0, 1.0 / 3.0, 0.0]])
    bands = band_structure(g, XuCarbon(), kpts)
    n_occ = 8
    gap_gamma = bands[0, n_occ] - bands[0, n_occ - 1]
    gap_k = bands[1, n_occ] - bands[1, n_occ - 1]
    assert gap_k < 0.05          # Dirac touching (numerically tiny)
    assert gap_gamma > 1.0       # but gapped at Γ

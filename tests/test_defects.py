"""Defect energetics: silicon vacancy and the Stone–Wales transformation.

The era's transferability tests — a parametrisation fit to bulk crystals
earns trust by getting defect energies on the right scale.
"""

import numpy as np
import pytest

from repro.analysis import ring_statistics
from repro.errors import GeometryError
from repro.geometry import bulk_silicon, graphene_sheet, supercell
from repro.geometry.defects import (
    make_vacancy, stone_wales, vacancy_formation_energy,
)
from repro.relax import conjugate_gradient, fire_relax
from repro.tb import GSPSilicon, TBCalculator, XuCarbon


def test_make_vacancy_removes_one_atom():
    at = supercell(bulk_silicon(), 2)
    vac = make_vacancy(at, index=10)
    assert len(vac) == 63
    with pytest.raises(GeometryError):
        make_vacancy(at, index=64)


def test_formation_energy_formula():
    # perfect bookkeeping: removing an atom at zero relaxation cost from a
    # non-interacting "solid" has E_f = 0
    assert vacancy_formation_energy(-63.0, -64.0, 64) == pytest.approx(0.0)
    with pytest.raises(GeometryError):
        vacancy_formation_energy(0.0, 0.0, 1)


def test_si_vacancy_formation_energy_scale():
    """GSP Si unrelaxed/relaxed vacancy formation: positive, eV scale
    (DFT: ~3.6 eV; TB models land 2–5 eV)."""
    perfect = supercell(bulk_silicon(), 2)
    calc = TBCalculator(GSPSilicon())
    e_perfect = calc.get_potential_energy(perfect)

    vac = make_vacancy(perfect, index=17)
    calc_v = TBCalculator(GSPSilicon())
    e_unrelaxed = calc_v.get_potential_energy(vac)
    ef_unrelaxed = vacancy_formation_energy(e_unrelaxed, e_perfect, 64)

    res = conjugate_gradient(vac, calc_v, fmax=0.05, max_steps=300)
    ef_relaxed = vacancy_formation_energy(res.energy, e_perfect, 64)

    assert 1.0 < ef_relaxed < 6.0
    assert ef_relaxed <= ef_unrelaxed + 1e-9   # relaxation can only help
    assert ef_unrelaxed - ef_relaxed < 3.0     # relaxation energy sane


def test_stone_wales_creates_5757_pattern():
    """Rotating one graphene bond converts 6 hexagons into 2×5 + 2×7."""
    g = graphene_sheet(4, 4)          # 64 atoms, 32 hexagons
    rings_before = ring_statistics(g, 1.6)
    assert rings_before == {6: 32}
    # pick a central bond
    from repro.neighbors import neighbor_list

    nl = neighbor_list(g, 1.6)
    center = g.positions.mean(axis=0)
    mid = g.positions[nl.i] + 0.5 * nl.vectors     # minimum-image midpoint
    bond = int(np.argmin(np.linalg.norm(mid - center, axis=1)))
    sw = stone_wales(g, int(nl.i[bond]), int(nl.j[bond]))
    rings_after = ring_statistics(sw, 1.6)
    assert rings_after.get(5, 0) == 2
    assert rings_after.get(7, 0) == 2
    assert rings_after.get(6, 0) == rings_before[6] - 4


def test_stone_wales_formation_energy_scale():
    """Relaxed SW-defect energy in XWCH graphene: positive, several eV
    (literature: ~5 eV).  4×4 cell: wide enough for a face-pure census."""
    g = graphene_sheet(4, 4)
    calc = TBCalculator(XuCarbon())
    e0 = calc.get_potential_energy(g)

    from repro.neighbors import neighbor_list

    nl = neighbor_list(g, 1.6)
    center = g.positions.mean(axis=0)
    mid = g.positions[nl.i] + 0.5 * nl.vectors
    bond = int(np.argmin(np.linalg.norm(mid - center, axis=1)))
    sw = stone_wales(g, int(nl.i[bond]), int(nl.j[bond]))
    calc_d = TBCalculator(XuCarbon())
    res = fire_relax(sw, calc_d, fmax=0.08, max_steps=600)
    e_sw = res.energy
    assert res.converged
    e_form = e_sw - e0
    assert 2.0 < e_form < 10.0
    # topology preserved through relaxation
    rings = ring_statistics(sw, 1.7)
    assert rings.get(5, 0) == 2 and rings.get(7, 0) == 2


def test_stone_wales_validation():
    g = graphene_sheet(2, 2)
    with pytest.raises(GeometryError):
        stone_wales(g, 0, 0)
    # non-bonded pair (minimum-image distance, not raw coordinates)
    dists = [g.distance(0, k) for k in range(1, len(g))]
    far = 1 + int(np.argmax(dists))
    with pytest.raises(GeometryError, match="not a bond"):
        stone_wales(g, 0, far)

"""Cell: coordinate transforms, wrapping, minimum image, image enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import Cell


def test_cubic_constructor():
    c = Cell.cubic(5.0)
    assert c.volume == pytest.approx(125.0)
    np.testing.assert_allclose(c.lengths, [5, 5, 5])
    assert c.fully_periodic


def test_orthorhombic_angles():
    c = Cell.orthorhombic(3, 4, 5)
    np.testing.assert_allclose(c.angles, [90, 90, 90])


def test_nonperiodic_cell():
    c = Cell.nonperiodic()
    assert not c.periodic
    np.testing.assert_array_equal(c.translations_within(5.0), [[0, 0, 0]])


def test_singular_periodic_cell_rejected():
    with pytest.raises(GeometryError, match="singular"):
        Cell(np.zeros((3, 3)), pbc=True)


def test_pbc_flags_sequence():
    c = Cell(np.eye(3) * 4, pbc=(True, False, True))
    assert list(c.pbc) == [True, False, True]


def test_bad_pbc_length():
    with pytest.raises(GeometryError):
        Cell(np.eye(3), pbc=(True, False))


def test_fractional_cartesian_roundtrip():
    h = np.array([[4.0, 0.1, 0.0], [0.0, 5.0, 0.2], [0.3, 0.0, 6.0]])
    c = Cell(h)
    pts = np.array([[1.0, 2.0, 3.0], [-0.5, 7.2, 0.1]])
    np.testing.assert_allclose(c.cartesian(c.fractional(pts)), pts, atol=1e-12)


def test_wrap_into_home_cell():
    c = Cell.cubic(3.0)
    wrapped = c.wrap(np.array([[3.5, -0.5, 1.0]]))
    np.testing.assert_allclose(wrapped, [[0.5, 2.5, 1.0]])


def test_wrap_respects_nonperiodic_axis():
    c = Cell(np.eye(3) * 3.0, pbc=(True, True, False))
    wrapped = c.wrap(np.array([[3.5, 1.0, -4.0]]))
    np.testing.assert_allclose(wrapped, [[0.5, 1.0, -4.0]])


def test_minimum_image_cubic():
    c = Cell.cubic(10.0)
    d = c.minimum_image(np.array([9.0, 0.0, 0.0]))
    np.testing.assert_allclose(d, [-1.0, 0.0, 0.0])


def test_minimum_image_preserves_shape():
    c = Cell.cubic(10.0)
    one = c.minimum_image(np.array([1.0, 2.0, 3.0]))
    assert one.shape == (3,)
    many = c.minimum_image(np.ones((4, 3)))
    assert many.shape == (4, 3)


def test_perpendicular_widths_cubic():
    np.testing.assert_allclose(Cell.cubic(4.0).perpendicular_widths(), [4, 4, 4])


def test_perpendicular_widths_sheared():
    # shearing doesn't change perpendicular width along the sheared axis pair
    h = np.array([[4.0, 0, 0], [2.0, 4.0, 0], [0, 0, 4.0]])
    w = Cell(h).perpendicular_widths()
    assert w[2] == pytest.approx(4.0)
    assert w[0] < 4.0 + 1e-9


def test_translations_zero_first():
    c = Cell.cubic(3.0)
    t = c.translations_within(4.0)
    np.testing.assert_array_equal(t[0], [0.0, 0.0, 0.0])
    assert len(t) > 27 / 2  # several shells needed for rcut > a


def test_translations_cover_cutoff():
    # every lattice vector within rcut must be present
    c = Cell.cubic(2.0)
    rcut = 5.0
    t = c.translations_within(rcut)
    norms = np.linalg.norm(t, axis=1)
    # count lattice points within rcut independently
    n = 0
    for i in range(-3, 4):
        for j in range(-3, 4):
            for k in range(-3, 4):
                if np.linalg.norm(np.array([i, j, k]) * 2.0) <= rcut:
                    n += 1
    assert np.sum(norms <= rcut + 1e-9) == n


def test_translations_respect_partial_pbc():
    c = Cell(np.eye(3) * 3.0, pbc=(True, False, False))
    t = c.translations_within(4.0)
    assert np.all(t[:, 1] == 0.0)
    assert np.all(t[:, 2] == 0.0)
    assert len(t) >= 3


def test_translations_bad_rcut():
    with pytest.raises(GeometryError):
        Cell.cubic(3.0).translations_within(0.0)


def test_cell_equality_and_hash():
    a = Cell.cubic(3.0)
    b = Cell.cubic(3.0)
    c = Cell.cubic(3.1)
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_cell_matrix_readonly():
    c = Cell.cubic(3.0)
    with pytest.raises(ValueError):
        c.matrix[0, 0] = 9.0


@settings(max_examples=25, deadline=None)
@given(
    a=st.floats(2.0, 10.0), b=st.floats(2.0, 10.0), cl=st.floats(2.0, 10.0),
    x=st.floats(-20.0, 20.0), y=st.floats(-20.0, 20.0), z=st.floats(-20.0, 20.0),
)
def test_property_wrap_idempotent_and_in_cell(a, b, cl, x, y, z):
    c = Cell.orthorhombic(a, b, cl)
    p = np.array([[x, y, z]])
    w1 = c.wrap(p)
    w2 = c.wrap(w1)
    np.testing.assert_allclose(w1, w2, atol=1e-9)
    frac = c.fractional(w1)
    assert np.all(frac >= -1e-9) and np.all(frac < 1.0 + 1e-9)


@settings(max_examples=25, deadline=None)
@given(
    a=st.floats(3.0, 8.0),
    x=st.floats(-15.0, 15.0), y=st.floats(-15.0, 15.0), z=st.floats(-15.0, 15.0),
)
def test_property_minimum_image_is_shortest(a, x, y, z):
    c = Cell.cubic(a)
    d = np.array([x, y, z])
    mic = c.minimum_image(d)
    # mic must be shorter than or equal to any single-shell alternative
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            for k in (-1, 0, 1):
                alt = mic + np.array([i, j, k]) * a
                assert np.linalg.norm(mic) <= np.linalg.norm(alt) + 1e-9

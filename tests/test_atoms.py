"""Atoms container: construction, energetics, geometry operations."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Atoms, Cell
from repro.units import MASS_VEL2_TO_EV


def make_dimer(d=2.35):
    return Atoms(["Si", "Si"], [[0, 0, 0], [d, 0, 0]],
                 cell=Cell.cubic(20.0, pbc=False))


def test_single_symbol_broadcast():
    at = Atoms("Si", np.zeros((3, 3)))
    assert at.symbols == ["Si", "Si", "Si"]


def test_symbol_count_mismatch():
    with pytest.raises(GeometryError, match="symbols"):
        Atoms(["Si"], np.zeros((2, 3)))


def test_unknown_symbol_rejected():
    with pytest.raises(GeometryError, match="unknown"):
        Atoms(["Qq"], np.zeros((1, 3)))


def test_default_masses_from_table():
    at = Atoms(["Si", "C"], np.zeros((2, 3)))
    assert at.masses[0] == pytest.approx(28.0855)
    assert at.masses[1] == pytest.approx(12.011)


def test_negative_mass_rejected():
    with pytest.raises(GeometryError):
        Atoms(["Si"], np.zeros((1, 3)), masses=[-1.0])


def test_numbers_property():
    at = Atoms(["Si", "C", "H"], np.zeros((3, 3)))
    np.testing.assert_array_equal(at.numbers, [14, 6, 1])


def test_set_symbol_substitution_updates_mass():
    at = Atoms(["C", "C"], np.zeros((2, 3)))
    at.set_symbol(1, "B")
    assert at.symbols == ["C", "B"]
    assert at.masses[1] == pytest.approx(10.811)


def test_kinetic_energy_and_temperature():
    at = make_dimer()
    at.velocities[:] = [[0.01, 0, 0], [-0.01, 0, 0]]
    ke = at.kinetic_energy()
    expected = 2 * 0.5 * MASS_VEL2_TO_EV * 28.0855 * 1e-4
    assert ke == pytest.approx(expected)
    assert at.temperature() > 0


def test_temperature_excludes_fixed_atoms():
    at = Atoms(["Si"] * 4, np.arange(12).reshape(4, 3) * 3.0,
               cell=Cell.cubic(30, pbc=False),
               fixed=[True, True, False, False])
    at.velocities[:2] = 1.0   # fixed atoms moving shouldn't count
    assert at.temperature() == 0.0
    assert at.n_free == 2


def test_zero_momentum():
    at = make_dimer()
    at.velocities[:] = [[0.02, 0, 0], [0.01, 0, 0]]
    at.zero_momentum()
    np.testing.assert_allclose(at.momentum(), 0.0, atol=1e-14)


def test_zero_momentum_respects_fixed():
    at = Atoms(["Si", "Si"], [[0, 0, 0], [3, 0, 0]],
               cell=Cell.cubic(20, pbc=False), fixed=[True, False])
    at.velocities[1] = [0.05, 0, 0]
    at.zero_momentum()
    # only the free atom is adjusted; its momentum alone goes to zero
    np.testing.assert_allclose(at.velocities[1], 0.0, atol=1e-14)
    np.testing.assert_allclose(at.velocities[0], 0.0)


def test_distance_minimum_image():
    at = Atoms(["Si", "Si"], [[0.2, 0, 0], [9.8, 0, 0]], cell=Cell.cubic(10.0))
    assert at.distance(0, 1) == pytest.approx(0.4)
    assert at.distance(0, 1, mic=False) == pytest.approx(9.6)


def test_copy_is_deep():
    at = make_dimer()
    cp = at.copy()
    cp.positions[0, 0] = 99.0
    cp.set_symbol(0, "C")
    assert at.positions[0, 0] == 0.0
    assert at.symbols[0] == "Si"


def test_translate():
    at = make_dimer()
    at.translate([1, 2, 3])
    np.testing.assert_allclose(at.positions[0], [1, 2, 3])


def test_rotate_preserves_distances():
    at = make_dimer()
    d0 = at.distance(0, 1, mic=False)
    at.rotate([0, 0, 1], 0.7)
    assert at.distance(0, 1, mic=False) == pytest.approx(d0)


def test_rotate_periodic_refused():
    at = Atoms(["Si"], np.zeros((1, 3)), cell=Cell.cubic(5.0))
    with pytest.raises(GeometryError):
        at.rotate([0, 0, 1], 0.1)


def test_extend_concatenates():
    a = make_dimer()
    b = Atoms(["H"], [[5, 5, 5]], cell=a.cell, fixed=[True])
    ab = a.extend(b)
    assert len(ab) == 3
    assert ab.symbols == ["Si", "Si", "H"]
    assert bool(ab.fixed[2]) is True


def test_select_by_mask_and_indices():
    at = Atoms(["Si", "C", "H"], np.arange(9).reshape(3, 3),
               cell=Cell.cubic(20, pbc=False))
    sub = at.select([False, True, True])
    assert sub.symbols == ["C", "H"]
    sub2 = at.select([0, 2])
    assert sub2.symbols == ["Si", "H"]


def test_wrap_mutates_positions():
    at = Atoms(["Si"], [[11.0, 0.5, 0.5]], cell=Cell.cubic(10.0))
    at.wrap()
    np.testing.assert_allclose(at.positions[0], [1.0, 0.5, 0.5])


def test_repr_contains_formula():
    at = Atoms(["Si", "Si", "C"], np.zeros((3, 3)))
    assert "Si2" in repr(at) and "C" in repr(at)


def test_center_of_mass():
    at = Atoms(["Si", "Si"], [[0, 0, 0], [2, 0, 0]],
               cell=Cell.cubic(10, pbc=False))
    np.testing.assert_allclose(at.center_of_mass(), [1, 0, 0])

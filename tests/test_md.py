"""MD: velocity initialisation, NVE conservation/reversibility, driver."""

import numpy as np
import pytest

from repro.errors import MDError
from repro.geometry import bulk_silicon, rattle
from repro.md import (
    MDDriver, ThermoLog, TrajectoryRecorder, VelocityVerlet,
    maxwell_boltzmann_velocities,
)
from repro.md.observers import ProgressPrinter, XYZWriter
from repro.tb import GSPSilicon, TBCalculator


def prepared(t=300.0, seed=1, amp=0.0):
    at = bulk_silicon() if amp == 0 else rattle(bulk_silicon(), amp, seed=seed)
    maxwell_boltzmann_velocities(at, t, seed=seed)
    return at


# ---------------------------------------------------------------- velocities
def test_maxwell_exact_temperature():
    at = prepared(750.0)
    assert at.temperature() == pytest.approx(750.0, rel=1e-10)


def test_maxwell_zero_momentum():
    at = prepared(500.0)
    np.testing.assert_allclose(at.momentum(), 0.0, atol=1e-12)


def test_maxwell_zero_temperature():
    at = bulk_silicon()
    maxwell_boltzmann_velocities(at, 0.0, seed=1)
    np.testing.assert_array_equal(at.velocities, 0.0)


def test_maxwell_deterministic_seed():
    a = prepared(300.0, seed=9)
    b = prepared(300.0, seed=9)
    np.testing.assert_array_equal(a.velocities, b.velocities)


def test_maxwell_fixed_atoms_stay_still():
    at = bulk_silicon()
    at.fixed[:4] = True
    maxwell_boltzmann_velocities(at, 400.0, seed=2)
    np.testing.assert_array_equal(at.velocities[:4], 0.0)
    assert at.temperature() == pytest.approx(400.0, rel=1e-10)


def test_maxwell_negative_t_rejected():
    with pytest.raises(MDError):
        maxwell_boltzmann_velocities(bulk_silicon(), -1.0)


def test_maxwell_all_fixed_rejected():
    at = bulk_silicon()
    at.fixed[:] = True
    with pytest.raises(MDError):
        maxwell_boltzmann_velocities(at, 100.0)


# ---------------------------------------------------------------- NVE
def test_nve_energy_conservation_tight():
    """dt = 1 fs must hold the era's 1-in-10⁴ conservation standard."""
    at = prepared(300.0, seed=4)
    log = ThermoLog()
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0),
                  observers=[log])
    md.run(80)
    assert log.conserved_drift() < 1e-4


def test_nve_smaller_dt_conserves_better():
    drifts = {}
    for dt in (2.0, 0.5):
        at = prepared(400.0, seed=6)
        log = ThermoLog()
        md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=dt),
                      observers=[log])
        md.run(int(40 / dt))
        drifts[dt] = log.conserved_drift()
    assert drifts[0.5] < drifts[2.0]


def test_nve_time_reversibility():
    """Integrate forward, flip velocities, integrate back: positions must
    return to the start (to roundoff growth)."""
    at = prepared(300.0, seed=7)
    start = at.positions.copy()
    calc = TBCalculator(GSPSilicon())
    md = MDDriver(at, calc, VelocityVerlet(dt=1.0))
    md.run(25)
    at.velocities *= -1.0
    md2 = MDDriver(at, calc, VelocityVerlet(dt=1.0))
    md2.run(25)
    np.testing.assert_allclose(at.positions, start, atol=1e-7)


def test_nve_momentum_conserved():
    at = prepared(600.0, seed=8)
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0))
    md.run(30)
    np.testing.assert_allclose(at.momentum(), 0.0, atol=1e-10)


def test_fixed_atoms_do_not_move():
    at = prepared(800.0, seed=9)
    at.fixed[2] = True
    at.velocities[2] = 0.0
    p0 = at.positions[2].copy()
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0))
    md.run(20)
    np.testing.assert_array_equal(at.positions[2], p0)


# ---------------------------------------------------------------- driver
def test_driver_records_expected_fields():
    at = prepared(300.0, seed=10)
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0))
    data = md.run(3)
    for key in ("step", "time_fs", "epot", "ekin", "etot", "temperature",
                "conserved", "results"):
        assert key in data
    assert data["step"] == 3
    assert data["time_fs"] == pytest.approx(3.0)


def test_driver_observer_interval():
    at = prepared(300.0, seed=11)
    calls = []
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0),
                  observers=[(lambda s, a, d: calls.append(s), 2)])
    md.run(6)
    assert calls == [0, 2, 4, 6]


def test_driver_blowup_detection():
    at = bulk_silicon()
    # pathological overlap → huge forces
    at.positions[1] = at.positions[0] + [0.2, 0, 0]
    maxwell_boltzmann_velocities(at, 300.0, seed=1)
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=5.0),
                  blowup_temperature=1e5)
    with pytest.raises(MDError, match="blew up"):
        md.run(200)


def test_driver_zero_steps():
    at = prepared(300.0, seed=12)
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0))
    data = md.run(0)
    assert data["step"] == 0


def test_driver_invalid_inputs():
    at = prepared(300.0, seed=13)
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0))
    with pytest.raises(MDError):
        md.run(-1)
    with pytest.raises(MDError):
        md.add_observer(lambda *a: None, interval=0)
    with pytest.raises(MDError):
        VelocityVerlet(dt=0.0)


def test_trajectory_recorder_and_thermolog_consistent():
    at = prepared(300.0, seed=14)
    log = ThermoLog()
    rec = TrajectoryRecorder()
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0),
                  observers=[log, rec])
    md.run(5)
    assert len(rec.trajectory) == 6          # step 0 + 5
    np.testing.assert_allclose(rec.trajectory.temperatures(),
                               log.temperature, atol=1e-12)


def test_xyz_writer_observer(tmp_path):
    at = prepared(300.0, seed=15)
    path = tmp_path / "run.xyz"
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0),
                  observers=[XYZWriter(str(path))])
    md.run(3)
    from repro.geometry.xyz import iread_xyz
    assert len(list(iread_xyz(str(path)))) == 4


def test_progress_printer_output():
    import io

    at = prepared(300.0, seed=16)
    buf = io.StringIO()
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0),
                  observers=[ProgressPrinter(stream=buf)])
    md.run(2)
    out = buf.getvalue()
    assert "step" in out and "Epot" in out
    assert len(out.splitlines()) == 4        # header + 3 records

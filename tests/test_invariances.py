"""Physical invariance property tests: the energy must not know where the
lab frame is.  These catch subtle Slater–Koster sign/rotation bugs that
pointwise tests miss."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Atoms, bulk_silicon, random_cluster, rattle
from repro.tb import GSPSilicon, TBCalculator, XuCarbon


def si_cluster(seed=0, n=6):
    """Small random Si cluster with safe separations."""
    return random_cluster(n, symbol="Si", min_dist=2.2, seed=seed)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6),
       shift=st.tuples(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)))
def test_property_translation_invariance_cluster(seed, shift):
    at = si_cluster(seed)
    e0 = TBCalculator(GSPSilicon()).get_potential_energy(at)
    moved = at.copy()
    moved.translate(shift)
    e1 = TBCalculator(GSPSilicon()).get_potential_energy(moved)
    assert e1 == pytest.approx(e0, abs=1e-9)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6),
       angle=st.floats(0.05, 3.0),
       axis_seed=st.integers(0, 100))
def test_property_rotation_invariance_cluster(seed, angle, axis_seed):
    """Rigid rotation must leave energy unchanged AND co-rotate forces."""
    at = si_cluster(seed)
    calc = TBCalculator(GSPSilicon())
    e0 = calc.get_potential_energy(at)
    f0 = calc.get_forces(at)

    rng = np.random.default_rng(axis_seed)
    axis = rng.normal(size=3)
    axis /= np.linalg.norm(axis)
    rot = at.copy()
    rot.rotate(axis, angle, center=[0, 0, 0])
    # rotation matrix (for comparing forces)
    c, s = np.cos(angle), np.sin(angle)
    ux, uy, uz = axis
    R = np.array([
        [c + ux*ux*(1-c), ux*uy*(1-c) - uz*s, ux*uz*(1-c) + uy*s],
        [uy*ux*(1-c) + uz*s, c + uy*uy*(1-c), uy*uz*(1-c) - ux*s],
        [uz*ux*(1-c) - uy*s, uz*uy*(1-c) + ux*s, c + uz*uz*(1-c)],
    ])
    calc2 = TBCalculator(GSPSilicon())
    e1 = calc2.get_potential_energy(rot)
    f1 = calc2.get_forces(rot)
    assert e1 == pytest.approx(e0, abs=1e-8)
    np.testing.assert_allclose(f1, f0 @ R.T, atol=1e-7)


@settings(max_examples=10, deadline=None)
@given(perm_seed=st.integers(0, 10**6))
def test_property_permutation_invariance(perm_seed):
    """Relabeling atoms permutes forces but not the energy."""
    at = rattle(bulk_silicon(), 0.06, seed=3)
    calc = TBCalculator(GSPSilicon())
    e0 = calc.get_potential_energy(at)
    f0 = calc.get_forces(at)
    rng = np.random.default_rng(perm_seed)
    perm = rng.permutation(len(at))
    at2 = Atoms([at.symbols[p] for p in perm], at.positions[perm],
                cell=at.cell)
    calc2 = TBCalculator(GSPSilicon())
    assert calc2.get_potential_energy(at2) == pytest.approx(e0, abs=1e-9)
    np.testing.assert_allclose(calc2.get_forces(at2), f0[perm], atol=1e-8)


def test_lattice_translation_invariance_periodic():
    """Shifting a periodic crystal by any vector leaves E and F unchanged."""
    at = rattle(bulk_silicon(), 0.05, seed=7)
    calc = TBCalculator(GSPSilicon())
    e0, f0 = calc.get_potential_energy(at), calc.get_forces(at)
    moved = at.copy()
    moved.translate([1.234, -0.777, 3.21])
    calc2 = TBCalculator(GSPSilicon())
    assert calc2.get_potential_energy(moved) == pytest.approx(e0, abs=1e-9)
    np.testing.assert_allclose(calc2.get_forces(moved), f0, atol=1e-9)


def test_supercell_energy_extensive():
    """E(2×1×1 supercell, MP 2×2×2) = 2·E(cell, MP 4×2×2) exactly: the
    doubled axis of an even MP grid unfolds onto the twice-finer primitive
    grid ({±1/4} supercell ↔ {±1/8, ±3/8} primitive)."""
    base = bulk_silicon()
    from repro.geometry import supercell

    e1 = TBCalculator(GSPSilicon(), kpts=(4, 2, 2), kT=0.05
                      ).get_potential_energy(base)
    sc = supercell(base, (2, 1, 1))
    e2 = TBCalculator(GSPSilicon(), kpts=(2, 2, 2), kT=0.05
                      ).get_potential_energy(sc)
    assert e2 == pytest.approx(2 * e1, abs=1e-6)


def test_mirror_symmetry_energy():
    """Mirroring a cluster through a plane preserves the energy."""
    at = si_cluster(31, n=7)
    mirrored = at.copy()
    mirrored.positions[:, 0] *= -1.0
    e0 = TBCalculator(GSPSilicon()).get_potential_energy(at)
    e1 = TBCalculator(GSPSilicon()).get_potential_energy(mirrored)
    assert e1 == pytest.approx(e0, abs=1e-9)


def test_carbon_ring_symmetry_equal_forces():
    """All atoms of a perfect C6 ring feel radially equivalent forces."""
    from repro.geometry import carbon_ring

    ring = carbon_ring(6, bond=1.40)
    f = TBCalculator(XuCarbon()).get_forces(ring)
    mags = np.linalg.norm(f, axis=1)
    np.testing.assert_allclose(mags, mags[0], atol=1e-8)
    # forces radial: cross product with radial direction vanishes
    center = ring.positions.mean(axis=0)
    radial = ring.positions - center
    cross = np.cross(radial, f)
    np.testing.assert_allclose(cross, 0.0, atol=1e-8)

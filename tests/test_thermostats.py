"""Thermostats: temperature control, conserved quantities, ramps."""

import numpy as np
import pytest

from repro.errors import MDError
from repro.geometry import bulk_silicon, supercell
from repro.md import (
    BerendsenThermostat, LangevinDynamics, MDDriver, NoseHoover,
    NoseHooverChain, TemperatureRamp, ThermoLog, VelocityRescale,
    maxwell_boltzmann_velocities,
)
from repro.md.ramps import anneal_protocol
from repro.tb import GSPSilicon, TBCalculator


def prepared(t=300.0, seed=1):
    at = bulk_silicon()
    maxwell_boltzmann_velocities(at, t, seed=seed)
    return at


def run_thermostat(integrator, steps=120, seed=2, t0=300.0):
    at = prepared(t0, seed=seed)
    log = ThermoLog()
    md = MDDriver(at, TBCalculator(GSPSilicon()), integrator, observers=[log])
    md.run(steps)
    return at, log


# ---------------------------------------------------------------- Nosé–Hoover
def test_nose_hoover_time_average_on_target():
    """A single NH thermostat on a small near-harmonic cell oscillates
    (the classic ergodicity caveat) but its *time average* must sit on
    the setpoint — the chain variant is tested for tight tracking."""
    at, log = run_thermostat(NoseHoover(dt=1.0, temperature=900.0, tau=30.0),
                             steps=500)
    t_avg = np.mean(log.temperature[100:])
    assert t_avg == pytest.approx(900.0, rel=0.25)


def test_nose_hoover_conserved_quantity():
    at, log = run_thermostat(NoseHoover(dt=1.0, temperature=700.0, tau=40.0),
                             steps=150)
    assert log.conserved_drift() < 2e-3


def test_nose_hoover_explicit_q_mass():
    nh = NoseHoover(dt=1.0, temperature=500.0, q_mass=123.0)
    assert nh.q_mass(bulk_silicon()) == 123.0


def test_nose_hoover_default_q_scales_with_dof():
    nh = NoseHoover(dt=1.0, temperature=500.0, tau=50.0)
    small = bulk_silicon()
    big = supercell(bulk_silicon(), (2, 1, 1))
    assert nh.q_mass(big) == pytest.approx(2 * nh.q_mass(small))


def test_nose_hoover_invalid_params():
    with pytest.raises(MDError):
        NoseHoover(dt=1.0, temperature=0.0)
    with pytest.raises(MDError):
        NoseHoover(dt=1.0, temperature=300.0, tau=-1.0)


def test_nose_hoover_chain_reaches_target():
    at, log = run_thermostat(
        NoseHooverChain(dt=1.0, temperature=900.0, tau=30.0, chain_length=3),
        steps=250)
    assert np.mean(log.temperature[-80:]) == pytest.approx(900.0, rel=0.25)


def test_nose_hoover_chain_conserved():
    at, log = run_thermostat(
        NoseHooverChain(dt=1.0, temperature=600.0, tau=40.0), steps=150)
    assert log.conserved_drift() < 2e-3


def test_nose_hoover_chain_length_one_close_to_single():
    a1, l1 = run_thermostat(NoseHoover(dt=1.0, temperature=500.0, tau=50.0),
                            steps=60, seed=5)
    a2, l2 = run_thermostat(
        NoseHooverChain(dt=1.0, temperature=500.0, tau=50.0, chain_length=1),
        steps=60, seed=5)
    # same physics to good accuracy over short runs
    np.testing.assert_allclose(l2.temperature, l1.temperature, rtol=0.1)


def test_chain_invalid():
    with pytest.raises(MDError):
        NoseHooverChain(dt=1.0, temperature=300.0, chain_length=0)


# ---------------------------------------------------------------- others
def test_berendsen_approaches_target_monotonically():
    at, log = run_thermostat(
        BerendsenThermostat(dt=1.0, temperature=900.0, tau=25.0), steps=200)
    t = np.asarray(log.temperature)
    assert np.mean(t[-50:]) == pytest.approx(900.0, rel=0.2)


def test_berendsen_tau_shorter_than_dt_rejected():
    with pytest.raises(MDError):
        BerendsenThermostat(dt=2.0, temperature=300.0, tau=1.0)


def test_langevin_samples_target_temperature():
    at, log = run_thermostat(
        LangevinDynamics(dt=1.0, temperature=800.0, friction=0.05, seed=3),
        steps=400)
    assert np.mean(log.temperature[-150:]) == pytest.approx(800.0, rel=0.25)


def test_langevin_deterministic_with_seed():
    a1, l1 = run_thermostat(
        LangevinDynamics(dt=1.0, temperature=500.0, friction=0.02, seed=7),
        steps=30, seed=4)
    a2, l2 = run_thermostat(
        LangevinDynamics(dt=1.0, temperature=500.0, friction=0.02, seed=7),
        steps=30, seed=4)
    np.testing.assert_array_equal(a1.positions, a2.positions)


def test_langevin_invalid():
    with pytest.raises(MDError):
        LangevinDynamics(dt=1.0, temperature=300.0, friction=0.0)


def test_velocity_rescale_pins_temperature():
    at, log = run_thermostat(
        VelocityRescale(dt=1.0, temperature=650.0, interval=1), steps=50)
    np.testing.assert_allclose(log.temperature[5:], 650.0, rtol=1e-6)


def test_velocity_rescale_interval():
    vr = VelocityRescale(dt=1.0, temperature=650.0, interval=5)
    at, log = run_thermostat(vr, steps=20)
    t = np.asarray(log.temperature)
    # at multiples of 5 the temperature is exactly on target
    np.testing.assert_allclose(t[5::5], 650.0, rtol=1e-6)


# ---------------------------------------------------------------- ramps
def test_temperature_ramp_rate():
    nh = NoseHoover(dt=1.0, temperature=1000.0, tau=40.0)
    ramp = TemperatureRamp(nh, t_final=1100.0, rate=0.5)
    assert ramp.steps_remaining() == 200
    at = prepared(1000.0, seed=8)
    md = MDDriver(at, TBCalculator(GSPSilicon()), nh, observers=[ramp])
    md.run(100)
    # after 100 steps at 0.5 K/fs: setpoint 1050
    assert nh.target_temperature == pytest.approx(1050.0, abs=1.0)
    md.run(150)
    assert nh.target_temperature == 1100.0
    assert ramp.done


def test_temperature_ramp_downward():
    nh = NoseHoover(dt=1.0, temperature=1000.0, tau=40.0)
    ramp = TemperatureRamp(nh, t_final=900.0, rate=1.0)
    at = prepared(1000.0, seed=9)
    md = MDDriver(at, TBCalculator(GSPSilicon()), nh, observers=[ramp])
    md.run(120)
    assert nh.target_temperature == 900.0


def test_ramp_invalid():
    nh = NoseHoover(dt=1.0, temperature=300.0)
    with pytest.raises(MDError):
        TemperatureRamp(nh, 500.0, rate=0.0)
    from repro.md import VelocityVerlet
    with pytest.raises(MDError):
        TemperatureRamp(VelocityVerlet(dt=1.0), 500.0)


def test_anneal_protocol_ladder():
    at = prepared(280.0, seed=10)
    nh = NoseHoover(dt=1.0, temperature=300.0, tau=25.0)
    md = MDDriver(at, TBCalculator(GSPSilicon()), nh)
    stages = []
    summaries = anneal_protocol(
        md, temperatures=[400.0, 500.0], hold_steps=15,
        equilibrate_steps=10, rate=5.0,
        stage_callback=lambda name, t, d: stages.append((name, t)))
    assert [s["setpoint"] for s in summaries] == [400.0, 500.0]
    assert ("sampled", 400.0) in stages and ("equilibrated", 500.0) in stages
    assert nh.target_temperature == 500.0
    # ramp observers must not accumulate
    assert all(not isinstance(o, TemperatureRamp) for o, _ in md.observers)

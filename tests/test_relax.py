"""Structural relaxation: SD, CG, FIRE on TB systems."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.geometry import Atoms, Cell, bulk_silicon, carbon_ring, rattle
from repro.relax import conjugate_gradient, fire_relax, max_force, steepest_descent
from repro.relax.base import RelaxationResult
from repro.tb import GSPSilicon, TBCalculator, XuCarbon


RELAXERS = [steepest_descent, conjugate_gradient, fire_relax]


@pytest.mark.parametrize("relaxer", RELAXERS)
def test_relaxer_restores_rattled_crystal(relaxer):
    # amplitude small enough that the diamond basin is the only minimum
    # in reach (large rattles legitimately land in defect minima)
    at = rattle(bulk_silicon(), 0.08, seed=21)
    calc = TBCalculator(GSPSilicon())
    e_perfect = TBCalculator(GSPSilicon()).get_potential_energy(bulk_silicon())
    res = relaxer(at, calc, fmax=0.02, max_steps=600)
    assert res.converged, res
    assert res.fmax < 0.02
    assert res.energy == pytest.approx(e_perfect, abs=0.02)


@pytest.mark.parametrize("relaxer", RELAXERS)
def test_relaxer_monotone_energy_history(relaxer):
    at = rattle(bulk_silicon(), 0.1, seed=22)
    res = relaxer(at, TBCalculator(GSPSilicon()), fmax=0.05, max_steps=300)
    e = np.asarray(res.energy_history)
    # SD and CG are strictly monotone; FIRE may overshoot transiently but
    # must end below the start
    if relaxer is not fire_relax:
        assert np.all(np.diff(e) <= 1e-10)
    assert e[-1] < e[0]


def test_cg_faster_than_sd():
    at1 = rattle(bulk_silicon(), 0.1, seed=23)
    at2 = at1.copy()
    r_sd = steepest_descent(at1, TBCalculator(GSPSilicon()), fmax=0.02,
                            max_steps=800)
    r_cg = conjugate_gradient(at2, TBCalculator(GSPSilicon()), fmax=0.02,
                              max_steps=800)
    assert r_cg.converged and r_sd.converged
    assert r_cg.iterations <= r_sd.iterations


def test_relax_respects_fixed_atoms():
    at = rattle(bulk_silicon(), 0.1, seed=24)
    at.fixed[0] = True
    pinned = at.positions[0].copy()
    res = conjugate_gradient(at, TBCalculator(GSPSilicon()), fmax=0.03,
                             max_steps=400)
    np.testing.assert_array_equal(at.positions[0], pinned)
    assert res.converged


def test_relax_carbon_ring_bond_length():
    """C6 ring relaxes to the cumulenic TB bond length (~1.3 Å)."""
    ring = carbon_ring(6, bond=1.50)
    res = fire_relax(ring, TBCalculator(XuCarbon()), fmax=0.02, max_steps=800)
    assert res.converged
    from repro.neighbors import neighbor_list

    nl = neighbor_list(ring, 1.8)
    assert nl.n_pairs == 6
    assert 1.2 < nl.distances.mean() < 1.5


def test_si_dimer_bond_length():
    """GSP Si2 dimer relaxes to ≈ 2.2–2.5 Å."""
    at = Atoms(["Si", "Si"], [[0, 0, 0], [2.6, 0, 0]],
               cell=Cell.cubic(20, pbc=False))
    res = conjugate_gradient(at, TBCalculator(GSPSilicon()), fmax=0.01,
                             max_steps=300)
    assert res.converged
    d = at.distance(0, 1, mic=False)
    assert 2.1 < d < 2.6


def test_max_force_helper():
    f = np.array([[1.0, 0, 0], [0, 2.0, 0]])
    assert max_force(f) == 2.0
    fixed = np.array([False, True])
    assert max_force(f, fixed) == 1.0
    assert max_force(np.zeros((0, 3))) == 0.0


def test_nonconvergence_reported_not_raised_by_default():
    at = rattle(bulk_silicon(), 0.1, seed=25)
    res = steepest_descent(at, TBCalculator(GSPSilicon()), fmax=1e-10,
                           max_steps=3)
    assert isinstance(res, RelaxationResult)
    assert not res.converged


def test_nonconvergence_raises_when_requested():
    at = rattle(bulk_silicon(), 0.1, seed=26)
    with pytest.raises(ConvergenceError):
        conjugate_gradient(at, TBCalculator(GSPSilicon()), fmax=1e-12,
                           max_steps=2, raise_on_failure=True)


def test_already_converged_returns_immediately():
    at = bulk_silicon()
    res = conjugate_gradient(at, TBCalculator(GSPSilicon()), fmax=0.05)
    assert res.converged
    assert res.iterations == 0


def test_result_repr():
    at = bulk_silicon()
    res = fire_relax(at, TBCalculator(GSPSilicon()), fmax=0.05)
    assert "converged" in repr(res)

"""Density-matrix purification vs exact diagonalisation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConvergenceError, ElectronicError
from repro.geometry import bulk_silicon, rattle, supercell
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon, NonOrthogonalSilicon, TBCalculator
from repro.tb.hamiltonian import build_hamiltonian
from repro.tb.purification import (
    purification_energy_forces, purify_density_matrix, spectral_bounds,
)


def si_hamiltonian(multiplier=1, seed=1):
    at = rattle(supercell(bulk_silicon(), multiplier), 0.04, seed=seed)
    model = GSPSilicon()
    nl = neighbor_list(at, model.cutoff)
    H, _ = build_hamiltonian(at, model, nl)
    return at, model, nl, H


def test_spectral_bounds_contain_spectrum():
    _, _, _, H = si_hamiltonian()
    emin, emax = spectral_bounds(H)
    eps = np.linalg.eigvalsh(H)
    assert emin <= eps.min() and emax >= eps.max()


def test_purified_rho_matches_projector():
    _, _, _, H = si_hamiltonian()
    res = purify_density_matrix(H, 32.0)
    eps, C = np.linalg.eigh(H)
    occ = C[:, :16]
    rho_exact = occ @ occ.T
    np.testing.assert_allclose(res.rho, rho_exact, atol=1e-8)
    assert res.idempotency_error < 1e-9
    assert np.trace(res.rho) == pytest.approx(16.0, abs=1e-8)


def test_band_energy_matches_diagonalisation():
    at, model, nl, H = si_hamiltonian(seed=2)
    res = purify_density_matrix(H, 32.0)
    ref = TBCalculator(GSPSilicon()).compute(at)
    assert res.band_energy == pytest.approx(ref["band_energy"], abs=1e-8)


def test_forces_match_diagonalisation():
    at, model, nl, _ = si_hamiltonian(seed=3)
    e, f, res = purification_energy_forces(at, model, nl)
    ref = TBCalculator(GSPSilicon()).compute(at)
    assert e == pytest.approx(ref["energy"], abs=1e-8)
    np.testing.assert_allclose(f, ref["forces"], atol=1e-8)


def test_sparse_threshold_path():
    _, _, _, H = si_hamiltonian(multiplier=2, seed=4)
    res = purify_density_matrix(sp.csr_matrix(H), 256.0, threshold=1e-8)
    ref = purify_density_matrix(H, 256.0)
    assert res.band_energy == pytest.approx(ref.band_energy, abs=1e-5)
    assert sp.issparse(res.rho)
    assert 0 < res.fill_fraction <= 1.0


def test_monotone_idempotency_convergence():
    _, _, _, H = si_hamiltonian(seed=5)
    res = purify_density_matrix(H, 32.0)
    tail = res.history[2:]
    assert all(b <= a * 1.01 for a, b in zip(tail, tail[1:]))
    assert res.iterations < 40


def test_gapless_filling_raises():
    """A filling boundary cutting through an exact degeneracy has no
    idempotent projector — expect a loud ConvergenceError."""
    rng = np.random.default_rng(0)
    q, _ = np.linalg.qr(rng.normal(size=(10, 10)))
    # Fermi level inside the 0,0 doublet: 8 electrons fill 4 of 10 levels,
    # but levels 4 and 5 are exactly degenerate
    d = np.array([-4.0, -3.0, -2.0, -1.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0])
    H = (q * d) @ q.T
    with pytest.raises(ConvergenceError):
        purify_density_matrix(H, 10.0, tol=1e-12, max_iter=60)


def test_input_validation():
    _, _, _, H = si_hamiltonian()
    with pytest.raises(ElectronicError):
        purify_density_matrix(H, -2.0)
    with pytest.raises(ElectronicError):
        purify_density_matrix(H, 2 * H.shape[0] + 2.0)
    with pytest.raises(ElectronicError):
        purify_density_matrix(H, 31.0)      # odd filling
    with pytest.raises(ElectronicError):
        purify_density_matrix(np.zeros((2, 3)), 2.0)


def test_nonorthogonal_rejected():
    at = bulk_silicon()
    model = NonOrthogonalSilicon()
    nl = neighbor_list(at, model.cutoff)
    with pytest.raises(ElectronicError, match="orthogonal"):
        purification_energy_forces(at, model, nl)

"""MD fast path: persistent state reuse, cache invalidation, equivalence.

Three layers are covered:

* the :class:`repro.state.CalculatorState` change classification (the
  shared rebuild-vs-reuse contract),
* the reusable components — cell-aware Verlet lists, the pattern-cached
  sparse-Hamiltonian builder, the fused single-pass FOE — each asserted
  numerically equivalent to its cold counterpart,
* the calculators end-to-end: fast-path MD forces vs rebuild-everything
  forces, correct invalidation on position/cell/species mutation (the
  stale-neighbour-list bug guard), and NVE energy conservation with the
  fast path on vs off.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.errors import SpectralWindowError
from repro.geometry import Atoms, bulk_silicon, rattle, supercell
from repro.neighbors import VerletList, neighbor_list
from repro.state import CalculatorState
from repro.tb import GSPSilicon, TBCalculator
from repro.tb.chebyshev import (
    fermi_coefficients,
    fermi_mu_derivative_coefficients,
)
from repro.tb.purification import lanczos_spectral_bounds
from repro.linscale import DensityMatrixCalculator, LinearScalingCalculator
from repro.linscale.foe_local import (
    solve_density_regions,
    solve_density_regions_fused,
)
from repro.linscale.regions import extract_regions
from repro.linscale.sparse_hamiltonian import (
    SparseHamiltonianBuilder,
    build_sparse_hamiltonian,
)

KT = 0.35
ORDER = 220   # converged for kT = 0.35 over the GSP-Si spectral width,
              # so results are window-insensitive below the 1e-8 bar


@pytest.fixture()
def gsp():
    return GSPSilicon()


@pytest.fixture()
def si64_rattled():
    return rattle(supercell(bulk_silicon(), 2), 0.04, seed=9)


# ---------------------------------------------------------------- state
def test_state_first_call_and_no_change(si8_rattled):
    st = CalculatorState()
    r = st.observe(si8_rattled, params=(1,))
    assert r.first_call and r.any_change and r.needs_full_reset
    r = st.observe(si8_rattled, params=(1,))
    assert not r.any_change and not r.needs_full_reset


def test_state_position_change_gives_moved_mask(si8_rattled):
    st = CalculatorState()
    st.observe(si8_rattled)
    si8_rattled.positions[3] += [0.1, 0.0, -0.2]
    r = st.observe(si8_rattled)
    assert r.positions_changed and not r.needs_full_reset
    assert r.moved is not None and r.moved.sum() == 1 and r.moved[3]
    assert r.max_displacement == pytest.approx(np.sqrt(0.05), rel=1e-12)


def test_state_cell_change_poisons_moved_mask(si8_rattled):
    st = CalculatorState()
    st.observe(si8_rattled)
    at2 = Atoms(si8_rattled.symbols, si8_rattled.positions,
                cell=si8_rattled.cell.matrix * 1.001)
    r = st.observe(at2)
    assert r.cell_changed and r.moved is None
    # cell changes ride the fast path; consumers self-validate
    assert not r.needs_full_reset and r.any_change


def test_state_species_natoms_params_reset(si8_rattled):
    st = CalculatorState()
    st.observe(si8_rattled, params=("a",))
    r = st.observe(si8_rattled, params=("b",))
    assert r.params_changed and r.needs_full_reset
    bigger = supercell(bulk_silicon(), 2)
    r = st.observe(bigger, params=("b",))
    assert r.natoms_changed and r.needs_full_reset and r.moved is None


# ---------------------------------------------------------------- verlet
def test_verlet_cell_change_refresh_is_exact():
    """NPT regime: the cached skin list must remap image vectors exactly."""
    at = rattle(bulk_silicon(), 0.03, seed=4)
    vl = VerletList(rcut=2.6, skin=0.8)
    vl.update(at)
    scale = 1.004
    at2 = Atoms(at.symbols, at.positions * scale,
                cell=at.cell.matrix * scale)
    nl = vl.update(at2)
    assert vl.n_builds == 1, "small affine strain must not rebuild"
    ref = neighbor_list(at2, 2.6, method="brute")
    assert sorted(np.round(nl.distances, 10)) == pytest.approx(
        sorted(np.round(ref.distances, 10)), abs=1e-9)


def test_verlet_large_cell_change_rebuilds():
    at = rattle(bulk_silicon(), 0.03, seed=4)
    vl = VerletList(rcut=2.6, skin=0.4)
    vl.update(at)
    at2 = Atoms(at.symbols, at.positions * 1.2, cell=at.cell.matrix * 1.2)
    vl.update(at2)
    assert vl.n_builds == 2, "a 20% strain exceeds any skin criterion"


def test_verlet_reset_and_stats():
    at = rattle(bulk_silicon(), 0.03, seed=4)
    vl = VerletList(rcut=2.6, skin=0.5)
    vl.update(at)
    vl.update(at)
    assert vl.stats() == {
        "builds": 1, "updates": 2, "reused": 1,
        "causes": {"init": 1, "resize": 0, "cell-unmappable": 0,
                   "drift": 0, "strain": 0}}
    vl.reset()
    vl.update(at)
    assert vl.n_builds == 2 and vl.last_update_rebuilt


# ------------------------------------------------------------- H builder
def test_builder_matches_full_build(si64_rattled, gsp):
    nl = neighbor_list(si64_rattled, gsp.cutoff)
    b = SparseHamiltonianBuilder(gsp)
    H = b.build(si64_rattled, nl)
    Href, _ = build_sparse_hamiltonian(si64_rattled, gsp, nl)
    assert abs(H - Href).max() < 1e-13
    assert b.stats()["pattern_builds"] == 1


def test_builder_value_rewrite_matches(si64_rattled, gsp):
    nl = neighbor_list(si64_rattled, gsp.cutoff)
    b = SparseHamiltonianBuilder(gsp)
    b.build(si64_rattled, nl)
    at2 = rattle(si64_rattled, 0.01, seed=3)
    nl2 = neighbor_list(at2, gsp.cutoff)
    if not (np.array_equal(nl.i, nl2.i) and np.array_equal(nl.j, nl2.j)):
        pytest.skip("rattle changed the bond pattern (unlucky seed)")
    H = b.build(at2, nl2, moved=np.ones(len(at2), bool))
    Href, _ = build_sparse_hamiltonian(at2, gsp, nl2)
    assert abs(H - Href).max() < 1e-13
    assert b.stats()["value_updates"] == 1


def test_builder_partial_update_matches(si64_rattled, gsp):
    """Single-atom displacement: only its bonds are re-evaluated."""
    nl = neighbor_list(si64_rattled, gsp.cutoff)
    b = SparseHamiltonianBuilder(gsp)
    b.build(si64_rattled, nl)
    at2 = copy.deepcopy(si64_rattled)
    at2.positions[7] += [0.02, -0.015, 0.01]
    nl2 = neighbor_list(at2, gsp.cutoff)
    moved = np.zeros(len(at2), bool)
    moved[7] = True
    H = b.build(at2, nl2, moved=moved)
    Href, _ = build_sparse_hamiltonian(at2, gsp, nl2)
    assert abs(H - Href).max() < 1e-13
    assert b.stats()["partial_updates"] == 1


def test_builder_pattern_change_rebuilds(si64_rattled, gsp):
    nl = neighbor_list(si64_rattled, gsp.cutoff)
    b = SparseHamiltonianBuilder(gsp)
    b.build(si64_rattled, nl)
    at2 = rattle(supercell(bulk_silicon(), 2), 0.3, seed=77)  # big rattle
    nl2 = neighbor_list(at2, gsp.cutoff)
    H = b.build(at2, nl2)
    Href, _ = build_sparse_hamiltonian(at2, gsp, nl2)
    assert abs(H - Href).max() < 1e-13
    assert b.stats()["pattern_builds"] == 2


# ------------------------------------------------------ fused FOE kernel
def test_fermi_mu_derivatives_match_finite_differences():
    center, span, mu, kT = -1.0, 9.0, 0.3, 0.35
    stack = fermi_mu_derivative_coefficients(center, span, mu, kT, 60)
    h = 1e-5
    for s in (1, 2, 3):
        if s == 1:
            fd = (fermi_coefficients(center, span, mu + h, kT, 60)
                  - fermi_coefficients(center, span, mu - h, kT, 60)) / (2 * h)
        elif s == 2:
            fd = (stack_at(center, span, mu + h, kT, 1)
                  - stack_at(center, span, mu - h, kT, 1)) / (2 * h)
        else:
            fd = (stack_at(center, span, mu + h, kT, 2)
                  - stack_at(center, span, mu - h, kT, 2)) / (2 * h)
        assert np.abs(stack[s] - fd).max() < 1e-5 * max(1.0, np.abs(stack[s]).max())
    assert np.allclose(stack[0],
                       fermi_coefficients(center, span, mu, kT, 60))


def stack_at(center, span, mu, kT, s):
    return fermi_mu_derivative_coefficients(center, span, mu, kT, 60)[s]


def _foe_inputs(gsp, atoms):
    nl = neighbor_list(atoms, gsp.cutoff)
    H, _ = build_sparse_hamiltonian(atoms, gsp, nl)
    r_loc = 1.5 * gsp.cutoff
    regions = extract_regions(atoms, gsp, r_loc,
                              nl=neighbor_list(atoms, r_loc))
    nelec = gsp.total_electrons(atoms.symbols)
    return H, regions, nelec


def test_fused_solve_matches_two_pass(si64_rattled, gsp):
    H, regions, nelec = _foe_inputs(gsp, si64_rattled)
    emin, emax = lanczos_spectral_bounds(H)
    pad = 0.02 * (emax - emin) + 0.2
    window = (emin - pad, emax + pad)
    ref = solve_density_regions(H, regions, nelec, KT, order=ORDER,
                                window=window)
    fused = solve_density_regions_fused(
        H, regions, nelec, KT, order=ORDER, window=window,
        mu_guess=ref.mu + 2e-4)
    assert not fused.used_fallback
    assert fused.mu == pytest.approx(ref.mu, abs=1e-9)
    assert fused.band_energy == pytest.approx(ref.band_energy, abs=1e-8)
    assert fused.entropy == pytest.approx(ref.entropy, abs=1e-10)
    assert np.abs(fused.populations - ref.populations).max() < 1e-8
    assert abs(fused.rho - ref.rho).max() < 1e-8


def test_fused_solve_fallback_on_bad_guess(si64_rattled, gsp):
    """A far-off μ guess exceeds the Taylor tolerance → exact second pass."""
    H, regions, nelec = _foe_inputs(gsp, si64_rattled)
    emin, emax = lanczos_spectral_bounds(H)
    window = (emin - 0.3, emax + 0.3)
    ref = solve_density_regions(H, regions, nelec, KT, order=ORDER,
                                window=window)
    fused = solve_density_regions_fused(
        H, regions, nelec, KT, order=ORDER, window=window,
        mu_guess=ref.mu + 0.5)
    assert fused.used_fallback
    assert fused.mu == pytest.approx(ref.mu, abs=1e-9)
    assert abs(fused.rho - ref.rho).max() < 1e-10   # fallback is exact


def test_stale_window_raises(si64_rattled, gsp):
    H, regions, nelec = _foe_inputs(gsp, si64_rattled)
    emin, emax = lanczos_spectral_bounds(H)
    bad = (emin + 0.4 * (emax - emin), emax - 0.4 * (emax - emin))
    with pytest.raises(SpectralWindowError):
        solve_density_regions_fused(H, regions, nelec, KT, order=ORDER,
                                    window=bad, mu_guess=0.0)
    with pytest.raises(SpectralWindowError):
        solve_density_regions(H, regions, nelec, KT, order=ORDER, window=bad)


# --------------------------------------------------- calculators, end-to-end
def test_linscale_fast_path_matches_cold_forces(gsp):
    """MD-like sequence: reuse-on forces equal rebuild-everything forces."""
    at = rattle(supercell(bulk_silicon(), 2), 0.03, seed=21)
    fast = LinearScalingCalculator(gsp, kT=KT, order=ORDER, reuse=True)
    cold = LinearScalingCalculator(gsp, kT=KT, order=ORDER, reuse=False)
    rng = np.random.default_rng(5)
    for step in range(4):
        at.positions += rng.normal(0.0, 0.01, at.positions.shape)
        f_fast = fast.compute(at, forces=True)["forces"]
        f_cold = cold.compute(at, forces=True)["forces"]
        assert np.abs(f_fast - f_cold).max() < 1e-8, f"step {step}"
    rep = fast.state_report()
    assert rep["foe"]["fused"] >= 2, rep
    assert rep["hamiltonian"]["pattern_builds"] <= 2
    assert rep["regions"]["reuses"] >= 2
    cold_rep = cold.state_report()
    assert cold_rep["foe"]["fused"] == 0
    assert cold_rep["neighbors"]["reused"] == 0


def test_linscale_rebuild_vs_reuse_decisions(gsp, si8_rattled):
    calc = LinearScalingCalculator(gsp, kT=KT, order=80, reuse=True)
    calc.compute(si8_rattled, forces=True)
    base = calc.state_report()
    assert base["neighbors"]["builds"] == 1

    # small move → everything reused except values
    si8_rattled.positions[0] += [0.01, 0.0, 0.0]
    calc.compute(si8_rattled, forces=True)
    rep = calc.state_report()
    assert rep["neighbors"]["builds"] == 1
    assert rep["hamiltonian"]["pattern_builds"] == 1
    assert rep["hamiltonian"]["partial_updates"] == 1

    # unchanged structure → cache hit, no new work
    calc.compute(si8_rattled, forces=True)
    assert calc.state_report()["cache_hits"] == 1

    # huge move → neighbour rebuild
    si8_rattled.positions[0] += [0.9, 0.0, 0.0]
    calc.compute(si8_rattled, forces=True)
    assert calc.state_report()["neighbors"]["builds"] == 2

    # species change → full persistent reset (counters survive, lists don't)
    atoms_c = rattle(bulk_silicon(), 0.06, seed=1)
    calc2 = LinearScalingCalculator(GSPSilicon(), kT=KT, order=80)
    calc2.compute(atoms_c, forces=True)
    calc2.kT = KT            # params unchanged
    calc2.order = 90         # params changed
    calc2.compute(atoms_c, forces=True)
    assert calc2.state_report()["neighbors"]["builds"] == 2, \
        "parameter change must reset persistent state"


def test_linscale_energy_only_then_forces(gsp, si8_rattled):
    calc = LinearScalingCalculator(gsp, kT=KT, order=80, reuse=True)
    e = calc.get_potential_energy(si8_rattled)
    f = calc.get_forces(si8_rattled)
    assert f.shape == (8, 3)
    assert calc.compute(si8_rattled)["energy"] == pytest.approx(e, abs=1e-9)


def test_md_energy_conservation_fast_on_vs_off(gsp):
    """NVE with the fast path must conserve energy as well as without."""
    from repro.md import (
        MDDriver, ThermoLog, VelocityVerlet, maxwell_boltzmann_velocities,
    )

    drifts = {}
    energies = {}
    for reuse in (True, False):
        at = rattle(bulk_silicon(), 0.02, seed=7)
        maxwell_boltzmann_velocities(at, 300.0, seed=11)
        calc = LinearScalingCalculator(gsp, kT=KT, order=ORDER, reuse=reuse)
        log = ThermoLog()
        MDDriver(at, calc, VelocityVerlet(dt=1.0),
                 observers=[log]).run(12)
        drifts[reuse] = log.conserved_drift()
        energies[reuse] = np.asarray(log.etot)
    # absolute drift is set by the r_loc truncation at this kT, not by the
    # fast path; the load-bearing assertion is ON ≡ OFF step by step
    assert drifts[True] < 3e-4
    assert drifts[False] < 3e-4
    assert abs(drifts[True] - drifts[False]) < 1e-6
    np.testing.assert_allclose(energies[True], energies[False],
                               atol=5e-8, rtol=0.0)


def test_md_driver_attaches_calc_report(gsp):
    from repro.md import MDDriver, VelocityVerlet

    at = rattle(bulk_silicon(), 0.02, seed=3)
    calc = LinearScalingCalculator(gsp, kT=KT, order=60)
    data = MDDriver(at, calc, VelocityVerlet(dt=1.0)).run(2)
    assert "calc_report" in data
    assert data["calc_report"]["neighbors"]["updates"] >= 3


def test_failed_compute_does_not_poison_cache(gsp, si8_rattled, monkeypatch):
    """A compute that raises mid-solve must not leave the previous
    geometry's results answering for the new one on retry."""
    calc = LinearScalingCalculator(gsp, kT=KT, order=ORDER)
    e_a = calc.get_potential_energy(si8_rattled)
    si8_rattled.positions[0] += [0.05, 0.0, 0.0]

    import repro.linscale.calculator as calcmod
    real = calcmod.solve_density_regions
    calls = {"n": 0}

    def boom(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient solver failure")
        return real(*args, **kwargs)

    monkeypatch.setattr(calcmod, "solve_density_regions", boom)
    with pytest.raises(RuntimeError):
        calc.compute(si8_rattled, forces=False)
    e_b = calc.get_potential_energy(si8_rattled)   # retry, same geometry
    fresh = LinearScalingCalculator(gsp, kT=KT, order=ORDER)
    assert e_b == pytest.approx(fresh.get_potential_energy(si8_rattled),
                                abs=1e-8)
    assert e_b != e_a


def test_tb_calculator_detects_cell_mutation(si8_rattled):
    """The stale-neighbour-list bug guard on the dense calculator."""
    calc = TBCalculator(GSPSilicon())
    e0 = calc.get_potential_energy(si8_rattled)
    at2 = Atoms(si8_rattled.symbols, si8_rattled.positions,
                cell=si8_rattled.cell.matrix * 1.02)
    e1 = calc.get_potential_energy(at2)
    assert e0 != e1
    fresh = TBCalculator(GSPSilicon())
    assert e1 == pytest.approx(fresh.get_potential_energy(at2), abs=1e-10)


def test_dense_foe_warm_start_matches_cold(gsp, si8_rattled):
    warm = DensityMatrixCalculator(gsp, method="foe", kT=KT, order=ORDER,
                                   reuse=True)
    cold = DensityMatrixCalculator(gsp, method="foe", kT=KT, order=ORDER,
                                   reuse=False)
    warm.compute(si8_rattled, forces=True)
    si8_rattled.positions[2] += [0.02, -0.01, 0.0]
    f_warm = warm.compute(si8_rattled, forces=True)["forces"]
    f_cold = cold.compute(si8_rattled, forces=True)["forces"]
    assert np.abs(f_warm - f_cold).max() < 1e-7
    assert warm.state_report()["mu_warm"]


def test_relaxers_single_solve_per_step(si8_rattled):
    """FIRE must pay one electronic solve per step, not two."""
    from repro.relax import fire_relax

    calc = TBCalculator(GSPSilicon())
    res = fire_relax(si8_rattled, calc, fmax=0.5, max_steps=10)
    n_solves = calc.timer.timers["diagonalize"].calls
    assert n_solves <= res.iterations + 2, \
        f"{n_solves} solves for {res.iterations} FIRE iterations"

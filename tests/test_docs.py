"""Documentation must stay executable: README/docs code blocks and links.

Runs the same checker as the CI docs job (``tools/check_docs.py``) in
process — every fenced python block in README.md and docs/*.md executes
without raising, and every relative link target exists.
"""

import importlib.util
import sys
from pathlib import Path


def _load_checker():
    path = Path(__file__).resolve().parent.parent / "tools" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = mod
    spec.loader.exec_module(mod)
    return mod


def test_docs_code_blocks_and_links_pass():
    checker = _load_checker()
    assert checker.main() == 0


def test_docs_tree_exists():
    root = Path(__file__).resolve().parent.parent
    for name in ("README.md", "docs/architecture.md", "docs/tutorial_md.md",
                 "docs/api.md"):
        assert (root / name).exists(), name

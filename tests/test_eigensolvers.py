"""Eigensolver cross-validation: LAPACK vs Jacobi vs Householder–QL."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ElectronicError
from repro.tb.eigensolvers import (
    get_solver, householder_ql_eigh, jacobi_eigh, solve_eigh,
)
from repro.tb.eigensolvers.householder import householder_tridiagonalize
from repro.tb.eigensolvers.jacobi import jacobi_rotation, offdiag_norm


def random_sym(n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n)) * scale
    return 0.5 * (a + a.T)


def check_decomposition(H, eps, C, tol=1e-9):
    """Residual ‖HC − Cdiag(ε)‖ and orthonormality."""
    resid = np.max(np.abs(H @ C - C * eps))
    orth = np.max(np.abs(C.T @ C - np.eye(len(eps))))
    assert resid < tol * max(1.0, np.abs(H).max())
    assert orth < tol
    assert np.all(np.diff(eps) >= -1e-12)


# ---------------------------------------------------------------- lapack
def test_lapack_standard():
    H = random_sym(30, 1)
    eps, C = solve_eigh(H)
    check_decomposition(H, eps, C)


def test_lapack_generalized():
    H = random_sym(20, 2)
    rng = np.random.default_rng(3)
    B = rng.normal(size=(20, 20))
    S = B @ B.T + 20 * np.eye(20)
    eps, C = solve_eigh(H, S)
    resid = np.max(np.abs(H @ C - S @ C * eps))
    assert resid < 1e-9 * np.abs(H).max()
    # S-orthonormality
    np.testing.assert_allclose(C.T @ S @ C, np.eye(20), atol=1e-9)


def test_lapack_complex_hermitian():
    rng = np.random.default_rng(4)
    A = rng.normal(size=(12, 12)) + 1j * rng.normal(size=(12, 12))
    H = 0.5 * (A + A.conj().T)
    eps, C = solve_eigh(H)
    resid = np.max(np.abs(H @ C - C * eps))
    assert resid < 1e-10 * np.abs(H).max()


def test_lapack_rejects_nonsquare_and_nonhermitian():
    with pytest.raises(ElectronicError):
        solve_eigh(np.zeros((2, 3)))
    bad = np.array([[0.0, 1.0], [2.0, 0.0]])
    with pytest.raises(ElectronicError, match="Hermitian"):
        solve_eigh(bad)


# ---------------------------------------------------------------- jacobi
def test_jacobi_matches_lapack():
    H = random_sym(40, 5, scale=3.0)
    e_ref, _ = solve_eigh(H)
    eps, C = jacobi_eigh(H)
    np.testing.assert_allclose(eps, e_ref, atol=1e-9)
    check_decomposition(H, eps, C, tol=1e-8)


def test_jacobi_quadratic_convergence_history():
    H = random_sym(24, 6)
    eps, C, hist = jacobi_eigh(H, collect_history=True)
    # off-norm strictly decreasing and fast at the end
    assert all(b < a for a, b in zip(hist, hist[1:]))
    assert hist[-1] < 1e-8 * np.linalg.norm(H)


def test_jacobi_diagonal_input_identity():
    d = np.diag([3.0, -1.0, 2.0])
    eps, C = jacobi_eigh(d)
    np.testing.assert_allclose(eps, [-1, 2, 3])
    np.testing.assert_allclose(np.abs(C), np.eye(3)[:, [1, 2, 0]], atol=1e-12)


def test_jacobi_rejects_generalized_and_asymmetric():
    with pytest.raises(ElectronicError):
        jacobi_eigh(np.eye(3), np.eye(3))
    with pytest.raises(ElectronicError):
        jacobi_eigh(np.array([[0.0, 1.0], [2.0, 0.0]]))


def test_jacobi_rotation_annihilates():
    app, aqq, apq = 2.0, -1.0, 0.7
    c, s = jacobi_rotation(app, aqq, apq)
    # rotated off-diagonal element must vanish
    new_off = (c * c - s * s) * apq + c * s * (app - aqq)
    assert abs(new_off) < 1e-12
    assert c * c + s * s == pytest.approx(1.0)


def test_offdiag_norm():
    a = np.array([[1.0, 2.0], [2.0, 3.0]])
    assert offdiag_norm(a) == pytest.approx(np.sqrt(8.0))


# ---------------------------------------------------------------- householder
def test_householder_tridiagonal_form():
    H = random_sym(18, 7)
    d, e, Q = householder_tridiagonalize(H)
    T = Q.T @ H @ Q
    # T is tridiagonal
    mask = np.abs(np.triu(T, k=2))
    assert mask.max() < 1e-10
    np.testing.assert_allclose(np.diag(T), d, atol=1e-10)
    np.testing.assert_allclose(np.diag(T, -1), e, atol=1e-10)
    np.testing.assert_allclose(Q.T @ Q, np.eye(18), atol=1e-10)


def test_householder_ql_matches_lapack():
    H = random_sym(35, 8, scale=2.0)
    e_ref, _ = solve_eigh(H)
    eps, C = householder_ql_eigh(H)
    np.testing.assert_allclose(eps, e_ref, atol=1e-8)
    check_decomposition(H, eps, C, tol=1e-7)


def test_householder_degenerate_spectrum():
    # repeated eigenvalues (projector structure) — a classic QL stress test
    rng = np.random.default_rng(9)
    q, _ = np.linalg.qr(rng.normal(size=(12, 12)))
    d = np.array([1.0] * 6 + [-2.0] * 6)
    H = (q * d) @ q.T
    eps, C = householder_ql_eigh(H)
    np.testing.assert_allclose(np.sort(eps), np.sort(d), atol=1e-9)
    check_decomposition(H, eps, C, tol=1e-8)


# ---------------------------------------------------------------- registry + physics
def test_get_solver_registry():
    assert get_solver("lapack") is solve_eigh
    with pytest.raises(KeyError):
        get_solver("magic")


def test_all_solvers_agree_on_tb_hamiltonian(si8_rattled, gsp):
    from repro.neighbors import neighbor_list
    from repro.tb.hamiltonian import build_hamiltonian

    nl = neighbor_list(si8_rattled, gsp.cutoff)
    H, _ = build_hamiltonian(si8_rattled, gsp, nl)
    e1, _ = solve_eigh(H)
    e2, _ = jacobi_eigh(H)
    e3, _ = householder_ql_eigh(H)
    np.testing.assert_allclose(e2, e1, atol=1e-8)
    np.testing.assert_allclose(e3, e1, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 20), seed=st.integers(0, 10**6))
def test_property_jacobi_eigenvalue_sum_is_trace(n, seed):
    H = random_sym(n, seed)
    eps, _ = jacobi_eigh(H)
    assert eps.sum() == pytest.approx(np.trace(H), abs=1e-9 * n)

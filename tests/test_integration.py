"""End-to-end integration tests: full workflows across subsystems.

These are miniature versions of the benchmark protocols — small enough
for the unit-test budget, complete enough to exercise geometry → TB → MD
→ analysis in one pass.
"""

import numpy as np
import pytest

from repro.analysis import bond_statistics, radial_distribution, ring_statistics
from repro.analysis.rdf import first_peak
from repro.geometry import bulk_silicon, nanotube, rattle, supercell
from repro.md import (
    MDDriver, NoseHooverChain, ThermoLog, TrajectoryRecorder, VelocityVerlet,
    maxwell_boltzmann_velocities,
)
from repro.relax import conjugate_gradient, fire_relax
from repro.tb import GSPSilicon, TBCalculator, XuCarbon


def test_melt_workflow_disorders_crystal():
    """Heat Si8 far above melting (superheated: the tiny PBC cell needs
    ~4500 K to disorder within the test budget) with NVT: the RDF's crystalline second
    shell washes out while the first peak survives (liquid signature)."""
    at = bulk_silicon()
    maxwell_boltzmann_velocities(at, 4500.0, seed=30)
    calc = TBCalculator(GSPSilicon())
    rec = TrajectoryRecorder()
    md = MDDriver(at, calc, NoseHooverChain(dt=1.0, temperature=4500.0,
                                            tau=25.0),
                  observers=[(rec, 10)])
    md.run(300)
    frames = [rec.trajectory.atoms_at(i)
              for i in range(len(rec.trajectory) - 5, len(rec.trajectory))]
    r, g = radial_distribution(frames, r_max=4.5, nbins=120)
    peak = first_peak(r, g, r_window=(2.0, 3.0))
    assert 2.2 < peak < 2.9                 # bonded shell survives
    disp = np.abs(frames[-1].positions - bulk_silicon().positions).max()
    assert disp > 0.5                       # genuinely disordered


def test_quench_workflow_recovers_fourfold_network():
    """Mild heat + FIRE quench returns a mostly 4-coordinated network."""
    at = rattle(supercell(bulk_silicon(), (2, 1, 1)), 0.1, seed=31)
    calc = TBCalculator(GSPSilicon())
    res = fire_relax(at, calc, fmax=0.05, max_steps=500)
    assert res.converged
    stats = bond_statistics(at, 2.7)
    assert stats["mean_coordination"] == pytest.approx(4.0, abs=0.3)


def test_nanotube_relax_preserves_topology():
    """CG-relax an open (6,0) tube with a frozen base ring: hexagon count
    and tube integrity must survive relaxation."""
    tube = nanotube(6, 0, cells=2, periodic=False)
    z = tube.positions[:, 2]
    tube.fixed[z < z.min() + 0.4] = True    # freeze the bottom ring
    rings_before = ring_statistics(tube, 1.65)
    calc = TBCalculator(XuCarbon())
    res = conjugate_gradient(tube, calc, fmax=0.08, max_steps=300)
    assert res.converged
    rings_after = ring_statistics(tube, 1.65)
    assert rings_after.get(6, 0) >= rings_before.get(6, 0) - 1
    # relaxed edge bonds contract below the ideal graphene value
    stats = bond_statistics(tube, 1.7)
    assert 1.3 < stats["mean_bond_length"] < 1.5


def test_nanotube_short_anneal_stable_at_1000k():
    """The classic observation: at 1000 K the open tube keeps all its
    hexagons over the (short) simulated window."""
    tube = nanotube(6, 0, cells=2, periodic=False)
    z = tube.positions[:, 2]
    tube.fixed[z < z.min() + 0.4] = True
    calc = TBCalculator(XuCarbon())
    conjugate_gradient(tube, calc, fmax=0.15, max_steps=150)
    hex_before = ring_statistics(tube, 1.65).get(6, 0)
    maxwell_boltzmann_velocities(tube, 1000.0, seed=32)
    md = MDDriver(tube, calc,
                  NoseHooverChain(dt=1.0, temperature=1000.0, tau=30.0))
    md.run(120)
    hex_after = ring_statistics(tube, 1.75).get(6, 0)
    assert hex_after >= hex_before - 2


def test_nve_with_verlet_list_reuse_consistent():
    """MD with aggressive skin reuse must track a fresh-list trajectory."""
    at1 = bulk_silicon()
    maxwell_boltzmann_velocities(at1, 500.0, seed=33)
    at2 = at1.copy()
    c1 = TBCalculator(GSPSilicon(), skin=1.0)
    c2 = TBCalculator(GSPSilicon(), skin=0.05)
    MDDriver(at1, c1, VelocityVerlet(dt=1.0)).run(40)
    MDDriver(at2, c2, VelocityVerlet(dt=1.0)).run(40)
    np.testing.assert_allclose(at1.positions, at2.positions, atol=1e-8)


def test_calculator_survives_model_reuse_across_structures():
    """One calculator instance driving relaxation then MD then analysis."""
    calc = TBCalculator(GSPSilicon())
    at = rattle(bulk_silicon(), 0.06, seed=34)
    res = conjugate_gradient(at, calc, fmax=0.05, max_steps=200)
    assert res.converged
    maxwell_boltzmann_velocities(at, 300.0, seed=35)
    log = ThermoLog()
    MDDriver(at, calc, VelocityVerlet(dt=1.0), observers=[log]).run(30)
    assert log.conserved_drift() < 5e-4

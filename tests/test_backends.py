"""Array-backend conformance and shape-bucketing property tests.

Every backend registered in :mod:`repro.linscale.backends` is held to
the same contract against the ``numpy_loop`` reference oracle: region
order preserved, real symmetric *and* complex Hermitian blocks, moments
within 1e-12 and end-to-end forces within 1e-10, through both the
two-pass and the fused solve.  The suite is parametrized over
``available_backends()``, so a newly registered backend (numba, a GPU
port, ...) is picked up with zero test changes.

The hypothesis section drills the batched backend's one real risk —
shape bucketing and padding: buckets must partition the region list
exactly, and pad rows/columns must never leak into moments or density
rows for any region-size distribution (all-distinct, all-equal, and
everything between).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.calculators import make_calculator
from repro.errors import ReproError
from repro.linscale import LinearScalingCalculator
from repro.linscale.backends import (
    DEFAULT_BACKEND,
    Backend,
    RegionBlockSource,
    available_backends,
    get_backend,
    plan_buckets,
    register_backend,
    resolve_backend,
)
from repro.linscale.backends.numpy_loop import NumpyLoopBackend
from repro.linscale.foe_local import (
    build_region_gather_maps,
    solve_density_regions,
    solve_density_regions_fused,
)
from repro.linscale.kfoe import (
    solve_density_regions_k,
    spectral_windows_k,
)
from repro.linscale.regions import extract_regions
from repro.linscale.sparse_hamiltonian import (
    build_sparse_hamiltonian,
    build_sparse_hamiltonian_k,
)
from repro.neighbors import neighbor_list
from repro.obs import metrics as metrics_mod
from repro.tb.kpoints import frac_to_cartesian, monkhorst_pack

REFERENCE = "numpy_loop"
ALL_BACKENDS = available_backends()
ORDER = 60


# --------------------------------------------------------- synthetic batches
def random_region_batch(seed: int, complex_h: bool = False,
                        nregions: int = 8, dim: int = 36):
    """A sparse Hermitian H plus heterogeneous random region specs.

    Region sizes, orbital subsets and core positions are all drawn at
    random, so every bucketing path (distinct shapes, repeated shapes,
    cores scattered through the region) gets exercised.
    """
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(dim, dim))
    if complex_h:
        a = a + 1j * rng.normal(size=(dim, dim))
    dense = (a + a.conj().T) / 2
    # thin it out so CSR slicing is a real code path, keep it Hermitian
    keep = rng.random(size=(dim, dim)) < 0.7
    keep = np.triu(keep) | np.triu(keep).T
    np.fill_diagonal(keep, True)
    dense = np.where(keep, dense, 0.0)
    specs = []
    for _ in range(nregions):
        n = int(rng.integers(4, dim + 1))
        orb = np.sort(rng.choice(dim, size=n, replace=False))
        nc = int(rng.integers(1, n + 1))
        core = np.sort(rng.choice(n, size=nc, replace=False))
        specs.append((orb, core))
    # window that safely contains every region block's spectrum
    span = 1.1 * float(np.abs(np.linalg.eigvalsh(dense)).max()) + 0.5
    return sp.csr_matrix(dense), specs, 0.0, span


def _assert_region_lists_close(got, want, atol):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_allclose(g, w, rtol=0.0, atol=atol)


# ------------------------------------------------- kernel-level conformance
@pytest.mark.parametrize("complex_h", [False, True], ids=["real", "complex"])
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_moments_match_reference(name, complex_h):
    H, specs, center, span = random_region_batch(11 + complex_h, complex_h)
    blocks = RegionBlockSource(H, specs)
    ref = get_backend(REFERENCE).moments(blocks, center, span, ORDER)
    got = get_backend(name).moments(blocks, center, span, ORDER)
    _assert_region_lists_close([m for m, _ in got], [m for m, _ in ref],
                               atol=1e-12)
    _assert_region_lists_close([e for _, e in got], [e for _, e in ref],
                               atol=1e-12)


@pytest.mark.parametrize("complex_h", [False, True], ids=["real", "complex"])
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_density_rows_match_reference(name, complex_h):
    H, specs, center, span = random_region_batch(23 + complex_h, complex_h)
    blocks = RegionBlockSource(H, specs)
    rng = np.random.default_rng(5)
    coeffs = rng.normal(size=ORDER + 1) / (1.0 + np.arange(ORDER + 1)) ** 2
    ref = get_backend(REFERENCE).density_rows(blocks, center, span, coeffs)
    got = get_backend(name).density_rows(blocks, center, span, coeffs)
    _assert_region_lists_close(got, ref, atol=1e-12)


@pytest.mark.parametrize("complex_h", [False, True], ids=["real", "complex"])
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_fused_matches_reference(name, complex_h):
    H, specs, center, span = random_region_batch(37 + complex_h, complex_h)
    blocks = RegionBlockSource(H, specs)
    rng = np.random.default_rng(9)
    deriv = rng.normal(size=(4, ORDER + 1)) / (1.0 + np.arange(ORDER + 1))
    ref = get_backend(REFERENCE).fused(blocks, center, span, deriv)
    got = get_backend(name).fused(blocks, center, span, deriv)
    _assert_region_lists_close([m for m, _, _ in got], [m for m, _, _ in ref],
                               atol=1e-12)
    _assert_region_lists_close([e for _, e, _ in got], [e for _, e, _ in ref],
                               atol=1e-12)
    _assert_region_lists_close([o for _, _, o in got], [o for _, _, o in ref],
                               atol=1e-12)


# -------------------------------------------------- solver-level conformance
@pytest.fixture(scope="module")
def si_problem(gsp):
    from repro.geometry import bulk_silicon, supercell

    atoms = supercell(bulk_silicon(), 2)
    nl = neighbor_list(atoms, gsp.cutoff)
    H, _ = build_sparse_hamiltonian(atoms, gsp, nl)
    r_loc = 1.5 * gsp.cutoff
    regions = extract_regions(atoms, gsp, r_loc, neighbor_list(atoms, r_loc))
    nelec = gsp.total_electrons(atoms.symbols)
    return H, regions, nelec


@pytest.fixture(scope="module")
def si_problem_k(gsp):
    from repro.geometry import bulk_silicon, rattle

    atoms = rattle(bulk_silicon(), 0.06, seed=123)
    nl = neighbor_list(atoms, gsp.cutoff)
    kfrac, weights = monkhorst_pack((2, 2, 2))
    kcart = frac_to_cartesian(kfrac, atoms.cell)
    H_list = [build_sparse_hamiltonian_k(atoms, gsp, nl, k)[0] for k in kcart]
    r_loc = 1.5 * gsp.cutoff
    regions = extract_regions(atoms, gsp, r_loc, neighbor_list(atoms, r_loc))
    nelec = gsp.total_electrons(atoms.symbols)
    return H_list, weights, regions, nelec


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_two_pass_solve_parity_real(name, si_problem):
    H, regions, nelec = si_problem
    ref = solve_density_regions(H, regions, nelec, kT=0.2, order=80,
                                backend=REFERENCE)
    got = solve_density_regions(H, regions, nelec, kT=0.2, order=80,
                                backend=name)
    assert got.band_energy == pytest.approx(ref.band_energy, abs=1e-10)
    assert got.mu == pytest.approx(ref.mu, abs=1e-12)
    assert got.entropy == pytest.approx(ref.entropy, abs=1e-12)
    np.testing.assert_allclose(got.populations, ref.populations,
                               rtol=0, atol=1e-12)
    assert abs(got.rho - ref.rho).max() < 1e-12


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_fused_solve_parity_real(name, si_problem):
    H, regions, nelec = si_problem
    cold = solve_density_regions(H, regions, nelec, kT=0.2, order=80,
                                 backend=REFERENCE)
    window = cold.spectral_bounds
    ref = solve_density_regions_fused(H, regions, nelec, kT=0.2, order=80,
                                      window=window, mu_guess=cold.mu,
                                      backend=REFERENCE)
    got = solve_density_regions_fused(H, regions, nelec, kT=0.2, order=80,
                                      window=window, mu_guess=cold.mu,
                                      backend=name)
    assert got.used_fallback == ref.used_fallback
    assert got.band_energy == pytest.approx(ref.band_energy, abs=1e-10)
    assert abs(got.rho - ref.rho).max() < 1e-12


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_two_pass_solve_parity_complex_k(name, si_problem_k):
    H_list, weights, regions, nelec = si_problem_k
    windows = spectral_windows_k(H_list)
    ref = solve_density_regions_k(H_list, weights, regions, nelec, kT=0.2,
                                  order=80, windows=windows,
                                  backend=REFERENCE)
    got = solve_density_regions_k(H_list, weights, regions, nelec, kT=0.2,
                                  order=80, windows=windows, backend=name)
    assert got.band_energy == pytest.approx(ref.band_energy, abs=1e-10)
    assert got.mu == pytest.approx(ref.mu, abs=1e-12)
    for rg, rr in zip(got.rho_k, ref.rho_k):
        assert abs(rg - rr).max() < 1e-12


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_calculator_force_parity(name, si64_rattled_local, gsp):
    """End-to-end O(N) forces agree across backends to 1e-10 eV/Å."""
    atoms = si64_rattled_local
    ref_calc = LinearScalingCalculator(gsp, kT=0.2, order=80,
                                       backend=REFERENCE)
    calc = LinearScalingCalculator(gsp, kT=0.2, order=80, backend=name)
    f_ref = ref_calc.get_forces(atoms)
    f = calc.get_forces(atoms)
    e_ref = ref_calc.get_potential_energy(atoms)
    e = calc.get_potential_energy(atoms)
    assert e == pytest.approx(e_ref, abs=1e-9)
    assert np.abs(f - f_ref).max() < 1e-10


@pytest.fixture(scope="module")
def si64_rattled_local():
    from repro.geometry import bulk_silicon, rattle, supercell

    return rattle(supercell(bulk_silicon(), 2), 0.05, seed=7)


# ------------------------------------------------------ bucketing properties
shape_lists = st.lists(
    st.integers(1, 200).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(1, n))),
    min_size=1, max_size=80)


@given(shapes=shape_lists, gran=st.integers(1, 16), maxr=st.integers(1, 32))
@settings(max_examples=120, deadline=None)
def test_plan_buckets_partitions_exactly(shapes, gran, maxr):
    buckets = plan_buckets(shapes, granularity=gran, max_regions=maxr)
    seen = [i for b in buckets for i in b.indices]
    assert sorted(seen) == list(range(len(shapes)))
    assert len(set(seen)) == len(shapes)
    for b in buckets:
        assert 1 <= len(b) <= maxr
        assert b.n_pad % gran == 0
        for i in b.indices:
            n, nc = shapes[i]
            # every member fits, pad never exceeds one granule
            assert 0 <= b.n_pad - n < gran
            assert nc <= b.nc_pad
        assert b.nc_pad == max(shapes[i][1] for i in b.indices)


def test_plan_buckets_degenerate_all_equal():
    shapes = [(48, 12)] * 300
    buckets = plan_buckets(shapes, granularity=8, max_regions=256)
    assert [len(b) for b in buckets] == [256, 44]
    assert all(b.n_pad == 48 and b.nc_pad == 12 for b in buckets)


def test_plan_buckets_degenerate_all_distinct():
    shapes = [(n, min(n, 1 + n % 5)) for n in range(1, 40)]
    buckets = plan_buckets(shapes, granularity=1, max_regions=256)
    # granularity 1 → one bucket per distinct size
    assert len(buckets) == len(shapes)
    assert all(len(b) == 1 for b in buckets)


def test_plan_buckets_rejects_bad_shapes():
    with pytest.raises(ValueError):
        plan_buckets([(4, 5)])  # nc > n
    with pytest.raises(ValueError):
        plan_buckets([(0, 0)])
    with pytest.raises(ValueError):
        plan_buckets([(4, 2)], granularity=0)


@given(seed=st.integers(0, 10_000), complex_h=st.booleans())
@settings(max_examples=25, deadline=None)
def test_padding_never_leaks(seed, complex_h):
    """Batched moments/ρ-rows equal the loop oracle for random region-size
    distributions — any pad-row leak would show up as a mismatch."""
    H, specs, center, span = random_region_batch(
        seed, complex_h, nregions=6, dim=24)
    blocks = RegionBlockSource(H, specs)
    order = 24
    rng = np.random.default_rng(seed)
    coeffs = rng.normal(size=order + 1) / (1.0 + np.arange(order + 1)) ** 2
    loop = get_backend("numpy_loop")
    batched = get_backend("numpy_batched")
    ref_m = loop.moments(blocks, center, span, order)
    got_m = batched.moments(blocks, center, span, order)
    _assert_region_lists_close([m for m, _ in got_m], [m for m, _ in ref_m],
                               atol=1e-12)
    ref_r = loop.density_rows(blocks, center, span, coeffs)
    got_r = batched.density_rows(blocks, center, span, coeffs)
    _assert_region_lists_close(got_r, ref_r, atol=1e-12)


def test_gather_maps_round_trip(si_problem):
    """data_pad[maps[r]] reproduces CSR slicing exactly, and a source fed
    the maps returns the same blocks as one walking the CSR rows."""
    H, regions, _ = si_problem
    maps = build_region_gather_maps(H, regions)
    specs = [(r.orbitals, r.core_local) for r in regions]
    data_pad = np.append(H.data, 0.0)
    direct = RegionBlockSource(H, specs)
    mapped = RegionBlockSource(H, specs, gather_maps=maps)
    for i, (orb, _) in enumerate(specs):
        want = H[orb][:, orb].toarray()
        np.testing.assert_array_equal(data_pad[maps[i]], want)
        np.testing.assert_array_equal(mapped.get(i), want)
        np.testing.assert_array_equal(direct.get(i), want)


# ------------------------------------------------------- densify accounting
@pytest.fixture()
def metrics_on():
    old_registry = metrics_mod._swap_registry(metrics_mod.MetricsRegistry())
    old_enabled = metrics_mod._ENABLED
    metrics_mod._ENABLED = True
    try:
        yield metrics_mod._REGISTRY
    finally:
        metrics_mod._swap_registry(old_registry)
        metrics_mod._ENABLED = old_enabled


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_two_pass_densifies_each_region_once(name, si_problem, metrics_on):
    """The silent-densify footgun: both passes of a two-pass solve must
    share one densification per region, for every backend."""
    H, regions, nelec = si_problem
    solve_density_regions(H, regions, nelec, kT=0.2, order=40, backend=name)
    snap = metrics_on.snapshot()
    assert snap["counters"]["foe.densify"] == len(regions)


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_fused_densifies_each_region_once(name, si_problem, metrics_on):
    H, regions, nelec = si_problem
    cold = solve_density_regions(H, regions, nelec, kT=0.2, order=40,
                                 backend=name)
    before = metrics_on.snapshot()["counters"]["foe.densify"]
    solve_density_regions_fused(H, regions, nelec, kT=0.2, order=40,
                                window=cold.spectral_bounds,
                                mu_guess=cold.mu, backend=name)
    after = metrics_on.snapshot()["counters"]["foe.densify"]
    assert after - before == len(regions)


def test_batched_emits_bucket_metrics(si_problem, metrics_on):
    H, regions, nelec = si_problem
    solve_density_regions(H, regions, nelec, kT=0.2, order=40,
                          backend="numpy_batched")
    snap = metrics_on.snapshot()
    assert snap["counters"]["foe.bucket.launch"] >= 1
    assert snap["counters"]["foe.bucket.regions"] == 2 * len(regions)
    assert snap["histograms"]["foe.bucket.batch_s"]["count"] >= 1
    fills = snap["histograms"]["foe.bucket.fill"]
    assert 0.0 < fills["min"] <= fills["max"] <= 1.0


# ----------------------------------------------------- registry & dispatch
def test_registry_lists_both_numpy_backends():
    assert {"numpy_loop", "numpy_batched"} <= set(ALL_BACKENDS)
    assert DEFAULT_BACKEND == "numpy_loop"


def test_get_backend_unknown_name_lists_available():
    with pytest.raises(ReproError, match="numpy_loop"):
        get_backend("no_such_backend")


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None).name == DEFAULT_BACKEND
    monkeypatch.setenv("REPRO_BACKEND", "numpy_batched")
    assert resolve_backend(None).name == "numpy_batched"
    # explicit name beats the environment
    assert resolve_backend("numpy_loop").name == "numpy_loop"
    # an instance passes straight through
    inst = NumpyLoopBackend()
    assert resolve_backend(inst) is inst


def test_register_backend_rejects_duplicates():
    class Fake(NumpyLoopBackend):
        name = "fake_for_test"

    register_backend("fake_for_test", Fake)
    try:
        with pytest.raises(ReproError, match="fake_for_test"):
            register_backend("fake_for_test", Fake)
        register_backend("fake_for_test", Fake, replace=True)
        assert isinstance(get_backend("fake_for_test"), Fake)
        assert isinstance(get_backend("fake_for_test"), Backend)
    finally:
        from repro.linscale import backends as reg_mod

        reg_mod._FACTORIES.pop("fake_for_test", None)
        reg_mod._INSTANCES.pop("fake_for_test", None)


def test_make_calculator_threads_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    calc = make_calculator({"model": "gsp-si", "solver": "linscale",
                            "kT": 0.2, "backend": "numpy_batched"})
    assert calc.backend.name == "numpy_batched"
    assert "numpy_batched" in repr(calc)
    assert calc.state_report()["backend"] == "numpy_batched"


def test_make_calculator_env_var_default(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numpy_batched")
    calc = make_calculator({"model": "gsp-si", "solver": "linscale",
                            "kT": 0.2})
    assert calc.backend.name == "numpy_batched"


def test_make_calculator_rejects_backend_for_diag():
    with pytest.raises(ReproError, match="linscale"):
        make_calculator({"model": "gsp-si", "solver": "diag",
                         "backend": "numpy_loop"})


def test_make_calculator_rejects_unknown_backend():
    with pytest.raises(ReproError, match="available"):
        make_calculator({"model": "gsp-si", "solver": "linscale",
                         "kT": 0.2, "backend": "cuda_dreams"})


def test_cli_backend_flag_reaches_spec():
    from repro.cli import _calc_spec, build_parser

    parser = build_parser()
    args = parser.parse_args(["energy", "x.xyz", "--solver", "linscale",
                              "--kt", "0.2", "--backend", "numpy_batched"])
    assert _calc_spec(args)["backend"] == "numpy_batched"

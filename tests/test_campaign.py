"""Campaign framework: matrix loading, expansion, execution, artifacts.

The load-bearing guarantees: a matrix fails *entirely* at expansion
time on any typo (structure kind, scenario name, parameter, calc spec),
a failing *cell* at run time is recorded without aborting the rest,
concurrent cells never collide on scratch structure ids, and the JSONL
and SQLite artifacts round-trip the same queryable rows.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CampaignError
from repro.scenarios import (
    CampaignSpec, QUICK_MATRIX, build_structure, expand_matrix,
    load_campaign_spec, query_cells, read_artifact, run_campaign,
    write_jsonl, write_sqlite,
)

SW_MATRIX = {
    "name": "sw-matrix",
    "calc": {"model": "sw-si"},
    "structures": {
        "si-diamond": {"kind": "diamond", "element": "Si"},
        "si-compressed": {"kind": "diamond", "element": "Si", "a": 5.2},
    },
    "scenarios": [
        {"name": "eos", "params": {"npoints": 5, "amplitude": 0.03}},
        {"name": "vacancy", "structures": ["si-diamond"],
         "grid": {"relax_steps": [0, 2]}},
    ],
}


# -- structure building ----------------------------------------------------

def test_build_structure_kinds():
    assert len(build_structure({"kind": "diamond", "element": "Si"})) == 8
    assert len(build_structure({"kind": "beta-tin"})) == 4
    assert len(build_structure({"kind": "fcc", "element": "Si",
                                "a": 3.89})) == 4
    assert len(build_structure({"kind": "diamond", "repeat": 2})) == 64


def test_build_structure_rejects_unknowns():
    with pytest.raises(CampaignError, match="did you mean 'diamond'"):
        build_structure({"kind": "dimond"}, "s")
    with pytest.raises(CampaignError, match="unknown field"):
        build_structure({"kind": "diamond", "lattice": 5.4}, "s")
    with pytest.raises(CampaignError, match="needs a 'file'"):
        build_structure({"kind": "xyz"}, "s")


# -- spec parsing ----------------------------------------------------------

def test_spec_from_dict_validation():
    with pytest.raises(CampaignError, match="no \\[structures"):
        CampaignSpec.from_dict({"scenarios": [{"name": "eos"}]})
    with pytest.raises(CampaignError, match="no \\[\\[scenarios"):
        CampaignSpec.from_dict(
            {"structures": {"s": {"kind": "diamond"}}})
    with pytest.raises(CampaignError, match="did you mean 'structures'"):
        CampaignSpec.from_dict({"structurs": {}, "scenarios": []})


def test_load_campaign_spec_toml_and_json(tmp_path):
    toml = tmp_path / "m.toml"
    toml.write_text(
        'name = "t"\n[calc]\nmodel = "sw-si"\n'
        '[structures.si]\nkind = "diamond"\n'
        '[[scenarios]]\nname = "eos"\n')
    spec = load_campaign_spec(toml)
    assert spec.name == "t" and spec.calc == {"model": "sw-si"}

    jsn = tmp_path / "m.json"
    jsn.write_text(json.dumps(SW_MATRIX))
    spec = load_campaign_spec(jsn)
    assert spec.name == "sw-matrix" and len(spec.scenarios) == 2

    with pytest.raises(CampaignError, match="must be .toml or .json"):
        load_campaign_spec(tmp_path / "m.yaml")
    bad = tmp_path / "bad.toml"
    bad.write_text("name = [unclosed")
    with pytest.raises(CampaignError, match="does not parse"):
        load_campaign_spec(bad)
    with pytest.raises(CampaignError, match="cannot read"):
        load_campaign_spec(tmp_path / "missing.toml")


# -- matrix expansion ------------------------------------------------------

def test_expand_matrix_cells_and_grid():
    cells = expand_matrix(CampaignSpec.from_dict(SW_MATRIX))
    ids = [c.cell_id for c in cells]
    # eos on both structures, vacancy grid only on si-diamond
    assert "si-diamond/eos" in ids and "si-compressed/eos" in ids
    assert "si-diamond/vacancy[relax_steps=0]" in ids
    assert "si-diamond/vacancy[relax_steps=2]" in ids
    assert len(cells) == 4
    vac0 = next(c for c in cells
                if c.cell_id == "si-diamond/vacancy[relax_steps=0]")
    assert vac0.params["relax_steps"] == 0
    assert vac0.params["index"] == 0               # defaults resolved
    assert vac0.calc_spec == {"model": "sw-si"}


def test_expand_matrix_structure_calc_overrides_campaign_calc():
    matrix = json.loads(json.dumps(SW_MATRIX))
    matrix["structures"]["si-compressed"]["calc"] = {"skin": 1.0}
    cells = expand_matrix(CampaignSpec.from_dict(matrix))
    comp = next(c for c in cells if c.cell_id == "si-compressed/eos")
    assert comp.calc_spec == {"model": "sw-si", "skin": 1.0}


def test_expand_matrix_fails_fast():
    def matrix(**edits):
        m = json.loads(json.dumps(SW_MATRIX))
        m.update(edits)
        return CampaignSpec.from_dict(m)

    with pytest.raises(CampaignError, match="unknown scenario"):
        expand_matrix(matrix(scenarios=[{"name": "eoss"}]))
    with pytest.raises(CampaignError, match="did you mean 'npoints'"):
        expand_matrix(matrix(scenarios=[
            {"name": "eos", "params": {"npoint": 5}}]))
    with pytest.raises(CampaignError, match="unknown structure"):
        expand_matrix(matrix(scenarios=[
            {"name": "eos", "structures": ["si-hexagonal"]}]))
    with pytest.raises(CampaignError, match="non-empty list"):
        expand_matrix(matrix(scenarios=[
            {"name": "eos", "grid": {"npoints": 5}}]))
    with pytest.raises(CampaignError, match="unknown field"):
        expand_matrix(matrix(scenarios=[
            {"name": "eos", "parms": {}}]))
    # a bad calc spec fails at expansion, tagged with the cell
    from repro.errors import ReproError

    with pytest.raises(ReproError,
                       match="campaign cell si-diamond/eos.*unknown model"):
        expand_matrix(matrix(calc={"model": "sw-is"}))


# -- running ---------------------------------------------------------------

@pytest.fixture(scope="module")
def quick_run():
    """One shared quick-matrix run (4 cells, classical SW)."""
    return run_campaign(CampaignSpec.from_dict(QUICK_MATRIX))


def test_run_campaign_quick(quick_run):
    assert quick_run.counts == {"total": 4, "ok": 4, "failed": 0}
    assert quick_run.seconds > 0
    by_id = {r["cell"]: r for r in quick_run.cells}
    eos = by_id["si-diamond/eos"]
    assert eos["status"] == "ok" and eos["ok"] is True
    assert eos["metrics"]["b0_gpa"] == pytest.approx(101.5, abs=3.0)
    assert eos["timings"]["seconds"] > 0
    # compressed cell sits on the repulsive wall: stiffer, higher energy
    comp = by_id["si-compressed/eos"]
    assert comp["metrics"]["b0_gpa"] > eos["metrics"]["b0_gpa"]
    vac = by_id["si-diamond/vacancy"]
    assert 0.0 < vac["metrics"]["formation_ev"] < 8.0
    assert "service_stats" in quick_run.metrics


def test_run_campaign_failing_cell_is_recorded_not_raised():
    matrix = json.loads(json.dumps(SW_MATRIX))
    # an E(V) fit on a shear path is rejected by the sweep op — this
    # cell must fail while its siblings keep running
    matrix["scenarios"].append(
        {"name": "eos", "structures": ["si-diamond"],
         "params": {"mode": "shear", "fit": "birch"}})
    run = run_campaign(CampaignSpec.from_dict(matrix))
    assert run.counts["total"] == 5
    assert run.counts["failed"] == 1
    failed = [r for r in run.cells if r["status"] == "failed"]
    assert len(failed) == 1
    err = failed[0]["error"]
    assert err["op"] == "eos" and "shear" in err["message"]
    # the other 4 cells all succeeded
    assert all(r["metrics"] for r in run.cells if r["status"] == "ok")


def test_run_campaign_threaded_matches_serial(quick_run):
    """nworkers=4 runs the same 4 cells with no scratch-id collisions
    and identical physics."""
    run4 = run_campaign(CampaignSpec.from_dict(QUICK_MATRIX), nworkers=4)
    assert run4.counts == {"total": 4, "ok": 4, "failed": 0}
    serial = {r["cell"]: r["metrics"] for r in quick_run.cells}
    threaded = {r["cell"]: r["metrics"] for r in run4.cells}
    for cell, metrics in serial.items():
        for key, val in metrics.items():
            assert threaded[cell][key] == pytest.approx(val, rel=1e-9), \
                (cell, key)


def test_run_campaign_with_caller_client():
    """A caller-owned client survives the run (no teardown) and ends
    with only the caller's structures resident."""
    from repro.service import BatchClient, BatchService

    svc = BatchService(nworkers=1)
    try:
        client = BatchClient(svc)
        spec = CampaignSpec.from_dict({
            "name": "mini", "calc": {"model": "sw-si"},
            "structures": {"si": {"kind": "diamond"}},
            "scenarios": [{"name": "eos",
                           "params": {"npoints": 5}}]})
        run = run_campaign(spec, client=client)
        assert run.counts["ok"] == 1
        # the campaign's resident load is still addressable
        out = client.evaluate("si", forces=False)
        assert out["natoms"] == 8
    finally:
        svc.close()


# -- artifacts -------------------------------------------------------------

def test_artifact_jsonl_round_trip(quick_run, tmp_path):
    path = write_jsonl(tmp_path / "run.jsonl", quick_run)
    header, cells = read_artifact(path)
    assert header["name"] == "quick-smoke"
    assert header["total"] == 4 and header["ok"] == 4
    assert len(cells) == 4
    assert all(c["kind"] == "cell" for c in cells)
    # every line is plain JSON (numpy scalars were coerced)
    for line in open(path):
        json.loads(line)


def test_artifact_sqlite_round_trip_and_query(quick_run, tmp_path):
    path = write_sqlite(tmp_path / "run.sqlite", quick_run)
    header, cells = read_artifact(path)
    assert header["total"] == 4
    jsonl_path = write_jsonl(tmp_path / "run.jsonl", quick_run)
    _, jcells = read_artifact(jsonl_path)
    assert {c["cell"] for c in cells} == {c["cell"] for c in jcells}
    # queryable by structure/scenario/status through one helper
    eos = query_cells(path, scenario="eos")
    assert {c["structure"] for c in eos} == {"si-diamond", "si-compressed"}
    assert query_cells(path, status="failed") == []
    assert len(query_cells(jsonl_path, structure="si-diamond")) == 2
    # raw SQL works on the artifact too
    import sqlite3

    con = sqlite3.connect(path)
    try:
        n = con.execute(
            "SELECT COUNT(*) FROM cells WHERE scenario='eos' "
            "AND status='ok'").fetchone()[0]
        assert n == 2
    finally:
        con.close()


def test_artifact_sqlite_append(quick_run, tmp_path):
    path = tmp_path / "runs.sqlite"
    write_sqlite(path, quick_run)
    write_sqlite(path, quick_run)
    import sqlite3

    con = sqlite3.connect(path)
    try:
        assert con.execute(
            "SELECT COUNT(*) FROM campaigns").fetchone()[0] == 2
    finally:
        con.close()


def test_read_artifact_errors(tmp_path):
    with pytest.raises(CampaignError, match="unknown artifact format"):
        read_artifact(tmp_path / "run.csv")
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(CampaignError, match="no campaign header"):
        read_artifact(empty)


# -- CLI + example matrix --------------------------------------------------

def test_cli_campaign_quick(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "quick.jsonl"
    db = tmp_path / "quick.sqlite"
    assert main(["campaign", "--quick", "-o", str(out),
                 "--sqlite", str(db)]) == 0
    printed = capsys.readouterr().out
    assert "4 cells" in printed and "ok" in printed
    header, cells = read_artifact(out)
    assert header["ok"] == 4
    assert read_artifact(db)[0]["ok"] == 4


def test_cli_campaign_list_scenarios(capsys):
    from repro.cli import main

    assert main(["campaign", "--list-scenarios"]) == 0
    out = capsys.readouterr().out
    for name in ("eos", "vacancy", "elastic", "phonons", "melt-quench"):
        assert name in out
    assert "npoints" in out                       # param schema shown


def test_cli_campaign_needs_matrix(capsys):
    from repro.cli import main

    assert main(["campaign"]) == 1
    assert "matrix file" in capsys.readouterr().err


def test_cli_campaign_strict_flags_failures(tmp_path, capsys):
    from repro.cli import main

    matrix = json.loads(json.dumps(SW_MATRIX))
    matrix["scenarios"] = [
        {"name": "eos", "structures": ["si-diamond"],
         "params": {"mode": "shear", "fit": "birch"}}]
    mfile = tmp_path / "fail.json"
    mfile.write_text(json.dumps(matrix))
    out = tmp_path / "fail.jsonl"
    assert main(["campaign", str(mfile), "-o", str(out)]) == 0
    assert main(["campaign", str(mfile), "-o", str(out),
                 "--strict"]) == 1
    _, cells = read_artifact(out)
    assert cells[0]["status"] == "failed"
    assert "shear" in cells[0]["error"]["message"]


def test_example_matrix_expands():
    """examples/campaign_si.toml stays valid: 3 phases, 9 cells, the
    deliberate shear-fit failure cell included."""
    spec = load_campaign_spec("examples/campaign_si.toml")
    cells = expand_matrix(spec)
    assert len(cells) == 9
    ids = {c.cell_id for c in cells}
    assert {"si-diamond/eos", "si-beta-tin/eos", "si-fcc/eos",
            "si-diamond/vacancy[relax_steps=0]",
            "si-diamond/vacancy[relax_steps=10]",
            "si-diamond/phonons", "si-beta-tin/phonons",
            "si-diamond/elastic"} <= ids
    shear = [c for c in cells if c.structure == "si-fcc"
             and c.params.get("mode") == "shear"]
    assert len(shear) == 1 and shear[0].params["fit"] == "birch"

"""Mulliken populations/bond orders and graphene nanoribbons."""

import numpy as np
import pytest

from repro.errors import ElectronicError, GeometryError
from repro.geometry import Atoms, Cell, bulk_silicon, graphene_sheet, rattle
from repro.geometry.nanoribbons import armchair_nanoribbon, zigzag_nanoribbon
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon, HarrisonModel, NonOrthogonalSilicon, TBCalculator, XuCarbon
from repro.tb.bands import band_structure
from repro.tb.populations import (
    analyze_populations, bond_order_matrix,
    mulliken_populations,
)


# ---------------------------------------------------------------- populations
def test_populations_sum_to_electron_count():
    at = rattle(bulk_silicon(), 0.05, seed=1)
    out = analyze_populations(at, TBCalculator(GSPSilicon()))
    assert out["populations"].sum() == pytest.approx(32.0, abs=1e-9)
    assert out["charges"].sum() == pytest.approx(0.0, abs=1e-9)


def test_bulk_crystal_atoms_neutral():
    at = bulk_silicon()
    out = analyze_populations(at, TBCalculator(GSPSilicon()))
    np.testing.assert_allclose(out["charges"], 0.0, atol=1e-9)


def test_nonorthogonal_populations_include_overlap():
    at = rattle(bulk_silicon(), 0.04, seed=2)
    out = analyze_populations(at, TBCalculator(NonOrthogonalSilicon()))
    assert out["populations"].sum() == pytest.approx(32.0, abs=1e-8)


def test_heteronuclear_charge_transfer_direction():
    """CH4 with Harrison term values: H(1s) at −13.6 eV lies *below* the
    carbon sp³ hybrid energy (E_s + 3E_p)/4 = −11.1 eV, so in this
    minimal-basis Mulliken picture hydrogen draws charge — direction set
    by the model's term values, symmetry exact."""
    d = 1.09
    t = d / np.sqrt(3)
    pos = [[0, 0, 0], [t, t, t], [-t, -t, t], [-t, t, -t], [t, -t, -t]]
    at = Atoms(["C", "H", "H", "H", "H"], pos, cell=Cell.cubic(14, pbc=False))
    out = analyze_populations(at, TBCalculator(HarrisonModel(), kT=0.05))
    assert out["charges"][0] > 0           # C donates
    assert np.all(out["charges"][1:] < 0)  # H gains
    # symmetry: all hydrogens identical
    np.testing.assert_allclose(out["charges"][1:], out["charges"][1],
                               atol=1e-6)


def test_bond_orders_follow_bond_graph():
    g = graphene_sheet(2, 2)
    out = analyze_populations(g, TBCalculator(XuCarbon()))
    bo = out["bond_orders"]
    np.testing.assert_allclose(bo, bo.T, atol=1e-12)
    assert np.all(np.diag(bo) == 0.0)
    nl = neighbor_list(g, 1.6)
    bonded = bo[nl.i, nl.j]
    # aromatic bonds: order between single and double (~4/3); Γ-only
    # folding of the small cell splits them into symmetry classes, so
    # assert the band rather than exact equality
    assert np.all(bonded > 1.0) and np.all(bonded < 1.7)
    assert bonded.mean() == pytest.approx(4.0 / 3.0, abs=0.25)
    # non-bonded pairs carry much less
    mask = np.ones_like(bo, dtype=bool)
    mask[nl.i, nl.j] = mask[nl.j, nl.i] = False
    np.fill_diagonal(mask, False)
    assert bo[mask].max() < 0.3 * bonded.min()


def test_population_shape_validation():
    at = bulk_silicon()
    with pytest.raises(ElectronicError):
        mulliken_populations(at, GSPSilicon(), np.eye(10))
    with pytest.raises(ElectronicError):
        bond_order_matrix(at, GSPSilicon(), np.eye(10))


def test_charges_respond_to_compression():
    """Breaking symmetry moves charge; total stays fixed."""
    at = rattle(bulk_silicon(), 0.15, seed=5)
    out = analyze_populations(at, TBCalculator(GSPSilicon()))
    assert np.abs(out["charges"]).max() > 0.01
    assert out["charges"].sum() == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------- ribbons
def test_zigzag_ribbon_geometry():
    rib = zigzag_nanoribbon(4, cells=2)
    assert len(rib) == 16
    nl = neighbor_list(rib, 1.6)
    np.testing.assert_allclose(nl.distances, 1.42, atol=1e-9)
    coord = nl.coordination()
    assert sorted(np.unique(coord)) == [2, 3]
    # zigzag: 2 two-coordinated edge atoms per translational cell
    assert int((coord == 2).sum()) == 4


def test_armchair_ribbon_geometry():
    rib = armchair_nanoribbon(5, cells=1)
    assert len(rib) == 10
    nl = neighbor_list(rib, 1.6)
    np.testing.assert_allclose(nl.distances, 1.42, atol=1e-9)
    assert list(rib.cell.pbc) == [True, False, False]


def test_ribbon_width_validation():
    with pytest.raises(GeometryError):
        zigzag_nanoribbon(1)
    with pytest.raises(GeometryError):
        armchair_nanoribbon(1)


def test_zigzag_edge_band_flat_near_fermi():
    """The zigzag signature: near-zero HOMO-LUMO separation over the
    inner BZ (the flat edge band), opening toward the zone edge."""
    rib = zigzag_nanoribbon(4)
    ks = [0.0, 0.2, 0.35, 0.5]
    bands = band_structure(rib, XuCarbon(), [[k, 0, 0] for k in ks])
    nocc = 4 * len(rib) // 2
    gaps = bands[:, nocc] - bands[:, nocc - 1]
    assert gaps[0] < 0.1          # flat band pinned at E_F
    assert gaps[-1] > 1.0         # dispersive at X
    assert gaps[0] < gaps[-1]


def test_armchair_metallic_family():
    """N = 5 armchair (3p+2 family) is metallic in nearest-neighbour TB."""
    rib = armchair_nanoribbon(5)
    bands = band_structure(rib, XuCarbon(),
                           [[0.0, 0, 0], [0.25, 0, 0], [0.5, 0, 0]])
    nocc = 4 * len(rib) // 2
    gaps = bands[:, nocc] - bands[:, nocc - 1]
    assert gaps.min() < 0.25

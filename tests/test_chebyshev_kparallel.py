"""Chebyshev Fermi-operator expansion and k-point parallel model."""

import numpy as np
import pytest

from repro.errors import ElectronicError, ParallelError
from repro.geometry import bulk_silicon, rattle
from repro.neighbors import neighbor_list
from repro.parallel import MachineSpec
from repro.parallel.kpoints import kpoint_parallel_time, kpoint_speedup
from repro.tb import GSPSilicon, TBCalculator
from repro.tb.chebyshev import (
    chebyshev_coefficients, evaluate_matrix_polynomial,
    fermi_operator_expansion,
)
from repro.tb.hamiltonian import build_hamiltonian
from repro.tb.occupations import fermi_function


def si_h(seed=1):
    at = rattle(bulk_silicon(), 0.05, seed=seed)
    m = GSPSilicon()
    H, _ = build_hamiltonian(at, m, neighbor_list(at, m.cutoff))
    return at, H


# ---------------------------------------------------------------- coefficients
def test_coefficients_reproduce_scalar_function():
    c = chebyshev_coefficients(np.tanh, 60)
    x = np.linspace(-1, 1, 101)
    # Clenshaw evaluation via cos(k arccos x)
    tk = np.cos(np.outer(np.arange(len(c)), np.arccos(x)))
    approx = c @ tk
    np.testing.assert_allclose(approx, np.tanh(x), atol=1e-10)


def test_coefficients_even_function_odd_terms_vanish():
    c = chebyshev_coefficients(lambda x: x * x, 20)
    np.testing.assert_allclose(c[1::2], 0.0, atol=1e-14)
    assert c[0] == pytest.approx(0.5)
    assert c[2] == pytest.approx(0.5)


def test_matrix_polynomial_matches_eigendecomposition():
    rng = np.random.default_rng(3)
    a = rng.normal(size=(20, 20))
    H = 0.5 * (a + a.T)
    H /= np.abs(np.linalg.eigvalsh(H)).max() * 1.05  # spectrum in [-1,1]
    c = chebyshev_coefficients(np.tanh, 80)
    poly = evaluate_matrix_polynomial(H, c)
    eps, C = np.linalg.eigh(H)
    exact = (C * np.tanh(eps)) @ C.T
    np.testing.assert_allclose(poly, exact, atol=1e-9)


# ---------------------------------------------------------------- FOE
def test_foe_matches_exact_smearing():
    at, H = si_h()
    kT = 0.2
    ref = TBCalculator(GSPSilicon(), kT=kT).compute(at)
    res = fermi_operator_expansion(H, 32.0, kT, order=300)
    assert res["n_electrons"] == pytest.approx(32.0, abs=1e-6)
    assert res["band_energy"] == pytest.approx(ref["band_energy"], abs=5e-3)
    # density matrix against the exact smeared projector
    eps, C = np.linalg.eigh(H)
    rho_exact = (C * fermi_function(eps, res["mu"], kT)) @ C.T
    np.testing.assert_allclose(res["rho"], rho_exact, atol=1e-3)


def test_foe_accuracy_improves_with_order():
    at, H = si_h(seed=2)
    kT = 0.3
    ref = TBCalculator(GSPSilicon(), kT=kT).compute(at)
    errs = []
    for order in (60, 150, 400):
        res = fermi_operator_expansion(H, 32.0, kT, order=order)
        errs.append(abs(res["band_energy"] - ref["band_energy"]))
    assert errs[2] < errs[0]


def test_foe_explicit_mu_skips_search():
    at, H = si_h(seed=3)
    kT = 0.25
    ref = TBCalculator(GSPSilicon(), kT=kT).compute(at)
    res = fermi_operator_expansion(H, 32.0, kT, order=250,
                                   mu=ref["fermi_level"])
    assert res["mu"] == ref["fermi_level"]
    assert res["n_electrons"] == pytest.approx(32.0, abs=0.05)


def test_foe_validation():
    _, H = si_h()
    with pytest.raises(ElectronicError):
        fermi_operator_expansion(H, 32.0, kT=0.0)
    with pytest.raises(ElectronicError):
        fermi_operator_expansion(np.zeros((2, 3)), 2.0, kT=0.1)
    with pytest.raises(ElectronicError):
        chebyshev_coefficients(np.tanh, 0)


# ---------------------------------------------------------------- k-parallel
def test_kpoint_speedup_near_perfect_until_ceiling():
    rows = kpoint_speedup(256, 8, [1, 2, 4, 8, 16], MachineSpec.paragon())
    s = {r["nproc"]: r["speedup"] for r in rows}
    assert s[2] == pytest.approx(2.0, rel=0.02)
    assert s[8] == pytest.approx(8.0, rel=0.05)
    # beyond n_k: no further gain
    assert s[16] == pytest.approx(s[8], rel=0.05)


def test_kpoint_ceil_granularity():
    # 6 k-points on 4 ranks: one rank carries 2 → speedup 3, not 4
    rows = kpoint_speedup(256, 6, [4], MachineSpec.paragon())
    assert rows[0]["speedup"] == pytest.approx(3.0, rel=0.05)
    assert rows[0]["kpoints_per_rank"] == 2


def test_kpoint_validation():
    with pytest.raises(ParallelError):
        kpoint_parallel_time(64, 0, 4, MachineSpec.paragon())


def test_mu_rounds_derived_from_tolerance():
    """The allreduce count tracks the requested μ tolerance instead of
    the old hardcoded 40 rounds: halving per round, so looser tolerances
    cost fewer rounds and the default lands near the historic value."""
    from repro.parallel.kpoints import mu_bisection_rounds

    assert mu_bisection_rounds(1e-10, 20.0) == int(
        np.ceil(np.log2(20.0 / 1e-10)))
    # one fewer halving order of magnitude ≈ log2(10) ≈ 3.3 fewer rounds
    assert mu_bisection_rounds(1e-6, 20.0) < mu_bisection_rounds(1e-10, 20.0)
    assert mu_bisection_rounds(30.0, 20.0) == 1      # looser than bracket
    with pytest.raises(ParallelError):
        mu_bisection_rounds(0.0, 20.0)


def test_kpoint_time_reports_and_uses_mu_rounds():
    spec = MachineSpec.paragon()
    tight = kpoint_parallel_time(128, 4, 4, spec, mu_tol=1e-12)
    loose = kpoint_parallel_time(128, 4, 4, spec, mu_tol=1e-2)
    assert tight["mu_rounds"] > loose["mu_rounds"]
    # more scalar allreduces → strictly more communication time
    assert tight["comm_seconds"] > loose["comm_seconds"]

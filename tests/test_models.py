"""TB model zoo: species data, radial functions, calibrated properties."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.tb.models import (
    GSPSilicon, HarrisonModel, NonOrthogonalSilicon, XuCarbon,
    get_model, gsp_scaling, quintic_switch,
)
from repro.tb.models.base import apply_switch


# ---------------------------------------------------------------- registry
def test_registry_known_models():
    assert isinstance(get_model("gsp-si"), GSPSilicon)
    assert isinstance(get_model("xu-c"), XuCarbon)
    assert isinstance(get_model("harrison"), HarrisonModel)
    assert isinstance(get_model("nonortho-si"), NonOrthogonalSilicon)


def test_registry_unknown():
    with pytest.raises(KeyError, match="known"):
        get_model("dft")


# ---------------------------------------------------------------- radial forms
def test_gsp_scaling_unity_at_r0():
    s, _ = gsp_scaling(np.array([2.36]), 2.36, 2.0, 6.48, 3.67)
    assert s[0] == pytest.approx(1.0)


def test_gsp_scaling_monotone_decreasing():
    r = np.linspace(1.8, 4.0, 50)
    s, ds = gsp_scaling(r, 2.36, 2.0, 6.48, 3.67)
    assert np.all(np.diff(s) < 0)
    assert np.all(ds < 0)


def test_gsp_scaling_derivative_finite_difference():
    r = np.array([2.0, 2.5, 3.0, 3.5])
    h = 1e-6
    s, ds = gsp_scaling(r, 2.36, 2.0, 6.48, 3.67)
    sp, _ = gsp_scaling(r + h, 2.36, 2.0, 6.48, 3.67)
    sm, _ = gsp_scaling(r - h, 2.36, 2.0, 6.48, 3.67)
    np.testing.assert_allclose(ds, (sp - sm) / (2 * h), rtol=1e-6)


def test_quintic_switch_limits():
    r = np.array([1.0, 2.0, 3.0])
    s, ds = quintic_switch(r, 2.0, 3.0)
    assert s[0] == 1.0 and ds[0] == 0.0
    assert s[2] == 0.0 and ds[2] == 0.0


def test_quintic_switch_midpoint_half():
    s, _ = quintic_switch(np.array([2.5]), 2.0, 3.0)
    assert s[0] == pytest.approx(0.5)


def test_quintic_switch_derivative_continuity():
    eps = 1e-7
    for edge in (2.0, 3.0):
        s1, d1 = quintic_switch(np.array([edge - eps]), 2.0, 3.0)
        s2, d2 = quintic_switch(np.array([edge + eps]), 2.0, 3.0)
        assert abs(d1[0] - d2[0]) < 1e-4
        assert abs(s1[0] - s2[0]) < 1e-6


def test_quintic_switch_bad_window():
    with pytest.raises(ModelError):
        quintic_switch(np.array([1.0]), 3.0, 2.0)


def test_apply_switch_product_rule():
    r = np.array([2.2, 2.5, 2.9])
    v = r**2
    dv = 2 * r
    sv, sdv = apply_switch(v, dv, r, 2.0, 3.0)
    h = 1e-6
    vp, _ = apply_switch((r + h)**2, 2 * (r + h), r + h, 2.0, 3.0)
    vm, _ = apply_switch((r - h)**2, 2 * (r - h), r - h, 2.0, 3.0)
    np.testing.assert_allclose(sdv, (vp - vm) / (2 * h), rtol=1e-5)


# ---------------------------------------------------------------- GSP silicon
def test_gsp_species_data(gsp):
    assert gsp.norb("Si") == 4
    assert gsp.n_electrons("Si") == 4.0
    np.testing.assert_allclose(gsp.onsite("Si"), [-5.25, 1.20, 1.20, 1.20])


def test_gsp_rejects_carbon(gsp):
    with pytest.raises(ModelError, match="does not support"):
        gsp.check_species(["C"])
    with pytest.raises(ModelError):
        gsp.norb("C")


def test_gsp_hopping_reference_values(gsp):
    V, dV = gsp.hopping("Si", "Si", np.array([gsp.R0]))
    assert V["sss"][0] == pytest.approx(-1.820)
    assert V["sps"][0] == pytest.approx(1.960)
    assert V["pps"][0] == pytest.approx(3.060)
    assert V["ppp"][0] == pytest.approx(-0.870)
    assert V["pss"][0] == V["sps"][0]


def test_gsp_hopping_vanishes_at_cutoff(gsp):
    V, dV = gsp.hopping("Si", "Si", np.array([gsp.cutoff]))
    for ch in V:
        assert V[ch][0] == 0.0
        assert dV[ch][0] == 0.0


def test_gsp_repulsion_positive_and_decaying(gsp):
    r = np.linspace(2.0, 3.5, 20)
    phi, dphi = gsp.pair_repulsion("Si", "Si", r)
    assert np.all(phi > 0)
    assert np.all(dphi < 0)


def test_gsp_default_embedding_identity(gsp):
    x = np.array([0.0, 1.0, 5.0])
    f, df = gsp.embedding("Si", x)
    np.testing.assert_allclose(f, x)
    np.testing.assert_allclose(df, 1.0)


def test_gsp_bad_switch_window():
    with pytest.raises(ModelError):
        GSPSilicon(r_on=4.2, r_off=4.0)


# ---------------------------------------------------------------- XWCH carbon
def test_xu_species_data(xu):
    assert xu.norb("C") == 4
    np.testing.assert_allclose(xu.onsite("C"), [-2.99, 3.71, 3.71, 3.71])


def test_xu_hopping_reference_values(xu):
    V, _ = xu.hopping("C", "C", np.array([xu.R0]))
    assert V["sss"][0] == pytest.approx(-5.0)
    assert V["sps"][0] == pytest.approx(4.7)
    assert V["pps"][0] == pytest.approx(5.5)
    assert V["ppp"][0] == pytest.approx(-1.55)


def test_xu_embedding_polynomial_derivative(xu):
    x = np.linspace(1.0, 30.0, 7)
    f, df = xu.embedding("C", x)
    h = 1e-6
    fp, _ = xu.embedding("C", x + h)
    fm, _ = xu.embedding("C", x - h)
    np.testing.assert_allclose(df, (fp - fm) / (2 * h), rtol=1e-6)


def test_xu_diamond_equilibrium_near_experiment():
    """The model's diamond minimum must fall within 1% of 3.567 Å."""
    from repro.geometry import diamond_cubic
    from repro.tb import TBCalculator

    es = {}
    for a in (3.50, 3.567, 3.63):
        es[a] = TBCalculator(XuCarbon(), kpts=3, kT=0.1).get_potential_energy(
            diamond_cubic("C", a=a)) / 8
    assert es[3.567] < es[3.50]
    assert es[3.567] < es[3.63]


def test_xu_graphene_slightly_favored_over_diamond():
    """XWCH orders graphene ≤ diamond (near-degenerate, graphite wins)."""
    from repro.geometry import diamond_cubic, graphene_sheet
    from repro.tb import TBCalculator

    e_dia = TBCalculator(XuCarbon(), kpts=4, kT=0.1).get_potential_energy(
        diamond_cubic("C")) / 8
    g = graphene_sheet(2, 2)
    e_gra = TBCalculator(XuCarbon(), kpts=(4, 4, 1), kT=0.1
                         ).get_potential_energy(g) / len(g)
    assert e_gra < e_dia + 0.05


# ---------------------------------------------------------------- GSP calibration
def test_gsp_silicon_equilibrium_lattice_constant():
    """Refit repulsion: E(a) minimal at the experimental a₀ = 5.431."""
    from repro.geometry import diamond_cubic
    from repro.tb import TBCalculator

    es = {}
    for a in (5.35, 5.431, 5.51):
        es[a] = TBCalculator(GSPSilicon(), kpts=3, kT=0.05
                             ).get_potential_energy(diamond_cubic("Si", a=a)) / 8
    assert es[5.431] < es[5.35]
    assert es[5.431] < es[5.51]


def test_gsp_silicon_cohesive_energy():
    from repro.geometry import diamond_cubic
    from repro.tb import TBCalculator

    e = TBCalculator(GSPSilicon(), kpts=4, kT=0.05).get_potential_energy(
        diamond_cubic("Si")) / 8
    ecoh = e - (2 * (-5.25) + 2 * 1.20)
    assert ecoh == pytest.approx(-4.63, abs=0.05)


# ---------------------------------------------------------------- Harrison
def test_harrison_hydrogen_s_only(harrison):
    assert harrison.norb("H") == 1
    assert harrison.norb("C") == 4
    assert harrison.onsite("H").shape == (1,)


def test_harrison_heteronuclear_channel_asymmetry(harrison):
    r = np.array([1.1])
    V, _ = harrison.hopping("H", "C", r)
    # s-only H: sps (s on H, p on C) alive; pss (p on H) dead
    assert V["sps"][0] != 0.0
    assert V["pss"][0] == 0.0
    assert V["pps"][0] == 0.0 and V["ppp"][0] == 0.0
    Vr, _ = harrison.hopping("C", "H", r)
    assert Vr["pss"][0] == pytest.approx(V["sps"][0])
    assert Vr["sps"][0] == 0.0


def test_harrison_inverse_square_scaling(harrison):
    r1, r2 = np.array([1.0]), np.array([2.0])
    V1, _ = harrison.hopping("C", "C", r1)
    V2, _ = harrison.hopping("C", "C", r2)
    assert V1["sss"][0] / V2["sss"][0] == pytest.approx(4.0, rel=1e-6)


def test_harrison_invalid_construction():
    with pytest.raises(ModelError):
        HarrisonModel(cutoff=0.3, switch_width=0.4)


# ---------------------------------------------------------------- non-orthogonal
def test_nonortho_overlap_channels(nonortho):
    S, dS = nonortho.overlap("Si", "Si", np.array([nonortho.R0]))
    assert S["sss"][0] == pytest.approx(0.12)
    assert S["pss"][0] == S["sps"][0]


def test_nonortho_flag(nonortho, gsp):
    assert not nonortho.orthogonal
    assert gsp.orthogonal
    assert gsp.overlap("Si", "Si", np.array([2.3])) is None


def test_describe_mentions_kind(nonortho, gsp):
    assert "non-orthogonal" in nonortho.describe()
    assert "orthogonal" in gsp.describe()

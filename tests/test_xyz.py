"""XYZ / extended-XYZ round trips and error handling."""

import io

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.geometry import Atoms, Cell, bulk_silicon, read_xyz, write_xyz
from repro.geometry.xyz import iread_xyz


def roundtrip(atoms):
    buf = io.StringIO()
    write_xyz(buf, atoms)
    buf.seek(0)
    return read_xyz(buf)


def test_roundtrip_positions_symbols():
    at = bulk_silicon()
    back = roundtrip(at)
    assert back.symbols == at.symbols
    np.testing.assert_allclose(back.positions, at.positions, atol=1e-9)


def test_roundtrip_cell_and_pbc():
    at = Atoms(["C"], [[1, 2, 3]], cell=Cell(np.diag([4, 5, 6]),
                                             pbc=(True, False, True)))
    back = roundtrip(at)
    np.testing.assert_allclose(back.cell.matrix, at.cell.matrix)
    assert list(back.cell.pbc) == [True, False, True]


def test_multi_frame_read(tmp_path):
    p = tmp_path / "traj.xyz"
    a = bulk_silicon()
    write_xyz(p, a)
    a2 = a.copy()
    a2.positions += 0.1
    write_xyz(p, a2, append=True)
    frames = list(iread_xyz(str(p)))
    assert len(frames) == 2
    np.testing.assert_allclose(frames[1].positions - frames[0].positions, 0.1)


def test_read_negative_index(tmp_path):
    p = tmp_path / "t.xyz"
    a = bulk_silicon()
    write_xyz(p, a)
    b = a.copy(); b.positions += 1.0
    write_xyz(p, b, append=True)
    last = read_xyz(str(p), index=-1)
    np.testing.assert_allclose(last.positions, b.positions, atol=1e-9)


def test_read_out_of_range_frame(tmp_path):
    p = tmp_path / "t.xyz"
    write_xyz(p, bulk_silicon())
    with pytest.raises(IOFormatError, match="out of range"):
        read_xyz(str(p), index=3)


def test_empty_input_raises():
    with pytest.raises(IOFormatError, match="no frames"):
        read_xyz(io.StringIO(""))


def test_malformed_count_raises():
    with pytest.raises(IOFormatError, match="atom count"):
        read_xyz(io.StringIO("abc\ncomment\n"))


def test_truncated_frame_raises():
    with pytest.raises(IOFormatError, match="truncated"):
        read_xyz(io.StringIO("3\ncomment\nC 0 0 0\n"))


def test_malformed_atom_line_raises():
    with pytest.raises(IOFormatError, match="malformed"):
        read_xyz(io.StringIO("1\ncomment\nC 0 0\n"))


def test_bad_lattice_raises():
    content = '1\nLattice="1 2 3"\nC 0 0 0\n'
    with pytest.raises(IOFormatError, match="9 numbers"):
        read_xyz(io.StringIO(content))


def test_plain_xyz_without_lattice():
    at = read_xyz(io.StringIO("1\njust a comment\nC 1.0 2.0 3.0\n"))
    assert at.symbols == ["C"]
    assert not at.cell.periodic


def test_comment_preserved_fields(tmp_path):
    p = tmp_path / "c.xyz"
    write_xyz(p, bulk_silicon(), comment="step=5 time_fs=5.0")
    text = p.read_text()
    assert "step=5" in text and "Lattice=" in text


# -- regression: velocities, metadata and pbc round trips --------------------
def test_velocities_round_trip_exact():
    at = bulk_silicon()
    rng = np.random.default_rng(4)
    at.velocities[:] = rng.normal(scale=0.037, size=at.velocities.shape)
    back = roundtrip(at)
    # repr-exact velocity columns: bit-exact, not just approximate
    np.testing.assert_array_equal(back.velocities, at.velocities)
    assert "Properties=species:S:1:pos:R:3:vel:R:3" in _dump(at)


def test_zero_velocities_omit_columns():
    at = bulk_silicon()
    assert not np.any(at.velocities)
    assert ":vel:" not in _dump(at)
    np.testing.assert_array_equal(roundtrip(at).velocities, 0.0)


def _dump(atoms, **kw):
    buf = io.StringIO()
    write_xyz(buf, atoms, **kw)
    return buf.getvalue()


def test_lattice_round_trip_exact():
    # repr-formatted lattice: NPT cells with non-round entries survive
    m = np.array([[5.4310000000000001, 0.0, 1e-13],
                  [0.1234567891234567, 5.43, 0.0],
                  [0.0, 0.0, 5.4300000000000104]])
    at = Atoms(["C"], [[0.1, 0.2, 0.3]], cell=Cell(m))
    np.testing.assert_array_equal(roundtrip(at).cell.matrix, m)


def test_metadata_keys_round_trip(tmp_path):
    from repro.geometry.xyz import iread_frames

    p = tmp_path / "m.xyz"
    write_xyz(p, bulk_silicon(),
              comment="step=12 time_fs=0.30000000000000004 epot=-34.625")
    ((at, info),) = list(iread_frames(str(p)))
    assert info["step"] == 12
    assert info["time_fs"] == 0.30000000000000004
    assert info["epot"] == -34.625


def test_pbc_flag_without_lattice_round_trips_nonperiodic():
    # regression: an explicit pbc="F F F" cluster frame used to be
    # silently treated the same as no flag at all
    at = read_xyz(io.StringIO('1\npbc="F F F"\nC 1.0 2.0 3.0\n'))
    assert not at.cell.periodic
    assert tuple(at.cell.pbc) == (False, False, False)


def test_periodic_pbc_without_lattice_rejected():
    with pytest.raises(IOFormatError, match="[Ll]attice"):
        read_xyz(io.StringIO('1\npbc="T T T"\nC 1.0 2.0 3.0\n'))


def test_nonperiodic_atoms_written_with_pbc_flag():
    at = Atoms(["C"], [[1.0, 2.0, 3.0]])
    text = _dump(at)
    assert 'pbc="F F F"' in text
    back = roundtrip(at)
    assert not back.cell.periodic


def test_ase_readable_extended_xyz(tmp_path):
    ase = pytest.importorskip("ase.io")
    at = bulk_silicon()
    at.velocities[:] = 0.01
    p = tmp_path / "ase.xyz"
    write_xyz(p, at)
    ase_at = ase.read(str(p))
    np.testing.assert_allclose(ase_at.positions, at.positions, atol=1e-9)
    np.testing.assert_allclose(ase_at.cell[:], at.cell.matrix, atol=1e-12)
    vel = ase_at.arrays.get("vel")
    assert vel is not None
    np.testing.assert_array_equal(vel, at.velocities)

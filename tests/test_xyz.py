"""XYZ / extended-XYZ round trips and error handling."""

import io

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.geometry import Atoms, Cell, bulk_silicon, read_xyz, write_xyz
from repro.geometry.xyz import iread_xyz


def roundtrip(atoms):
    buf = io.StringIO()
    write_xyz(buf, atoms)
    buf.seek(0)
    return read_xyz(buf)


def test_roundtrip_positions_symbols():
    at = bulk_silicon()
    back = roundtrip(at)
    assert back.symbols == at.symbols
    np.testing.assert_allclose(back.positions, at.positions, atol=1e-9)


def test_roundtrip_cell_and_pbc():
    at = Atoms(["C"], [[1, 2, 3]], cell=Cell(np.diag([4, 5, 6]),
                                             pbc=(True, False, True)))
    back = roundtrip(at)
    np.testing.assert_allclose(back.cell.matrix, at.cell.matrix)
    assert list(back.cell.pbc) == [True, False, True]


def test_multi_frame_read(tmp_path):
    p = tmp_path / "traj.xyz"
    a = bulk_silicon()
    write_xyz(p, a)
    a2 = a.copy()
    a2.positions += 0.1
    write_xyz(p, a2, append=True)
    frames = list(iread_xyz(str(p)))
    assert len(frames) == 2
    np.testing.assert_allclose(frames[1].positions - frames[0].positions, 0.1)


def test_read_negative_index(tmp_path):
    p = tmp_path / "t.xyz"
    a = bulk_silicon()
    write_xyz(p, a)
    b = a.copy(); b.positions += 1.0
    write_xyz(p, b, append=True)
    last = read_xyz(str(p), index=-1)
    np.testing.assert_allclose(last.positions, b.positions, atol=1e-9)


def test_read_out_of_range_frame(tmp_path):
    p = tmp_path / "t.xyz"
    write_xyz(p, bulk_silicon())
    with pytest.raises(IOFormatError, match="out of range"):
        read_xyz(str(p), index=3)


def test_empty_input_raises():
    with pytest.raises(IOFormatError, match="no frames"):
        read_xyz(io.StringIO(""))


def test_malformed_count_raises():
    with pytest.raises(IOFormatError, match="atom count"):
        read_xyz(io.StringIO("abc\ncomment\n"))


def test_truncated_frame_raises():
    with pytest.raises(IOFormatError, match="truncated"):
        read_xyz(io.StringIO("3\ncomment\nC 0 0 0\n"))


def test_malformed_atom_line_raises():
    with pytest.raises(IOFormatError, match="malformed"):
        read_xyz(io.StringIO("1\ncomment\nC 0 0\n"))


def test_bad_lattice_raises():
    content = '1\nLattice="1 2 3"\nC 0 0 0\n'
    with pytest.raises(IOFormatError, match="9 numbers"):
        read_xyz(io.StringIO(content))


def test_plain_xyz_without_lattice():
    at = read_xyz(io.StringIO("1\njust a comment\nC 1.0 2.0 3.0\n"))
    assert at.symbols == ["C"]
    assert not at.cell.periodic


def test_comment_preserved_fields(tmp_path):
    p = tmp_path / "c.xyz"
    write_xyz(p, bulk_silicon(), comment="step=5 time_fs=5.0")
    text = p.read_text()
    assert "step=5" in text and "Lattice=" in text

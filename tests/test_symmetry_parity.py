"""Cross-solver × cross-grid × cross-structure symmetry parity matrix.

Symmetry-reduced k sampling is exactly the kind of change that is cheap
to get 99 % right and silently wrong on forces, so this suite pins the
whole matrix against one reference — the **full-grid exact
diagonalisation** — for every structure:

* ``diag`` on ``trs`` / ``symmetry`` grids must match the full grid to
  1e-10 (an exact identity: the wedge is a re-grouping of the same sum,
  plus a linear force scattering);
* ``linscale`` (region FOE) on every grid must match the diag reference
  to the engine's own 1e-6 eV/Å contract — and, grid-vs-grid *within*
  linscale, to 1e-9 (the folding itself adds no FOE error);
* a symmetry-broken structure must degrade the wedge gracefully to the
  time-reversal-only count, never misfold.

Structures: 8-atom diamond Si (O_h, 48 ops — gapped), 8-atom β-tin Si
(D_4h, 16 ops — the canonical small-cell metal), diamond with one atom
displaced along [111] (C_3v, 6 ops — symmetric *with nonzero forces*,
the case that catches wrong rotation/permutation scattering), and a
rattled cell (trivial group).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import beta_tin_silicon, bulk_silicon, rattle, supercell
from repro.linscale import LinearScalingCalculator
from repro.tb import GSPSilicon, TBCalculator
from repro.tb.symmetry import crystal_symmetry_ops, irreducible_kpoints

from tests.helpers import assert_forces_match

KGRID = 2          # full 2×2×2 = 8 points
EXACT = 1e-10      # identity tolerance (diag vs diag, linscale vs linscale)
FOE = 1e-6         # region-FOE vs exact-diag contract (eV/Å, eV/atom)


def _diamond():
    return bulk_silicon()


def _beta_tin8():
    return supercell(beta_tin_silicon(), (1, 1, 2))


def _displaced():
    at = bulk_silicon()
    at.positions[4] += 0.06 * np.ones(3) / np.sqrt(3)   # along [111]
    return at


def _rattled():
    return rattle(bulk_silicon(), 0.05, seed=17)


#: name → (builder, kT, expected op count, expected wedge size @ 2×2×2)
STRUCTURES = {
    "diamond": (_diamond, 0.2, 48, 1),
    "beta-tin": (_beta_tin8, 0.25, 16, 1),
    "displaced-111": (_displaced, 0.2, 6, 2),
    "rattled": (_rattled, 0.2, 1, 4),     # == the TRS-only count
}

GRIDS = ("full", "trs", "symmetry")


@pytest.fixture(scope="module")
def reference():
    """Full-grid exact-diag results, one per structure."""
    out = {}
    for name, (build, kT, _, _) in STRUCTURES.items():
        at = build()
        calc = TBCalculator(GSPSilicon(), kpts=KGRID, kT=kT,
                            kgrid_reduce="full")
        out[name] = (at, calc.compute(at, forces=True))
    return out


def _check(res, ref, tol_e, tol_f, natoms):
    assert abs(res["energy"] - ref["energy"]) / natoms < tol_e
    assert abs(res["fermi_level"] - ref["fermi_level"]) < 10 * tol_e
    assert_forces_match(res["forces"], ref["forces"], atol=tol_f)
    np.testing.assert_allclose(res["virial"], ref["virial"], rtol=0,
                               atol=max(tol_f * 10, 1e-9))
    np.testing.assert_allclose(res["forces"].sum(axis=0), 0.0, atol=1e-8)


@pytest.mark.parametrize("grid", GRIDS)
@pytest.mark.parametrize("name", sorted(STRUCTURES))
def test_parity_diag(name, grid, reference):
    """diag on any folding is an exact identity vs the full grid."""
    build, kT, _, _ = STRUCTURES[name]
    at, ref = reference[name]
    res = TBCalculator(GSPSilicon(), kpts=KGRID, kT=kT,
                       kgrid_reduce=grid).compute(at, forces=True)
    assert res["n_kpoints"] <= ref["n_kpoints"]
    _check(res, ref, EXACT, EXACT, len(at))


@pytest.mark.parametrize("grid", GRIDS)
@pytest.mark.parametrize("name", sorted(STRUCTURES))
def test_parity_linscale(name, grid, reference):
    """Region FOE on any folding stays inside the engine's 1e-6
    contract vs the full-grid diag reference."""
    build, kT, _, _ = STRUCTURES[name]
    at, ref = reference[name]
    lin = LinearScalingCalculator(GSPSilicon(), kT=kT, r_loc=6.0,
                                  order=300, kpts=KGRID,
                                  kgrid_reduce=grid)
    res = lin.compute(at, forces=True)
    lin.close()
    _check(res, ref, FOE, FOE, len(at))
    # Mulliken populations scatter back through the permutations too
    assert abs(res["charges"].sum()) < 1e-6


@pytest.mark.parametrize("name", sorted(STRUCTURES))
def test_linscale_folding_is_exact_within_solver(name):
    """Grid-vs-grid *within* linscale: the wedge re-grouping itself adds
    no error beyond round-off on top of whatever the FOE truncation is —
    a much tighter identity than the 1e-6 cross-solver contract."""
    build, kT, _, _ = STRUCTURES[name]
    at = build()
    out = {}
    for grid in ("full", "symmetry"):
        lin = LinearScalingCalculator(GSPSilicon(), kT=kT, r_loc=6.0,
                                      order=120, kpts=KGRID,
                                      kgrid_reduce=grid)
        out[grid] = lin.compute(at, forces=True)
        lin.close()
    full, sym = out["full"], out["symmetry"]
    assert abs(sym["energy"] - full["energy"]) < 1e-9
    assert_forces_match(sym["forces"], full["forces"], atol=1e-9)
    np.testing.assert_allclose(sym["virial"], full["virial"], atol=1e-8)


@pytest.mark.parametrize("name", sorted(STRUCTURES))
def test_detected_group_and_wedge_sizes(name):
    """Detection finds the textbook op counts and the predicted wedges
    (O_h diamond 48, D_4h β-tin 16, C_3v displaced 6, trivial 1) — and a
    broken symmetry degrades exactly to the time-reversal fold."""
    build, _, n_ops, n_wedge = STRUCTURES[name]
    at = build()
    ops = crystal_symmetry_ops(at)
    assert len(ops) == n_ops
    assert any(op.is_identity for op in ops)
    grid = irreducible_kpoints(KGRID, atoms=at, ops=ops)
    assert len(grid) == n_wedge
    assert grid.n_full == KGRID ** 3
    assert grid.weights.sum() == pytest.approx(1.0, abs=1e-12)


def test_low_symmetry_never_beats_trs():
    """The rattled wedge equals the TRS fold in size *and* physics."""
    at = _rattled()
    trs = TBCalculator(GSPSilicon(), kpts=KGRID, kT=0.1,
                       kgrid_reduce="trs").compute(at, forces=True)
    sym = TBCalculator(GSPSilicon(), kpts=KGRID, kT=0.1,
                       kgrid_reduce="symmetry").compute(at, forces=True)
    assert sym["n_kpoints"] == trs["n_kpoints"]
    assert sym["energy"] == pytest.approx(trs["energy"], abs=1e-12)
    assert_forces_match(sym["forces"], trs["forces"], atol=1e-12)


def test_anisotropic_grid_drops_incompatible_ops():
    """A 2×2×1 grid on cubic diamond is only invariant under the
    tetragonal subgroup — incompatible ops must be dropped (graceful),
    and the folded physics must still match the full grid exactly."""
    at = _diamond()
    grid = irreducible_kpoints((2, 2, 1), atoms=at)
    assert len(grid.ops) < 48                 # cubic ops mixing z dropped
    assert grid.weights.sum() == pytest.approx(1.0, abs=1e-12)
    ref = TBCalculator(GSPSilicon(), kpts=(2, 2, 1), kT=0.1,
                       kgrid_reduce="full").compute(at, forces=True)
    res = TBCalculator(GSPSilicon(), kpts=(2, 2, 1), kT=0.1,
                       kgrid_reduce="symmetry").compute(at, forces=True)
    assert res["n_kpoints"] < ref["n_kpoints"]
    _check(res, ref, EXACT, EXACT, len(at))


def test_rewedge_revalidates_instead_of_redetecting():
    """The per-step path: cached ops are re-verified in O(|ops|·N)
    against their stored permutations — surviving a symmetry-preserving
    strain, shrinking to the tetragonal subgroup under uniaxial strain,
    and collapsing to the identity on a rattled cell — with the full
    O(N²) detection reserved for ops actually being lost."""
    from repro.geometry.transform import strain
    from repro.tb.symmetry import filter_valid_ops, rewedge

    at = _diamond()
    ops = crystal_symmetry_ops(at)
    assert len(filter_valid_ops(at, ops)) == 48
    # volumetric strain keeps O_h (fractional geometry unchanged)
    iso = strain(at, 0.01)
    assert len(filter_valid_ops(iso, ops)) == 48
    # uniaxial strain keeps exactly the tetragonal subgroup
    uni = strain(at, np.diag([0.0, 0.0, 0.01]))
    kept = filter_valid_ops(uni, ops)
    assert len(kept) == 16
    # a rattled cell keeps only the identity
    assert len(filter_valid_ops(rattle(at, 0.05, seed=3), ops)) == 1
    # rewedge with intact previous ops skips detection and refolds them
    g = rewedge(KGRID, iso, prev_ops=ops)
    assert len(g.ops) == 48 and len(g) == 1
    # and the folded physics stays exact either way (vs fresh detection)
    fresh = irreducible_kpoints(KGRID, atoms=uni)
    re = rewedge(KGRID, uni, prev_ops=ops)
    assert len(re) == len(fresh)
    np.testing.assert_allclose(sorted(re.weights), sorted(fresh.weights),
                               atol=1e-15)


def test_symmetry_mode_refolds_when_structure_changes():
    """One calculator, two structures: the wedge is re-detected per
    geometry (symmetric → 1 point, rattled → TRS count) and each answer
    matches a fresh full-grid calculator."""
    calc = TBCalculator(GSPSilicon(), kpts=KGRID, kT=0.1,
                        kgrid_reduce="symmetry")
    sym = calc.compute(_diamond(), forces=True)
    assert sym["n_kpoints"] == 1
    rat = _rattled()
    res = calc.compute(rat, forces=True)
    assert res["n_kpoints"] == 4
    ref = TBCalculator(GSPSilicon(), kpts=KGRID, kT=0.1,
                       kgrid_reduce="full").compute(rat, forces=True)
    _check(res, ref, EXACT, EXACT, len(rat))

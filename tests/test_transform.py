"""Supercell, rattle, strain transforms."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import bulk_silicon, rattle, strain, supercell
from repro.geometry.transform import scale_volume
from repro.neighbors import neighbor_list


def test_supercell_counts_and_volume():
    at = supercell(bulk_silicon(), 2)
    assert len(at) == 64
    assert at.cell.volume == pytest.approx(8 * 5.431**3)


def test_supercell_anisotropic():
    at = supercell(bulk_silicon(), (2, 1, 1))
    assert len(at) == 16
    np.testing.assert_allclose(at.cell.lengths, [2 * 5.431, 5.431, 5.431])


def test_supercell_preserves_local_structure():
    at = supercell(bulk_silicon(), 2)
    nl = neighbor_list(at, 2.5)
    np.testing.assert_array_equal(nl.coordination(), 4)
    np.testing.assert_allclose(nl.distances, 5.431 * np.sqrt(3) / 4, rtol=1e-12)


def test_supercell_replicates_metadata():
    base = bulk_silicon()
    base.fixed[0] = True
    base.velocities[1] = [0.1, 0, 0]
    at = supercell(base, (2, 1, 1))
    assert at.fixed.sum() == 2
    assert np.count_nonzero(at.velocities[:, 0]) == 2


def test_supercell_invalid_reps():
    with pytest.raises(GeometryError):
        supercell(bulk_silicon(), 0)


def test_supercell_nonperiodic_axis_refused():
    from repro.geometry import graphene_sheet

    g = graphene_sheet(1, 1)
    with pytest.raises(GeometryError, match="non-periodic"):
        supercell(g, (1, 1, 2))
    # but periodic axes replicate fine
    g2 = supercell(g, (2, 2, 1))
    assert len(g2) == 16


def test_rattle_statistics_and_determinism():
    base = bulk_silicon()
    a = rattle(base, 0.05, seed=1)
    b = rattle(base, 0.05, seed=1)
    np.testing.assert_array_equal(a.positions, b.positions)
    disp = a.positions - base.positions
    assert 0.01 < np.std(disp) < 0.1


def test_rattle_zero_stdev_identity():
    base = bulk_silicon()
    np.testing.assert_array_equal(rattle(base, 0.0, seed=1).positions,
                                  base.positions)


def test_rattle_respects_fixed():
    base = bulk_silicon()
    base.fixed[3] = True
    out = rattle(base, 0.1, seed=2)
    np.testing.assert_array_equal(out.positions[3], base.positions[3])


def test_strain_isotropic_scales_volume():
    at = strain(bulk_silicon(), 0.01)
    assert at.cell.volume == pytest.approx(5.431**3 * 1.01**3)


def test_strain_tensor_shear():
    eps = np.zeros((3, 3))
    eps[0, 1] = 0.02
    at = strain(bulk_silicon(), eps)
    # volume unchanged to first order for pure shear
    assert at.cell.volume == pytest.approx(5.431**3, rel=1e-3)


def test_strain_bad_tensor_shape():
    with pytest.raises(GeometryError):
        strain(bulk_silicon(), np.zeros((2, 2)))


def test_scale_volume_exact():
    at = scale_volume(bulk_silicon(), 1.1)
    assert at.cell.volume == pytest.approx(5.431**3 * 1.1)
    with pytest.raises(GeometryError):
        scale_volume(bulk_silicon(), -1.0)


def test_strain_scales_fractional_invariant():
    base = bulk_silicon()
    at = strain(base, 0.03)
    f0 = base.cell.fractional(base.positions)
    f1 = at.cell.fractional(at.positions)
    np.testing.assert_allclose(f0, f1, atol=1e-12)

"""Neighbour lists: brute force, cell list, Verlet skin — plus property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NeighborError
from repro.geometry import Atoms, Cell, bulk_silicon, rattle, supercell
from repro.neighbors import (
    VerletList, brute_force_neighbors, cell_list_neighbors, neighbor_list,
)
from repro.neighbors.base import empty_neighbor_list
from repro.neighbors.celllist import cell_list_admissible


def canonical(nl):
    """Comparable canonical set of (i, j, rounded vector)."""
    return {(int(i), int(j), tuple(np.round(v, 6)))
            for i, j, v in zip(nl.i, nl.j, nl.vectors)}


# ---------------------------------------------------------------- brute
def test_brute_dimer_single_pair():
    at = Atoms(["Si", "Si"], [[0, 0, 0], [2.0, 0, 0]],
               cell=Cell.cubic(20.0, pbc=False))
    nl = brute_force_neighbors(at, 2.5)
    assert nl.n_pairs == 1
    assert (nl.i[0], nl.j[0]) == (0, 1)
    np.testing.assert_allclose(nl.vectors[0], [2.0, 0, 0])


def test_brute_diamond_bond_count():
    at = bulk_silicon()
    nl = brute_force_neighbors(at, 2.5)
    # 8 atoms × 4 bonds / 2 = 16 unique bonds
    assert nl.n_pairs == 16


def test_brute_self_image_single_atom():
    # one atom in a small periodic box bonds to its 6 nearest images;
    # half-list keeps 3 of them
    at = Atoms(["Si"], [[0, 0, 0]], cell=Cell.cubic(2.0))
    nl = brute_force_neighbors(at, 2.1)
    assert nl.n_pairs == 3
    assert np.all(nl.i == 0) and np.all(nl.j == 0)
    np.testing.assert_allclose(nl.distances, 2.0)


def test_brute_small_cell_multiple_images():
    # 8-atom diamond with a cutoff beyond half the box: second shell has
    # 12 neighbours at a/√2 ≈ 3.84
    at = bulk_silicon()
    nl = brute_force_neighbors(at, 3.95)
    coord = nl.coordination()
    np.testing.assert_array_equal(coord, 16)   # 4 first + 12 second shell


def test_brute_full_expansion_doubles():
    at = rattle(bulk_silicon(), 0.02, seed=0)
    nl = brute_force_neighbors(at, 2.6)
    fi, fj, fvec, fd = nl.full()
    assert len(fi) == 2 * nl.n_pairs
    # antisymmetric vectors
    np.testing.assert_allclose(fvec[:nl.n_pairs], -fvec[nl.n_pairs:])


def test_brute_unwrapped_positions_equivalent():
    at = rattle(bulk_silicon(), 0.05, seed=1)
    shifted = at.copy()
    shifted.positions[3] += at.cell.matrix[0] * 2      # unwrapped copy
    a = canonical(brute_force_neighbors(at, 2.6))
    b = canonical(brute_force_neighbors(shifted, 2.6))
    assert a == b


def test_empty_list():
    nl = empty_neighbor_list(5, 2.0)
    assert nl.n_pairs == 0
    np.testing.assert_array_equal(nl.coordination(), np.zeros(5, dtype=int))
    assert nl.max_distance() == 0.0


def test_neighbors_of():
    at = bulk_silicon()
    nl = brute_force_neighbors(at, 2.5)
    assert len(nl.neighbors_of(0)) == 4


# ---------------------------------------------------------------- cell list
def test_cell_list_matches_brute_large_cell():
    at = rattle(supercell(bulk_silicon(), 3), 0.08, seed=2)  # 216 atoms
    rcut = 2.8
    assert cell_list_admissible(at, rcut)
    a = canonical(brute_force_neighbors(at, rcut))
    b = canonical(cell_list_neighbors(at, rcut))
    assert a == b


def test_cell_list_matches_brute_nonperiodic():
    from repro.geometry import random_cluster

    at = random_cluster(60, seed=4)
    a = canonical(brute_force_neighbors(at, 3.0))
    b = canonical(cell_list_neighbors(at, 3.0))
    assert a == b


def test_cell_list_inadmissible_raises():
    at = bulk_silicon()   # 5.43 Å box, cutoff 2.8 → fewer than 3 bins
    with pytest.raises(NeighborError, match="inadmissible"):
        cell_list_neighbors(at, 2.8)


def test_dispatcher_auto_small_uses_brute():
    at = bulk_silicon()
    nl = neighbor_list(at, 4.0, method="auto")
    assert nl.n_pairs > 0


def test_dispatcher_rejects_bad_input():
    at = bulk_silicon()
    with pytest.raises(NeighborError):
        neighbor_list(at, -1.0)
    with pytest.raises(NeighborError):
        neighbor_list(at, 2.0, method="quantum")


# ---------------------------------------------------------------- verlet
def test_verlet_list_no_rebuild_for_small_moves():
    at = rattle(bulk_silicon(), 0.02, seed=3)
    vl = VerletList(rcut=2.6, skin=0.6)
    vl.update(at)
    at.positions += 0.05   # uniform shift — relative geometry unchanged
    vl.update(at)
    assert vl.n_builds == 1
    assert vl.n_updates == 2


def test_verlet_rebuilds_after_drift():
    at = rattle(bulk_silicon(), 0.02, seed=3)
    vl = VerletList(rcut=2.6, skin=0.4)
    vl.update(at)
    at.positions[0] += [0.3, 0, 0]   # > skin/2
    vl.update(at)
    assert vl.n_builds == 2


def test_verlet_refresh_distances_exact():
    at = rattle(bulk_silicon(), 0.02, seed=5)
    vl = VerletList(rcut=2.6, skin=0.8)
    vl.update(at)
    at.positions[1] += [0.05, -0.02, 0.01]   # below skin/2: refresh path
    nl = vl.update(at)
    ref = brute_force_neighbors(at, 2.6)
    assert canonical(nl) == canonical(ref)
    np.testing.assert_allclose(sorted(nl.distances), sorted(ref.distances),
                               atol=1e-12)


def test_verlet_atom_count_change_triggers_rebuild():
    at = bulk_silicon()
    vl = VerletList(rcut=2.6, skin=0.5)
    vl.update(at)
    bigger = supercell(at, (2, 1, 1))
    vl.update(bigger)
    assert vl.n_builds == 2


def test_verlet_invalid_params():
    with pytest.raises(NeighborError):
        VerletList(rcut=0.0)
    with pytest.raises(NeighborError):
        VerletList(rcut=2.0, skin=-0.1)


# ---------------------------------------------------------------- properties
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), rcut=st.floats(1.5, 4.5))
def test_property_brute_pairs_within_cutoff(seed, rcut):
    at = rattle(bulk_silicon(), 0.1, seed=seed)
    nl = brute_force_neighbors(at, rcut)
    assert np.all(nl.distances <= rcut + 1e-12)
    assert np.all(nl.distances > 0)
    # half-list ordering contract
    assert np.all(nl.i <= nl.j)
    # vectors consistent with distances
    np.testing.assert_allclose(np.linalg.norm(nl.vectors, axis=1),
                               nl.distances, atol=1e-12)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_cell_equals_brute_on_cluster(seed):
    from repro.geometry import random_cluster

    at = random_cluster(40, seed=seed)
    rcut = 3.2
    assert canonical(cell_list_neighbors(at, rcut)) == \
        canonical(brute_force_neighbors(at, rcut))


@settings(max_examples=10, deadline=None)
@given(shift=st.floats(-8.0, 8.0))
def test_property_translation_invariance(shift):
    at = rattle(bulk_silicon(), 0.05, seed=9)
    moved = at.copy()
    moved.positions += shift
    assert canonical(brute_force_neighbors(at, 2.7)) == \
        canonical(brute_force_neighbors(moved, 2.7))

"""Trajectory container and persistence."""

import numpy as np
import pytest

from repro.errors import MDError
from repro.geometry import bulk_silicon, rattle
from repro.md import Trajectory


def test_append_and_views():
    traj = Trajectory()
    a = bulk_silicon()
    for k in range(4):
        a.positions += 0.1
        traj.append(a, step=k, time_fs=float(k), epot=-50.0 - k)
    assert len(traj) == 4
    assert traj.positions().shape == (4, 8, 3)
    assert traj.velocities().shape == (4, 8, 3)
    np.testing.assert_allclose(traj.times(), [0, 1, 2, 3])
    np.testing.assert_allclose(traj.potential_energies(), [-50, -51, -52, -53])


def test_frames_are_copies():
    traj = Trajectory()
    a = bulk_silicon()
    traj.append(a)
    a.positions += 5.0
    np.testing.assert_allclose(traj.frames[0].positions,
                               bulk_silicon().positions)


def test_composition_mismatch_rejected():
    traj = Trajectory()
    traj.append(bulk_silicon())
    from repro.geometry import diamond_cubic

    with pytest.raises(MDError):
        traj.append(diamond_cubic("C"))


def test_atoms_at_reconstruction():
    traj = Trajectory()
    a = rattle(bulk_silicon(), 0.1, seed=1)
    a.velocities[:] = 0.01
    traj.append(a)
    back = traj.atoms_at(0)
    np.testing.assert_allclose(back.positions, a.positions)
    np.testing.assert_allclose(back.velocities, a.velocities)
    assert back.symbols == a.symbols
    assert back.cell == a.cell


def test_save_load_xyz_roundtrip(tmp_path):
    traj = Trajectory()
    a = bulk_silicon()
    for k in range(3):
        a.positions += 0.2
        traj.append(a, step=k, time_fs=k * 1.0, epot=-1.0)
    p = tmp_path / "t.xyz"
    traj.save_xyz(p)
    back = Trajectory.load_xyz(p)
    assert len(back) == 3
    np.testing.assert_allclose(back.positions(), traj.positions(), atol=1e-8)


# -- regression: per-frame cells and lossless XYZ persistence ----------------
def _npt_traj(nframes=3):
    from repro.geometry import Cell

    traj = Trajectory()
    a = bulk_silicon()
    m0 = a.cell.matrix.copy()
    for k in range(nframes):
        a.positions += 0.1
        a.velocities[:] = 0.001 * (k + 1)
        a.cell = Cell(m0 * (1.0 + 0.02 * k))
        traj.append(a, step=10 * k, time_fs=0.5 * k, epot=-34.0 - k)
    return traj, m0


def test_append_stores_per_frame_cell():
    # regression: every frame used to alias the first frame's cell
    traj, m0 = _npt_traj()
    cells = traj.cells()
    assert cells.shape == (3, 3, 3)
    np.testing.assert_allclose(cells[2], m0 * 1.04)
    assert not np.allclose(cells[0], cells[2])
    np.testing.assert_allclose(traj.atoms_at(2).cell.matrix, m0 * 1.04)


def test_save_xyz_preserves_cell_velocities_metadata(tmp_path):
    # regression: save_xyz wrote one cell for all frames and dropped
    # velocities, step, time_fs and epot entirely
    traj, m0 = _npt_traj()
    p = tmp_path / "npt.xyz"
    traj.save_xyz(p)
    back = Trajectory.load_xyz(p)
    for k in range(3):
        f = back.frames[k]
        np.testing.assert_array_equal(f.cell.matrix, m0 * (1.0 + 0.02 * k))
        np.testing.assert_array_equal(f.velocities,
                                      traj.frames[k].velocities)
        assert f.step == 10 * k
        assert f.time_fs == 0.5 * k
        assert f.epot == -34.0 - k


def test_atoms_at_uses_frame_velocities():
    traj, _ = _npt_traj()
    np.testing.assert_allclose(traj.atoms_at(1).velocities, 0.002)

"""Trajectory container and persistence."""

import numpy as np
import pytest

from repro.errors import MDError
from repro.geometry import bulk_silicon, rattle
from repro.md import Trajectory


def test_append_and_views():
    traj = Trajectory()
    a = bulk_silicon()
    for k in range(4):
        a.positions += 0.1
        traj.append(a, step=k, time_fs=float(k), epot=-50.0 - k)
    assert len(traj) == 4
    assert traj.positions().shape == (4, 8, 3)
    assert traj.velocities().shape == (4, 8, 3)
    np.testing.assert_allclose(traj.times(), [0, 1, 2, 3])
    np.testing.assert_allclose(traj.potential_energies(), [-50, -51, -52, -53])


def test_frames_are_copies():
    traj = Trajectory()
    a = bulk_silicon()
    traj.append(a)
    a.positions += 5.0
    np.testing.assert_allclose(traj.frames[0].positions,
                               bulk_silicon().positions)


def test_composition_mismatch_rejected():
    traj = Trajectory()
    traj.append(bulk_silicon())
    from repro.geometry import diamond_cubic

    with pytest.raises(MDError):
        traj.append(diamond_cubic("C"))


def test_atoms_at_reconstruction():
    traj = Trajectory()
    a = rattle(bulk_silicon(), 0.1, seed=1)
    a.velocities[:] = 0.01
    traj.append(a)
    back = traj.atoms_at(0)
    np.testing.assert_allclose(back.positions, a.positions)
    np.testing.assert_allclose(back.velocities, a.velocities)
    assert back.symbols == a.symbols
    assert back.cell == a.cell


def test_save_load_xyz_roundtrip(tmp_path):
    traj = Trajectory()
    a = bulk_silicon()
    for k in range(3):
        a.positions += 0.2
        traj.append(a, step=k, time_fs=k * 1.0, epot=-1.0)
    p = tmp_path / "t.xyz"
    traj.save_xyz(p)
    back = Trajectory.load_xyz(p)
    assert len(back) == 3
    np.testing.assert_allclose(back.positions(), traj.positions(), atol=1e-8)

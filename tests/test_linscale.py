"""Linear-scaling subsystem: sparse H, regions, FOE-in-regions, calculator.

The validation ladder mirrors the subsystem's own error budget:

1. sparse assembly is *exact* (bit-level vs the dense builder);
2. with regions covering the whole folded cell, FOE-in-regions equals the
   exactly smeared diagonalisation (only Chebyshev truncation remains);
3. at finite ``r_loc`` the error decays as the region grows — the
   O(N) approximation proper;
4. the calculator is a drop-in for :class:`TBCalculator` (MD conserves
   energy, relaxers and the CLI run unchanged).
"""

from __future__ import annotations

import logging

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ElectronicError, ModelError
from repro.geometry import bulk_silicon, rattle
from repro.linscale import (
    DensityMatrixCalculator,
    LinearScalingCalculator,
    build_sparse_hamiltonian,
    extract_regions,
    hamiltonian_fill_fraction,
    region_statistics,
    solve_density_regions,
    sparse_band_forces,
)
from repro.tb.purification import lanczos_spectral_bounds
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon, TBCalculator
from repro.tb.forces import density_matrices
from repro.tb.hamiltonian import build_hamiltonian

from tests.helpers import assert_forces_match

KT = 0.2


# ---------------------------------------------------------------------------
# sparse Hamiltonian assembly
# ---------------------------------------------------------------------------

def test_sparse_hamiltonian_equals_dense(si8_rattled, gsp):
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    H, _ = build_hamiltonian(si8_rattled, gsp, nl)
    Hs, Ss = build_sparse_hamiltonian(si8_rattled, gsp, nl)
    assert Ss is None
    assert sp.issparse(Hs)
    # equal up to the summation order of periodic-image duplicates
    np.testing.assert_allclose(Hs.toarray(), H, rtol=0, atol=1e-14)


def test_sparse_hamiltonian_carbon(graphene22, xu):
    nl = neighbor_list(graphene22, xu.cutoff)
    H, _ = build_hamiltonian(graphene22, xu, nl)
    Hs, _ = build_sparse_hamiltonian(graphene22, xu, nl)
    np.testing.assert_allclose(Hs.toarray(), H, rtol=0, atol=1e-14)


def test_sparse_hamiltonian_with_overlap(si8_rattled, nonortho):
    nl = neighbor_list(si8_rattled, nonortho.cutoff)
    H, S = build_hamiltonian(si8_rattled, nonortho, nl)
    Hs, Ss = build_sparse_hamiltonian(si8_rattled, nonortho, nl)
    np.testing.assert_allclose(Hs.toarray(), H, rtol=0, atol=1e-14)
    np.testing.assert_allclose(Ss.toarray(), S, rtol=0, atol=1e-14)


def test_dense_builder_sparse_flag(si64, gsp):
    nl = neighbor_list(si64, gsp.cutoff)
    H, _ = build_hamiltonian(si64, gsp, nl)
    Hs, _ = build_hamiltonian(si64, gsp, nl, sparse=True)
    np.testing.assert_allclose(Hs.toarray(), H, rtol=0, atol=1e-14)
    # a 64-atom supercell Hamiltonian is already mostly zeros
    assert hamiltonian_fill_fraction(Hs) < 0.35


def test_lanczos_bounds_bracket_spectrum(si8_rattled, gsp):
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    Hs, _ = build_sparse_hamiltonian(si8_rattled, gsp, nl)
    w = np.linalg.eigvalsh(Hs.toarray())
    lo, hi = lanczos_spectral_bounds(Hs)
    assert lo <= w.min() and hi >= w.max()
    # and far tighter than Gershgorin on sp-bonded silicon
    assert (hi - lo) < 1.5 * (w.max() - w.min())


# ---------------------------------------------------------------------------
# localization regions
# ---------------------------------------------------------------------------

def test_regions_cover_all_cores_once(si64, gsp):
    regions = extract_regions(si64, gsp, r_loc=5.0)
    assert len(regions) == len(si64)
    n_core = sum(len(r.core_local) for r in regions)
    assert n_core == 4 * len(si64)
    for r in regions:
        assert r.center in r.atoms
        assert r.n_orbitals == 4 * r.n_atoms
        # the core's orbitals point at the core atom's global block
        np.testing.assert_array_equal(
            r.orbitals[r.core_local], 4 * r.center + np.arange(4))
    stats = region_statistics(regions)
    assert stats["n_regions"] == 64
    assert stats["atoms_max"] <= 64


def test_regions_grow_with_r_loc(si64, gsp):
    small = extract_regions(si64, gsp, r_loc=4.5)
    large = extract_regions(si64, gsp, r_loc=6.5)
    assert all(s.n_atoms <= l.n_atoms for s, l in zip(small, large))
    assert sum(l.n_atoms for l in large) > sum(s.n_atoms for s in small)


def test_regions_reject_r_loc_below_cutoff(si64, gsp):
    with pytest.raises(ElectronicError, match="model cutoff"):
        extract_regions(si64, gsp, r_loc=0.5 * gsp.cutoff)


# ---------------------------------------------------------------------------
# FOE in regions vs exact smeared diagonalisation
# ---------------------------------------------------------------------------

def test_full_coverage_matches_exact_diagonalisation(si8_rattled, gsp):
    """Regions spanning the folded cell leave only Chebyshev truncation."""
    ref = TBCalculator(GSPSilicon(), kT=KT).compute(si8_rattled)
    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=6.0, order=250)
    res = calc.compute(si8_rattled)
    n = len(si8_rattled)
    assert abs(res["energy"] - ref["energy"]) / n < 1e-6
    assert_forces_match(res["forces"], ref["forces"], atol=1e-6)
    assert abs(res["entropy"] - ref["entropy"]) < 1e-8
    assert abs(res["free_energy"] - ref["free_energy"]) / n < 1e-6
    assert abs(res["n_electrons"] - 32.0) < 1e-8


def test_error_decays_with_r_loc_and_order(si64, gsp):
    """The O(N) approximation converges to LAPACK on a gapped Si supercell.

    At full folded coverage (r_loc beyond the maximal minimum-image
    distance) the acceptance thresholds — 1 meV/atom, 1e-3 eV/Å — are met
    with two orders of magnitude to spare.
    """
    atoms = rattle(si64, 0.05, seed=4)
    ref = TBCalculator(GSPSilicon(), kT=KT).compute(atoms)
    n = len(atoms)

    errs_e, errs_f = [], []
    for r_loc, order in [(4.2, 150), (6.5, 200), (9.5, 300)]:
        res = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=r_loc,
                                      order=order).compute(atoms)
        errs_e.append(abs(res["energy"] - ref["energy"]) / n)
        errs_f.append(np.abs(res["forces"] - ref["forces"]).max())

    assert errs_e[0] > errs_e[1] > errs_e[2]
    assert errs_f[2] < errs_f[0]
    # acceptance: 1 meV/atom and 1e-3 eV/Å at converged settings
    assert errs_e[2] < 1e-3
    assert errs_f[2] < 1e-3


def test_mulliken_populations_and_charges(si64, gsp):
    atoms = rattle(si64, 0.05, seed=9)
    res = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=5.0,
                                  order=120).compute(atoms, forces=False)
    # μ conservation is enforced exactly through the moment bisection
    assert abs(res["populations"].sum() - 4.0 * len(atoms)) < 1e-6
    assert abs(res["charges"].sum()) < 1e-6
    # gapped bulk silicon stays nearly neutral atom by atom
    assert np.abs(res["charges"]).max() < 0.2


def test_density_rows_match_exact_density_matrix(si8_rattled, gsp):
    """Full-coverage ρ̂ equals the exact smeared density matrix."""
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    Hs, _ = build_sparse_hamiltonian(si8_rattled, gsp, nl)
    regions = extract_regions(si8_rattled, gsp, r_loc=6.0)
    foe = solve_density_regions(Hs, regions, n_electrons=32.0, kT=KT,
                                order=250)
    ref = TBCalculator(GSPSilicon(), kT=KT).compute(si8_rattled)
    H, _ = build_hamiltonian(si8_rattled, gsp, nl)
    eps, C = np.linalg.eigh(H)
    from repro.tb.occupations import fermi_function

    f = fermi_function(eps, ref["fermi_level"], KT)
    rho_exact, _ = density_matrices(C, f)
    assert np.abs(foe.rho.toarray() - rho_exact).max() < 1e-6


def test_sparse_band_forces_match_dense_contraction(si8_rattled, gsp):
    nl = neighbor_list(si8_rattled, gsp.cutoff)
    ref = TBCalculator(GSPSilicon(), kT=KT).compute(si8_rattled)
    H, _ = build_hamiltonian(si8_rattled, gsp, nl)
    eps, C = np.linalg.eigh(H)
    from repro.tb.forces import band_forces
    from repro.tb.occupations import fermi_function

    f = fermi_function(eps, ref["fermi_level"], KT)
    rho, _ = density_matrices(C, f)
    fd, vd = band_forces(si8_rattled, gsp, nl, rho)
    fs, vs = sparse_band_forces(si8_rattled, gsp, nl, sp.csr_matrix(rho))
    assert_forces_match(fs, fd, atol=1e-12)
    np.testing.assert_allclose(vs, vd, atol=1e-12)


def test_region_solves_batch_through_pool(si64, gsp):
    atoms = rattle(si64, 0.05, seed=4)
    serial = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=5.0,
                                     order=100, nworkers=1).compute(atoms)

    class InlineExecutor:
        """executor-protocol stand-in: same chunking, no processes."""

        def map(self, fn, it):
            return map(fn, it)

    pooled = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=5.0,
                                     order=100, nworkers=4,
                                     executor=InlineExecutor()).compute(atoms)
    # chunked dispatch must not change the physics
    assert abs(serial["energy"] - pooled["energy"]) < 1e-9
    assert_forces_match(serial["forces"], pooled["forces"], atol=1e-9)


# ---------------------------------------------------------------------------
# calculator API compatibility
# ---------------------------------------------------------------------------

def test_calculator_rejects_bad_configs(gsp, nonortho):
    with pytest.raises(ElectronicError):
        LinearScalingCalculator(gsp, kT=0.0)
    with pytest.raises(ElectronicError):
        LinearScalingCalculator(gsp, kT=KT, r_loc=1.0)
    with pytest.raises(ElectronicError):
        LinearScalingCalculator(nonortho, kT=KT)
    with pytest.raises(ElectronicError):
        DensityMatrixCalculator(gsp, method="purification", kT=0.3)
    with pytest.raises(ElectronicError):
        DensityMatrixCalculator(gsp, method="foe", kT=0.0)
    for calc in (LinearScalingCalculator(gsp, kT=KT),
                 DensityMatrixCalculator(gsp)):
        with pytest.raises(ModelError):
            calc.get_eigenvalues(None)


def test_calculator_caches_results(si8_rattled, gsp):
    calc = LinearScalingCalculator(gsp, kT=KT, r_loc=6.0, order=80)
    e1 = calc.get_potential_energy(si8_rattled)
    key = calc._cache_key
    e2 = calc.get_potential_energy(si8_rattled)
    assert e1 == e2 and calc._cache_key is key
    calc.invalidate()
    assert calc._cache_key is None


def test_md_conserves_energy_with_linscale(gsp):
    """NVE on gapped Si with the O(N) calculator: tight drift."""
    from repro.md import (
        MDDriver, ThermoLog, VelocityVerlet, maxwell_boltzmann_velocities,
    )

    atoms = rattle(bulk_silicon(), 0.02, seed=7)
    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=6.0, order=200)
    maxwell_boltzmann_velocities(atoms, 300.0, seed=11)
    log = ThermoLog()
    MDDriver(atoms, calc, VelocityVerlet(dt=1.0), observers=[log]).run(25)
    assert log.conserved_drift() < 1e-4


def test_relaxer_runs_with_linscale(gsp):
    from repro.relax import fire_relax

    atoms = rattle(bulk_silicon(), 0.05, seed=3)
    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=6.0, order=150)
    res = fire_relax(atoms, calc, fmax=0.15, max_steps=60)
    assert res.fmax < 0.15


def test_density_matrix_calculator_purification(si8_rattled, gsp):
    ref = TBCalculator(GSPSilicon()).compute(si8_rattled)
    res = DensityMatrixCalculator(GSPSilicon()).compute(si8_rattled)
    assert abs(res["energy"] - ref["energy"]) < 1e-6
    assert_forces_match(res["forces"], ref["forces"], atol=1e-5)
    assert "stress" in res


def test_density_matrix_calculator_foe(si8_rattled, gsp):
    ref = TBCalculator(GSPSilicon(), kT=KT).compute(si8_rattled)
    res = DensityMatrixCalculator(GSPSilicon(), method="foe",
                                  kT=KT, order=300).compute(si8_rattled)
    assert abs(res["energy"] - ref["energy"]) < 1e-5
    assert_forces_match(res["forces"], ref["forces"], atol=1e-5)


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

def _write_si8(tmp_path):
    from repro.geometry import write_xyz

    p = tmp_path / "si8.xyz"
    write_xyz(str(p), rattle(bulk_silicon(), 0.03, seed=1))
    return p


def test_cli_energy_linscale(tmp_path, capsys):
    from repro.cli import main

    p = _write_si8(tmp_path)
    assert main(["energy", str(p), "--solver", "linscale", "--kt", "0.2",
                 "--r-loc", "6.0", "--order", "150"]) == 0
    out = capsys.readouterr().out
    assert "O(N) regions" in out and "energy" in out


def test_cli_energy_purification_and_foe(tmp_path, capsys, caplog):
    from repro.cli import main

    p = _write_si8(tmp_path)
    assert main(["energy", str(p), "--solver", "purification"]) == 0
    # kT defaulted with a logged note (never stdout) when the FOE
    # solvers get kT = 0
    with caplog.at_level(logging.WARNING, logger="repro"):
        assert main(["energy", str(p), "--solver", "foe"]) == 0
    assert "kT = 0.1" in caplog.text
    assert "kT = 0.1" not in capsys.readouterr().out


def test_cli_md_linscale(tmp_path, capsys):
    from repro.cli import main

    p = _write_si8(tmp_path)
    assert main(["md", str(p), "--solver", "linscale", "--kt", "0.2",
                 "--r-loc", "6.0", "--order", "120", "--steps", "5",
                 "--temperature", "100"]) == 0
    assert "drift" in capsys.readouterr().out


def test_cli_solver_rejected_for_classical(tmp_path):
    from repro.cli import main

    p = _write_si8(tmp_path)
    assert main(["energy", str(p), "--model", "sw-si",
                 "--solver", "linscale"]) == 1

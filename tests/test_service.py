"""Batch service: protocol, routing, batching, lifecycle, failure modes.

Everything here drives the service through the in-process
:class:`BatchClient` (identical core code path to the socket transport);
the socket transport itself is covered in ``test_service_server.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import make_calculator
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.geometry import bulk_silicon, rattle
from repro.service import BatchClient, BatchService, CoalescingQueue
from repro.service import protocol
from repro.state import StructureSnapshot
from repro.utils.memory import resident_bytes

SW = {"model": "sw-si"}
DIAG = {"model": "gsp-si", "solver": "diag", "kT": 0.1}
LINSCALE = {"model": "gsp-si", "solver": "linscale", "kT": 0.3, "order": 60}


@pytest.fixture()
def si8():
    return rattle(bulk_silicon(), 0.04, seed=7)


@pytest.fixture()
def service():
    svc = BatchService(nworkers=2, debug_ops=True)
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    return BatchClient(service)


# -- protocol ----------------------------------------------------------------
def test_encode_decode_atoms_roundtrip(si8):
    decoded = protocol.decode_atoms(protocol.encode_atoms(si8))
    assert decoded.symbols == si8.symbols
    assert np.array_equal(decoded.positions, si8.positions)
    assert np.array_equal(decoded.cell.matrix, si8.cell.matrix)
    assert tuple(decoded.cell.pbc) == tuple(si8.cell.pbc)


def test_json_roundtrip_is_bit_exact(si8):
    wire = protocol.loads(protocol.dumps(
        {"id": 1, "structure": protocol.encode_atoms(si8)}))
    decoded = protocol.decode_atoms(wire["structure"])
    assert np.array_equal(decoded.positions, si8.positions)


def test_validate_request_rejects_garbage():
    with pytest.raises(ProtocolError):
        protocol.validate_request([1, 2, 3])
    with pytest.raises(ProtocolError):
        protocol.validate_request({"op": "sudo"})
    with pytest.raises(ProtocolError):
        protocol.validate_request({"op": "eval"})          # no structure_id
    with pytest.raises(ProtocolError):
        protocol.validate_request({"op": "eval", "structure_id": ""})


def test_loads_rejects_non_json():
    with pytest.raises(ProtocolError):
        protocol.loads(b"definitely not json")


# -- basic evaluation --------------------------------------------------------
def test_eval_matches_standalone_calculator(client, si8):
    client.load("si", si8, calc=SW)
    res = client.evaluate("si")
    ref = make_calculator(SW).compute(si8, forces=True)
    assert res["energy"] == ref["energy"]
    assert np.array_equal(res["forces"], ref["forces"])
    assert res["warm"] is False
    assert client.evaluate("si")["warm"] is True


def test_eval_sequence_state_reuse_parity(client, si8):
    """Resident-state evals must be bit-for-bit identical to a standalone
    calculator driven through the same position sequence."""
    client.load("si", si8, calc=LINSCALE)
    ref_calc = make_calculator(LINSCALE)
    ref_atoms = si8.copy()
    rng = np.random.default_rng(3)
    pos = si8.positions.copy()
    for step in range(4):
        pos = pos + rng.normal(0.0, 0.01, pos.shape)
        res = client.evaluate("si", positions=pos)
        ref_atoms.positions[:] = pos
        ref = ref_calc.compute(ref_atoms, forces=True)
        assert res["energy"] == ref["energy"]
        assert np.array_equal(res["forces"], ref["forces"])
        assert res["warm"] is (step > 0)
    stats = client.stats()
    assert stats["state_reuse"]["warm_evals"] == 3
    assert stats["state_reuse"]["hit_rate"] == pytest.approx(0.75)


def test_response_forces_never_alias_calculator_cache(client, si8):
    client.load("si", si8, calc=SW)
    first = client.evaluate("si")
    first["forces"][:] = 0.0          # a rude in-process client
    again = client.evaluate("si")     # cache hit at unchanged geometry
    ref = make_calculator(SW).compute(si8, forces=True)
    assert np.array_equal(again["forces"], ref["forces"])


def test_energy_only_then_forces(client, si8):
    client.load("si", si8, calc=DIAG)
    e = client.evaluate("si", forces=False)
    assert "forces" not in e
    f = client.evaluate("si")
    assert f["energy"] == e["energy"]
    assert f["forces"].shape == (len(si8), 3)


def test_relax_step_descends(client, si8):
    client.load("si", rattle(bulk_silicon(), 0.15, seed=5), calc=SW)
    first = client.relax_step("si", step_size=0.02)
    for _ in range(20):
        last = client.relax_step("si", step_size=0.02)
    assert last["fmax"] < first["fmax"]
    assert last["energy"] < first["energy"]
    assert last["positions"].shape == (len(si8), 3)


def test_reload_replaces_structure(client, si8):
    client.load("si", si8, calc=SW)
    e0 = client.evaluate("si")["energy"]
    shifted = si8.copy()
    shifted.positions += np.array([0.1, 0.0, 0.0])  # rigid shift, same E
    client.load("si", shifted, calc=SW)
    res = client.evaluate("si")
    assert res["warm"] is False              # reload starts a cold slot
    assert res["energy"] == pytest.approx(e0, abs=1e-9)


# -- malformed requests ------------------------------------------------------
def test_unknown_structure_is_an_error_response(service):
    client = BatchClient(service, raise_on_error=False)
    resp = client.request("eval", structure_id="nope")
    assert resp["ok"] is False
    assert resp["error"]["type"] == "ServiceError"
    assert "load it first" in resp["error"]["message"]


def test_malformed_requests_answer_not_crash(service, si8):
    client = BatchClient(service, raise_on_error=False)
    client.load("si", si8, calc=SW)
    bad = client.request_many([
        {"op": "warp", "structure_id": "si"},                # unknown op
        {"op": "eval"},                                      # missing sid
        {"op": "eval", "structure_id": "si",
         "positions": [[0.0, 0.0]]},                         # bad shape
        {"op": "eval", "structure_id": "si",
         "positions": [["x", "y", "z"]]},                    # not numeric
        {"op": "load", "structure_id": "s2", "structure": 42},
        {"op": "load", "structure_id": "s3",
         "structure": {"symbols": ["Si"],
                       "positions": [[0.0, 0.0, 0.0]]},
         "calc": {"model": "sw-si", "typo_key": 1}},         # bad spec
    ])
    assert [r["ok"] for r in bad] == [False] * 6
    # the service survived all of it
    assert client.request("eval", structure_id="si")["ok"] is True
    assert service.stats()["errors_total"] == 6


def test_mismatched_position_count_is_rejected(service, si8):
    client = BatchClient(service, raise_on_error=False)
    client.load("si", si8, calc=SW)
    resp = client.request("eval", structure_id="si",
                          positions=np.zeros((len(si8) + 1, 3)))
    assert resp["ok"] is False and "shape" in resp["error"]["message"]


def test_raise_on_error_client(client):
    with pytest.raises(ServiceError, match="load it first"):
        client.evaluate("ghost")


def test_failed_first_load_leaves_no_record(service, si8):
    client = BatchClient(service, raise_on_error=False)
    bad = client.request("load", structure_id="si",
                         structure=protocol.encode_atoms(si8),
                         calc={"model": "unobtainium"})
    assert bad["ok"] is False
    # the rejected load must not leave a half-registered structure behind
    resp = client.request("eval", structure_id="si")
    assert resp["ok"] is False and "load it first" in resp["error"]["message"]
    assert client.request("list")["structures"] == []
    # and a good load afterwards works normally
    assert client.load("si", si8, calc=SW)["ok"] is True
    assert client.request("eval", structure_id="si")["ok"] is True


def test_failed_reload_keeps_old_structure(si8):
    svc = BatchService(nworkers=1, debug_ops=True)
    client = BatchClient(svc, raise_on_error=False)
    client.load("si", si8, calc=SW)
    e_old = client.request("eval", structure_id="si")["energy"]

    shifted = si8.copy()
    shifted.positions += 0.3
    bad = client.request("load", structure_id="si",
                         structure=protocol.encode_atoms(shifted),
                         calc={"model": "sw-si", "typo": 1})
    assert bad["ok"] is False
    # the old structure (and its snapshot) must survive the failed reload:
    # evals still answer for the old geometry ...
    assert client.request("eval", structure_id="si")["energy"] == e_old
    # ... and crash recovery re-materializes with the OLD good spec, not
    # the rejected one (this used to enter a permanent crash loop)
    client.request("debug_crash", structure_id="si")
    after = client.request("eval", structure_id="si")
    assert after["ok"] is True and after["energy"] == e_old
    assert svc.stats()["lifecycle"]["worker_crashes"] == 1
    svc.close()


def test_malformed_cell_is_protocol_error_not_crash(service, si8):
    client = BatchClient(service, raise_on_error=False)
    client.load("si", si8, calc=SW)
    e0 = client.evaluate("si")["energy"]        # warm the state
    # valid positions + malformed cell: NOTHING may be applied — a
    # rejected request must leave the resident geometry untouched
    resp = client.request("eval", structure_id="si",
                          positions=si8.positions + 0.5,
                          cell=[["a", "b", "c"]] * 3)
    assert resp["ok"] is False
    assert resp["error"]["type"] == "ProtocolError"
    assert client.request("eval", structure_id="si")["energy"] == e0
    resp2 = client.request("relax_step", structure_id="si",
                           step_size="not-a-number")
    assert resp2["ok"] is False
    assert resp2["error"]["type"] == "ProtocolError"
    # neither request may have cost the worker (or its warm state)
    stats = service.stats()
    assert stats["lifecycle"]["worker_crashes"] == 0
    assert client.request("eval", structure_id="si")["warm"] is True


def test_non_numeric_spec_field_is_polite_not_crash(si8):
    svc = BatchService(nworkers=1)
    client = BatchClient(svc, raise_on_error=False)
    client.load("good", si8, calc=SW)
    client.request("eval", structure_id="good")     # warm it
    bad = client.request("load", structure_id="bad",
                         structure=protocol.encode_atoms(si8),
                         calc={"model": "gsp-si", "solver": "foe",
                               "kT": 0.2, "order": "abc"})
    assert bad["ok"] is False
    stats = svc.stats()
    # the malformed field must not have cost the worker: no crash, no
    # phantom record, and the co-resident structure kept its warm state
    assert stats["lifecycle"]["worker_crashes"] == 0
    assert "bad" not in stats["structures"]
    assert client.request("eval", structure_id="good")["warm"] is True
    svc.close()


def test_crash_during_first_load_leaves_no_record(si8, monkeypatch):
    from repro.service import worker as worker_mod

    svc = BatchService(nworkers=1)
    client = BatchClient(svc, raise_on_error=False)
    real_factory = worker_mod.make_calculator

    def exploding(spec):
        if spec.get("skin") == 123.0:     # marker for the poisoned load
            raise RuntimeError("boom")
        return real_factory(spec)

    monkeypatch.setattr(worker_mod, "make_calculator", exploding)
    resp = client.request("load", structure_id="si",
                          structure=protocol.encode_atoms(si8),
                          calc={"model": "sw-si", "skin": 123.0})
    assert resp["ok"] is False and "crashed" in resp["error"]["message"]
    stats = svc.stats()
    assert stats["lifecycle"]["worker_crashes"] == 1
    # the crashed first load must not leave a phantom record behind
    assert stats["structures"] == {}
    ev = client.request("eval", structure_id="si")
    assert ev["ok"] is False and "load it first" in ev["error"]["message"]
    # a good load afterwards works
    assert client.load("si", si8, calc=SW)["ok"] is True
    svc.close()


def test_unload_of_evicted_structure_skips_rematerialization(si8):
    svc = BatchService(nworkers=1, memory_budget_bytes=10_000)
    client = BatchClient(svc)
    for sid in ("a", "b", "c"):
        client.load(sid, si8, calc=SW)
        client.evaluate(sid)
    stats = svc.stats()
    evicted = next(s for s, v in stats["structures"].items()
                   if not v["resident"])
    remat_before = stats["lifecycle"]["rematerializations"]
    client.unload(evicted)
    after = svc.stats()
    assert evicted not in after["structures"]
    assert after["lifecycle"]["rematerializations"] == remat_before
    svc.close()


# -- worker crash ------------------------------------------------------------
def test_worker_crash_mid_batch_recovers(si8):
    svc1 = BatchService(nworkers=1, debug_ops=True)
    client = BatchClient(svc1, raise_on_error=False)
    client.load("a", si8, calc=SW)
    client.load("b", si8, calc=SW)
    ref = make_calculator(SW).compute(si8, forces=True)

    out = client.request_many([
        {"op": "eval", "structure_id": "a"},
        {"op": "debug_crash", "structure_id": "b"},
        {"op": "eval", "structure_id": "b"},     # after the crash
    ])
    assert out[0]["ok"] is True
    assert out[1]["ok"] is False
    assert "crashed" in out[1]["error"]["message"]
    # the post-crash request was served by a re-materialized structure
    # and answers exactly like a cold calculator
    assert out[2]["ok"] is True
    assert np.array_equal(np.asarray(out[2]["forces"]), ref["forces"])

    stats = svc1.stats()
    assert stats["lifecycle"]["worker_crashes"] == 1
    assert stats["lifecycle"]["rematerializations"] >= 1
    # 'a' was lost with the worker too; next eval is cold but correct
    ra = client.request("eval", structure_id="a")
    assert ra["ok"] is True and ra["warm"] is False
    assert np.array_equal(np.asarray(ra["forces"]), ref["forces"])
    svc1.close()


def test_debug_crash_disabled_by_default(si8):
    with BatchService(nworkers=1) as svc:
        client = BatchClient(svc, raise_on_error=False)
        client.load("a", si8, calc=SW)
        resp = client.request("debug_crash", structure_id="a")
        assert resp["ok"] is False
        assert "disabled" in resp["error"]["message"]
        assert svc.stats()["lifecycle"]["worker_crashes"] == 0


# -- eviction ----------------------------------------------------------------
def test_eviction_and_rematerialization_parity(si8):
    svc = BatchService(nworkers=1, memory_budget_bytes=10_000)
    client = BatchClient(svc)
    for sid in ("a", "b", "c"):
        client.load(sid, si8, calc=SW)
        client.evaluate(sid)
    stats = svc.stats()
    assert stats["lifecycle"]["evictions"] >= 1
    flags = {s: v["resident"] for s, v in stats["structures"].items()}
    assert not all(flags.values())
    assert flags["c"] is True           # most recently used is never evicted
    assert stats["memory"]["budget_bytes"] == 10_000

    # an evicted structure comes back cold and must agree with a fresh
    # calculator to 1e-10 (in fact: exactly)
    evicted = next(s for s, res in flags.items() if not res)
    res = client.evaluate(evicted)
    ref = make_calculator(SW).compute(si8, forces=True)
    assert np.abs(res["forces"] - ref["forces"]).max() <= 1e-10
    assert abs(res["energy"] - ref["energy"]) <= 1e-10
    assert svc.stats()["lifecycle"]["rematerializations"] >= 1
    svc.close()


def test_no_eviction_without_budget(client, si8):
    for sid in ("a", "b", "c", "d"):
        client.load(sid, si8, calc=SW)
        client.evaluate(sid)
    stats = client.stats()
    assert stats["lifecycle"]["evictions"] == 0
    assert all(v["resident"] for v in stats["structures"].values())
    assert stats["memory"]["resident_bytes"] > 0


# -- routing and batching ----------------------------------------------------
def test_sticky_routing_balances_and_sticks(client, si8):
    workers = {}
    for sid in ("a", "b", "c", "d"):
        client.load(sid, si8, calc=SW)
        workers[sid] = client.evaluate(sid)["worker"]
    assert sorted(workers.values()) == [0, 0, 1, 1]   # least-loaded spread
    for _ in range(3):
        for sid, wid in workers.items():
            assert client.evaluate(sid)["worker"] == wid


def test_batch_preserves_per_structure_order(client, si8):
    client.load("si", si8, calc=SW)
    rng = np.random.default_rng(1)
    seq = [si8.positions + rng.normal(0, 0.01, si8.positions.shape)
           for _ in range(5)]
    out = client.evaluate_many(
        [{"structure_id": "si", "positions": p} for p in seq])
    assert all(o["ok"] for o in out)
    # the resident structure ends at the last submitted geometry
    final = client.service.workers[
        client.service._records["si"].worker_id].slots["si"].atoms
    assert np.array_equal(final.positions, seq[-1])
    stats = client.stats()
    assert stats["batches"]["max_size"] >= 5


def test_mixed_batch_routes_to_both_workers(client, si8):
    client.load("a", si8, calc=SW)
    client.load("b", si8, calc=SW)
    out = client.evaluate_many([{"structure_id": s} for s in "abab"])
    assert {o["worker"] for o in out} == {0, 1}


def test_shutdown_drains_and_rejects_new_work(service, si8):
    client = BatchClient(service, raise_on_error=False)
    client.load("si", si8, calc=SW)
    assert client.request("shutdown")["draining"] is True
    resp = client.request("eval", structure_id="si")
    assert resp["ok"] is False and "draining" in resp["error"]["message"]


def test_stats_shape(client, si8):
    client.load("si", si8, calc=SW)
    client.evaluate("si")
    stats = client.stats()
    for key in ("uptime_s", "n_workers", "queue_depth", "requests_total",
                "errors_total", "batches", "latency_ms", "state_reuse",
                "lifecycle", "memory", "structures"):
        assert key in stats, key
    assert stats["latency_ms"]["p50"] is not None
    assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]
    assert stats["structures"]["si"]["resident_bytes"] > 0
    # the stats payload must be JSON-serializable as-is
    protocol.dumps({"stats": stats})


def test_unload(client, si8):
    client.load("si", si8, calc=SW)
    client.unload("si")
    assert client.list_structures() == []
    with pytest.raises(ServiceError):
        client.evaluate("si")


# -- support pieces ----------------------------------------------------------
def test_coalescing_queue_batches():
    q = CoalescingQueue(batch_window_s=0.01, max_batch=3)
    for i in range(5):
        q.put(i)
    assert q.depth() == 5
    assert q.get_batch() == [0, 1, 2]       # capped at max_batch
    assert q.get_batch() == [3, 4]
    assert q.get_batch(timeout=0.01) == []  # empty → poll timeout


def test_resident_bytes_counts_and_dedups():
    a = np.zeros(1000)
    obj = {"x": a, "y": a[10:], "z": [a, {"w": np.zeros(10)}]}
    assert resident_bytes(obj) == a.nbytes + 80
    assert resident_bytes(None) == 0
    assert resident_bytes("hello") == 0


def test_structure_snapshot_roundtrip(si8):
    si8.velocities[:] = np.arange(len(si8) * 3).reshape(-1, 3) * 1e-3
    orig = si8.positions.copy()
    snap = StructureSnapshot.capture(si8)
    si8.positions += 1.0       # mutate the original; snapshot must not move
    restored = snap.materialize()
    assert restored.symbols == si8.symbols
    assert np.array_equal(restored.positions, orig)
    assert np.array_equal(restored.velocities, si8.velocities)
    assert np.array_equal(restored.cell.matrix, si8.cell.matrix)
    gen = snap.generation
    snap.update(positions=np.zeros((len(si8), 3)))
    assert snap.generation == gen + 1


def test_make_calculator_specs():
    from repro.classical import StillingerWeber
    from repro.linscale import DensityMatrixCalculator, LinearScalingCalculator
    from repro.tb import TBCalculator

    assert isinstance(make_calculator({"model": "sw-si"}), StillingerWeber)
    assert isinstance(make_calculator(DIAG), TBCalculator)
    assert isinstance(make_calculator(LINSCALE), LinearScalingCalculator)
    foe = make_calculator({"model": "gsp-si", "solver": "foe", "kT": 0.2})
    assert isinstance(foe, DensityMatrixCalculator)
    with pytest.raises(ReproError, match="unknown calculator spec"):
        make_calculator({"model": "sw-si", "oops": 1})
    with pytest.raises(ReproError, match="unknown model"):
        make_calculator({"model": "unobtainium"})
    with pytest.raises(ReproError, match="unknown solver"):
        make_calculator({"model": "gsp-si", "solver": "magic"})
    with pytest.raises(ReproError, match="classical"):
        make_calculator({"model": "sw-si", "solver": "linscale"})


# -- Result envelope ---------------------------------------------------------
def test_result_envelope_wire_format(client, si8):
    """Responses serialise as the documented envelope — id/ok/value/
    error/timings/metrics at the top level, payload under "value" —
    while item access still reaches the flat payload keys."""
    client.load("si", si8, calc=SW)
    resp = client.request("eval", structure_id="si", forces=True)
    assert isinstance(resp, protocol.Result)
    wire = protocol.loads(protocol.dumps(resp))
    assert set(wire) <= set(protocol.ENVELOPE_KEYS)
    assert wire["ok"] is True
    assert "energy" in wire["value"] and "energy" not in wire
    # flat fall-through: all pre-envelope call sites keep working
    assert resp["energy"] == wire["value"]["energy"]
    assert "energy" in resp and "nonexistent" not in resp
    assert resp.get("nonexistent", 42) == 42


def test_result_envelope_carries_worker_timings(client, si8):
    client.load("si", si8, calc=SW)
    resp = client.request("eval", structure_id="si")
    assert resp.timings["seconds"] > 0
    # warm/cold is mirrored into envelope metrics by the worker
    resp2 = client.request("eval", structure_id="si")
    assert resp2.metrics["warm"] in (True, False)


def test_error_envelope_carries_op(client, si8):
    client.raise_on_error = False
    resp = client.request("eval", structure_id="ghost")
    assert resp.ok is False
    assert resp.error["type"] == "ServiceError"
    assert resp.error["op"] == "eval"
    # and the raising client threads the op into the message
    client.raise_on_error = True
    with pytest.raises(ServiceError, match="during op 'eval'"):
        client.request("eval", structure_id="ghost")


def test_result_from_response_folds_legacy_flat_payloads():
    legacy = {"id": 7, "ok": True, "energy": -34.5, "natoms": 8}
    res = protocol.Result.from_response(legacy)
    assert res.ok is True and res["energy"] == -34.5
    assert res.value == {"energy": -34.5, "natoms": 8}
    assert protocol.Result.from_response(res) is res


def test_bad_spec_error_names_the_load_op(client, si8):
    with pytest.raises(ServiceError, match="op 'load'.*did you mean"):
        client.load("si", si8, calc={"model": "sw-si", "skim": 1.0})

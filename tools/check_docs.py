#!/usr/bin/env python
"""Docs CI: execute documentation code blocks and verify relative links.

Keeps README.md and docs/ honest:

* every fenced ``python`` code block is executed — blocks within one
  file share a namespace (tutorials build up state block by block), and
  any exception fails the check;
* every relative markdown link target (``[text](path)``, anchors
  stripped) must exist on disk.

Blocks that must not run (e.g. illustrative pseudo-code) can be fenced
as ``python no-exec``.  Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

FENCE_RE = re.compile(r"^```(\w+)?([^\n`]*)\n(.*?)^```\s*$",
                      re.MULTILINE | re.DOTALL)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_python_blocks(text: str):
    for match in FENCE_RE.finditer(text):
        lang = (match.group(1) or "").lower()
        info = (match.group(2) or "").strip()
        if lang == "python" and "no-exec" not in info:
            line = text[: match.start()].count("\n") + 2
            yield line, match.group(3)


def check_code_blocks(path: Path) -> list[str]:
    failures = []
    namespace: dict = {"__name__": f"docs::{path.name}"}
    for line, code in iter_python_blocks(path.read_text()):
        t0 = time.perf_counter()
        try:
            exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(
                f"{path.relative_to(ROOT)}:{line}: code block raised "
                f"{type(exc).__name__}: {exc}")
        else:
            print(f"  ok   {path.name}:{line} "
                  f"({time.perf_counter() - t0:.2f}s)")
    return failures


def check_links(path: Path) -> list[str]:
    failures = []
    for target in LINK_RE.findall(path.read_text()):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (path.parent / rel).exists():
            failures.append(
                f"{path.relative_to(ROOT)}: broken link -> {target}")
    return failures


def main() -> int:
    failures: list[str] = []
    for doc in DOC_FILES:
        if not doc.exists():
            failures.append(f"missing documentation file: {doc}")
            continue
        print(f"checking {doc.relative_to(ROOT)}")
        failures += check_code_blocks(doc)
        failures += check_links(doc)
    if failures:
        print("\nDOCS CHECK FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\ndocs check passed ({len(DOC_FILES)} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Dependency-free line-coverage measurement for the electronic engines.

CI enforces a ``pytest-cov`` floor over ``src/repro/tb`` and
``src/repro/linscale`` (the numerics where a silently-dead branch means
silently-wrong physics).  The container this repo grows in has no
``coverage`` package, so this tool measures the same quantity with the
stdlib only — ``sys.monitoring`` (PEP 669) on Python ≥ 3.12, or a
targeted ``sys.settrace`` (local tracing enabled only for frames inside
the target trees, so foreign code pays one call-event per function) on
3.11.  "Executable lines" are taken from the compiled code objects, the
same source of truth coverage.py uses.  Use it to (re)calibrate the CI
``--cov-fail-under`` floor::

    PYTHONPATH=src python tools/measure_coverage.py            # full tier-1
    PYTHONPATH=src python tools/measure_coverage.py tests/test_linscale.py

Numbers track coverage.py to within a couple of points (it prunes a few
more pragmas/continue-lines than raw code objects do), which is why the
CI floor is set a margin below the measured baseline.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
TARGETS = ("src/repro/tb", "src/repro/linscale")


def executable_lines(path: pathlib.Path) -> set[int]:
    """Line numbers carrying executable code, from the compiled module."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        lines.update(ln for _, _, ln in co.co_lines() if ln is not None)
        stack.extend(c for c in co.co_consts if hasattr(c, "co_lines"))
    lines.discard(0)
    return lines


def _run_pytest(argv: list[str]) -> int:
    import pytest

    # `python -m pytest` gets the repo root on sys.path for free; an
    # in-process pytest.main launched from tools/ must add it itself or
    # `from tests.helpers import ...` fails at collection
    if str(REPO) not in sys.path:
        sys.path.insert(0, str(REPO))
    return pytest.main(argv or ["tests", "-q", "--no-header", "-p",
                                "no:cacheprovider"])


def _trace_monitoring(argv, prefixes, covered) -> int:
    """Python ≥ 3.12: PEP 669 line events, near-zero foreign overhead."""
    mon = sys.monitoring
    tool = mon.COVERAGE_ID

    def on_line(code, line):
        fn = code.co_filename
        if fn.startswith(prefixes):
            covered.setdefault(fn, set()).add(line)
            return None
        return mon.DISABLE          # never pay for this code object again

    mon.use_tool_id(tool, "pytbmd-coverage")
    mon.register_callback(tool, mon.events.LINE, on_line)
    mon.set_events(tool, mon.events.LINE)
    try:
        return _run_pytest(argv)
    finally:
        mon.set_events(tool, 0)
        mon.free_tool_id(tool)


def _trace_settrace(argv, prefixes, covered) -> int:
    """Python 3.11 fallback: local tracing only inside the targets."""

    def local(frame, event, arg):
        if event == "line":
            covered[frame.f_code.co_filename].add(frame.f_lineno)
        return local

    def global_trace(frame, event, arg):
        fn = frame.f_code.co_filename
        if fn.startswith(prefixes):
            covered.setdefault(fn, set()).add(frame.f_lineno)
            return local
        return None                 # foreign frame: no line tracing

    sys.settrace(global_trace)
    import threading

    threading.settrace(global_trace)
    try:
        return _run_pytest(argv)
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def main(argv: list[str]) -> int:
    prefixes = tuple(str(REPO / t) + "/" for t in TARGETS)
    covered: dict[str, set[int]] = {}
    if sys.version_info >= (3, 12):
        rc = _trace_monitoring(argv, prefixes, covered)
    else:
        rc = _trace_settrace(argv, prefixes, covered)

    total_exec = total_hit = 0
    rows = []
    for target in TARGETS:
        for path in sorted((REPO / target).rglob("*.py")):
            must = executable_lines(path)
            hit = covered.get(str(path), set()) & must
            total_exec += len(must)
            total_hit += len(hit)
            pct = 100.0 * len(hit) / len(must) if must else 100.0
            rows.append((str(path.relative_to(REPO)), len(must),
                         len(must) - len(hit), pct))

    width = max(len(r[0]) for r in rows)
    print(f"\n{'module':<{width}}  {'lines':>6} {'miss':>6} {'cover':>7}")
    for name, n, miss, pct in rows:
        print(f"{name:<{width}}  {n:>6} {miss:>6} {pct:>6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<{width}}  {total_exec:>6} "
          f"{total_exec - total_hit:>6} {overall:>6.1f}%")
    return rc


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

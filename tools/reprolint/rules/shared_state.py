"""Rule: no unguarded mutable module-level state in the concurrent tiers.

``src/repro/service/`` runs a threaded transport over a worker pool and
``src/repro/parallel/`` fans work across threads and processes; a
module-level ``dict``/``list``/``set`` there is shared by every thread
that imports the module.  ROADMAP items 1 and 5 (multi-worker,
multi-host service) make this the bug class runtime tests are worst at:
the race only fires under load.  Flagged: module-level assignment of a
mutable container literal or constructor, unless the module also
defines a module-level ``threading.Lock``/``RLock`` (the container is
then taken to be guarded by it — keep them adjacent) or the value is
wrapped in ``MappingProxyType``/``frozenset``/``tuple``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.engine import Finding, ModuleContext, Rule

SCOPES = ("src/repro/service", "src/repro/parallel")

MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter",
})
LOCK_CALLS = frozenset({"Lock", "RLock", "Condition", "Semaphore"})


def _call_name(node: ast.Call) -> str:
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return ""


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    return isinstance(value, ast.Call) and _call_name(value) in MUTABLE_CALLS


class SharedStateRule(Rule):
    id = "shared-state"
    hint = ("guard the container with a module-level threading.Lock, make "
            "it immutable (tuple/frozenset/MappingProxyType), or move it "
            "into an instance")
    description = ("module-level mutable containers in service/ and "
                   "parallel/ must be lock-guarded or frozen")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir(*SCOPES):
            return
        has_lock = any(
            isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and isinstance(getattr(stmt, "value", None), ast.Call)
            and _call_name(stmt.value) in LOCK_CALLS
            for stmt in ctx.tree.body)
        for stmt in ctx.tree.body:
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not _is_mutable_value(value) or has_lock:
                continue
            plain = [t.id for t in targets if isinstance(t, ast.Name)]
            # dunder module metadata (__all__ and friends) is written
            # once at import time, not shared mutable state
            if plain and all(n.startswith("__") and n.endswith("__")
                             for n in plain):
                continue
            names = ", ".join(plain)
            yield self.finding(
                ctx, stmt,
                f"module-level mutable container {names or '<target>'} in a "
                f"concurrent tier with no module-level lock")

"""Rule: telemetry names are literals, on-catalog, and well-formed.

``tools/check_metrics.py`` gates CI on metric *names* (fused-path hit
rate, pattern-cache rate, backend speedup), and ``tools/trace_report.py``
aggregates spans by name.  Both go quietly blind when a call site
renames an instrument or builds its name at runtime.  So, for every
call into ``repro.obs`` (``counter_inc`` / ``gauge_set`` / ``observe``
/ ``span``) outside ``src/repro/obs/`` itself:

* an f-string / ``%`` / ``.format`` / concatenated name is flagged
  outright — dynamic names make an unbounded, ungateable namespace
  (map the variants to a fixed set of literals instead);
* a literal name must match the ``area.noun[_qualifier]`` convention
  (2–4 lowercase dotted segments) **and** appear in the catalog in
  ``docs/observability.md`` — documenting the instrument is part of
  adding it;
* a plain variable is let through: the fixed-literal check happens
  wherever the variable was assigned.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.catalog import matches_convention, parse_catalog
from tools.reprolint.engine import Finding, ModuleContext, Rule

#: repro.obs entry points whose first argument is an instrument name
OBS_NAME_APIS = frozenset({"counter_inc", "gauge_set", "observe", "span"})


def _obs_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases, directly-imported helper names) for repro.obs."""
    mod_aliases: set[str] = set()
    func_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name in ("repro.obs", "repro.obs.metrics",
                              "repro.obs.spans"):
                    mod_aliases.add((a.asname or a.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module == "repro":
                for a in node.names:
                    if a.name == "obs":
                        mod_aliases.add(a.asname or a.name)
            elif node.module in ("repro.obs", "repro.obs.metrics",
                                 "repro.obs.spans"):
                for a in node.names:
                    if a.name in ("metrics", "spans"):
                        mod_aliases.add(a.asname or a.name)
                    elif a.name in OBS_NAME_APIS:
                        func_aliases.add(a.asname or a.name)
    return mod_aliases, func_aliases


class TelemetryCatalogRule(Rule):
    id = "telemetry-catalog"
    hint = ("use a fixed literal name following area.noun[_qualifier] and "
            "add it to the catalog table in docs/observability.md")
    description = ("metric/span names passed to repro.obs must be literal, "
                   "convention-shaped, and listed in docs/observability.md")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir("src") or ctx.in_dir("src/repro/obs"):
            return
        mod_aliases, func_aliases = _obs_aliases(ctx.tree)
        if not mod_aliases and not func_aliases:
            return
        catalog = ctx.config.catalog_names
        if catalog is None:
            catalog = parse_catalog(ctx.config.root)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            api = self._obs_api(node.func, mod_aliases, func_aliases)
            if api is None:
                continue
            yield from self._check_name_arg(ctx, api, node.args[0], catalog)

    @staticmethod
    def _obs_api(func: ast.expr, mod_aliases: set[str],
                 func_aliases: set[str]) -> str | None:
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in mod_aliases
                and func.attr in OBS_NAME_APIS):
            return func.attr
        if isinstance(func, ast.Name) and func.id in func_aliases:
            return func.id
        return None

    def _check_name_arg(self, ctx: ModuleContext, api: str, arg: ast.expr,
                        catalog: frozenset[str]) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if not matches_convention(name):
                yield self.finding(
                    ctx, arg,
                    f"obs.{api}({name!r}): name does not follow the "
                    f"area.noun[_qualifier] convention")
            elif catalog and name not in catalog:
                yield self.finding(
                    ctx, arg,
                    f"obs.{api}({name!r}): name is not in the "
                    f"docs/observability.md catalog")
        elif isinstance(arg, ast.JoinedStr) or (
                isinstance(arg, ast.BinOp)
                and isinstance(arg.op, (ast.Add, ast.Mod))) or (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "format"):
            yield self.finding(
                ctx, arg,
                f"obs.{api}(...): dynamic metric/span name — the gates in "
                f"tools/check_metrics.py can only key on fixed literals",
                hint="map the run-time variants to a fixed dict of literal "
                     "names, all listed in docs/observability.md")
        # bare Name / attribute args: checked where the literal is assigned

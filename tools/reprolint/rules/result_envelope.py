"""Rule: the service tier speaks exactly one response envelope.

PR 8 consolidated every service op, CLI ``--json`` path and scenario
outcome onto :class:`repro.service.protocol.Result` — one shape with
``id``/``ok``/``value``/``error``/``timings``/``metrics``, constructed
via ``Result.success`` / ``Result.failure`` / ``ok_response`` /
``error_response``.  A hand-assembled ``{"ok": True, ...}`` dict
bypasses the envelope's key discipline (and any future field the
envelope grows), and is exactly the drift this rule exists to stop.

Checks, under ``src/repro/service/``, ``src/repro/scenarios/`` and
``src/repro/cli.py`` (``protocol.py`` itself is exempt — it *defines*
the envelope):

* any ``dict`` literal with an ``"ok"`` key → use the ``Result``
  constructors;
* a ``run()`` method in ``src/repro/scenarios/`` returning a ``dict``
  literal → return a typed result object instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.engine import Finding, ModuleContext, Rule

SCOPES = ("src/repro/service", "src/repro/scenarios")
EXEMPT = ("src/repro/service/protocol.py",)


class ResultEnvelopeRule(Rule):
    id = "result-envelope"
    hint = ("construct repro.service.protocol.Result (Result.success / "
            "Result.failure / ok_response / error_response) instead of an "
            "ad-hoc dict")
    description = ("service ops, CLI --json paths and scenario run() must "
                   "speak the Result envelope, not hand-rolled dicts")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_dir(*EXEMPT):
            return
        if not (ctx.in_dir(*SCOPES) or ctx.rel == "src/repro/cli.py"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Dict) and self._has_ok_flag(node):
                yield self.finding(
                    ctx, node,
                    "ad-hoc response dict carrying a boolean 'ok' flag — "
                    "this is the Result envelope's job")
        if ctx.in_dir("src/repro/scenarios"):
            yield from self._check_run_returns(ctx)

    @staticmethod
    def _has_ok_flag(node: ast.Dict) -> bool:
        """True for an ``"ok"`` key whose value is a success *flag*
        (bool constant, comparison, or boolean op) — an ``"ok"`` key
        holding e.g. a success *count* is not an envelope."""
        def flag_shaped(v: ast.expr | None) -> bool:
            if isinstance(v, (ast.Compare, ast.BoolOp, ast.UnaryOp)):
                return True
            return isinstance(v, ast.Constant) and isinstance(v.value, bool)

        return any(isinstance(k, ast.Constant) and k.value == "ok"
                   and flag_shaped(v)
                   for k, v in zip(node.keys, node.values))

    def _check_run_returns(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for m in cls.body:
                if (isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and m.name == "run"):
                    for sub in ast.walk(m):
                        if (isinstance(sub, ast.Return)
                                and isinstance(sub.value, ast.Dict)):
                            yield self.finding(
                                ctx, sub,
                                f"{cls.name}.run() returns a bare dict "
                                f"literal — scenarios return typed results",
                                hint="return a ScenarioResult / Result, "
                                     "not a dict literal")

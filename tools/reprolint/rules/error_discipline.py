"""Rule: no bare ``except:``; the service/scenario tiers raise
``ReproError`` subclasses, not raw builtins.

A bare ``except:`` swallows ``KeyboardInterrupt`` and ``SystemExit`` —
in a long-running server that turns Ctrl-C into a hung worker.  And the
transport tier maps exceptions onto the ``Result`` error envelope by
*type*: a ``ValueError`` raised inside a service op crosses the wire as
an anonymous internal error with no op context, where a
:class:`repro.errors.ReproError` subclass carries its code and context
dict into ``Result.failure``.  Hence, under ``src/repro/service/`` and
``src/repro/scenarios/``, ``raise <builtin>(...)`` is flagged
(``NotImplementedError`` excepted — abstract-seam convention).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.engine import Finding, ModuleContext, Rule

RAISE_SCOPES = ("src/repro/service", "src/repro/scenarios")

#: builtins that must not cross the service/scenario seam
FLAGGED_BUILTINS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "LookupError", "AttributeError", "RuntimeError",
    "OSError", "IOError", "FileNotFoundError", "TimeoutError",
    "ConnectionError", "ArithmeticError", "ZeroDivisionError",
    "StopIteration", "AssertionError", "NameError", "SystemError",
})


class ErrorDisciplineRule(Rule):
    id = "error-discipline"
    hint = ("raise a repro.errors.ReproError subclass carrying op context "
            "(and catch specific exception types, never bare except)")
    description = ("no bare except:; service/scenario code raises "
                   "ReproError subclasses with op context")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir("src", "tools", "benchmarks"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit",
                    hint="catch Exception (or something narrower)")
        if ctx.in_dir(*RAISE_SCOPES):
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Raise):
                    yield from self._check_raise(ctx, node)

    def _check_raise(self, ctx: ModuleContext,
                     node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in FLAGGED_BUILTINS:
            yield self.finding(
                ctx, node,
                f"raise {exc.id} in the service/scenario tier — crosses "
                f"the transport as an anonymous internal error")

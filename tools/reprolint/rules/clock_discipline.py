"""Rule: one clock, owned by ``obs``/``utils.timing``.

Span timestamps are wall-clock-aligned: ``repro.obs.spans`` anchors an
epoch offset once (``time.time() - perf_counter()``) and stamps every
span with ``offset + perf_counter()``, which is what lets traces from
different processes merge onto one timeline.  A call site reading
``time.time()`` directly produces timestamps that *almost* agree with
the spans — drifting apart exactly when NTP steps the wall clock
mid-run, the least debuggable moment possible.  Durations measured with
a private ``perf_counter()`` pair are harmless today and wrong tomorrow
(no span, no histogram, invisible to the trace report).

So: outside ``src/repro/obs/`` and ``src/repro/utils/timing.py``,
``time.time()`` and ``time.perf_counter()`` are off limits under
``src/repro/`` — use ``repro.utils.timing.tick()`` for durations,
``wall_now()`` for span-aligned wall time, or a ``PhaseTimer``/span.
``time.monotonic()`` (deadline arithmetic) stays allowed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.engine import Finding, ModuleContext, Rule

BANNED_ATTRS = frozenset({"time", "perf_counter"})
EXEMPT = ("src/repro/obs", "src/repro/utils/timing.py")


class ClockDisciplineRule(Rule):
    id = "clock-discipline"
    hint = ("use repro.utils.timing.tick() for durations and wall_now() "
            "for span-aligned wall time (time.monotonic is fine for "
            "deadlines)")
    description = ("no raw time.time()/time.perf_counter() outside "
                   "obs/ and utils/timing.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir("src/repro") or ctx.in_dir(*EXEMPT):
            return
        time_aliases = {"time"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "time" and a.asname:
                        time_aliases.add(a.asname)
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                banned = sorted(a.name for a in node.names
                                if a.name in BANNED_ATTRS)
                if banned:
                    yield self.finding(
                        ctx, node,
                        f"importing {', '.join(banned)} from time — raw "
                        f"clocks drift from the span timeline")
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in time_aliases
                    and node.attr in BANNED_ATTRS):
                yield self.finding(
                    ctx, node,
                    f"raw time.{node.attr}() — drifts from the "
                    f"wall-aligned span timeline")

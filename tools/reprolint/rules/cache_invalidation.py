"""Rule: every cache attribute a calculator/builder assigns must be
cleared on its reset/invalidate path.

This is the PR-2 stale-state bug class.  The repository's whole fast
path rests on the :class:`repro.state.CalculatorState` invalidation
contract: persistent machinery (neighbour lists, sparse patterns,
localization regions, spectral windows, warm μ, results) lives in
attributes named ``*_cache`` / ``_cached_*`` / ``_cache_key`` and MUST
be dropped when the owning object is told to forget everything —
otherwise an in-place model mutation or a service re-materialization
silently serves results for a geometry that no longer exists.

The check is purely structural: for every class that looks like a
calculator or builder (name contains ``Calculator`` / ``Builder``, or
it defines a reset-family method), every cache-named attribute assigned
anywhere in the class must also be assigned (cleared) or deleted inside
at least one reset-family method — ``reset`` / ``invalidate`` /
``_reset_persistent`` / ``_reset_state`` / ``_full_reset`` / ``clear``
— either directly or in a ``self.<helper>()`` the reset method calls.

Caches that are *self-validating* (keyed by a geometry fingerprint
checked on every read) are still required to clear: clearing is always
correct, costs nothing, and keeps the contract uniform enough to be
machine-checkable.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from tools.reprolint.engine import Finding, ModuleContext, Rule

#: attribute names treated as step-to-step cache state
CACHE_ATTR_RE = re.compile(r"(^|_)cached?(_|$)")

#: method names that form the reset/invalidate path of a class
RESET_METHOD_NAMES = frozenset({
    "reset", "invalidate", "clear",
    "_reset", "_reset_persistent", "_reset_state", "_full_reset",
})

CLASS_NAME_RE = re.compile(r"Calculator|Builder")


def _self_attr_targets(node: ast.AST) -> Iterator[str]:
    """Names X for every ``self.X = ...`` / ``del self.X`` in *node*."""
    for sub in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            targets = [sub.target]
        elif isinstance(sub, ast.Delete):
            targets = list(sub.targets)
        for t in targets:
            # unpack tuple targets: self.a, self.b = ...
            elts = t.elts if isinstance(t, (ast.Tuple, ast.List)) else [t]
            for e in elts:
                if (isinstance(e, ast.Attribute)
                        and isinstance(e.value, ast.Name)
                        and e.value.id == "self"):
                    yield e.attr


def _self_calls(node: ast.AST) -> Iterator[str]:
    """Names M for every ``self.M(...)`` call in *node*."""
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == "self"):
            yield sub.func.attr


class CacheInvalidationRule(Rule):
    id = "cache-invalidation"
    hint = ("clear the attribute in the class's reset/invalidate method "
            "(assign its empty/None state), or rename it if it is not "
            "cache state")
    description = ("cache attributes assigned by calculator/builder "
                   "classes must be cleared on the reset/invalidate path")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir("src"):
            return
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(ctx, cls)

    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = {m.name: m for m in cls.body
                   if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))}
        reset_methods = [m for name, m in methods.items()
                         if name in RESET_METHOD_NAMES]
        in_scope = bool(CLASS_NAME_RE.search(cls.name)) or bool(reset_methods)
        if not in_scope:
            return

        # cache attrs assigned anywhere in the class, with first location
        assigned: dict[str, int] = {}
        for _name, m in methods.items():
            for attr in _self_attr_targets(m):
                if CACHE_ATTR_RE.search(attr):
                    node_line = assigned.get(attr)
                    if node_line is None or m.name == "__init__":
                        assigned.setdefault(attr, m.lineno)
        if not assigned:
            return

        if not reset_methods:
            names = ", ".join(sorted(assigned))
            yield self.finding(
                ctx, cls,
                f"class {cls.name} assigns cache attribute(s) {names} but "
                f"defines no reset/invalidate method")
            return

        # attrs cleared in a reset method, directly or one self-call deep
        cleared: set[str] = set()
        for m in reset_methods:
            cleared.update(_self_attr_targets(m))
            for callee in _self_calls(m):
                helper = methods.get(callee)
                if helper is not None:
                    cleared.update(_self_attr_targets(helper))

        for attr in sorted(set(assigned) - cleared):
            yield self.finding(
                ctx, assigned[attr],
                f"cache attribute self.{attr} of {cls.name} is never "
                f"cleared in its reset path "
                f"({', '.join(sorted(m.name for m in reset_methods))})")

"""Rule: optional heavy dependencies never import at module top level.

The package promises a numpy/scipy-only core: ``ase`` (the calculator
bridge), ``numba`` (the JIT backend) and ``cupy`` (GPU experiments) are
*optional*, probed with ``importlib.util.find_spec`` or a
``try/except ImportError`` at the point of use.  One top-level
``import ase`` in a core module makes ``import repro`` itself fail on a
lean install — the bug only surfaces on machines that don't have the
dev environment, which is why it needs a static check.

Allowed placements for ``import ase|numba|cupy``:

* inside a function or method (lazy import after a guard),
* inside a ``try:`` whose handlers catch ``ImportError`` /
  ``ModuleNotFoundError``,
* inside an ``if TYPE_CHECKING:`` block (no runtime import).

Everything else under ``src/repro/`` is flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.engine import Finding, ModuleContext, Rule

OPTIONAL_DEPS = frozenset({"ase", "numba", "cupy"})


def _root_pkg(name: str) -> str:
    return name.split(".")[0]


def _is_type_checking_if(node: ast.If) -> bool:
    t = node.test
    return (isinstance(t, ast.Name) and t.id == "TYPE_CHECKING") or (
        isinstance(t, ast.Attribute) and t.attr == "TYPE_CHECKING")


def _try_catches_import_error(node: ast.Try) -> bool:
    for h in node.handlers:
        types = []
        if h.type is None:
            return True
        if isinstance(h.type, ast.Tuple):
            types = list(h.type.elts)
        else:
            types = [h.type]
        for t in types:
            name = t.id if isinstance(t, ast.Name) else getattr(t, "attr", "")
            if name in ("ImportError", "ModuleNotFoundError"):
                return True
    return False


class ImportGuardRule(Rule):
    id = "import-guard"
    hint = ("move the import behind importlib.util.find_spec / "
            "try-except ImportError, into the using function, or under "
            "if TYPE_CHECKING")
    description = ("optional deps (ase, numba, cupy) must not import at "
                   "module top level of core modules")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir("src/repro"):
            return
        yield from self._scan(ctx, ctx.tree.body, guarded=False)

    def _scan(self, ctx: ModuleContext, body: list[ast.stmt],
              guarded: bool) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                mod = (node.module or "" if isinstance(node, ast.ImportFrom)
                       else "")
                names = ([mod] if mod else
                         [a.name for a in node.names])
                hit = sorted({_root_pkg(n) for n in names}
                             & OPTIONAL_DEPS)
                if hit and not guarded:
                    yield self.finding(
                        ctx, node,
                        f"optional dependency import of {', '.join(hit)} at "
                        f"module top level — breaks numpy/scipy-only "
                        f"installs at import time")
            elif isinstance(node, ast.Try):
                ok = guarded or _try_catches_import_error(node)
                yield from self._scan(ctx, node.body, guarded=ok)
                for h in node.handlers:
                    yield from self._scan(ctx, h.body, guarded)
                yield from self._scan(ctx, node.orelse, guarded)
                yield from self._scan(ctx, node.finalbody, guarded)
            elif isinstance(node, ast.If):
                ok = guarded or _is_type_checking_if(node)
                yield from self._scan(ctx, node.body, guarded=ok)
                yield from self._scan(ctx, node.orelse, guarded)
            elif isinstance(node, (ast.With, ast.For, ast.While)):
                # still module level — no guard implied
                yield from self._scan(ctx, node.body, guarded)
            # function/class bodies are not scanned: imports there are lazy

"""Rule registry: every reprolint rule, instantiated once.

To add a rule: write a module in this package with a class deriving
:class:`tools.reprolint.engine.Rule` (set ``id``, ``hint``,
``description``, implement ``check``), import it here and append it to
:data:`RULE_CLASSES`.  The CLI, the tier-1 test and the CI job all pick
it up from :func:`all_rules` — there is no second list to update.
"""

from __future__ import annotations

from tools.reprolint.engine import Rule
from tools.reprolint.rules.cache_invalidation import CacheInvalidationRule
from tools.reprolint.rules.clock_discipline import ClockDisciplineRule
from tools.reprolint.rules.error_discipline import ErrorDisciplineRule
from tools.reprolint.rules.import_guard import ImportGuardRule
from tools.reprolint.rules.result_envelope import ResultEnvelopeRule
from tools.reprolint.rules.shared_state import SharedStateRule
from tools.reprolint.rules.telemetry_catalog import TelemetryCatalogRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    CacheInvalidationRule,
    ResultEnvelopeRule,
    TelemetryCatalogRule,
    ImportGuardRule,
    ErrorDisciplineRule,
    ClockDisciplineRule,
    SharedStateRule,
)


def all_rules() -> list[Rule]:
    return [cls() for cls in RULE_CLASSES]


def rule_ids() -> tuple[str, ...]:
    return tuple(cls.id for cls in RULE_CLASSES)

"""Telemetry-name catalog, parsed from ``docs/observability.md``.

The CI metric gates (``tools/check_metrics.py``) and the trace report
key on *names*: a counter that drifts from ``foe.fused`` to
``foe.fused_total`` silently un-gates the fused-path floor.  The
catalog is therefore the doc itself — every metric and span name that
appears in inline backticks in ``docs/observability.md``.  The
telemetry-catalog rule checks instrumented call sites against this set,
so adding an instrument *requires* documenting it, in the same commit.
"""

from __future__ import annotations

import re
from pathlib import Path

#: the area.noun[_qualifier] convention: 2-4 lowercase dotted segments
#: (hyphens allowed after the first segment: neighbors.rebuild.cell-unmappable)
NAME_RE = re.compile(r"[a-z][a-z0-9_]*(\.[a-z0-9_-]+){1,3}")

_BACKTICK_RE = re.compile(r"`([^`\n]+)`")

CATALOG_DOC = "docs/observability.md"


def matches_convention(name: str) -> bool:
    return NAME_RE.fullmatch(name) is not None


def parse_catalog(root: Path) -> frozenset[str]:
    """Every convention-shaped name in backticks in the catalog doc.

    Returns the empty set when the doc is absent (fixture trees); the
    rule treats that as "no catalog → only the convention is checked".
    """
    doc = Path(root) / CATALOG_DOC
    if not doc.exists():
        return frozenset()
    names = set()
    for m in _BACKTICK_RE.finditer(doc.read_text()):
        text = m.group(1).strip()
        if matches_convention(text):
            names.add(text)
    return frozenset(names)

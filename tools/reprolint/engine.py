"""The reprolint rule engine: findings, suppressions, baseline, runner.

reprolint is a stdlib-``ast`` static checker for this repository's
*cross-cutting invariants* — contracts that no single runtime test owns
(the CalculatorState cache-invalidation contract, the one-``Result``
response envelope, the telemetry name catalog, optional-dependency
import guards, the error/clock/shared-state disciplines).  Each rule is
one visitor class in :mod:`tools.reprolint.rules`; this module supplies
everything around them:

* :class:`Finding` — one violation: rule id, file:line, message, fix
  hint, rendered as human text or GitHub workflow annotations;
* inline suppressions — ``# reprolint: disable=<rule>[,<rule>...]`` on
  the offending line (or ``disable-file=`` anywhere for a whole file),
  for *documented* false positives only;
* a checked-in JSON baseline for grandfathered findings (matched by
  (rule, path, message) — line numbers may drift with unrelated edits);
* :func:`run_paths` — parse every ``*.py`` under the given paths once,
  apply every rule, filter suppressions, and return sorted findings.

The engine knows nothing about any specific rule; adding one means
writing a class with ``id``/``hint``/``check(ctx)`` and registering it
in ``rules/__init__.py`` (see docs/static-analysis.md).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import Any

#: repository root (tools/reprolint/engine.py -> tools/reprolint -> tools -> root)
REPO_ROOT = Path(__file__).resolve().parents[2]

#: pseudo-rule id used when a file cannot be parsed at all
PARSE_ERROR_RULE = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([a-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str        # repository-relative, POSIX separators
    line: int
    message: str
    hint: str = ""

    @property
    def baseline_key(self) -> str:
        """Line-number-free identity used for baseline matching, so an
        unrelated edit above a grandfathered finding does not churn the
        baseline file."""
        return f"{self.path}::{self.rule}::{self.message}"

    def format(self, fmt: str = "text") -> str:
        if fmt == "github":
            # one GitHub Actions workflow annotation per finding
            msg = self.message + (f" [fix: {self.hint}]" if self.hint else "")
            return (f"::error file={self.path},line={self.line},"
                    f"title=reprolint({self.rule})::{msg}")
        out = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            out += f"\n    fix: {self.hint}"
        return out


class Rule:
    """Base class for one reprolint rule.

    Subclasses set :attr:`id` (kebab-case, the name used by
    ``# reprolint: disable=<id>`` and the baseline) and :attr:`hint`
    (the generic fix advice), and implement :meth:`check`, yielding
    :class:`Finding` objects for one parsed module.
    """

    id: str = ""
    hint: str = ""
    description: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, ctx: "ModuleContext", node: ast.AST | int,
                message: str, hint: str | None = None) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(rule=self.id, path=ctx.rel, line=line,
                       message=message,
                       hint=self.hint if hint is None else hint)


@dataclass
class RunConfig:
    """Per-run knobs the rules may consult.

    ``root`` anchors repository-relative paths (rules scope themselves
    by path prefix, e.g. ``src/repro/service/``); tests point it at a
    fixture tree.  ``catalog_names`` overrides the telemetry-name
    catalog normally parsed from ``docs/observability.md``.
    """

    root: Path = REPO_ROOT
    catalog_names: frozenset[str] | None = None


@dataclass
class ModuleContext:
    """Everything one rule needs to check one parsed module."""

    path: Path
    rel: str
    tree: ast.Module
    source: str
    lines: list[str]
    config: RunConfig

    def in_dir(self, *prefixes: str) -> bool:
        return any(self.rel == p or self.rel.startswith(p.rstrip("/") + "/")
                   for p in prefixes)


@dataclass
class Suppressions:
    """Inline suppression directives parsed from one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def scan(cls, lines: list[str]) -> "Suppressions":
        sup = cls()
        for i, line in enumerate(lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
            if m.group(1) == "disable-file":
                sup.file_wide |= rules
            else:
                sup.by_line.setdefault(i, set()).update(rules)
        return sup

    def hides(self, finding: Finding) -> bool:
        if finding.rule in self.file_wide or "all" in self.file_wide:
            return True
        at_line = self.by_line.get(finding.line, ())
        return finding.rule in at_line or "all" in at_line


# -- baseline ---------------------------------------------------------------

def load_baseline(path: Path | None) -> dict[str, dict]:
    """Baseline file → ``{baseline_key: entry}``.  Every entry must
    carry a non-empty ``reason`` — a grandfathered finding with no
    documented justification is itself an error."""
    if path is None or not Path(path).exists():
        return {}
    data = json.loads(Path(path).read_text())
    out: dict[str, dict] = {}
    for entry in data.get("entries", ()):
        for key in ("rule", "path", "message", "reason"):
            if not entry.get(key):
                raise ValueError(
                    f"baseline entry {entry!r} is missing {key!r} "
                    f"(every baselined finding needs a documented reason)")
        out[f"{entry['path']}::{entry['rule']}::{entry['message']}"] = entry
    return out


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    entries = [{"rule": f.rule, "path": f.path, "message": f.message,
                "reason": "TODO: document why this is a false positive"}
               for f in findings]
    payload = {"_comment": ("reprolint baseline: grandfathered findings. "
                            "Only documented false positives belong here; "
                            "fill in every 'reason'."),
               "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# -- runner -----------------------------------------------------------------

def iter_py_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(f for f in p.rglob("*.py")
                              if "__pycache__" not in f.parts)
        elif p.suffix == ".py":
            yield p


def check_file(path: Path, rules: Iterable[Rule],
               config: RunConfig) -> list[Finding]:
    """All (unsuppressed) findings for one file."""
    path = Path(path).resolve()
    try:
        rel = path.relative_to(Path(config.root).resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    source = path.read_text()
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(rule=PARSE_ERROR_RULE, path=rel,
                        line=exc.lineno or 1,
                        message=f"file does not parse: {exc.msg}")]
    ctx = ModuleContext(path=path, rel=rel, tree=tree, source=source,
                        lines=lines, config=config)
    sup = Suppressions.scan(lines)
    found: list[Finding] = []
    for rule in rules:
        for f in rule.check(ctx):
            if not sup.hides(f):
                found.append(f)
    return found


def run_paths(paths: Iterable[Path | str], rules: Iterable[Rule] | None = None,
              config: RunConfig | None = None) -> list[Finding]:
    """Run *rules* over every python file under *paths*, sorted."""
    from tools.reprolint.rules import all_rules

    config = config or RunConfig()
    rules = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for f in iter_py_files(paths):
        findings.extend(check_file(f, rules, config))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def split_baselined(findings: Iterable[Finding], baseline: dict[str, dict]
                    ) -> tuple[list[Finding], list[Finding]]:
    """(new, grandfathered) according to the baseline mapping."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        (old if f.baseline_key in baseline else new).append(f)
    return new, old


def counts_by_rule(findings: Iterable[Finding]) -> dict[str, int]:
    out: dict[str, int] = {}
    for f in findings:
        out[f.rule] = out.get(f.rule, 0) + 1
    return out


def counts_snapshot(new: Iterable[Finding], baselined: Iterable[Finding]
                    ) -> dict[str, Any]:
    """Per-rule finding counts in the bench-metrics artifact shape
    (an ``repro.obs`` registry snapshot: counters + gauges), so the
    finding trajectory is queryable across PRs with the same tooling
    as the performance artifacts."""
    new, baselined = list(new), list(baselined)
    counters = {f"reprolint.findings.{rule}": float(n)
                for rule, n in sorted(counts_by_rule(new).items())}
    counters.update({f"reprolint.baselined.{rule}": float(n)
                     for rule, n in sorted(counts_by_rule(baselined).items())})
    return {"counters": counters,
            "gauges": {"reprolint.findings_total": float(len(new)),
                       "reprolint.baselined_total": float(len(baselined))},
            "histograms": {}}

"""reprolint — AST-based checker for this repo's cross-cutting invariants.

Run it: ``python -m tools.reprolint [paths...]`` (defaults to
``src tools benchmarks``).  See docs/static-analysis.md for the rule
catalog, the suppression/baseline workflow and how to add a rule.
"""

from __future__ import annotations

from tools.reprolint.engine import (
    PARSE_ERROR_RULE,
    Finding,
    ModuleContext,
    Rule,
    RunConfig,
    Suppressions,
    counts_by_rule,
    counts_snapshot,
    load_baseline,
    run_paths,
    split_baselined,
    write_baseline,
)
from tools.reprolint.rules import RULE_CLASSES, all_rules, rule_ids

__all__ = [
    "PARSE_ERROR_RULE",
    "Finding",
    "ModuleContext",
    "Rule",
    "RunConfig",
    "Suppressions",
    "RULE_CLASSES",
    "all_rules",
    "counts_by_rule",
    "counts_snapshot",
    "load_baseline",
    "rule_ids",
    "run_paths",
    "split_baselined",
    "write_baseline",
]

"""CLI: ``python -m tools.reprolint [paths...]``.

Exit status is 1 iff any non-baselined finding exists — the same
contract the tier-1 test and the CI static-analysis job enforce.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.reprolint.engine import (
    REPO_ROOT,
    RunConfig,
    counts_snapshot,
    load_baseline,
    run_paths,
    split_baselined,
    write_baseline,
)
from tools.reprolint.rules import all_rules

DEFAULT_PATHS = ("src", "tools", "benchmarks")
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST contract checker for the pytbmd repository")
    ap.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                    help="files/directories to check "
                         f"(default: {' '.join(DEFAULT_PATHS)})")
    ap.add_argument("--root", type=Path, default=REPO_ROOT,
                    help="repository root for path scoping and the "
                         "telemetry catalog (default: this repo)")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help="baseline JSON of grandfathered findings "
                         "(default: tools/reprolint/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding, baseline ignored")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write current findings to --baseline and exit "
                         "(then document every 'reason')")
    ap.add_argument("--format", choices=("text", "github"), default="text",
                    help="finding output format")
    ap.add_argument("--counts-json", type=Path, metavar="FILE",
                    help="write per-rule finding counts as an obs-snapshot "
                         "JSON artifact")
    ap.add_argument("--list-rules", action="store_true",
                    help="list rule ids and descriptions, then exit")
    args = ap.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for r in rules:
            print(f"{r.id:20s} {r.description}")
        return 0

    config = RunConfig(root=args.root.resolve())
    root = config.root
    paths = [p if Path(p).is_absolute() else root / p for p in args.paths]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"reprolint: no such path: "
              f"{', '.join(str(m) for m in missing)}", file=sys.stderr)
        return 2
    findings = run_paths(paths, rules=rules, config=config)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"reprolint: wrote {len(findings)} entries to {args.baseline}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new, baselined = split_baselined(findings, baseline)

    for f in new:
        print(f.format(args.format))

    if args.counts_json:
        args.counts_json.parent.mkdir(parents=True, exist_ok=True)
        args.counts_json.write_text(
            json.dumps(counts_snapshot(new, baselined), indent=2,
                       sort_keys=True) + "\n")

    stale = set(baseline) - {f.baseline_key for f in findings}
    for key in sorted(stale):
        print(f"reprolint: stale baseline entry (finding fixed — remove "
              f"it): {key}", file=sys.stderr)

    summary = (f"reprolint: {len(new)} finding(s), "
               f"{len(baselined)} baselined, {len(stale)} stale baseline "
               f"entr{'y' if len(stale) == 1 else 'ies'}")
    print(summary, file=sys.stderr)
    return 1 if new or stale else 0


if __name__ == "__main__":
    raise SystemExit(main())

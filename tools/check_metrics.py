#!/usr/bin/env python
"""CI smoke gate on a ``--metrics`` snapshot: cache hit-rate floors.

The bench-smoke CI job runs a short warm MD (the SC'94 A8 shape) with
``--metrics`` and hands the snapshot JSON to this script.  The state
machinery this repo is built around — warm-μ fused solves, sparse-
pattern reuse, Verlet-list reuse — only shows up as *ratios*, so a
regression that silently drops the calculator to its cold path keeps
every test green while doubling step cost.  This gate fails the build
instead.

Exit 1 if the fused-path or pattern-cache hit rate falls below its
pinned floor (rates with no observations pass — a diag-solver snapshot
has no fused counters).  The backend benchmark's speedup gauge
(``foe.backend_speedup``, batched vs per-region-loop MD step) is gated
the same way with ``--min-backend-speedup``.  Run::

    python tools/check_metrics.py metrics.json \
        --min-fused-hit 0.4 --min-pattern-hit 0.5
    python tools/check_metrics.py bench.json --min-backend-speedup 1.05
"""

from __future__ import annotations

import argparse
import json
import sys


def rate(counters: dict, hits: list[str], misses: list[str]
         ) -> tuple[float | None, int]:
    """(hit rate, observation count) from counter names; (None, 0) if
    the relevant counters never fired."""
    h = sum(counters.get(k, 0) for k in hits)
    total = h + sum(counters.get(k, 0) for k in misses)
    return (h / total if total else None), int(total)


GATES = {
    # name -> (hit counters, miss counters, CLI floor attribute)
    "fused-path": (["foe.fused"], ["foe.fallback", "foe.cold"],
                   "min_fused_hit"),
    "pattern-cache": (["hamiltonian.pattern_hit"],
                      ["hamiltonian.pattern_miss"], "min_pattern_hit"),
    "neighbor-reuse": (["neighbors.reuse"],
                       ["neighbors.rebuild.init", "neighbors.rebuild.drift",
                        "neighbors.rebuild.strain",
                        "neighbors.rebuild.resize",
                        "neighbors.rebuild.cell-unmappable"],
                       "min_neighbor_reuse"),
}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("snapshot", help="metrics JSON from a --metrics run")
    ap.add_argument("--min-fused-hit", type=float, default=0.0,
                    help="floor on the warm-mu fused-path hit rate")
    ap.add_argument("--min-pattern-hit", type=float, default=0.0,
                    help="floor on the sparse-pattern cache hit rate")
    ap.add_argument("--min-neighbor-reuse", type=float, default=0.0,
                    help="floor on the Verlet-list reuse rate")
    ap.add_argument("--min-backend-speedup", type=float, default=0.0,
                    help="floor on the foe.backend_speedup gauge (batched "
                         "vs loop MD-step ratio from the A8 benchmark)")
    ap.add_argument("--min-traj-size-ratio", type=float, default=0.0,
                    help="floor on the trajio.xyz_size_ratio gauge (XYZ "
                         "vs PTRJ file size from the A12 benchmark)")
    args = ap.parse_args(argv)
    with open(args.snapshot, encoding="utf-8") as fh:
        snap = json.load(fh)
    counters = snap.get("counters") or {}
    gauges = snap.get("gauges") or {}
    failed = False
    for name, (hits, misses, attr) in GATES.items():
        floor = getattr(args, attr)
        value, n = rate(counters, hits, misses)
        if value is None:
            status = "no data"
        elif value + 1e-12 < floor:
            status, failed = "FAIL", True
        else:
            status = "ok"
        shown = "   --" if value is None else f"{value:5.1%}"
        print(f"{name:<16} {shown}  (floor {floor:.1%}, n={n})  {status}")
    gauge_gates = [
        ("backend-speedup", "foe.backend_speedup",
         args.min_backend_speedup),
        ("traj-size-ratio", "trajio.xyz_size_ratio",
         args.min_traj_size_ratio),
    ]
    for label, gauge_name, floor in gauge_gates:
        value = gauges.get(gauge_name)
        if value is None:
            status = "no data"
        elif value + 1e-12 < floor:
            status, failed = "FAIL", True
        else:
            status = "ok"
        shown = "   --" if value is None else f"{value:4.2f}x"
        print(f"{label:<16} {shown}  (floor {floor:.2f}x)  {status}")
    if failed:
        print("\nmetrics gate FAILED: a cache-efficiency rate regressed "
              "below its floor", file=sys.stderr)
        return 1
    print("\nmetrics gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

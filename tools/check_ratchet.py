#!/usr/bin/env python
"""Guard the mypy strictness ratchet (see tools/typing_ratchet.txt).

Checks, stdlib-only (tomllib is in the standard library on >= 3.11;
a tiny fallback parser keeps 3.10 working for the narrow shape we emit):

1. every module in the manifest has a strict override in pyproject.toml,
   and every strict override is in the manifest (no drift either way);
2. each strict override carries the four ratchet flags and
   ``ignore_errors = false``;
3. ``src/repro/py.typed`` exists (the package ships its types);
4. with ``--base REF``: the manifest at ``REF`` is a *subset* of the
   working-tree manifest — a module, once ratcheted, cannot be demoted.
   A missing/unreadable ref (shallow clone, first commit) is a no-op
   with a notice, never a failure.

Exit status: 0 clean, 1 on any violation.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
MANIFEST = REPO_ROOT / "tools" / "typing_ratchet.txt"
PYPROJECT = REPO_ROOT / "pyproject.toml"
PY_TYPED = REPO_ROOT / "src" / "repro" / "py.typed"

#: flags every ratcheted module's override must set (ignore_errors must
#: additionally be present and false)
REQUIRED_FLAGS = (
    "disallow_untyped_defs",
    "disallow_incomplete_defs",
    "check_untyped_defs",
    "no_implicit_optional",
)


def parse_manifest(text: str) -> set[str]:
    mods = set()
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            mods.add(line)
    return mods


def load_pyproject(path: Path) -> dict:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - 3.10 fallback
        return _parse_mypy_toml_subset(path.read_text(encoding="utf-8"))
    with open(path, "rb") as fh:
        return tomllib.load(fh)


def _parse_mypy_toml_subset(text: str) -> dict:  # pragma: no cover
    """Minimal reader for the [[tool.mypy.overrides]] shape we emit."""
    overrides: list[dict] = []
    cur: dict | None = None
    in_module_list = False
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "[[tool.mypy.overrides]]":
            cur = {"module": []}
            overrides.append(cur)
            in_module_list = False
            continue
        if line.startswith("[") and line != "[[tool.mypy.overrides]]":
            cur = None
            in_module_list = False
            continue
        if cur is None:
            continue
        if in_module_list:
            for part in line.split(","):
                part = part.strip().strip('"').strip("'")
                if part and part not in ("]",):
                    cur["module"].append(part)
            if "]" in line:
                in_module_list = False
            continue
        if "=" in line:
            key, _, val = line.partition("=")
            key, val = key.strip(), val.strip()
            if key == "module" and val.startswith("["):
                in_module_list = "]" not in val
                for part in val.strip("[]").split(","):
                    part = part.strip().strip('"').strip("'")
                    if part:
                        cur["module"].append(part)
            elif val in ("true", "false"):
                cur[key] = val == "true"
    return {"tool": {"mypy": {"overrides": overrides}}}


def strict_override_modules(config: dict) -> tuple[set[str], list[str]]:
    """(modules covered by a compliant strict override, problem list)."""
    problems: list[str] = []
    strict: set[str] = set()
    mypy = (config.get("tool") or {}).get("mypy") or {}
    for block in mypy.get("overrides") or []:
        modules = block.get("module") or []
        if isinstance(modules, str):
            modules = [modules]
        if block.get("ignore_errors") is not False:
            continue  # a permissive override is not a ratchet entry
        missing = [f for f in REQUIRED_FLAGS if block.get(f) is not True]
        if missing:
            problems.append(
                f"override for {modules} lacks ratchet flag(s): "
                f"{', '.join(missing)}")
            continue
        strict.update(modules)
    return strict, problems


def manifest_at_ref(ref: str) -> set[str] | None:
    """Manifest content at *ref*, or None when unreadable (no-op)."""
    rel = MANIFEST.relative_to(REPO_ROOT).as_posix()
    try:
        out = subprocess.run(
            ["git", "show", f"{ref}:{rel}"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return parse_manifest(out.stdout)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--base", metavar="REF", default=None,
                    help="git ref to check the no-demotion rule against")
    args = ap.parse_args(argv)

    failures: list[str] = []

    if not PY_TYPED.exists():
        failures.append("src/repro/py.typed is missing — the package no "
                        "longer advertises inline types (PEP 561)")

    manifest = parse_manifest(MANIFEST.read_text(encoding="utf-8"))
    if not manifest:
        failures.append(f"{MANIFEST} lists no modules")

    strict, problems = strict_override_modules(load_pyproject(PYPROJECT))
    failures.extend(problems)

    for mod in sorted(manifest - strict):
        failures.append(
            f"{mod} is in typing_ratchet.txt but has no strict mypy "
            f"override in pyproject.toml")
    for mod in sorted(strict - manifest):
        failures.append(
            f"{mod} has a strict mypy override but is missing from "
            f"tools/typing_ratchet.txt — append it to the manifest")

    if args.base:
        base = manifest_at_ref(args.base)
        if base is None:
            print(f"note: ref {args.base!r} has no readable manifest; "
                  f"skipping no-demotion check", file=sys.stderr)
        else:
            for mod in sorted(base - manifest):
                failures.append(
                    f"{mod} was on the ratchet at {args.base} but is gone "
                    f"from the manifest — demoting a typed module is not "
                    f"allowed")

    if failures:
        for f in failures:
            print(f"ratchet: {f}", file=sys.stderr)
        return 1
    print(f"ratchet ok: {len(manifest)} module(s) strict, py.typed present")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Summarize a ``--trace out.jsonl`` run as the SC'94-style phase table.

Reads the JSONL trace written by ``repro.obs.export.write_jsonl`` (the
``--trace`` CLI flag), aggregates span durations by name, and prints:

* a phase table — total seconds, share of the slowest top-level span
  tree, call count and mean per call — the shape of Table 1 in the
  Goedecker/Colombo SC'94 paper (neighbors / Hamiltonian / Chebyshev
  recursion / forces breakdown);
* cache-efficiency ratios from the embedded metrics snapshot: the
  fused-path hit rate (warm-μ one-pass solves vs two-pass), the sparse
  Hamiltonian pattern-cache hit rate, neighbor-list reuse, spectral
  window reuse, and the region-cache reuse rate;
* optionally (``--chrome out.json``) a Chrome trace-event conversion of
  the same spans, viewable at https://ui.perfetto.dev.

Usage::

    PYTHONPATH=src python tools/trace_report.py run.jsonl
    PYTHONPATH=src python tools/trace_report.py run.jsonl --json summary.json
    PYTHONPATH=src python tools/trace_report.py run.jsonl --chrome run.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import chrome_trace_events, read_jsonl  # noqa: E402


def aggregate_phases(spans: list[dict]) -> list[dict]:
    """Span records → per-name totals sorted by total time, descending."""
    agg: dict[str, dict] = {}
    for rec in spans:
        row = agg.setdefault(rec.get("name", "?"),
                             {"calls": 0, "seconds": 0.0, "errors": 0})
        row["calls"] += 1
        row["seconds"] += float(rec.get("dur", 0.0))
        if rec.get("status") == "error":
            row["errors"] += 1
    out = [dict(name=name, **row,
                mean_s=row["seconds"] / row["calls"] if row["calls"] else 0.0)
           for name, row in agg.items()]
    out.sort(key=lambda r: r["seconds"], reverse=True)
    return out


def wall_seconds(spans: list[dict]) -> float:
    """Wall time covered by the trace (earliest start → latest end)."""
    if not spans:
        return 0.0
    t0 = min(float(s.get("ts", 0.0)) for s in spans)
    t1 = max(float(s.get("ts", 0.0)) + float(s.get("dur", 0.0))
             for s in spans)
    return t1 - t0


def _ratio(counters: dict, hit_keys, miss_keys) -> tuple[float | None, int]:
    hits = sum(counters.get(k, 0) for k in hit_keys)
    total = hits + sum(counters.get(k, 0) for k in miss_keys)
    return (hits / total if total else None), int(total)


def hit_rates(metrics: dict) -> dict:
    """Cache-efficiency ratios from a registry snapshot (None = no data).

    The fused-path rate counts warm-μ single-pass solves (``foe.fused``)
    against everything that needed a second Chebyshev pass — cold
    two-pass solves (``foe.cold``) *and* fused attempts whose μ drifted
    out of the Bernstein bound (``foe.fallback``).
    """
    counters = metrics.get("counters") or {}
    rebuilds = sum(v for k, v in counters.items()
                   if k.startswith("neighbors.rebuild."))
    fused, n_solves = _ratio(counters, ["foe.fused"],
                             ["foe.fallback", "foe.cold"])
    pattern, n_builds = _ratio(counters, ["hamiltonian.pattern_hit"],
                               ["hamiltonian.pattern_miss"])
    window, n_window = _ratio(counters, ["window.reuse"],
                              ["window.refresh", "window.invalidated"])
    regions, n_regions = _ratio(counters, ["regions.reuse"],
                                ["regions.rebuild"])
    neigh = counters.get("neighbors.reuse", 0)
    return {
        "fused_path": {"rate": fused, "n": n_solves},
        "pattern_cache": {"rate": pattern, "n": n_builds},
        "window_reuse": {"rate": window, "n": n_window},
        "region_reuse": {"rate": regions, "n": n_regions},
        "neighbor_reuse": {
            "rate": (neigh / (neigh + rebuilds)
                     if (neigh + rebuilds) else None),
            "n": int(neigh + rebuilds)},
    }


def build_summary(path) -> dict:
    meta, spans, metrics = read_jsonl(path)
    return {
        "trace": str(path),
        "dropped_spans": meta.get("dropped_spans", 0),
        "wall_seconds": wall_seconds(spans),
        "n_spans": len(spans),
        "phases": aggregate_phases(spans),
        "hit_rates": hit_rates(metrics),
        "counters": metrics.get("counters") or {},
    }


def print_report(summary: dict, file=None) -> None:
    out = file or sys.stdout
    wall = summary["wall_seconds"]
    print(f"trace            : {summary['trace']}", file=out)
    print(f"spans            : {summary['n_spans']}"
          + (f" ({summary['dropped_spans']} dropped)"
             if summary["dropped_spans"] else ""), file=out)
    print(f"wall time        : {wall:.3f} s", file=out)
    print(file=out)
    print(f"{'phase':<24} {'seconds':>10} {'share':>7} {'calls':>7} "
          f"{'mean':>10}", file=out)
    for row in summary["phases"]:
        share = row["seconds"] / wall if wall > 0 else 0.0
        flag = f"  ({row['errors']} errors)" if row["errors"] else ""
        print(f"{row['name']:<24} {row['seconds']:>10.4f} {share:>6.1%} "
              f"{row['calls']:>7d} {row['mean_s']:>10.6f}{flag}", file=out)
    print(file=out)
    labels = {"fused_path": "fused-path hit rate",
              "pattern_cache": "pattern-cache hits",
              "window_reuse": "window reuse",
              "region_reuse": "region reuse",
              "neighbor_reuse": "neighbor-list reuse"}
    for key, label in labels.items():
        stat = summary["hit_rates"][key]
        if stat["rate"] is None:
            continue
        print(f"{label:<24} {stat['rate']:>7.1%}  (of {stat['n']})",
              file=out)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="JSONL trace from a --trace run")
    ap.add_argument("--json", metavar="PATH",
                    help="also write the summary as JSON here")
    ap.add_argument("--chrome", metavar="PATH",
                    help="also convert the spans to a Chrome trace-event "
                         "file (open in Perfetto)")
    args = ap.parse_args(argv)
    summary = build_summary(args.trace)
    print_report(summary)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"\nwrote {args.json}")
    if args.chrome:
        _, spans, _ = read_jsonl(args.trace)
        doc = {"traceEvents": chrome_trace_events(spans),
               "displayTimeUnit": "ms"}
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        print(f"wrote {args.chrome}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

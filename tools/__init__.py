"""Repo tooling namespace — makes ``python -m tools.reprolint`` work.

The scripts in this directory (check_docs, check_metrics, ...) stay
directly runnable; this marker only exists so the :mod:`tools.reprolint`
package can be invoked as a module from the repository root.
"""

"""Legacy shim so editable installs work offline (no wheel package)."""
from setuptools import setup

setup()

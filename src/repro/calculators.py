"""One factory for every calculator the CLI and the batch service build.

The CLI used to own the model/solver dispatch table; the batch service
needs the identical table so a structure loaded over the wire gets
*exactly* the calculator a one-shot ``repro.cli energy`` run would have
used (the service's state-reuse parity guarantees depend on it).  Both
now call :func:`make_calculator` with a plain dict spec::

    calc = make_calculator({"model": "gsp-si", "solver": "linscale",
                            "kT": 0.2, "order": 120})

Unknown keys are rejected — a typo in a service request must surface as
an error, not silently fall back to a default.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: model names accepted by ``--model`` / the service ``calc`` spec
TB_MODELS = ("gsp-si", "xu-c", "harrison", "nonortho-si")
CLASSICAL_MODELS = ("sw-si",)
SOLVERS = ("diag", "purification", "foe", "linscale")

_SPEC_KEYS = frozenset({"model", "solver", "kT", "order", "r_loc",
                        "nworkers", "reuse", "skin", "kgrid",
                        "kgrid_reduce", "backend"})

#: MP-grid folding modes accepted by ``kgrid_reduce``
KGRID_REDUCE = ("trs", "full", "symmetry")


def parse_kgrid(value) -> tuple[int, int, int] | None:
    """Normalise a k-grid spec: ``None``, an int, ``"n1xn2xn3"`` (the CLI
    form), or a 3-sequence → MP divisions tuple (or ``None`` for Γ)."""
    if value is None:
        return None
    if isinstance(value, str):
        parts = value.lower().replace("×", "x").split("x")
        if len(parts) == 1:
            parts = parts * 3
        if len(parts) != 3:
            raise ReproError(
                f"kgrid must look like 'n1xn2xn3' or 'n', got {value!r}")
        value = parts
    if np.isscalar(value):
        value = (value,) * 3
    try:
        if any(float(v) != int(v) for v in value):
            raise ValueError
        grid = tuple(int(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"kgrid divisions must be integers, got {value!r}") \
            from exc
    if len(grid) != 3 or any(g < 1 for g in grid):
        raise ReproError(f"kgrid needs three divisions >= 1, got {value!r}")
    return grid


def _coerce(spec: dict, key: str, conv, default):
    """Numeric spec field → *conv*; bad values become ReproError, so a
    malformed service request is answered politely instead of being
    mistaken for a worker crash."""
    value = spec.get(key, default)
    if value is None:
        return None if default is None else conv(default)
    try:
        return conv(value)
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"calculator spec field {key!r} must be a number, got "
            f"{value!r}") from exc


def make_calculator(spec: dict):
    """Build a calculator from a plain spec dict.

    Keys (all optional except ``model``): ``model``, ``solver`` (one of
    ``diag`` / ``purification`` / ``foe`` / ``linscale``; ignored-with-
    error for classical models), ``kT`` (eV), ``order``, ``r_loc`` (Å),
    ``nworkers``, ``reuse``, ``skin`` (Å), ``kgrid`` (Monkhorst–Pack
    divisions — ``"n1xn2xn3"``, an int, or a 3-sequence; ``diag`` and
    ``linscale`` only), ``kgrid_reduce`` (``"trs"`` default / ``"full"``
    / ``"symmetry"`` — crystal-point-group irreducible wedge),
    ``backend`` (array backend for the ``linscale`` region recursions —
    one of :func:`repro.linscale.backends.available_backends`; defaults
    to the ``REPRO_BACKEND`` environment variable, then the package
    default).
    """
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        raise ReproError(
            f"unknown calculator spec keys {sorted(unknown)}; "
            f"accepted: {sorted(_SPEC_KEYS)}")
    name = spec.get("model", "gsp-si")
    solver = spec.get("solver", "diag")
    kT = _coerce(spec, "kT", float, 0.0)
    skin = _coerce(spec, "skin", float, 0.5)
    kgrid = parse_kgrid(spec.get("kgrid"))
    backend = spec.get("backend")
    if backend is not None:
        if solver != "linscale":
            raise ReproError(
                "backend applies to the 'linscale' solver only (the other "
                "solvers have no region recursions to dispatch)")
        from repro.linscale.backends import available_backends

        if backend not in available_backends():
            raise ReproError(
                f"unknown array backend {backend!r}; available: "
                f"{available_backends()}")
    kgrid_reduce = spec.get("kgrid_reduce")
    if kgrid_reduce is not None:
        if kgrid_reduce not in KGRID_REDUCE:
            raise ReproError(
                f"unknown kgrid_reduce {kgrid_reduce!r}; choose from "
                f"{KGRID_REDUCE}")
        if kgrid is None:
            raise ReproError(
                "kgrid_reduce only applies together with a kgrid")
    else:
        kgrid_reduce = "trs"
    if kgrid is not None and solver not in ("diag", "linscale"):
        raise ReproError(
            "kgrid is supported by the 'diag' and 'linscale' solvers only "
            "(the dense purification/foe kernels are Γ-point)")
    if name in CLASSICAL_MODELS:
        if solver != "diag":
            raise ReproError(
                "--solver applies to tight-binding models only (sw-si is "
                "classical)")
        if kgrid is not None:
            raise ReproError("kgrid applies to tight-binding models only")
        from repro.classical import StillingerWeber

        return StillingerWeber(skin=skin)
    if name not in TB_MODELS:
        raise ReproError(
            f"unknown model {name!r}; choose from "
            f"{TB_MODELS + CLASSICAL_MODELS}")
    if solver not in SOLVERS:
        raise ReproError(f"unknown solver {solver!r}; choose from {SOLVERS}")

    from repro.tb import get_model

    model = get_model(name)
    if solver == "diag":
        from repro.tb import TBCalculator

        return TBCalculator(model, kT=kT, skin=skin, kpts=kgrid,
                            kgrid_reduce=kgrid_reduce)
    if solver == "purification":
        from repro.linscale import DensityMatrixCalculator

        # the constructor rejects kT != 0 with a clear message
        return DensityMatrixCalculator(model, method="purification", kT=kT,
                                       skin=skin)
    if kT <= 0.0:
        # the Fermi-operator solvers smear by construction
        kT = 0.1
        from repro.log import get_logger
        get_logger(__name__).warning(
            "solver %r needs kT > 0; using kT = %s eV", solver, kT)
    order = _coerce(spec, "order", int, 200)
    reuse = bool(spec.get("reuse", True))
    if solver == "foe":
        from repro.linscale import DensityMatrixCalculator

        return DensityMatrixCalculator(model, method="foe", kT=kT,
                                       order=order, reuse=reuse, skin=skin)
    from repro.linscale import LinearScalingCalculator

    return LinearScalingCalculator(
        model, kT=kT, order=order,
        r_loc=_coerce(spec, "r_loc", float, None),
        nworkers=_coerce(spec, "nworkers", int, 1), reuse=reuse, skin=skin,
        kpts=kgrid, kgrid_reduce=kgrid_reduce, backend=backend)

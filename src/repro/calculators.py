"""One typed spec for every calculator the CLI, service and bridges build.

The CLI used to own the model/solver dispatch table; the batch service,
the campaign runner (:mod:`repro.scenarios`) and the ASE bridge
(:mod:`repro.ase_bridge`) all need the identical table so a structure
loaded from any surface gets *exactly* the calculator a one-shot
``repro.cli energy`` run would have used (the service's state-reuse
parity guarantees depend on it).  The contract is the frozen
:class:`CalculatorSpec` dataclass::

    spec = CalculatorSpec(model="gsp-si", solver="linscale",
                          kT=0.2, order=120)
    calc = make_calculator(spec)

Plain dicts are still accepted everywhere through the
:meth:`CalculatorSpec.from_dict` shim (the wire format of the service
``calc`` field is a dict, and older clients keep working unchanged)::

    calc = make_calculator({"model": "gsp-si", "solver": "linscale",
                            "kT": 0.2, "order": 120})

Unknown keys are rejected with a did-you-mean suggestion — a typo in a
service request must surface as an error, not silently fall back to a
default.  Validation runs at construction, so a bad spec fails when it
is *built* (the service ``load``), not when it first evaluates.  Errors
raised while building a spec on behalf of a request carry the request's
op name (``op 'load': ...``) so a campaign log pinpoints the failing
cell's field.
"""

from __future__ import annotations

import difflib
from dataclasses import asdict, dataclass, fields
from collections.abc import Callable, Iterable
from typing import Any

import numpy as np

from repro.errors import ReproError

#: model names accepted by ``--model`` / the service ``calc`` spec
TB_MODELS = ("gsp-si", "xu-c", "harrison", "nonortho-si")
CLASSICAL_MODELS = ("sw-si",)
SOLVERS = ("diag", "purification", "foe", "linscale")

#: MP-grid folding modes accepted by ``kgrid_reduce``
KGRID_REDUCE = ("trs", "full", "symmetry")


def suggest_key(name: str, known: Iterable[object]) -> str:
    """``"; did you mean 'x'?"`` for the closest match, or ``""``.

    Shared by the spec validation here and the scenario parameter
    schemas (:mod:`repro.scenarios.base`) so every surface answers a
    typo the same way.
    """
    close = difflib.get_close_matches(str(name), [str(k) for k in known],
                                      n=1, cutoff=0.6)
    return f"; did you mean {close[0]!r}?" if close else ""


def with_context(exc: ReproError, context: str | None) -> ReproError:
    """Re-wrap *exc* with a ``context: `` message prefix (same class)."""
    if not context:
        return exc
    wrapped = ReproError(f"{context}: {exc}")
    wrapped.__cause__ = exc
    return wrapped


def parse_kgrid(value: Any, context: str | None = None
                ) -> tuple[int, int, int] | None:
    """Normalise a k-grid spec: ``None``, an int, ``"n1xn2xn3"`` (the CLI
    form), or a 3-sequence → MP divisions tuple (or ``None`` for Γ).

    *context* (e.g. the service op that carried the value) is prefixed
    to every error message so a bad field can be traced to its request.
    """
    try:
        if value is None:
            return None
        if isinstance(value, str):
            parts = value.lower().replace("×", "x").split("x")
            if len(parts) == 1:
                parts = parts * 3
            if len(parts) != 3:
                raise ReproError(
                    f"kgrid must look like 'n1xn2xn3' or 'n', got {value!r}")
            value = parts
        if np.isscalar(value):
            value = (value,) * 3
        try:
            if any(float(v) != int(v) for v in value):
                raise ValueError
            grid = tuple(int(v) for v in value)
        except (TypeError, ValueError) as exc:
            raise ReproError(
                f"kgrid divisions must be integers, got {value!r}") from exc
        if len(grid) != 3 or any(g < 1 for g in grid):
            raise ReproError(
                f"kgrid needs three divisions >= 1, got {value!r}")
        return (grid[0], grid[1], grid[2])
    except ReproError as exc:
        raise with_context(exc, context) from exc.__cause__


def _coerce(key: str, value: Any, conv: Callable[[Any], Any],
            default: Any) -> Any:
    """Numeric spec field → *conv*; bad values become ReproError, so a
    malformed service request is answered politely instead of being
    mistaken for a worker crash."""
    if value is None:
        return None if default is None else conv(default)
    try:
        return conv(value)
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"calculator spec field {key!r} must be a number, got "
            f"{value!r}") from exc


@dataclass(frozen=True)
class CalculatorSpec:
    """A validated, immutable calculator specification.

    Fields mirror the historical plain-dict spec keys one-to-one; every
    field is optional except that the defaults must describe a buildable
    calculator (they do: Γ-point exact diagonalisation of ``gsp-si``).

    Construction validates *types* and *cross-field constraints* —
    model/solver names, the kgrid applying to ``diag``/``linscale``
    only, the backend applying to ``linscale`` only — so an invalid
    spec can never be carried around and fail later at build time.

    ``kgrid`` accepts every historical form (``"4x4x4"``, an int, a
    3-sequence) and is normalised to a tuple; ``kgrid_reduce`` is
    ``None`` for "the default" (time-reversal folding) and may only be
    set together with a grid.
    """

    model: str = "gsp-si"
    solver: str = "diag"
    kT: float = 0.0
    order: int = 200
    r_loc: float | None = None
    nworkers: int = 1
    reuse: bool = True
    skin: float = 0.5
    kgrid: tuple[int, int, int] | None = None
    kgrid_reduce: str | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "kT", _coerce("kT", self.kT, float, 0.0))
        set_(self, "order", _coerce("order", self.order, int, 200))
        set_(self, "r_loc", _coerce("r_loc", self.r_loc, float, None))
        set_(self, "nworkers", _coerce("nworkers", self.nworkers, int, 1))
        set_(self, "skin", _coerce("skin", self.skin, float, 0.5))
        set_(self, "reuse", bool(self.reuse))
        set_(self, "kgrid", parse_kgrid(self.kgrid))
        if self.model not in TB_MODELS + CLASSICAL_MODELS:
            raise ReproError(
                f"unknown model {self.model!r}; choose from "
                f"{TB_MODELS + CLASSICAL_MODELS}"
                f"{suggest_key(self.model, TB_MODELS + CLASSICAL_MODELS)}")
        if self.solver not in SOLVERS:
            raise ReproError(
                f"unknown solver {self.solver!r}; choose from {SOLVERS}"
                f"{suggest_key(self.solver, SOLVERS)}")
        if self.backend is not None:
            if self.solver != "linscale":
                raise ReproError(
                    "backend applies to the 'linscale' solver only (the "
                    "other solvers have no region recursions to dispatch)")
            from repro.linscale.backends import available_backends

            if self.backend not in available_backends():
                raise ReproError(
                    f"unknown array backend {self.backend!r}; available: "
                    f"{available_backends()}"
                    f"{suggest_key(self.backend, available_backends())}")
        if self.kgrid_reduce is not None:
            if self.kgrid_reduce not in KGRID_REDUCE:
                raise ReproError(
                    f"unknown kgrid_reduce {self.kgrid_reduce!r}; choose "
                    f"from {KGRID_REDUCE}"
                    f"{suggest_key(self.kgrid_reduce, KGRID_REDUCE)}")
            if self.kgrid is None:
                raise ReproError(
                    "kgrid_reduce only applies together with a kgrid")
        if self.kgrid is not None and self.solver not in ("diag", "linscale"):
            raise ReproError(
                "kgrid is supported by the 'diag' and 'linscale' solvers "
                "only (the dense purification/foe kernels are Γ-point)")
        if self.model in CLASSICAL_MODELS:
            if self.solver != "diag":
                raise ReproError(
                    "--solver applies to tight-binding models only "
                    f"({self.model} is classical)")
            if self.kgrid is not None:
                raise ReproError(
                    "kgrid applies to tight-binding models only")

    # -- dict interoperability (the wire format stays a plain dict) --------
    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The accepted spec keys, derived from the dataclass fields."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_dict(cls, data: Any,
                  context: str | None = None) -> "CalculatorSpec":
        """Build a spec from a plain dict (the service wire format).

        Accepts an existing :class:`CalculatorSpec` unchanged, rejects
        unknown keys with a did-you-mean suggestion, and prefixes every
        validation error with *context* (e.g. ``"op 'load'"``) so a
        failure names the request that carried the bad field.
        """
        if isinstance(data, CalculatorSpec):
            return data
        if data is None:
            data = {}
        if not isinstance(data, dict):
            raise with_context(ReproError(
                f"calculator spec must be a mapping or CalculatorSpec, "
                f"got {type(data).__name__}"), context)
        known = cls.field_names()
        unknown = set(data) - set(known)
        if unknown:
            worst = sorted(unknown)[0]
            raise with_context(ReproError(
                f"unknown calculator spec keys {sorted(unknown)}; "
                f"accepted: {sorted(known)}{suggest_key(worst, known)}"),
                context)
        try:
            return cls(**data)
        except ReproError as exc:
            raise with_context(exc, context) from exc.__cause__

    def get(self, key: str, default: Any = None) -> Any:
        """Mapping-style read (``spec.get("skin")``) — code written
        against the plain-dict spec keeps working on the dataclass."""
        return getattr(self, key) if key in self.field_names() else default

    def __getitem__(self, key: str) -> Any:
        if key not in self.field_names():
            raise KeyError(key)
        return getattr(self, key)

    def keys(self) -> tuple[str, ...]:
        """With ``__getitem__`` this makes ``dict(spec)`` work."""
        return self.field_names()

    def to_dict(self) -> dict:
        """Plain-JSON dict: defaulted fields omitted, ``kgrid`` a list.

        Round-trips through :meth:`from_dict` to an equal spec, and
        stays byte-compatible with what pre-spec clients sent by hand.
        """
        default = CalculatorSpec()
        out = {}
        for name, value in asdict(self).items():
            if value == getattr(default, name):
                continue
            out[name] = list(value) if isinstance(value, tuple) else value
        return out

    def replace(self, **changes: Any) -> "CalculatorSpec":
        """A copy with *changes* applied (re-validated)."""
        merged = asdict(self)
        merged.update(changes)
        return CalculatorSpec(**merged)

    def describe(self) -> str:
        """One-line human summary (CLI/campaign logs)."""
        bits = [self.model, self.solver]
        if self.kT:
            bits.append(f"kT={self.kT:g}")
        if self.kgrid is not None:
            k1, k2, k3 = self.kgrid
            bits.append(f"kgrid={k1}x{k2}x{k3}")
            bits.append(f"reduce={self.kgrid_reduce or 'trs'}")
        if self.solver == "linscale" and self.r_loc is not None:
            bits.append(f"r_loc={self.r_loc:g}")
        if self.backend:
            bits.append(f"backend={self.backend}")
        return " ".join(bits)


def make_calculator(spec: Any, context: str | None = None) -> Any:
    """Build a calculator from a :class:`CalculatorSpec` (or dict shim).

    Spec fields (all optional except ``model``): ``model``, ``solver``
    (one of ``diag`` / ``purification`` / ``foe`` / ``linscale``;
    rejected for classical models), ``kT`` (eV), ``order``, ``r_loc``
    (Å), ``nworkers``, ``reuse``, ``skin`` (Å), ``kgrid`` (Monkhorst–
    Pack divisions — ``"n1xn2xn3"``, an int, or a 3-sequence; ``diag``
    and ``linscale`` only), ``kgrid_reduce`` (``"trs"`` default /
    ``"full"`` / ``"symmetry"`` — crystal-point-group irreducible
    wedge), ``backend`` (array backend for the ``linscale`` region
    recursions — one of
    :func:`repro.linscale.backends.available_backends`; defaults to the
    ``REPRO_BACKEND`` environment variable, then the package default).

    *context* (e.g. ``"op 'load'"``) is threaded into every validation
    error raised while interpreting a dict spec.
    """
    spec = CalculatorSpec.from_dict(spec, context)
    if spec.model in CLASSICAL_MODELS:
        from repro.classical import StillingerWeber

        return StillingerWeber(skin=spec.skin)

    from repro.tb import get_model

    model = get_model(spec.model)
    kgrid_reduce = spec.kgrid_reduce or "trs"
    if spec.solver == "diag":
        from repro.tb import TBCalculator

        return TBCalculator(model, kT=spec.kT, skin=spec.skin,
                            kpts=spec.kgrid, kgrid_reduce=kgrid_reduce)
    if spec.solver == "purification":
        from repro.linscale import DensityMatrixCalculator

        # the constructor rejects kT != 0 with a clear message
        return DensityMatrixCalculator(model, method="purification",
                                       kT=spec.kT, skin=spec.skin)
    kT = spec.kT
    if kT <= 0.0:
        # the Fermi-operator solvers smear by construction
        kT = 0.1
        from repro.log import get_logger
        get_logger(__name__).warning(
            "solver %r needs kT > 0; using kT = %s eV", spec.solver, kT)
    if spec.solver == "foe":
        from repro.linscale import DensityMatrixCalculator

        return DensityMatrixCalculator(model, method="foe", kT=kT,
                                       order=spec.order, reuse=spec.reuse,
                                       skin=spec.skin)
    from repro.linscale import LinearScalingCalculator

    return LinearScalingCalculator(
        model, kT=kT, order=spec.order, r_loc=spec.r_loc,
        nworkers=spec.nworkers, reuse=spec.reuse, skin=spec.skin,
        kpts=spec.kgrid, kgrid_reduce=kgrid_reduce, backend=spec.backend)

"""FIRE (Fast Inertial Relaxation Engine) structural relaxation.

Bitzek et al., PRL 97, 170201 (2006).  Although published after the
paper's era, FIRE has become the default relaxer of atomistic codes and
is included as the modern comparison point of the relaxer ablation:
MD-like dynamics with velocity mixing, acceleration while the power
``P = F·v`` stays positive, and a hard stop + timestep cut when it turns
negative.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.relax.base import (
    RelaxationResult, energy_and_forces, max_force,
)
from repro.units import FORCE_TO_ACC


def fire_relax(atoms, calc, fmax: float = 0.05, max_steps: int = 2000,
               dt: float = 1.0, dt_max: float = 5.0, n_min: int = 5,
               f_inc: float = 1.1, f_dec: float = 0.5, alpha0: float = 0.1,
               f_alpha: float = 0.99, max_disp: float = 0.2,
               raise_on_failure: bool = False) -> RelaxationResult:
    """Relax *atoms* in place until ``max|F| < fmax`` (eV/Å).

    All the greek knobs are the published FIRE defaults; *max_disp* caps
    the per-step displacement (Å) to keep TB neighbour lists sane.
    """
    v = np.zeros_like(atoms.positions)
    alpha = alpha0
    n_pos = 0
    energy, f = energy_and_forces(atoms, calc)
    e_hist = [energy]
    f_hist = [max_force(f, atoms.fixed)]
    dt_cur = dt

    it = 0
    for it in range(1, max_steps + 1):
        fnorm = max_force(f, atoms.fixed)
        if fnorm < fmax:
            return RelaxationResult(atoms, True, it - 1, energy, fnorm,
                                    e_hist, f_hist)

        power = float(np.sum(f * v))
        if power > 0:
            fn = np.linalg.norm(f)
            vn = np.linalg.norm(v)
            if fn > 1e-14:
                v = (1.0 - alpha) * v + alpha * (f / fn) * vn
            n_pos += 1
            if n_pos > n_min:
                dt_cur = min(dt_cur * f_inc, dt_max)
                alpha *= f_alpha
        else:
            v[...] = 0.0
            alpha = alpha0
            dt_cur *= f_dec
            n_pos = 0

        v += dt_cur * FORCE_TO_ACC * f / atoms.masses[:, None]
        if atoms.fixed.any():
            v[atoms.fixed] = 0.0
        dr = dt_cur * v
        # cap displacement
        max_dr = float(np.max(np.linalg.norm(dr, axis=1))) if len(dr) else 0.0
        if max_dr > max_disp:
            dr *= max_disp / max_dr
        atoms.positions += dr
        energy, f = energy_and_forces(atoms, calc)
        e_hist.append(energy)
        f_hist.append(max_force(f, atoms.fixed))

    fnorm = max_force(f, atoms.fixed)
    if raise_on_failure:
        raise ConvergenceError(
            f"FIRE: fmax {fnorm:.3e} after {it} steps",
            iterations=it, residual=fnorm)
    return RelaxationResult(atoms, fnorm < fmax, it, energy, fnorm,
                            e_hist, f_hist)

"""Steepest-descent relaxation with adaptive step size.

The simplest baseline: move along the force with a step that grows on
success and shrinks on energy increase.  Robust far from minima; slow
close to them — which is exactly the comparison the CG/FIRE tests draw.
"""

from __future__ import annotations

from repro.errors import ConvergenceError
from repro.relax.base import (
    RelaxationResult, energy_and_forces, masked_forces, max_force,
)


def steepest_descent(atoms, calc, fmax: float = 0.05, max_steps: int = 1000,
                     step: float = 0.05, step_max: float = 0.2,
                     grow: float = 1.2, shrink: float = 0.5,
                     raise_on_failure: bool = False) -> RelaxationResult:
    """Relax *atoms* in place until ``max|F| < fmax`` (eV/Å).

    Parameters
    ----------
    step :
        Initial displacement scale in Å per unit force.
    """
    e_prev, f = energy_and_forces(atoms, calc)
    e_hist, f_hist = [e_prev], [max_force(f, atoms.fixed)]
    alpha = step
    it = 0
    for it in range(1, max_steps + 1):
        fnorm = max_force(f, atoms.fixed)
        if fnorm < fmax:
            return RelaxationResult(atoms, True, it - 1, e_prev, fnorm,
                                    e_hist, f_hist)
        trial = atoms.positions + alpha * f
        old = atoms.positions.copy()
        atoms.positions = trial
        e_new = calc.get_potential_energy(atoms)
        if e_new <= e_prev + 1e-12:
            e_prev = e_new
            f = masked_forces(atoms, calc.get_forces(atoms))
            alpha = min(alpha * grow, step_max)
        else:
            atoms.positions = old
            alpha *= shrink
            if alpha < 1e-8:
                break
        e_hist.append(e_prev)
        f_hist.append(max_force(f, atoms.fixed))
    fnorm = max_force(f, atoms.fixed)
    if raise_on_failure:
        raise ConvergenceError(
            f"steepest descent: fmax {fnorm:.3e} after {it} steps",
            iterations=it, residual=fnorm)
    return RelaxationResult(atoms, fnorm < fmax, it, e_prev, fnorm,
                            e_hist, f_hist)

"""Shared relaxation plumbing: result record, force masking, convergence."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RelaxationResult:
    """Outcome of a structural relaxation.

    ``atoms`` is the same (mutated) object passed in; ``converged`` tells
    whether ``fmax`` dropped below the requested threshold within the
    iteration budget — callers decide whether non-convergence is an error.
    """

    atoms: object
    converged: bool
    iterations: int
    energy: float
    fmax: float
    energy_history: list[float] = field(default_factory=list)
    fmax_history: list[float] = field(default_factory=list)

    def __repr__(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (f"RelaxationResult({state} in {self.iterations} its, "
                f"E = {self.energy:.6f} eV, fmax = {self.fmax:.2e} eV/Å)")


def energy_and_forces(atoms, calc) -> tuple[float, np.ndarray]:
    """One electronic solve for both energy and masked forces.

    Calling ``get_potential_energy`` *then* ``get_forces`` costs two full
    electronic solves on calculators whose energy-only path skips the
    density matrix (the O(N) FOE evaluates half the Chebyshev work for
    energy-only requests, so the cached energy result cannot be upgraded
    to forces for free).  A single ``compute(forces=True)`` returns both
    from one solve — every relaxer step goes through here.
    """
    res = calc.compute(atoms, forces=True)
    return res["energy"], masked_forces(atoms, res["forces"])


def max_force(forces: np.ndarray, fixed: np.ndarray | None = None) -> float:
    """Largest per-atom force norm over the free atoms (eV/Å)."""
    f = np.asarray(forces)
    if fixed is not None and fixed.any():
        f = f[~fixed]
    if len(f) == 0:
        return 0.0
    return float(np.max(np.linalg.norm(f, axis=1)))


def masked_forces(atoms, forces: np.ndarray) -> np.ndarray:
    """Zero the rows of fixed atoms (returns a copy when masking)."""
    if atoms.fixed.any():
        f = forces.copy()
        f[atoms.fixed] = 0.0
        return f
    return forces

"""Structural relaxation: steepest descent, conjugate gradients, FIRE."""

from repro.relax.base import RelaxationResult, energy_and_forces, max_force
from repro.relax.steepest import steepest_descent
from repro.relax.cg import conjugate_gradient
from repro.relax.fire import fire_relax

__all__ = [
    "RelaxationResult",
    "energy_and_forces",
    "max_force",
    "steepest_descent",
    "conjugate_gradient",
    "fire_relax",
]

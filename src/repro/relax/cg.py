"""Polak–Ribière conjugate-gradient relaxation with backtracking line search.

The structural-relaxation workhorse of the era (the "CG technique" of
Numerical Recipes every TB paper cites).  Directions are conjugated with
the Polak–Ribière+ formula (automatic reset to steepest descent when the
conjugacy is lost); the line search backtracks on an Armijo condition.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.relax.base import (
    RelaxationResult, energy_and_forces, masked_forces, max_force,
)


def conjugate_gradient(atoms, calc, fmax: float = 0.05, max_steps: int = 500,
                       step0: float = 0.1, armijo: float = 1e-4,
                       backtrack: float = 0.5, max_backtracks: int = 12,
                       raise_on_failure: bool = False) -> RelaxationResult:
    """Relax *atoms* in place until ``max|F| < fmax`` (eV/Å).

    Parameters
    ----------
    step0 :
        Initial trial step along the (normalised) search direction, Å.
    armijo :
        Sufficient-decrease coefficient of the line search.
    """
    energy, f = energy_and_forces(atoms, calc)
    g = -f.ravel()                      # gradient
    d = -g.copy()                       # search direction (= force)
    e_hist = [energy]
    f_hist = [max_force(f, atoms.fixed)]
    alpha = step0

    it = 0
    for it in range(1, max_steps + 1):
        fnorm = max_force(f, atoms.fixed)
        if fnorm < fmax:
            return RelaxationResult(atoms, True, it - 1, energy, fnorm,
                                    e_hist, f_hist)

        dnorm = np.linalg.norm(d)
        if dnorm < 1e-14:
            break
        dhat = d / dnorm
        slope = float(g @ dhat)
        if slope >= 0:        # not a descent direction — reset
            d = -g.copy()
            dnorm = np.linalg.norm(d)
            if dnorm < 1e-14:
                break
            dhat = d / dnorm
            slope = float(g @ dhat)

        # backtracking line search on E(x + a*dhat)
        old_pos = atoms.positions.copy()
        a = alpha
        accepted = False
        for _ in range(max_backtracks):
            atoms.positions = old_pos + a * dhat.reshape(-1, 3)
            e_new = calc.get_potential_energy(atoms)
            if e_new <= energy + armijo * a * slope:
                accepted = True
                break
            a *= backtrack
        if not accepted:
            atoms.positions = old_pos
            d = -g.copy()          # reset direction, shrink step
            alpha = max(alpha * backtrack, 1e-8)
            if alpha <= 1e-8:
                break
            continue

        # success: update state, PR+ conjugation
        energy = e_new
        f = masked_forces(atoms, calc.get_forces(atoms))
        g_new = -f.ravel()
        beta = float(g_new @ (g_new - g)) / max(float(g @ g), 1e-300)
        beta = max(0.0, beta)      # PR+
        d = -g_new + beta * d
        g = g_new
        alpha = min(a * 1.5, 0.5)  # mild step growth
        e_hist.append(energy)
        f_hist.append(max_force(f, atoms.fixed))

    fnorm = max_force(f, atoms.fixed)
    if raise_on_failure:
        raise ConvergenceError(
            f"CG: fmax {fnorm:.3e} after {it} steps",
            iterations=it, residual=fnorm)
    return RelaxationResult(atoms, fnorm < fmax, it, energy, fnorm,
                            e_hist, f_hist)

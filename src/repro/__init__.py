"""pytbmd — a parallel tight-binding molecular dynamics library.

Reproduction of *"Tight binding molecular dynamics"* (Proceedings of
Supercomputing 1994): a complete TBMD engine — Slater–Koster sp models,
exact diagonalisation, Hellmann–Feynman forces, NVE/NVT dynamics,
structural relaxation — together with the replicated-data / distributed
parallelisation layer and its scaling evaluation, and the O(N)
localization-region electronic subsystem (:mod:`repro.linscale`).  See
docs/architecture.md for the system inventory; the reproduced evaluation lives in
``benchmarks/``.

Quick start::

    from repro.geometry import bulk_silicon, supercell
    from repro.tb import TBCalculator, GSPSilicon
    from repro.md import MDDriver, VelocityVerlet, maxwell_boltzmann_velocities

    atoms = supercell(bulk_silicon(), 2)          # 64 Si atoms
    calc = TBCalculator(GSPSilicon())
    maxwell_boltzmann_velocities(atoms, 300.0, seed=42)
    md = MDDriver(atoms, calc, VelocityVerlet(dt=1.0))
    md.run(100)
"""

__version__ = "1.0.0"

from repro import (
    analysis, classical, geometry, linscale, log, md, neighbors, obs,
    parallel, relax, tb, units,
)
from repro.calculators import CalculatorSpec, make_calculator
from repro.geometry import Atoms, Cell
from repro.linscale import LinearScalingCalculator
from repro.state import CalculatorState, ChangeReport
from repro.tb import TBCalculator, get_model

__all__ = [
    "__version__",
    "analysis",
    "classical",
    "geometry",
    "linscale",
    "log",
    "md",
    "neighbors",
    "obs",
    "parallel",
    "relax",
    "tb",
    "units",
    "Atoms",
    "Cell",
    "CalculatorSpec",
    "make_calculator",
    "CalculatorState",
    "ChangeReport",
    "TBCalculator",
    "LinearScalingCalculator",
    "get_model",
]

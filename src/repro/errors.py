"""Exception hierarchy for pytbmd.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything originating here with one ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all pytbmd errors."""


class GeometryError(ReproError):
    """Invalid cell, atoms container, or structure-builder input."""


class NeighborError(ReproError):
    """Neighbour-list construction failed (bad cutoff, degenerate cell...)."""


class ModelError(ReproError):
    """Tight-binding model misuse: unsupported species, bad parameters."""


class ElectronicError(ReproError):
    """Electronic-structure failure: occupation count, μ bisection, solver."""


class SpectralWindowError(ElectronicError):
    """A cached Chebyshev expansion window no longer contains the spectrum.

    Raised by the Fermi-operator kernels when the a-posteriori moment
    check detects recursion divergence (|T_k| must stay ≤ 1 on a valid
    window).  Callers recover by refreshing the spectral bounds and
    re-solving — the error signals stale *state*, not bad physics.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm (relaxation, SCF-like loop, μ search) failed
    to converge within its iteration budget."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class MDError(ReproError):
    """Molecular-dynamics driver misuse or numerical blow-up."""


class ParallelError(ReproError):
    """Communicator / decomposition misuse."""


class IOFormatError(ReproError):
    """Malformed structure or trajectory file."""


class ServiceError(ReproError):
    """Batch-service misuse: unknown structure id, bad lifecycle call."""


class ProtocolError(ServiceError):
    """Malformed service request: bad JSON, unknown op, missing or
    ill-shaped fields.  Always answered with an error *response* — a
    broken client must never take the server down."""


class CampaignError(ReproError):
    """Malformed campaign matrix or scenario parameters: unknown
    scenario/structure names, bad param values, unreadable matrix files.
    Failures *inside* a cell are recorded per-cell instead of raised —
    one diverging run must never abort the rest of the matrix."""

"""Mulliken population analysis: atomic charges and bond orders.

The standard chemical read-out of a TB density matrix:

* gross atomic population ``n_i = Σ_{μ∈i} (ρS)_{μμ}`` (orthogonal models:
  S = 1, so just the diagonal block trace of ρ);
* Mulliken charge ``q_i = Z_i − n_i`` (positive = electron deficit);
* Mayer-style bond order ``B_ij = Σ_{μ∈i, ν∈j} (ρS)_{μν}(ρS)_{νμ}``
  (orthogonal: Σ ρ_{μν}²) — ≈1 for single bonds, ≈2 for double.

These diagnostics are how the era's application papers talked about
edge states and dopants ("boron at the zig-zag edge removes a dangling
electron"), and they fall out of machinery this library already has.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ElectronicError
from repro.tb.hamiltonian import orbital_offsets


def _rho_s(rho: np.ndarray, S: np.ndarray | None) -> np.ndarray:
    return rho if S is None else rho @ S


def mulliken_populations(atoms, model, rho: np.ndarray,
                         S: np.ndarray | None = None) -> np.ndarray:
    """Gross electron population per atom (Σ = total electron count)."""
    offsets, m = orbital_offsets(atoms.symbols, model)
    if rho.shape != (m, m):
        raise ElectronicError(
            f"density matrix shape {rho.shape} does not match {m} orbitals"
        )
    ps = _rho_s(rho, S)
    diag = np.diag(ps)
    pops = np.empty(len(atoms))
    for i, sym in enumerate(atoms.symbols):
        o = offsets[i]
        pops[i] = float(diag[o:o + model.norb(sym)].sum())
    return pops


def mulliken_charges(atoms, model, rho: np.ndarray,
                     S: np.ndarray | None = None) -> np.ndarray:
    """Mulliken charges ``q_i = Z_valence − population`` (|e|)."""
    pops = mulliken_populations(atoms, model, rho, S)
    z = np.array([model.n_electrons(s) for s in atoms.symbols])
    return z - pops


def bond_order_matrix(atoms, model, rho: np.ndarray,
                      S: np.ndarray | None = None) -> np.ndarray:
    """Mayer bond orders, (N, N) symmetric with zero diagonal."""
    offsets, m = orbital_offsets(atoms.symbols, model)
    if rho.shape != (m, m):
        raise ElectronicError(
            f"density matrix shape {rho.shape} does not match {m} orbitals"
        )
    ps = _rho_s(rho, S)
    sp = ps if S is None else S @ rho
    n = len(atoms)
    orders = np.zeros((n, n))
    norbs = [model.norb(s) for s in atoms.symbols]
    # ρ carries the spin factor 2; Mayer's formula uses the spin-traced
    # P = ρ/... keep the standard closed-shell convention B = Σ (PS)(PS)
    # with P spin-summed — divide by 4 to land single bonds at ~1.
    for i in range(n):
        oi, ni = offsets[i], norbs[i]
        for j in range(i + 1, n):
            oj, nj = offsets[j], norbs[j]
            blk_ij = ps[oi:oi + ni, oj:oj + nj]
            blk_ji = sp[oj:oj + nj, oi:oi + ni] if S is not None \
                else ps[oj:oj + nj, oi:oi + ni]
            b = float(np.sum(blk_ij * blk_ji.T))
            orders[i, j] = orders[j, i] = b
    return orders


def analyze_populations(atoms, calc) -> dict:
    """One-call population analysis via a calculator.

    Runs (or reuses) the calculator's evaluation, rebuilds ρ (and S for
    non-orthogonal models), and returns charges, populations and the bond
    order matrix.
    """
    from repro.neighbors import neighbor_list
    from repro.tb.eigensolvers import solve_eigh
    from repro.tb.forces import density_matrices
    from repro.tb.hamiltonian import build_hamiltonian

    model = calc.model
    res = calc.compute(atoms, forces=False)
    nl = neighbor_list(atoms, model.cutoff)
    H, S = build_hamiltonian(atoms, model, nl)
    eps, C = solve_eigh(H, S)
    rho, _ = density_matrices(C, res["occupations"])
    return {
        "populations": mulliken_populations(atoms, model, rho, S),
        "charges": mulliken_charges(atoms, model, rho, S),
        "bond_orders": bond_order_matrix(atoms, model, rho, S),
    }

"""k-point sampling: Monkhorst–Pack grids and band-structure paths."""

from __future__ import annotations

import numpy as np

from repro.errors import ElectronicError


def gamma_point() -> tuple[np.ndarray, np.ndarray]:
    """The Γ-only sampling: ``(kpts_frac (1,3), weights (1,))``."""
    return np.zeros((1, 3)), np.ones(1)


def monkhorst_pack(size, reduce_time_reversal: bool = True
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Monkhorst–Pack fractional k grid.

    Parameters
    ----------
    size : (n1, n2, n3) grid divisions (an int means isotropic).
    reduce_time_reversal :
        Fold −k onto +k with doubled weight (default).  A real-space
        Hamiltonian is real, so ``H(−k) = H(k)*`` shares its spectrum
        with ``H(k)`` and the full grid does every ±k pair's work twice;
        folding halves the diagonalisation / FOE cost *exactly* (weighted
        band sums are identical to the full grid to round-off).  Pass
        ``False`` for the full unreduced grid (e.g. when perturbations
        break time-reversal symmetry).

    Returns
    -------
    ``(kpts_frac (K, 3), weights (K,))`` with weights summing to 1.  The
    standard MP offsets place even grids off Γ.
    """
    if np.isscalar(size):
        size = (int(size),) * 3
    size = tuple(int(s) for s in size)
    if any(s < 1 for s in size):
        raise ElectronicError(f"grid divisions must be >= 1, got {size}")
    grids = [(2.0 * np.arange(1, s + 1) - s - 1) / (2.0 * s) for s in size]
    k1, k2, k3 = np.meshgrid(*grids, indexing="ij")
    kpts = np.stack([k1.ravel(), k2.ravel(), k3.ravel()], axis=1)
    w = np.full(len(kpts), 1.0 / len(kpts))
    if reduce_time_reversal:
        return fold_time_reversal(kpts, w)
    return kpts, w


def fold_time_reversal(kpts_frac: np.ndarray, weights: np.ndarray,
                       decimals: int = 9) -> tuple[np.ndarray, np.ndarray]:
    """Fold time-reversal pairs ±k of a symmetric grid onto one member.

    For each pair ``(k, −k)`` present in the grid the lexicographically
    larger member is kept with the summed weight; self-paired points
    (Γ and zone-boundary points equal to −k modulo nothing — MP grids
    are symmetric about 0, so only exact ``k == −k``) and points whose
    partner is absent keep their own weight.  The total weight is
    conserved, and since ``ε(−k) = ε(k)`` for a real-space-real
    Hamiltonian, any weighted band quantity is *identical* to the full
    grid's to round-off — asserted in the test suite.
    """
    kpts = np.asarray(kpts_frac, dtype=float)
    w = np.asarray(weights, dtype=float).copy()
    keys = [tuple(k) for k in np.round(kpts, decimals)]
    index = {key: i for i, key in enumerate(keys)}
    keep = np.ones(len(kpts), dtype=bool)
    for i, key in enumerate(keys):
        if not keep[i]:
            continue
        neg = tuple(np.round(-kpts[i], decimals) + 0.0)   # -0.0 → 0.0
        j = index.get(neg)
        if j is None or j == i or not keep[j]:
            continue
        winner, loser = (i, j) if key >= neg else (j, i)
        w[winner] += w[loser]
        keep[loser] = False
    return kpts[keep], w[keep]


#: accepted values of the ``kgrid_reduce`` calculator/CLI/service knob
KGRID_REDUCE_MODES = ("trs", "full", "symmetry")


def reduced_kgrid(size, mode: str = "trs", atoms=None):
    """One entry point for every ``kgrid_reduce`` mode.

    ``"full"`` returns the unreduced Monkhorst–Pack grid, ``"trs"`` the
    time-reversal-folded grid (the long-standing default), and
    ``"symmetry"`` the irreducible wedge under the crystal point group
    of *atoms* (required for that mode) composed with time reversal.

    Returns ``(kpts_frac, weights, ops)`` where *ops* is the operation
    list force/virial scattering must average over (``None`` for the
    modes that need no scattering).
    """
    if mode not in KGRID_REDUCE_MODES:
        raise ElectronicError(
            f"unknown kgrid_reduce mode {mode!r}; choose from "
            f"{KGRID_REDUCE_MODES}")
    if mode == "symmetry":
        if atoms is None:
            raise ElectronicError(
                "kgrid_reduce='symmetry' needs the structure (the wedge "
                "depends on cell *and* basis)")
        from repro.tb.symmetry import irreducible_kpoints

        grid = irreducible_kpoints(size, atoms=atoms)
        return grid.kpts_frac, grid.weights, grid.ops
    kpts, w = monkhorst_pack(size, reduce_time_reversal=(mode == "trs"))
    return kpts, w, None


def reciprocal_lattice(cell) -> np.ndarray:
    """Reciprocal lattice vectors (rows, Å⁻¹) with the 2π convention."""
    return 2.0 * np.pi * np.linalg.inv(cell.matrix).T


def frac_to_cartesian(kpts_frac: np.ndarray, cell) -> np.ndarray:
    """Fractional k points → Cartesian (Å⁻¹)."""
    return np.asarray(kpts_frac, dtype=float) @ reciprocal_lattice(cell)


def kpath(points: dict[str, np.ndarray] | list, labels: list[str],
          n_per_segment: int = 20) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Linear interpolation through named high-symmetry points.

    Parameters
    ----------
    points : mapping label → fractional k point.
    labels : path through the mapping, e.g. ``["L", "G", "X"]``.
    n_per_segment : points per leg (endpoints shared).

    Returns
    -------
    ``(kpts_frac, distances, tick_indices)`` — cumulative path length is
    computed in fractional space scaled per leg, adequate for plotting.
    """
    if len(labels) < 2:
        raise ElectronicError("a k-path needs at least two labels")
    pts = [np.asarray(points[label], dtype=float) for label in labels]
    path = [pts[0]]
    ticks = [0]
    for a, b in zip(pts[:-1], pts[1:]):
        seg = [a + (b - a) * t for t in np.linspace(0, 1, n_per_segment + 1)[1:]]
        path.extend(seg)
        ticks.append(len(path) - 1)
    kpts = np.array(path)
    deltas = np.linalg.norm(np.diff(kpts, axis=0), axis=1)
    dist = np.concatenate([[0.0], np.cumsum(deltas)])
    return kpts, dist, ticks


#: High-symmetry points of the FCC Brillouin zone (fractional, conventional
#: cubic cell reciprocal basis) — used for diamond-structure band plots.
FCC_POINTS = {
    "G": np.array([0.0, 0.0, 0.0]),
    "X": np.array([0.5, 0.0, 0.5]),
    "L": np.array([0.5, 0.5, 0.5]),
    "W": np.array([0.5, 0.25, 0.75]),
    "K": np.array([0.375, 0.375, 0.75]),
}

"""Tight-binding Hamiltonian (and overlap) assembly.

Γ-point supercell assembly for MD and a k-resolved complex assembly for
band structures.  Both consume the half neighbour list: each bond
contributes its Slater–Koster block and the block's transpose (conjugate
transpose with a phase at finite k); periodic self-image bonds fold onto
the atom's own diagonal block, which is what makes tiny supercells exact
at Γ.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.neighbors.base import NeighborList
from repro.tb.slater_koster import sk_blocks


def orbital_offsets(symbols, model) -> tuple[np.ndarray, int]:
    """Per-atom orbital offsets and total orbital count.

    Returns ``(offsets, M)`` with ``offsets[i]`` the first matrix row of
    atom *i*.
    """
    norbs = np.array([model.norb(s) for s in symbols], dtype=int)
    offsets = np.concatenate(([0], np.cumsum(norbs)[:-1]))
    return offsets, int(norbs.sum())


def pair_species_groups(symbols, nl: NeighborList) -> dict[tuple[str, str], np.ndarray]:
    """Group half-list pair indices by (species_i, species_j).

    Vectorised radial evaluation then happens once per species pair instead
    of once per bond.
    """
    syms = np.asarray(symbols)
    si = syms[nl.i]
    sj = syms[nl.j]
    groups: dict[tuple[str, str], np.ndarray] = {}
    if nl.n_pairs == 0:
        return groups
    keys = np.char.add(np.char.add(si.astype(str), "|"), sj.astype(str))
    for key in np.unique(keys):
        a, b = key.split("|")
        groups[(a, b)] = np.flatnonzero(keys == key)
    return groups


def _scatter_blocks(mat: np.ndarray, blocks: np.ndarray,
                    oi: np.ndarray, oj: np.ndarray,
                    ni: int, nj: int) -> None:
    """Accumulate (P, ni, nj) blocks and their transposes into *mat*.

    Duplicate (i, j) pairs (multiple periodic images) must *add*, hence
    ``np.add.at``.
    """
    rows = oi[:, None, None] + np.arange(ni)[None, :, None]
    cols = oj[:, None, None] + np.arange(nj)[None, None, :]
    np.add.at(mat, (rows, cols), blocks)
    np.add.at(mat, (np.swapaxes(cols, 1, 2), np.swapaxes(rows, 1, 2)),
              np.swapaxes(blocks, 1, 2))


def build_hamiltonian(atoms, model, nl: NeighborList,
                      with_overlap: bool | None = None,
                      sparse: bool = False
                      ) -> tuple[np.ndarray, np.ndarray | None]:
    """Assemble the real symmetric Γ-point Hamiltonian (M×M, eV).

    Returns ``(H, S)``; ``S`` is ``None`` for orthogonal models, else the
    overlap matrix with unit diagonal.  With ``sparse=True`` both come
    back as scipy CSR (numerically identical entries), assembled in O(M)
    memory by :mod:`repro.linscale.sparse_hamiltonian`.
    """
    if sparse:
        from repro.linscale.sparse_hamiltonian import build_sparse_hamiltonian

        return build_sparse_hamiltonian(atoms, model, nl,
                                        with_overlap=with_overlap)
    symbols = atoms.symbols
    model.check_species(symbols)
    offsets, m = orbital_offsets(symbols, model)

    if with_overlap is None:
        with_overlap = not model.orthogonal

    H = np.zeros((m, m))
    S = np.zeros((m, m)) if with_overlap else None

    # on-site terms
    for idx, sym in enumerate(symbols):
        e = model.onsite(sym)
        o = offsets[idx]
        H[o:o + len(e), o:o + len(e)][np.diag_indices(len(e))] = e
    if S is not None:
        S[np.diag_indices(m)] = 1.0

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        u = nl.vectors[pidx] / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]

        V, _ = model.hopping(sa, sb, r)
        blocks = sk_blocks(u, V)[:, :ni, :nj]
        _scatter_blocks(H, blocks, oi, oj, ni, nj)

        if S is not None:
            ov = model.overlap(sa, sb, r)
            if ov is None:
                raise ModelError(
                    f"model {model.name!r} requested with overlap but "
                    f"returns none for pair ({sa}, {sb})"
                )
            sblocks = sk_blocks(u, ov[0])[:, :ni, :nj]
            _scatter_blocks(S, sblocks, oi, oj, ni, nj)

    return H, S


def build_hamiltonian_k(atoms, model, nl: NeighborList, k_cart,
                        with_overlap: bool | None = None,
                        sparse: bool = False
                        ) -> tuple[np.ndarray, np.ndarray | None]:
    """Assemble the complex Hermitian Hamiltonian at Cartesian k (Å⁻¹).

    Uses the "atomic gauge" phase ``exp(i k · d)`` with ``d`` the physical
    bond vector; eigenvalues are gauge-independent.  Returns ``(H_k, S_k)``.
    With ``sparse=True`` both come back as complex scipy CSR (numerically
    identical entries), assembled in O(M) memory by
    :mod:`repro.linscale.sparse_hamiltonian`.
    """
    if sparse:
        from repro.linscale.sparse_hamiltonian import build_sparse_hamiltonian_k

        return build_sparse_hamiltonian_k(atoms, model, nl, k_cart,
                                          with_overlap=with_overlap)
    symbols = atoms.symbols
    model.check_species(symbols)
    offsets, m = orbital_offsets(symbols, model)
    k = np.asarray(k_cart, dtype=float).reshape(3)

    if with_overlap is None:
        with_overlap = not model.orthogonal

    H = np.zeros((m, m), dtype=complex)
    S = np.zeros((m, m), dtype=complex) if with_overlap else None

    for idx, sym in enumerate(symbols):
        e = model.onsite(sym)
        o = offsets[idx]
        H[o:o + len(e), o:o + len(e)][np.diag_indices(len(e))] = e
    if S is not None:
        S[np.diag_indices(m)] = 1.0

    def scatter_k(mat, blocks, phases, oi, oj, ni, nj):
        rows = oi[:, None, None] + np.arange(ni)[None, :, None]
        cols = oj[:, None, None] + np.arange(nj)[None, None, :]
        ph_blocks = blocks * phases[:, None, None]
        np.add.at(mat, (rows, cols), ph_blocks)
        np.add.at(mat, (np.swapaxes(cols, 1, 2), np.swapaxes(rows, 1, 2)),
                  np.conj(np.swapaxes(ph_blocks, 1, 2)))

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]
        phases = np.exp(1j * (vec @ k))

        V, _ = model.hopping(sa, sb, r)
        blocks = sk_blocks(u, V)[:, :ni, :nj].astype(complex)
        scatter_k(H, blocks, phases, oi, oj, ni, nj)

        if S is not None:
            ov = model.overlap(sa, sb, r)
            if ov is None:
                raise ModelError(
                    f"model {model.name!r} lacks overlap for ({sa}, {sb})"
                )
            sblocks = sk_blocks(u, ov[0])[:, :ni, :nj].astype(complex)
            scatter_k(S, sblocks, phases, oi, oj, ni, nj)

    return H, S

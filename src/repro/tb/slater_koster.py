"""Two-centre Slater–Koster sp blocks and their analytic gradients.

Orbital ordering per atom is ``[s, p_x, p_y, p_z]``.  For a bond vector
``rvec = r_j + T − r_i`` with unit vector ``u`` and length ``r``, the
hopping block ``B[μ, ν] = ⟨μ, i | H | ν, j⟩`` is

.. math::

    B_{ss}      &= V_{ss\\sigma}(r) \\\\
    B_{s,p_a}   &= u_a V_{sp\\sigma}(r) \\\\
    B_{p_a,s}   &= -u_a V_{ps\\sigma}(r) \\\\
    B_{p_a,p_b} &= u_a u_b \\, (V_{pp\\sigma} - V_{pp\\pi})
                   + \\delta_{ab} V_{pp\\pi}

(Slater & Koster 1954).  ``V_{ps\\sigma}`` equals ``V_{sp\\sigma}`` of the
reversed species pair — identical for homonuclear bonds, distinct for e.g.
C–H.  The gradient with respect to the bond *vector* follows from the chain
rule with ``∂u_a/∂r_c = (δ_ac − u_a u_c)/r``; it feeds the Hellmann–Feynman
force evaluation, and is validated against finite differences in the test
suite.

All functions are vectorised over a leading pair axis.

Channel dictionary convention
-----------------------------
Radial values are passed as ``{"sss", "sps", "pss", "pps", "ppp"}`` keyed
arrays of shape (P,):

* ``sss`` — ssσ
* ``sps`` — s on the *first* atom, p on the second, σ
* ``pss`` — p on the first atom, s on the second, σ
* ``pps`` — ppσ
* ``ppp`` — ppπ
"""

from __future__ import annotations

import numpy as np

CHANNELS = ("sss", "sps", "pss", "pps", "ppp")

#: Number of orbitals used per angular-momentum configuration.
NORB_SP = 4
NORB_S = 1


def sk_blocks(u: np.ndarray, V: dict[str, np.ndarray]) -> np.ndarray:
    """Hopping (or overlap) blocks for every pair.

    Parameters
    ----------
    u : (P, 3) unit bond vectors (i → j).
    V : channel dict of (P,) radial values.

    Returns
    -------
    (P, 4, 4) array of sp blocks.  Callers with s-only species slice the
    relevant sub-block.
    """
    u = np.asarray(u, dtype=float)
    p = len(u)
    B = np.empty((p, 4, 4))
    pps_minus_ppp = V["pps"] - V["ppp"]

    B[:, 0, 0] = V["sss"]
    B[:, 0, 1:] = u * V["sps"][:, None]
    B[:, 1:, 0] = -u * V["pss"][:, None]
    # p-p block: u_a u_b (ppσ − ppπ) + δ_ab ppπ
    outer = u[:, :, None] * u[:, None, :]
    B[:, 1:, 1:] = outer * pps_minus_ppp[:, None, None]
    idx = np.arange(3)
    B[:, 1 + idx, 1 + idx] += V["ppp"][:, None]
    return B


def sk_block_gradients(u: np.ndarray, r: np.ndarray,
                       V: dict[str, np.ndarray],
                       dV: dict[str, np.ndarray]) -> np.ndarray:
    """Gradients ``∂B[μ,ν]/∂rvec_c`` for every pair.

    Parameters
    ----------
    u : (P, 3) unit bond vectors.
    r : (P,) bond lengths.
    V, dV : channel dicts of radial values and radial derivatives.

    Returns
    -------
    (P, 3, 4, 4) array; axis 1 is the Cartesian derivative component *c*.
    """
    u = np.asarray(u, dtype=float)
    r = np.asarray(r, dtype=float)
    p = len(u)
    G = np.zeros((p, 3, 4, 4))

    # ∂u_a/∂r_c = (δ_ac − u_a u_c) / r  →  proj[p, a, c]
    eye = np.eye(3)
    proj = (eye[None, :, :] - u[:, :, None] * u[:, None, :]) / r[:, None, None]

    # ss
    G[:, :, 0, 0] = dV["sss"][:, None] * u

    # s-p  : d(u_a V)/dr_c = u_c u_a V' + proj[a,c] V.
    # Both target slices have [pair, c, a] layout; u_c u_a is symmetric and
    # swapaxes(proj, 1, 2)[p, c, a] = proj[p, a, c].
    uu_ca = u[:, :, None] * u[:, None, :]
    proj_ca = np.swapaxes(proj, 1, 2)
    G[:, :, 0, 1:] = dV["sps"][:, None, None] * uu_ca \
        + V["sps"][:, None, None] * proj_ca
    G[:, :, 1:, 0] = -(dV["pss"][:, None, None] * uu_ca
                       + V["pss"][:, None, None] * proj_ca)

    # p-p : d(u_a u_b (σ−π) + δ_ab π)/dr_c
    dpp = (dV["pps"] - dV["ppp"])
    vpp = (V["pps"] - V["ppp"])
    uu = u[:, :, None] * u[:, None, :]                                   # [p,a,b]
    term_rad = dpp[:, None, None, None] * u[:, :, None, None] * uu[:, None, :, :]
    # angular: (σ−π) (proj[a,c] u_b + u_a proj[b,c])   → index as [p,c,a,b]
    pa_c = proj_ca                                                       # [p,c,a]
    term_ang = vpp[:, None, None, None] * (
        pa_c[:, :, :, None] * u[:, None, None, :]
        + u[:, None, :, None] * pa_c[:, :, None, :]
    )
    term_pi = np.zeros((p, 3, 3, 3))
    idx = np.arange(3)
    term_pi[:, :, idx, idx] = (dV["ppp"][:, None] * u)[:, :, None]
    G[:, :, 1:, 1:] = term_rad + term_ang + term_pi
    return G


def validate_channels(V: dict[str, np.ndarray], npairs: int) -> None:
    """Sanity-check a channel dict (used by model unit tests)."""
    for ch in CHANNELS:
        if ch not in V:
            raise KeyError(f"missing Slater-Koster channel {ch!r}")
        arr = np.asarray(V[ch])
        if arr.shape != (npairs,):
            raise ValueError(
                f"channel {ch!r} has shape {arr.shape}, expected ({npairs},)"
            )

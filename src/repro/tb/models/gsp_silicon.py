"""Goodwin–Skinner–Pettifor orthogonal tight-binding model for silicon.

L. Goodwin, A. J. Skinner and D. G. Pettifor, *Europhys. Lett.* **9**, 701
(1989) — *the* silicon TBMD parametrisation of the early 1990s and the
model behind most SC-era parallel TBMD demonstrations.  Minimal sp³ basis,
orthogonal, with the GSP radial scaling for both the hopping integrals and
the pairwise repulsion.

Parameters (eV, Å):

* on-site: E_s = −5.25, E_p = +1.20
* hoppings at r₀ = 2.360352: ssσ = −1.820, spσ = +1.960, ppσ = +3.060,
  ppπ = −0.870; scaling n = 2, n_c = 6.48, r_c = 3.67
* repulsion: GSP pairwise form φ(r) = φ₀ (r₀/r)^m exp{m[−(r/d_c)^{m_c}
  + (r₀/d_c)^{m_c}]} with φ₀ = 2.120477, m = 4.930725, m_c = 16.879864,
  d_c = 3.67.

**Repulsive recalibration (documented substitution).**  The electronic
parameters above are the published GSP/Kwon values; the original repulsive
coefficients were not available offline, so (φ₀, m, m_c) were refit — with
the published functional form — to three exact conditions on the
4×4×4-k-sampled diamond crystal: equilibrium at the experimental lattice
constant a₀ = 5.431 Å, cohesive energy 4.63 eV/atom (against the
free-atom band reference 2E_s + 2E_p = −8.1 eV), and bulk modulus 98 GPa.
These are the same targets GSP fitted to, so the refit preserves the
model's physics; see docs/architecture.md.

Both radial functions are multiplied by a quintic switch between
``r_on = 3.8`` and ``r_off = 4.16`` Å so forces stay continuous; at those
distances the GSP exponential has already suppressed the magnitude to
< 1 % of its first-neighbour value, so bulk properties are unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.tb.models.base import TBModel, apply_switch, gsp_scaling


class GSPSilicon(TBModel):
    """GSP orthogonal sp³ silicon model."""

    name = "gsp-silicon"
    species = ("Si",)
    orthogonal = True

    # on-site energies (eV)
    E_S = -5.25
    E_P = 1.20

    # hopping parameters
    R0 = 2.360352
    V0 = {"sss": -1.820, "sps": 1.960, "pps": 3.060, "ppp": -0.870}
    N = 2.0
    NC = 6.48
    RC = 3.67

    # repulsive parameters (refit; see module docstring)
    PHI0 = 2.120477
    M = 4.930725
    MC = 16.879864
    DC = 3.67

    def __init__(self, r_on: float = 3.80, r_off: float = 4.16):
        if not r_off > r_on > self.R0:
            raise ModelError("switch window must satisfy r0 < r_on < r_off")
        self.r_on = float(r_on)
        self.r_off = float(r_off)
        self.cutoff = float(r_off)

    # -- species data ---------------------------------------------------------
    def norb(self, symbol: str) -> int:
        self.check_species([symbol])
        return 4

    def n_electrons(self, symbol: str) -> float:
        self.check_species([symbol])
        return 4.0

    def onsite(self, symbol: str) -> np.ndarray:
        self.check_species([symbol])
        return np.array([self.E_S, self.E_P, self.E_P, self.E_P])

    # -- matrix elements --------------------------------------------------------
    def hopping(self, sym_i: str, sym_j: str, r: np.ndarray):
        self.check_species([sym_i, sym_j])
        r = np.asarray(r, dtype=float)
        s, ds = gsp_scaling(r, self.R0, self.N, self.NC, self.RC)
        s, ds = apply_switch(s, ds, r, self.r_on, self.r_off)
        V, dV = {}, {}
        for ch, v0 in self.V0.items():
            V[ch] = v0 * s
            dV[ch] = v0 * ds
        V["pss"] = V["sps"]
        dV["pss"] = dV["sps"]
        return V, dV

    def pair_repulsion(self, sym_i: str, sym_j: str, r: np.ndarray):
        self.check_species([sym_i, sym_j])
        r = np.asarray(r, dtype=float)
        s, ds = gsp_scaling(r, self.R0, self.M, self.MC, self.DC)
        phi, dphi = self.PHI0 * s, self.PHI0 * ds
        return apply_switch(phi, dphi, r, self.r_on, self.r_off)

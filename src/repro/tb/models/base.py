"""Abstract tight-binding model interface and shared radial machinery.

A :class:`TBModel` supplies everything the Hamiltonian builder and force
evaluator need:

* per-species orbital count, valence electron count, on-site energies;
* hopping (and optionally overlap) radial channel values **and radial
  derivatives** for any species pair at arbitrary distances;
* the repulsive interaction: a pair function φ(r) plus an optional
  embedding function f so that ``E_rep = Σ_i f(Σ_j φ(r_ij))`` (plain
  pairwise repulsion is ``f(x) = x``).

All radial functions must go *smoothly* (C¹) to zero at ``model.cutoff`` —
the shared :func:`quintic_switch` guarantees this and keeps MD forces
continuous.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ModelError
from repro.tb.slater_koster import CHANNELS


# ---------------------------------------------------------------------------
# Shared radial forms
# ---------------------------------------------------------------------------

def gsp_scaling(r, r0: float, n: float, nc: float, rc: float):
    """Goodwin–Skinner–Pettifor radial scaling and derivative.

    .. math::
        s(r) = (r_0/r)^n \\exp\\{ n [ -(r/r_c)^{n_c} + (r_0/r_c)^{n_c} ] \\}

    Returns ``(s, ds/dr)``.  This is the universal distance dependence of
    the 1990s TB parametrisations (GSP silicon, XWCH carbon).
    """
    r = np.asarray(r, dtype=float)
    ratio = r0 / r
    expo = n * (-((r / rc) ** nc) + (r0 / rc) ** nc)
    s = ratio**n * np.exp(expo)
    # ds/dr = s * [ -n/r − n·nc/r · (r/rc)^nc ]
    ds = s * (-(n / r) - (n * nc / r) * (r / rc) ** nc)
    return s, ds


def quintic_switch(r, r_on: float, r_off: float):
    """C²-smooth switching function S(r): 1 below *r_on*, 0 above *r_off*.

    Uses the quintic smoothstep ``1 − 10t³ + 15t⁴ − 6t⁵`` on the normalised
    coordinate ``t = (r − r_on)/(r_off − r_on)``.  Returns ``(S, dS/dr)``.
    """
    if not r_off > r_on:
        raise ModelError(f"need r_off > r_on, got {r_on} >= {r_off}")
    r = np.asarray(r, dtype=float)
    t = np.clip((r - r_on) / (r_off - r_on), 0.0, 1.0)
    s = 1.0 - t**3 * (10.0 - 15.0 * t + 6.0 * t * t)
    ds = -30.0 * t * t * (1.0 - t) ** 2 / (r_off - r_on)
    return s, ds


def apply_switch(v, dv, r, r_on: float, r_off: float):
    """Multiply a radial function (value+derivative) by the quintic switch."""
    s, ds = quintic_switch(r, r_on, r_off)
    return v * s, dv * s + v * ds


# ---------------------------------------------------------------------------
# Model interface
# ---------------------------------------------------------------------------

class TBModel(ABC):
    """Abstract two-centre Slater–Koster tight-binding model.

    Subclasses set :attr:`name`, :attr:`species` and :attr:`cutoff` and
    implement the radial methods.  ``cutoff`` must bound *both* the hopping
    and repulsive ranges — the calculator builds one neighbour list for
    both.
    """

    #: Human-readable identifier.
    name: str = "abstract"

    #: Chemical symbols the model supports.
    species: tuple[str, ...] = ()

    #: Interaction cutoff in Å (hopping and repulsion both vanish beyond).
    cutoff: float = 0.0

    #: True if the model defines an overlap matrix (generalised eigenproblem).
    orthogonal: bool = True

    # -- species data --------------------------------------------------------
    @abstractmethod
    def norb(self, symbol: str) -> int:
        """Number of orbitals for *symbol* (1 = s, 4 = sp)."""

    @abstractmethod
    def n_electrons(self, symbol: str) -> float:
        """Valence electron count contributed by *symbol*."""

    @abstractmethod
    def onsite(self, symbol: str) -> np.ndarray:
        """On-site orbital energies, shape ``(norb,)`` (eV)."""

    # -- radial matrix elements ----------------------------------------------
    @abstractmethod
    def hopping(self, sym_i: str, sym_j: str, r: np.ndarray
                ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Hopping channel values and radial derivatives at distances *r*.

        Returns ``(V, dV)``, channel dicts per
        :mod:`repro.tb.slater_koster` (``sps`` = s on atom *i*, p on *j*).
        """

    def overlap(self, sym_i: str, sym_j: str, r: np.ndarray
                ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]] | None:
        """Overlap channels, or ``None`` (implicit) for orthogonal
        models — non-orthogonal models override this."""

    # -- repulsion -------------------------------------------------------------
    @abstractmethod
    def pair_repulsion(self, sym_i: str, sym_j: str, r: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Pair repulsion φ(r) and φ'(r)."""

    def embedding(self, symbol: str, x: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Embedding function ``f(x), f'(x)`` for ``E_rep = Σ_i f(x_i)``.

        Default: identity (plain pairwise repulsion).
        """
        x = np.asarray(x, dtype=float)
        return x, np.ones_like(x)

    # -- helpers ----------------------------------------------------------------
    def check_species(self, symbols) -> None:
        """Raise :class:`ModelError` for any unsupported species."""
        bad = sorted({s for s in symbols} - set(self.species))
        if bad:
            raise ModelError(
                f"model {self.name!r} does not support species {bad}; "
                f"supported: {sorted(self.species)}"
            )

    def total_orbitals(self, symbols) -> int:
        return int(sum(self.norb(s) for s in symbols))

    def total_electrons(self, symbols) -> float:
        return float(sum(self.n_electrons(s) for s in symbols))

    @staticmethod
    def homonuclear_channels(vss, vsp, vpp_s, vpp_p) -> dict[str, np.ndarray]:
        """Assemble a channel dict for a homonuclear bond (pss = sps)."""
        return {"sss": vss, "sps": vsp, "pss": vsp, "pps": vpp_s, "ppp": vpp_p}

    def describe(self) -> str:
        """One-paragraph summary used by example scripts."""
        kind = "orthogonal" if self.orthogonal else "non-orthogonal"
        return (f"{self.name}: {kind} sp tight-binding model for "
                f"{'/'.join(self.species)}, cutoff {self.cutoff:.2f} Å")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def zero_channels(npairs: int) -> dict[str, np.ndarray]:
    """A channel dict of zeros (useful for s-only species pairs)."""
    return {ch: np.zeros(npairs) for ch in CHANNELS}

"""Tight-binding model zoo."""

from repro.tb.models.base import TBModel, gsp_scaling, quintic_switch
from repro.tb.models.gsp_silicon import GSPSilicon
from repro.tb.models.xu_carbon import XuCarbon
from repro.tb.models.harrison import HarrisonModel
from repro.tb.models.nonorthogonal import NonOrthogonalSilicon

_REGISTRY = {
    "gsp-si": GSPSilicon,
    "xu-c": XuCarbon,
    "harrison": HarrisonModel,
    "nonortho-si": NonOrthogonalSilicon,
}


def get_model(name: str, **kwargs) -> TBModel:
    """Instantiate a registered model by name.

    Known names: ``gsp-si`` (Goodwin–Skinner–Pettifor silicon), ``xu-c``
    (Xu–Wang–Chan–Ho carbon), ``harrison`` (universal sp parameters),
    ``nonortho-si`` (non-orthogonal silicon demo model).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown TB model {name!r}; known: {known}") from None
    return cls(**kwargs)


__all__ = [
    "TBModel",
    "GSPSilicon",
    "XuCarbon",
    "HarrisonModel",
    "NonOrthogonalSilicon",
    "get_model",
    "gsp_scaling",
    "quintic_switch",
]

"""Non-orthogonal silicon demonstration model.

Takes the GSP silicon hoppings and adds an explicit overlap matrix whose
channels share the hopping's GSP radial decay with small amplitudes,

.. math::  S_{ll'm}(r) = \\kappa_{ll'm}\\, s(r),

so the generalised eigenproblem ``H C = ε S C`` and the full
Hellmann–Feynman force (including the energy-weighted-density ``∂S`` term,
``F = −2 Σ_n f_n C_n^†(∇H − ε_n ∇S)C_n``) are exercised end-to-end — this
is the force expression non-orthogonal schemes such as DFTB use.

Amplitudes are kept small (|κ| ≤ 0.15) so S stays safely positive-definite
for physical geometries; the test suite checks SPD on all benchmark
workloads.  The model is a *demonstrator*: numerically close to GSP for
bulk silicon but not an independently fitted parametrisation.
"""

from __future__ import annotations

import numpy as np

from repro.tb.models.base import apply_switch, gsp_scaling
from repro.tb.models.gsp_silicon import GSPSilicon


class NonOrthogonalSilicon(GSPSilicon):
    """GSP silicon + GSP-decay overlap (generalised eigenproblem demo)."""

    name = "nonorthogonal-silicon"
    orthogonal = False

    #: Overlap amplitudes at r0 (dimensionless).  Signs follow the hopping
    #: sign convention so bonding combinations overlap positively.
    S0 = {"sss": 0.12, "sps": -0.10, "pps": -0.15, "ppp": 0.06}

    def overlap(self, sym_i: str, sym_j: str, r: np.ndarray):
        self.check_species([sym_i, sym_j])
        r = np.asarray(r, dtype=float)
        s, ds = gsp_scaling(r, self.R0, self.N, self.NC, self.RC)
        s, ds = apply_switch(s, ds, r, self.r_on, self.r_off)
        S, dS = {}, {}
        for ch, s0 in self.S0.items():
            S[ch] = s0 * s
            dS[ch] = s0 * ds
        S["pss"] = S["sps"]
        dS["pss"] = dS["sps"]
        return S, dS

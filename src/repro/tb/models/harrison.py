"""Harrison universal tight-binding model (multi-species, incl. hydrogen).

W. A. Harrison, *Electronic Structure and the Properties of Solids* (1980).
Hopping integrals follow the universal ``V_{ll'm} = η_{ll'm} ħ²/(m_e d²)``
law; on-site energies are Harrison's atomic term values.  The model is
deliberately crude — its role in this library is (a) a *hetero-nuclear*
model exercising the asymmetric sps/pss channels and s-only hydrogen,
(b) a quick band-structure demonstrator, and (c) a source of qualitatively
reasonable C–H / Si–H terminations for the nanotube workloads.

The universal law has no repulsion; we pair it with a Born–Mayer
``A·exp(−r/ρ)`` repulsion whose defaults are calibrated to give sensible
bond lengths (not quantitative energetics).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.tb.models.base import TBModel, apply_switch

#: ħ²/m_e in eV·Å².
HBAR2_OVER_ME = 7.62

#: Harrison universal η coefficients.
ETA = {"sss": -1.40, "sps": 1.84, "pps": 3.24, "ppp": -0.81}

#: Harrison atomic term values (eV): (E_s, E_p).  Hydrogen is s-only.
TERM_VALUES = {
    "H": (-13.61, None),
    "C": (-17.52, -8.97),
    "Si": (-13.55, -6.52),
    "Ge": (-14.38, -6.36),
}

#: Valence electrons.
VALENCE = {"H": 1.0, "C": 4.0, "Si": 4.0, "Ge": 4.0}


class HarrisonModel(TBModel):
    """Universal sp model for H/C/Si/Ge with Born–Mayer repulsion."""

    name = "harrison-universal"
    species = tuple(TERM_VALUES)
    orthogonal = True

    def __init__(self, cutoff: float = 3.2, switch_width: float = 0.4,
                 rep_a: float = 180.0, rep_rho: float = 0.40):
        if cutoff <= switch_width:
            raise ModelError("cutoff must exceed switch_width")
        self.cutoff = float(cutoff)
        self.r_on = float(cutoff - switch_width)
        self.rep_a = float(rep_a)
        self.rep_rho = float(rep_rho)

    # -- species data ---------------------------------------------------------
    def norb(self, symbol: str) -> int:
        self.check_species([symbol])
        return 1 if TERM_VALUES[symbol][1] is None else 4

    def n_electrons(self, symbol: str) -> float:
        self.check_species([symbol])
        return VALENCE[symbol]

    def onsite(self, symbol: str) -> np.ndarray:
        self.check_species([symbol])
        es, ep = TERM_VALUES[symbol]
        if ep is None:
            return np.array([es])
        return np.array([es, ep, ep, ep])

    # -- matrix elements ----------------------------------------------------------
    def hopping(self, sym_i: str, sym_j: str, r: np.ndarray):
        self.check_species([sym_i, sym_j])
        r = np.asarray(r, dtype=float)
        base = HBAR2_OVER_ME / (r * r)
        dbase = -2.0 * HBAR2_OVER_ME / (r * r * r)
        V, dV = {}, {}
        for ch in ("sss", "pps", "ppp"):
            V[ch] = ETA[ch] * base
            dV[ch] = ETA[ch] * dbase
        # sps couples s(i)–p(j): zero if j is s-only; pss if i is s-only.
        sp = ETA["sps"]
        V["sps"] = sp * base if self.norb(sym_j) > 1 else np.zeros_like(r)
        dV["sps"] = sp * dbase if self.norb(sym_j) > 1 else np.zeros_like(r)
        V["pss"] = sp * base if self.norb(sym_i) > 1 else np.zeros_like(r)
        dV["pss"] = sp * dbase if self.norb(sym_i) > 1 else np.zeros_like(r)
        # p-p channels vanish unless both atoms carry p orbitals.
        if self.norb(sym_i) == 1 or self.norb(sym_j) == 1:
            z = np.zeros_like(r)
            V["pps"], dV["pps"], V["ppp"], dV["ppp"] = z, z.copy(), z.copy(), z.copy()
        out = {}
        dout = {}
        for ch in V:
            out[ch], dout[ch] = apply_switch(V[ch], dV[ch], r,
                                             self.r_on, self.cutoff)
        return out, dout

    def pair_repulsion(self, sym_i: str, sym_j: str, r: np.ndarray):
        self.check_species([sym_i, sym_j])
        r = np.asarray(r, dtype=float)
        phi = self.rep_a * np.exp(-r / self.rep_rho)
        dphi = -phi / self.rep_rho
        return apply_switch(phi, dphi, r, self.r_on, self.cutoff)

"""Xu–Wang–Chan–Ho orthogonal tight-binding model for carbon.

C. H. Xu, C. Z. Wang, C. T. Chan and K. M. Ho, *J. Phys.: Condens. Matter*
**4**, 6047 (1992).  The transferable carbon TBMD model of the 1990s —
used for fullerenes, liquid/amorphous carbon, and the nanotube simulations
that this library's application examples emulate.

Minimal sp³ basis; GSP-form distance scaling for the hoppings; pairwise
repulsion φ(r) fed through a 4th-order polynomial **embedding** function:
``E_rep = Σ_i f(Σ_j φ(r_ij))``.

Parameters (eV, Å):

* on-site: E_s = −2.99, E_p = +3.71  (4 valence electrons)
* hoppings at r₀ = 1.536329: ssσ = −5.00, spσ = +4.70, ppσ = +5.50,
  ppπ = −1.55; scaling n = 2.0, n_c = 6.5, r_c = 2.18
* repulsion: φ₀ = 8.18555, d₀ = 1.64, m = 3.30304, m_c = 8.6655,
  d_c = 2.1052
* embedding f(x) = Σ_k c_k x^k with
  c = (−2.5909765118191, 0.5721151498619, −1.7896349903996e−3,
  2.3539221516757e−5, −1.24251169551587e−7)

The published model switches both radial functions off around 2.6 Å
(between the first and second neighbour shells of diamond); we use the
shared quintic switch over [2.45, 2.60] Å.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.tb.models.base import TBModel, apply_switch, gsp_scaling


class XuCarbon(TBModel):
    """XWCH orthogonal sp³ carbon model with embedded repulsion."""

    name = "xu-carbon"
    species = ("C",)
    orthogonal = True

    E_S = -2.99
    E_P = 3.71

    R0 = 1.536329
    V0 = {"sss": -5.00, "sps": 4.70, "pps": 5.50, "ppp": -1.55}
    N = 2.0
    NC = 6.5
    RC = 2.18

    PHI0 = 8.18555
    D0 = 1.64
    M = 3.30304
    MC = 8.6655
    DC = 2.1052

    EMB_COEFF = (
        -2.5909765118191,
        0.5721151498619,
        -1.7896349903996e-3,
        2.3539221516757e-5,
        -1.24251169551587e-7,
    )

    def __init__(self, r_on: float = 2.45, r_off: float = 2.60):
        if not r_off > r_on > self.R0:
            raise ModelError("switch window must satisfy r0 < r_on < r_off")
        self.r_on = float(r_on)
        self.r_off = float(r_off)
        self.cutoff = float(r_off)

    # -- species data -----------------------------------------------------------
    def norb(self, symbol: str) -> int:
        self.check_species([symbol])
        return 4

    def n_electrons(self, symbol: str) -> float:
        self.check_species([symbol])
        return 4.0

    def onsite(self, symbol: str) -> np.ndarray:
        self.check_species([symbol])
        return np.array([self.E_S, self.E_P, self.E_P, self.E_P])

    # -- matrix elements -----------------------------------------------------------
    def hopping(self, sym_i: str, sym_j: str, r: np.ndarray):
        self.check_species([sym_i, sym_j])
        r = np.asarray(r, dtype=float)
        s, ds = gsp_scaling(r, self.R0, self.N, self.NC, self.RC)
        s, ds = apply_switch(s, ds, r, self.r_on, self.r_off)
        V, dV = {}, {}
        for ch, v0 in self.V0.items():
            V[ch] = v0 * s
            dV[ch] = v0 * ds
        V["pss"] = V["sps"]
        dV["pss"] = dV["sps"]
        return V, dV

    def pair_repulsion(self, sym_i: str, sym_j: str, r: np.ndarray):
        self.check_species([sym_i, sym_j])
        r = np.asarray(r, dtype=float)
        s, ds = gsp_scaling(r, self.D0, self.M, self.MC, self.DC)
        phi, dphi = self.PHI0 * s, self.PHI0 * ds
        return apply_switch(phi, dphi, r, self.r_on, self.r_off)

    def embedding(self, symbol: str, x: np.ndarray):
        self.check_species([symbol])
        x = np.asarray(x, dtype=float)
        c = self.EMB_COEFF
        # The constant term c0 applies to every atom (including isolated
        # ones, x = 0) — it is a per-atom energy shift, so f stays smooth
        # as neighbours cross the cutoff and cancels in energy differences
        # between equal-composition structures.
        f = c[0] + x * (c[1] + x * (c[2] + x * (c[3] + x * c[4])))
        df = c[1] + x * (2 * c[2] + x * (3 * c[3] + x * 4 * c[4]))
        return f, df

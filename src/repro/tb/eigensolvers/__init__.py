"""Dense symmetric eigensolvers: LAPACK, cyclic Jacobi, Householder+QL.

``scipy.linalg.eigh`` is the production solver (the modern EISPACK the
1994 code would have called).  The from-scratch solvers exist because the
parallel-diagonalisation story of the era is built on Jacobi rotations —
the distributed algorithm in :mod:`repro.parallel.jacobi` executes the
same sweeps — and because cross-validating three independent
implementations pins down the reference spectrum.
"""

from repro.tb.eigensolvers.lapack import solve_eigh
from repro.tb.eigensolvers.jacobi import jacobi_eigh
from repro.tb.eigensolvers.householder import householder_ql_eigh

_SOLVERS = {
    "lapack": solve_eigh,
    "jacobi": jacobi_eigh,
    "householder": householder_ql_eigh,
}


def get_solver(name: str):
    """Look up a solver callable ``(H, S=None) -> (eigenvalues, vectors)``."""
    try:
        return _SOLVERS[name]
    except KeyError:
        known = ", ".join(sorted(_SOLVERS))
        raise KeyError(f"unknown eigensolver {name!r}; known: {known}") from None


__all__ = ["solve_eigh", "jacobi_eigh", "householder_ql_eigh", "get_solver"]

"""Cyclic Jacobi eigensolver for real symmetric matrices.

The Jacobi method annihilates off-diagonal elements with 2×2 rotations,
sweeping all (p, q) pairs cyclically until the off-diagonal Frobenius norm
drops below tolerance.  It converges quadratically once the matrix is
nearly diagonal, parallelises naturally (independent pairs can rotate
concurrently — the round-robin orderings used by the era's distributed
eigensolvers), and is the algorithm the simulated parallel diagonaliser in
:mod:`repro.parallel.jacobi` models.

Rows/columns are updated with vectorised NumPy operations, so a sweep is
O(n³) flops with only O(n²) Python overhead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ElectronicError


def offdiag_norm(a: np.ndarray) -> float:
    """Frobenius norm of the strict off-diagonal part."""
    off = a - np.diag(np.diag(a))
    return float(np.linalg.norm(off))


def _rotate(a: np.ndarray, v: np.ndarray, p: int, q: int, c: float, s: float
            ) -> None:
    """Apply the (p, q) Jacobi rotation in place: A ← JᵀAJ, V ← VJ."""
    ap = a[:, p].copy()
    aq = a[:, q].copy()
    a[:, p] = c * ap - s * aq
    a[:, q] = s * ap + c * aq
    rp = a[p, :].copy()
    rq = a[q, :].copy()
    a[p, :] = c * rp - s * rq
    a[q, :] = s * rp + c * rq
    vp = v[:, p].copy()
    vq = v[:, q].copy()
    v[:, p] = c * vp - s * vq
    v[:, q] = s * vp + c * vq


def jacobi_rotation(app: float, aqq: float, apq: float) -> tuple[float, float]:
    """Stable (c, s) annihilating ``apq`` (Golub & Van Loan §8.5)."""
    if apq == 0.0:
        return 1.0, 0.0
    tau = (aqq - app) / (2.0 * apq)
    if tau >= 0.0:
        t = 1.0 / (tau + np.sqrt(1.0 + tau * tau))
    else:
        t = -1.0 / (-tau + np.sqrt(1.0 + tau * tau))
    c = 1.0 / np.sqrt(1.0 + t * t)
    return c, t * c


def jacobi_eigh(H: np.ndarray, S: np.ndarray | None = None,
                tol: float = 1e-10, max_sweeps: int = 50,
                collect_history: bool = False):
    """Eigendecomposition by cyclic Jacobi sweeps.

    Parameters
    ----------
    H : real symmetric matrix.
    S : must be ``None`` — the generalised problem is not supported here
        (reduce with Löwdin orthogonalisation first if needed).
    tol : terminate when ``offdiag/‖A‖_F`` falls below this.
    collect_history : also return the per-sweep off-diagonal norms (used by
        the convergence tests and the parallel model calibration).

    Returns
    -------
    ``(eigenvalues ascending, eigenvectors as columns)`` and, when
    *collect_history*, a list of off-norms after each sweep.
    """
    if S is not None:
        raise ElectronicError(
            "jacobi_eigh solves the standard problem only; orthogonalise "
            "the generalised problem first"
        )
    a = np.array(H, dtype=float, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ElectronicError(f"matrix must be square, got {a.shape}")
    sym_err = float(np.max(np.abs(a - a.T))) if n else 0.0
    if sym_err > 1e-8:
        raise ElectronicError(f"matrix not symmetric (asymmetry {sym_err:.2e})")
    v = np.eye(n)
    norm = float(np.linalg.norm(a)) or 1.0
    history: list[float] = []

    for _sweep in range(max_sweeps):
        off = offdiag_norm(a)
        history.append(off)
        if off <= tol * norm:
            break
        thresh = off / n  # rotate only elements that matter this sweep
        for p in range(n - 1):
            row = a[p, p + 1:]
            for off_q in np.flatnonzero(np.abs(row) > min(thresh, tol * norm)):
                q = p + 1 + int(off_q)
                apq = a[p, q]
                if abs(apq) <= tol * norm * 1e-2:
                    continue
                c, s = jacobi_rotation(a[p, p], a[q, q], apq)
                _rotate(a, v, p, q, c, s)
    else:
        raise ConvergenceError(
            f"Jacobi failed to reach tol={tol} in {max_sweeps} sweeps "
            f"(off/norm = {offdiag_norm(a) / norm:.2e})",
            iterations=max_sweeps,
            residual=offdiag_norm(a) / norm,
        )

    eps = np.diag(a).copy()
    order = np.argsort(eps)
    result = (eps[order], v[:, order])
    if collect_history:
        return (*result, history)
    return result

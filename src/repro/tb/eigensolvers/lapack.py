"""LAPACK-backed dense symmetric / Hermitian eigensolver.

Thin wrapper over :func:`scipy.linalg.eigh` handling the generalised
problem (non-orthogonal overlap) and complex Hermitian k-point matrices
with one entry point.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.errors import ElectronicError


def solve_eigh(H: np.ndarray, S: np.ndarray | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``H C = ε C`` (or ``H C = ε S C``).

    Returns ``(eigenvalues ascending, eigenvectors as columns)``.
    Eigenvectors are S-orthonormal in the generalised case.
    """
    H = np.asarray(H)
    if H.ndim != 2 or H.shape[0] != H.shape[1]:
        raise ElectronicError(f"H must be square, got shape {H.shape}")
    herm_err = float(np.max(np.abs(H - H.conj().T))) if H.size else 0.0
    if herm_err > 1e-8:
        raise ElectronicError(
            f"H is not Hermitian (max asymmetry {herm_err:.2e}); "
            "the assembly is broken upstream"
        )
    try:
        if S is None:
            eps, C = scipy.linalg.eigh(H)
        else:
            eps, C = scipy.linalg.eigh(H, S)
    except scipy.linalg.LinAlgError as exc:
        raise ElectronicError(f"eigensolver failed: {exc}") from exc
    return eps, C

"""Householder tridiagonalisation + implicit-shift QL eigensolver.

The classic EISPACK ``TRED2``/``TQL2`` pair, reimplemented with vectorised
NumPy: reduce the real symmetric matrix to tridiagonal form by Householder
reflections (accumulating the transform), then diagonalise the tridiagonal
matrix by the implicit-shift QL algorithm with Wilkinson shifts.  This is
the serial production algorithm of the era and the reference point for the
"replicated diagonalisation" arm of the parallel cost model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ElectronicError


def householder_tridiagonalize(H: np.ndarray
                               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce symmetric *H* to tridiagonal ``(d, e)`` with ``Q`` accumulated.

    Returns ``(d, e, Q)`` where ``d`` is the diagonal, ``e`` the
    sub-diagonal (length n−1) and ``Q`` satisfies ``QᵀHQ = tridiag(d, e)``.
    """
    a = np.array(H, dtype=float, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ElectronicError(f"matrix must be square, got {a.shape}")
    q = np.eye(n)
    for k in range(n - 2):
        x = a[k + 1:, k]
        alpha = -np.sign(x[0]) * np.linalg.norm(x) if x[0] != 0 else -np.linalg.norm(x)
        if alpha == 0.0:
            continue
        v = x.copy()
        v[0] -= alpha
        vnorm = np.linalg.norm(v)
        if vnorm < 1e-300:
            continue
        v /= vnorm
        # A ← P A P with P = I − 2vvᵀ acting on the trailing block
        sub = a[k + 1:, k + 1:]
        w = sub @ v
        kappa = v @ w
        sub -= 2.0 * np.outer(v, w) + 2.0 * np.outer(w, v) - 4.0 * kappa * np.outer(v, v)
        a[k + 1:, k + 1:] = 0.5 * (sub + sub.T)   # enforce symmetry
        a[k + 1:, k] = 0.0
        a[k, k + 1:] = 0.0
        a[k + 1, k] = alpha
        a[k, k + 1] = alpha
        # accumulate Q ← Q P
        qv = q[:, k + 1:] @ v
        q[:, k + 1:] -= 2.0 * np.outer(qv, v)
    d = np.diag(a).copy()
    e = np.diag(a, k=-1).copy()
    return d, e, q


def ql_implicit(d: np.ndarray, e: np.ndarray, q: np.ndarray,
                max_iter: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Implicit-shift QL on a tridiagonal matrix, rotating *q* along.

    ``d``/``e`` are modified in place; returns ``(eigenvalues, vectors)``
    unsorted.
    """
    n = len(d)
    e = np.concatenate([e, [0.0]])
    for l in range(n):
        for iteration in range(max_iter + 1):
            # find small sub-diagonal element
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e[m]) <= 1e-15 * dd:
                    break
                m += 1
            if m == l:
                break
            if iteration == max_iter:
                raise ConvergenceError(
                    f"QL failed at eigenvalue {l} after {max_iter} iterations",
                    iterations=max_iter,
                )
            # Wilkinson shift
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + (r if g >= 0 else -r))
            s, c = 1.0, 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = np.hypot(f, g)
                e[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    e[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                # rotate eigenvector columns i, i+1 (vectorised)
                qi = q[:, i].copy()
                qi1 = q[:, i + 1].copy()
                q[:, i + 1] = s * qi + c * qi1
                q[:, i] = c * qi - s * qi1
            else:
                d[l] -= p
                e[l] = g
                e[m] = 0.0
                continue
            continue
    return d, q


def householder_ql_eigh(H: np.ndarray, S: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Full eigendecomposition via TRED2 + TQL2.

    Returns ``(eigenvalues ascending, eigenvectors as columns)``.
    """
    if S is not None:
        raise ElectronicError(
            "householder_ql_eigh solves the standard problem only"
        )
    d, e, q = householder_tridiagonalize(H)
    d, q = ql_implicit(d, e, q)
    order = np.argsort(d)
    return d[order], q[:, order]

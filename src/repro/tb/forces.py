"""Hellmann–Feynman forces, repulsive forces, and the potential virial.

Band-structure term (density-matrix formulation)
------------------------------------------------
With ``ρ = Σ_n f_n C_n C_n^T`` (spin factor inside ``f``), the derivative
of ``E_bs = Tr(ρH)`` with respect to a bond vector is ``2 Σ_{μν} ρ_{μν}
∂B_{μν}`` — the factor 2 because each half-list bond appears in ``H`` as a
block *and* its transpose and ρ is symmetric.  Non-orthogonal models
subtract the energy-weighted density-matrix term ``2 Σ W_{μν} ∂S_{μν}``
with ``W = Σ_n f_n ε_n C_n C_n^T`` — this is exactly the
``C†(∇H − ε∇S)C`` Hellmann–Feynman expression summed over states.

Repulsive term
--------------
``E_rep = Σ_i f_i(x_i)`` with ``x_i = Σ_j φ(r_ij)`` gives the pair force
``(f'_i + f'_j) φ'(r) û`` — plain pairwise repulsion is the special case
``f' = 1``.

Virial
------
``virial = Σ_pairs g ⊗ d`` with ``g = ∂E/∂d`` the generalised pair force
and ``d`` the bond vector; the potential stress is ``virial / V`` and the
potential pressure ``P = −tr(virial)/(3V)``, validated against ``−dE/dV``
in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.base import NeighborList
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups
from repro.tb.slater_koster import sk_block_gradients, sk_blocks


def density_matrices(eigenvectors: np.ndarray, occupations: np.ndarray,
                     eigenvalues: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray | None]:
    """Density matrix ρ and (optionally) energy-weighted W.

    ``eigenvectors`` columns are states (LAPACK convention).  W is returned
    only when *eigenvalues* is given.  Complex eigenvectors (H(k) at
    finite k) produce the Hermitian ``ρ = Σ f C C†``.
    """
    C = eigenvectors
    f = np.asarray(occupations, dtype=float)
    # skip empty states — more than halves the matmul work at zero T
    act = f > 1e-14
    Ca = C[:, act]
    fa = f[act]
    Cat = Ca.conj().T if np.iscomplexobj(Ca) else Ca.T
    rho = (Ca * fa) @ Cat
    if eigenvalues is None:
        return rho, None
    ea = np.asarray(eigenvalues, dtype=float)[act]
    w = (Ca * (fa * ea)) @ Cat
    return rho, w


def band_forces(atoms, model, nl: NeighborList, rho: np.ndarray,
                w: np.ndarray | None = None
                ) -> tuple[np.ndarray, np.ndarray]:
    """Band-structure forces (N, 3) and virial (3, 3).

    Parameters
    ----------
    rho :
        Density matrix from :func:`density_matrices`.
    w :
        Energy-weighted density matrix; required for non-orthogonal models.
    """
    symbols = atoms.symbols
    offsets, _ = orbital_offsets(symbols, model)
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))
    if nl.n_pairs == 0:
        return forces, virial

    need_overlap = not model.orthogonal
    if need_overlap and w is None:
        raise ValueError(
            "non-orthogonal model needs the energy-weighted density matrix"
        )

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]

        V, dV = model.hopping(sa, sb, r)
        G = sk_block_gradients(u, r, V, dV)[:, :, :ni, :nj]  # (P,3,ni,nj)

        rows = oi[:, None, None] + np.arange(ni)[None, :, None]
        cols = oj[:, None, None] + np.arange(nj)[None, None, :]
        rho_blk = rho[rows, cols]                            # (P,ni,nj)
        # ∂E/∂d_c = 2 Σ_ab ρ_ab G[c,a,b]
        g = 2.0 * np.einsum("pab,pcab->pc", rho_blk, G)

        if need_overlap:
            ov = model.overlap(sa, sb, r)
            GS = sk_block_gradients(u, r, ov[0], ov[1])[:, :, :ni, :nj]
            w_blk = w[rows, cols]
            g -= 2.0 * np.einsum("pab,pcab->pc", w_blk, GS)

        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g, vec)

    return forces, virial


def k_bond_force_terms(rho_blk: np.ndarray, phases: np.ndarray,
                       B: np.ndarray, G: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Per-bond k-force pieces ``(g_sk, q)`` from gathered ρ(k) blocks.

    ``g_sk[p, c] = 2 Re Σ_ab conj(ρ_ab) p (G_cab)`` is the Slater–Koster
    gradient part and ``q[p] = 2 Re[i Σ_ab conj(ρ_ab) p B_ab]`` the
    scalar in front of the phase-gradient term ``q·k`` — the single
    contraction shared by the dense (:func:`band_forces_k`) and sparse
    (:func:`repro.linscale.kfoe.sparse_band_forces_k`) assemblies, so
    the easy-to-get-wrong phase physics lives in exactly one place.
    """
    cr = np.conj(rho_blk) * phases[:, None, None]
    g_sk = 2.0 * np.real(np.einsum("pab,pcab->pc", cr, G))
    q = 2.0 * np.real(1j * np.einsum("pab,pab->p", cr, B))
    return g_sk, q


def band_forces_k(atoms, model, nl: NeighborList, rho: np.ndarray,
                  k_cart, w: np.ndarray | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Band forces and virial at one Cartesian k point (complex ρ(k)).

    Each half-list bond enters ``H(k)`` as ``p·B`` at (i, j) and its
    conjugate transpose at (j, i), with the atomic-gauge phase
    ``p = exp(i k·d)``, so its energy derivative is

    .. math::

        \\partial E / \\partial d_c
          = 2\\,\\mathrm{Re}\\sum_{ab} \\bar ρ_{ab}\\, p\\,
            (G_{cab} + i k_c B_{ab}),

    the Slater–Koster gradient **plus a phase-gradient term** — missing
    it is the classic k-force bug (forces then silently degrade toward
    their Γ values).  The *virial*, though, keeps only the SK part:
    stress is taken at fixed *fractional* k, where the reciprocal
    vectors co-strain as ``dk = −εᵀk`` and the phase-gradient
    contribution cancels exactly against ``(∂E/∂k)·dk`` (``k·d`` is
    affine-invariant).  Validated against finite-difference −dE/dV in
    the test suite.  At Γ this reduces bit-for-bit to
    :func:`band_forces`.  The caller sums over k with the sampling
    weights.
    """
    symbols = atoms.symbols
    offsets, _ = orbital_offsets(symbols, model)
    k = np.asarray(k_cart, dtype=float).reshape(3)
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))
    if nl.n_pairs == 0:
        return forces, virial

    need_overlap = not model.orthogonal
    if need_overlap and w is None:
        raise ValueError(
            "non-orthogonal model needs the energy-weighted density matrix"
        )

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]
        phases = np.exp(1j * (vec @ k))

        V, dV = model.hopping(sa, sb, r)
        B = sk_blocks(u, V)[:, :ni, :nj]
        G = sk_block_gradients(u, r, V, dV)[:, :, :ni, :nj]

        rows = oi[:, None, None] + np.arange(ni)[None, :, None]
        cols = oj[:, None, None] + np.arange(nj)[None, None, :]
        g_sk, q = k_bond_force_terms(rho[rows, cols], phases, B, G)

        if need_overlap:
            ov = model.overlap(sa, sb, r)
            S = sk_blocks(u, ov[0])[:, :ni, :nj]
            GS = sk_block_gradients(u, r, ov[0], ov[1])[:, :, :ni, :nj]
            gs_w, q_w = k_bond_force_terms(w[rows, cols], phases, S, GS)
            g_sk -= gs_w
            q -= q_w

        g = g_sk + q[:, None] * k[None, :]
        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g_sk, vec)

    return forces, virial


def repulsive_energy_forces(atoms, model, nl: NeighborList
                            ) -> tuple[float, np.ndarray, np.ndarray]:
    """Repulsive energy (eV), forces (N, 3) and virial (3, 3)."""
    symbols = atoms.symbols
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))

    # --- per-atom embedding arguments x_i = Σ_j φ(r_ij) ----------------------
    x = np.zeros(n)
    pair_phi: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
    groups = pair_species_groups(symbols, nl)
    for (sa, sb), pidx in groups.items():
        phi, dphi = model.pair_repulsion(sa, sb, nl.distances[pidx])
        pair_phi[(sa, sb)] = (phi, dphi)
        np.add.at(x, nl.i[pidx], phi)
        np.add.at(x, nl.j[pidx], phi)

    # --- embedding energy per atom, grouped by species ------------------------
    syms = np.asarray(symbols)
    energy = 0.0
    fprime = np.zeros(n)
    for sym in np.unique(syms) if n else []:
        mask = syms == sym
        f, df = model.embedding(str(sym), x[mask])
        energy += float(np.sum(f))
        fprime[mask] = df

    # --- pair forces -----------------------------------------------------------
    for (sa, sb), pidx in groups.items():
        _, dphi = pair_phi[(sa, sb)]
        r = nl.distances[pidx]
        u = nl.vectors[pidx] / r[:, None]
        coef = (fprime[nl.i[pidx]] + fprime[nl.j[pidx]]) * dphi
        g = coef[:, None] * u                                # ∂E/∂d
        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g, nl.vectors[pidx])

    return energy, forces, virial

"""Hellmann–Feynman forces, repulsive forces, and the potential virial.

Band-structure term (density-matrix formulation)
------------------------------------------------
With ``ρ = Σ_n f_n C_n C_n^T`` (spin factor inside ``f``), the derivative
of ``E_bs = Tr(ρH)`` with respect to a bond vector is ``2 Σ_{μν} ρ_{μν}
∂B_{μν}`` — the factor 2 because each half-list bond appears in ``H`` as a
block *and* its transpose and ρ is symmetric.  Non-orthogonal models
subtract the energy-weighted density-matrix term ``2 Σ W_{μν} ∂S_{μν}``
with ``W = Σ_n f_n ε_n C_n C_n^T`` — this is exactly the
``C†(∇H − ε∇S)C`` Hellmann–Feynman expression summed over states.

Repulsive term
--------------
``E_rep = Σ_i f_i(x_i)`` with ``x_i = Σ_j φ(r_ij)`` gives the pair force
``(f'_i + f'_j) φ'(r) û`` — plain pairwise repulsion is the special case
``f' = 1``.

Virial
------
``virial = Σ_pairs g ⊗ d`` with ``g = ∂E/∂d`` the generalised pair force
and ``d`` the bond vector; the potential stress is ``virial / V`` and the
potential pressure ``P = −tr(virial)/(3V)``, validated against ``−dE/dV``
in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.base import NeighborList
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups
from repro.tb.slater_koster import sk_block_gradients


def density_matrices(eigenvectors: np.ndarray, occupations: np.ndarray,
                     eigenvalues: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray | None]:
    """Density matrix ρ and (optionally) energy-weighted W.

    ``eigenvectors`` columns are states (LAPACK convention).  W is returned
    only when *eigenvalues* is given.
    """
    C = eigenvectors
    f = np.asarray(occupations, dtype=float)
    # skip empty states — more than halves the matmul work at zero T
    act = f > 1e-14
    Ca = C[:, act]
    fa = f[act]
    rho = (Ca * fa) @ Ca.T
    if eigenvalues is None:
        return rho, None
    ea = np.asarray(eigenvalues, dtype=float)[act]
    w = (Ca * (fa * ea)) @ Ca.T
    return rho, w


def band_forces(atoms, model, nl: NeighborList, rho: np.ndarray,
                w: np.ndarray | None = None
                ) -> tuple[np.ndarray, np.ndarray]:
    """Band-structure forces (N, 3) and virial (3, 3).

    Parameters
    ----------
    rho :
        Density matrix from :func:`density_matrices`.
    w :
        Energy-weighted density matrix; required for non-orthogonal models.
    """
    symbols = atoms.symbols
    offsets, _ = orbital_offsets(symbols, model)
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))
    if nl.n_pairs == 0:
        return forces, virial

    need_overlap = not model.orthogonal
    if need_overlap and w is None:
        raise ValueError(
            "non-orthogonal model needs the energy-weighted density matrix"
        )

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]

        V, dV = model.hopping(sa, sb, r)
        G = sk_block_gradients(u, r, V, dV)[:, :, :ni, :nj]  # (P,3,ni,nj)

        rows = oi[:, None, None] + np.arange(ni)[None, :, None]
        cols = oj[:, None, None] + np.arange(nj)[None, None, :]
        rho_blk = rho[rows, cols]                            # (P,ni,nj)
        # ∂E/∂d_c = 2 Σ_ab ρ_ab G[c,a,b]
        g = 2.0 * np.einsum("pab,pcab->pc", rho_blk, G)

        if need_overlap:
            ov = model.overlap(sa, sb, r)
            GS = sk_block_gradients(u, r, ov[0], ov[1])[:, :, :ni, :nj]
            w_blk = w[rows, cols]
            g -= 2.0 * np.einsum("pab,pcab->pc", w_blk, GS)

        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g, vec)

    return forces, virial


def repulsive_energy_forces(atoms, model, nl: NeighborList
                            ) -> tuple[float, np.ndarray, np.ndarray]:
    """Repulsive energy (eV), forces (N, 3) and virial (3, 3)."""
    symbols = atoms.symbols
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))

    # --- per-atom embedding arguments x_i = Σ_j φ(r_ij) ----------------------
    x = np.zeros(n)
    pair_phi: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
    groups = pair_species_groups(symbols, nl)
    for (sa, sb), pidx in groups.items():
        phi, dphi = model.pair_repulsion(sa, sb, nl.distances[pidx])
        pair_phi[(sa, sb)] = (phi, dphi)
        np.add.at(x, nl.i[pidx], phi)
        np.add.at(x, nl.j[pidx], phi)

    # --- embedding energy per atom, grouped by species ------------------------
    syms = np.asarray(symbols)
    energy = 0.0
    fprime = np.zeros(n)
    for sym in np.unique(syms) if n else []:
        mask = syms == sym
        f, df = model.embedding(str(sym), x[mask])
        energy += float(np.sum(f))
        fprime[mask] = df

    # --- pair forces -----------------------------------------------------------
    for (sa, sb), pidx in groups.items():
        _, dphi = pair_phi[(sa, sb)]
        r = nl.distances[pidx]
        u = nl.vectors[pidx] / r[:, None]
        coef = (fprime[nl.i[pidx]] + fprime[nl.j[pidx]]) * dphi
        g = coef[:, None] * u                                # ∂E/∂d
        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g, nl.vectors[pidx])

    return energy, forces, virial

"""Linear-scaling density-matrix purification (Palser–Manolopoulos).

The O(N) alternative to exact diagonalisation that closes the loop every
1990s TBMD paper opens: instead of solving ``H C = ε C`` (O(N³)), build
the zero-temperature density matrix directly by the *canonical
purification* iteration of Palser & Manolopoulos,

.. math::

    ρ_{n+1} =
    \\begin{cases}
        ((1+c)ρ_n^2 − ρ_n^3)/c, & c \\ge 1/2 \\\\
        ((1−2c)ρ_n + (1+c)ρ_n^2 − ρ_n^3)/(1−c), & c < 1/2
    \\end{cases}
    \\qquad c = \\mathrm{tr}(ρ_n^2 − ρ_n^3)/\\mathrm{tr}(ρ_n − ρ_n^2),

which conserves the electron count exactly at every step and converges
to the idempotent ground-state projector for gapped systems.  With a
sparsity threshold the matrix multiplies act on O(N) nonzeros (the
density matrix of an insulator decays exponentially), giving the O(N)
scaling the A4 ablation demonstrates against LAPACK.

Orthogonal Hamiltonians only (non-orthogonal purification needs the
S-metric generalisation; out of scope and rejected loudly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError, ElectronicError


@dataclass
class PurificationResult:
    """Converged purification state.

    ``rho`` is the *spinless* density matrix (trace = n_electrons / 2,
    eigenvalues in {0, 1}); multiply by 2 for the spin-summed ρ the force
    routines consume.  ``band_energy`` already includes the spin factor.
    """

    rho: np.ndarray | sp.spmatrix
    band_energy: float
    iterations: int
    idempotency_error: float
    fill_fraction: float
    history: list[float]

    def dense_rho_spin_summed(self) -> np.ndarray:
        r = self.rho.toarray() if sp.issparse(self.rho) else self.rho
        return 2.0 * r


def _trace(a) -> float:
    if sp.issparse(a):
        return float(a.diagonal().sum())
    return float(np.trace(a))


def _matmul(a, b, threshold: float):
    c = a @ b
    if sp.issparse(c) and threshold > 0.0:
        c.data[np.abs(c.data) < threshold] = 0.0
        c.eliminate_zeros()
    return c


def initial_guess(H, n_electrons: float, emin: float, emax: float):
    """PM linear initial map: ρ₀ = (λ/n)(μ̄ I − H) + (N_occ/n) I.

    μ̄ is the mean eigenvalue tr(H)/n and λ is chosen so the spectrum of
    ρ₀ lies inside [0, 1] (Palser & Manolopoulos 1998, eq. 17).
    """
    n = H.shape[0]
    n_occ = n_electrons / 2.0
    mu_bar = _trace(H) / n
    denom_lo = emax - mu_bar
    denom_hi = mu_bar - emin
    if denom_lo <= 0 or denom_hi <= 0:
        raise ElectronicError("spectral bounds do not bracket tr(H)/n")
    lam = min(n_occ / denom_lo, (n - n_occ) / denom_hi)
    if sp.issparse(H):
        eye = sp.identity(n, format="csr")
        rho = (lam / n) * (mu_bar * eye - H) + (n_occ / n) * eye
        return rho.tocsr()
    return (lam / n) * (mu_bar * np.eye(n) - H) + (n_occ / n) * np.eye(n)


def lanczos_spectral_bounds(H, tol: float = 1e-4) -> tuple[float, float]:
    """Tight spectral bounds via a few Lanczos iterations (O(nnz) each).

    Gershgorin circles are ~2.5× too wide for sp-bonded TB Hamiltonians,
    and every Chebyshev consumer pays for the expansion window linearly
    in polynomial order — so tight bounds more than halve the cost of the
    Fermi-operator kernels for the same accuracy.  Accepts dense or
    sparse H; falls back to :func:`spectral_bounds` if the iteration
    fails.
    """
    try:
        from scipy.sparse.linalg import eigsh

        # fixed start vector: eigsh seeds randomly by default, which would
        # make the expansion window (hence μ, energies, forces) wobble at
        # ~1e-8 between identical calls
        v0 = np.full(H.shape[0], 1.0 / np.sqrt(H.shape[0]))
        lo = float(eigsh(H, k=1, which="SA", return_eigenvectors=False,
                         tol=tol, v0=v0)[0])
        hi = float(eigsh(H, k=1, which="LA", return_eigenvectors=False,
                         tol=tol, v0=v0)[0])
        pad = max(1e-6, tol * (hi - lo))
        return lo - pad, hi + pad
    except Exception:
        return spectral_bounds(H)


def spectral_bounds(H) -> tuple[float, float]:
    """Cheap Gershgorin bounds on the spectrum (no diagonalisation)."""
    if sp.issparse(H):
        Ha = H.tocsr()
        diag = Ha.diagonal()
        # np.matrix-free row sums (the .A1 shortcut is gone in NumPy 2 /
        # sparse-array scipy)
        absrow = np.asarray(np.abs(Ha).sum(axis=1)).ravel() - np.abs(diag)
    else:
        diag = np.diag(H)
        absrow = np.abs(H).sum(axis=1) - np.abs(diag)
    return float((diag - absrow).min()), float((diag + absrow).max())


def purify_density_matrix(H, n_electrons: float, threshold: float = 0.0,
                          tol: float = 1e-9, max_iter: int = 200,
                          bounds: tuple[float, float] | None = None
                          ) -> PurificationResult:
    """Canonical purification of the zero-T density matrix.

    Parameters
    ----------
    H :
        Real symmetric Hamiltonian; dense ndarray or scipy sparse.  Pass a
        sparse matrix *and* a positive *threshold* for O(N) behaviour.
    n_electrons :
        Spin-summed electron count (must be even — integer filling of a
        gapped system is the regime where purification is valid).
    threshold :
        Magnitude below which matrix elements are dropped after each
        multiply (sparse inputs only).
    tol :
        Convergence on the idempotency error ``|tr(ρ²) − tr(ρ)|``.
    bounds :
        Optional precomputed spectral bounds ``(emin, emax)`` used for the
        initial linear map — an MD loop passes a cached window instead of
        recomputing Gershgorin circles every step.  Must bracket the
        spectrum (the PM iteration diverges otherwise).

    Returns
    -------
    :class:`PurificationResult`.
    """
    n = H.shape[0]
    if H.shape != (n, n):
        raise ElectronicError(f"H must be square, got {H.shape}")
    if n_electrons <= 0 or n_electrons > 2 * n:
        raise ElectronicError(f"cannot place {n_electrons} electrons in {n} orbitals")
    if abs(n_electrons / 2.0 - round(n_electrons / 2.0)) > 1e-9:
        raise ElectronicError(
            "purification needs an even (integer-filling) electron count"
        )
    if threshold > 0 and not sp.issparse(H):
        H = sp.csr_matrix(H)

    emin, emax = bounds if bounds is not None else spectral_bounds(H)
    rho = initial_guess(H, n_electrons, emin, emax)
    n_occ = n_electrons / 2.0

    history: list[float] = []
    for it in range(1, max_iter + 1):
        rho2 = _matmul(rho, rho, threshold)
        rho3 = _matmul(rho2, rho, threshold)
        tr_r = _trace(rho)
        tr_r2 = _trace(rho2)
        tr_r3 = _trace(rho3)
        err = abs(tr_r2 - tr_r)
        history.append(err)
        if err < tol:
            break
        denom = tr_r - tr_r2
        if abs(denom) < 1e-300:
            break
        c = (tr_r2 - tr_r3) / denom
        if c >= 0.5:
            rho = (rho2 * (1.0 + c) - rho3) / c
        else:
            rho = (rho * (1.0 - 2.0 * c) + rho2 * (1.0 + c) - rho3) / (1.0 - c)
        if sp.issparse(rho) and threshold > 0.0:
            rho.data[np.abs(rho.data) < threshold] = 0.0
            rho.eliminate_zeros()
    else:
        raise ConvergenceError(
            f"purification did not reach tol={tol} in {max_iter} iterations "
            f"(idempotency error {history[-1]:.2e}); the system is probably "
            "metallic or the gap too small for zero-T purification",
            iterations=max_iter, residual=history[-1],
        )

    tr_err = abs(_trace(rho) - n_occ)
    if tr_err > 1e-6 * max(1.0, n_occ):
        raise ConvergenceError(
            f"purification lost {tr_err:.2e} electrons; threshold too aggressive",
            iterations=it, residual=tr_err,
        )

    band = 2.0 * _trace(_matmul(rho, H, 0.0))
    if sp.issparse(rho):
        fill = rho.nnz / float(n * n)
    else:
        fill = float(np.count_nonzero(np.abs(rho) > 1e-14)) / (n * n)
    return PurificationResult(rho=rho, band_energy=band, iterations=it,
                              idempotency_error=history[-1],
                              fill_fraction=fill, history=history)


def purification_energy_forces(atoms, model, nl, threshold: float = 0.0):
    """Total energy and forces via purification (no eigen-spectrum).

    The O(N)-capable evaluation path: assemble H, purify, contract forces
    with the purified ρ, add the repulsion.  Orthogonal models only.

    Returns ``(energy, forces, result)``.
    """
    from repro.tb.forces import band_forces, repulsive_energy_forces
    from repro.tb.hamiltonian import build_hamiltonian

    if not model.orthogonal:
        raise ElectronicError(
            "purification supports orthogonal models only (no S-metric)"
        )
    H, _ = build_hamiltonian(atoms, model, nl)
    nelec = model.total_electrons(atoms.symbols)
    res = purify_density_matrix(H, nelec, threshold=threshold)
    rho = res.dense_rho_spin_summed()
    fband, _ = band_forces(atoms, model, nl, rho)
    erep, frep, _ = repulsive_energy_forces(atoms, model, nl)
    return res.band_energy + erep, fband + frep, res

"""Band-structure computation along high-symmetry paths."""

from __future__ import annotations

import numpy as np

from repro.neighbors import neighbor_list
from repro.tb.eigensolvers import solve_eigh
from repro.tb.hamiltonian import build_hamiltonian_k
from repro.tb.kpoints import frac_to_cartesian


def band_structure(atoms, model, kpts_frac) -> np.ndarray:
    """Eigenvalues along a list of fractional k points.

    Returns an (K, M) array of eigenvalues (eV), ascending per k.
    """
    nl = neighbor_list(atoms, model.cutoff)
    kcart = frac_to_cartesian(np.asarray(kpts_frac, dtype=float), atoms.cell)
    bands = []
    for k in kcart:
        Hk, Sk = build_hamiltonian_k(atoms, model, nl, k)
        eps, _ = solve_eigh(Hk, Sk)
        bands.append(eps)
    return np.array(bands)


def band_gap_along_path(bands: np.ndarray, n_electrons: float) -> dict:
    """Indirect/direct gap summary from a band-structure array.

    Assumes an insulating filling (``n_electrons`` even per cell).
    """
    n_occ = int(round(n_electrons / 2.0))
    vbm = float(bands[:, n_occ - 1].max())
    cbm = float(bands[:, n_occ].min())
    direct = float(np.min(bands[:, n_occ] - bands[:, n_occ - 1]))
    return {
        "vbm": vbm,
        "cbm": cbm,
        "indirect_gap": max(0.0, cbm - vbm),
        "direct_gap": max(0.0, direct),
        "k_vbm": int(np.argmax(bands[:, n_occ - 1])),
        "k_cbm": int(np.argmin(bands[:, n_occ])),
    }

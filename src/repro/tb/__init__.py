"""Tight-binding electronic structure: models, Hamiltonians, forces."""

from repro.tb.calculator import TBCalculator
from repro.tb.hamiltonian import build_hamiltonian, build_hamiltonian_k, orbital_offsets
from repro.tb.occupations import (
    fermi_dirac_occupations,
    zero_temperature_occupations,
)
from repro.tb.models import (
    GSPSilicon,
    HarrisonModel,
    NonOrthogonalSilicon,
    XuCarbon,
    get_model,
)
from repro.tb.kpoints import monkhorst_pack, gamma_point, reduced_kgrid
from repro.tb.symmetry import (
    crystal_symmetry_ops,
    irreducible_kpoints,
    lattice_point_group,
    symmetrize_forces,
    symmetrize_virial,
)
from repro.tb.purification import purify_density_matrix, purification_energy_forces
from repro.tb.chebyshev import fermi_operator_expansion
from repro.tb.populations import analyze_populations, bond_order_matrix, mulliken_charges

__all__ = [
    "TBCalculator",
    "build_hamiltonian",
    "build_hamiltonian_k",
    "orbital_offsets",
    "zero_temperature_occupations",
    "fermi_dirac_occupations",
    "GSPSilicon",
    "XuCarbon",
    "HarrisonModel",
    "NonOrthogonalSilicon",
    "get_model",
    "monkhorst_pack",
    "gamma_point",
    "reduced_kgrid",
    "crystal_symmetry_ops",
    "irreducible_kpoints",
    "lattice_point_group",
    "symmetrize_forces",
    "symmetrize_virial",
    "purify_density_matrix",
    "purification_energy_forces",
    "fermi_operator_expansion",
    "analyze_populations",
    "bond_order_matrix",
    "mulliken_charges",
]

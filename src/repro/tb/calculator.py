"""The TB calculator façade: energies, forces, stress from one object.

This is the user-facing entry point the MD driver, relaxers and benchmarks
all consume.  A :class:`TBCalculator` owns a model, a Verlet neighbour
list, an eigensolver choice and an optional electronic temperature; it
caches the last evaluation so repeated ``get_*`` calls on an unchanged
structure cost nothing, and it records per-phase wall-clock times in a
:class:`~repro.utils.timing.PhaseTimer` — the instrumentation behind the
T1/T2 step-timing tables.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ElectronicError, ModelError
from repro.neighbors.verlet import VerletList
from repro.state import CalculatorState
from repro.tb.eigensolvers import get_solver
from repro.tb.forces import (
    band_forces,
    band_forces_k,
    density_matrices,
    repulsive_energy_forces,
)
from repro.tb.hamiltonian import build_hamiltonian, build_hamiltonian_k
from repro.tb.kpoints import KGRID_REDUCE_MODES, frac_to_cartesian, reduced_kgrid
from repro.tb.symmetry import symmetrize_forces, symmetrize_virial
from repro.tb.occupations import (
    electronic_entropy,
    fermi_dirac_occupations,
    homo_lumo_gap,
    find_fermi_level,
    fermi_function,
)
from repro.units import EV_PER_A3_TO_GPA
from repro.utils.timing import PhaseTimer


def _attach_stress(res: dict, atoms) -> None:
    """Derive stress / pressure keys from ``res['virial']`` (periodic
    cells only) — one conversion for the Γ and k force branches."""
    if atoms.cell.fully_periodic:
        vol = atoms.cell.volume
        res["stress"] = res["virial"] / vol
        res["pressure"] = float(-np.trace(res["virial"]) / (3 * vol))
        res["pressure_gpa"] = res["pressure"] * EV_PER_A3_TO_GPA


class TBCalculator:
    """Tight-binding total-energy and force calculator.

    Parameters
    ----------
    model :
        A :class:`~repro.tb.models.base.TBModel`.
    kT :
        Electronic temperature in eV (0 = integer filling).  Required > 0
        for metallic k-sampled systems.
    kpts :
        ``None`` for Γ-only, or a Monkhorst–Pack size tuple / int for
        k-sampled energies **and forces** (per-k Hermitian density
        matrices with the phase-gradient force term).  Small-cell MD and
        relaxation run on either mode.
    kgrid_reduce :
        How the MP grid is folded: ``"trs"`` (default) folds ±k pairs,
        ``"full"`` keeps the raw grid, ``"symmetry"`` folds the crystal
        point group on top of time reversal into an irreducible wedge
        (:mod:`repro.tb.symmetry`) — the wedge is re-detected from the
        structure on every geometry change (a symmetry-broken structure
        degrades to the time-reversal reduction), and forces/virials are
        scattered back through the rotations and atom permutations.
    solver :
        "lapack" (default), "jacobi" or "householder".
    skin :
        Verlet-list skin in Å.
    """

    def __init__(self, model, kT: float = 0.0, kpts=None,
                 solver: str = "lapack", neighbor_method: str = "auto",
                 skin: float = 0.5, kgrid_reduce: str = "trs"):
        self.model = model
        if kT < 0:
            raise ElectronicError("kT must be >= 0")
        self.kT = float(kT)
        if kgrid_reduce not in KGRID_REDUCE_MODES:
            raise ElectronicError(
                f"unknown kgrid_reduce {kgrid_reduce!r}; choose from "
                f"{KGRID_REDUCE_MODES}")
        self.kgrid_reduce = kgrid_reduce
        self._kgrid_size = kpts
        self._sym_cache: tuple = (None, None)
        if kpts is None:
            self.kpts_frac = None
            self.kweights = None
        else:
            if kgrid_reduce == "symmetry":
                # the wedge depends on cell *and* basis — resolved (and
                # cached) per structure on the first compute
                self.kpts_frac = None
                self.kweights = None
            else:
                self.kpts_frac, self.kweights, _ = reduced_kgrid(
                    kpts, kgrid_reduce)
            if solver != "lapack":
                # the from-scratch solvers are real-symmetric only and
                # would silently discard the imaginary parts of H(k)
                raise ElectronicError(
                    f"k-point sampling needs the 'lapack' eigensolver "
                    f"(complex Hermitian H(k)); got solver={solver!r}")
        self.solver_name = solver
        self.solve = get_solver(solver)
        self.timer = PhaseTimer()
        self._vlist = VerletList(rcut=model.cutoff, skin=skin,
                                 method=neighbor_method)
        self._state = CalculatorState()
        self._cache_key = None
        self._results: dict = {}

    # -- caching ---------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cached results (e.g. after mutating model parameters)."""
        self._state.reset()
        self._vlist.reset()
        self._cache_key = None
        self._results = {}
        self._sym_cache = (None, None)

    def state_report(self) -> dict:
        """Reuse diagnostics (shared calculator-state protocol)."""
        return {"neighbors": self._vlist.stats(),
                "snapshot_id": self._state.snapshot_id}

    # -- main evaluation ----------------------------------------------------------
    def compute(self, atoms, forces: bool = True) -> dict:
        """Evaluate and return the full results dict.

        Keys: ``energy``, ``free_energy``, ``band_energy``,
        ``repulsive_energy``, ``eigenvalues``, ``occupations``,
        ``fermi_level``, ``entropy``, ``homo``/``lumo``/``gap``
        (Γ-mode), ``n_kpoints``/``weights`` (k-mode), and — with
        ``forces=True`` — ``forces``, ``virial``, ``stress`` (periodic
        cells), ``pressure``.

        Structure and parameter changes are detected through the shared
        :class:`repro.state.CalculatorState` contract; an unchanged
        structure returns the cached results without any matrix work.
        """
        report = self._state.observe(atoms, params=(self.kT,
                                                    self.solver_name))
        # the _cache_key stamp guards against serving results stored for
        # an older geometry after a compute raised mid-solve
        if not report.any_change and self._results and \
                self._cache_key == self._state.snapshot_id and \
                (not forces or "forces" in self._results):
            return self._results
        if self._kgrid_size is not None:
            res = self._compute_kpoints(atoms, forces)
        else:
            res = self._compute_gamma(atoms, forces)
        self._cache_key = self._state.snapshot_id
        self._results = res
        return res

    def _resolve_kgrid(self, atoms):
        """``(kpts_frac, weights, ops)`` for the current structure.

        Static for the ``trs``/``full`` modes; for ``symmetry`` the
        wedge follows the structure: byte-cached while the geometry is
        unchanged, revalidated in O(|ops|·N) when it moved, fully
        re-detected only when an op was lost
        (:func:`repro.tb.symmetry.rewedge`)."""
        if self.kgrid_reduce != "symmetry":
            return self.kpts_frac, self.kweights, None
        from repro.tb.symmetry import rewedge

        key = (atoms.cell.matrix.tobytes(), tuple(atoms.symbols),
               atoms.positions.tobytes())
        cached_key, grid = self._sym_cache
        if cached_key != key:
            g = rewedge(self._kgrid_size, atoms,
                        prev_ops=grid[2] if grid else None)
            grid = (g.kpts_frac, g.weights, g.ops)
            self._sym_cache = (key, grid)
            self.kpts_frac, self.kweights = grid[0], grid[1]
        return grid

    def _compute_gamma(self, atoms, want_forces: bool) -> dict:
        model = self.model
        model.check_species(atoms.symbols)

        with self.timer.phase("neighbors"):
            nl = self._vlist.update(atoms)

        with self.timer.phase("hamiltonian"):
            H, S = build_hamiltonian(atoms, model, nl)

        with self.timer.phase("diagonalize"):
            eps, C = self.solve(H, S)

        with self.timer.phase("occupations"):
            nelec = model.total_electrons(atoms.symbols)
            f, mu, entropy = fermi_dirac_occupations(eps, nelec, self.kT)
            band_energy = float(np.sum(f * eps))
            homo, lumo, gap = homo_lumo_gap(eps, f)

        with self.timer.phase("repulsive"):
            erep, frep, vrep = repulsive_energy_forces(atoms, model, nl)

        res = {
            "band_energy": band_energy,
            "repulsive_energy": erep,
            "energy": band_energy + erep,
            "free_energy": band_energy + erep
                           - (self.kT / _KB_EV) * entropy if self.kT > 0
                           else band_energy + erep,
            "eigenvalues": eps,
            "occupations": f,
            "fermi_level": mu,
            "entropy": entropy,
            "homo": homo,
            "lumo": lumo,
            "gap": gap,
            "n_orbitals": len(eps),
            "n_pairs": nl.n_pairs,
        }

        if want_forces:
            with self.timer.phase("forces"):
                need_w = not model.orthogonal
                rho, w = density_matrices(C, f, eps if need_w else None)
                fband, vband = band_forces(atoms, model, nl, rho, w)
                res["forces"] = fband + frep
                res["virial"] = vband + vrep
                _attach_stress(res, atoms)
        return res

    def _compute_kpoints(self, atoms, want_forces: bool) -> dict:
        """k-sampled total energy, and forces from per-k density matrices.

        One common Fermi level is bisected over the concatenated weighted
        spectrum; forces then contract each k point's Hermitian ρ(k) (and
        W(k) for non-orthogonal models) through
        :func:`repro.tb.forces.band_forces_k` — including the atomic-gauge
        phase-gradient term — and sum with the sampling weights.  In
        ``kgrid_reduce="symmetry"`` mode the sum runs over the
        irreducible wedge only and the accumulated band forces/virial
        are scattered back through the folding ops.
        """
        model = self.model
        model.check_species(atoms.symbols)
        if not atoms.cell.periodic:
            raise ElectronicError("k-point sampling requires a periodic cell")

        kpts_frac, kweights, sym_ops = self._resolve_kgrid(atoms)

        with self.timer.phase("neighbors"):
            nl = self._vlist.update(atoms)

        kcart = frac_to_cartesian(kpts_frac, atoms.cell)
        all_eps = []
        all_C = []
        for k in kcart:
            with self.timer.phase("hamiltonian"):
                Hk, Sk = build_hamiltonian_k(atoms, model, nl, k)
            with self.timer.phase("diagonalize"):
                eps_k, C_k = self.solve(Hk, Sk)
            all_eps.append(eps_k)
            if want_forces:
                all_C.append(C_k)
        eps = np.concatenate(all_eps)
        weights = np.repeat(kweights, [len(e) for e in all_eps])

        with self.timer.phase("occupations"):
            nelec = model.total_electrons(atoms.symbols)
            if self.kT > 0:
                mu = find_fermi_level(eps, nelec, self.kT, weights=weights)
                f = fermi_function(eps, mu, self.kT)
                entropy = electronic_entropy(f, weights=weights)
            else:
                f = _weighted_zero_t(eps, weights, nelec)
                occ = eps[f > 1e-9]
                emp = eps[f < 2.0 - 1e-9]
                mu = (0.5 * (occ.max() + emp.min())
                      if len(occ) and len(emp) else float(eps.min()))
                entropy = 0.0
            band_energy = float(np.sum(weights * f * eps))

        with self.timer.phase("repulsive"):
            erep, frep, vrep = repulsive_energy_forces(atoms, model, nl)

        energy = band_energy + erep
        res = {
            "band_energy": band_energy,
            "repulsive_energy": erep,
            "energy": energy,
            "free_energy": energy - (self.kT / _KB_EV) * entropy
                           if self.kT > 0 else energy,
            "eigenvalues": eps,
            "occupations": f,
            "weights": weights,
            "fermi_level": mu,
            "entropy": entropy,
            "n_kpoints": len(kcart),
        }

        if want_forces:
            with self.timer.phase("forces"):
                fband = np.zeros((len(atoms), 3))
                vband = np.zeros((3, 3))
                need_w = not model.orthogonal
                pos = 0
                for k, wk, eps_k, C_k in zip(kcart, kweights,
                                             all_eps, all_C):
                    f_k = f[pos:pos + len(eps_k)]
                    pos += len(eps_k)
                    rho_k, w_k = density_matrices(
                        C_k, f_k, eps_k if need_w else None)
                    fb, vb = band_forces_k(atoms, model, nl, rho_k, k,
                                           w=w_k)
                    fband += wk * fb
                    vband += wk * vb
                if sym_ops is not None:
                    fband = symmetrize_forces(fband, sym_ops, atoms.cell)
                    vband = symmetrize_virial(vband, sym_ops, atoms.cell)
                res["forces"] = fband + frep
                res["virial"] = vband + vrep
                _attach_stress(res, atoms)
        return res

    # -- convenience getters ---------------------------------------------------------
    def get_potential_energy(self, atoms) -> float:
        """Total energy (eV): band-structure + repulsive."""
        return self.compute(atoms, forces=False)["energy"]

    def get_free_energy(self, atoms) -> float:
        """Mermin free energy E − T·S_el (equals energy at kT = 0)."""
        return self.compute(atoms, forces=False)["free_energy"]

    def get_forces(self, atoms) -> np.ndarray:
        """(N, 3) forces in eV/Å (Γ or k-sampled)."""
        return self.compute(atoms, forces=True)["forces"]

    def get_stress(self, atoms) -> np.ndarray:
        """3×3 potential stress tensor in eV/Å³ (periodic cells only)."""
        res = self.compute(atoms, forces=True)
        if "stress" not in res:
            raise ModelError("stress requires a fully periodic cell")
        return res["stress"]

    def get_pressure(self, atoms) -> float:
        """Potential pressure −tr(virial)/3V in eV/Å³."""
        res = self.compute(atoms, forces=True)
        if "pressure" not in res:
            raise ModelError("pressure requires a fully periodic cell")
        return res["pressure"]

    def get_eigenvalues(self, atoms) -> np.ndarray:
        return self.compute(atoms, forces=False)["eigenvalues"]

    def get_gap(self, atoms) -> float:
        res = self.compute(atoms, forces=False)
        if "gap" not in res:
            raise ModelError("gap reporting is Γ-only")
        return res["gap"]

    def __repr__(self) -> str:
        if self._kgrid_size is None:
            mode = "Γ"
        elif self.kpts_frac is None:
            mode = "symmetry k-grid (unresolved)"
        else:
            mode = f"{len(self.kpts_frac)} k-points ({self.kgrid_reduce})"
        return (f"TBCalculator(model={self.model.name!r}, {mode}, "
                f"kT={self.kT} eV, solver={self.solver_name!r})")


_KB_EV = 8.617333262e-5  # duplicated locally to avoid circular import cost


def _weighted_zero_t(eps: np.ndarray, weights: np.ndarray,
                     n_electrons: float) -> np.ndarray:
    """Aufbau filling with per-state weights (k-sampled insulators)."""
    order = np.argsort(eps)
    f = np.zeros_like(eps)
    remaining = float(n_electrons)
    for idx in order:
        if remaining <= 1e-12:
            break
        cap = 2.0 * weights[idx]
        take = min(cap / weights[idx], remaining / weights[idx])
        f[idx] = take
        remaining -= take * weights[idx]
    return f

"""Crystal point-group symmetry: irreducible k wedges and force scattering.

Time-reversal folding (:func:`repro.tb.kpoints.fold_time_reversal`)
halves every k-sampled workload; the crystal point group cuts much
deeper — an O_h-symmetric diamond cell folds a 4×4×4 Monkhorst–Pack grid
from 64 points to 4.  This module supplies the three pieces that make
that reduction *safe*:

* **detection** — :func:`lattice_point_group` enumerates the integer
  unimodular matrices that leave the cell metric invariant, and
  :func:`crystal_symmetry_ops` keeps those that also map the atomic
  basis onto itself (with a fractional translation — non-symmorphic ops
  such as diamond's glides are found too), recording the induced atom
  permutation;
* **folding** — :func:`irreducible_kpoints` folds the full MP grid into
  a weighted irreducible wedge under the detected ops (composed with
  time reversal), *dropping any op that does not map the grid onto
  itself*, so an incommensurate grid or a symmetry-broken structure
  degrades gracefully toward the plain time-reversal reduction instead
  of producing a wrong wedge;
* **scattering** — :func:`symmetrize_forces` / :func:`symmetrize_virial`
  / :func:`symmetrize_atom_scalars` rebuild full-grid quantities from
  wedge sums by averaging over the op set used for the folding (each
  reduced-k contribution is sent back through the rotation and the atom
  permutation).

Conventions (matching the rest of the library): the cell matrix ``h``
has lattice vectors as *rows* and Cartesian positions are row vectors
``r = f @ h``.  A symmetry op is stored as an integer matrix ``W``
acting on fractional rows, ``f' = f @ W + t``; the induced Cartesian
rotation is ``r' = r @ rt`` with ``rt = h⁻¹ W h`` (orthogonal by
construction), and fractional k rows transform as ``k' = k @ W⁻ᵀ``.

Why averaging is exact: the full-grid band force is ``Σ_{k'} w₀ f(k')``.
Every ``k'`` equals ``g·k_r`` for a wedge representative ``k_r``, and a
space-group op ``g = (W, t, perm)`` maps per-k force fields covariantly,
``f_{perm(i)}(g·k) = f_i(k) @ rt`` (the translation drops out).  Each
orbit member is reached by the same number of ops (coset property), so

    ``F_full = Σ_{k_r} w_r · (1/|G|) Σ_{g∈G} g · f(k_r)``

with ``w_r`` the summed orbit weight — i.e. accumulate over the wedge,
then average once over the ops.  The identity needs the per-k solver
output to respect the stabiliser of ``k_r``, which holds for both the
diagonalisation and the region-FOE engines on a symmetric structure;
the one exception is zero-temperature *fractional* filling of a
degenerate Fermi level (an arbitrary state choice inside a degenerate
shell) — sample metals at kT > 0, as every solver here already requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ElectronicError
from repro.tb.kpoints import monkhorst_pack


@dataclass(frozen=True)
class SymmetryOp:
    """One crystal symmetry operation in fractional coordinates.

    ``w`` is the integer rotation part (``f' = f @ w + t`` on fractional
    rows), ``translation`` the fractional translation, and ``perm`` the
    induced atom permutation (atom *i* lands on the site of atom
    ``perm[i]``) — ``None`` for lattice-only ops detected without a
    basis.
    """

    w: np.ndarray
    translation: np.ndarray
    perm: np.ndarray | None

    @property
    def is_identity(self) -> bool:
        return (np.array_equal(self.w, np.eye(3, dtype=int))
                and not self.translation.any()
                and (self.perm is None
                     or np.array_equal(self.perm,
                                       np.arange(len(self.perm)))))

    def cartesian_rotation(self, cell) -> np.ndarray:
        """The Cartesian rotation ``rt`` with ``r' = r @ rt`` (rows)."""
        h = cell.matrix
        return np.linalg.inv(h) @ self.w @ h

    def k_transform(self) -> np.ndarray:
        """Integer matrix ``A`` with ``k' = k @ A`` for fractional k rows
        (``A = W⁻ᵀ``; exact because ``W`` is unimodular)."""
        a = np.linalg.inv(self.w).T
        ai = np.round(a).astype(int)
        if np.abs(a - ai).max() > 1e-9:  # pragma: no cover - W unimodular
            raise ElectronicError("symmetry op is not unimodular")
        return ai


def identity_op(n_atoms: int | None = None) -> SymmetryOp:
    """The trivial op (always a member of every detected group)."""
    perm = None if n_atoms is None else np.arange(n_atoms)
    return SymmetryOp(np.eye(3, dtype=int), np.zeros(3), perm)


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------

_UNIMODULAR: np.ndarray | None = None


def _unimodular_candidates() -> np.ndarray:
    """All 3×3 integer matrices with entries in {−1, 0, 1} and |det| = 1.

    Sufficient for every conventional cubic / tetragonal / orthorhombic /
    hexagonal cell (and any Niggli-like mild shear); a pathologically
    sheared cell would merely under-detect — fewer ops, never wrong ones.
    """
    global _UNIMODULAR
    if _UNIMODULAR is None:
        vals = np.array(np.meshgrid(*[[-1, 0, 1]] * 9, indexing="ij"))
        mats = vals.reshape(9, -1).T.reshape(-1, 3, 3)
        dets = np.round(np.linalg.det(mats)).astype(int)
        _UNIMODULAR = np.ascontiguousarray(mats[np.abs(dets) == 1])
    return _UNIMODULAR


def lattice_point_group(cell, tol: float = 1e-8) -> list[np.ndarray]:
    """Integer rotation parts ``W`` that leave the cell metric invariant.

    An op qualifies when ``W G Wᵀ = G`` for the metric ``G = h hᵀ`` —
    exactly the condition for ``h⁻¹ W h`` to be orthogonal, i.e. for the
    op to be a rigid rotation/reflection mapping the lattice onto
    itself.  *tol* is relative to the largest metric entry, tight enough
    that a 1e-6 strain already breaks the strained-away ops.  Ops mixing
    periodic and non-periodic axes are excluded (a vacuum axis cannot
    map onto a lattice axis).  The identity is always first.
    """
    h = np.asarray(cell.matrix, dtype=float)
    metric = h @ h.T
    cands = _unimodular_candidates()
    transformed = np.einsum("mij,jk,mlk->mil", cands, metric, cands)
    keep = (np.abs(transformed - metric).max(axis=(1, 2))
            < tol * np.abs(metric).max())
    pbc = np.asarray(cell.pbc, dtype=bool)
    if not pbc.all():
        mix = pbc[:, None] != pbc[None, :]
        keep &= ~np.any((cands != 0) & mix, axis=(1, 2))
    mats = [w for w in cands[keep].astype(int)]
    eye = np.eye(3, dtype=int)
    mats.sort(key=lambda w: not np.array_equal(w, eye))
    return mats


def _wrap_frac(frac: np.ndarray, pbc: np.ndarray) -> np.ndarray:
    """Wrap fractional coordinates into [0, 1) along periodic axes."""
    out = np.array(frac, dtype=float)
    out[..., pbc] -= np.floor(out[..., pbc])
    return out


def _match_basis(mapped: np.ndarray, frac: np.ndarray, species: np.ndarray,
                 h: np.ndarray, pbc: np.ndarray, tol: float,
                 probe: np.ndarray) -> np.ndarray | None:
    """Atom permutation sending each mapped site onto a basis site of the
    same species within *tol* Å (modulo lattice translations along
    periodic axes), or ``None``.  *probe* indices are checked first so
    the overwhelmingly common non-match dies after O(probe × N) work."""

    def nearest(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        delta = mapped[rows][:, None, :] - frac[None, :, :]
        delta[..., pbc] -= np.round(delta[..., pbc])
        d2 = np.einsum("pnc,pnc->pn", delta @ h, delta @ h)
        j = np.argmin(d2, axis=1)
        return j, np.sqrt(d2[np.arange(len(rows)), j])

    jp, dp = nearest(probe)
    if (dp > tol).any() or (species[probe] != species[jp]).any():
        return None
    allrows = np.arange(len(frac))
    perm, dist = nearest(allrows)
    if (dist > tol).any() or (species != species[perm]).any():
        return None
    if len(np.unique(perm)) != len(perm):
        return None
    return perm


def crystal_symmetry_ops(atoms, tol: float = 1e-5) -> list[SymmetryOp]:
    """Space-group operations of *atoms* as :class:`SymmetryOp` objects.

    For each lattice rotation the fractional translations are searched by
    mapping an anchor atom (of the scarcest species) onto every atom of
    the same species; the first translation that maps the whole basis
    onto itself (within *tol* Å) is kept — one op per rotation, which is
    all the k-folding and force scattering need (extra translations of a
    supercell act trivially on k).  A structure with no symmetry returns
    just the identity; non-periodic structures likewise.
    """
    n = len(atoms)
    if n == 0 or not atoms.cell.periodic:
        return [identity_op(n)]
    cell = atoms.cell
    h = np.asarray(cell.matrix, dtype=float)
    pbc = np.asarray(cell.pbc, dtype=bool)
    frac = cell.fractional(atoms.positions)
    frac_w = _wrap_frac(frac, pbc)
    species = np.asarray(atoms.symbols)

    uniq, counts = np.unique(species, return_counts=True)
    anchor_species = uniq[np.argmin(counts)]
    candidates = np.flatnonzero(species == anchor_species)
    anchor = int(candidates[0])
    # anchor-first ordering makes W = I discover t = 0 (the identity op)
    candidates = np.concatenate(([anchor],
                                 candidates[candidates != anchor]))
    probe = np.unique(np.linspace(0, n - 1, min(n, 4)).astype(int))

    ops: list[SymmetryOp] = []
    for w in lattice_point_group(cell):
        mapped = frac_w @ w
        for j in candidates:
            t = frac_w[j] - mapped[anchor]
            perm = _match_basis(mapped + t, frac_w, species, h, pbc, tol,
                                probe)
            if perm is not None:
                ops.append(SymmetryOp(w, _wrap_frac(t, pbc), perm))
                break
    return ops


def filter_valid_ops(atoms, ops: list[SymmetryOp], tol: float = 1e-5
                     ) -> list[SymmetryOp]:
    """The subset of *ops* that still hold for *atoms* — O(|ops| · N).

    Each op is re-verified directly against its stored permutation (no
    nearest-neighbour search): the metric condition for the current
    cell, then ``|f @ W + t − f[perm]| < tol`` modulo lattice
    translations.  This is the cheap per-step path of :func:`rewedge`;
    full O(N²) detection happens only when it loses an op.  Never
    empty — the identity is restored if everything else fails.
    """
    n = len(atoms)
    cell = atoms.cell
    h = np.asarray(cell.matrix, dtype=float)
    pbc = np.asarray(cell.pbc, dtype=bool)
    metric = h @ h.T
    mtol = 1e-8 * np.abs(metric).max()
    frac_w = _wrap_frac(cell.fractional(atoms.positions), pbc)
    out = []
    for op in ops:
        if op.perm is None or len(op.perm) != n:
            continue
        if np.abs(op.w @ metric @ op.w.T - metric).max() > mtol:
            continue                  # strain broke this lattice op
        delta = frac_w @ op.w + op.translation - frac_w[op.perm]
        delta[:, pbc] -= np.round(delta[:, pbc])
        cart = delta @ h
        if np.einsum("nc,nc->n", cart, cart).max() <= tol * tol:
            out.append(op)
    return out or [identity_op(n)]


def rewedge(size, atoms, prev_ops: list[SymmetryOp] | None = None,
            tol: float = 1e-5) -> "IrreducibleKGrid":
    """Irreducible wedge of *atoms*, reusing *prev_ops* when they hold.

    The calculators call this on every geometry change.  Revalidating a
    known op set is O(|ops| · N); the full O(N²) detection runs only on
    the first resolve and whenever revalidation *loses* an op (the
    structure broke symmetry and the true subgroup must be found).  Ops
    the structure has *gained* since the last full detection are not
    searched for — a larger-than-minimal wedge is still physically
    exact, just less reduced — so an MD trajectory pays detection once,
    not per step.
    """
    if prev_ops:
        kept = filter_valid_ops(atoms, prev_ops, tol=tol)
        if len(kept) == len(prev_ops):
            obs.counter_inc("symmetry.revalidated")
            return irreducible_kpoints(size, atoms=atoms, ops=kept)
    obs.counter_inc("symmetry.redetected")
    return irreducible_kpoints(size, atoms=atoms, tol=tol)


# ---------------------------------------------------------------------------
# irreducible wedges
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IrreducibleKGrid:
    """A symmetry-folded Monkhorst–Pack grid.

    ``kpts_frac`` / ``weights`` are the wedge representatives (members of
    the original grid) with orbit-summed weights (Σw = 1); ``ops`` the
    operations actually used for the folding — exactly the set force and
    virial scattering must average over; ``n_full`` the unreduced grid
    size.
    """

    kpts_frac: np.ndarray
    weights: np.ndarray
    ops: list[SymmetryOp]
    n_full: int

    def __len__(self) -> int:
        return len(self.kpts_frac)


def _grid_key(k: np.ndarray) -> tuple:
    """Canonical dict key of a fractional k point wrapped to [−½, ½)."""
    wrapped = k - np.round(k)
    wrapped[wrapped >= 0.5 - 1e-9] -= 1.0          # round-off at the edge
    return tuple(np.round(wrapped, 9) + 0.0)


def irreducible_kpoints(size, cell=None, atoms=None,
                        ops: list[SymmetryOp] | None = None,
                        time_reversal: bool = True,
                        tol: float = 1e-5) -> IrreducibleKGrid:
    """Fold a Monkhorst–Pack grid into its irreducible wedge.

    Parameters
    ----------
    size : MP divisions (int or 3-tuple).
    cell, atoms :
        Where the operations come from when *ops* is not given: with
        *atoms*, the full crystal symmetry (lattice + basis); with only
        *cell*, the bare lattice point group (no atom permutations —
        fine for weight bookkeeping, unusable for force scattering).
    ops :
        Pre-detected operations (e.g. cached across a strain sweep).
    time_reversal :
        Compose every op with k → −k (valid for the real-space-real
        Hamiltonians used throughout this library).

    Ops that do not map the grid onto itself (an anisotropic grid on a
    cubic crystal, say) are dropped — never misfolded — so the wedge
    degrades continuously toward the time-reversal-only reduction.
    Representatives are grid members; orbit weights are summed exactly,
    so every weighted band quantity matches the full grid to round-off
    (the test suite asserts 1e-12 on energies and Σw).
    """
    if ops is None:
        if atoms is not None:
            ops = crystal_symmetry_ops(atoms, tol=tol)
        elif cell is not None:
            ops = [SymmetryOp(w, np.zeros(3), None)
                   for w in lattice_point_group(cell)]
        else:
            ops = [identity_op()]
    kpts, w = monkhorst_pack(size, reduce_time_reversal=False)
    index = {_grid_key(k): i for i, k in enumerate(kpts)}

    usable: list[tuple[SymmetryOp, np.ndarray]] = []
    for op in ops:
        a = op.k_transform()
        if all(_grid_key(k) in index for k in kpts @ a):
            usable.append((op, a))
    signs = (1.0, -1.0) if time_reversal else (1.0,)

    assigned = np.zeros(len(kpts), dtype=bool)
    reps: list[int] = []
    weights: list[float] = []
    for i in range(len(kpts)):
        if assigned[i]:
            continue
        orbit = set()
        for _, a in usable:
            ki = kpts[i] @ a
            for s in signs:
                orbit.add(index[_grid_key(s * ki)])
        orbit_idx = np.fromiter(orbit, dtype=int)
        assigned[orbit_idx] = True
        reps.append(i)
        weights.append(float(w[orbit_idx].sum()))
    return IrreducibleKGrid(kpts_frac=kpts[reps],
                            weights=np.asarray(weights),
                            ops=[op for op, _ in usable],
                            n_full=len(kpts))


# ---------------------------------------------------------------------------
# scattering wedge sums back to full-grid quantities
# ---------------------------------------------------------------------------

def _require_perms(ops: list[SymmetryOp]) -> None:
    if any(op.perm is None for op in ops):
        raise ElectronicError(
            "force/virial symmetrisation needs ops with atom permutations "
            "(detect them with crystal_symmetry_ops, not lattice-only)")


def symmetrize_forces(forces: np.ndarray, ops: list[SymmetryOp],
                      cell) -> np.ndarray:
    """Average a wedge-accumulated force array over the folding ops.

    ``out[perm[i]] += f[i] @ rt`` per op, divided by the op count —
    linear, so it can be applied once to the weighted k sum instead of
    per k point.  With only the identity op this is a copy.
    """
    if len(ops) <= 1:
        return forces
    _require_perms(ops)
    out = np.zeros_like(forces)
    for op in ops:
        out[op.perm] += forces @ op.cartesian_rotation(cell)
    return out / len(ops)


def symmetrize_virial(virial: np.ndarray, ops: list[SymmetryOp],
                      cell) -> np.ndarray:
    """Average a wedge-accumulated virial (3×3) over the folding ops:
    ``(1/|G|) Σ R V Rᵀ`` with ``R = rtᵀ``."""
    if len(ops) <= 1:
        return virial
    out = np.zeros_like(virial)
    for op in ops:
        rt = op.cartesian_rotation(cell)
        out += rt.T @ virial @ rt
    return out / len(ops)


def symmetrize_atom_scalars(values: np.ndarray, ops: list[SymmetryOp]
                            ) -> np.ndarray:
    """Average per-atom scalars (e.g. Mulliken populations) over the
    folding ops' permutations."""
    if len(ops) <= 1:
        return values
    _require_perms(ops)
    out = np.zeros_like(np.asarray(values, dtype=float))
    for op in ops:
        out[op.perm] += values
    return out / len(ops)

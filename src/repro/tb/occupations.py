"""Electronic occupations: zero-temperature filling and Fermi–Dirac smearing.

Occupations include the spin degeneracy: a fully occupied level carries
``f = 2``.  The k-resolved variants take per-state weights (the product of
spin degeneracy capacity and k-point weight is handled by the caller
passing ``weights``) and determine one common Fermi level across the whole
spectrum by bisection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ElectronicError
from repro.units import KB


def zero_temperature_occupations(eigenvalues: np.ndarray, n_electrons: float,
                                 degeneracy_tol: float = 1e-8) -> np.ndarray:
    """Aufbau filling with spin factor 2 and even splitting of degeneracy.

    Levels degenerate with the highest (partially) occupied one share the
    remaining electrons equally — this keeps occupations (hence forces)
    continuous and basis-orientation independent for symmetric structures.
    """
    eps = np.asarray(eigenvalues, dtype=float)
    n = len(eps)
    if n_electrons < 0 or n_electrons > 2 * n + 1e-9:
        raise ElectronicError(
            f"cannot place {n_electrons} electrons in {n} levels (max {2 * n})"
        )
    order = np.argsort(eps)
    f_sorted = np.zeros(n)
    remaining = float(n_electrons)
    pos = 0
    while remaining > 1e-12 and pos < n:
        # find the degenerate shell starting at `pos`
        e0 = eps[order[pos]]
        shell_end = pos
        while shell_end < n and eps[order[shell_end]] <= e0 + degeneracy_tol:
            shell_end += 1
        shell = order[pos:shell_end]
        capacity = 2.0 * len(shell)
        take = min(capacity, remaining)
        f_sorted[pos:shell_end] = take / len(shell)
        remaining -= take
        pos = shell_end
    f = np.empty(n)
    f[order] = f_sorted
    return f


def fermi_function(eps: np.ndarray, mu: float, kT: float) -> np.ndarray:
    """Spin-degenerate Fermi–Dirac occupation 2/(exp((ε−μ)/kT)+1)."""
    x = (np.asarray(eps, dtype=float) - mu) / kT
    # numerically safe evaluation
    out = np.empty_like(x)
    pos = x > 0
    ep = np.exp(-x[pos])
    out[pos] = 2.0 * ep / (1.0 + ep)
    en = np.exp(x[~pos])
    out[~pos] = 2.0 / (1.0 + en)
    return out


def find_fermi_level(eigenvalues: np.ndarray, n_electrons: float, kT: float,
                     weights: np.ndarray | None = None,
                     tol: float = 1e-12, max_iter: int = 200) -> float:
    """Bisect for μ such that ``Σ w·f(ε; μ) = n_electrons``.

    The electron count is continuous and monotone in μ for ``kT > 0``, so
    bisection normally converges well below *tol*.  When it does **not**
    (the residual after *max_iter* still exceeds the tolerance) the
    midpoint is *wrong*, not approximately right, and is never returned:

    * if the spectrum around the final bracket has a clean gap whose
      midpoint satisfies the electron count — the degenerate mid-gap /
      kT → 0 case, where the count plateaus at ``n_electrons`` over the
      whole gap and float resolution cannot distinguish candidates — the
      gap midpoint is returned *deliberately* (it is the kT → 0 limit of
      the exact μ);
    * otherwise :class:`~repro.errors.ElectronicError` is raised with the
      residual, instead of silently handing a mis-placed Fermi level to
      occupation, entropy and force evaluations downstream.
    """
    eps = np.asarray(eigenvalues, dtype=float)
    w = np.ones_like(eps) if weights is None else np.asarray(weights, dtype=float)
    total_capacity = 2.0 * float(w.sum())
    if not (0.0 <= n_electrons <= total_capacity + 1e-9):
        raise ElectronicError(
            f"{n_electrons} electrons cannot fit capacity {total_capacity}"
        )
    lo = float(eps.min()) - 20.0 * kT - 1.0
    hi = float(eps.max()) + 20.0 * kT + 1.0
    scale = max(1.0, abs(n_electrons))

    def count(mu):
        return float(np.sum(w * fermi_function(eps, mu, kT)))

    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        c = count(mid)
        if abs(c - n_electrons) < tol * scale:
            return mid
        if c < n_electrons:
            lo = mid
        else:
            hi = mid

    # Non-convergent: the count could not meet the tolerance anywhere the
    # bracket can resolve.  The benign case is a staircase count (kT far
    # below the level spacing): if the levels around the bracket leave a
    # gap whose midpoint carries the right electron count, return it.
    mid = 0.5 * (lo + hi)
    below = eps[eps <= mid]
    above = eps[eps > mid]
    if len(below) and len(above):
        mu_gap = 0.5 * (float(below.max()) + float(above.min()))
        if abs(count(mu_gap) - n_electrons) < tol * scale:
            return mu_gap
    residual = count(mid) - n_electrons
    raise ElectronicError(
        f"Fermi-level bisection did not converge in {max_iter} iterations: "
        f"electron-count residual {residual:+.3e} at mu = {mid:.6f} eV "
        f"(tol {tol * scale:.1e}). kT = {kT:g} eV may be too small to "
        "resolve a partially filled level at float precision; raise kT, "
        "loosen tol, or use the zero-temperature filler."
    )


def entropy_density(occupations: np.ndarray) -> np.ndarray:
    """Per-state entropy  s = −2 k_B [x ln x + (1−x) ln(1−x)],  x = f/2.

    In eV/K per state; summing (with weights) gives the electronic
    entropy, and expanding it as a function of energy is how the
    Fermi-operator kernels obtain S as a trace
    (:func:`repro.tb.chebyshev.entropy_coefficients`).
    """
    x = np.clip(np.asarray(occupations, dtype=float) / 2.0, 0.0, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        term = np.where((x > 0) & (x < 1),
                        x * np.log(np.where(x > 0, x, 1.0))
                        + (1 - x) * np.log(np.where(x < 1, 1 - x, 1.0)),
                        0.0)
    return -2.0 * KB * term


def electronic_entropy(occupations: np.ndarray,
                       weights: np.ndarray | None = None) -> float:
    """Electronic entropy  S = −2 k_B Σ w [x ln x + (1−x) ln(1−x)],  x = f/2.

    Returned in eV/K; multiply by T for the −TS term of the Mermin free
    energy.
    """
    s = entropy_density(occupations)
    w = np.ones_like(s) if weights is None else np.asarray(weights, dtype=float)
    return float(np.sum(w * s))


def fermi_dirac_occupations(eigenvalues: np.ndarray, n_electrons: float,
                            kT: float, weights: np.ndarray | None = None
                            ) -> tuple[np.ndarray, float, float]:
    """Smeared occupations.

    Returns ``(f, mu, entropy)`` with ``Σ w f = n_electrons`` and the
    entropy in eV/K.  ``kT`` is in eV; pass ``kT = KB * T_elec`` for an
    electronic temperature in kelvin.  Falls back to the zero-temperature
    filler for ``kT <= 0`` (μ = HOMO/LUMO midpoint, entropy 0, only for
    ``weights is None``).
    """
    eps = np.asarray(eigenvalues, dtype=float)
    if kT <= 0.0:
        if weights is not None:
            raise ElectronicError(
                "zero-temperature weighted filling: use kT > 0 with weights"
            )
        f = zero_temperature_occupations(eps, n_electrons)
        occ = eps[f > 1e-9]
        emp = eps[f < 2.0 - 1e-9]
        if len(occ) and len(emp):
            mu = 0.5 * (occ.max() + emp.min())
        elif len(occ):
            mu = float(occ.max())
        else:
            mu = float(eps.min())
        return f, mu, 0.0
    mu = find_fermi_level(eps, n_electrons, kT, weights=weights)
    f = fermi_function(eps, mu, kT)
    s = electronic_entropy(f, weights=weights)
    return f, mu, s


def homo_lumo_gap(eigenvalues: np.ndarray, occupations: np.ndarray
                  ) -> tuple[float, float, float]:
    """(HOMO, LUMO, gap) from eigenvalues + occupations.

    Metallic / fractional-occupation spectra return gap 0 with
    HOMO = LUMO = highest partially occupied level.
    """
    eps = np.asarray(eigenvalues, dtype=float)
    f = np.asarray(occupations, dtype=float)
    frac = (f > 1e-9) & (f < 2.0 - 1e-9)
    if frac.any():
        level = float(eps[frac].max())
        return level, level, 0.0
    occ = eps[f > 1e-9]
    emp = eps[f <= 1e-9]
    if not len(occ) or not len(emp):
        raise ElectronicError("need both occupied and empty states for a gap")
    homo = float(occ.max())
    lumo = float(emp.min())
    return homo, lumo, max(0.0, lumo - homo)

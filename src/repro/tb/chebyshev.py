"""Chebyshev Fermi-operator expansion (FOE).

The second O(N)-family electronic solver (Goedecker & Colombo 1994 —
contemporaneous with the target paper): approximate the finite-
temperature density matrix as a Chebyshev polynomial of the Hamiltonian,

.. math::

    ρ = f\\left(\\frac{H - μ}{kT}\\right)
      ≈ \\sum_{k=0}^{K} c_k T_k(\\tilde H),

with ``\\tilde H`` the Hamiltonian rescaled onto [−1, 1] and the
coefficients ``c_k`` obtained by Chebyshev–Gauss quadrature of the Fermi
function.  Each term costs one (sparse) matrix multiply, so with
thresholding the cost is O(K · N) for local Hamiltonians — and unlike
zero-temperature purification it handles *metallic* (smeared) systems,
which is exactly why liquid-metal TBMD adopted it.

This implementation keeps matrices dense (the honest regime for the cell
sizes this substrate reaches — see bench A4's locality discussion) and is
validated against exact smeared diagonalisation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ElectronicError, SpectralWindowError
from repro.tb.occupations import entropy_density, fermi_function
from repro.tb.purification import lanczos_spectral_bounds


def chebyshev_coefficients(func, order: int) -> np.ndarray:
    """Chebyshev expansion coefficients of *func* on [−1, 1].

    Standard Chebyshev–Gauss quadrature with ``order + 1`` nodes:
    ``c_0 = (1/M)Σ f(x_m)``, ``c_k = (2/M)Σ f(x_m) cos(k θ_m)``.
    """
    if order < 1:
        raise ElectronicError("expansion order must be >= 1")
    m = order + 1
    theta = np.pi * (np.arange(m) + 0.5) / m
    x = np.cos(theta)
    fx = func(x)
    c = np.empty(m)
    for k in range(m):
        c[k] = 2.0 / m * float(np.sum(fx * np.cos(k * theta)))
    c[0] *= 0.5
    return c


def scaled_coefficients(func, center: float, span: float, order: int
                        ) -> np.ndarray:
    """Coefficients of ``func(ε)`` as a polynomial in ``(H − center)/span``.

    The shared rescaling contract of every Fermi-operator consumer: the
    dense FOE below and the localization-region engine
    (:mod:`repro.linscale.foe_local`) expand the *same* scalar functions on
    the *same* axis, so a chemical potential bisected from region moments
    is directly comparable to the dense one.
    """
    return chebyshev_coefficients(lambda x: func(center + span * x), order)


def fermi_coefficients(center: float, span: float, mu: float, kT: float,
                       order: int) -> np.ndarray:
    """Chebyshev coefficients of the spin-summed Fermi function f(ε; μ, kT)."""
    if kT <= 0:
        raise ElectronicError("Fermi expansion needs kT > 0")
    return scaled_coefficients(lambda e: fermi_function(e, mu, kT),
                               center, span, order)


def entropy_coefficients(center: float, span: float, mu: float, kT: float,
                         order: int) -> np.ndarray:
    """Chebyshev coefficients of the electronic-entropy density (eV/K).

    Expands :func:`repro.tb.occupations.entropy_density` as a function of
    energy, so ``tr s(H) = S`` matches
    :func:`repro.tb.occupations.electronic_entropy` summed over the exact
    spectrum.
    """
    if kT <= 0:
        raise ElectronicError("entropy expansion needs kT > 0")
    return scaled_coefficients(
        lambda eps: entropy_density(fermi_function(eps, mu, kT)),
        center, span, order)


def _fermi_mu_derivative(eps: np.ndarray, mu: float, kT: float,
                         nderiv: int) -> np.ndarray:
    """∂ⁿf/∂μⁿ of the spin-summed Fermi function, numerically safe.

    Everything is expressed through the logistic ``σ = f/2`` evaluated by
    the overflow-safe :func:`repro.tb.occupations.fermi_function`, using
    ``dσ/dx = −σ(1−σ)`` with ``x = (ε − μ)/kT`` and ``d/dμ = −(1/kT) d/dx``.
    """
    f = fermi_function(eps, mu, kT)
    if nderiv == 0:
        return f
    sig = 0.5 * f
    g = sig * (1.0 - sig)
    if nderiv == 1:
        return 2.0 * g / kT
    if nderiv == 2:
        return 2.0 * g * (1.0 - 2.0 * sig) / kT**2
    if nderiv == 3:
        return 2.0 * g * ((1.0 - 2.0 * sig) ** 2 - 2.0 * g) / kT**3
    raise ElectronicError(f"Fermi μ-derivative order {nderiv} not implemented")


def fermi_mu_derivative_coefficients(center: float, span: float, mu: float,
                                     kT: float, order: int,
                                     nderiv: int = 3) -> np.ndarray:
    """Stacked Chebyshev coefficients of f, ∂f/∂μ, …, ∂ⁿf/∂μⁿ.

    Returns a ``(nderiv + 1, order + 1)`` array whose row *s* expands the
    *s*-th μ-derivative of the spin-summed Fermi function on the shared
    ``(center, span)`` window.  This is the coefficient stack of the MD
    fast path's *fused* single-pass FOE: one Chebyshev recursion
    accumulates density rows **and** their μ-Taylor corrections, so the
    chemical potential can be refined *after* the matrix work without a
    second pass (the Taylor remainder is O((Δμ/kT)^{nderiv+1})).
    """
    if kT <= 0:
        raise ElectronicError("Fermi expansion needs kT > 0")
    return np.stack([
        scaled_coefficients(lambda e, s=s: _fermi_mu_derivative(e, mu, kT, s),
                            center, span, order)
        for s in range(nderiv + 1)
    ])


def chebyshev_trace_moments(H: np.ndarray, center: float, span: float,
                            order: int) -> np.ndarray:
    """Trace moments ``m_k = tr T_k(H̃)`` of the rescaled Hamiltonian.

    One two-term matrix recursion (the cost of a single density build)
    turns every subsequent scalar-function trace — electron count, band
    energy, entropy at any μ — into a dot product with precomputed
    coefficients.  This is the dense analogue of the region moments in
    :mod:`repro.linscale.foe_local`.
    """
    n = H.shape[0]
    h_tilde = (H - center * np.eye(n)) / span
    m = np.empty(order + 1)
    m[0] = float(n)
    t_prev = np.eye(n)
    t_cur = h_tilde.copy()
    if order >= 1:
        m[1] = float(np.trace(t_cur))
    for k in range(2, order + 1):
        t_next = 2.0 * (h_tilde @ t_cur) - t_prev
        m[k] = float(np.trace(t_next))
        t_prev, t_cur = t_cur, t_next
    return m


def solve_mu_from_moments(moments: np.ndarray, center: float, span: float,
                          kT: float, n_electrons: float,
                          bracket: tuple[float, float],
                          warm_bracket: tuple[float, float] | None = None,
                          tol: float = 1e-10, max_iter: int = 100) -> float:
    """Solve ``Σ_k c_k(μ) m_k = n_electrons`` for μ (bisection + Newton).

    The one μ-search shared by the dense FOE and the region engine.
    Each trial is one scalar coefficient evaluation (O(K²) flops).  A
    *warm_bracket* (e.g. last MD step's μ ± a few kT) is verified before
    use and silently widened to *bracket* when it no longer contains the
    electron count; *bracket* itself must contain it or
    :class:`~repro.errors.ElectronicError` is raised.  The bisection
    converges the electron *count*; the final Newton polish (∂N/∂μ from
    the expanded Fermi derivative, step clamped to the bracket ± 10 kT)
    then pins μ itself to machine precision, so the result is
    independent of the starting bracket — warm and cold searches return
    the *same* μ, keeping the MD fast path bit-comparable to the
    reference path.

    This is the single-window special case of
    :func:`solve_mu_from_moments_multi`.
    """
    return solve_mu_from_moments_multi(
        np.asarray(moments, dtype=float)[None, :], [(center, span)], kT,
        n_electrons, bracket, warm_bracket=warm_bracket, tol=tol,
        max_iter=max_iter)


def solve_mu_from_moments_multi(moments: np.ndarray,
                                windows: list[tuple[float, float]],
                                kT: float, n_electrons: float,
                                bracket: tuple[float, float],
                                weights: np.ndarray | None = None,
                                warm_bracket: tuple[float, float] | None = None,
                                tol: float = 1e-10,
                                max_iter: int = 100) -> float:
    """One common μ from moment sets expanded on *different* windows.

    The k-sampled generalisation of :func:`solve_mu_from_moments`: row
    *j* of *moments* holds the trace moments of ``T_n(H̃(k_j))`` on its
    own scaled window ``windows[j] = (center_j, span_j)`` (each k point
    caches its own spectral bounds), and *weights* are the sampling
    weights, so the electron count is

    .. math::

        N(μ) = \\sum_j w_j \\sum_n c_n(μ; center_j, span_j) \\, m^{(j)}_n .

    One μ is bisected (then Newton-polished through the weighted
    ∂N/∂μ from :func:`fermi_mu_derivative_coefficients`) for **all**
    windows at once — the single-allreduce-per-round μ search of the
    k-point-parallel decomposition.  Semantics of *bracket* /
    *warm_bracket* / *tol* match the single-window solver exactly.
    """
    moments = np.atleast_2d(np.asarray(moments, dtype=float))
    if len(windows) != len(moments):
        raise ElectronicError(
            f"{len(moments)} moment rows but {len(windows)} windows")
    w = np.ones(len(moments)) if weights is None \
        else np.asarray(weights, dtype=float)
    if len(w) != len(moments):
        raise ElectronicError(
            f"{len(moments)} moment rows but {len(w)} weights")
    order = moments.shape[1] - 1

    def count(mu):
        return float(sum(
            wj * (fermi_coefficients(c, s, mu, kT, order) @ mj)
            for wj, (c, s), mj in zip(w, windows, moments)))

    lo, hi = float(bracket[0]), float(bracket[1])
    if warm_bracket is not None:
        wlo, whi = float(warm_bracket[0]), float(warm_bracket[1])
        if count(wlo) <= n_electrons <= count(whi):
            lo, hi = wlo, whi
    if count(lo) > n_electrons or count(hi) < n_electrons:
        raise ElectronicError(
            f"μ bracket [{lo:.3f}, {hi:.3f}] eV does not contain "
            f"{n_electrons} electrons"
        )
    mu = 0.5 * (lo + hi)
    for _ in range(max_iter):
        mu = 0.5 * (lo + hi)
        c = count(mu)
        if abs(c - n_electrons) < tol * max(1.0, n_electrons):
            break
        if c < n_electrons:
            lo = mu
        else:
            hi = mu

    for _ in range(4):
        d = float(sum(
            wj * (fermi_mu_derivative_coefficients(
                c_, s_, mu, kT, order, nderiv=1)[1] @ mj)
            for wj, (c_, s_), mj in zip(w, windows, moments)))
        if not np.isfinite(d) or d <= 1e-14:
            break
        step = (count(mu) - n_electrons) / d
        if not np.isfinite(step):
            break
        mu = min(max(mu - step, lo - 10.0 * kT), hi + 10.0 * kT)
        if abs(step) < 1e-13:
            break
    return mu


def evaluate_matrix_polynomial(H_tilde: np.ndarray, coeffs: np.ndarray
                               ) -> np.ndarray:
    """Σ c_k T_k(H̃) by the two-term Chebyshev recursion."""
    n = H_tilde.shape[0]
    t_prev = np.eye(n)
    t_cur = H_tilde.copy()
    out = coeffs[0] * t_prev + (coeffs[1] * t_cur if len(coeffs) > 1 else 0.0)
    for k in range(2, len(coeffs)):
        t_next = 2.0 * (H_tilde @ t_cur) - t_prev
        out += coeffs[k] * t_next
        t_prev, t_cur = t_cur, t_next
    return out


def fermi_operator_expansion(H: np.ndarray, n_electrons: float, kT: float,
                             order: int = 200, mu: float | None = None,
                             mu_tol: float = 1e-8, max_mu_iter: int = 60,
                             bounds: tuple[float, float] | None = None,
                             mu_guess: float | None = None) -> dict:
    """Finite-temperature density matrix by Chebyshev FOE.

    Parameters
    ----------
    H : real symmetric Hamiltonian (dense).
    n_electrons : spin-summed electron count; μ is bisected (each trial is
        one cheap scalar expansion, not a matrix pass) unless given.
    kT : electronic temperature (eV); must be > 0 — the polynomial order
        needed grows like (spectral width)/kT.
    order : Chebyshev order K.
    bounds : optional precomputed spectral bounds ``(emin, emax)``; pass a
        cached window from a previous MD step to skip the Lanczos solves.
    mu_guess : optional warm start for the chemical-potential search
        (e.g. last step's μ); skips the coarse reduced-order bisection
        and goes straight to full-order secant refinement around it.

    Returns
    -------
    dict with ``rho`` (spin-summed), ``band_energy``, ``mu``, ``order``,
    ``spectral_bounds``.
    """
    n = H.shape[0]
    if H.shape != (n, n):
        raise ElectronicError(f"H must be square, got {H.shape}")
    if kT <= 0:
        raise ElectronicError("FOE needs kT > 0 (use purification at zero T)")
    # tight Lanczos bounds: with Gershgorin's ~2.5×-too-wide window the
    # expansion rings at low kT (ρ eigenvalues overshoot [0, 2]) unless
    # the order is raised proportionally
    emin, emax = bounds if bounds is not None else lanczos_spectral_bounds(H)
    # pad the bounds so T_k stays in its stable domain
    span = 0.5 * (emax - emin) * 1.01
    center = 0.5 * (emax + emin)
    if span <= 0:
        raise ElectronicError("degenerate spectral bounds")

    def rho_for(mu_val, k_order):
        # spinless expansion: half the spin-summed Fermi coefficients
        coeffs = 0.5 * fermi_coefficients(center, span, mu_val, kT, k_order)
        h_tilde = (H - center * np.eye(n)) / span
        return evaluate_matrix_polynomial(h_tilde, coeffs)

    if mu is None:
        # one trace-moment recursion (m_k = tr T_k(H̃), same cost as a
        # single ρ build) turns every μ trial into a scalar dot product:
        # N(μ) = Σ_k c_k(μ) m_k — so μ is solved to machine precision
        # instead of the few matrix-build secant steps this used before
        moments = chebyshev_trace_moments(H, center, span, order)
        # a-posteriori window guard: |tr T_k(H̃)| ≤ n whenever the
        # spectrum lies inside the window; a cached (MD-reused) window
        # the spectrum escaped makes the recursion diverge — loudly
        if np.max(np.abs(moments)) > 1.5 * n + 1.0:
            raise SpectralWindowError(
                f"spectral window ({emin:.3f}, {emax:.3f}) eV no longer "
                "contains the Hamiltonian spectrum (trace moments exceed "
                "the n bound); refresh the bounds and re-solve"
            )
        warm = None
        if mu_guess is not None:
            # warm start (e.g. last MD step's μ): try a narrow bracket
            warm = (mu_guess - 10 * kT, mu_guess + 10 * kT)
        mu = solve_mu_from_moments(
            moments, center, span, kT, n_electrons,
            bracket=(emin - 10 * kT, emax + 10 * kT), warm_bracket=warm,
            tol=mu_tol, max_iter=max_mu_iter)

    rho_half = rho_for(mu, order)
    rho = 2.0 * rho_half
    band = float(np.sum(rho * H))
    return {
        "rho": rho,
        "band_energy": band,
        "mu": float(mu),
        "order": order,
        "spectral_bounds": (emin, emax),
        "n_electrons": float(np.trace(rho)),
    }

"""Chebyshev Fermi-operator expansion (FOE).

The second O(N)-family electronic solver (Goedecker & Colombo 1994 —
contemporaneous with the target paper): approximate the finite-
temperature density matrix as a Chebyshev polynomial of the Hamiltonian,

.. math::

    ρ = f\\left(\\frac{H - μ}{kT}\\right)
      ≈ \\sum_{k=0}^{K} c_k T_k(\\tilde H),

with ``\\tilde H`` the Hamiltonian rescaled onto [−1, 1] and the
coefficients ``c_k`` obtained by Chebyshev–Gauss quadrature of the Fermi
function.  Each term costs one (sparse) matrix multiply, so with
thresholding the cost is O(K · N) for local Hamiltonians — and unlike
zero-temperature purification it handles *metallic* (smeared) systems,
which is exactly why liquid-metal TBMD adopted it.

This implementation keeps matrices dense (the honest regime for the cell
sizes this substrate reaches — see bench A4's locality discussion) and is
validated against exact smeared diagonalisation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ElectronicError
from repro.tb.occupations import entropy_density, fermi_function
from repro.tb.purification import lanczos_spectral_bounds


def chebyshev_coefficients(func, order: int) -> np.ndarray:
    """Chebyshev expansion coefficients of *func* on [−1, 1].

    Standard Chebyshev–Gauss quadrature with ``order + 1`` nodes:
    ``c_0 = (1/M)Σ f(x_m)``, ``c_k = (2/M)Σ f(x_m) cos(k θ_m)``.
    """
    if order < 1:
        raise ElectronicError("expansion order must be >= 1")
    m = order + 1
    theta = np.pi * (np.arange(m) + 0.5) / m
    x = np.cos(theta)
    fx = func(x)
    c = np.empty(m)
    for k in range(m):
        c[k] = 2.0 / m * float(np.sum(fx * np.cos(k * theta)))
    c[0] *= 0.5
    return c


def scaled_coefficients(func, center: float, span: float, order: int
                        ) -> np.ndarray:
    """Coefficients of ``func(ε)`` as a polynomial in ``(H − center)/span``.

    The shared rescaling contract of every Fermi-operator consumer: the
    dense FOE below and the localization-region engine
    (:mod:`repro.linscale.foe_local`) expand the *same* scalar functions on
    the *same* axis, so a chemical potential bisected from region moments
    is directly comparable to the dense one.
    """
    return chebyshev_coefficients(lambda x: func(center + span * x), order)


def fermi_coefficients(center: float, span: float, mu: float, kT: float,
                       order: int) -> np.ndarray:
    """Chebyshev coefficients of the spin-summed Fermi function f(ε; μ, kT)."""
    if kT <= 0:
        raise ElectronicError("Fermi expansion needs kT > 0")
    return scaled_coefficients(lambda e: fermi_function(e, mu, kT),
                               center, span, order)


def entropy_coefficients(center: float, span: float, mu: float, kT: float,
                         order: int) -> np.ndarray:
    """Chebyshev coefficients of the electronic-entropy density (eV/K).

    Expands :func:`repro.tb.occupations.entropy_density` as a function of
    energy, so ``tr s(H) = S`` matches
    :func:`repro.tb.occupations.electronic_entropy` summed over the exact
    spectrum.
    """
    if kT <= 0:
        raise ElectronicError("entropy expansion needs kT > 0")
    return scaled_coefficients(
        lambda eps: entropy_density(fermi_function(eps, mu, kT)),
        center, span, order)


def evaluate_matrix_polynomial(H_tilde: np.ndarray, coeffs: np.ndarray
                               ) -> np.ndarray:
    """Σ c_k T_k(H̃) by the two-term Chebyshev recursion."""
    n = H_tilde.shape[0]
    t_prev = np.eye(n)
    t_cur = H_tilde.copy()
    out = coeffs[0] * t_prev + (coeffs[1] * t_cur if len(coeffs) > 1 else 0.0)
    for k in range(2, len(coeffs)):
        t_next = 2.0 * (H_tilde @ t_cur) - t_prev
        out += coeffs[k] * t_next
        t_prev, t_cur = t_cur, t_next
    return out


def fermi_operator_expansion(H: np.ndarray, n_electrons: float, kT: float,
                             order: int = 200, mu: float | None = None,
                             mu_tol: float = 1e-8, max_mu_iter: int = 60
                             ) -> dict:
    """Finite-temperature density matrix by Chebyshev FOE.

    Parameters
    ----------
    H : real symmetric Hamiltonian (dense).
    n_electrons : spin-summed electron count; μ is bisected (each trial is
        one cheap scalar expansion, not a matrix pass) unless given.
    kT : electronic temperature (eV); must be > 0 — the polynomial order
        needed grows like (spectral width)/kT.
    order : Chebyshev order K.

    Returns
    -------
    dict with ``rho`` (spin-summed), ``band_energy``, ``mu``, ``order``,
    ``spectral_bounds``.
    """
    n = H.shape[0]
    if H.shape != (n, n):
        raise ElectronicError(f"H must be square, got {H.shape}")
    if kT <= 0:
        raise ElectronicError("FOE needs kT > 0 (use purification at zero T)")
    # tight Lanczos bounds: with Gershgorin's ~2.5×-too-wide window the
    # expansion rings at low kT (ρ eigenvalues overshoot [0, 2]) unless
    # the order is raised proportionally
    emin, emax = lanczos_spectral_bounds(H)
    # pad the bounds so T_k stays in its stable domain
    span = 0.5 * (emax - emin) * 1.01
    center = 0.5 * (emax + emin)
    if span <= 0:
        raise ElectronicError("degenerate spectral bounds")

    def rho_for(mu_val, k_order):
        # spinless expansion: half the spin-summed Fermi coefficients
        coeffs = 0.5 * fermi_coefficients(center, span, mu_val, kT, k_order)
        h_tilde = (H - center * np.eye(n)) / span
        return evaluate_matrix_polynomial(h_tilde, coeffs)

    if mu is None:
        # coarse bisection on tr ρ(μ) with a reduced-order expansion…
        search_order = max(40, order // 4)
        lo, hi = emin - 5 * kT, emax + 5 * kT
        target = n_electrons / 2.0
        for _ in range(max_mu_iter):
            mid = 0.5 * (lo + hi)
            count = float(np.trace(rho_for(mid, search_order)))
            if abs(count - target) < mu_tol * max(1.0, target):
                break
            if count < target:
                lo = mid
            else:
                hi = mid
        mu = 0.5 * (lo + hi)
        # …then a short full-order refinement (secant on tr ρ(μ) − target)
        mu_a, mu_b = mu - 0.5 * kT, mu + 0.5 * kT
        f_a = float(np.trace(rho_for(mu_a, order))) - target
        f_b = float(np.trace(rho_for(mu_b, order))) - target
        for _ in range(6):
            if abs(f_b - f_a) < 1e-14:
                break
            mu_c = mu_b - f_b * (mu_b - mu_a) / (f_b - f_a)
            f_c = float(np.trace(rho_for(mu_c, order))) - target
            mu_a, f_a, mu_b, f_b = mu_b, f_b, mu_c, f_c
            if abs(f_b) < mu_tol * max(1.0, target):
                break
        mu = mu_b

    rho_half = rho_for(mu, order)
    rho = 2.0 * rho_half
    band = float(np.sum(rho * H))
    return {
        "rho": rho,
        "band_energy": band,
        "mu": float(mu),
        "order": order,
        "spectral_bounds": (emin, emax),
        "n_electrons": float(np.trace(rho)),
    }

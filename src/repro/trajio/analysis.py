"""Out-of-core analysis over PTRJ trajectories.

These mirror :func:`repro.analysis.rdf.radial_distribution` and
:func:`repro.analysis.msd.mean_squared_displacement` bin-for-bin, but
stream frames from disk one chunk at a time instead of materializing
the ``(T, N, 3)`` stack — the memory cost is O(natoms), independent of
trajectory length (MSD additionally keeps its ``origins`` reference
frames).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GeometryError
from repro.neighbors import neighbor_list
from repro.trajio.reader import TrajectoryReader

ReaderLike = Union[TrajectoryReader, str, "os.PathLike[str]"]


def _as_reader(src: ReaderLike) -> tuple[TrajectoryReader, bool]:
    if isinstance(src, TrajectoryReader):
        return src, False
    return TrajectoryReader(src), True


def windowed_rdf(src: ReaderLike, r_max: float, nbins: int = 100, *,
                 start: int = 0, stop: int | None = None,
                 stride: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """g(r) averaged over a frame window, streamed from disk.

    Same normalisation as
    :func:`repro.analysis.rdf.radial_distribution`; *src* is an open
    :class:`~repro.trajio.reader.TrajectoryReader` or a ``.ptrj`` path.
    """
    if r_max <= 0:
        raise GeometryError("r_max must be > 0")
    reader, own = _as_reader(src)
    try:
        symbols = reader.symbols
        n = reader.natoms
        edges = np.linspace(0.0, r_max, nbins + 1)
        hist = np.zeros(nbins)
        nframes = 0
        vol = None
        for frame in reader.iter_frames(start, stop, stride):
            at = frame.to_atoms(symbols)
            nl = neighbor_list(at, r_max, method="brute")
            h, _ = np.histogram(nl.distances, bins=edges)
            hist += 2.0 * h
            if at.cell.fully_periodic:
                vol = at.cell.volume
            nframes += 1
        if not nframes:
            raise GeometryError("no frames in the requested window")
        hist /= nframes
        centers = 0.5 * (edges[1:] + edges[:-1])
        shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
        if vol is not None:
            density = n / vol
        else:
            density = n / (4.0 / 3.0 * np.pi * r_max**3)
        ideal = density * shell_vol * n
        with np.errstate(divide="ignore", invalid="ignore"):
            g = np.where(ideal > 0, hist / ideal, 0.0)
        return centers, g
    finally:
        if own:
            reader.close()


def windowed_msd(src: ReaderLike, *, origins: int = 1, start: int = 0,
                 stop: int | None = None, stride: int = 1
                 ) -> tuple[np.ndarray, np.ndarray]:
    """MSD(τ) over a frame window, streamed from disk.

    Returns ``(times_fs, msd)`` where ``times_fs`` is the lag time of
    each entry relative to the first selected frame.  Matches
    :func:`repro.analysis.msd.mean_squared_displacement` on the same
    window; only the ``origins`` reference frames are held in memory.
    """
    if origins < 1:
        raise GeometryError("origins must be >= 1")
    reader, own = _as_reader(src)
    try:
        stop_ = len(reader) if stop is None else min(int(stop), len(reader))
        frame_ids = range(int(start), stop_, int(stride))
        nt = len(frame_ids)
        if not nt:
            raise GeometryError("no frames in the requested window")
        norigins = min(origins, nt)
        starts = set(np.linspace(0, nt - 1, norigins).astype(int).tolist())
        origin_pos: dict[int, np.ndarray] = {}
        msd = np.zeros(nt)
        counts = np.zeros(nt)
        times = np.zeros(nt)
        for t, fid in enumerate(frame_ids):
            frame = reader.read(fid)
            times[t] = frame.time_fs
            pos = frame.positions
            if t in starts:
                origin_pos[t] = pos.copy()
            for t0, p0 in origin_pos.items():
                disp = pos - p0
                msd[t - t0] += float(np.mean(np.sum(disp * disp, axis=1)))
                counts[t - t0] += 1
        return times - times[0], msd / np.maximum(counts, 1)
    finally:
        if own:
            reader.close()

"""Streaming writer for PTRJ binary trajectories.

Frames go straight to disk a chunk at a time — memory stays
O(chunk_frames · natoms) no matter how long the run is, which is what
lets the MD observers and the campaign runner record 10^5-step
trajectories without holding a ``(T, N, 3)`` stack.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro import obs
from repro.errors import IOFormatError
from repro.trajio import format as fmt


class TrajectoryWriter:
    """Append frames to a ``.ptrj`` file; ``close()`` writes the index.

    Parameters
    ----------
    path:
        Output file.  Created (parents too) on the first frame.
    symbols:
        Chemical symbols, fixed for the whole trajectory.  May be
        omitted and inferred from the first frame's atoms.
    chunk_frames:
        Frames per chunk — the random-access granularity and the
        flush cadence.
    compression:
        zlib level 0..9 (0 = store raw).
    shuffle:
        Byte-plane shuffle the float32 delta block before compression
        (a large win on thermal-motion deltas; no-op when
        ``compression=0`` reads it back untouched either way).
    vel_dtype:
        ``"f8"`` (exact round trip, the default), ``"f4"``, or ``None``
        to not store velocities at all.
    pos_tol:
        Hard bound (Å) on the float32 delta reconstruction error; the
        writer starts a new keyframe chunk whenever a frame would
        exceed it.
    """

    def __init__(self, path: str | os.PathLike[str],
                 symbols: list[str] | None = None, *,
                 chunk_frames: int = 64, compression: int = 6,
                 shuffle: bool = True, vel_dtype: str | None = "f8",
                 pos_tol: float = 1e-6) -> None:
        self.path = os.fspath(path)
        self._symbols = list(symbols) if symbols is not None else None
        self._chunk_frames = int(chunk_frames)
        self._compression = int(compression)
        self._shuffle = bool(shuffle)
        self._vel_dtype = vel_dtype
        self._pos_tol = float(pos_tol)
        self._header: fmt.Header | None = None
        self._fh: Any = None
        self._index: list[tuple[int, int, int]] = []
        self._total_frames = 0
        self._closed = False
        # pending-chunk buffers
        self._keyframe: np.ndarray | None = None
        self._steps: list[int] = []
        self._times: list[float] = []
        self._epots: list[float] = []
        self._ekins: list[float] = []
        self._temps: list[float] = []
        self._cells: list[np.ndarray] = []
        self._pbcs: list[np.ndarray] = []
        self._deltas: list[np.ndarray] = []
        self._vels: list[np.ndarray] = []

    # -- lifecycle -----------------------------------------------------------
    def _open(self, symbols: list[str]) -> None:
        self._symbols = list(symbols)
        self._header = fmt.make_header(
            self._symbols, chunk_frames=self._chunk_frames,
            vel_dtype=self._vel_dtype, compression=self._compression,
            shuffle=self._shuffle, pos_tol=self._pos_tol)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "wb")
        self._fh.write(fmt.pack_header(self._header))

    def __enter__(self) -> "TrajectoryWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def frames_written(self) -> int:
        return self._total_frames + len(self._steps)

    # -- appending -----------------------------------------------------------
    def write(self, atoms: Any, *, step: int = 0, time_fs: float = 0.0,
              epot: float = 0.0, ekin: float = 0.0,
              temperature: float = 0.0) -> None:
        """Append one frame from an :class:`~repro.geometry.atoms.Atoms`."""
        cell = atoms.cell
        self.write_arrays(
            list(atoms.symbols), np.asarray(atoms.positions, dtype=float),
            cell=np.asarray(cell.matrix, dtype=float),
            pbc=np.asarray(cell.pbc, dtype=bool),
            velocities=np.asarray(atoms.velocities, dtype=float),
            step=step, time_fs=time_fs, epot=epot, ekin=ekin,
            temperature=temperature)

    def write_arrays(self, symbols: list[str], positions: np.ndarray, *,
                     cell: np.ndarray, pbc: np.ndarray,
                     velocities: np.ndarray | None = None,
                     step: int = 0, time_fs: float = 0.0,
                     epot: float = 0.0, ekin: float = 0.0,
                     temperature: float = 0.0) -> None:
        """Append one frame from raw arrays (the observer-free path)."""
        if self._closed:
            raise IOFormatError(f"trajectory writer {self.path} is closed")
        if self._header is None:
            self._open(symbols if self._symbols is None else self._symbols)
        assert self._header is not None
        if list(symbols) != list(self._header.symbols):
            raise IOFormatError(
                "frame symbols differ from the trajectory header "
                "(PTRJ stores a fixed topology)")
        pos = np.ascontiguousarray(positions, dtype=np.float64)
        if pos.shape != (self._header.natoms, 3):
            raise IOFormatError(
                f"positions shape {pos.shape} does not match "
                f"({self._header.natoms}, 3)")
        if self._keyframe is None:
            self._keyframe = pos.copy()
        delta = (pos - self._keyframe).astype(np.float32)
        # enforce the pos_tol contract: if this frame has drifted far
        # enough from the keyframe that float32 deltas would round by
        # more than the bound, cut the chunk and re-key on this frame
        err = float(np.max(np.abs(
            self._keyframe + delta.astype(np.float64) - pos))) \
            if self._header.natoms else 0.0
        if err > self._pos_tol and self._steps:
            self._flush_chunk()
            self._keyframe = pos.copy()
            delta = np.zeros_like(pos, dtype=np.float32)
        self._steps.append(int(step))
        self._times.append(float(time_fs))
        self._epots.append(float(epot))
        self._ekins.append(float(ekin))
        self._temps.append(float(temperature))
        self._cells.append(np.ascontiguousarray(cell, dtype=np.float64))
        self._pbcs.append(np.asarray(pbc, dtype=bool))
        self._deltas.append(delta)
        if self._header.has_velocities:
            vel = np.zeros((self._header.natoms, 3)) \
                if velocities is None else np.asarray(velocities, float)
            self._vels.append(vel)
        obs.counter_inc("trajio.frames_written")
        if len(self._steps) >= self._chunk_frames:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._steps:
            return
        assert self._header is not None and self._keyframe is not None
        with obs.span("trajio.write_chunk") as sp:
            nf = len(self._steps)
            record = fmt.encode_chunk(
                self._header, self._keyframe,
                np.asarray(self._steps, dtype=np.int64),
                np.asarray(self._times), np.asarray(self._epots),
                np.asarray(self._ekins), np.asarray(self._temps),
                np.stack(self._cells), np.stack(self._pbcs),
                np.stack(self._deltas),
                np.stack(self._vels) if self._vels else None)
            offset = self._fh.tell()
            self._fh.write(record)
            self._index.append((offset, self._total_frames, nf))
            self._total_frames += nf
            sp.set(frames=nf, bytes=len(record))
        obs.counter_inc("trajio.chunks_written")
        self._keyframe = None
        self._steps, self._times = [], []
        self._epots, self._ekins, self._temps = [], [], []
        self._cells, self._pbcs, self._deltas, self._vels = [], [], [], []

    def close(self) -> None:
        """Flush the pending chunk and write the index + footer."""
        if self._closed:
            return
        self._closed = True
        if self._header is None:
            # nothing was ever written: emit a valid empty trajectory
            # only if symbols were given up front; otherwise no file
            if self._symbols is None:
                return
            self._open(self._symbols)
        self._flush_chunk()
        self._fh.write(fmt.pack_index(self._index, self._total_frames))
        self._fh.close()
        self._fh = None

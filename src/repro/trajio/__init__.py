"""Chunked binary trajectory I/O (the PTRJ format).

Public surface:

- :class:`~repro.trajio.writer.TrajectoryWriter` — streaming writer
- :class:`~repro.trajio.reader.TrajectoryReader` — O(1) random access
- :func:`~repro.trajio.analysis.windowed_rdf` /
  :func:`~repro.trajio.analysis.windowed_msd` — out-of-core analysis
- :class:`~repro.trajio.store.TrajStore` — ref-addressed result store

Format spec and design rationale: ``docs/trajectories.md``.
"""

from repro.trajio.analysis import windowed_msd, windowed_rdf
from repro.trajio.reader import TrajectoryReader, TrajFrame
from repro.trajio.store import TrajStore
from repro.trajio.writer import TrajectoryWriter

__all__ = ["TrajectoryReader", "TrajectoryWriter", "TrajFrame",
           "TrajStore", "windowed_msd", "windowed_rdf"]

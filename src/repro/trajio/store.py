"""Result-ref store: named ``.ptrj`` files behind opaque handles.

The service keeps trajectories *out* of response payloads: a worker
writes frames into the store and ships only the small ``traj_ref``
string back in the :class:`~repro.service.protocol.Result` envelope;
clients then fetch frame ranges lazily through the ``frames`` op.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading

from repro.trajio.reader import TrajectoryReader
from repro.trajio.writer import TrajectoryWriter

_SAFE = re.compile(r"[^\w.-]+")


class TrajStore:
    """A directory of ref-addressed trajectory files.

    With ``root=None`` the store owns a temporary directory that is
    deleted on :meth:`close`; with an explicit root the files persist
    (the campaign artifact case).
    """

    def __init__(self, root: str | os.PathLike[str] | None = None) -> None:
        self._tmp: tempfile.TemporaryDirectory[str] | None = None
        if root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="trajstore-")
            self.root = self._tmp.name
        else:
            self.root = os.fspath(root)
            os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._counter = 0
        self._refs: dict[str, str] = {}

    # -- refs ----------------------------------------------------------------
    def create(self, label: str = "traj") -> str:
        """Reserve a new ref (the file appears once a writer writes it)."""
        with self._lock:
            self._counter += 1
            ref = f"{_SAFE.sub('_', label)}-{self._counter:06d}"
            self._refs[ref] = os.path.join(self.root, ref + ".ptrj")
            return ref

    def writer(self, ref: str, **kwargs: object) -> TrajectoryWriter:
        """A :class:`TrajectoryWriter` for *ref* (kwargs pass through)."""
        return TrajectoryWriter(self.path(ref), **kwargs)  # type: ignore[arg-type]

    def path(self, ref: str) -> str:
        with self._lock:
            if ref not in self._refs:
                raise KeyError(f"unknown traj_ref {ref!r}")
            return self._refs[ref]

    def open(self, ref: str) -> TrajectoryReader:
        return TrajectoryReader(self.path(ref))

    def refs(self) -> list[str]:
        with self._lock:
            return sorted(self._refs)

    def adopt(self, ref: str, path: str | os.PathLike[str]) -> str:
        """Register an existing ``.ptrj`` file under *ref*."""
        with self._lock:
            self._refs[ref] = os.fspath(path)
            return ref

    def close(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
        with self._lock:
            self._refs.clear()

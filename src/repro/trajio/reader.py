"""Random-access reader for PTRJ binary trajectories.

Opening a file reads only the header and the footer index; fetching
frame *i* is a binary search over the index plus one chunk decode —
O(chunk), never O(file).  The last decoded chunk is cached, so
sequential iteration decodes each chunk exactly once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro import obs
from repro.errors import IOFormatError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell
from repro.trajio import format as fmt


@dataclass
class TrajFrame:
    """One decoded frame, cheap arrays plus scalar metadata."""

    step: int
    time_fs: float
    epot: float
    ekin: float
    temperature: float
    positions: np.ndarray            # (natoms, 3) f64
    cell: Cell
    velocities: np.ndarray | None    # (natoms, 3) f64 or None

    def to_atoms(self, symbols: list[str]) -> Atoms:
        return Atoms(symbols, self.positions, cell=self.cell,
                     velocities=self.velocities)


class TrajectoryReader:
    """Read a ``.ptrj`` file written by :class:`~repro.trajio.writer.TrajectoryWriter`."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._fh: Any = open(self.path, "rb")
        try:
            self.header = fmt.read_header(self._fh)
            size = os.fstat(self._fh.fileno()).st_size
            (self._offsets, self._firsts, self._counts,
             self._total) = fmt.read_index(self._fh, size)
        except Exception:
            self._fh.close()
            raise
        self._cached_chunk: int = -1
        self._cached_data: fmt.ChunkData | None = None

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "TrajectoryReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- metadata ------------------------------------------------------------
    def __len__(self) -> int:
        return self._total

    @property
    def symbols(self) -> list[str]:
        return list(self.header.symbols)

    @property
    def natoms(self) -> int:
        return self.header.natoms

    @property
    def has_velocities(self) -> bool:
        return self.header.has_velocities

    @property
    def nchunks(self) -> int:
        return len(self._offsets)

    # -- access --------------------------------------------------------------
    def _chunk_of(self, frame: int) -> int:
        return int(np.searchsorted(self._firsts, frame, side="right")) - 1

    def _load_chunk(self, k: int) -> fmt.ChunkData:
        if k == self._cached_chunk and self._cached_data is not None:
            return self._cached_data
        if self._fh is None:
            raise IOFormatError(f"trajectory reader {self.path} is closed")
        with obs.span("trajio.read_chunk") as sp:
            nf = int(self._counts[k])
            self._fh.seek(int(self._offsets[k]))
            prelude = self._fh.read(fmt.chunk_prelude_size())
            if len(prelude) < fmt.chunk_prelude_size():
                raise IOFormatError("truncated PTRJ chunk: missing prelude")
            stored_len = int(np.frombuffer(prelude[:4], dtype="<u4")[0])
            record = prelude + self._fh.read(stored_len)
            data = fmt.decode_chunk(self.header, record, nf)
            sp.set(chunk=k, frames=nf)
        obs.counter_inc("trajio.chunk_reads")
        self._cached_chunk, self._cached_data = k, data
        return data

    def read(self, i: int) -> TrajFrame:
        """Frame *i* (supports negative indices)."""
        if i < 0:
            i += self._total
        if not 0 <= i < self._total:
            raise IndexError(
                f"frame {i} out of range for trajectory of {self._total}")
        k = self._chunk_of(i)
        data = self._load_chunk(k)
        j = i - int(self._firsts[k])
        obs.counter_inc("trajio.frames_read")
        return TrajFrame(
            step=int(data.steps[j]), time_fs=float(data.times[j]),
            epot=float(data.epots[j]), ekin=float(data.ekins[j]),
            temperature=float(data.temperatures[j]),
            positions=data.positions[j],
            cell=Cell(data.cells[j], pbc=data.pbcs[j]),
            velocities=None if data.velocities is None
            else data.velocities[j])

    def __getitem__(self, i: int) -> TrajFrame:
        return self.read(i)

    def atoms_at(self, i: int) -> Atoms:
        return self.read(i).to_atoms(self.symbols)

    def iter_frames(self, start: int = 0, stop: int | None = None,
                    stride: int = 1) -> Iterator[TrajFrame]:
        """Stream frames ``start:stop:stride`` (chunk cache makes this
        a single decode per chunk)."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        stop_ = self._total if stop is None else min(int(stop), self._total)
        for i in range(int(start), stop_, int(stride)):
            yield self.read(i)

    def __iter__(self) -> Iterator[TrajFrame]:
        return self.iter_frames()

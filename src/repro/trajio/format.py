"""On-disk layout of the PTRJ chunked binary trajectory format.

This module is the *seam*: every byte that reaches or leaves a ``.ptrj``
file is packed or parsed here, so the writer and reader cannot drift
apart.  The layout (full spec in ``docs/trajectories.md``)::

    [magic "PTRJ"][version u16][flags u16][header_len u32][header JSON]
    [chunk 0][chunk 1] ... [chunk K-1]
    [index: K x (offset u64, first_frame u64, nframes u32)]
    [footer: index_offset u64, total_frames u64, nchunks u32, "PTRJIDX\\n"]

Each chunk stores a float64 **keyframe** (the positions of its first
frame) followed by column-major per-frame arrays: step/time/energies/
temperature and the 3x3 cell as float64, pbc flags as u8, positions as
float32 **deltas** off the keyframe, and (optionally) velocities at a
configurable dtype.  A chunk's raw payload may be byte-shuffled (deltas
only) and zlib-compressed; a CRC32 over the stored bytes detects
corruption.  The footer index gives O(1) random access: locating frame
*i* is a binary search over ``first_frame``, and reading it decodes one
chunk, never the whole file.

Why deltas are safe: a float32 carries a 24-bit mantissa, so the
rounding error of ``pos - keyframe`` is at most ``|delta| * 2**-24``.
The writer cuts a new chunk whenever the reconstruction error of a
frame would exceed ``pos_tol`` (1e-6 Å by default, reached only once
atoms drift ~16 Å from the keyframe), so the bound holds for *any*
trajectory, including melts.

Everything raises :class:`~repro.errors.IOFormatError` on malformed
input — a truncated or corrupt file must never decode to partial
garbage.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO

import numpy as np

from repro.errors import IOFormatError

#: leading file magic (followed by version/flags/header_len)
MAGIC: bytes = b"PTRJ"
#: trailing footer magic — its absence means a truncated file
END_MAGIC: bytes = b"PTRJIDX\n"
#: format version written by this library
VERSION: int = 1

#: header flag bits
FLAG_ZLIB: int = 1       #: chunk payloads are zlib-compressed
FLAG_SHUFFLE: int = 2    #: the delta block is byte-plane shuffled
FLAG_VEL: int = 4        #: per-frame velocities are stored

_PRELUDE = struct.Struct("<4sHHI")       # magic, version, flags, header_len
_CHUNK_PRELUDE = struct.Struct("<III")   # stored_len, raw_len, crc32
_INDEX_ENTRY = struct.Struct("<QQI")     # offset, first_frame, nframes
_FOOTER = struct.Struct("<QQI8s")        # index_offset, total, K, magic

#: velocity dtypes a header may declare (``None`` = not stored)
VEL_DTYPES: tuple[str, ...] = ("f8", "f4")


@dataclass(frozen=True)
class Header:
    """Decoded file header: topology plus codec parameters."""

    symbols: tuple[str, ...]
    flags: int
    chunk_frames: int
    vel_dtype: str | None
    compression: int
    pos_tol: float
    version: int = VERSION

    @property
    def natoms(self) -> int:
        return len(self.symbols)

    @property
    def has_velocities(self) -> bool:
        return bool(self.flags & FLAG_VEL)

    def raw_chunk_size(self, nframes: int) -> int:
        """Exact byte length of an uncompressed chunk payload."""
        n = self.natoms
        size = 24 * n                       # keyframe, f64
        size += nframes * (5 * 8 + 72 + 3)  # step/time/epot/ekin/T, cell, pbc
        size += nframes * n * 12            # position deltas, f32
        if self.has_velocities:
            itemsize = 8 if self.vel_dtype == "f8" else 4
            size += nframes * n * 3 * itemsize
        return size


@dataclass
class ChunkData:
    """One decoded chunk: column-major per-frame arrays.

    ``positions`` is the reconstructed ``(nframes, natoms, 3)`` float64
    stack (keyframe + deltas already applied); ``velocities`` is ``None``
    when the file stores none.
    """

    keyframe: np.ndarray        # (natoms, 3) f64
    steps: np.ndarray           # (nframes,) i64
    times: np.ndarray           # (nframes,) f64
    epots: np.ndarray           # (nframes,) f64
    ekins: np.ndarray           # (nframes,) f64
    temperatures: np.ndarray    # (nframes,) f64
    cells: np.ndarray           # (nframes, 3, 3) f64
    pbcs: np.ndarray            # (nframes, 3) bool
    positions: np.ndarray       # (nframes, natoms, 3) f64
    velocities: np.ndarray | None   # (nframes, natoms, 3) f64 or None

    @property
    def nframes(self) -> int:
        return len(self.steps)


def make_header(symbols: list[str] | tuple[str, ...], *,
                chunk_frames: int, vel_dtype: str | None,
                compression: int, shuffle: bool,
                pos_tol: float) -> Header:
    """Validated :class:`Header` from writer parameters."""
    if chunk_frames < 1:
        raise IOFormatError(f"chunk_frames must be >= 1, got {chunk_frames}")
    if vel_dtype is not None and vel_dtype not in VEL_DTYPES:
        raise IOFormatError(
            f"vel_dtype must be one of {VEL_DTYPES} or None, "
            f"got {vel_dtype!r}")
    if not 0 <= compression <= 9:
        raise IOFormatError(
            f"compression must be a zlib level 0..9, got {compression}")
    flags = 0
    if compression:
        flags |= FLAG_ZLIB
    if shuffle:
        flags |= FLAG_SHUFFLE
    if vel_dtype is not None:
        flags |= FLAG_VEL
    return Header(symbols=tuple(str(s) for s in symbols), flags=flags,
                  chunk_frames=int(chunk_frames), vel_dtype=vel_dtype,
                  compression=int(compression), pos_tol=float(pos_tol))


def pack_header(header: Header) -> bytes:
    """Header → the leading bytes of a ``.ptrj`` file."""
    meta = {"symbols": list(header.symbols),
            "chunk_frames": header.chunk_frames,
            "vel_dtype": header.vel_dtype,
            "compression": header.compression,
            "pos_tol": header.pos_tol}
    blob = json.dumps(meta, separators=(",", ":")).encode()
    return _PRELUDE.pack(MAGIC, header.version, header.flags,
                         len(blob)) + blob


def read_header(fh: BinaryIO) -> Header:
    """Parse the leading header from an open binary stream."""
    prelude = fh.read(_PRELUDE.size)
    if len(prelude) < _PRELUDE.size:
        raise IOFormatError("not a PTRJ trajectory: file too short")
    magic, version, flags, header_len = _PRELUDE.unpack(prelude)
    if magic != MAGIC:
        raise IOFormatError(
            f"not a PTRJ trajectory: bad magic {magic!r}")
    if version != VERSION:
        raise IOFormatError(
            f"unsupported PTRJ version {version} (supported: {VERSION})")
    blob = fh.read(header_len)
    if len(blob) < header_len:
        raise IOFormatError("truncated PTRJ header")
    try:
        meta = json.loads(blob)
    except ValueError as exc:
        raise IOFormatError(f"corrupt PTRJ header JSON: {exc}") from exc
    try:
        header = Header(symbols=tuple(str(s) for s in meta["symbols"]),
                        flags=int(flags),
                        chunk_frames=int(meta["chunk_frames"]),
                        vel_dtype=meta.get("vel_dtype"),
                        compression=int(meta.get("compression", 0)),
                        pos_tol=float(meta.get("pos_tol", 1e-6)),
                        version=int(version))
    except (KeyError, TypeError, ValueError) as exc:
        raise IOFormatError(f"corrupt PTRJ header fields: {exc}") from exc
    if header.has_velocities and header.vel_dtype not in VEL_DTYPES:
        raise IOFormatError(
            f"PTRJ header declares velocities with bad dtype "
            f"{header.vel_dtype!r}")
    return header


def header_size(header: Header) -> int:
    """Byte offset of the first chunk (== length of the packed header)."""
    return len(pack_header(header))


# -- byte-plane shuffle ------------------------------------------------------
def byte_shuffle(data: bytes, itemsize: int) -> bytes:
    """Group the k-th byte of every item together (Blosc-style shuffle).

    Float32 deltas of thermal motion share sign/exponent bytes across
    atoms; regrouping them into contiguous planes is what lets zlib
    actually compress an otherwise noise-dominated block.
    """
    if len(data) % itemsize:
        raise IOFormatError(
            f"shuffle block length {len(data)} is not a multiple of "
            f"itemsize {itemsize}")
    arr = np.frombuffer(data, dtype=np.uint8).reshape(-1, itemsize)
    return arr.T.tobytes()


def byte_unshuffle(data: bytes, itemsize: int) -> bytes:
    """Inverse of :func:`byte_shuffle`."""
    if len(data) % itemsize:
        raise IOFormatError(
            f"shuffle block length {len(data)} is not a multiple of "
            f"itemsize {itemsize}")
    arr = np.frombuffer(data, dtype=np.uint8).reshape(itemsize, -1)
    return arr.T.tobytes()


# -- chunk codec -------------------------------------------------------------
def encode_chunk(header: Header, keyframe: np.ndarray,
                 steps: np.ndarray, times: np.ndarray,
                 epots: np.ndarray, ekins: np.ndarray,
                 temperatures: np.ndarray, cells: np.ndarray,
                 pbcs: np.ndarray, deltas: np.ndarray,
                 velocities: np.ndarray | None) -> bytes:
    """Column arrays → one on-disk chunk record (prelude + payload).

    *deltas* is the ``(nframes, natoms, 3)`` float32 block of
    ``positions - keyframe``; the caller (the writer) is responsible for
    having enforced the ``pos_tol`` reconstruction bound.
    """
    parts = [np.ascontiguousarray(keyframe, dtype="<f8").tobytes(),
             np.ascontiguousarray(steps, dtype="<i8").tobytes(),
             np.ascontiguousarray(times, dtype="<f8").tobytes(),
             np.ascontiguousarray(epots, dtype="<f8").tobytes(),
             np.ascontiguousarray(ekins, dtype="<f8").tobytes(),
             np.ascontiguousarray(temperatures, dtype="<f8").tobytes(),
             np.ascontiguousarray(cells, dtype="<f8").tobytes(),
             np.ascontiguousarray(pbcs, dtype="u1").tobytes()]
    delta_bytes = np.ascontiguousarray(deltas, dtype="<f4").tobytes()
    if header.flags & FLAG_SHUFFLE:
        delta_bytes = byte_shuffle(delta_bytes, 4)
    parts.append(delta_bytes)
    if header.has_velocities:
        if velocities is None:
            raise IOFormatError(
                "header declares velocities but the chunk has none")
        parts.append(np.ascontiguousarray(
            velocities, dtype="<" + str(header.vel_dtype)).tobytes())
    raw = b"".join(parts)
    expected = header.raw_chunk_size(len(steps))
    if len(raw) != expected:
        raise IOFormatError(
            f"internal chunk layout error: {len(raw)} bytes encoded, "
            f"layout says {expected}")
    stored = zlib.compress(raw, header.compression) \
        if header.flags & FLAG_ZLIB else raw
    crc = zlib.crc32(stored) & 0xFFFFFFFF
    return _CHUNK_PRELUDE.pack(len(stored), len(raw), crc) + stored


def chunk_prelude_size() -> int:
    """Bytes of the per-chunk ``(stored_len, raw_len, crc)`` prelude."""
    return _CHUNK_PRELUDE.size


def decode_chunk(header: Header, record: bytes, nframes: int) -> ChunkData:
    """One on-disk chunk record → :class:`ChunkData` (CRC verified)."""
    if len(record) < _CHUNK_PRELUDE.size:
        raise IOFormatError("truncated PTRJ chunk: missing prelude")
    stored_len, raw_len, crc = _CHUNK_PRELUDE.unpack_from(record)
    stored = record[_CHUNK_PRELUDE.size:_CHUNK_PRELUDE.size + stored_len]
    if len(stored) < stored_len:
        raise IOFormatError(
            f"truncated PTRJ chunk: {len(stored)} of {stored_len} "
            f"payload bytes present")
    if zlib.crc32(stored) & 0xFFFFFFFF != crc:
        raise IOFormatError("corrupt PTRJ chunk: CRC32 mismatch")
    if header.flags & FLAG_ZLIB:
        try:
            raw = zlib.decompress(stored)
        except zlib.error as exc:
            raise IOFormatError(
                f"corrupt PTRJ chunk: zlib decode failed: {exc}") from exc
    else:
        raw = stored
    if len(raw) != raw_len or raw_len != header.raw_chunk_size(nframes):
        raise IOFormatError(
            f"corrupt PTRJ chunk: payload is {len(raw)} bytes, header "
            f"layout expects {header.raw_chunk_size(nframes)}")
    n = header.natoms
    off = 0

    def take(count: int, dtype: str) -> np.ndarray:
        nonlocal off
        itemsize = np.dtype(dtype).itemsize
        out = np.frombuffer(raw, dtype=dtype, count=count, offset=off)
        off += count * itemsize
        return out

    keyframe = take(3 * n, "<f8").reshape(n, 3)
    steps = take(nframes, "<i8")
    times = take(nframes, "<f8")
    epots = take(nframes, "<f8")
    ekins = take(nframes, "<f8")
    temperatures = take(nframes, "<f8")
    cells = take(9 * nframes, "<f8").reshape(nframes, 3, 3)
    pbcs = take(3 * nframes, "u1").reshape(nframes, 3).astype(bool)
    delta_bytes = raw[off:off + 12 * n * nframes]
    off += 12 * n * nframes
    if header.flags & FLAG_SHUFFLE:
        delta_bytes = byte_unshuffle(delta_bytes, 4)
    deltas = np.frombuffer(delta_bytes, dtype="<f4").reshape(nframes, n, 3)
    positions = keyframe[None, :, :] + deltas.astype(np.float64)
    velocities: np.ndarray | None = None
    if header.has_velocities:
        vel_dtype = "<" + str(header.vel_dtype)
        count = 3 * n * nframes
        velocities = take(count, vel_dtype).reshape(
            nframes, n, 3).astype(np.float64)
    return ChunkData(keyframe=keyframe, steps=steps, times=times,
                     epots=epots, ekins=ekins, temperatures=temperatures,
                     cells=cells, pbcs=pbcs, positions=positions,
                     velocities=velocities)


# -- index / footer ----------------------------------------------------------
def pack_index(entries: list[tuple[int, int, int]],
               total_frames: int) -> bytes:
    """Chunk table → the trailing index + footer bytes.

    *entries* are ``(file_offset, first_frame, nframes)`` per chunk; the
    footer records where the index starts so a reader can seek straight
    to it from the end of the file.
    """
    body = b"".join(_INDEX_ENTRY.pack(*e) for e in entries)
    return body + _FOOTER.pack(0, total_frames, len(entries), END_MAGIC)


def read_index(fh: BinaryIO, file_size: int
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Footer + index from an open stream.

    Returns ``(offsets, first_frames, nframes_per_chunk, total_frames)``
    as arrays sorted in file order.  Raises
    :class:`~repro.errors.IOFormatError` when the footer is missing or
    inconsistent — the signature of a truncated write.
    """
    if file_size < _FOOTER.size:
        raise IOFormatError(
            "truncated PTRJ file: no footer (writer not closed?)")
    fh.seek(file_size - _FOOTER.size)
    footer = fh.read(_FOOTER.size)
    if len(footer) < _FOOTER.size:
        raise IOFormatError("truncated PTRJ footer")
    _, total_frames, nchunks, magic = _FOOTER.unpack(footer)
    if magic != END_MAGIC:
        raise IOFormatError(
            "truncated or corrupt PTRJ file: footer magic missing "
            "(writer not closed, or file cut short)")
    index_size = nchunks * _INDEX_ENTRY.size
    index_offset = file_size - _FOOTER.size - index_size
    if index_offset < 0:
        raise IOFormatError(
            f"corrupt PTRJ footer: {nchunks} chunks do not fit the file")
    fh.seek(index_offset)
    body = fh.read(index_size)
    if len(body) < index_size:
        raise IOFormatError("truncated PTRJ index")
    offsets = np.empty(nchunks, dtype=np.int64)
    firsts = np.empty(nchunks, dtype=np.int64)
    counts = np.empty(nchunks, dtype=np.int64)
    for k in range(nchunks):
        off, first, nf = _INDEX_ENTRY.unpack_from(body,
                                                  k * _INDEX_ENTRY.size)
        offsets[k], firsts[k], counts[k] = off, first, nf
    if int(counts.sum()) != total_frames:
        raise IOFormatError(
            f"corrupt PTRJ index: chunk frame counts sum to "
            f"{int(counts.sum())}, footer says {total_frames}")
    if nchunks and (np.any(np.diff(firsts) <= 0)
                    or firsts[0] != 0
                    or np.any(firsts + counts
                              != np.append(firsts[1:], total_frames))):
        raise IOFormatError("corrupt PTRJ index: frame ranges not "
                            "contiguous")
    return offsets, firsts, counts, int(total_frames)

"""Neighbour finding: brute-force (image-complete), linked cells, Verlet skin."""

from repro.neighbors.base import NeighborList, neighbor_list
from repro.neighbors.brute import brute_force_neighbors
from repro.neighbors.celllist import cell_list_neighbors
from repro.neighbors.verlet import VerletList

__all__ = [
    "NeighborList",
    "neighbor_list",
    "brute_force_neighbors",
    "cell_list_neighbors",
    "VerletList",
]

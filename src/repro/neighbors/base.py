"""Neighbour-list representation and the dispatching front-end.

Half-list convention
--------------------
A :class:`NeighborList` stores each *bond* exactly once:

* pairs with ``i < j`` for any periodic translation ``T``;
* self-image pairs ``i == j`` with ``T`` in the lexicographically positive
  half-space (a single atom in a periodic cell bonds to its own images).

``vectors[p] = r[j] + T − r[i]`` points from atom *i* to the bonded image of
atom *j*.  The :meth:`NeighborList.full` expansion duplicates every bond in
both directions, which is what per-atom accumulation loops want.

This convention makes energy sums ``Σ_pairs`` direct (no double counting)
and keeps the Hamiltonian builder simple: each half-pair contributes a
block and its transpose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NeighborError


@dataclass(frozen=True)
class NeighborList:
    """Immutable half neighbour list.

    Attributes
    ----------
    i, j :
        (P,) int arrays of atom indices (``i <= j``; equality only for
        periodic self-images).
    vectors :
        (P, 3) bond vectors ``r_j + T − r_i`` in Å.
    distances :
        (P,) bond lengths in Å.
    rcut :
        The cutoff the list was built for.
    natoms :
        Number of atoms in the parent structure.
    """

    i: np.ndarray
    j: np.ndarray
    vectors: np.ndarray
    distances: np.ndarray
    rcut: float
    natoms: int

    def __post_init__(self):
        if not (len(self.i) == len(self.j) == len(self.vectors)
                == len(self.distances)):
            raise NeighborError("inconsistent neighbour-list array lengths")

    @property
    def n_pairs(self) -> int:
        """Number of unique bonds."""
        return len(self.i)

    def full(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Expand to a full (directed) list.

        Returns ``(fi, fj, fvec, fdist)`` where every bond appears twice,
        once in each direction (self-image bonds appear as both ``+T`` and
        ``−T``).
        """
        fi = np.concatenate([self.i, self.j])
        fj = np.concatenate([self.j, self.i])
        fvec = np.concatenate([self.vectors, -self.vectors])
        fdist = np.concatenate([self.distances, self.distances])
        return fi, fj, fvec, fdist

    def coordination(self) -> np.ndarray:
        """Per-atom bond count (each bond counts for both ends)."""
        counts = np.zeros(self.natoms, dtype=int)
        np.add.at(counts, self.i, 1)
        np.add.at(counts, self.j, 1)
        return counts

    def neighbors_of(self, atom: int) -> np.ndarray:
        """Indices of atoms bonded to *atom* (with multiplicity)."""
        fi, fj, _, _ = self.full()
        return fj[fi == atom]

    def neighbors_by_atom(self) -> list[np.ndarray]:
        """Per-atom arrays of *unique* bonded atom indices.

        One pass over the full (directed) list instead of N calls to
        :meth:`neighbors_of`; periodic image multiplicity is collapsed, so
        ``out[a]`` is exactly the set of atoms within ``rcut`` of *a* (an
        atom bonded only to its own images contributes itself).  This is
        the graph the localization-region extraction consumes.
        """
        fi, fj, _, _ = self.full()
        order = np.argsort(fi, kind="stable")
        fi_s, fj_s = fi[order], fj[order]
        starts = np.searchsorted(fi_s, np.arange(self.natoms + 1))
        return [np.unique(fj_s[starts[a]:starts[a + 1]])
                for a in range(self.natoms)]

    def max_distance(self) -> float:
        return float(self.distances.max()) if self.n_pairs else 0.0


def empty_neighbor_list(natoms: int, rcut: float) -> NeighborList:
    """A neighbour list with no bonds (isolated atoms)."""
    return NeighborList(
        i=np.zeros(0, dtype=int),
        j=np.zeros(0, dtype=int),
        vectors=np.zeros((0, 3)),
        distances=np.zeros(0),
        rcut=float(rcut),
        natoms=natoms,
    )


def neighbor_list(atoms, rcut: float, method: str = "auto") -> NeighborList:
    """Build a half neighbour list for *atoms* within *rcut*.

    ``method``:

    * ``"brute"`` — O(N²·images); always correct, any cell size.
    * ``"cell"``  — linked cells, O(N); requires the cutoff to fit within
      half the smallest periodic cell width (falls back to brute otherwise
      when method="auto").
    * ``"auto"``  — cell list when admissible and N is large enough to pay
      off, brute force otherwise.
    """
    from repro.neighbors.brute import brute_force_neighbors
    from repro.neighbors.celllist import cell_list_admissible, cell_list_neighbors

    if rcut <= 0:
        raise NeighborError(f"rcut must be > 0, got {rcut}")
    if method == "brute":
        return brute_force_neighbors(atoms, rcut)
    if method == "cell":
        return cell_list_neighbors(atoms, rcut)
    if method == "auto":
        if len(atoms) >= 250 and cell_list_admissible(atoms, rcut):
            return cell_list_neighbors(atoms, rcut)
        return brute_force_neighbors(atoms, rcut)
    raise NeighborError(f"unknown neighbour method {method!r}")

"""Linked-cell (binning) neighbour search — O(N) for large systems.

Valid when the cutoff fits within half the smallest periodic cell width
(the minimum-image regime, ≥3 bins per periodic axis); the dispatcher falls
back to :mod:`repro.neighbors.brute` otherwise.  Produces the same half-list
convention as the brute-force builder and is cross-validated against it in
the test suite.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import NeighborError
from repro.neighbors.base import NeighborList, empty_neighbor_list


def cell_list_admissible(atoms, rcut: float) -> bool:
    """True if the linked-cell algorithm is valid for this cell + cutoff."""
    cell = atoms.cell
    widths = cell.perpendicular_widths()
    return not any(cell.pbc[k] and int(widths[k] / rcut) < 3
                   for k in range(3))


# Half of the 26 neighbour offsets (lexicographically positive), so each
# bin pair is visited exactly once.
_HALF_OFFSETS = [off for off in itertools.product((-1, 0, 1), repeat=3)
                 if off > (0, 0, 0)]


def cell_list_neighbors(atoms, rcut: float) -> NeighborList:
    """Half neighbour list via spatial binning."""
    n = len(atoms)
    if n == 0:
        return empty_neighbor_list(0, rcut)
    cell = atoms.cell
    if not cell_list_admissible(atoms, rcut):
        raise NeighborError(
            "cell list inadmissible: cutoff exceeds one third of a periodic "
            "cell width; use the brute-force builder"
        )

    pos = cell.wrap(atoms.positions) if cell.periodic else atoms.positions.copy()
    h = cell.matrix
    widths = cell.perpendicular_widths()

    # Bin geometry: fractional binning along periodic axes, bounding-box
    # binning along free axes.
    nbins = np.empty(3, dtype=int)
    origin = np.zeros(3)
    frac = (cell.fractional(pos) if cell.periodic
            else None)
    coords = np.empty((n, 3))
    span = np.empty(3)
    for k in range(3):
        if cell.pbc[k]:
            nbins[k] = max(3, int(widths[k] / rcut))
            coords[:, k] = frac[:, k] % 1.0
            span[k] = 1.0
        else:
            lo = pos[:, k].min()
            hi = pos[:, k].max()
            ext = max(hi - lo, 1e-9)
            # bin width >= rcut in real space along this axis
            nbins[k] = max(1, int(ext / rcut))
            coords[:, k] = pos[:, k] - lo
            origin[k] = lo
            span[k] = ext * (1.0 + 1e-12)

    bin_idx = np.minimum((coords / span * nbins).astype(int), nbins - 1)
    flat = (bin_idx[:, 0] * nbins[1] + bin_idx[:, 1]) * nbins[2] + bin_idx[:, 2]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    # start offsets of each occupied bin in `order`
    boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(order)]))
    occupied = sorted_flat[starts]
    bin_members = {int(b): order[s:e] for b, s, e in zip(occupied, starts, ends)}

    rcut2 = rcut * rcut
    out_i, out_j, out_v = [], [], []

    def unflatten(b):
        b0, rem = divmod(b, nbins[1] * nbins[2])
        b1, b2 = divmod(rem, nbins[2])
        return np.array([b0, b1, b2])

    for b, members in bin_members.items():
        cidx = unflatten(b)
        # intra-bin pairs
        if len(members) > 1:
            ia, ja = np.triu_indices(len(members), k=1)
            ai, aj = members[ia], members[ja]
            disp = pos[aj] - pos[ai]
            d2 = np.einsum("ij,ij->i", disp, disp)
            m = d2 <= rcut2
            if m.any():
                out_i.append(np.minimum(ai[m], aj[m]))
                out_j.append(np.maximum(ai[m], aj[m]))
                sign = np.where(ai[m] <= aj[m], 1.0, -1.0)
                out_v.append(disp[m] * sign[:, None])
        # inter-bin pairs (half offsets)
        for off in _HALF_OFFSETS:
            nidx = cidx + np.asarray(off)
            shift = np.zeros(3)
            ok = True
            for k in range(3):
                if cell.pbc[k]:
                    w, nidx[k] = divmod(nidx[k], nbins[k])
                    shift += w * h[k]
                elif not (0 <= nidx[k] < nbins[k]):
                    ok = False
                    break
            if not ok:
                continue
            nb = (nidx[0] * nbins[1] + nidx[1]) * nbins[2] + nidx[2]
            others = bin_members.get(int(nb))
            if others is None:
                continue
            disp = (pos[others][None, :, :] + shift
                    - pos[members][:, None, :])            # (A, B, 3)
            d2 = np.einsum("abk,abk->ab", disp, disp)
            am, bm = np.nonzero(d2 <= rcut2)
            if len(am):
                ai = members[am]
                aj = others[bm]
                v = disp[am, bm]
                swap = ai > aj
                ai2 = np.where(swap, aj, ai)
                aj2 = np.where(swap, ai, aj)
                v = np.where(swap[:, None], -v, v)
                out_i.append(ai2)
                out_j.append(aj2)
                out_v.append(v)

    if not out_i:
        return empty_neighbor_list(n, rcut)
    i = np.concatenate(out_i)
    j = np.concatenate(out_j)
    v = np.vstack(out_v)
    d = np.linalg.norm(v, axis=1)
    srt = np.lexsort((d, j, i))
    return NeighborList(i=i[srt], j=j[srt], vectors=v[srt], distances=d[srt],
                        rcut=float(rcut), natoms=n)

"""Brute-force neighbour search with complete periodic-image enumeration.

O(N² · n_images) but *always correct*, including the small-supercell regime
where the interaction cutoff exceeds half the box (an 8-atom diamond cell
with a 3.7 Å TB cutoff couples to dozens of images).  This is the reference
implementation the cell list is validated against.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.base import NeighborList, empty_neighbor_list


def _lex_positive(t: np.ndarray) -> np.ndarray:
    """Boolean mask of rows that are lexicographically > 0."""
    gt = np.zeros(len(t), dtype=bool)
    decided = np.zeros(len(t), dtype=bool)
    for k in range(t.shape[1]):
        col = t[:, k]
        gt |= (~decided) & (col > 1e-12)
        decided |= np.abs(col) > 1e-12
    return gt


def brute_force_neighbors(atoms, rcut: float) -> NeighborList:
    """Half neighbour list via direct distance evaluation over all images."""
    pos = atoms.positions
    n = len(pos)
    if n == 0:
        return empty_neighbor_list(0, rcut)
    cell = atoms.cell

    if cell.periodic:
        # Work with wrapped coordinates so the translation bound below holds.
        pos = cell.wrap(pos)
        diam = float(cell.lengths[np.asarray(cell.pbc)].sum()) + 1e-9
        translations = cell.translations_within(rcut, dmax=diam)
    else:
        translations = np.zeros((1, 3))

    rcut2 = rcut * rcut
    out_i, out_j, out_v = [], [], []

    iu, ju = np.triu_indices(n, k=1)
    for t in translations:
        disp = pos[ju] + t - pos[iu]                      # (n(n-1)/2, 3)
        d2 = np.einsum("ij,ij->i", disp, disp)
        mask = d2 <= rcut2
        if mask.any():
            out_i.append(iu[mask])
            out_j.append(ju[mask])
            out_v.append(disp[mask])

    # Self-image bonds: i == j, T lexicographically positive.
    if len(translations) > 1:
        ts = translations[1:]
        keep = _lex_positive(ts)
        ts = ts[keep]
        if len(ts):
            d2 = np.einsum("ij,ij->i", ts, ts)
            ts = ts[d2 <= rcut2]
            for t in ts:
                idx = np.arange(n)
                out_i.append(idx)
                out_j.append(idx)
                out_v.append(np.broadcast_to(t, (n, 3)).copy())

    if not out_i:
        return empty_neighbor_list(n, rcut)

    i = np.concatenate(out_i)
    j = np.concatenate(out_j)
    v = np.vstack(out_v)
    d = np.linalg.norm(v, axis=1)
    order = np.lexsort((d, j, i))   # deterministic ordering
    return NeighborList(i=i[order], j=j[order], vectors=v[order],
                        distances=d[order], rcut=float(rcut), natoms=n)

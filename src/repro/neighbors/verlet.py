"""Verlet (skin) neighbour list with automatic rebuild.

MD codes of the TBMD era avoided rebuilding the neighbour list every step
by searching to ``rcut + skin`` and reusing the list until any atom has
moved more than ``skin/2`` since the last build — the classic sufficient
condition for no bond to have entered the true cutoff unseen.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NeighborError
from repro.neighbors.base import NeighborList, neighbor_list


class VerletList:
    """Stateful skin list around :func:`repro.neighbors.neighbor_list`.

    Parameters
    ----------
    rcut :
        Physical interaction cutoff (Å).
    skin :
        Extra search margin (Å); larger skins rebuild less often but return
        more candidate pairs.
    method :
        Underlying builder ("auto" / "brute" / "cell").

    Usage
    -----
    >>> vl = VerletList(rcut=3.7, skin=0.5)
    >>> nl = vl.update(atoms)         # rebuilds only when needed
    """

    def __init__(self, rcut: float, skin: float = 0.5, method: str = "auto"):
        if rcut <= 0:
            raise NeighborError("rcut must be > 0")
        if skin < 0:
            raise NeighborError("skin must be >= 0")
        self.rcut = float(rcut)
        self.skin = float(skin)
        self.method = method
        self._list: NeighborList | None = None
        self._ref_positions: np.ndarray | None = None
        self.n_builds = 0
        self.n_updates = 0

    def needs_rebuild(self, atoms) -> bool:
        """True when any atom has drifted > skin/2 since the last build."""
        if self._list is None or self._ref_positions is None:
            return True
        if len(atoms) != len(self._ref_positions):
            return True
        disp = atoms.positions - self._ref_positions
        # Displacements are physical (unwrapped MD trajectories); no MIC.
        max_disp2 = float(np.max(np.einsum("ij,ij->i", disp, disp)))
        return max_disp2 > (0.5 * self.skin) ** 2

    def update(self, atoms) -> NeighborList:
        """Return a current neighbour list, rebuilding if necessary.

        The returned list is built with cutoff ``rcut + skin`` and then
        *filtered* to the true cutoff using current positions, so distances
        and vectors are always exact for the present configuration.
        """
        self.n_updates += 1
        if self.needs_rebuild(atoms):
            self._full = neighbor_list(atoms, self.rcut + self.skin,
                                       method=self.method)
            self._ref_positions = atoms.positions.copy()
            self.n_builds += 1
            self._list = self._filter(self._full, atoms)
        else:
            self._list = self._refresh(self._full, atoms)
        return self._list

    def _refresh(self, skin_list: NeighborList, atoms) -> NeighborList:
        """Recompute bond vectors for current positions, then filter."""
        disp = atoms.positions - self._ref_positions
        vec = skin_list.vectors + disp[skin_list.j] - disp[skin_list.i]
        dist = np.linalg.norm(vec, axis=1)
        refreshed = NeighborList(i=skin_list.i, j=skin_list.j, vectors=vec,
                                 distances=dist, rcut=skin_list.rcut,
                                 natoms=skin_list.natoms)
        return self._filter(refreshed, atoms)

    def _filter(self, nl: NeighborList, atoms) -> NeighborList:
        mask = nl.distances <= self.rcut
        return NeighborList(i=nl.i[mask], j=nl.j[mask],
                            vectors=nl.vectors[mask],
                            distances=nl.distances[mask],
                            rcut=self.rcut, natoms=len(atoms))

"""Verlet (skin) neighbour list with automatic rebuild.

MD codes of the TBMD era avoided rebuilding the neighbour list every step
by searching to ``rcut + skin`` and reusing the list until any atom has
moved more than ``skin/2`` since the last build — the classic sufficient
condition for no bond to have entered the true cutoff unseen.

This implementation additionally survives *cell* changes (NPT, cell
relaxation) without rebuilding every step: at build time each cached
pair's integer periodic-image shift ``S`` is recovered, so a refresh can
recompute every bond vector **exactly** as ``r_j − r_i + S·h`` for the
current positions *and* current lattice vectors ``h``.  The rebuild
criterion then combines atomic drift with a conservative bound on the
image displacement induced by the accumulated cell change.  Reusing a
skin list across a cell change *without* remapping is the classic silent
stale-neighbour-list bug (image bond vectors frozen at the old lattice);
when the shifts cannot be recovered (exotic singular cells) any cell
change forces a rebuild instead.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import NeighborError
from repro.neighbors.base import NeighborList, neighbor_list

#: every classified rebuild trigger (see :meth:`VerletList.rebuild_cause`)
REBUILD_CAUSES = ("init", "resize", "cell-unmappable", "drift", "strain")

#: fixed per-cause counter names (the telemetry-catalog lint rule bans
#: runtime-built metric names; the CI gates key on these literals)
_REBUILD_COUNTERS = {
    "init": "neighbors.rebuild.init",
    "resize": "neighbors.rebuild.resize",
    "cell-unmappable": "neighbors.rebuild.cell-unmappable",
    "drift": "neighbors.rebuild.drift",
    "strain": "neighbors.rebuild.strain",
}


class VerletList:
    """Stateful skin list around :func:`repro.neighbors.neighbor_list`.

    Parameters
    ----------
    rcut :
        Physical interaction cutoff (Å).
    skin :
        Extra search margin (Å); larger skins rebuild less often but return
        more candidate pairs.
    method :
        Underlying builder ("auto" / "brute" / "cell").

    Usage
    -----
    >>> vl = VerletList(rcut=3.7, skin=0.5)
    >>> nl = vl.update(atoms)         # rebuilds only when needed
    """

    def __init__(self, rcut: float, skin: float = 0.5, method: str = "auto"):
        if rcut <= 0:
            raise NeighborError("rcut must be > 0")
        if skin < 0:
            raise NeighborError("skin must be >= 0")
        self.rcut = float(rcut)
        self.skin = float(skin)
        self.method = method
        self.n_builds = 0
        self.n_updates = 0
        self.rebuild_causes: dict[str, int] = {c: 0 for c in REBUILD_CAUSES}
        self.last_rebuild_cause: str | None = None
        self.reset()

    def reset(self) -> None:
        """Drop the cached list so the next :meth:`update` rebuilds.

        Build/update counters are kept — they describe the lifetime of the
        object, not of one list.
        """
        self._list: NeighborList | None = None
        self._full: NeighborList | None = None
        self._ref_positions: np.ndarray | None = None
        self._ref_cell: np.ndarray | None = None
        self._shifts: np.ndarray | None = None
        self._translations: np.ndarray | None = None
        self._shift_max = 0.0
        self.last_update_rebuilt = False

    def _recover_shifts(self, nl: NeighborList, atoms) -> None:
        """Integer image shifts S with ``vectors = r_j − r_i + S·h``.

        Recovered by projecting the periodic translation onto the inverse
        lattice and verified by a round trip; unrecoverable shifts (at
        ~1e-9 Å) disable cell-change remapping, falling back to
        rebuild-on-any-cell-change.
        """
        t = nl.vectors - (atoms.positions[nl.j] - atoms.positions[nl.i])
        self._translations = t
        h = np.asarray(atoms.cell.matrix, dtype=float)
        try:
            s = np.rint(t @ np.linalg.pinv(h))
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            self._shifts = None
            self._shift_max = 0.0
            return
        if len(s) and np.max(np.abs(s @ h - t)) > 1e-9:
            self._shifts = None
            self._shift_max = 0.0
            return
        self._shifts = s
        # largest shift-vector 2-norm over cached pairs; the √3 headroom
        # in the rebuild bound covers unseen candidate images one shell
        # beyond anything cached
        self._shift_max = float(np.max(np.linalg.norm(s, axis=1))) \
            if len(s) else 0.0

    def rebuild_cause(self, atoms) -> str | None:
        """Why the cached skin list can no longer be trusted (else None).

        Causes: ``"init"`` (no cached list), ``"resize"`` (atom count
        changed), ``"cell-unmappable"`` (a cell change with unrecoverable
        image shifts), or skin exhaustion by the combined bound
        ``2·max|Δr_i| + (‖S‖₂,max + √3)·‖Δh‖₂`` (atomic motion plus a
        conservative image-displacement bound from the accumulated cell
        change, with headroom for candidate images one shell beyond any
        cached shift) — classified as ``"strain"`` when the cell term
        dominates and ``"drift"`` when atomic motion does.
        """
        if self._list is None or self._ref_positions is None:
            return "init"
        if len(atoms) != len(self._ref_positions):
            return "resize"
        dcell = np.asarray(atoms.cell.matrix, dtype=float) - self._ref_cell
        cell_disp = 0.0
        if np.any(dcell != 0.0):
            if self._shifts is None:
                return "cell-unmappable"
            cell_disp = (self._shift_max + np.sqrt(3.0)) \
                * float(np.linalg.norm(dcell, 2))
        disp = atoms.positions - self._ref_positions
        # Displacements are physical (unwrapped MD trajectories); no MIC.
        max_disp = float(np.sqrt(
            np.max(np.einsum("ij,ij->i", disp, disp))))
        if 2.0 * max_disp + cell_disp > self.skin:
            return "strain" if cell_disp > 2.0 * max_disp else "drift"
        return None

    def needs_rebuild(self, atoms) -> bool:
        """True when the cached skin list can no longer be trusted
        (see :meth:`rebuild_cause` for the trigger taxonomy)."""
        return self.rebuild_cause(atoms) is not None

    def stats(self) -> dict:
        """Reuse counters: ``{"builds", "updates", "reused", "causes"}``.

        ``causes`` breaks the builds down by rebuild trigger — the
        drift-vs-strain split is what tells an NPT/strain-sweep run
        whether its skin is sized for the motion it actually sees.
        """
        return {"builds": self.n_builds, "updates": self.n_updates,
                "reused": self.n_updates - self.n_builds,
                "causes": dict(self.rebuild_causes)}

    def update(self, atoms) -> NeighborList:
        """Return a current neighbour list, rebuilding if necessary.

        The returned list is built with cutoff ``rcut + skin`` and then
        *filtered* to the true cutoff using current positions (and the
        current cell), so distances and vectors are always exact for the
        present configuration.
        """
        self.n_updates += 1
        cause = self.rebuild_cause(atoms)
        if cause is not None:
            self._full = neighbor_list(atoms, self.rcut + self.skin,
                                       method=self.method)
            self._ref_positions = atoms.positions.copy()
            self._ref_cell = np.array(atoms.cell.matrix, copy=True)
            self._recover_shifts(self._full, atoms)
            self.n_builds += 1
            self.last_update_rebuilt = True
            self.last_rebuild_cause = cause
            self.rebuild_causes[cause] = self.rebuild_causes.get(cause, 0) + 1
            obs.counter_inc(_REBUILD_COUNTERS[cause])
            self._list = self._filter(self._full, atoms)
        else:
            self.last_update_rebuilt = False
            obs.counter_inc("neighbors.reuse")
            self._list = self._refresh(self._full, atoms)
        return self._list

    def _refresh(self, skin_list: NeighborList, atoms) -> NeighborList:
        """Recompute bond vectors for current positions/cell, then filter.

        ``r_j − r_i + S·h`` is exact for the present geometry — including
        after cell changes, where the old composite-vector shortcut would
        silently keep image translations of the stale lattice.
        """
        vec = atoms.positions[skin_list.j] - atoms.positions[skin_list.i]
        if len(vec):
            if self._shifts is not None:
                vec = vec + self._shifts @ np.asarray(atoms.cell.matrix,
                                                      dtype=float)
            else:
                # shift recovery failed: cell is pinned to the build-time
                # lattice (needs_rebuild forces a rebuild on any change),
                # so the stored translations are still exact
                vec = vec + self._translations
        dist = np.linalg.norm(vec, axis=1)
        refreshed = NeighborList(i=skin_list.i, j=skin_list.j, vectors=vec,
                                 distances=dist, rcut=skin_list.rcut,
                                 natoms=skin_list.natoms)
        return self._filter(refreshed, atoms)

    def _filter(self, nl: NeighborList, atoms) -> NeighborList:
        mask = nl.distances <= self.rcut
        return NeighborList(i=nl.i[mask], j=nl.j[mask],
                            vectors=nl.vectors[mask],
                            distances=nl.distances[mask],
                            rcut=self.rcut, natoms=len(atoms))

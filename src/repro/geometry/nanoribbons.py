"""Graphene nanoribbon builders (zigzag and armchair edges).

Ribbons are periodic along x and finite across y; the zigzag ribbon's
flat edge band at the Fermi level (Fujita/Nakada 1996) is the canonical
edge-electronic-structure test of a carbon TB model and is asserted in
the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell
from repro.geometry.lattices import GRAPHENE_CC


def zigzag_nanoribbon(width: int, cells: int = 1, cc: float = GRAPHENE_CC,
                      vacuum: float = 12.0) -> Atoms:
    """Zigzag-edged graphene nanoribbon.

    Parameters
    ----------
    width :
        Number of zigzag chains across the ribbon (N in the N-ZGNR
        convention); 2N atoms per translational cell.
    cells :
        Repetitions along the periodic (x) axis; the translational period
        is ``√3·cc``.
    """
    if width < 2:
        raise GeometryError("zigzag ribbon needs width >= 2")
    a = np.sqrt(3.0) * cc
    pos = []
    for w in range(width):
        y0 = w * 1.5 * cc
        # each zigzag chain contributes two atoms per period
        if w % 2 == 0:
            pos.append((0.0, y0))
            pos.append((a / 2.0, y0 + 0.5 * cc))
        else:
            pos.append((a / 2.0, y0))
            pos.append((0.0, y0 + 0.5 * cc))
    base = np.array(pos)
    coords = []
    for c in range(cells):
        shifted = base.copy()
        shifted[:, 0] += c * a
        coords.append(shifted)
    xy = np.vstack(coords)
    out = np.zeros((len(xy), 3))
    out[:, 0] = xy[:, 0]
    out[:, 1] = xy[:, 1] + vacuum
    out[:, 2] = vacuum
    ly = base[:, 1].max() + 2 * vacuum
    cell = Cell(np.diag([cells * a, ly, 2 * vacuum]),
                pbc=(True, False, False))
    return Atoms(["C"] * len(out), out, cell=cell)


def armchair_nanoribbon(width: int, cells: int = 1, cc: float = GRAPHENE_CC,
                        vacuum: float = 12.0) -> Atoms:
    """Armchair-edged graphene nanoribbon.

    *width* counts dimer lines across the ribbon (N-AGNR convention);
    the translational period along x is ``3·cc``.
    """
    if width < 2:
        raise GeometryError("armchair ribbon needs width >= 2")
    ay = np.sqrt(3.0) * cc / 2.0
    pos = []
    for w in range(width):
        y0 = w * ay
        if w % 2 == 0:
            pos.append((0.0, y0))
            pos.append((cc, y0))
        else:
            pos.append((-cc / 2.0, y0))
            pos.append((1.5 * cc, y0))
    base = np.array(pos)
    period = 3.0 * cc
    coords = []
    for c in range(cells):
        shifted = base.copy()
        shifted[:, 0] += c * period
        coords.append(shifted)
    xy = np.vstack(coords)
    out = np.zeros((len(xy), 3))
    out[:, 0] = xy[:, 0]
    out[:, 1] = xy[:, 1] + vacuum
    out[:, 2] = vacuum
    ly = base[:, 1].max() + 2 * vacuum
    cell = Cell(np.diag([cells * period, ly, 2 * vacuum]),
                pbc=(True, False, False))
    return Atoms(["C"] * len(out), out, cell=cell)

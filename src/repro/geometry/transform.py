"""Structure transforms: supercell replication, thermal rattle, strain."""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GeometryError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell
from repro.utils.rng import default_rng


def supercell(atoms: Atoms, reps) -> Atoms:
    """Replicate *atoms* ``reps = (na, nb, nc)`` times along its lattice
    vectors (an int means isotropic replication).

    Velocities, masses and fixed flags are replicated with the positions.
    Replication along a non-periodic axis is refused — it would create
    overlapping copies.
    """
    if np.isscalar(reps):
        reps = (int(reps),) * 3
    reps = tuple(int(r) for r in reps)
    if any(r < 1 for r in reps):
        raise GeometryError(f"replications must be >= 1, got {reps}")
    for k, r in enumerate(reps):
        if r > 1 and not atoms.cell.pbc[k]:
            raise GeometryError(
                f"cannot replicate along non-periodic axis {k}"
            )
    h = atoms.cell.matrix
    shifts = [i * h[0] + j * h[1] + k * h[2]
              for i, j, k in itertools.product(
                  range(reps[0]), range(reps[1]), range(reps[2]))]
    pos = np.vstack([atoms.positions + s for s in shifts])
    vel = np.vstack([atoms.velocities] * len(shifts))
    masses = np.tile(atoms.masses, len(shifts))
    fixed = np.tile(atoms.fixed, len(shifts))
    symbols = atoms.symbols * len(shifts)
    new_h = h * np.asarray(reps, dtype=float)[:, None]
    return Atoms(symbols, pos, cell=Cell(new_h, pbc=atoms.cell.pbc),
                 velocities=vel, masses=masses, fixed=fixed)


def rattle(atoms: Atoms, stdev: float = 0.02, seed=None,
           respect_fixed: bool = True) -> Atoms:
    """Return a copy with Gaussian displacements of width *stdev* Å.

    Standard trick to break symmetry before relaxation and to decorrelate
    repeated MD initial conditions.
    """
    if stdev < 0:
        raise GeometryError("stdev must be >= 0")
    rng = default_rng(seed)
    out = atoms.copy()
    disp = rng.normal(0.0, stdev, size=out.positions.shape)
    if respect_fixed:
        disp[out.fixed] = 0.0
    out.positions += disp
    return out


def strain(atoms: Atoms, eps) -> Atoms:
    """Apply a homogeneous strain to cell and positions.

    Parameters
    ----------
    eps :
        Either a scalar (isotropic strain: lengths scale by ``1+eps``) or a
        3×3 strain tensor ε; positions and cell map through ``(1 + ε)``.
    """
    if np.isscalar(eps):
        f = np.eye(3) * (1.0 + float(eps))
    else:
        e = np.asarray(eps, dtype=float)
        if e.shape != (3, 3):
            raise GeometryError("strain tensor must be 3x3 or scalar")
        f = np.eye(3) + e
    out = atoms.copy()
    out.positions = out.positions @ f.T
    new_cell = Cell(atoms.cell.matrix @ f.T, pbc=atoms.cell.pbc)
    out.cell = new_cell
    return out


def scale_volume(atoms: Atoms, factor: float) -> Atoms:
    """Return a copy with the volume scaled by *factor* (isotropic)."""
    if factor <= 0:
        raise GeometryError("volume factor must be > 0")
    return strain(atoms, factor ** (1.0 / 3.0) - 1.0)

"""Point-defect construction: vacancies and the Stone–Wales transformation.

Defect energetics are the era's standard transferability tests (vacancy
formation in silicon) and the Stone–Wales bond rotation is the elementary
re-bonding step of fullerene/nanotube dynamics — the mechanism the
tube-closure literature invokes for post-closure annealing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.atoms import Atoms
from repro.neighbors import neighbor_list


def make_vacancy(atoms: Atoms, index: int = 0) -> Atoms:
    """Return a copy of *atoms* with atom *index* removed."""
    n = len(atoms)
    if not 0 <= index < n:
        raise GeometryError(f"vacancy index {index} out of range (N={n})")
    mask = np.ones(n, dtype=bool)
    mask[index] = False
    return atoms.select(mask)


def vacancy_formation_energy(e_defect: float, e_perfect: float,
                             n_perfect: int) -> float:
    """``E_f = E(N−1 atoms) − (N−1)/N · E(N atoms)`` — the standard
    chemical-potential-balanced formation energy for an elemental solid."""
    if n_perfect < 2:
        raise GeometryError("need at least 2 atoms")
    return e_defect - (n_perfect - 1) / n_perfect * e_perfect


def stone_wales(atoms: Atoms, i: int, j: int, r_bond: float = 1.8) -> Atoms:
    """Apply a Stone–Wales transformation: rotate the i–j bond by 90°.

    The two atoms rotate about their bond midpoint, in the local plane
    defined by their neighbours, converting four hexagons into the 5-7-7-5
    pattern in sp² networks.  Validity of the result (ring census) is the
    caller's to check — the rotation itself is purely geometric.

    Parameters
    ----------
    i, j :
        The bonded pair to rotate (must be within *r_bond*).
    """
    if i == j:
        raise GeometryError("need two distinct atoms")
    d = atoms.distance(i, j)
    if d > r_bond:
        raise GeometryError(
            f"atoms {i} and {j} are {d:.2f} Å apart (> {r_bond}); not a bond"
        )
    out = atoms.copy()
    ri = out.positions[i]
    rj = out.positions[j]
    # minimum-image bond: the raw midpoint is wrong for bonds that cross
    # a periodic boundary, so anchor the midpoint at atom i
    bond = out.cell.minimum_image(rj - ri)
    mid = ri + 0.5 * bond

    # rotation axis: local surface normal — estimated from the neighbours
    # of both atoms (cross products of bond with neighbour bonds)
    nl = neighbor_list(atoms, r_bond)
    fi, fj_, fvec, _ = nl.full()
    normals = []
    for centre in (i, j):
        sel = fi == centre
        for v in fvec[sel]:
            cr = np.cross(bond, v)
            norm = np.linalg.norm(cr)
            if norm > 1e-6:
                # orient consistently
                if normals and np.dot(cr, normals[0]) < 0:
                    cr = -cr
                normals.append(cr / norm)
    if not normals:
        raise GeometryError("could not determine a rotation plane")
    axis = np.mean(normals, axis=0)
    axis /= np.linalg.norm(axis)

    # rotate the bond by 90° about the axis through the midpoint
    half = 0.5 * bond
    cos90, sin90 = 0.0, 1.0
    rotated = (half * cos90 + np.cross(axis, half) * sin90
               + axis * np.dot(axis, half) * (1 - cos90))
    out.positions[i] = mid - rotated
    out.positions[j] = mid + rotated
    return out

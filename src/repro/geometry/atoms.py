"""The :class:`Atoms` container: species, positions, velocities, cell.

This is the single structure object threaded through the whole library
(TB calculator, MD driver, relaxers, analysis).  It is intentionally a
plain mutable container — the physics lives in the calculators.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cell import Cell
from repro.units import ATOMIC_NUMBERS, ATOMIC_SYMBOLS, mass_of, kinetic_energy
from repro.utils.validation import as_float_array


class Atoms:
    """A collection of atoms with optional periodic cell.

    Parameters
    ----------
    symbols :
        Sequence of chemical symbols (``["Si", "Si", ...]``) or a single
        symbol string applied to all positions.
    positions :
        (N, 3) Cartesian coordinates in Å.
    cell :
        A :class:`Cell`, a 3×3 matrix (fully periodic), or ``None`` for an
        isolated cluster.
    velocities :
        Optional (N, 3) velocities in Å/fs (default zero).
    masses :
        Optional (N,) masses in amu; defaults to tabulated atomic masses.
    fixed :
        Optional (N,) boolean mask of frozen atoms (used by MD and
        relaxation — e.g. the hydrogen-saturated tube end of the classic
        nanotube workloads).
    """

    def __init__(self, symbols, positions, cell=None, velocities=None,
                 masses=None, fixed=None):
        positions = as_float_array(positions, "positions")
        if positions.ndim == 1:
            positions = positions.reshape(1, 3)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise GeometryError(
                f"positions must be (N, 3), got {positions.shape}"
            )
        n = len(positions)

        if isinstance(symbols, str):
            symbols = [symbols] * n
        symbols = [str(s) for s in symbols]
        if len(symbols) != n:
            raise GeometryError(
                f"{len(symbols)} symbols but {n} positions"
            )
        for s in symbols:
            if s not in ATOMIC_NUMBERS:
                raise GeometryError(f"unknown chemical symbol {s!r}")

        if cell is None:
            cell = Cell.nonperiodic()
        elif not isinstance(cell, Cell):
            cell = Cell(cell, pbc=True)

        self._symbols = list(symbols)
        self.positions = positions
        self.cell = cell
        self.velocities = (np.zeros((n, 3)) if velocities is None
                           else as_float_array(velocities, "velocities", (n, 3)))
        if masses is None:
            self.masses = np.array([mass_of(s) for s in symbols])
        else:
            self.masses = as_float_array(masses, "masses", (n,))
            if np.any(self.masses <= 0):
                raise GeometryError("masses must be positive")
        if fixed is None:
            self.fixed = np.zeros(n, dtype=bool)
        else:
            self.fixed = np.asarray(fixed, dtype=bool).copy()
            if self.fixed.shape != (n,):
                raise GeometryError(f"fixed mask must be ({n},)")

    # -- basic queries -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.positions)

    @property
    def symbols(self) -> list[str]:
        """Chemical symbols (copy — mutate via :meth:`set_symbol`)."""
        return list(self._symbols)

    def set_symbol(self, index: int, symbol: str, update_mass: bool = True) -> None:
        """Substitute the species of one atom (e.g. C → B doping)."""
        if symbol not in ATOMIC_NUMBERS:
            raise GeometryError(f"unknown chemical symbol {symbol!r}")
        self._symbols[index] = symbol
        if update_mass:
            self.masses[index] = mass_of(symbol)

    @property
    def numbers(self) -> np.ndarray:
        """Atomic numbers as an (N,) int array."""
        return np.array([ATOMIC_NUMBERS[s] for s in self._symbols])

    @property
    def n_free(self) -> int:
        """Number of unfrozen atoms."""
        return int((~self.fixed).sum())

    def species(self) -> list[str]:
        """Sorted unique symbols present."""
        return sorted(set(self._symbols))

    # -- energetics ------------------------------------------------------------
    def kinetic_energy(self) -> float:
        """Kinetic energy in eV (frozen atoms included if they move)."""
        return kinetic_energy(self.masses, self.velocities)

    def temperature(self) -> float:
        """Instantaneous kinetic temperature in K over the free atoms.

        Convention: 3 degrees of freedom per free atom (no COM removal
        correction; callers who remove COM drift should use ndof = 3N−3).
        """
        from repro.units import temperature_from_kinetic

        free = ~self.fixed
        ekin = kinetic_energy(self.masses[free], self.velocities[free])
        return temperature_from_kinetic(ekin, 3 * int(free.sum()))

    def momentum(self) -> np.ndarray:
        """Total momentum (amu·Å/fs)."""
        return (self.masses[:, None] * self.velocities).sum(axis=0)

    def center_of_mass(self) -> np.ndarray:
        return (self.masses[:, None] * self.positions).sum(axis=0) / self.masses.sum()

    def zero_momentum(self) -> None:
        """Remove centre-of-mass drift from the free atoms' velocities."""
        free = ~self.fixed
        if not free.any():
            return
        m = self.masses[free]
        p = (m[:, None] * self.velocities[free]).sum(axis=0)
        self.velocities[free] -= p / m.sum()

    # -- geometry ---------------------------------------------------------------
    def wrap(self) -> None:
        """Wrap positions into the home cell (periodic axes only)."""
        self.positions = self.cell.wrap(self.positions)

    def distance(self, i: int, j: int, mic: bool = True) -> float:
        """Distance between atoms *i* and *j* (minimum-image if *mic*)."""
        d = self.positions[j] - self.positions[i]
        if mic:
            d = self.cell.minimum_image(d)
        return float(np.linalg.norm(d))

    def copy(self) -> "Atoms":
        """Deep copy."""
        return Atoms(
            list(self._symbols),
            self.positions.copy(),
            cell=self.cell,
            velocities=self.velocities.copy(),
            masses=self.masses.copy(),
            fixed=self.fixed.copy(),
        )

    def translate(self, shift) -> None:
        """Rigidly translate all atoms by *shift* (length-3, Å)."""
        self.positions += np.asarray(shift, dtype=float).reshape(1, 3)

    def rotate(self, axis, angle: float, center=None) -> None:
        """Rigidly rotate all atoms by *angle* (radians) about *axis*.

        Only meaningful for clusters; rotating a periodic structure without
        rotating its cell changes the physics, so this raises for periodic
        systems.
        """
        if self.cell.periodic:
            raise GeometryError("rotate() is only supported for isolated systems")
        axis = np.asarray(axis, dtype=float)
        axis = axis / np.linalg.norm(axis)
        c, s = np.cos(angle), np.sin(angle)
        ux, uy, uz = axis
        rot = np.array([
            [c + ux * ux * (1 - c), ux * uy * (1 - c) - uz * s, ux * uz * (1 - c) + uy * s],
            [uy * ux * (1 - c) + uz * s, c + uy * uy * (1 - c), uy * uz * (1 - c) - ux * s],
            [uz * ux * (1 - c) - uy * s, uz * uy * (1 - c) + ux * s, c + uz * uz * (1 - c)],
        ])
        center = (self.center_of_mass() if center is None
                  else np.asarray(center, dtype=float))
        self.positions = (self.positions - center) @ rot.T + center
        self.velocities = self.velocities @ rot.T

    def extend(self, other: "Atoms") -> "Atoms":
        """Return a new Atoms with *other* appended (keeps this cell)."""
        return Atoms(
            list(self._symbols) + list(other._symbols),
            np.vstack([self.positions, other.positions]),
            cell=self.cell,
            velocities=np.vstack([self.velocities, other.velocities]),
            masses=np.concatenate([self.masses, other.masses]),
            fixed=np.concatenate([self.fixed, other.fixed]),
        )

    def select(self, mask) -> "Atoms":
        """Return a new Atoms containing only atoms where *mask* is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            idx = np.asarray(mask, dtype=int)
            mask = np.zeros(len(self), dtype=bool)
            mask[idx] = True
        syms = [s for s, m in zip(self._symbols, mask) if m]
        return Atoms(
            syms,
            self.positions[mask],
            cell=self.cell,
            velocities=self.velocities[mask],
            masses=self.masses[mask],
            fixed=self.fixed[mask],
        )

    def __repr__(self) -> str:
        from collections import Counter

        counts = Counter(self._symbols)
        formula = "".join(f"{s}{c if c > 1 else ''}" for s, c in sorted(counts.items()))
        return f"Atoms({formula}, n={len(self)}, cell={self.cell!r})"


def symbols_from_numbers(numbers) -> list[str]:
    """Atomic numbers → chemical symbols."""
    return [ATOMIC_SYMBOLS[int(z)] for z in numbers]

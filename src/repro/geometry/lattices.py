"""Crystal-lattice builders for the benchmark workloads.

All builders return conventional cells with fully periodic boundary
conditions; combine with :func:`repro.geometry.transform.supercell` to grow
them to MD sizes.  Lattice constants default to the experimental values used
by the classic TB validation studies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell

#: Experimental lattice constant of diamond-cubic silicon (Å).
SI_A0 = 5.431

#: Experimental lattice constant of diamond-cubic carbon (Å).
C_DIAMOND_A0 = 3.567

#: Experimental graphene C–C bond length (Å).
GRAPHENE_CC = 1.42


def diamond_cubic(symbol: str = "Si", a: float | None = None) -> Atoms:
    """8-atom conventional diamond-cubic cell.

    Parameters
    ----------
    symbol : chemical species ("Si" or "C" for the supported TB models).
    a : lattice constant in Å (defaults: Si 5.431, C 3.567).
    """
    if a is None:
        a = {"Si": SI_A0, "C": C_DIAMOND_A0}.get(symbol)
        if a is None:
            raise GeometryError(
                f"no default lattice constant for {symbol!r}; pass a= explicitly"
            )
    frac = np.array([
        [0.00, 0.00, 0.00],
        [0.50, 0.50, 0.00],
        [0.50, 0.00, 0.50],
        [0.00, 0.50, 0.50],
        [0.25, 0.25, 0.25],
        [0.75, 0.75, 0.25],
        [0.75, 0.25, 0.75],
        [0.25, 0.75, 0.75],
    ])
    cell = Cell.cubic(a)
    return Atoms([symbol] * 8, cell.cartesian(frac), cell=cell)


def bulk_silicon(a: float = SI_A0) -> Atoms:
    """Convenience alias: 8-atom diamond-cubic silicon cell."""
    return diamond_cubic("Si", a=a)


def fcc(symbol: str, a: float) -> Atoms:
    """4-atom conventional face-centred-cubic cell."""
    frac = np.array([
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
    ])
    cell = Cell.cubic(a)
    return Atoms([symbol] * 4, cell.cartesian(frac), cell=cell)


def bcc(symbol: str, a: float) -> Atoms:
    """2-atom conventional body-centred-cubic cell."""
    frac = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]])
    cell = Cell.cubic(a)
    return Atoms([symbol] * 2, cell.cartesian(frac), cell=cell)


def simple_cubic(symbol: str, a: float) -> Atoms:
    """1-atom simple-cubic cell."""
    cell = Cell.cubic(a)
    return Atoms([symbol], np.zeros((1, 3)), cell=cell)


def beta_tin_silicon(a: float = 4.686, c_over_a: float = 0.552) -> Atoms:
    """4-atom conventional β-tin (A5) silicon cell.

    Body-centred tetragonal, space group I4₁/amd, atoms on the 4a sites:
    the two bct lattice points each decorated with the (0,0,0), (0,½,¼)
    basis.  The canonical high-pressure competitor to diamond silicon in
    TB equation-of-state validation figures (≈14 Å³/atom vs ≈20 for
    diamond).  Default geometry from the experimental high-pressure phase.
    """
    c = a * c_over_a
    cell = Cell(np.diag([a, a, c]))
    frac = np.array([
        [0.0, 0.0, 0.00],
        [0.0, 0.5, 0.25],
        [0.5, 0.5, 0.50],
        [0.5, 0.0, 0.75],
    ])
    return Atoms(["Si"] * 4, cell.cartesian(frac), cell=cell)


def graphene_sheet(nx: int = 1, ny: int = 1, cc: float = GRAPHENE_CC,
                   vacuum: float = 15.0, symbol: str = "C") -> Atoms:
    """Periodic graphene sheet of nx×ny orthorhombic 4-atom cells.

    The 4-atom rectangular cell has dimensions (3·cc, √3·cc); the sheet is
    periodic in x and y and padded with *vacuum* Å of empty space in z
    (z axis non-periodic for TB cutoffs shorter than the vacuum, but flagged
    periodic so the cell is well-defined either way — we mark z non-periodic
    to make intent explicit).
    """
    if nx < 1 or ny < 1:
        raise GeometryError("nx, ny must be >= 1")
    ax = 3.0 * cc
    ay = np.sqrt(3.0) * cc
    base = np.array([
        [0.0, 0.0, 0.0],
        [cc, 0.0, 0.0],
        [1.5 * cc, ay / 2.0, 0.0],
        [2.5 * cc, ay / 2.0, 0.0],
    ])
    pos = []
    for i in range(nx):
        for j in range(ny):
            pos.append(base + np.array([i * ax, j * ay, 0.0]))
    pos = np.vstack(pos)
    pos[:, 2] += vacuum / 2.0
    cell = Cell(np.diag([nx * ax, ny * ay, vacuum]), pbc=(True, True, False))
    return Atoms([symbol] * len(pos), pos, cell=cell)

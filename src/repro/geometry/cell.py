"""Triclinic periodic cell with minimum-image and image-enumeration support.

A :class:`Cell` wraps a 3×3 row-vector lattice matrix (row ``i`` is lattice
vector ``a_i`` in Å) plus per-axis periodicity flags.  Two operations matter
for tight binding on small supercells:

* :meth:`minimum_image` — the conventional nearest-image displacement, used
  by analysis code (RDF, MSD).
* :meth:`translations_within` — *all* lattice translations ``T`` with
  ``|T| - d_max <= rcut``, used by the Hamiltonian builder.  For small cells
  (cutoff larger than half the shortest cell width) a single pair of atoms
  interacts through several periodic images; Γ-point folding must include
  every one of them, not just the nearest.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GeometryError
from repro.utils.validation import as_float_array


class Cell:
    """Immutable triclinic simulation cell.

    Parameters
    ----------
    matrix :
        3×3 array; row *i* is the lattice vector :math:`a_i` (Å).
    pbc :
        bool or length-3 sequence of bool; per-axis periodicity.
    """

    __slots__ = ("_h", "_hinv", "_pbc", "_volume")

    def __init__(self, matrix, pbc=True):
        h = as_float_array(matrix, "cell matrix", (3, 3))
        if np.isscalar(pbc) or isinstance(pbc, (bool, np.bool_)):
            flags = np.array([bool(pbc)] * 3)
        else:
            flags = np.array([bool(p) for p in pbc])
            if flags.shape != (3,):
                raise GeometryError("pbc must be a bool or length-3 sequence")
        vol = float(np.linalg.det(h))
        if flags.any() and abs(vol) < 1e-12:
            raise GeometryError(
                "periodic cell matrix is singular (volume ~ 0); "
                "supply three linearly independent lattice vectors"
            )
        # Right-handed convention keeps the volume positive.
        self._h = h.copy()
        self._h.setflags(write=False)
        self._hinv = np.linalg.inv(h) if abs(vol) > 1e-12 else None
        self._pbc = flags
        self._pbc.setflags(write=False)
        self._volume = abs(vol)

    # -- constructors -------------------------------------------------------
    @classmethod
    def cubic(cls, a: float, pbc=True) -> "Cell":
        """Cubic cell with edge *a* Å."""
        return cls(np.eye(3) * float(a), pbc=pbc)

    @classmethod
    def orthorhombic(cls, a: float, b: float, c: float, pbc=True) -> "Cell":
        """Orthorhombic cell with edges (a, b, c) Å."""
        return cls(np.diag([float(a), float(b), float(c)]), pbc=pbc)

    @classmethod
    def nonperiodic(cls, extent: float = 1.0) -> "Cell":
        """A placeholder cell for isolated (cluster) systems."""
        return cls(np.eye(3) * float(extent), pbc=False)

    # -- basic properties ---------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """3×3 lattice matrix (rows are lattice vectors), read-only view."""
        return self._h

    @property
    def pbc(self) -> np.ndarray:
        """Length-3 boolean periodicity flags, read-only view."""
        return self._pbc

    @property
    def periodic(self) -> bool:
        """True if any axis is periodic."""
        return bool(self._pbc.any())

    @property
    def fully_periodic(self) -> bool:
        return bool(self._pbc.all())

    @property
    def volume(self) -> float:
        """Cell volume in Å³."""
        return self._volume

    @property
    def lengths(self) -> np.ndarray:
        """Lengths of the three lattice vectors (Å)."""
        return np.linalg.norm(self._h, axis=1)

    @property
    def angles(self) -> np.ndarray:
        """Cell angles (α, β, γ) in degrees: α = angle(a₂,a₃) etc."""
        a, b, c = self._h
        def ang(u, v):
            cosv = np.dot(u, v) / (np.linalg.norm(u) * np.linalg.norm(v))
            return float(np.degrees(np.arccos(np.clip(cosv, -1.0, 1.0))))
        return np.array([ang(b, c), ang(a, c), ang(a, b)])

    def perpendicular_widths(self) -> np.ndarray:
        """Distance between opposite cell faces along each axis (Å).

        Width *k* is ``volume / |a_i × a_j|``; it bounds how many periodic
        images along axis *k* can fall within a given cutoff.
        """
        h = self._h
        cross = np.stack([
            np.cross(h[1], h[2]),
            np.cross(h[2], h[0]),
            np.cross(h[0], h[1]),
        ])
        areas = np.linalg.norm(cross, axis=1)
        with np.errstate(divide="ignore"):
            return np.where(areas > 0, self._volume / areas, np.inf)

    # -- coordinate transforms ----------------------------------------------
    def fractional(self, positions: np.ndarray) -> np.ndarray:
        """Cartesian (Å) → fractional coordinates."""
        if self._hinv is None:
            raise GeometryError("cell is singular; fractional coords undefined")
        return np.asarray(positions, dtype=float) @ self._hinv

    def cartesian(self, frac: np.ndarray) -> np.ndarray:
        """Fractional → Cartesian (Å)."""
        return np.asarray(frac, dtype=float) @ self._h

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Wrap positions into the home cell along periodic axes only."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        if not self.periodic:
            return pos.copy()
        frac = self.fractional(pos)
        for k in range(3):
            if self._pbc[k]:
                fk = frac[:, k] - np.floor(frac[:, k])
                # floor of a tiny negative leaves fk == 1.0 exactly;
                # fold it back so the result stays in [0, 1)
                fk[fk >= 1.0] -= 1.0
                frac[:, k] = fk
        return self.cartesian(frac)

    # -- displacement machinery ----------------------------------------------
    def minimum_image(self, dvec: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vector(s).

        Correct for cutoffs up to half the smallest perpendicular width; the
        Hamiltonian builder uses :meth:`translations_within` instead, which
        has no such restriction.
        """
        d = np.atleast_2d(np.asarray(dvec, dtype=float))
        if not self.periodic:
            out = d.copy()
        else:
            frac = self.fractional(d)
            for k in range(3):
                if self._pbc[k]:
                    frac[:, k] -= np.round(frac[:, k])
            out = self.cartesian(frac)
        return out[0] if np.asarray(dvec).ndim == 1 else out

    def translations_within(self, rcut: float, dmax: float = 0.0) -> np.ndarray:
        """All lattice translations ``T`` possibly relevant for a cutoff.

        Returns an (M, 3) array of Cartesian translation vectors such that
        for any two points whose in-cell separation is at most *dmax*, every
        periodic image within *rcut* is reached by one of the translations.
        The zero translation is always first.

        Non-periodic axes contribute no images.
        """
        if rcut <= 0:
            raise GeometryError(f"rcut must be > 0, got {rcut}")
        if not self.periodic:
            return np.zeros((1, 3))
        widths = self.perpendicular_widths()
        reach = rcut + dmax
        nmax = np.zeros(3, dtype=int)
        for k in range(3):
            if self._pbc[k]:
                nmax[k] = int(np.ceil(reach / widths[k]))
        ranges = [range(-int(n), int(n) + 1) for n in nmax]
        combos = np.array(list(itertools.product(*ranges)), dtype=float)
        # Put the zero translation first for deterministic on-site handling.
        zero_idx = int(np.flatnonzero(~combos.any(axis=1))[0])
        order = np.concatenate(([zero_idx],
                                np.delete(np.arange(len(combos)), zero_idx)))
        return combos[order] @ self._h

    # -- dunder -------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Cell):
            return NotImplemented
        return (np.allclose(self._h, other._h)
                and bool(np.all(self._pbc == other._pbc)))

    def __hash__(self):  # immutable by construction
        return hash((self._h.tobytes(), self._pbc.tobytes()))

    def __repr__(self) -> str:
        lens = ", ".join(f"{x:.3f}" for x in self.lengths)
        return f"Cell(lengths=({lens}) Å, pbc={tuple(bool(p) for p in self._pbc)})"

"""Nanostructure builders: carbon nanotubes, chains, rings, random clusters.

The nanotube builder implements the standard (n, m) roll-up construction
(Dresselhaus convention): the chiral vector ``Ch = n·a1 + m·a2`` of a
graphene sheet becomes the tube circumference, the translation vector ``T``
the tube axis.  (n, 0) tubes are "zig-zag", (n, n) "arm-chair" — the two
workload classes of the classic TBMD nanotube-closure studies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell
from repro.geometry.lattices import GRAPHENE_CC
from repro.utils.rng import default_rng


def _gcd(a: int, b: int) -> int:
    return math.gcd(a, b)


def nanotube_radius(n: int, m: int, cc: float = GRAPHENE_CC) -> float:
    """Radius (Å) of an (n, m) single-wall tube."""
    a = math.sqrt(3.0) * cc
    return a * math.sqrt(n * n + n * m + m * m) / (2.0 * math.pi)


def nanotube(n: int, m: int, cells: int = 1, cc: float = GRAPHENE_CC,
             periodic: bool = True, vacuum: float = 12.0,
             symbol: str = "C") -> Atoms:
    """Build an (n, m) single-wall nanotube.

    Parameters
    ----------
    n, m :
        Chiral indices, ``n >= m >= 0``, ``n >= 1``.
    cells :
        Number of translational unit cells along the tube axis (z).
    periodic :
        If True the tube is periodic along z (infinite tube).  If False the
        structure is a finite open-ended segment in a fully non-periodic
        cell — the starting point of the tube-closure MD workloads.
    vacuum :
        Padding (Å) added around the tube radially (and axially when
        non-periodic).

    Returns
    -------
    Atoms with the tube axis along z, centred in x/y.
    """
    if not (n >= 1 and 0 <= m <= n):
        raise GeometryError(f"invalid chiral indices ({n}, {m}); need n>=m>=0, n>=1")
    if cells < 1:
        raise GeometryError("cells must be >= 1")

    a = math.sqrt(3.0) * cc
    a1 = np.array([a * math.sqrt(3.0) / 2.0, a / 2.0])
    a2 = np.array([a * math.sqrt(3.0) / 2.0, -a / 2.0])
    basis = [np.zeros(2), (a1 + a2) / 3.0]

    ch = n * a1 + m * a2
    ch_len = float(np.linalg.norm(ch))
    radius = ch_len / (2.0 * math.pi)

    d_r = _gcd(2 * n + m, 2 * m + n)
    t1 = (2 * m + n) // d_r
    t2 = -(2 * n + m) // d_r
    tvec = t1 * a1 + t2 * a2
    t_len = float(np.linalg.norm(tvec))

    # Enumerate graphene lattice points whose (u, t) projections fall in the
    # unit rectangle [0,1) × [0,1) of (Ch, T).
    def fold(x: float) -> float:
        """Map a projection into [0, 1), snapping float noise at 1 to 0."""
        x -= math.floor(x)
        if x > 1.0 - 1e-6:
            x = 0.0
        return x

    bound = abs(t1) + abs(t2) + n + m + 2
    pts = []
    seen = set()
    for i in range(-bound, bound + 1):
        for j in range(-bound, bound + 1):
            for b, shift in enumerate(basis):
                p = i * a1 + j * a2 + shift
                u = fold(float(np.dot(p, ch) / ch_len**2))
                t = fold(float(np.dot(p, tvec) / t_len**2))
                key = (round(u, 6), round(t, 6), b)
                if key not in seen:
                    seen.add(key)
                    pts.append((u, t))
    n_expected = 4 * (n * n + n * m + m * m) // d_r
    if len(pts) != n_expected:
        raise GeometryError(
            f"nanotube construction found {len(pts)} atoms per cell, "
            f"expected {n_expected} for ({n},{m})"
        )

    # Shift the axial origin so the cell boundary falls mid-way through the
    # largest gap between atomic planes.  A finite (periodic=False) tube
    # then terminates in the physical edge (2-coordinated saw-tooth for
    # zig-zag) instead of slicing a bonded ring pair apart.
    t_planes = sorted({round(t, 6) for _, t in pts})
    if len(t_planes) > 1:
        gaps = [(t_planes[k + 1] - t_planes[k], t_planes[k])
                for k in range(len(t_planes) - 1)]
        gaps.append((1.0 - t_planes[-1] + t_planes[0], t_planes[-1]))
        gap, lo = max(gaps)
        t_origin = fold(lo + gap / 2.0)
        pts = [(u, fold(t - t_origin)) for u, t in pts]

    # Roll up: u → azimuthal angle, t → axial coordinate.
    coords = []
    for c in range(cells):
        for u, t in pts:
            theta = 2.0 * math.pi * u
            z = (t + c) * t_len
            coords.append((radius * math.cos(theta),
                           radius * math.sin(theta), z))
    coords = np.array(coords)

    box_xy = 2.0 * radius + 2.0 * vacuum
    coords[:, 0] += box_xy / 2.0
    coords[:, 1] += box_xy / 2.0
    if periodic:
        cell = Cell(np.diag([box_xy, box_xy, cells * t_len]),
                    pbc=(False, False, True))
    else:
        coords[:, 2] += vacuum
        cell = Cell(np.diag([box_xy, box_xy, cells * t_len + 2.0 * vacuum]),
                    pbc=False)
    return Atoms([symbol] * len(coords), coords, cell=cell)


def hydrogen_cap(atoms: Atoms, end: str = "bottom", ch_bond: float = 1.09,
                 coordination_cut: float = 1.8, fix_hydrogens: bool = True) -> Atoms:
    """Saturate the dangling bonds at one end of a finite nanotube with H.

    Finds the under-coordinated carbon ring nearest the chosen end (lowest
    or highest z) and attaches one hydrogen per edge atom, pointing axially
    outward.  The classic tube-closure simulations freeze these hydrogens;
    with *fix_hydrogens* the returned structure has them pre-marked fixed.
    """
    if end not in ("bottom", "top"):
        raise GeometryError("end must be 'bottom' or 'top'")
    pos = atoms.positions
    z = pos[:, 2]
    edge_z = z.min() if end == "bottom" else z.max()
    edge_mask = np.abs(z - edge_z) < 0.6  # one zig-zag/armchair ring
    direction = -1.0 if end == "bottom" else 1.0

    h_pos = pos[edge_mask].copy()
    h_pos[:, 2] += direction * ch_bond
    h_atoms = Atoms(["H"] * len(h_pos), h_pos, cell=atoms.cell,
                    fixed=np.full(len(h_pos), fix_hydrogens))
    return atoms.extend(h_atoms)


def carbon_chain(n: int, bond: float = 1.28, vacuum: float = 12.0,
                 symbol: str = "C") -> Atoms:
    """Linear carbon chain of *n* atoms along z (isolated)."""
    if n < 1:
        raise GeometryError("n must be >= 1")
    pos = np.zeros((n, 3))
    pos[:, 2] = np.arange(n) * bond
    pos += vacuum
    extent = (n - 1) * bond + 2 * vacuum
    return Atoms([symbol] * n, pos, cell=Cell.cubic(extent, pbc=False))


def carbon_ring(n: int, bond: float = 1.40, vacuum: float = 12.0,
                symbol: str = "C") -> Atoms:
    """Planar monocyclic C_n ring (isolated)."""
    if n < 3:
        raise GeometryError("a ring needs n >= 3")
    radius = bond / (2.0 * math.sin(math.pi / n))
    theta = 2.0 * math.pi * np.arange(n) / n
    pos = np.stack([radius * np.cos(theta), radius * np.sin(theta),
                    np.zeros(n)], axis=1)
    extent = 2 * radius + 2 * vacuum
    pos += extent / 2.0
    return Atoms([symbol] * n, pos, cell=Cell.cubic(extent, pbc=False))


def random_cluster(n: int, symbol: str = "Si", min_dist: float = 2.2,
                   density: float = 0.045, seed=None,
                   max_tries: int = 20000) -> Atoms:
    """Random isolated cluster with a hard minimum inter-atomic distance.

    Used by workload generators for disordered starting points.  *density*
    is atoms/Å³ of the bounding sphere (default loosely liquid-like).
    """
    if n < 1:
        raise GeometryError("n must be >= 1")
    rng = default_rng(seed)
    radius = (3.0 * n / (4.0 * math.pi * density)) ** (1.0 / 3.0)
    placed = np.empty((n, 3))
    count = 0
    tries = 0
    while count < n:
        tries += 1
        if tries > max_tries:
            raise GeometryError(
                f"could not place {n} atoms with min_dist={min_dist} "
                f"in sphere of radius {radius:.2f} Å; lower density or min_dist"
            )
        # rejection-sample a point in the sphere
        p = rng.uniform(-radius, radius, size=3)
        if np.dot(p, p) > radius * radius:
            continue
        if count and np.min(np.linalg.norm(placed[:count] - p, axis=1)) < min_dist:
            continue
        placed[count] = p
        count += 1
    vacuum = 10.0
    extent = 2 * radius + 2 * vacuum
    placed += extent / 2.0
    return Atoms([symbol] * n, placed, cell=Cell.cubic(extent, pbc=False))

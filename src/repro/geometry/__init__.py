"""Atomic geometry: periodic cells, atom containers, structure builders."""

from repro.geometry.cell import Cell
from repro.geometry.atoms import Atoms
from repro.geometry.lattices import (
    bcc,
    bulk_silicon,
    diamond_cubic,
    fcc,
    graphene_sheet,
    simple_cubic,
    beta_tin_silicon,
)
from repro.geometry.nanostructures import (
    carbon_chain,
    carbon_ring,
    nanotube,
    random_cluster,
)
from repro.geometry.transform import rattle, strain, supercell
from repro.geometry.defects import make_vacancy, stone_wales, vacancy_formation_energy
from repro.geometry.nanoribbons import armchair_nanoribbon, zigzag_nanoribbon
from repro.geometry.xyz import read_xyz, write_xyz

__all__ = [
    "Cell",
    "Atoms",
    "diamond_cubic",
    "bulk_silicon",
    "beta_tin_silicon",
    "fcc",
    "bcc",
    "simple_cubic",
    "graphene_sheet",
    "nanotube",
    "carbon_chain",
    "carbon_ring",
    "random_cluster",
    "supercell",
    "rattle",
    "strain",
    "read_xyz",
    "write_xyz",
    "make_vacancy",
    "stone_wales",
    "vacancy_formation_energy",
    "zigzag_nanoribbon",
    "armchair_nanoribbon",
]

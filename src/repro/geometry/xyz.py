"""XYZ / extended-XYZ structure I/O.

Supports the plain XYZ format and a minimal extended-XYZ dialect with a
``Lattice="ax ay az bx by bz cx cy cz"`` and ``pbc="T T F"`` comment line,
which round-trips the :class:`~repro.geometry.atoms.Atoms` cell.  Multiple
concatenated frames are supported for trajectories.
"""

from __future__ import annotations

import re
from pathlib import Path
from collections.abc import Iterator
from typing import TextIO

import numpy as np

from repro.errors import IOFormatError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell

_LATTICE_RE = re.compile(r'Lattice="([^"]+)"')
_PBC_RE = re.compile(r'pbc="([^"]+)"')


def write_xyz(path_or_file, atoms: Atoms, comment: str | None = None,
              append: bool = False) -> None:
    """Write one frame in extended-XYZ format."""
    own = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file, "a" if append else "w")
        own = True
    else:
        fh = path_or_file
    try:
        _write_frame(fh, atoms, comment)
    finally:
        if own:
            fh.close()


def _write_frame(fh: TextIO, atoms: Atoms, comment: str | None) -> None:
    h = atoms.cell.matrix.reshape(-1)
    lat = " ".join(f"{x:.10f}" for x in h)
    pbc = " ".join("T" if p else "F" for p in atoms.cell.pbc)
    extra = comment or ""
    fh.write(f"{len(atoms)}\n")
    fh.write(f'Lattice="{lat}" pbc="{pbc}" {extra}\n'.rstrip() + "\n")
    for s, p in zip(atoms.symbols, atoms.positions):
        fh.write(f"{s:<3s} {p[0]:18.10f} {p[1]:18.10f} {p[2]:18.10f}\n")


def read_xyz(path_or_file, index: int = 0) -> Atoms:
    """Read frame *index* (negative indices count from the end)."""
    frames = list(iread_xyz(path_or_file))
    if not frames:
        raise IOFormatError("no frames in XYZ input")
    try:
        return frames[index]
    except IndexError:
        raise IOFormatError(
            f"frame {index} out of range; file has {len(frames)} frames"
        ) from None


def iread_xyz(path_or_file) -> Iterator[Atoms]:
    """Iterate over all frames in an (extended-)XYZ file."""
    own = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file)
        own = True
    else:
        fh = path_or_file
    try:
        while True:
            header = fh.readline()
            if not header:
                return
            header = header.strip()
            if not header:
                continue
            try:
                natoms = int(header)
            except ValueError:
                raise IOFormatError(
                    f"expected atom count, got {header!r}"
                ) from None
            comment = fh.readline()
            if not comment:
                raise IOFormatError("truncated XYZ frame: missing comment line")
            symbols, pos = [], []
            for _ in range(natoms):
                line = fh.readline()
                if not line:
                    raise IOFormatError("truncated XYZ frame: missing atom lines")
                parts = line.split()
                if len(parts) < 4:
                    raise IOFormatError(f"malformed atom line: {line!r}")
                symbols.append(parts[0])
                pos.append([float(x) for x in parts[1:4]])
            cell = _parse_cell(comment)
            yield Atoms(symbols, np.array(pos), cell=cell)
    finally:
        if own:
            fh.close()


def _parse_cell(comment: str) -> Cell | None:
    m = _LATTICE_RE.search(comment)
    if not m:
        return None
    values = [float(x) for x in m.group(1).split()]
    if len(values) != 9:
        raise IOFormatError(f"Lattice needs 9 numbers, got {len(values)}")
    h = np.array(values).reshape(3, 3)
    pm = _PBC_RE.search(comment)
    if pm:
        flags = [tok.upper() in ("T", "TRUE", "1") for tok in pm.group(1).split()]
        if len(flags) != 3:
            raise IOFormatError("pbc needs 3 flags")
    else:
        flags = [True, True, True]
    return Cell(h, pbc=flags)

"""XYZ / extended-XYZ structure I/O.

Supports the plain XYZ format and a minimal extended-XYZ dialect with a
``Lattice="ax ay az bx by bz cx cy cz"`` and ``pbc="T T F"`` comment line,
which round-trips the :class:`~repro.geometry.atoms.Atoms` cell.  Multiple
concatenated frames are supported for trajectories.

Frames carry a ``Properties=species:S:1:pos:R:3[:vel:R:3]`` token (the
ASE-compatible column declaration); velocity columns are written whenever
the frame has any non-zero velocity and parsed back on read.  Scalar
per-frame metadata (``step=``, ``time_fs=``, ``epot=``, ...) in the
comment line is surfaced by :func:`iread_frames`.
"""

from __future__ import annotations

import re
from pathlib import Path
from collections.abc import Iterator
from typing import TextIO

import numpy as np

from repro.errors import IOFormatError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell

_LATTICE_RE = re.compile(r'Lattice="([^"]+)"')
_PBC_RE = re.compile(r'pbc="([^"]+)"')
_PROPS_RE = re.compile(r'Properties=(\S+)')
_STEP_RE = re.compile(r'\bstep=(-?\d+)')
#: float-valued comment keys surfaced as frame info on read
_FLOAT_KEYS = ("time_fs", "epot", "ekin", "temperature")
_FLOAT_RES = {k: re.compile(rf'\b{k}=([-+]?[0-9.]+(?:[eE][-+]?\d+)?)')
              for k in _FLOAT_KEYS}


def write_xyz(path_or_file, atoms: Atoms, comment: str | None = None,
              append: bool = False) -> None:
    """Write one frame in extended-XYZ format."""
    own = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file, "a" if append else "w")
        own = True
    else:
        fh = path_or_file
    try:
        _write_frame(fh, atoms, comment)
    finally:
        if own:
            fh.close()


def _write_frame(fh: TextIO, atoms: Atoms, comment: str | None) -> None:
    h = atoms.cell.matrix.reshape(-1)
    # shortest-exact float repr: the lattice survives the round trip
    # bit-for-bit (NPT frames all differ, so truncation would corrupt
    # every reloaded cell)
    lat = " ".join(repr(float(x)) for x in h)
    pbc = " ".join("T" if p else "F" for p in atoms.cell.pbc)
    with_vel = bool(np.any(atoms.velocities))
    props = "species:S:1:pos:R:3" + (":vel:R:3" if with_vel else "")
    extra = comment or ""
    fh.write(f"{len(atoms)}\n")
    fh.write(f'Lattice="{lat}" pbc="{pbc}" Properties={props} '
             f'{extra}\n'.rstrip() + "\n")
    for i, (s, p) in enumerate(zip(atoms.symbols, atoms.positions)):
        line = f"{s:<3s} {p[0]:18.10f} {p[1]:18.10f} {p[2]:18.10f}"
        if with_vel:
            v = atoms.velocities[i]
            line += (f" {repr(float(v[0]))} {repr(float(v[1]))} "
                     f"{repr(float(v[2]))}")
        fh.write(line + "\n")


def read_xyz(path_or_file, index: int = 0) -> Atoms:
    """Read frame *index* (negative indices count from the end)."""
    frames = list(iread_xyz(path_or_file))
    if not frames:
        raise IOFormatError("no frames in XYZ input")
    try:
        return frames[index]
    except IndexError:
        raise IOFormatError(
            f"frame {index} out of range; file has {len(frames)} frames"
        ) from None


def iread_xyz(path_or_file) -> Iterator[Atoms]:
    """Iterate over all frames in an (extended-)XYZ file."""
    for atoms, _info in iread_frames(path_or_file):
        yield atoms


def iread_frames(path_or_file) -> Iterator[tuple[Atoms, dict]]:
    """Iterate over ``(Atoms, info)`` pairs of an (extended-)XYZ file.

    *info* holds whatever scalar metadata the comment line declared:
    ``step`` (int) and any of ``time_fs``/``epot``/``ekin``/
    ``temperature`` (float).  Velocity columns declared by a
    ``Properties=`` token are parsed into ``atoms.velocities``.
    """
    own = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file)
        own = True
    else:
        fh = path_or_file
    try:
        while True:
            header = fh.readline()
            if not header:
                return
            header = header.strip()
            if not header:
                continue
            try:
                natoms = int(header)
            except ValueError:
                raise IOFormatError(
                    f"expected atom count, got {header!r}"
                ) from None
            comment = fh.readline()
            if not comment:
                raise IOFormatError("truncated XYZ frame: missing comment line")
            vel_col = _velocity_column(comment)
            symbols, pos, vel = [], [], []
            for _ in range(natoms):
                line = fh.readline()
                if not line:
                    raise IOFormatError("truncated XYZ frame: missing atom lines")
                parts = line.split()
                if len(parts) < 4:
                    raise IOFormatError(f"malformed atom line: {line!r}")
                symbols.append(parts[0])
                pos.append([float(x) for x in parts[1:4]])
                if vel_col is not None:
                    if len(parts) < vel_col + 3:
                        raise IOFormatError(
                            f"Properties declares velocities but atom line "
                            f"has only {len(parts)} columns: {line!r}")
                    vel.append([float(x)
                                for x in parts[vel_col:vel_col + 3]])
            cell = _parse_cell(comment)
            velocities = np.array(vel) if vel_col is not None else None
            yield (Atoms(symbols, np.array(pos), cell=cell,
                         velocities=velocities),
                   _parse_info(comment))
    finally:
        if own:
            fh.close()


def _velocity_column(comment: str) -> int | None:
    """First atom-line column of the velocity block, per ``Properties=``.

    Returns ``None`` when no velocity columns are declared.  Column 0 is
    the species symbol.
    """
    m = _PROPS_RE.search(comment)
    if not m:
        return None
    toks = m.group(1).split(":")
    if len(toks) % 3:
        raise IOFormatError(
            f"malformed Properties token {m.group(1)!r}: "
            f"expected name:type:ncols triplets")
    col = 0
    for name, _typ, ncols_s in zip(toks[0::3], toks[1::3], toks[2::3]):
        try:
            ncols = int(ncols_s)
        except ValueError:
            raise IOFormatError(
                f"malformed Properties token {m.group(1)!r}: "
                f"column count {ncols_s!r} is not an integer") from None
        if name in ("vel", "velo", "velocities"):
            return col
        col += ncols
    return None


def _parse_info(comment: str) -> dict:
    info: dict = {}
    m = _STEP_RE.search(comment)
    if m:
        info["step"] = int(m.group(1))
    for key, rx in _FLOAT_RES.items():
        fm = rx.search(comment)
        if fm:
            info[key] = float(fm.group(1))
    return info


def _parse_cell(comment: str) -> Cell | None:
    m = _LATTICE_RE.search(comment)
    pm = _PBC_RE.search(comment)
    flags = None
    if pm:
        flags = [tok.upper() in ("T", "TRUE", "1")
                 for tok in pm.group(1).split()]
        if len(flags) != 3:
            raise IOFormatError("pbc needs 3 flags")
    if not m:
        # a pbc flag without a Lattice is still meaningful: all-False
        # pins the frame as an explicit non-periodic cluster, while a
        # periodic axis with no lattice vectors is unreadable
        if flags is None:
            return None
        if any(flags):
            raise IOFormatError(
                'pbc declares a periodic axis but no Lattice= is present')
        return Cell.nonperiodic()
    values = [float(x) for x in m.group(1).split()]
    if len(values) != 9:
        raise IOFormatError(f"Lattice needs 9 numbers, got {len(values)}")
    h = np.array(values).reshape(3, 3)
    return Cell(h, pbc=flags if flags is not None else [True, True, True])

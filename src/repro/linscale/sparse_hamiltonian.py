"""Sparse (CSR) tight-binding Hamiltonian assembly.

The dense builder in :mod:`repro.tb.hamiltonian` allocates M×M even
though a short-ranged TB Hamiltonian has O(M) nonzeros — the wall every
O(N) method hits first.  This module assembles the *same* matrix straight
from the half neighbour list as scipy CSR: each bond contributes its
Slater–Koster block and the block's transpose as COO triplets, periodic
image duplicates summing on conversion (the sparse analogue of the
``np.add.at`` scatter).

The result equals the dense builder to summation order of image
duplicates (~1 ulp; asserted in ``tests/test_linscale.py``), so every
downstream consumer — purification, the dense FOE, and the
localization-region engine — can switch representation freely.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.errors import ModelError
from repro.neighbors.base import NeighborList
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups
from repro.tb.slater_koster import sk_blocks


def block_index_grids(oi: np.ndarray, oj: np.ndarray, ni: int, nj: int
                      ) -> tuple[np.ndarray, np.ndarray]:
    """(P, ni, nj) row/column index grids for per-pair orbital blocks.

    The sparse analogue of the broadcast inside
    :func:`repro.tb.hamiltonian._scatter_blocks`, shared by the CSR
    assembly here and the sparse force gather in
    :mod:`repro.linscale.foe_local`.
    """
    rows = (oi[:, None, None] + np.arange(ni)[None, :, None]
            + np.zeros((1, 1, nj), dtype=int))
    cols = (oj[:, None, None] + np.arange(nj)[None, None, :]
            + np.zeros((1, ni, 1), dtype=int))
    return rows, cols


def _block_triplets(blocks: np.ndarray, oi: np.ndarray, oj: np.ndarray,
                    ni: int, nj: int, phases: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets for (P, ni, nj) blocks *and* their (conjugate)
    transposes.  With *phases* (the per-pair atomic-gauge factors
    ``exp(i k·d)``) the forward blocks are ``p·B`` and the reverse blocks
    their Hermitian conjugates."""
    rows, cols = block_index_grids(oi, oj, ni, nj)
    if phases is not None:
        fwd = blocks * phases[:, None, None]
        bwd = np.conj(np.swapaxes(fwd, 1, 2))
    else:
        fwd = blocks
        bwd = np.swapaxes(blocks, 1, 2)
    r = np.concatenate([rows.ravel(), np.swapaxes(cols, 1, 2).ravel()])
    c = np.concatenate([cols.ravel(), np.swapaxes(rows, 1, 2).ravel()])
    d = np.concatenate([fwd.ravel(), bwd.ravel()])
    return r, c, d


def _build_sparse(atoms, model, nl: NeighborList,
                  with_overlap: bool | None, k_cart
                  ) -> tuple[sp.csr_matrix, sp.csr_matrix | None]:
    """Shared COO → CSR assembly for Γ (``k_cart=None``) and finite k."""
    symbols = atoms.symbols
    model.check_species(symbols)
    offsets, m = orbital_offsets(symbols, model)
    k = None if k_cart is None else np.asarray(k_cart, dtype=float).reshape(3)
    dtype = float if k is None else complex

    if with_overlap is None:
        with_overlap = not model.orthogonal

    h_rows, h_cols, h_data = [], [], []
    s_rows, s_cols, s_data = [], [], []

    # on-site terms (and the unit overlap diagonal) — always real
    for idx, sym in enumerate(symbols):
        e = model.onsite(sym)
        o = offsets[idx]
        h_rows.append(np.arange(o, o + len(e)))
        h_cols.append(np.arange(o, o + len(e)))
        h_data.append(np.asarray(e, dtype=dtype))
    if with_overlap:
        s_rows.append(np.arange(m))
        s_cols.append(np.arange(m))
        s_data.append(np.ones(m, dtype=dtype))

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]
        phases = None if k is None else np.exp(1j * (vec @ k))

        V, _ = model.hopping(sa, sb, r)
        blocks = sk_blocks(u, V)[:, :ni, :nj]
        rr, cc, dd = _block_triplets(blocks, oi, oj, ni, nj, phases=phases)
        h_rows.append(rr)
        h_cols.append(cc)
        h_data.append(dd)

        if with_overlap:
            ov = model.overlap(sa, sb, r)
            if ov is None:
                raise ModelError(
                    f"model {model.name!r} requested with overlap but "
                    f"returns none for pair ({sa}, {sb})"
                )
            sblocks = sk_blocks(u, ov[0])[:, :ni, :nj]
            rr, cc, dd = _block_triplets(sblocks, oi, oj, ni, nj,
                                         phases=phases)
            s_rows.append(rr)
            s_cols.append(cc)
            s_data.append(dd)

    H = sp.coo_matrix(
        (np.concatenate(h_data),
         (np.concatenate(h_rows), np.concatenate(h_cols))),
        shape=(m, m)).tocsr()
    H.sum_duplicates()
    if not with_overlap:
        return H, None
    S = sp.coo_matrix(
        (np.concatenate(s_data),
         (np.concatenate(s_rows), np.concatenate(s_cols))),
        shape=(m, m)).tocsr()
    S.sum_duplicates()
    return H, S


def build_sparse_hamiltonian(atoms, model, nl: NeighborList,
                             with_overlap: bool | None = None
                             ) -> tuple[sp.csr_matrix, sp.csr_matrix | None]:
    """Assemble the Γ-point Hamiltonian (and overlap) in CSR form.

    Returns ``(H, S)`` with ``S`` ``None`` for orthogonal models; both are
    real symmetric and numerically identical to
    :func:`repro.tb.hamiltonian.build_hamiltonian`.
    """
    return _build_sparse(atoms, model, nl, with_overlap, None)


def build_sparse_hamiltonian_k(atoms, model, nl: NeighborList, k_cart,
                               with_overlap: bool | None = None
                               ) -> tuple[sp.csr_matrix, sp.csr_matrix | None]:
    """Assemble the complex Hermitian H(k) (and S(k)) in CSR form.

    The sparse twin of :func:`repro.tb.hamiltonian.build_hamiltonian_k`:
    the same atomic-gauge phases ``exp(i k·d)`` on the same half-list
    bonds, with periodic-image duplicates (which carry *different*
    phases) summing on CSR conversion.  Returns ``(H_k, S_k)`` with
    ``S_k`` ``None`` for orthogonal models.
    """
    return _build_sparse(atoms, model, nl, with_overlap, k_cart)


def hamiltonian_fill_fraction(H: sp.spmatrix) -> float:
    """nnz / M² — how much the dense builder over-allocates."""
    m = H.shape[0]
    return H.nnz / float(m * m) if m else 0.0


class SparseHamiltonianBuilder:
    """Incremental CSR assembler for MD: reuse the pattern, rewrite values.

    :func:`build_sparse_hamiltonian` pays the full COO → CSR conversion
    (lexsort, duplicate merge, structure allocation) on every call even
    though the *sparsity pattern* of a TB Hamiltonian only changes when a
    bond crosses the cutoff — rare between MD steps, and detectable by
    comparing the neighbour-list pair arrays.  This builder caches, per
    pattern:

    * the species-pair groups and their orbital block index layout,
    * the lexsort permutation and duplicate-merge boundaries mapping raw
      block triplets onto unique CSR slots,
    * the CSR ``indices`` / ``indptr`` structure itself,
    * the constant on-site data and the last hopping blocks per group.

    A pattern *hit* then costs only the Slater–Koster value recomputation
    plus one gather/reduce into the cached structure; and when only a
    subset of atoms moved (``moved`` mask — numerical phonons, partial
    relaxations, frozen regions), hopping is re-evaluated **only for the
    bonds whose neighbour environment changed** — the incremental
    row-rewrite of the MD fast path.  The assembled matrix equals
    :func:`build_sparse_hamiltonian` to duplicate-summation order
    (≤ ~1 ulp).

    Orthogonal models only (the O(N) pipeline's contract); the overlap
    path stays on the full builder.
    """

    def __init__(self, model):
        if not model.orthogonal:
            raise ModelError(
                "SparseHamiltonianBuilder supports orthogonal models only; "
                "use build_sparse_hamiltonian for S-metric models"
            )
        self.model = model
        self.n_pattern_builds = 0
        self.n_value_updates = 0
        self.n_partial_updates = 0
        self.reset()

    def reset(self) -> None:
        """Drop the cached pattern (next :meth:`build` is a full build)."""
        self._sig_i: np.ndarray | None = None
        self._sig_j: np.ndarray | None = None
        self._symbols: tuple | None = None
        self._groups: list | None = None
        self._perm = None            # lexsort permutation of raw triplets
        self._starts = None          # reduceat boundaries of unique slots
        self._indices = None         # cached CSR structure
        self._indptr = None
        self._m = 0
        self._raw = None             # raw triplet data vector (layout-fixed)
        self._raw_k = None           # complex twin of _raw for H(k) emits
        self._onsite_len = 0

    def stats(self) -> dict:
        """Assembly counters: pattern builds vs value-only rewrites."""
        return {"pattern_builds": self.n_pattern_builds,
                "value_updates": self.n_value_updates,
                "partial_updates": self.n_partial_updates}

    # -- full (pattern) build ----------------------------------------------
    def _build_pattern(self, atoms, nl: NeighborList) -> None:
        symbols = atoms.symbols
        model = self.model
        offsets, m = orbital_offsets(symbols, model)

        onsite = np.concatenate(
            [np.asarray(model.onsite(s), dtype=float) for s in symbols])
        rows = [np.arange(m)]
        cols = [np.arange(m)]

        groups = []
        cursor = m
        for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
            ni, nj = model.norb(sa), model.norb(sb)
            oi = offsets[nl.i[pidx]]
            oj = offsets[nl.j[pidx]]
            rgrid, cgrid = block_index_grids(oi, oj, ni, nj)
            rows.append(np.concatenate(
                [rgrid.ravel(), np.swapaxes(cgrid, 1, 2).ravel()]))
            cols.append(np.concatenate(
                [cgrid.ravel(), np.swapaxes(rgrid, 1, 2).ravel()]))
            seg_len = 2 * len(pidx) * ni * nj
            groups.append({
                "sa": sa, "sb": sb, "pidx": pidx, "ni": ni, "nj": nj,
                "slice": slice(cursor, cursor + seg_len),
                "blocks": None,
            })
            cursor += seg_len

        r = np.concatenate(rows)
        c = np.concatenate(cols)
        perm = np.lexsort((c, r))
        rs, cs = r[perm], c[perm]
        is_first = np.ones(len(rs), dtype=bool)
        if len(rs) > 1:
            is_first[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        starts = np.flatnonzero(is_first)
        indices = cs[starts]
        counts = np.bincount(rs[starts], minlength=m)
        indptr = np.concatenate(([0], np.cumsum(counts)))

        self._sig_i = nl.i.copy()
        self._sig_j = nl.j.copy()
        self._symbols = tuple(symbols)
        self._groups = groups
        self._perm = perm
        self._starts = starts
        self._indices = indices.astype(np.int32, copy=False)
        self._indptr = indptr.astype(np.int32, copy=False)
        self._m = m
        self._raw = np.empty(cursor)
        self._raw[:m] = onsite
        self._onsite_len = m
        self.n_pattern_builds += 1

        self._write_group_values(nl, dirty=None)

    # -- value paths --------------------------------------------------------
    def _write_group_values(self, nl: NeighborList,
                            dirty: np.ndarray | None) -> None:
        """(Re)compute SK blocks and write them into the raw data vector.

        ``dirty`` is a boolean mask over the *pair* axis; ``None`` means
        recompute every bond.  Clean bonds keep their cached block values
        — their endpoints did not move, so their vectors are unchanged.
        """
        model = self.model
        for g in self._groups:
            pidx = g["pidx"]
            sel = None if dirty is None else np.flatnonzero(dirty[pidx])
            if sel is not None and len(sel) == 0 and g["blocks"] is not None:
                continue
            if sel is None or g["blocks"] is None or \
                    len(sel) * 2 >= len(pidx):
                take = pidx
                dst = None
            else:
                take = pidx[sel]
                dst = sel
            r = nl.distances[take]
            u = nl.vectors[take] / r[:, None]
            V, _ = model.hopping(g["sa"], g["sb"], r)
            blocks = sk_blocks(u, V)[:, :g["ni"], :g["nj"]]
            if dst is None:
                g["blocks"] = blocks
            else:
                g["blocks"][dst] = blocks
            seg = self._raw[g["slice"]]
            half = seg.shape[0] // 2
            seg[:half] = g["blocks"].ravel()
            seg[half:] = np.swapaxes(g["blocks"], 1, 2).ravel()

    def _emit(self) -> sp.csr_matrix:
        data = np.add.reduceat(self._raw[self._perm], self._starts) \
            if len(self._starts) else np.zeros(0)
        return sp.csr_matrix((data, self._indices, self._indptr),
                             shape=(self._m, self._m))

    def _ensure_values(self, atoms, nl: NeighborList,
                       moved: np.ndarray | None) -> None:
        """Bring the raw value vector (and cached SK blocks) up to date:
        full pattern rebuild on a miss, value/dirty-row rewrite on a hit."""
        pattern_hit = (
            self._groups is not None
            and self._symbols == tuple(atoms.symbols)
            and np.array_equal(self._sig_i, nl.i)
            and np.array_equal(self._sig_j, nl.j)
        )
        if not pattern_hit:
            obs.counter_inc("hamiltonian.pattern_miss")
            self._build_pattern(atoms, nl)
            return
        obs.counter_inc("hamiltonian.pattern_hit")

        dirty = None
        if moved is not None and moved.any() and not moved.all():
            dirty = moved[nl.i] | moved[nl.j]
            self.n_partial_updates += 1
        elif moved is not None and not moved.any():
            # nothing moved: the cached values are exactly current
            self.n_value_updates += 1
            return
        self.n_value_updates += 1
        self._write_group_values(nl, dirty=dirty)

    def build(self, atoms, nl: NeighborList,
              moved: np.ndarray | None = None) -> sp.csr_matrix:
        """Assemble H; value-only rewrite when the bond pattern is cached.

        Parameters
        ----------
        atoms, nl :
            Structure and its half neighbour list at the model cutoff.
        moved :
            Optional boolean (N,) mask of atoms whose positions changed
            since the previous call (from
            :meth:`repro.state.CalculatorState.observe`).  On a pattern
            hit, only bonds touching a moved atom are re-evaluated.
        """
        self._ensure_values(atoms, nl, moved)
        return self._emit()

    def build_k(self, atoms, nl: NeighborList, k_carts,
                moved: np.ndarray | None = None) -> list[sp.csr_matrix]:
        """Assemble complex Hermitian H(k) for every Cartesian k point.

        The k-aware face of the incremental builder: the sparsity
        pattern, lexsort/merge maps and Slater–Koster blocks are all
        k-*independent* (bonds are real-space objects), so they are
        maintained exactly as for :meth:`build` — one pattern cache, one
        set of value/dirty-row rewrites — and each k point only pays the
        atomic-gauge phases ``exp(i k·d)`` plus one gather/reduce into
        the shared CSR structure.  Periodic-image duplicate bonds carry
        different phases and sum in the duplicate merge, which is what
        makes the result numerically identical to
        :func:`build_sparse_hamiltonian_k` /
        :func:`repro.tb.hamiltonian.build_hamiltonian_k`.

        Parameters
        ----------
        k_carts :
            (K, 3) Cartesian k points (Å⁻¹); a single 3-vector is
            accepted.
        moved :
            As for :meth:`build`.

        Returns
        -------
        list of K complex CSR matrices sharing one structure.
        """
        self._ensure_values(atoms, nl, moved)
        k_carts = np.atleast_2d(np.asarray(k_carts, dtype=float))
        if self._raw_k is None or len(self._raw_k) != len(self._raw):
            self._raw_k = np.empty(len(self._raw), dtype=complex)
        raw_k = self._raw_k
        out = []
        for k in k_carts:
            raw_k[:self._onsite_len] = self._raw[:self._onsite_len]
            for g in self._groups:
                vec = nl.vectors[g["pidx"]]
                phases = np.exp(1j * (vec @ k))
                fwd = g["blocks"] * phases[:, None, None]
                seg = raw_k[g["slice"]]
                half = seg.shape[0] // 2
                seg[:half] = fwd.ravel()
                seg[half:] = np.conj(np.swapaxes(fwd, 1, 2)).ravel()
            data = np.add.reduceat(raw_k[self._perm], self._starts) \
                if len(self._starts) else np.zeros(0, dtype=complex)
            out.append(sp.csr_matrix((data, self._indices, self._indptr),
                                     shape=(self._m, self._m)))
        return out

"""Sparse (CSR) tight-binding Hamiltonian assembly.

The dense builder in :mod:`repro.tb.hamiltonian` allocates M×M even
though a short-ranged TB Hamiltonian has O(M) nonzeros — the wall every
O(N) method hits first.  This module assembles the *same* matrix straight
from the half neighbour list as scipy CSR: each bond contributes its
Slater–Koster block and the block's transpose as COO triplets, periodic
image duplicates summing on conversion (the sparse analogue of the
``np.add.at`` scatter).

The result equals the dense builder to summation order of image
duplicates (~1 ulp; asserted in ``tests/test_linscale.py``), so every
downstream consumer — purification, the dense FOE, and the
localization-region engine — can switch representation freely.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError
from repro.neighbors.base import NeighborList
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups
from repro.tb.slater_koster import sk_blocks


def block_index_grids(oi: np.ndarray, oj: np.ndarray, ni: int, nj: int
                      ) -> tuple[np.ndarray, np.ndarray]:
    """(P, ni, nj) row/column index grids for per-pair orbital blocks.

    The sparse analogue of the broadcast inside
    :func:`repro.tb.hamiltonian._scatter_blocks`, shared by the CSR
    assembly here and the sparse force gather in
    :mod:`repro.linscale.foe_local`.
    """
    rows = (oi[:, None, None] + np.arange(ni)[None, :, None]
            + np.zeros((1, 1, nj), dtype=int))
    cols = (oj[:, None, None] + np.arange(nj)[None, None, :]
            + np.zeros((1, ni, 1), dtype=int))
    return rows, cols


def _block_triplets(blocks: np.ndarray, oi: np.ndarray, oj: np.ndarray,
                    ni: int, nj: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets for (P, ni, nj) blocks *and* their transposes."""
    rows, cols = block_index_grids(oi, oj, ni, nj)
    blocks_t = np.swapaxes(blocks, 1, 2)
    r = np.concatenate([rows.ravel(), np.swapaxes(cols, 1, 2).ravel()])
    c = np.concatenate([cols.ravel(), np.swapaxes(rows, 1, 2).ravel()])
    d = np.concatenate([blocks.ravel(), blocks_t.ravel()])
    return r, c, d


def build_sparse_hamiltonian(atoms, model, nl: NeighborList,
                             with_overlap: bool | None = None
                             ) -> tuple[sp.csr_matrix, sp.csr_matrix | None]:
    """Assemble the Γ-point Hamiltonian (and overlap) in CSR form.

    Returns ``(H, S)`` with ``S`` ``None`` for orthogonal models; both are
    real symmetric and numerically identical to
    :func:`repro.tb.hamiltonian.build_hamiltonian`.
    """
    symbols = atoms.symbols
    model.check_species(symbols)
    offsets, m = orbital_offsets(symbols, model)

    if with_overlap is None:
        with_overlap = not model.orthogonal

    h_rows, h_cols, h_data = [], [], []
    s_rows, s_cols, s_data = [], [], []

    # on-site terms (and the unit overlap diagonal)
    for idx, sym in enumerate(symbols):
        e = model.onsite(sym)
        o = offsets[idx]
        h_rows.append(np.arange(o, o + len(e)))
        h_cols.append(np.arange(o, o + len(e)))
        h_data.append(np.asarray(e, dtype=float))
    if with_overlap:
        s_rows.append(np.arange(m))
        s_cols.append(np.arange(m))
        s_data.append(np.ones(m))

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        u = nl.vectors[pidx] / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]

        V, _ = model.hopping(sa, sb, r)
        blocks = sk_blocks(u, V)[:, :ni, :nj]
        rr, cc, dd = _block_triplets(blocks, oi, oj, ni, nj)
        h_rows.append(rr)
        h_cols.append(cc)
        h_data.append(dd)

        if with_overlap:
            ov = model.overlap(sa, sb, r)
            if ov is None:
                raise ModelError(
                    f"model {model.name!r} requested with overlap but "
                    f"returns none for pair ({sa}, {sb})"
                )
            sblocks = sk_blocks(u, ov[0])[:, :ni, :nj]
            rr, cc, dd = _block_triplets(sblocks, oi, oj, ni, nj)
            s_rows.append(rr)
            s_cols.append(cc)
            s_data.append(dd)

    H = sp.coo_matrix(
        (np.concatenate(h_data),
         (np.concatenate(h_rows), np.concatenate(h_cols))),
        shape=(m, m)).tocsr()
    H.sum_duplicates()
    if not with_overlap:
        return H, None
    S = sp.coo_matrix(
        (np.concatenate(s_data),
         (np.concatenate(s_rows), np.concatenate(s_cols))),
        shape=(m, m)).tocsr()
    S.sum_duplicates()
    return H, S


def hamiltonian_fill_fraction(H: sp.spmatrix) -> float:
    """nnz / M² — how much the dense builder over-allocates."""
    m = H.shape[0]
    return H.nnz / float(m * m) if m else 0.0

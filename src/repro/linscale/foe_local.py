"""Fermi-operator expansion evaluated inside localization regions.

The O(N) electronic kernel of Goedecker & Colombo (1994): instead of one
Chebyshev polynomial of the *global* Hamiltonian (dense FOE,
:mod:`repro.tb.chebyshev`), run the two-term recursion independently in
every localization region, keeping only the density-matrix rows of each
region's core atom.  Each region solve is a block matvec chain
``v_{k+1} = 2 H̃_loc v_k − v_{k−1}`` on the core basis columns — the
block-partitioned matvec idiom — and regions are independent, so they
batch through the process pool.

The paper's central objects (Goedecker & Colombo, PRL 73, 122 (1994)):
the finite-temperature density matrix as the Fermi operator of the
Hamiltonian, ``ρ = f((H − μ)/kT)`` (Eq. 1), its Chebyshev expansion
``ρ ≈ Σ_k c_k T_k(H̃)`` (Eq. 3), and the truncation of each column of ρ
to a localization region, which is what turns the expansion O(N).

Two evaluation strategies are provided:

**Reference two-pass** (:func:`solve_density_regions`):

1. **Moments** — per region, the scalar Chebyshev moments
   ``m_k = Σ_{μ∈core} [T_k(H̃)]_{μμ}`` and energy moments
   ``e_k = Σ_{μ∈core} [T_k(H̃) H]_{μμ}``.  Summed over regions these give
   the electron count ``N(μ) = Σ_k c_k(μ) M_k`` (μ found by bisection at
   scalar cost — no matrix work per trial), the band energy, the
   electronic entropy, and per-atom Mulliken populations.
2. **Density rows** — with μ fixed, re-run the recursion accumulating
   ``ρ_rows = Σ_k c_k v_k`` for the core orbitals.  Stacked over regions
   these rows form a sparse approximation ρ̂ of the global density matrix
   (every orbital is the core of exactly one region); the symmetrised
   ``(ρ̂ + ρ̂ᵀ)/2`` feeds the Hellmann–Feynman force contraction.

**Fused single-pass** (:func:`solve_density_regions_fused`) — the MD fast
path.  The matvec chain is the same for both passes, so with a good μ
guess (last step's value) one recursion can produce *everything*: the
moments **and** a small stack of density-row accumulants — rows of
``f(H)``, ``∂f/∂μ(H)``, … at the guessed μ.  After the pass, the *exact*
μ is bisected from the (exact) moments and the density rows are corrected
by a μ-Taylor series; the remainder is O((Δμ/kT)⁴), checked against a
tolerance, with an automatic second-pass fallback when the guess was too
far off.  Energies, entropy and populations always come from the exact
moments, so only ρ (hence forces) carries the — bounded — Taylor error.
This halves the dominant cost of an MD step.

All scalar functions are expanded with the shared helpers in
:mod:`repro.tb.chebyshev`, on one global ``(center, span)`` scaling from
tight Lanczos bounds of the sparse H (submatrix spectra interlace, so
every region is covered).  Callers may pass a *cached* window; validity
is then checked a posteriori from the moments (``|m_k| ≤ n_core`` on a
valid window) and a stale window raises
:class:`~repro.errors.SpectralWindowError`.  Orthogonal models only,
like purification.

The region recursions themselves are evaluated through a pluggable
array backend (:mod:`repro.linscale.backends`): the solvers hand each
batch of regions to the selected :class:`~repro.linscale.backends.base.
Backend` as a :class:`~repro.linscale.backends.base.RegionBlockSource`
— ``numpy_loop`` reproduces the historical per-region loop exactly,
``numpy_batched`` runs shape-bucketed stacked-GEMM recursions (the MD
fast path's production backend).  Pass ``backend=`` by name or
instance, or set the ``REPRO_BACKEND`` environment variable.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ElectronicError, SpectralWindowError
from repro.neighbors.base import NeighborList
from repro.parallel.decomposition import block_partition
from repro.parallel.pool import map_tasks
from repro.tb.chebyshev import (
    entropy_coefficients,
    fermi_coefficients,
    fermi_mu_derivative_coefficients,
    solve_mu_from_moments,
)
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups
from repro.tb.purification import lanczos_spectral_bounds
from repro.tb.slater_koster import sk_block_gradients
from repro.linscale.backends import resolve_backend
from repro.linscale.backends.base import RegionBlockSource
from repro.linscale.backends.kernels import (
    hermitian_inner,
    region_density_rows,
    region_fused,
    region_moments,
)
from repro.linscale.regions import LocalizationRegion
from repro.linscale.sparse_hamiltonian import block_index_grids


# ---------------------------------------------------------------------------
# Per-region kernels — owned by the backend layer now
# (:mod:`repro.linscale.backends.kernels`); the historical private names
# stay importable from here.
# ---------------------------------------------------------------------------

_hermitian_inner = hermitian_inner
_region_moments = region_moments
_region_density_rows = region_density_rows
_region_fused = region_fused


def _moments_worker(args):
    """One chunk: build a block source over the (shared) sparse H and run
    the named backend's moment batch — densifying inside the worker keeps
    the parent from shipping dense blocks through the pipe."""
    H, specs, center, span, order, backend = args
    blocks = RegionBlockSource(H, specs)
    return resolve_backend(backend).moments(blocks, center, span, order)


def _density_worker(args):
    H, specs, center, span, coeffs, backend = args
    blocks = RegionBlockSource(H, specs)
    return resolve_backend(backend).density_rows(blocks, center, span, coeffs)


def _fused_worker(args):
    H, specs, center, span, deriv_coeffs, backend = args
    blocks = RegionBlockSource(H, specs)
    return resolve_backend(backend).fused(blocks, center, span, deriv_coeffs)


def build_region_gather_maps(H: sp.csr_matrix,
                             regions: list[LocalizationRegion]
                             ) -> list[np.ndarray]:
    """Per-region dense gather maps into (padded) ``H.data``.

    Regions overlap heavily (every atom sits in ~tens of halos), so
    densifying each region by CSR slicing re-walks the same sparse rows
    over and over — the dominant non-recursion cost of a fast-path step.
    These maps amortise that walk: ``maps[r]`` is an (n, n) int32 array
    with ``h_sub = data_pad[maps[r]]`` where
    ``data_pad = append(H.data, 0.0)`` (the last slot backs structural
    zeros).  Maps depend only on the CSR *structure* and the region
    orbital lists, both of which the fast path already caches — rebuild
    them when either changes.

    Memory is O(Σ n_region²) int32 — the same order as one set of dense
    region Hamiltonians — so callers cap total map size and fall back to
    CSR slicing beyond it (see
    :meth:`~repro.linscale.calculator.LinearScalingCalculator`).
    """
    H = sp.csr_matrix(H)
    indptr, indices = H.indptr, H.indices
    nil = len(H.data)
    maps = []
    for region in regions:
        orb = region.orbitals
        n = len(orb)
        lo = indptr[orb]
        counts = indptr[orb + 1] - lo
        total = int(counts.sum())
        # flat indices into H.data of every stored element in these rows
        offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
        flat = np.repeat(lo - offsets, counts) + np.arange(total)
        row_rep = np.repeat(np.arange(n), counts)
        cols = indices[flat]
        pos = np.searchsorted(orb, cols)
        pos_c = np.minimum(pos, n - 1)
        ok = orb[pos_c] == cols
        m = np.full((n, n), nil, dtype=np.int32)
        m[row_rep[ok], pos_c[ok]] = flat[ok]
        maps.append(m)
    return maps


# ---------------------------------------------------------------------------
# Chemical potential from aggregated moments
# ---------------------------------------------------------------------------

def chemical_potential_from_moments(moments: np.ndarray, center: float,
                                    span: float, kT: float,
                                    n_electrons: float,
                                    bracket: tuple[float, float],
                                    tol: float = 1e-10,
                                    max_iter: int = 100) -> float:
    """Solve ``Σ_k c_k(μ) M_k = n_electrons`` for μ (bisection + Newton).

    Thin wrapper over the shared
    :func:`repro.tb.chebyshev.solve_mu_from_moments` — the dense FOE and
    the region engine use the *same* μ search, with the same bracket-
    independent Newton polish, so warm-started and cold searches return
    identical chemical potentials.
    """
    return solve_mu_from_moments(moments, center, span, kT, n_electrons,
                                 bracket=bracket, tol=tol,
                                 max_iter=max_iter)


def _find_mu(moments: np.ndarray, center: float, span: float, kT: float,
             n_electrons: float, full_bracket: tuple[float, float],
             warm_bracket: tuple[float, float] | None = None) -> float:
    """μ search with an optional warm bracket (previous step's μ ± pad).

    The warm bracket is verified (and silently widened to the full
    spectral bracket when stale) inside the shared solver.
    """
    return solve_mu_from_moments(moments, center, span, kT, n_electrons,
                                 bracket=full_bracket,
                                 warm_bracket=warm_bracket)


# ---------------------------------------------------------------------------
# The region solve
# ---------------------------------------------------------------------------

@dataclass
class RegionFOEResult:
    """Everything the O(N) electronic step produces.

    ``rho`` is the symmetrised spin-summed sparse density matrix built
    from core rows (``None`` when the solve was run energy-only);
    ``populations`` are per-atom Mulliken electron populations
    (Σ = ``n_electrons``); ``entropy`` is in eV/K.  ``mu_shift`` is the
    distance from the warm-start guess to the converged μ (0.0 for cold
    solves) and ``used_fallback`` records that a fused solve had to run
    the second density pass after all.
    """

    rho: sp.csr_matrix | None
    band_energy: float
    mu: float
    entropy: float
    populations: np.ndarray
    n_electrons: float
    order: int
    spectral_bounds: tuple[float, float]
    n_regions: int
    mu_shift: float = 0.0
    used_fallback: bool = False


def _scaled_window(emin: float, emax: float) -> tuple[float, float]:
    """(center, span) of the Chebyshev variable, with the stability pad."""
    span = 0.5 * (emax - emin) * 1.01
    center = 0.5 * (emax + emin)
    if span <= 0:
        raise ElectronicError("degenerate spectral bounds")
    return center, span


def _validate_regions(H, regions: list[LocalizationRegion]) -> sp.csr_matrix:
    H = sp.csr_matrix(H)
    m_total = H.shape[0]
    n_core_total = sum(len(r.core_local) for r in regions)
    if n_core_total != m_total:
        raise ElectronicError(
            f"regions cover {n_core_total} core orbitals but H has "
            f"{m_total}; every orbital must be the core of exactly one region"
        )
    return H

def _chunk_specs(regions: list[LocalizationRegion], nworkers: int
                 ) -> tuple[list, list]:
    """Region (orbitals, core_local) specs and their pool chunking.

    Workers receive (sparse H, region specs) and densify one region at a
    time; H travels once per chunk, so a pool of nworkers gets exactly
    nworkers chunks (regions are near-equal, block partition balances),
    while the inline/injected-executor path chunks finer so an external
    pool of unknown width can load-balance.
    """
    specs = [(r.orbitals, r.core_local) for r in regions]
    nchunks = nworkers if nworkers > 1 else min(len(regions), 8)
    chunks = [c for c in block_partition(len(regions), nchunks) if len(c)]
    return specs, chunks


def _check_window(m_per: np.ndarray, regions: list[LocalizationRegion],
                  window: tuple[float, float]) -> None:
    """A-posteriori window validity from the moments.

    On a valid window every region eigenvalue maps into [−1, 1], so
    ``|m_k| ≤ n_core`` exactly; outside it T_k grows exponentially and
    the moments blow through that bound within a few k.  Cheap (the
    moments already exist) and reliable for any meaningful violation.
    """
    nc_per = m_per[:, 0]
    if np.any(np.abs(m_per) > nc_per[:, None] * 1.5 + 1.0):
        raise SpectralWindowError(
            f"cached spectral window {window} no longer contains the "
            "Hamiltonian spectrum (Chebyshev moments exceed the n_core "
            "bound); refresh the Lanczos bounds and re-solve"
        )


def _assemble_rho(regions: list[LocalizationRegion], rows_per_region: list,
                  m_total: int) -> sp.csr_matrix:
    """Stack core rows into the symmetrised (Hermitised) sparse ρ̂."""
    coo_r, coo_c, coo_d = [], [], []
    for region, rho_rows in zip(regions, rows_per_region):
        core_global = region.orbitals[region.core_local]
        coo_r.append(np.repeat(core_global, region.n_orbitals))
        coo_c.append(np.tile(region.orbitals, len(core_global)))
        coo_d.append(rho_rows.ravel())
    rho_hat = sp.coo_matrix(
        (np.concatenate(coo_d),
         (np.concatenate(coo_r), np.concatenate(coo_c))),
        shape=(m_total, m_total)).tocsr()
    rho_t = rho_hat.getH() if np.iscomplexobj(rho_hat.data) else rho_hat.T
    return (0.5 * (rho_hat + rho_t)).tocsr()


def solve_density_regions(H, regions: list[LocalizationRegion],
                          n_electrons: float, kT: float, order: int = 150,
                          mu: float | None = None, nworkers: int = 1,
                          executor=None, with_rho: bool = True,
                          window: tuple[float, float] | None = None,
                          mu_bracket: tuple[float, float] | None = None,
                          backend=None,
                          gather_maps: list[np.ndarray] | None = None
                          ) -> RegionFOEResult:
    """FOE-in-regions density matrix from a sparse Hamiltonian (two-pass).

    Parameters
    ----------
    H :
        Real symmetric Hamiltonian, scipy sparse (dense accepted and
        converted).  Orthogonal basis assumed.
    regions :
        Output of :func:`repro.linscale.regions.extract_regions`; their
        core orbitals must tile all of H exactly once.
    n_electrons :
        Spin-summed electron count; μ is bisected from region moments
        unless given.
    kT :
        Electronic temperature in eV; must be > 0 (the expansion order
        needed grows with spectral width / kT).
    order :
        Chebyshev order K.
    nworkers, executor :
        Region batches are fanned out through
        :func:`repro.parallel.pool.map_tasks`.
    with_rho :
        ``False`` skips the second (density-rows) pass entirely — band
        energy, entropy, μ and populations all come from the moments, so
        energy-only evaluations cost half the Chebyshev work and return
        ``rho=None``.
    window :
        Optional precomputed spectral bounds ``(emin, emax)``; skips the
        Lanczos solves.  A stale window (spectrum escaped it) raises
        :class:`~repro.errors.SpectralWindowError` via the moment check.
    mu_bracket :
        Optional warm μ bracket (e.g. last step's μ ± a few kT); verified
        and widened automatically when it no longer brackets the count.
    backend :
        Array backend evaluating the region batches — a name from
        :func:`repro.linscale.backends.available_backends`, an instance,
        or ``None`` for the ``REPRO_BACKEND``/default resolution.
    gather_maps :
        Optional cached :func:`build_region_gather_maps` output; the
        inline (``nworkers == 1``, no executor) path then densifies each
        region with one fancy gather instead of CSR slicing.  Ignored on
        the pooled path, where shipping the maps would cost more than
        they save.
    """
    if kT <= 0:
        raise ElectronicError("FOE-in-regions needs kT > 0")
    if order < 2:
        raise ElectronicError("expansion order must be >= 2")
    H = _validate_regions(H, regions)
    m_total = H.shape[0]
    backend = resolve_backend(backend)

    cached_window = window is not None
    emin, emax = window if cached_window else lanczos_spectral_bounds(H)
    center, span = _scaled_window(emin, emax)

    specs, chunks = _chunk_specs(regions, nworkers)
    inline = executor is None and nworkers == 1
    if inline:
        # both passes share one densification per region (cache capped)
        blocks = RegionBlockSource(H, specs, gather_maps=gather_maps,
                                   cache=with_rho)

    own_pool = None
    if executor is None and nworkers > 1:
        # one pool for both passes instead of a spawn per map_tasks call
        own_pool = ProcessPoolExecutor(max_workers=nworkers)
        executor = own_pool
    try:
        # -- pass 1: moments → μ, band energy, entropy, populations --------
        if inline:
            per_region = backend.moments(blocks, center, span, order)
        else:
            tasks = [(H, [specs[i] for i in c], center, span, order,
                      backend.name) for c in chunks]
            per_region = [mo for chunk in
                          map_tasks(_moments_worker, tasks, nworkers,
                                    executor)
                          for mo in chunk]
        m_per = np.stack([m for m, _ in per_region])      # (R, K+1)
        e_per = np.stack([e for _, e in per_region])
        if cached_window:
            _check_window(m_per, regions, (emin, emax))
        m_sum = m_per.sum(axis=0)
        e_sum = e_per.sum(axis=0)

        if mu is None:
            mu = _find_mu(m_sum, center, span, kT, n_electrons,
                          full_bracket=(emin - 10.0 * kT, emax + 10.0 * kT),
                          warm_bracket=mu_bracket)

        coeffs = fermi_coefficients(center, span, mu, kT, order)
        band_energy = float(coeffs @ e_sum)
        entropy = float(entropy_coefficients(center, span, mu, kT, order)
                        @ m_sum)
        populations = m_per @ coeffs

        # -- pass 2: core density rows → sparse ρ --------------------------
        rho = None
        if with_rho:
            if inline:
                rows_per_region = backend.density_rows(blocks, center, span,
                                                       coeffs)
            else:
                tasks = [(H, [specs[i] for i in c], center, span, coeffs,
                          backend.name) for c in chunks]
                rows_per_region = [rr for chunk in
                                   map_tasks(_density_worker, tasks,
                                             nworkers, executor)
                                   for rr in chunk]
    finally:
        if own_pool is not None:
            own_pool.shutdown()

    if with_rho:
        rho = _assemble_rho(regions, rows_per_region, m_total)

    return RegionFOEResult(
        rho=rho, band_energy=band_energy, mu=float(mu), entropy=entropy,
        populations=populations, n_electrons=float(populations.sum()),
        order=order, spectral_bounds=(emin, emax), n_regions=len(regions))


def solve_density_regions_fused(H, regions: list[LocalizationRegion],
                                n_electrons: float, kT: float,
                                order: int = 150, *,
                                window: tuple[float, float],
                                mu_guess: float,
                                nworkers: int = 1, executor=None,
                                rho_tol: float = 1e-10,
                                gather_maps: list[np.ndarray] | None = None,
                                backend=None
                                ) -> RegionFOEResult:
    """Single-pass FOE-in-regions with μ-Taylor correction (MD fast path).

    One Chebyshev recursion per region produces the moments *and* a stack
    of density-row accumulants — rows of f(H), ∂f/∂μ(H), ∂²f/∂μ²(H),
    ∂³f/∂μ³(H) at ``mu_guess``.  The exact μ is then bisected from the
    moments (identical to the two-pass result) and the density rows are
    corrected to third order in Δμ = μ − μ_guess.  Energies, entropy and
    populations are evaluated at the exact μ and carry **no** Taylor
    error; ρ carries a remainder of O((Δμ/kT)⁴)/24, kept below *rho_tol*
    by falling back to an explicit second density pass when the guess was
    too far off (``used_fallback=True`` in the result).

    Parameters
    ----------
    window :
        Cached spectral bounds ``(emin, emax)`` — required (a fast path
        without a cached window has nothing to reuse; use
        :func:`solve_density_regions` for cold solves).  Stale windows
        raise :class:`~repro.errors.SpectralWindowError`.
    mu_guess :
        Warm start, e.g. last MD step's μ (or a linear extrapolation).
    rho_tol :
        Bound on the acceptable μ-Taylor remainder in ρ; sets the
        fallback threshold ``|Δμ| ≤ kT · (24·rho_tol)^{1/4}``.
    gather_maps :
        Optional cached :func:`build_region_gather_maps` output; the
        inline (``nworkers == 1``, no executor) path then densifies each
        region with one fancy gather instead of CSR slicing.  Ignored on
        the pooled path, where shipping the maps would cost more than
        they save.
    backend :
        Array backend evaluating the region batches — a name from
        :func:`repro.linscale.backends.available_backends`, an instance,
        or ``None`` for the ``REPRO_BACKEND``/default resolution.

    Returns
    -------
    :class:`RegionFOEResult` with ``rho`` always present.
    """
    if kT <= 0:
        raise ElectronicError("FOE-in-regions needs kT > 0")
    if order < 2:
        raise ElectronicError("expansion order must be >= 2")
    H = _validate_regions(H, regions)
    m_total = H.shape[0]
    backend = resolve_backend(backend)

    emin, emax = window
    center, span = _scaled_window(emin, emax)
    deriv_coeffs = fermi_mu_derivative_coefficients(
        center, span, float(mu_guess), kT, order, nderiv=3)

    specs, chunks = _chunk_specs(regions, nworkers)
    inline = executor is None and nworkers == 1
    if inline:
        blocks = RegionBlockSource(H, specs, gather_maps=gather_maps)

    own_pool = None
    if executor is None and nworkers > 1:
        own_pool = ProcessPoolExecutor(max_workers=nworkers)
        executor = own_pool
    try:
        if inline:
            per_region = backend.fused(blocks, center, span, deriv_coeffs)
        else:
            tasks = [(H, [specs[i] for i in c], center, span, deriv_coeffs,
                      backend.name) for c in chunks]
            per_region = [r for chunk in
                          map_tasks(_fused_worker, tasks, nworkers, executor)
                          for r in chunk]
        m_per = np.stack([m for m, _, _ in per_region])
        e_per = np.stack([e for _, e, _ in per_region])
        _check_window(m_per, regions, (emin, emax))
        m_sum = m_per.sum(axis=0)
        e_sum = e_per.sum(axis=0)

        mu = _find_mu(m_sum, center, span, kT, n_electrons,
                      full_bracket=(emin - 10.0 * kT, emax + 10.0 * kT),
                      warm_bracket=(mu_guess - 10.0 * kT,
                                    mu_guess + 10.0 * kT))
        dmu = mu - float(mu_guess)

        coeffs = fermi_coefficients(center, span, mu, kT, order)
        band_energy = float(coeffs @ e_sum)
        entropy = float(entropy_coefficients(center, span, mu, kT, order)
                        @ m_sum)
        populations = m_per @ coeffs

        mu_shift_tol = kT * (24.0 * rho_tol) ** 0.25
        used_fallback = abs(dmu) > mu_shift_tol
        if used_fallback:
            # guess too far off: pay the explicit second pass (exact)
            if inline:
                rows_per_region = backend.density_rows(blocks, center, span,
                                                       coeffs)
            else:
                tasks = [(H, [specs[i] for i in c], center, span, coeffs,
                          backend.name) for c in chunks]
                rows_per_region = [rr for chunk in
                                   map_tasks(_density_worker, tasks,
                                             nworkers, executor)
                                   for rr in chunk]
        else:
            w = np.array([1.0, dmu, 0.5 * dmu * dmu,
                          dmu * dmu * dmu / 6.0])
            rows_per_region = [
                np.tensordot(w, outs, axes=([0], [0])).T
                for _, _, outs in per_region
            ]
    finally:
        if own_pool is not None:
            own_pool.shutdown()

    rho = _assemble_rho(regions, rows_per_region, m_total)
    return RegionFOEResult(
        rho=rho, band_energy=band_energy, mu=float(mu), entropy=entropy,
        populations=populations, n_electrons=float(populations.sum()),
        order=order, spectral_bounds=(emin, emax), n_regions=len(regions),
        mu_shift=float(dmu), used_fallback=used_fallback)


# ---------------------------------------------------------------------------
# Hellmann–Feynman forces from the sparse density matrix
# ---------------------------------------------------------------------------

def _gather_blocks(rho: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray
                   ) -> np.ndarray:
    """Dense (P, ni, nj) ρ blocks gathered from a sparse matrix."""
    flat = np.asarray(rho[rows.ravel(), cols.ravel()]).ravel()
    return flat.reshape(rows.shape)


def sparse_band_forces(atoms, model, nl: NeighborList, rho: sp.csr_matrix
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Band forces (N, 3) and virial (3, 3) from a *sparse* symmetric ρ.

    The sparse twin of :func:`repro.tb.forces.band_forces` (orthogonal
    models only): identical contraction ``g = 2 Σ ρ_ab ∂B_ab`` per
    half-list bond — the Hellmann–Feynman force ``F_i = −Tr(ρ ∂H/∂R_i)``
    of the paper, evaluated bond-by-bond — with ρ blocks gathered from
    CSR instead of fancy dense indexing.  Every needed block lies inside
    ρ's sparsity pattern because r_loc ≥ the model cutoff.

    Units: forces in eV/Å, virial in eV.
    """
    if not model.orthogonal:
        raise ElectronicError(
            "sparse band forces support orthogonal models only"
        )
    symbols = atoms.symbols
    offsets, _ = orbital_offsets(symbols, model)
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))
    if nl.n_pairs == 0:
        return forces, virial

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]

        V, dV = model.hopping(sa, sb, r)
        G = sk_block_gradients(u, r, V, dV)[:, :, :ni, :nj]

        rows, cols = block_index_grids(oi, oj, ni, nj)
        rho_blk = _gather_blocks(rho, rows, cols)
        g = 2.0 * np.einsum("pab,pcab->pc", rho_blk, G)

        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g, vec)

    return forces, virial

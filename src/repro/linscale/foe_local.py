"""Fermi-operator expansion evaluated inside localization regions.

The O(N) electronic kernel of Goedecker & Colombo (1994): instead of one
Chebyshev polynomial of the *global* Hamiltonian (dense FOE,
:mod:`repro.tb.chebyshev`), run the two-term recursion independently in
every localization region, keeping only the density-matrix rows of each
region's core atom.  Each region solve is a block matvec chain
``v_{k+1} = 2 H̃_loc v_k − v_{k−1}`` on the core basis columns — the
block-partitioned matvec idiom — and regions are independent, so they
batch through the process pool.

Two passes per evaluation:

1. **Moments** — per region, the scalar Chebyshev moments
   ``m_k = Σ_{μ∈core} [T_k(H̃)]_{μμ}`` and energy moments
   ``e_k = Σ_{μ∈core} [T_k(H̃) H]_{μμ}``.  Summed over regions these give
   the electron count ``N(μ) = Σ_k c_k(μ) M_k`` (μ found by bisection at
   scalar cost — no matrix work per trial), the band energy, the
   electronic entropy, and per-atom Mulliken populations.
2. **Density rows** — with μ fixed, re-run the recursion accumulating
   ``ρ_rows = Σ_k c_k v_k`` for the core orbitals.  Stacked over regions
   these rows form a sparse approximation ρ̂ of the global density matrix
   (every orbital is the core of exactly one region); the symmetrised
   ``(ρ̂ + ρ̂ᵀ)/2`` feeds the Hellmann–Feynman force contraction.

All scalar functions are expanded with the shared helpers in
:mod:`repro.tb.chebyshev`, on one global ``(center, span)`` scaling from
tight Lanczos bounds of the sparse H (submatrix spectra interlace, so
every region is covered).  Orthogonal models only, like purification.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ElectronicError
from repro.neighbors.base import NeighborList
from repro.parallel.decomposition import block_partition
from repro.parallel.pool import map_tasks
from repro.tb.chebyshev import entropy_coefficients, fermi_coefficients
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups
from repro.tb.purification import lanczos_spectral_bounds
from repro.tb.slater_koster import sk_block_gradients
from repro.linscale.regions import LocalizationRegion
from repro.linscale.sparse_hamiltonian import block_index_grids


# ---------------------------------------------------------------------------
# Per-region kernels (pure, picklable — they run inside pool workers)
# ---------------------------------------------------------------------------

def _region_moments(h_sub: np.ndarray, core_local: np.ndarray,
                    center: float, span: float, order: int
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Chebyshev moments (m_k, e_k) of one region's core orbitals."""
    n = h_sub.shape[0]
    nc = len(core_local)
    v = np.zeros((n, nc))
    v[core_local, np.arange(nc)] = 1.0
    h_cols = h_sub[:, core_local]

    m = np.zeros(order + 1)
    e = np.zeros(order + 1)
    m[0] = float(nc)
    e[0] = float(np.sum(v * h_cols))

    h_tilde = (h_sub - center * np.eye(n)) / span
    v_prev = v
    v_cur = h_tilde @ v
    if order >= 1:
        m[1] = float(v_cur[core_local, np.arange(nc)].sum())
        e[1] = float(np.sum(v_cur * h_cols))
    for k in range(2, order + 1):
        v_next = 2.0 * (h_tilde @ v_cur) - v_prev
        m[k] = float(v_next[core_local, np.arange(nc)].sum())
        e[k] = float(np.sum(v_next * h_cols))
        v_prev, v_cur = v_cur, v_next
    return m, e


def _region_density_rows(h_sub: np.ndarray, core_local: np.ndarray,
                         center: float, span: float, coeffs: np.ndarray
                         ) -> np.ndarray:
    """Core rows of ρ_loc = Σ c_k T_k(H̃_loc), shape (n_core, n_region)."""
    n = h_sub.shape[0]
    nc = len(core_local)
    v = np.zeros((n, nc))
    v[core_local, np.arange(nc)] = 1.0

    out = coeffs[0] * v
    h_tilde = (h_sub - center * np.eye(n)) / span
    v_prev = v
    v_cur = h_tilde @ v
    if len(coeffs) > 1:
        out = out + coeffs[1] * v_cur
    for k in range(2, len(coeffs)):
        v_next = 2.0 * (h_tilde @ v_cur) - v_prev
        out += coeffs[k] * v_next
        v_prev, v_cur = v_cur, v_next
    return out.T


def _moments_worker(args):
    """One chunk: extract each region's dense H_loc from the (shared)
    sparse H and run the moment recursion — densifying inside the worker
    keeps peak memory at one region instead of all of them."""
    H, specs, center, span, order = args
    return [_region_moments(H[orbitals][:, orbitals].toarray(), core_local,
                            center, span, order)
            for orbitals, core_local in specs]


def _density_worker(args):
    H, specs, center, span, coeffs = args
    return [_region_density_rows(H[orbitals][:, orbitals].toarray(),
                                 core_local, center, span, coeffs)
            for orbitals, core_local in specs]


# ---------------------------------------------------------------------------
# Chemical potential from aggregated moments
# ---------------------------------------------------------------------------

def chemical_potential_from_moments(moments: np.ndarray, center: float,
                                    span: float, kT: float,
                                    n_electrons: float,
                                    bracket: tuple[float, float],
                                    tol: float = 1e-10,
                                    max_iter: int = 100) -> float:
    """Bisect μ so that ``Σ_k c_k(μ) M_k = n_electrons``.

    Each trial is one scalar coefficient evaluation (O(K²) flops), so the
    μ search costs nothing next to the region recursions.
    """
    lo, hi = float(bracket[0]), float(bracket[1])
    order = len(moments) - 1

    def count(mu):
        return float(fermi_coefficients(center, span, mu, kT, order)
                     @ moments)

    if count(lo) > n_electrons or count(hi) < n_electrons:
        raise ElectronicError(
            f"μ bracket [{lo:.3f}, {hi:.3f}] eV does not contain "
            f"{n_electrons} electrons"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        c = count(mid)
        if abs(c - n_electrons) < tol * max(1.0, n_electrons):
            return mid
        if c < n_electrons:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


# ---------------------------------------------------------------------------
# The region solve
# ---------------------------------------------------------------------------

@dataclass
class RegionFOEResult:
    """Everything the O(N) electronic step produces.

    ``rho`` is the symmetrised spin-summed sparse density matrix built
    from core rows (``None`` when the solve was run energy-only);
    ``populations`` are per-atom Mulliken electron populations
    (Σ = ``n_electrons``); ``entropy`` is in eV/K.
    """

    rho: sp.csr_matrix | None
    band_energy: float
    mu: float
    entropy: float
    populations: np.ndarray
    n_electrons: float
    order: int
    spectral_bounds: tuple[float, float]
    n_regions: int


def solve_density_regions(H, regions: list[LocalizationRegion],
                          n_electrons: float, kT: float, order: int = 150,
                          mu: float | None = None, nworkers: int = 1,
                          executor=None, with_rho: bool = True
                          ) -> RegionFOEResult:
    """FOE-in-regions density matrix from a sparse Hamiltonian.

    Parameters
    ----------
    H :
        Real symmetric Hamiltonian, scipy sparse (dense accepted and
        converted).  Orthogonal basis assumed.
    regions :
        Output of :func:`repro.linscale.regions.extract_regions`; their
        core orbitals must tile all of H exactly once.
    n_electrons :
        Spin-summed electron count; μ is bisected from region moments
        unless given.
    kT :
        Electronic temperature in eV; must be > 0 (the expansion order
        needed grows with spectral width / kT).
    order :
        Chebyshev order K.
    nworkers, executor :
        Region batches are fanned out through
        :func:`repro.parallel.pool.map_tasks`.
    with_rho :
        ``False`` skips the second (density-rows) pass entirely — band
        energy, entropy, μ and populations all come from the moments, so
        energy-only evaluations cost half the Chebyshev work and return
        ``rho=None``.
    """
    if kT <= 0:
        raise ElectronicError("FOE-in-regions needs kT > 0")
    if order < 2:
        raise ElectronicError("expansion order must be >= 2")
    H = sp.csr_matrix(H)
    m_total = H.shape[0]
    n_core_total = sum(len(r.core_local) for r in regions)
    if n_core_total != m_total:
        raise ElectronicError(
            f"regions cover {n_core_total} core orbitals but H has "
            f"{m_total}; every orbital must be the core of exactly one region"
        )

    emin, emax = lanczos_spectral_bounds(H)
    span = 0.5 * (emax - emin) * 1.01
    center = 0.5 * (emax + emin)
    if span <= 0:
        raise ElectronicError("degenerate spectral bounds")

    # workers receive (sparse H, region specs) and densify one region at a
    # time; H travels once per chunk, so a pool of nworkers gets exactly
    # nworkers chunks (regions are near-equal, block partition balances),
    # while the inline/injected-executor path chunks finer so an external
    # pool of unknown width can load-balance
    specs = [(r.orbitals, r.core_local) for r in regions]
    nchunks = nworkers if nworkers > 1 else min(len(regions), 8)
    chunks = [c for c in block_partition(len(regions), nchunks) if len(c)]

    own_pool = None
    if executor is None and nworkers > 1:
        # one pool for both passes instead of a spawn per map_tasks call
        own_pool = ProcessPoolExecutor(max_workers=nworkers)
        executor = own_pool
    try:
        # -- pass 1: moments → μ, band energy, entropy, populations --------
        tasks = [(H, [specs[i] for i in c], center, span, order)
                 for c in chunks]
        per_region = [mo for chunk in
                      map_tasks(_moments_worker, tasks, nworkers, executor)
                      for mo in chunk]
        m_per = np.stack([m for m, _ in per_region])      # (R, K+1)
        e_per = np.stack([e for _, e in per_region])
        m_sum = m_per.sum(axis=0)
        e_sum = e_per.sum(axis=0)

        if mu is None:
            mu = chemical_potential_from_moments(
                m_sum, center, span, kT, n_electrons,
                bracket=(emin - 10.0 * kT, emax + 10.0 * kT))

        coeffs = fermi_coefficients(center, span, mu, kT, order)
        band_energy = float(coeffs @ e_sum)
        entropy = float(entropy_coefficients(center, span, mu, kT, order)
                        @ m_sum)
        populations = m_per @ coeffs

        # -- pass 2: core density rows → sparse ρ --------------------------
        rho = None
        if with_rho:
            tasks = [(H, [specs[i] for i in c], center, span, coeffs)
                     for c in chunks]
            rows_per_region = [rr for chunk in
                               map_tasks(_density_worker, tasks, nworkers,
                                         executor)
                               for rr in chunk]
    finally:
        if own_pool is not None:
            own_pool.shutdown()

    if with_rho:
        coo_r, coo_c, coo_d = [], [], []
        for region, rho_rows in zip(regions, rows_per_region):
            core_global = region.orbitals[region.core_local]
            coo_r.append(np.repeat(core_global, region.n_orbitals))
            coo_c.append(np.tile(region.orbitals, len(core_global)))
            coo_d.append(rho_rows.ravel())
        rho_hat = sp.coo_matrix(
            (np.concatenate(coo_d),
             (np.concatenate(coo_r), np.concatenate(coo_c))),
            shape=(m_total, m_total)).tocsr()
        rho = 0.5 * (rho_hat + rho_hat.T).tocsr()

    return RegionFOEResult(
        rho=rho, band_energy=band_energy, mu=float(mu), entropy=entropy,
        populations=populations, n_electrons=float(populations.sum()),
        order=order, spectral_bounds=(emin, emax), n_regions=len(regions))


# ---------------------------------------------------------------------------
# Hellmann–Feynman forces from the sparse density matrix
# ---------------------------------------------------------------------------

def _gather_blocks(rho: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray
                   ) -> np.ndarray:
    """Dense (P, ni, nj) ρ blocks gathered from a sparse matrix."""
    flat = np.asarray(rho[rows.ravel(), cols.ravel()]).ravel()
    return flat.reshape(rows.shape)


def sparse_band_forces(atoms, model, nl: NeighborList, rho: sp.csr_matrix
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Band forces (N, 3) and virial (3, 3) from a *sparse* symmetric ρ.

    The sparse twin of :func:`repro.tb.forces.band_forces` (orthogonal
    models only): identical contraction ``g = 2 Σ ρ_ab ∂B_ab`` per
    half-list bond, with ρ blocks gathered from CSR instead of fancy
    dense indexing.  Every needed block lies inside ρ's sparsity pattern
    because r_loc ≥ the model cutoff.
    """
    if not model.orthogonal:
        raise ElectronicError(
            "sparse band forces support orthogonal models only"
        )
    symbols = atoms.symbols
    offsets, _ = orbital_offsets(symbols, model)
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))
    if nl.n_pairs == 0:
        return forces, virial

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]

        V, dV = model.hopping(sa, sb, r)
        G = sk_block_gradients(u, r, V, dV)[:, :, :ni, :nj]

        rows, cols = block_index_grids(oi, oj, ni, nj)
        rho_blk = _gather_blocks(rho, rows, cols)
        g = 2.0 * np.einsum("pab,pcab->pc", rho_blk, G)

        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g, vec)

    return forces, virial

"""Linear-scaling electronic structure (Goedecker–Colombo O(N) TBMD).

The subsystem that removes the O(N³) eigensolve from the MD step:

* :mod:`~repro.linscale.sparse_hamiltonian` — CSR Hamiltonian assembly
  straight from the neighbour list (bit-equal to the dense builder);
* :mod:`~repro.linscale.regions` — per-atom localization regions
  (core + halo subgraphs of the neighbour graph within ``r_loc``);
* :mod:`~repro.linscale.foe_local` — the Chebyshev Fermi-operator
  expansion evaluated region-by-region: moments → μ, core density rows →
  band energy, entropy, Mulliken populations, Hellmann–Feynman forces;
* :mod:`~repro.linscale.kfoe` — the k-point-parallel engine: the same
  region recursion on complex Bloch Hamiltonians H(k), one spectral
  window per k, MP-weighted moments → one common μ, weighted per-k
  density matrices and forces (small-cell metals, strain sweeps);
* :mod:`~repro.linscale.backends` — pluggable array backends for the
  region recursions (``numpy_loop`` reference, ``numpy_batched``
  shape-bucketed stacked GEMMs, optional ``numba``), selected per
  calculator/solve or via ``REPRO_BACKEND``;
* :mod:`~repro.linscale.calculator` — :class:`LinearScalingCalculator`
  (drop-in for :class:`~repro.tb.calculator.TBCalculator` in MD,
  relaxation and the CLI, Γ or k-sampled via ``kpts=``) and
  :class:`DensityMatrixCalculator` (dense purification / global FOE
  behind the same interface).
"""

from repro.linscale.backends import (
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.linscale.calculator import (
    DensityMatrixCalculator,
    LinearScalingCalculator,
)
from repro.linscale.foe_local import (
    RegionFOEResult,
    chemical_potential_from_moments,
    solve_density_regions,
    solve_density_regions_fused,
    sparse_band_forces,
)
from repro.linscale.kfoe import (
    KRegionFOEResult,
    solve_density_regions_k,
    solve_density_regions_k_fused,
    sparse_band_forces_k,
    spectral_windows_k,
)
from repro.linscale.regions import (
    LocalizationRegion,
    extract_regions,
    region_statistics,
)
from repro.linscale.sparse_hamiltonian import (
    SparseHamiltonianBuilder,
    build_sparse_hamiltonian,
    build_sparse_hamiltonian_k,
    hamiltonian_fill_fraction,
)

__all__ = [
    "LinearScalingCalculator",
    "DensityMatrixCalculator",
    "RegionFOEResult",
    "KRegionFOEResult",
    "solve_density_regions",
    "solve_density_regions_fused",
    "solve_density_regions_k",
    "solve_density_regions_k_fused",
    "sparse_band_forces",
    "sparse_band_forces_k",
    "spectral_windows_k",
    "chemical_potential_from_moments",
    "LocalizationRegion",
    "extract_regions",
    "region_statistics",
    "SparseHamiltonianBuilder",
    "build_sparse_hamiltonian",
    "build_sparse_hamiltonian_k",
    "hamiltonian_fill_fraction",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

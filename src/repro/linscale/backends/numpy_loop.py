"""Reference backend: the per-region Python loop (the oracle).

Runs the original one-region-at-a-time kernels of
:mod:`repro.linscale.backends.kernels` over the block source, keeping
the exact numerics (and the per-region recursion-timing histograms) the
engine always had.  Every other backend is validated against this one
by the conformance suite.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.linscale.backends.base import Backend, RegionBlockSource
from repro.utils.timing import tick
from repro.linscale.backends.kernels import (
    region_density_rows,
    region_fused,
    region_moments,
)


def _timed_loop(metric: str, fn, blocks: RegionBlockSource, *fargs) -> list:
    """Run a per-region kernel over the source, timing each recursion.

    One histogram observation per (k, region) recursion lands in
    *metric* when metrics are on (worker-process observations ride back
    through the :mod:`repro.obs.remote` envelope); disabled, this is
    the bare loop plus one boolean check.
    """
    if not obs.metrics_enabled():
        return [fn(blocks.get(i), blocks.core_local(i), *fargs)
                for i in range(len(blocks))]
    out = []
    with obs.span(metric) as sp_:
        sp_.set(n_regions=len(blocks))
        for i in range(len(blocks)):
            h_sub, core = blocks.get(i), blocks.core_local(i)
            t0 = tick()
            out.append(fn(h_sub, core, *fargs))
            obs.observe(metric, tick() - t0)
    return out


class NumpyLoopBackend(Backend):
    """Per-region dense NumPy recursions — simple, exact, unbatched."""

    name = "numpy_loop"

    def moments(self, blocks: RegionBlockSource, center: float, span: float,
                order: int) -> list[tuple[np.ndarray, np.ndarray]]:
        return _timed_loop("foe.region_moments_s", region_moments, blocks,
                           center, span, order)

    def density_rows(self, blocks: RegionBlockSource, center: float,
                     span: float, coeffs: np.ndarray) -> list[np.ndarray]:
        return _timed_loop("foe.region_density_s", region_density_rows,
                           blocks, center, span, coeffs)

    def fused(self, blocks: RegionBlockSource, center: float, span: float,
              deriv_coeffs: np.ndarray
              ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        return _timed_loop("foe.region_fused_s", region_fused, blocks,
                           center, span, deriv_coeffs)

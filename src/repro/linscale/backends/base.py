"""The array-backend protocol of the region FOE engine.

A :class:`Backend` evaluates the three Chebyshev region operations the
solvers in :mod:`repro.linscale.foe_local` / :mod:`repro.linscale.kfoe`
are built from — moment reductions, density-row assembly, and the fused
moments+accumulants pass — for a whole *batch* of localization regions
at once.  The solvers never touch dense region blocks themselves any
more; they hand a :class:`RegionBlockSource` (sparse H plus region
specs) to a backend and get back per-region results in region order.
How the backend walks the batch — a per-region Python loop, bucketed
stacked GEMMs, a JIT kernel, a GPU — is entirely its business, which is
what makes the implementations interchangeable and lets the conformance
suite (``tests/test_backends.py``) hold every registered backend to the
``numpy_loop`` oracle.

All inputs are picklable (sparse matrix, index arrays, floats), so a
backend resolved *by name* inside a process-pool worker sees exactly
the same data as the inline path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro import obs


class RegionBlockSource:
    """Dense region Hamiltonian blocks, densified once and shared.

    The pre-backend engine densified regions with ad-hoc
    ``H[orb][:, orb].toarray()`` calls *inside* every worker loop — so a
    two-pass solve paid the CSR walk twice per region, and nothing
    counted the cost.  This class is the single chokepoint for
    sparse→dense conversion: every densification increments the
    ``foe.densify`` obs counter, gather maps (from
    :func:`repro.linscale.foe_local.build_region_gather_maps`) are used
    when available, and with ``cache=True`` each block is densified at
    most once for the lifetime of the source (both passes of a two-pass
    solve share one source).

    Parameters
    ----------
    H :
        The sparse (CSR) Hamiltonian — real symmetric or complex
        Hermitian.
    specs :
        Per-region ``(orbitals, core_local)`` index-array pairs, as
        produced by the solvers from ``LocalizationRegion``s.
    gather_maps :
        Optional per-region (n, n) int32 maps into ``H.data`` (padded
        with one trailing zero slot); densification then costs one fancy
        gather instead of a CSR row walk.
    cache :
        Keep densified blocks for reuse.  Declined silently when the
        blocks would exceed :data:`CACHE_BYTES_MAX` in total — the
        source still works, each ``get`` just densifies again.
    """

    #: Cap on cached dense blocks (all regions, one H) — beyond this the
    #: cache is declined and blocks are re-densified on demand.
    CACHE_BYTES_MAX = 512 * 1024 * 1024

    def __init__(self, H: Any, specs: list,
                 gather_maps: "list[np.ndarray] | None" = None,
                 cache: bool = False) -> None:
        self._H = H if sp.issparse(H) else sp.csr_matrix(H)
        self.specs = specs
        self._maps = gather_maps
        self._data_pad = (np.append(self._H.data, 0.0)
                          if gather_maps is not None else None)
        if cache:
            nbytes = sum(len(orb) ** 2 for orb, _ in specs) \
                * self._H.dtype.itemsize
            cache = nbytes <= self.CACHE_BYTES_MAX
        self._cache: list[np.ndarray | None] | None = \
            [None] * len(specs) if cache else None

    @property
    def dtype(self) -> np.dtype:
        return self._H.dtype

    def __len__(self) -> int:
        return len(self.specs)

    def shapes(self) -> list[tuple[int, int]]:
        """Per-region (n_region, n_core) — the bucketing key material."""
        return [(len(orb), len(core)) for orb, core in self.specs]

    def core_local(self, i: int) -> np.ndarray:
        return self.specs[i][1]

    def get(self, i: int) -> np.ndarray:
        """Dense (n, n) Hamiltonian block of region *i*."""
        if self._cache is not None:
            cached = self._cache[i]
            if cached is not None:
                return cached
        obs.counter_inc("foe.densify")
        if self._maps is not None and self._data_pad is not None:
            block = self._data_pad[self._maps[i]]
        else:
            orb = self.specs[i][0]
            block = self._H[orb][:, orb].toarray()
        if self._cache is not None:
            self._cache[i] = block
        return block


class Backend(ABC):
    """One array strategy for the batched region Chebyshev operations.

    Contract (shared by every implementation, enforced by the
    conformance suite):

    * results come back as a list in **region order** — entry *i*
      belongs to ``blocks.specs[i]``;
    * real symmetric and complex Hermitian blocks are both supported,
      and outputs match the reference kernels in
      :mod:`repro.linscale.backends.kernels` to rounding error
      (moments ≤ 1e-12, forces ≤ 1e-10 in the suite);
    * backends hold **no solve state** — instances are reusable and
      shareable across solves, calculators, and (by name) pool workers.
    """

    #: Registry name; set by each implementation.
    name: str = "?"

    @abstractmethod
    def moments(self, blocks: RegionBlockSource, center: float, span: float,
                order: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-region Chebyshev moment pairs ``(m_k, e_k)``."""

    @abstractmethod
    def density_rows(self, blocks: RegionBlockSource, center: float,
                     span: float, coeffs: np.ndarray) -> list[np.ndarray]:
        """Per-region core density rows ``Σ_k c_k T_k``, (n_core, n)."""

    @abstractmethod
    def fused(self, blocks: RegionBlockSource, center: float, span: float,
              deriv_coeffs: np.ndarray
              ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-region ``(m, e, outs)`` fused moments + μ-Taylor stacks."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

"""Bucketed stacked-GEMM backend: one batched recursion per shape bucket.

The per-region loop pays one interpreter round-trip *per region per
Chebyshev step* — at typical MD shapes (hundreds of regions × order a
few hundred) that is ~10⁵ NumPy dispatches per solve on matrices small
enough that dispatch rivals the GEMM itself.  This backend removes the
Python from the hot loop: regions are bucketed by padded shape
(:mod:`repro.linscale.backends.bucketing`), each bucket is embedded in
one ``(B, n_pad, n_pad)`` stack, and the whole bucket advances one
Chebyshev step with a single batched :func:`numpy.matmul` — the
``(nbucket, nhalo, ncore)`` tensors of ROADMAP item 2.

Two cache disciplines keep the stacks fast:

* buckets are split so one H̃ stack stays last-level-cache-resident
  (:data:`~repro.linscale.backends.bucketing.MAX_BUCKET_BYTES`) — the
  recursion re-reads the whole stack every k, and a stack streaming
  from DRAM measures ~2x slower than a cache-resident one;
* iterates are buffered ``block`` steps at a time and consumed with one
  tensordot/gather per block, so moment extraction and density
  accumulation cost a handful of BLAS calls per block instead of per k.

Padding is exact (see the bucketing module): the scaled H̃ sits in the
top-left corner of a zero block, so padded rows and columns of every
iterate are identically zero and the masked core gathers reproduce the
loop oracle to rounding error.  Per-bucket launches are instrumented in
the obs plane (``foe.bucket.*``) so a production trace shows exactly
how the region population bucketed.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.linscale.backends.base import Backend, RegionBlockSource
from repro.utils.timing import tick
from repro.linscale.backends.bucketing import (
    GRANULARITY,
    MAX_BUCKET_BYTES,
    MAX_BUCKET_REGIONS,
    Bucket,
    plan_buckets,
)

#: Cap on the blocked iterate buffer (block, B, n_pad, nc_pad) — the
#: buffer shares the cache with the H̃ stack, so it is kept a fraction
#: of :data:`~repro.linscale.backends.bucketing.MAX_BUCKET_BYTES`.
BLOCK_BYTES_MAX = 16 * 1024 * 1024


class _BucketStack:
    """Padded tensors of one bucket: H̃ stack, core gathers, pad masks."""

    def __init__(self, blocks: RegionBlockSource, bucket: Bucket,
                 center: float, span: float, with_cols: bool):
        B, n_pad, nc_pad = len(bucket), bucket.n_pad, bucket.nc_pad
        dtype = blocks.dtype
        ht = np.zeros((B, n_pad, n_pad), dtype=dtype)
        h_cols = np.zeros((B, n_pad, nc_pad), dtype=dtype) \
            if with_cols else None
        core_idx = np.zeros((B, nc_pad), dtype=np.intp)
        mask = np.zeros((B, nc_pad))
        shapes = []
        for b, i in enumerate(bucket.indices):
            block = blocks.get(i)
            core = blocks.core_local(i)
            n, nc = block.shape[0], len(core)
            shapes.append((n, nc))
            ht[b, :n, :n] = block
            d = np.arange(n)
            ht[b, d, d] -= center          # pad diagonal stays exactly 0
            if with_cols:
                h_cols[b, :n, :nc] = block[:, core]
            core_idx[b, :nc] = core
            mask[b, :nc] = 1.0
        ht /= span
        if with_cols and np.iscomplexobj(h_cols):
            np.conj(h_cols, out=h_cols)    # e_k = Re Σ T_k·conj(H_cols)
        self.ht = ht
        self.h_cols = h_cols
        self.core_idx = core_idx
        self.mask = mask
        self.shapes = shapes
        self._brow = np.arange(B)[:, None]
        self._ccol = np.arange(nc_pad)[None, :]

    def v0(self) -> np.ndarray:
        B, n_pad = self.ht.shape[:2]
        v = np.zeros((B, n_pad, self.core_idx.shape[1]), dtype=self.ht.dtype)
        v[self._brow, self.core_idx, self._ccol] = self.mask
        return v

    def core_diag(self, chunk: np.ndarray) -> np.ndarray:
        """(j, B) masked core-diagonal sums — m_k for a block of iterates."""
        diag = chunk[:, self._brow, self.core_idx, self._ccol]
        if np.iscomplexobj(diag):
            diag = diag.real
        return (diag * self.mask).sum(axis=2)

    def energy_trace(self, chunk: np.ndarray) -> np.ndarray:
        """(j, B) values of ``Re Σ conj(T_k)·H_cols`` for a block."""
        e = np.einsum("kbnc,bnc->kb", chunk, self.h_cols)
        return e.real if np.iscomplexobj(e) else e

    def recurse(self, order: int, consume_block) -> None:
        """Drive ``v_{k+1} = 2 H̃ v_k − v_{k−1}`` for the whole stack.

        Iterates are buffered ``block`` at a time;
        ``consume_block(k0, chunk)`` sees ``chunk[j] = v_{k0+j}``.  The
        buffer is recycled across blocks, so consumers must not keep
        references into it.
        """
        B, n_pad = self.ht.shape[:2]
        nc_pad = self.core_idx.shape[1]
        k1 = order + 1
        slot = max(1, B * n_pad * nc_pad * self.ht.dtype.itemsize)
        block = max(3, min(24, BLOCK_BYTES_MAX // slot, k1))
        buf = np.empty((block, B, n_pad, nc_pad), dtype=self.ht.dtype)
        v0 = self.v0()
        v_prev = v0
        v_cur = v0            # placeholder until k = 1 exists
        kpos = 0
        while kpos <= order:
            jmax = min(block, k1 - kpos)
            for j in range(jmax):
                k = kpos + j
                if k == 0:
                    buf[j] = v0
                elif k == 1:
                    np.matmul(self.ht, v0, out=buf[j])
                else:
                    np.matmul(self.ht, v_cur, out=buf[j])
                    buf[j] *= 2.0
                    buf[j] -= v_prev
                if k >= 1:
                    v_prev, v_cur = v_cur, buf[j]
            consume_block(kpos, buf[:jmax])
            kpos += jmax


class NumpyBatchedBackend(Backend):
    """Shape-bucketed batched-GEMM evaluation of the region recursions."""

    name = "numpy_batched"

    def __init__(self, granularity: int = GRANULARITY,
                 max_regions: int = MAX_BUCKET_REGIONS,
                 max_bytes: int = MAX_BUCKET_BYTES):
        self.granularity = granularity
        self.max_regions = max_regions
        self.max_bytes = max_bytes

    # -- bucket orchestration ---------------------------------------------

    def _run_buckets(self, blocks: RegionBlockSource, op: str, with_cols,
                     run_bucket) -> list:
        """Plan buckets, run each, scatter results back to region order."""
        shapes = blocks.shapes()
        buckets = plan_buckets(shapes, self.granularity, self.max_regions,
                               self.max_bytes, blocks.dtype.itemsize)
        results: list = [None] * len(blocks)
        instrumented = obs.metrics_enabled()
        for bucket in buckets:
            if instrumented:
                with obs.span("foe.bucket") as sp_:
                    sp_.set(op=op, n_pad=bucket.n_pad,
                            nc_pad=bucket.nc_pad, n_regions=len(bucket))
                    t0 = tick()
                    out = run_bucket(bucket, with_cols)
                    obs.observe("foe.bucket.batch_s",
                                tick() - t0)
                obs.counter_inc("foe.bucket.launch")
                obs.counter_inc("foe.bucket.regions", len(bucket))
                obs.observe("foe.bucket.size", len(bucket))
                obs.observe("foe.bucket.fill", bucket.fill(shapes))
            else:
                out = run_bucket(bucket, with_cols)
            for b, i in enumerate(bucket.indices):
                results[i] = out[b]
        return results

    # -- the three protocol operations ------------------------------------

    def moments(self, blocks: RegionBlockSource, center: float, span: float,
                order: int) -> list[tuple[np.ndarray, np.ndarray]]:
        def run_bucket(bucket, with_cols):
            st = _BucketStack(blocks, bucket, center, span, with_cols)
            B = len(bucket)
            m = np.zeros((B, order + 1))
            e = np.zeros((B, order + 1))

            def consume(kpos, chunk):
                j = len(chunk)
                m[:, kpos:kpos + j] = st.core_diag(chunk).T
                e[:, kpos:kpos + j] = st.energy_trace(chunk).T

            st.recurse(order, consume)
            return [(m[b], e[b]) for b in range(B)]

        return self._run_buckets(blocks, "moments", True, run_bucket)

    def density_rows(self, blocks: RegionBlockSource, center: float,
                     span: float, coeffs: np.ndarray) -> list[np.ndarray]:
        order = len(coeffs) - 1

        def run_bucket(bucket, with_cols):
            st = _BucketStack(blocks, bucket, center, span, with_cols)
            B, n_pad, nc_pad = len(bucket), bucket.n_pad, bucket.nc_pad
            out = np.zeros((B, n_pad, nc_pad), dtype=blocks.dtype)

            def consume(kpos, chunk):
                j = len(chunk)
                out[...] += np.tensordot(coeffs[kpos:kpos + j], chunk,
                                         axes=([0], [0]))

            st.recurse(order, consume)
            rows = []
            for b, (n, nc) in enumerate(st.shapes):
                res = out[b, :n, :nc]
                rows.append(np.conj(res.T) if np.iscomplexobj(res)
                            else res.T)
            return rows

        return self._run_buckets(blocks, "density", False, run_bucket)

    def fused(self, blocks: RegionBlockSource, center: float, span: float,
              deriv_coeffs: np.ndarray
              ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        s_stack, k1 = deriv_coeffs.shape
        order = k1 - 1

        def run_bucket(bucket, with_cols):
            st = _BucketStack(blocks, bucket, center, span, with_cols)
            B, n_pad, nc_pad = (len(bucket), bucket.n_pad, bucket.nc_pad)
            m = np.zeros((B, k1))
            e = np.zeros((B, k1))
            outs = np.zeros((s_stack, B, n_pad, nc_pad),
                            dtype=blocks.dtype)

            def consume(kpos, chunk):
                j = len(chunk)
                m[:, kpos:kpos + j] = st.core_diag(chunk).T
                e[:, kpos:kpos + j] = st.energy_trace(chunk).T
                outs[...] += np.tensordot(deriv_coeffs[:, kpos:kpos + j],
                                          chunk, axes=([1], [0]))

            st.recurse(order, consume)
            return [(m[b], e[b], outs[:, b, :n, :nc])
                    for b, (n, nc) in enumerate(st.shapes)]

        return self._run_buckets(blocks, "fused", True, run_bucket)

"""Optional numba-JIT backend (registered only when importable AND sane).

Compiles the real-dtype per-region Chebyshev recursions with
``numba.njit`` — the recursion body then runs without interpreter
dispatch, which helps most at small region sizes where NumPy call
overhead rivals the GEMM.  Complex (finite-k) blocks fall back to the
reference NumPy kernels, so physics is identical either way.

This module is imported *only* by the registry probe in
:mod:`repro.linscale.backends` and only when ``numba`` is installed;
:func:`self_check` is then run against the reference kernels on a small
random block and the backend is registered solely on agreement.  A
missing or broken numba never affects the rest of the engine — the
backend simply does not appear in ``available_backends()``.
"""

from __future__ import annotations

# the find_spec guard lives one level up: repro.linscale.backends only
# imports this module after probing importlib.util.find_spec("numba"),
# so a top-level import here can never break a numba-less install
import numba  # reprolint: disable=import-guard
import numpy as np

from repro.linscale.backends import kernels
from repro.linscale.backends.numpy_loop import NumpyLoopBackend, _timed_loop


@numba.njit(cache=True)
def _moments_jit(h_tilde, h_cols, core_local, order):
    n, nc = h_cols.shape
    m = np.zeros(order + 1)
    e = np.zeros(order + 1)
    v_prev = np.zeros((n, nc))
    for c in range(nc):
        v_prev[core_local[c], c] = 1.0
    m[0] = float(nc)
    e[0] = (v_prev * h_cols).sum()
    v_cur = h_tilde @ v_prev
    if order >= 1:
        s = 0.0
        for c in range(nc):
            s += v_cur[core_local[c], c]
        m[1] = s
        e[1] = (v_cur * h_cols).sum()
    for k in range(2, order + 1):
        v_next = 2.0 * (h_tilde @ v_cur) - v_prev
        s = 0.0
        for c in range(nc):
            s += v_next[core_local[c], c]
        m[k] = s
        e[k] = (v_next * h_cols).sum()
        v_prev, v_cur = v_cur, v_next
    return m, e


@numba.njit(cache=True)
def _density_jit(h_tilde, core_local, coeffs):
    n = h_tilde.shape[0]
    nc = core_local.shape[0]
    v_prev = np.zeros((n, nc))
    for c in range(nc):
        v_prev[core_local[c], c] = 1.0
    out = coeffs[0] * v_prev
    v_cur = h_tilde @ v_prev
    if len(coeffs) > 1:
        out = out + coeffs[1] * v_cur
    for k in range(2, len(coeffs)):
        v_next = 2.0 * (h_tilde @ v_cur) - v_prev
        out += coeffs[k] * v_next
        v_prev, v_cur = v_cur, v_next
    return out.T.copy()


@numba.njit(cache=True)
def _fused_jit(h_tilde, h_cols, core_local, deriv_coeffs):
    n, nc = h_cols.shape
    s_stack, k1 = deriv_coeffs.shape
    m = np.zeros(k1)
    e = np.zeros(k1)
    outs = np.zeros((s_stack, n, nc))
    v_prev = np.zeros((n, nc))
    for c in range(nc):
        v_prev[core_local[c], c] = 1.0
    m[0] = float(nc)
    e[0] = (v_prev * h_cols).sum()
    for s in range(s_stack):
        outs[s] += deriv_coeffs[s, 0] * v_prev
    v_cur = h_tilde @ v_prev
    for k in range(1, k1):
        if k >= 2:
            v_next = 2.0 * (h_tilde @ v_cur) - v_prev
            v_prev, v_cur = v_cur, v_next
        s_m = 0.0
        for c in range(nc):
            s_m += v_cur[core_local[c], c]
        m[k] = s_m
        e[k] = (v_cur * h_cols).sum()
        for s in range(s_stack):
            outs[s] += deriv_coeffs[s, k] * v_cur
    return m, e, outs


def _scale(h_sub, center, span):
    n = h_sub.shape[0]
    return (h_sub - center * np.eye(n)) / span


def _moments(h_sub, core_local, center, span, order):
    if np.iscomplexobj(h_sub):
        return kernels.region_moments(h_sub, core_local, center, span, order)
    return _moments_jit(_scale(h_sub, center, span),
                        np.ascontiguousarray(h_sub[:, core_local]),
                        np.asarray(core_local, dtype=np.int64), order)


def _density(h_sub, core_local, center, span, coeffs):
    if np.iscomplexobj(h_sub):
        return kernels.region_density_rows(h_sub, core_local, center, span,
                                           coeffs)
    return _density_jit(_scale(h_sub, center, span),
                        np.asarray(core_local, dtype=np.int64),
                        np.ascontiguousarray(coeffs, dtype=np.float64))


def _fused(h_sub, core_local, center, span, deriv_coeffs):
    if np.iscomplexobj(h_sub):
        return kernels.region_fused(h_sub, core_local, center, span,
                                    deriv_coeffs)
    return _fused_jit(_scale(h_sub, center, span),
                      np.ascontiguousarray(h_sub[:, core_local]),
                      np.asarray(core_local, dtype=np.int64),
                      np.ascontiguousarray(deriv_coeffs, dtype=np.float64))


class NumbaBackend(NumpyLoopBackend):
    """JIT-compiled per-region recursions (real H; complex falls back)."""

    name = "numba"

    def moments(self, blocks, center, span, order):
        return _timed_loop("foe.region_moments_s", _moments, blocks,
                           center, span, order)

    def density_rows(self, blocks, center, span, coeffs):
        return _timed_loop("foe.region_density_s", _density, blocks,
                           center, span, coeffs)

    def fused(self, blocks, center, span, deriv_coeffs):
        return _timed_loop("foe.region_fused_s", _fused, blocks,
                           center, span, deriv_coeffs)


def self_check(atol: float = 1e-12) -> None:
    """Compile the kernels and verify them against the reference ones.

    Raises on any disagreement — the registry then refuses to register
    the backend, so a subtly broken numba install degrades to the NumPy
    backends instead of corrupting physics.
    """
    rng = np.random.default_rng(7)
    n, nc, order = 12, 3, 9
    a = rng.standard_normal((n, n))
    h = 0.5 * (a + a.T)
    core = np.array([0, 4, 9])
    center, span = 0.1, float(np.abs(np.linalg.eigvalsh(h)).max() * 1.1)
    dc = rng.standard_normal((4, order + 1))

    m_ref, e_ref = kernels.region_moments(h, core, center, span, order)
    m_jit, e_jit = _moments(h, core, center, span, order)
    rows_ref = kernels.region_density_rows(h, core, center, span, dc[0])
    rows_jit = _density(h, core, center, span, dc[0])
    fr = kernels.region_fused(h, core, center, span, dc)
    fj = _fused(h, core, center, span, dc)
    for ref, jit in [(m_ref, m_jit), (e_ref, e_jit), (rows_ref, rows_jit),
                     (fr[0], fj[0]), (fr[1], fj[1]), (fr[2], fj[2])]:
        if not np.allclose(ref, jit, rtol=0.0, atol=atol):
            raise AssertionError("numba kernels disagree with reference")

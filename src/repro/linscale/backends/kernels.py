"""Reference per-region Chebyshev kernels (pure NumPy, picklable).

These are the original one-region-at-a-time recursions of
:mod:`repro.linscale.foe_local`, factored out so every array backend can
treat them as the *oracle*: the loop backend runs them verbatim, the
batched backend must reproduce them to rounding error, and the
conformance suite (``tests/test_backends.py``) pins that equivalence.

All three kernels share the same contract: a dense region Hamiltonian
block ``h_sub`` (real symmetric at Γ, complex Hermitian at finite k),
the local core-orbital positions, and one global ``(center, span)``
Chebyshev scaling.  They are pure functions of picklable inputs, so they
run unchanged inside process-pool workers.
"""

from __future__ import annotations

import numpy as np


def hermitian_inner(a: np.ndarray, b: np.ndarray) -> float:
    """Re Σ conj(a)·b — the partial-trace contraction ``Σ [T_k H]_μμ``.

    For real symmetric blocks this is the plain elementwise sum the Γ
    engine always used; for complex Hermitian H(k) blocks the conjugate
    appears because column μ of the Hermitian ``T_k`` is the conjugate
    of row μ.  The imaginary part is pure truncation noise and is
    discarded (exactly zero summed over a time-reversal pair).
    """
    if np.iscomplexobj(a) or np.iscomplexobj(b):
        return float(np.real(np.vdot(a, b)))
    return float(np.sum(a * b))


def region_moments(h_sub: np.ndarray, core_local: np.ndarray,
                   center: float, span: float, order: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Chebyshev moments (m_k, e_k) of one region's core orbitals.

    Works on real symmetric (Γ) and complex Hermitian (finite-k) region
    blocks alike; moments are real either way (diagonal entries of a
    Hermitian polynomial).
    """
    n = h_sub.shape[0]
    nc = len(core_local)
    v = np.zeros((n, nc), dtype=h_sub.dtype)
    v[core_local, np.arange(nc)] = 1.0
    h_cols = h_sub[:, core_local]

    m = np.zeros(order + 1)
    e = np.zeros(order + 1)
    m[0] = float(nc)
    e[0] = hermitian_inner(v, h_cols)

    h_tilde = (h_sub - center * np.eye(n)) / span
    v_prev = v
    v_cur = h_tilde @ v
    if order >= 1:
        m[1] = float(np.real(v_cur[core_local, np.arange(nc)].sum()))
        e[1] = hermitian_inner(v_cur, h_cols)
    for k in range(2, order + 1):
        v_next = 2.0 * (h_tilde @ v_cur) - v_prev
        m[k] = float(np.real(v_next[core_local, np.arange(nc)].sum()))
        e[k] = hermitian_inner(v_next, h_cols)
        v_prev, v_cur = v_cur, v_next
    return m, e


def region_density_rows(h_sub: np.ndarray, core_local: np.ndarray,
                        center: float, span: float, coeffs: np.ndarray
                        ) -> np.ndarray:
    """Core rows of ρ_loc = Σ c_k T_k(H̃_loc), shape (n_core, n_region).

    The recursion produces core *columns*; rows follow by (conjugate)
    transposition — ρ_loc is symmetric for real H, Hermitian for H(k).
    """
    n = h_sub.shape[0]
    nc = len(core_local)
    v = np.zeros((n, nc), dtype=h_sub.dtype)
    v[core_local, np.arange(nc)] = 1.0

    out = coeffs[0] * v
    h_tilde = (h_sub - center * np.eye(n)) / span
    v_prev = v
    v_cur = h_tilde @ v
    if len(coeffs) > 1:
        out = out + coeffs[1] * v_cur
    for k in range(2, len(coeffs)):
        v_next = 2.0 * (h_tilde @ v_cur) - v_prev
        out += coeffs[k] * v_next
        v_prev, v_cur = v_cur, v_next
    return np.conj(out.T) if np.iscomplexobj(out) else out.T


def region_fused(h_sub: np.ndarray, core_local: np.ndarray,
                 center: float, span: float, deriv_coeffs: np.ndarray,
                 block: int = 24
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Chebyshev recursion → moments *and* μ-Taylor density accumulants.

    Parameters
    ----------
    deriv_coeffs :
        (S, K+1) coefficient stack from
        :func:`repro.tb.chebyshev.fermi_mu_derivative_coefficients` — row
        *s* expands ∂ˢf/∂μˢ at the guessed μ.
    block :
        Iterates are buffered in blocks of this many k-steps so moment
        extraction and the S accumulations happen as a handful of BLAS
        calls per block instead of per k (the per-k numpy call overhead
        is comparable to the matvec at typical region sizes).

    Returns
    -------
    ``(m, e, outs)`` — moments (K+1,), energy moments (K+1,), and the
    accumulant stack (S, n_region, n_core) with
    ``outs[s] = Σ_k c^{(s)}_k T_k(H̃) v₀``.
    """
    n = h_sub.shape[0]
    nc = len(core_local)
    s_stack, k1 = deriv_coeffs.shape
    order = k1 - 1
    ar = np.arange(nc)
    is_complex = np.iscomplexobj(h_sub)

    v0 = np.zeros((n, nc), dtype=h_sub.dtype)
    v0[core_local, ar] = 1.0
    h_cols = np.ascontiguousarray(h_sub[:, core_local])
    if is_complex:
        h_cols = np.conj(h_cols)      # e_k = Re Σ conj(T_k)·H = Σ T_k·conj(H)
    h_tilde = (h_sub - center * np.eye(n)) / span

    m = np.empty(k1)
    e = np.empty(k1)
    outs = np.zeros((s_stack, n, nc), dtype=h_sub.dtype)
    block = max(3, min(block, k1))
    buf = np.empty((block, n, nc), dtype=h_sub.dtype)
    v_prev = v0
    v_cur = v0            # placeholder until k = 1 exists

    kpos = 0
    while kpos <= order:
        jmax = min(block, order + 1 - kpos)
        for j in range(jmax):
            k = kpos + j
            if k == 0:
                buf[j] = v0
            elif k == 1:
                np.matmul(h_tilde, v0, out=buf[j])
            else:
                np.matmul(h_tilde, v_cur, out=buf[j])
                buf[j] *= 2.0
                buf[j] -= v_prev
            if k >= 1:
                v_prev, v_cur = v_cur, buf[j]
        chunk = buf[:jmax]
        if is_complex:
            m[kpos:kpos + jmax] = chunk[:, core_local, ar].sum(axis=1).real
            e[kpos:kpos + jmax] = np.tensordot(chunk, h_cols,
                                               axes=([1, 2], [0, 1])).real
        else:
            m[kpos:kpos + jmax] = chunk[:, core_local, ar].sum(axis=1)
            e[kpos:kpos + jmax] = np.tensordot(chunk, h_cols,
                                               axes=([1, 2], [0, 1]))
        outs += np.tensordot(deriv_coeffs[:, kpos:kpos + jmax], chunk,
                             axes=([1], [0]))
        kpos += jmax
    return m, e, outs

"""Shape bucketing for the batched region backend.

A bulk crystal yields hundreds of localization regions with only a
handful of distinct (n_region, n_core) shapes — identical coordination
means identical halos.  Surfaces, defects and clusters break the
degeneracy but mildly: sizes cluster tightly around the bulk value.
:func:`plan_buckets` exploits that by padding region sizes up to a
*granularity* and grouping equal padded shapes, so near-equal regions
share one ``(B, n_pad, n_pad)`` stack and the Chebyshev recursion runs
as one batched GEMM per step instead of B interpreter-dispatched 2-D
calls.

The padding is exact, not approximate: the batched backend embeds each
region's *scaled* H̃ in the top-left corner of a zero (n_pad, n_pad)
block, so the padded rows/columns carry eigenvalue 0 ∈ [−1, 1] and the
padded entries of every Chebyshev iterate stay identically zero (the
recursion is linear and starts from zero-padded vectors).  Moments and
density rows gathered through the core-index masks therefore never see
a pad contribution — a property the hypothesis suite pins down on
random size distributions.

This module is pure index arithmetic (no arrays are allocated for the
regions themselves) so the property tests can drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Region sizes are padded up to a multiple of this before grouping —
#: larger values merge more near-miss shapes per bucket at the price of
#: a few extra zero rows in the stack.
GRANULARITY = 8

#: Ceiling on regions per bucket: bounds the working-set of one stack
#: ((B, n_pad, n_pad) + three (B, n_pad, nc_pad) iterate buffers).
MAX_BUCKET_REGIONS = 256

#: Ceiling on one stack's H̃ bytes.  The batched recursion re-reads the
#: whole (B, n_pad, n_pad) stack every Chebyshev step, so a stack that
#: outgrows the last-level cache turns the skinny GEMMs memory-bound
#: (measured ~2x slower once the stack streams from DRAM); splitting
#: keeps each stack cache-resident across all K steps.
MAX_BUCKET_BYTES = 48 * 1024 * 1024


@dataclass(frozen=True)
class Bucket:
    """One stack of like-shaped regions.

    ``indices`` are positions into the solver's region list, in region
    order; ``n_pad × n_pad`` is the padded block shape and ``nc_pad``
    the padded core width shared by the whole stack.
    """

    n_pad: int
    nc_pad: int
    indices: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)

    def fill(self, shapes: list[tuple[int, int]]) -> float:
        """Fraction of stack entries holding real (non-pad) H elements."""
        real = sum(shapes[i][0] ** 2 for i in self.indices)
        return real / (len(self.indices) * self.n_pad ** 2)


def plan_buckets(shapes: list[tuple[int, int]],
                 granularity: int = GRANULARITY,
                 max_regions: int = MAX_BUCKET_REGIONS,
                 max_bytes: int = MAX_BUCKET_BYTES,
                 itemsize: int = 8) -> list[Bucket]:
    """Partition region indices into like-shaped padded stacks.

    Parameters
    ----------
    shapes :
        Per-region ``(n_region, n_core)`` pairs
        (:meth:`~repro.linscale.backends.base.RegionBlockSource.shapes`).
    granularity :
        Regions are keyed on ``n_region`` rounded up to a multiple of
        this; 1 buckets exact shapes only.
    max_regions :
        Buckets larger than this are split (memory bound); the split
        pieces keep region order.
    max_bytes, itemsize :
        Cap on one stack's H̃ footprint (``B * n_pad**2 * itemsize``) —
        keeps the stack last-level-cache-resident across the whole
        Chebyshev recursion.  A single region always fits (the cap
        splits, it never rejects).

    Returns
    -------
    Buckets whose ``indices`` concatenate (in bucket order) to a
    permutation of ``range(len(shapes))`` — an exact partition, never a
    sample.  Empty input produces no buckets.
    """
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if max_regions < 1:
        raise ValueError(f"max_regions must be >= 1, got {max_regions}")
    if max_bytes < 1:
        raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
    groups: dict[int, list[int]] = {}
    for i, (n, nc) in enumerate(shapes):
        if nc > n or nc < 1:
            raise ValueError(
                f"region {i}: core width {nc} invalid for size {n}")
        n_pad = -(-n // granularity) * granularity
        groups.setdefault(n_pad, []).append(i)

    buckets = []
    for n_pad in sorted(groups):
        idx = groups[n_pad]
        cap = max(1, min(max_regions, max_bytes // (n_pad ** 2 * itemsize)))
        for lo in range(0, len(idx), cap):
            part = np.asarray(idx[lo:lo + cap], dtype=np.intp)
            nc_pad = max(shapes[i][1] for i in part)
            buckets.append(Bucket(n_pad=n_pad, nc_pad=nc_pad, indices=part))
    return buckets

"""Pluggable array backends for the region FOE engine.

The solvers in :mod:`repro.linscale.foe_local` and
:mod:`repro.linscale.kfoe` evaluate every Chebyshev region operation
through a :class:`~repro.linscale.backends.base.Backend`, selected here
by name:

``numpy_loop``
    The original per-region dense recursion — the reference oracle
    every other backend is conformance-tested against.
``numpy_batched``
    Shape-bucketed stacked-GEMM evaluation
    (:mod:`~repro.linscale.backends.numpy_batched`) — the MD fast
    path's production backend.
``numba``
    JIT-compiled per-region recursions; registered only when numba is
    installed *and* its kernels pass a self-check against the
    reference, so it is strictly optional.

Selection precedence in :func:`resolve_backend`: explicit argument
(name or instance) → ``REPRO_BACKEND`` environment variable →
:data:`DEFAULT_BACKEND`.  The env override reaches every construction
path — ``make_calculator`` specs, directly built calculators, pool
workers — which is what lets CI re-run the whole linscale tier under a
different backend without touching a single test.

Third-party backends register with :func:`register_backend`; the
conformance suite (``tests/test_backends.py``) parametrizes over
:func:`available_backends`, so a new backend inherits the whole
physics-equivalence matrix for free.
"""

from __future__ import annotations

import os
from importlib.util import find_spec

from repro.errors import ReproError
from repro.linscale.backends.base import Backend, RegionBlockSource
from repro.linscale.backends.bucketing import Bucket, plan_buckets
from repro.linscale.backends.numpy_batched import NumpyBatchedBackend
from repro.linscale.backends.numpy_loop import NumpyLoopBackend

__all__ = [
    "Backend",
    "Bucket",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "NumpyBatchedBackend",
    "NumpyLoopBackend",
    "RegionBlockSource",
    "available_backends",
    "get_backend",
    "plan_buckets",
    "register_backend",
    "resolve_backend",
]

#: Backend used when neither an argument nor the env var selects one.
DEFAULT_BACKEND = "numpy_loop"

#: Environment variable overriding the default backend by name.
ENV_VAR = "REPRO_BACKEND"

_FACTORIES: dict[str, type[Backend]] = {}
_INSTANCES: dict[str, Backend] = {}


def register_backend(name: str, factory: type[Backend], *,
                     replace: bool = False) -> None:
    """Register a backend class under *name* (instantiated lazily)."""
    if not replace and name in _FACTORIES:
        raise ReproError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted — the conformance-suite matrix."""
    return tuple(sorted(_FACTORIES))


def get_backend(name: str) -> Backend:
    """The (shared) backend instance registered under *name*."""
    if name not in _FACTORIES:
        raise ReproError(
            f"unknown array backend {name!r}; available: "
            f"{', '.join(available_backends())}")
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def resolve_backend(backend: str | Backend | None = None) -> Backend:
    """Argument → ``REPRO_BACKEND`` env var → :data:`DEFAULT_BACKEND`."""
    if isinstance(backend, Backend):
        return backend
    name = backend or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    return get_backend(name)


def _probe_numba() -> None:
    """Register the numba backend iff importable and self-consistent."""
    if find_spec("numba") is None:
        return
    try:
        from repro.linscale.backends.numba_jit import NumbaBackend, self_check
        self_check()
    except Exception:
        return
    register_backend(NumbaBackend.name, NumbaBackend)


register_backend("numpy_loop", NumpyLoopBackend)
register_backend("numpy_batched", NumpyBatchedBackend)
_probe_numba()

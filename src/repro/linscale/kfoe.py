"""k-point-parallel Fermi-operator expansion in localization regions.

The Γ-only engine in :mod:`repro.linscale.foe_local` wastes the O(N)
advantage on small-cell metals and strain sweeps: without k sampling
those systems must be blown up into supercells (paying the prefactor N
times over) or fall back to dense k diagonalisation.  This module runs
the *same* region recursion on the complex Hermitian Bloch Hamiltonians
``H(k)`` instead:

* one sparse ``H(k)`` per Monkhorst–Pack point, assembled off the single
  cached bond pattern by
  :meth:`repro.linscale.sparse_hamiltonian.SparseHamiltonianBuilder.build_k`
  (the localization regions themselves are k-independent — Bloch phases
  live in the matrix elements, not in the folded neighbour graph);
* one cached spectral window per k (``H(k)`` spectra shift with k);
* per-(k, region) Chebyshev moments, accumulated with the MP weights
  into **one common chemical potential** through
  :func:`repro.tb.chebyshev.solve_mu_from_moments_multi` — the
  electron count is a property of the whole BZ sample, never of one k;
* per-k core density rows → per-k sparse Hermitian ρ(k), contracted
  into weighted Hellmann–Feynman forces (Slater–Koster gradient **plus**
  the atomic-gauge phase-gradient term) by
  :func:`sparse_band_forces_k`;
* (k, region) tasks fanned through :func:`repro.parallel.pool.map_tasks`
  — the classic k-point decomposition composed with the region
  decomposition, so parallel width is ``n_k × n_regions``.

Both evaluation strategies of the Γ engine carry over: the reference
two-pass solve (:func:`solve_density_regions_k`) and the fused
single-pass MD fast path (:func:`solve_density_regions_k_fused`), whose
μ-Taylor correction is applied per k with that k's own window
coefficients.  Orthogonal models only, like the Γ engine.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import ElectronicError
from repro.neighbors.base import NeighborList
from repro.parallel.pool import map_tasks
from repro.tb.chebyshev import (
    entropy_coefficients,
    fermi_coefficients,
    fermi_mu_derivative_coefficients,
    solve_mu_from_moments_multi,
)
from repro.tb.forces import k_bond_force_terms
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups
from repro.tb.purification import lanczos_spectral_bounds
from repro.tb.slater_koster import sk_block_gradients, sk_blocks
from repro.linscale.backends import resolve_backend
from repro.linscale.backends.base import RegionBlockSource
from repro.linscale.foe_local import (
    _assemble_rho,
    _chunk_specs,
    _check_window,
    _density_worker,
    _fused_worker,
    _gather_blocks,
    _moments_worker,
    _scaled_window,
    _validate_regions,
)
from repro.linscale.regions import LocalizationRegion
from repro.linscale.sparse_hamiltonian import block_index_grids


@dataclass
class KRegionFOEResult:
    """Everything one k-sampled O(N) electronic step produces.

    ``rho_k`` is the list of per-k sparse Hermitian spin-summed density
    matrices (``None`` for energy-only solves); scalars (band energy,
    entropy, populations) are already MP-weight summed.  ``mu`` is the
    single BZ-common chemical potential; ``windows`` the per-k spectral
    bounds the expansion ran on.
    """

    rho_k: list[sp.csr_matrix] | None
    band_energy: float
    mu: float
    entropy: float
    populations: np.ndarray
    n_electrons: float
    order: int
    windows: list[tuple[float, float]]
    n_regions: int
    n_kpoints: int
    mu_shift: float = 0.0
    used_fallback: bool = False
    weights: np.ndarray = field(default=None, repr=False)


def spectral_windows_k(H_list) -> list[tuple[float, float]]:
    """Per-k Lanczos spectral bounds — one Chebyshev window per H(k)."""
    return [lanczos_spectral_bounds(sp.csr_matrix(H)) for H in H_list]


def _validate_k_inputs(H_list, weights, regions):
    if len(H_list) == 0:
        raise ElectronicError("need at least one k point")
    weights = np.asarray(weights, dtype=float)
    if len(weights) != len(H_list):
        raise ElectronicError(
            f"{len(H_list)} k points but {len(weights)} weights")
    H_list = [_validate_regions(H, regions) for H in H_list]
    shapes = {H.shape for H in H_list}
    if len(shapes) != 1:
        raise ElectronicError(f"inconsistent H(k) shapes {shapes}")
    return H_list, weights


def _weighted_scalars(m_k: np.ndarray, e_k: np.ndarray, m_per_k: list,
                      scaled: list, weights: np.ndarray, mu: float,
                      kT: float, order: int):
    """Band energy, entropy, populations and per-k Fermi coefficients at μ."""
    coeffs_k = [fermi_coefficients(c, s, mu, kT, order) for c, s in scaled]
    band = float(sum(w * (ck @ ek)
                     for w, ck, ek in zip(weights, coeffs_k, e_k)))
    entropy = float(sum(
        w * (entropy_coefficients(c, s, mu, kT, order) @ mk)
        for w, (c, s), mk in zip(weights, scaled, m_k)))
    populations = sum(w * (mp @ ck)
                      for w, mp, ck in zip(weights, m_per_k, coeffs_k))
    return band, entropy, populations, coeffs_k


def solve_density_regions_k(H_list, weights,
                            regions: list[LocalizationRegion],
                            n_electrons: float, kT: float, order: int = 150,
                            mu: float | None = None, nworkers: int = 1,
                            executor=None, with_rho: bool = True,
                            windows: list[tuple[float, float]] | None = None,
                            mu_bracket: tuple[float, float] | None = None,
                            backend=None,
                            gather_maps: list[np.ndarray] | None = None
                            ) -> KRegionFOEResult:
    """k-sampled FOE-in-regions (reference two-pass solve).

    Parameters
    ----------
    H_list :
        One complex Hermitian (or real symmetric, at Γ) sparse
        Hamiltonian per k point, all on the same orbital layout.
    weights :
        MP sampling weights (sum 1); pair with a time-reversal-reduced
        grid from :func:`repro.tb.kpoints.monkhorst_pack` to halve the
        k work exactly.
    regions :
        k-independent localization regions of the folded neighbour
        graph (:func:`repro.linscale.regions.extract_regions`).
    windows :
        Optional cached per-k spectral bounds; recomputed by per-k
        Lanczos otherwise.  Stale windows raise
        :class:`~repro.errors.SpectralWindowError` through the per-k
        a-posteriori moment guard.
    mu_bracket :
        Optional warm bracket for the common μ (e.g. last step's μ ± a
        few kT); verified and widened automatically.
    backend, gather_maps :
        As in :func:`repro.linscale.foe_local.solve_density_regions`;
        every H(k) shares one CSR structure, so a single gather-map set
        serves all k points on the inline path.

    Other parameters as in
    :func:`repro.linscale.foe_local.solve_density_regions`.
    """
    if kT <= 0:
        raise ElectronicError("FOE-in-regions needs kT > 0")
    if order < 2:
        raise ElectronicError("expansion order must be >= 2")
    H_list, weights = _validate_k_inputs(H_list, weights, regions)
    m_total = H_list[0].shape[0]
    nk = len(H_list)
    backend = resolve_backend(backend)

    cached_window = windows is not None
    if not cached_window:
        windows = spectral_windows_k(H_list)
    scaled = [_scaled_window(emin, emax) for emin, emax in windows]

    specs, chunks = _chunk_specs(regions, nworkers)
    inline = executor is None and nworkers == 1
    if inline:
        # one densification per (k, region), shared by both passes
        sources = [RegionBlockSource(H, specs, gather_maps=gather_maps,
                                     cache=with_rho) for H in H_list]

    own_pool = None
    if executor is None and nworkers > 1:
        own_pool = ProcessPoolExecutor(max_workers=nworkers)
        executor = own_pool
    try:
        # -- pass 1: per-(k, region) moments → common μ --------------------
        if inline:
            per_k = [backend.moments(sources[ki], scaled[ki][0],
                                     scaled[ki][1], order)
                     for ki in range(nk)]
            m_per_k = [np.stack([m for m, _ in pk]) for pk in per_k]
            e_per_k = [np.stack([e for _, e in pk]) for pk in per_k]
        else:
            tasks = [(H_list[ki], [specs[i] for i in c],
                      scaled[ki][0], scaled[ki][1], order, backend.name)
                     for ki in range(nk) for c in chunks]
            flat = map_tasks(_moments_worker, tasks, nworkers, executor)
            m_per_k, e_per_k = _unpack_per_k(flat, nk, len(chunks))
        for ki in range(nk):
            if cached_window:
                _check_window(m_per_k[ki], regions, windows[ki])
        m_k = np.stack([mp.sum(axis=0) for mp in m_per_k])     # (nk, K+1)
        e_k = np.stack([ep.sum(axis=0) for ep in e_per_k])

        if mu is None:
            emin = min(w[0] for w in windows)
            emax = max(w[1] for w in windows)
            mu = solve_mu_from_moments_multi(
                m_k, scaled, kT, n_electrons,
                bracket=(emin - 10.0 * kT, emax + 10.0 * kT),
                weights=weights, warm_bracket=mu_bracket)

        band, entropy, populations, coeffs_k = _weighted_scalars(
            m_k, e_k, m_per_k, scaled, weights, mu, kT, order)

        # -- pass 2: per-k core density rows → per-k sparse ρ(k) -----------
        rho_k = None
        if with_rho:
            if inline:
                rho_k = [_assemble_rho(
                    regions,
                    backend.density_rows(sources[ki], scaled[ki][0],
                                         scaled[ki][1], coeffs_k[ki]),
                    m_total) for ki in range(nk)]
            else:
                tasks = [(H_list[ki], [specs[i] for i in c],
                          scaled[ki][0], scaled[ki][1], coeffs_k[ki],
                          backend.name)
                         for ki in range(nk) for c in chunks]
                flat = map_tasks(_density_worker, tasks, nworkers, executor)
                rho_k = _assemble_rho_per_k(flat, nk, len(chunks), regions,
                                            m_total)
    finally:
        if own_pool is not None:
            own_pool.shutdown()

    return KRegionFOEResult(
        rho_k=rho_k, band_energy=band, mu=float(mu), entropy=entropy,
        populations=populations, n_electrons=float(populations.sum()),
        order=order, windows=windows, n_regions=len(regions),
        n_kpoints=nk, weights=weights)


def solve_density_regions_k_fused(H_list, weights,
                                  regions: list[LocalizationRegion],
                                  n_electrons: float, kT: float,
                                  order: int = 150, *,
                                  windows: list[tuple[float, float]],
                                  mu_guess: float,
                                  nworkers: int = 1, executor=None,
                                  rho_tol: float = 1e-10,
                                  gather_maps: list[np.ndarray] | None = None,
                                  backend=None
                                  ) -> KRegionFOEResult:
    """Single-pass k-sampled FOE with per-k μ-Taylor correction.

    The k generalisation of
    :func:`repro.linscale.foe_local.solve_density_regions_fused`: one
    Chebyshev recursion per (k, region) produces the moments *and* the
    density-row accumulant stacks of f, ∂f/∂μ, ∂²f/∂μ², ∂³f/∂μ³ at
    ``mu_guess`` — each k expanded on **its own** cached window, so the
    derivative coefficient stacks differ per k while the Taylor weights
    (powers of the common Δμ) are shared.  The exact common μ is then
    solved from the weighted moments; energies/entropy/populations carry
    no Taylor error, ρ(k) carries O((Δμ/kT)⁴)/24 with the same
    second-pass fallback policy as the Γ fast path.

    *gather_maps* (from
    :func:`repro.linscale.foe_local.build_region_gather_maps`) lets the
    inline (``nworkers == 1``, no executor) path densify each region by
    one fancy gather instead of CSR slicing — every H(k) emitted by
    :meth:`~repro.linscale.sparse_hamiltonian.SparseHamiltonianBuilder.build_k`
    shares one CSR structure, so a single map set serves all k points.
    Ignored on the pooled path, exactly as in the Γ fast solve.
    *backend* selects the array backend, as in the Γ solvers.
    """
    if kT <= 0:
        raise ElectronicError("FOE-in-regions needs kT > 0")
    if order < 2:
        raise ElectronicError("expansion order must be >= 2")
    H_list, weights = _validate_k_inputs(H_list, weights, regions)
    m_total = H_list[0].shape[0]
    nk = len(H_list)
    backend = resolve_backend(backend)

    scaled = [_scaled_window(emin, emax) for emin, emax in windows]
    deriv_k = [fermi_mu_derivative_coefficients(c, s, float(mu_guess), kT,
                                                order, nderiv=3)
               for c, s in scaled]

    specs, chunks = _chunk_specs(regions, nworkers)
    inline = executor is None and nworkers == 1
    if inline:
        sources = [RegionBlockSource(H, specs, gather_maps=gather_maps)
                   for H in H_list]

    own_pool = None
    if executor is None and nworkers > 1:
        own_pool = ProcessPoolExecutor(max_workers=nworkers)
        executor = own_pool
    try:
        per_chunk = len(chunks)
        if inline:
            per_k = [backend.fused(sources[ki], scaled[ki][0],
                                   scaled[ki][1], deriv_k[ki])
                     for ki in range(nk)]
        else:
            tasks = [(H_list[ki], [specs[i] for i in c],
                      scaled[ki][0], scaled[ki][1], deriv_k[ki],
                      backend.name)
                     for ki in range(nk) for c in chunks]
            flat = map_tasks(_fused_worker, tasks, nworkers, executor)
            per_k = [[r for chunk in
                      flat[ki * per_chunk:(ki + 1) * per_chunk]
                      for r in chunk] for ki in range(nk)]
        m_per_k = [np.stack([m for m, _, _ in pk]) for pk in per_k]
        e_per_k = [np.stack([e for _, e, _ in pk]) for pk in per_k]
        for ki in range(nk):
            _check_window(m_per_k[ki], regions, windows[ki])
        m_k = np.stack([mp.sum(axis=0) for mp in m_per_k])
        e_k = np.stack([ep.sum(axis=0) for ep in e_per_k])

        emin = min(w[0] for w in windows)
        emax = max(w[1] for w in windows)
        mu = solve_mu_from_moments_multi(
            m_k, scaled, kT, n_electrons,
            bracket=(emin - 10.0 * kT, emax + 10.0 * kT),
            weights=weights,
            warm_bracket=(mu_guess - 10.0 * kT, mu_guess + 10.0 * kT))
        dmu = mu - float(mu_guess)

        band, entropy, populations, coeffs_k = _weighted_scalars(
            m_k, e_k, m_per_k, scaled, weights, mu, kT, order)

        mu_shift_tol = kT * (24.0 * rho_tol) ** 0.25
        used_fallback = abs(dmu) > mu_shift_tol
        rho_k = []
        if used_fallback:
            if inline:
                rho_k = [_assemble_rho(
                    regions,
                    backend.density_rows(sources[ki], scaled[ki][0],
                                         scaled[ki][1], coeffs_k[ki]),
                    m_total) for ki in range(nk)]
            else:
                tasks = [(H_list[ki], [specs[i] for i in c],
                          scaled[ki][0], scaled[ki][1], coeffs_k[ki],
                          backend.name)
                         for ki in range(nk) for c in chunks]
                flat = map_tasks(_density_worker, tasks, nworkers, executor)
                rho_k = _assemble_rho_per_k(flat, nk, per_chunk, regions,
                                            m_total)
        else:
            w_taylor = np.array([1.0, dmu, 0.5 * dmu * dmu,
                                 dmu * dmu * dmu / 6.0])
            for pk in per_k:
                rows = []
                for _, _, outs in pk:
                    cols = np.tensordot(w_taylor, outs, axes=([0], [0]))
                    rows.append(np.conj(cols.T)
                                if np.iscomplexobj(cols) else cols.T)
                rho_k.append(_assemble_rho(regions, rows, m_total))
    finally:
        if own_pool is not None:
            own_pool.shutdown()

    return KRegionFOEResult(
        rho_k=rho_k, band_energy=band, mu=float(mu), entropy=entropy,
        populations=populations, n_electrons=float(populations.sum()),
        order=order, windows=windows, n_regions=len(regions),
        n_kpoints=nk, mu_shift=float(dmu), used_fallback=used_fallback,
        weights=weights)


def _assemble_rho_per_k(flat: list, nk: int, per_chunk: int,
                        regions: list[LocalizationRegion], m_total: int
                        ) -> list[sp.csr_matrix]:
    """Regroup a flat (k-major) density-row chunk list into per-k ρ̂(k)."""
    rho_k = []
    for ki in range(nk):
        rows = [rr for chunk in flat[ki * per_chunk:(ki + 1) * per_chunk]
                for rr in chunk]
        rho_k.append(_assemble_rho(regions, rows, m_total))
    return rho_k


def _unpack_per_k(flat: list, nk: int, per_chunk: int):
    """Regroup a flat (k-major) chunk list into per-k moment stacks."""
    m_per_k, e_per_k = [], []
    for ki in range(nk):
        per_region = [mo for chunk in flat[ki * per_chunk:
                                           (ki + 1) * per_chunk]
                      for mo in chunk]
        m_per_k.append(np.stack([m for m, _ in per_region]))
        e_per_k.append(np.stack([e for _, e in per_region]))
    return m_per_k, e_per_k


# ---------------------------------------------------------------------------
# Weighted Hellmann–Feynman forces from per-k sparse density matrices
# ---------------------------------------------------------------------------

def sparse_band_forces_k(atoms, model, nl: NeighborList, rho_k: list,
                         weights, k_carts) -> tuple[np.ndarray, np.ndarray]:
    """MP-weighted band forces (N, 3) and virial (3, 3) from sparse ρ(k).

    The sparse twin of :func:`repro.tb.forces.band_forces_k`, summed over
    the sampled k points: per half-list bond and k,

    ``∂E/∂d_c = 2 w_k Re[ Σ_ab conj(ρ(k)_ab) e^{i k·d} (G_cab + i k_c B_ab) ]``

    — the Slater–Koster gradient plus the atomic-gauge phase-gradient
    term.  As in the dense version, the virial keeps only the SK part
    (the phase term cancels against the reciprocal-vector strain
    response at fixed fractional k).  Orthogonal models only.
    """
    if not model.orthogonal:
        raise ElectronicError(
            "sparse band forces support orthogonal models only"
        )
    weights = np.asarray(weights, dtype=float)
    k_carts = np.atleast_2d(np.asarray(k_carts, dtype=float))
    if len(rho_k) != len(weights) or len(rho_k) != len(k_carts):
        raise ElectronicError(
            f"{len(rho_k)} density matrices, {len(weights)} weights, "
            f"{len(k_carts)} k points — counts must match")
    symbols = atoms.symbols
    offsets, _ = orbital_offsets(symbols, model)
    n = len(atoms)
    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))
    if nl.n_pairs == 0:
        return forces, virial

    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        r = nl.distances[pidx]
        vec = nl.vectors[pidx]
        u = vec / r[:, None]
        ni, nj = model.norb(sa), model.norb(sb)
        oi = offsets[nl.i[pidx]]
        oj = offsets[nl.j[pidx]]

        V, dV = model.hopping(sa, sb, r)
        B = sk_blocks(u, V)[:, :ni, :nj]
        G = sk_block_gradients(u, r, V, dV)[:, :, :ni, :nj]
        rows, cols = block_index_grids(oi, oj, ni, nj)

        g = np.zeros((len(pidx), 3))
        g_sk_tot = np.zeros((len(pidx), 3))
        for rho, wk, k in zip(rho_k, weights, k_carts):
            phases = np.exp(1j * (vec @ k))
            g_sk, q = k_bond_force_terms(_gather_blocks(rho, rows, cols),
                                         phases, B, G)
            g_sk_tot += wk * g_sk
            g += wk * (g_sk + q[:, None] * k[None, :])

        np.add.at(forces, nl.i[pidx], g)
        np.add.at(forces, nl.j[pidx], -g)
        virial += np.einsum("pc,pd->cd", g_sk_tot, vec)

    return forces, virial

"""Calculators built on density matrices instead of eigen-spectra.

:class:`LinearScalingCalculator` is the O(N) production path: sparse
Hamiltonian → localization regions → FOE-in-regions → Hellmann–Feynman
forces from core density rows.  It is API-compatible with
:class:`~repro.tb.calculator.TBCalculator` (``compute`` /
``get_potential_energy`` / ``get_forces`` / ``get_stress`` …), so the MD
driver, the relaxers and the CLI run unchanged on top of it; the only
deliberate gap is anything needing an eigen-spectrum (eigenvalues,
HOMO/LUMO gap), which an O(N) method never produces.

With ``reuse=True`` (the default) the calculator keeps **persistent
step-to-step state** — the MD fast path:

* skin-based Verlet neighbour lists (rebuilt only on > skin/2 drift or
  any cell change),
* the sparse-Hamiltonian pattern, with value-only rewrites and
  dirty-row updates when only some atoms moved,
* the localization regions (rebuilt only when the r_loc bond graph
  changes),
* the Chebyshev spectral window (Lanczos bounds, padded; refreshed on
  neighbour-list rebuilds and guarded a posteriori),
* the chemical potential (linear extrapolation of the last two steps
  warm-starts the next solve).

When a warm μ is available, force evaluations use the *fused*
single-pass FOE (:func:`repro.linscale.foe_local.solve_density_regions_fused`)
— one Chebyshev recursion instead of two, with a μ-Taylor correction —
which roughly halves the per-step cost.  All reuse decisions flow
through the shared :class:`repro.state.CalculatorState` contract, so a
cell, species or parameter change always falls back to a full cold
rebuild.  ``reuse=False`` restores the rebuild-everything-per-step
behaviour (benchmark baseline).

:class:`DensityMatrixCalculator` wraps the *dense* O(N)-family kernels —
Palser–Manolopoulos purification (zero temperature) and the global
Chebyshev FOE (finite temperature) — behind the same interface, which is
what the CLI's ``--solver purification|foe`` flags dispatch to and what
the crossover benchmark compares against.  It shares the same state
protocol and reuses its spectral bounds and μ across steps.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.errors import ElectronicError, ModelError, SpectralWindowError
from repro.neighbors.verlet import VerletList
from repro.state import CalculatorState
from repro.tb.chebyshev import fermi_operator_expansion
from repro.tb.forces import band_forces, repulsive_energy_forces
from repro.tb.hamiltonian import build_hamiltonian
from repro.tb.purification import (
    lanczos_spectral_bounds,
    purify_density_matrix,
    spectral_bounds,
)
from repro.units import EV_PER_A3_TO_GPA, KB
from repro.utils.timing import PhaseTimer

from repro.linscale.backends import resolve_backend
from repro.linscale.foe_local import (
    build_region_gather_maps,
    solve_density_regions,
    solve_density_regions_fused,
    sparse_band_forces,
)
from repro.linscale.kfoe import (
    solve_density_regions_k,
    solve_density_regions_k_fused,
    sparse_band_forces_k,
)
from repro.linscale.regions import extract_regions, region_statistics
from repro.linscale.sparse_hamiltonian import SparseHamiltonianBuilder
from repro.tb.kpoints import KGRID_REDUCE_MODES, frac_to_cartesian, reduced_kgrid
from repro.tb.symmetry import (
    symmetrize_atom_scalars,
    symmetrize_forces,
    symmetrize_virial,
)


def _padded_lanczos_window(H) -> tuple[float, float]:
    """Tight Lanczos bounds + drift pad — the cached Chebyshev window.

    The pad absorbs spectral drift while the window is reused between
    refreshes; the a-posteriori moment guards catch the rare case of the
    spectrum escaping anyway.  One formula for every calculator, so the
    dense and O(N) engines expand on identical windows.
    """
    emin, emax = lanczos_spectral_bounds(H)
    pad = 0.02 * (emax - emin) + 0.2
    return (emin - pad, emax + pad)


class _DensityMatrixCalculatorBase:
    """Shared cache, force/stress assembly and getters.

    Subclasses own a :class:`repro.state.CalculatorState` (``_state``), a
    ``_params()`` tuple (what invalidates the electronic state) and
    ``compute(atoms, forces)``; everything else — the results cache, the
    virial → stress/pressure tail, and the TBCalculator-compatible getter
    surface — lives here once.
    """

    model = None
    timer: PhaseTimer

    def _params(self) -> tuple:  # pragma: no cover - overridden
        raise NotImplementedError

    def _reset_persistent(self) -> None:  # pragma: no cover - overridden
        """Drop step-to-step caches (lists, patterns, windows, μ)."""

    def invalidate(self) -> None:
        """Forget everything — cached results *and* persistent state.

        Call after mutating model parameters in place; normal structural
        changes are detected automatically through the state protocol.
        """
        self._state = CalculatorState()
        self._results = {}
        self._cache_key = None
        self._reset_persistent()

    def _cached(self, report, forces: bool) -> dict | None:
        """Cached results, only when they were *stored* for the current
        state generation — a compute that raised after the snapshot was
        taken leaves ``_cache_key`` behind the generation, so a retry at
        the same geometry recomputes instead of serving stale data."""
        if not report.any_change and self._results and \
                self._cache_key == self._state.snapshot_id and \
                (not forces or "forces" in self._results):
            return self._results
        return None

    def _store(self, res: dict) -> dict:
        self._results = res
        self._cache_key = self._state.snapshot_id
        return res

    def _attach_forces(self, res: dict, atoms, fband, frep, vband, vrep
                       ) -> None:
        """Total forces, virial, and — for periodic cells — stress/pressure."""
        res["forces"] = fband + frep
        res["virial"] = vband + vrep
        if atoms.cell.fully_periodic:
            vol = atoms.cell.volume
            res["stress"] = res["virial"] / vol
            res["pressure"] = float(-np.trace(res["virial"]) / (3 * vol))
            res["pressure_gpa"] = res["pressure"] * EV_PER_A3_TO_GPA

    # -- convenience getters (TBCalculator-compatible) ---------------------
    def get_potential_energy(self, atoms) -> float:
        """Total energy (eV): band-structure + repulsive."""
        return self.compute(atoms, forces=False)["energy"]

    def get_free_energy(self, atoms) -> float:
        """Mermin free energy E − T·S_el (equals energy where S is not
        expanded)."""
        return self.compute(atoms, forces=False)["free_energy"]

    def get_forces(self, atoms) -> np.ndarray:
        """(N, 3) forces in eV/Å."""
        return self.compute(atoms, forces=True)["forces"]

    def get_stress(self, atoms) -> np.ndarray:
        """3×3 potential stress tensor in eV/Å³ (periodic cells only)."""
        res = self.compute(atoms, forces=True)
        if "stress" not in res:
            raise ModelError("stress requires a fully periodic cell")
        return res["stress"]

    def get_pressure(self, atoms) -> float:
        """Potential pressure −tr(virial)/3V in eV/Å³."""
        res = self.compute(atoms, forces=True)
        if "pressure" not in res:
            raise ModelError("pressure requires a fully periodic cell")
        return res["pressure"]

    def get_eigenvalues(self, atoms):
        raise ModelError(
            "density-matrix calculators never build an eigen-spectrum; use "
            "TBCalculator for eigenvalues / gaps"
        )


class LinearScalingCalculator(_DensityMatrixCalculatorBase):
    """O(N) tight-binding calculator (FOE in localization regions).

    Parameters
    ----------
    model :
        An *orthogonal* :class:`~repro.tb.models.base.TBModel`.
    kT :
        Electronic temperature in eV; must be > 0 (the Fermi operator is
        expanded, not diagonalised).  Accuracy vs the exact smeared
        diagonalisation is controlled by *r_loc* and *order* together.
    r_loc :
        Localization radius in Å (≥ ``model.cutoff``).  Defaults to
        1.5 × cutoff — a few bonding shells, the regime the paper's
        accuracy tables use.
    order :
        Chebyshev expansion order; needed order grows like
        (spectral width)/kT.
    nworkers, executor :
        Region solves are batched through the process pool
        (:func:`repro.parallel.pool.map_tasks`).
    neighbor_method, skin :
        Verlet-list construction (builder choice, skin margin in Å).
    reuse :
        Keep persistent step-to-step state (neighbour lists, Hamiltonian
        pattern, regions, spectral window, μ) and use the fused
        single-pass FOE when warm — the MD fast path.  ``False`` rebuilds
        everything on every call (the pre-fast-path behaviour, kept as
        the benchmark baseline).
    rho_tol :
        Acceptable μ-Taylor remainder in the fused density matrix; the
        fused solve falls back to an exact second pass beyond it.
    kpts :
        ``None`` for the Γ-point engine, or a Monkhorst–Pack size
        tuple / int for the k-sampled engine
        (:mod:`repro.linscale.kfoe`): complex per-(k, region) blocks off
        the one cached bond pattern, one cached spectral window per k,
        MP-weighted moments → one common μ, weighted density-row and
        force assembly.  This is the path for *small-cell metals* — tiny
        periodic cells whose Γ-only folding would need a large
        supercell.
    kgrid_reduce :
        MP-grid folding: ``"trs"`` (default, −k onto +k with doubled
        weight), ``"full"``, or ``"symmetry"`` — the crystal-point-group
        irreducible wedge (:mod:`repro.tb.symmetry`), re-detected per
        structure, with band forces/virial/populations scattered back
        through the folding ops.  A symmetry-broken structure degrades
        to the time-reversal reduction; the per-k pattern cache, window
        caches and warm-μ fast path all run on the wedge unchanged.
    backend :
        Array backend for the region Chebyshev recursions — a name from
        :func:`repro.linscale.backends.available_backends`
        (``"numpy_loop"``, ``"numpy_batched"``, …), a
        :class:`~repro.linscale.backends.base.Backend` instance, or
        ``None`` to resolve from the ``REPRO_BACKEND`` environment
        variable / the package default.  Backends are physics-equivalent
        (conformance-tested); ``numpy_batched`` runs each shape bucket of
        regions as one stacked-GEMM recursion and is the fast choice for
        inline (``nworkers == 1``) MD.
    """

    def __init__(self, model, kT: float = 0.1, r_loc: float | None = None,
                 order: int = 150, nworkers: int = 1, executor=None,
                 neighbor_method: str = "auto", skin: float = 0.5,
                 reuse: bool = True, rho_tol: float = 1e-10, kpts=None,
                 kgrid_reduce: str = "trs", backend=None):
        if not model.orthogonal:
            raise ElectronicError(
                "LinearScalingCalculator supports orthogonal models only "
                "(no S-metric FOE)"
            )
        if kT <= 0:
            raise ElectronicError(
                "LinearScalingCalculator needs kT > 0 — the Fermi operator "
                "is expanded at finite electronic temperature"
            )
        self.model = model
        self.kT = float(kT)
        self.r_loc = float(r_loc) if r_loc is not None else 1.5 * model.cutoff
        if self.r_loc < model.cutoff:
            raise ElectronicError(
                f"r_loc = {self.r_loc} Å must be >= model cutoff "
                f"{model.cutoff} Å"
            )
        self.order = int(order)
        self.nworkers = int(nworkers)
        self.executor = executor
        self.reuse = bool(reuse)
        self.rho_tol = float(rho_tol)
        self.backend = resolve_backend(backend)
        if kgrid_reduce not in KGRID_REDUCE_MODES:
            raise ElectronicError(
                f"unknown kgrid_reduce {kgrid_reduce!r}; choose from "
                f"{KGRID_REDUCE_MODES}")
        self.kgrid_reduce = kgrid_reduce
        self._kgrid_size = kpts
        self._sym_cache: tuple = (None, None)
        if kpts is None or kgrid_reduce == "symmetry":
            # the symmetry wedge depends on cell + basis: resolved per
            # structure at the top of every compute
            self.kpts_frac = None
            self.kweights = None
        else:
            self.kpts_frac, self.kweights, _ = reduced_kgrid(kpts,
                                                             kgrid_reduce)
        self._own_pool = None
        self.timer = PhaseTimer()
        self._neighbor_method = neighbor_method
        self._skin = float(skin)
        self._vlist = VerletList(rcut=model.cutoff, skin=skin,
                                 method=neighbor_method)
        self._vlist_loc = VerletList(rcut=self.r_loc, skin=skin,
                                     method=neighbor_method)
        self._hbuilder = SparseHamiltonianBuilder(model)
        self._counters = {"cache_hits": 0, "foe_cold": 0, "foe_fused": 0,
                          "foe_fallback": 0, "window_refreshes": 0,
                          "window_reuses": 0, "window_invalidations": 0,
                          "region_rebuilds": 0, "region_reuses": 0}
        self.invalidate()

    def _params(self) -> tuple:
        ksig = None if self.kpts_frac is None else \
            tuple(map(tuple, np.round(self.kpts_frac, 12)))
        return (self.kT, self.r_loc, self.order, ksig, self.backend.name)

    def _reset_persistent(self) -> None:
        """Drop every step-to-step cache; the next compute is cold."""
        self._vlist.reset()
        self._vlist_loc.reset()
        self._hbuilder.reset()
        self._regions = None
        self._regions_sig = None
        self._window = None
        self._windows_k = None
        self._mu_hist: list[float] = []
        self._last_solve_mode = "none"
        self._gmaps = None
        self._gmaps_key = (None, None)
        self._sym_cache = (None, None)

    def _region_executor(self):
        """The executor region solves run on — user-supplied, or one pool
        kept alive for the calculator's lifetime (an MD run must not pay
        process spawn every step)."""
        if self.executor is not None:
            return self.executor
        if self.nworkers > 1 and self._own_pool is None:
            self._own_pool = ProcessPoolExecutor(max_workers=self.nworkers)
        return self._own_pool

    def close(self) -> None:
        """Shut down the calculator-owned worker pool (no-op otherwise)."""
        if self._own_pool is not None:
            self._own_pool.shutdown()
            self._own_pool = None

    def __del__(self):  # pragma: no cover - interpreter-exit ordering
        with contextlib.suppress(Exception):
            self.close()

    # -- persistent-state helpers ------------------------------------------
    def _get_regions(self, atoms, nl_loc):
        """Cached localization regions, rebuilt only when the r_loc bond
        graph (the filtered pair arrays) changed."""
        sig_ok = (
            self._regions is not None
            and np.array_equal(self._regions_sig[0], nl_loc.i)
            and np.array_equal(self._regions_sig[1], nl_loc.j)
        )
        if sig_ok:
            self._counters["region_reuses"] += 1
            obs.counter_inc("regions.reuse")
            return self._regions
        self._counters["region_rebuilds"] += 1
        obs.counter_inc("regions.rebuild")
        self._regions = extract_regions(atoms, self.model, self.r_loc,
                                        nl=nl_loc)
        self._regions_sig = (nl_loc.i.copy(), nl_loc.j.copy())
        return self._regions

    def _refresh_window(self, H) -> tuple[float, float]:
        """Recompute and cache the padded Chebyshev window (refreshed on
        neighbour-list rebuilds; see :func:`_padded_lanczos_window`)."""
        self._window = _padded_lanczos_window(H)
        self._counters["window_refreshes"] += 1
        obs.counter_inc("window.refresh")
        return self._window

    def _refresh_windows_k(self, H_k) -> list[tuple[float, float]]:
        """Per-k twin of :meth:`_refresh_window` — one padded window per
        H(k) (Bloch spectra shift with k, so one shared window would
        either leak or over-widen every expansion)."""
        self._windows_k = [_padded_lanczos_window(H) for H in H_k]
        self._counters["window_refreshes"] += 1
        obs.counter_inc("window.refresh")
        return self._windows_k

    #: cap on cached densification-map memory (bytes); beyond it the
    #: fused solve falls back to CSR slicing — maps cost O(Σ n_region²),
    #: which would eventually rival the sparse problem itself
    GATHER_MAP_BYTES_MAX = 256 * 1024 * 1024

    def _gather_maps(self, H, regions):
        """Cached per-region densification maps (inline solves only).

        Valid exactly while both the CSR structure (``H.indices`` is the
        builder's cached array on pattern hits) and the region list are
        the cached objects; rebuilt otherwise.  Skipped for pooled
        solves (the maps would have to be shipped to workers) and for
        systems whose maps would exceed :data:`GATHER_MAP_BYTES_MAX`.
        """
        if self.nworkers != 1 or self.executor is not None:
            return None
        nbytes = 4 * sum(r.n_orbitals ** 2 for r in regions)
        if nbytes > self.GATHER_MAP_BYTES_MAX:
            return None
        if self._gmaps is None or \
                self._gmaps_key != (id(H.indices), id(regions)):
            self._gmaps = build_region_gather_maps(H, regions)
            # holding H.indices/regions refs keeps the ids stable
            self._gmaps_key = (id(H.indices), id(regions))
            self._gmaps_anchor = (H.indices, regions)
        return self._gmaps

    def _resolve_kgrid(self, atoms):
        """Current folding ops (``None`` outside symmetry mode), updating
        ``kpts_frac`` / ``kweights`` for the current structure.

        Cached by exact cell/positions/species bytes — across a strain
        sweep of a symmetric crystal the *fractional* wedge is invariant,
        so the params signature stays put and the warm per-k state
        (pattern, windows, μ) survives every strain step.  On geometry
        changes the cached ops are revalidated in O(|ops|·N); the full
        O(N²) detection reruns only when an op was lost
        (:func:`repro.tb.symmetry.rewedge`)."""
        if self.kgrid_reduce != "symmetry":
            return None
        from repro.tb.symmetry import rewedge

        key = (atoms.cell.matrix.tobytes(), tuple(atoms.symbols),
               atoms.positions.tobytes())
        cached_key, grid = self._sym_cache
        if cached_key != key:
            g = rewedge(self._kgrid_size, atoms,
                        prev_ops=grid[2] if grid else None)
            grid = (g.kpts_frac, g.weights, g.ops)
            self._sym_cache = (key, grid)
        else:
            obs.counter_inc("symmetry.wedge_cache_hit")
        self.kpts_frac, self.kweights = grid[0], grid[1]
        return grid[2]

    def _mu_guess(self) -> float | None:
        """Warm μ: linear extrapolation of the last two converged values."""
        if not self._mu_hist:
            return None
        if len(self._mu_hist) >= 2:
            return 2.0 * self._mu_hist[-1] - self._mu_hist[-2]
        return self._mu_hist[-1]

    def state_report(self) -> dict:
        """Reuse diagnostics: what was rebuilt vs recycled so far.

        Keys: ``neighbors`` / ``neighbors_loc`` (Verlet build/reuse
        counts), ``hamiltonian`` (pattern builds vs value rewrites),
        ``regions``, ``window``, ``foe`` (cold / fused / fallback
        counts), ``cache_hits``.
        """
        c = self._counters
        return {
            "reuse": self.reuse,
            "backend": self.backend.name,
            "neighbors": self._vlist.stats(),
            "neighbors_loc": self._vlist_loc.stats(),
            "hamiltonian": self._hbuilder.stats(),
            "regions": {"rebuilds": c["region_rebuilds"],
                        "reuses": c["region_reuses"]},
            "window": {"refreshes": c["window_refreshes"],
                       "reuses": c["window_reuses"],
                       "invalidations": c["window_invalidations"]},
            "foe": {"cold": c["foe_cold"], "fused": c["foe_fused"],
                    "fallback": c["foe_fallback"]},
            "cache_hits": c["cache_hits"],
        }

    # -- main evaluation ----------------------------------------------------
    def compute(self, atoms, forces: bool = True) -> dict:
        """Evaluate and return the full results dict.

        Keys: ``energy``, ``free_energy``, ``band_energy``,
        ``repulsive_energy``, ``fermi_level``, ``entropy``,
        ``populations``, ``charges``, ``n_regions``, ``region_stats``,
        ``order``, ``r_loc``, ``n_orbitals``, ``n_pairs``, ``fastpath``
        and — with ``forces=True`` — ``forces``, ``virial``, ``stress``
        (periodic cells), ``pressure``.  Energies in eV, forces in eV/Å,
        stress/pressure in eV/Å³, entropy in eV/K.
        """
        if not obs.tracing_enabled():
            return self._compute_impl(atoms, forces)
        with obs.span("calc.compute") as sp_:
            res = self._compute_impl(atoms, forces)
            fp = res.get("fastpath") or {}
            sp_.set(natoms=len(atoms),
                    mode=fp.get("mode", self._last_solve_mode))
            return res

    def _compute_impl(self, atoms, forces: bool = True) -> dict:
        kmode = self._kgrid_size is not None
        if kmode and not atoms.cell.periodic:
            raise ElectronicError("k-point sampling requires a periodic cell")
        # resolve the (possibly structure-dependent) wedge *before* the
        # state observation: a changed wedge changes the params signature
        # and correctly forces a full reset of the per-k caches
        sym_ops = self._resolve_kgrid(atoms) if kmode else None

        report = self._state.observe(atoms, params=self._params())
        cached = self._cached(report, forces)
        if cached is not None:
            self._counters["cache_hits"] += 1
            obs.counter_inc("calc.cache_hit")
            return cached
        if not self.reuse or report.needs_full_reset:
            self._reset_persistent()

        model = self.model
        model.check_species(atoms.symbols)

        with self.timer.phase("neighbors"):
            nl = self._vlist.update(atoms)
            nl_loc = self._vlist_loc.update(atoms)

        with self.timer.phase("hamiltonian"):
            moved = report.moved if self.reuse else None
            if kmode:
                kcarts = frac_to_cartesian(self.kpts_frac, atoms.cell)
                H_k = self._hbuilder.build_k(atoms, nl, kcarts, moved=moved)
                m_orbitals = H_k[0].shape[0]
            else:
                H = self._hbuilder.build(atoms, nl, moved=moved)
                m_orbitals = H.shape[0]

        with self.timer.phase("regions"):
            regions = self._get_regions(atoms, nl_loc)

        cached_windows = self._windows_k if kmode else self._window
        if self.reuse and (cached_windows is None
                           or self._vlist.last_update_rebuilt
                           or self._vlist_loc.last_update_rebuilt):
            # without reuse the two-pass solve computes its own bounds;
            # refreshing here too would double the Lanczos work
            with self.timer.phase("bounds"):
                if kmode:
                    self._refresh_windows_k(H_k)
                else:
                    self._refresh_window(H)
        elif self.reuse:
            # cached Lanczos window carried over: no re-Lanczos this step
            self._counters["window_reuses"] += 1
            obs.counter_inc("window.reuse")

        with self.timer.phase("foe"):
            if kmode:
                foe = self._solve_k(H_k, regions, atoms, with_rho=forces)
            else:
                foe = self._solve(H, regions, atoms, with_rho=forces)
        self._mu_hist = (self._mu_hist + [foe.mu])[-2:]

        with self.timer.phase("repulsive"):
            erep, frep, vrep = repulsive_energy_forces(atoms, model, nl)

        z = np.array([model.n_electrons(s) for s in atoms.symbols])
        populations = foe.populations
        if sym_ops is not None:
            # wedge-accumulated per-atom sums → full-grid values
            populations = symmetrize_atom_scalars(populations, sym_ops)
        energy = foe.band_energy + erep
        res = {
            "band_energy": foe.band_energy,
            "repulsive_energy": erep,
            "energy": energy,
            "free_energy": energy - (self.kT / KB) * foe.entropy,
            "fermi_level": foe.mu,
            "entropy": foe.entropy,
            "populations": populations,
            "charges": z - populations,
            "n_electrons": foe.n_electrons,
            "n_regions": foe.n_regions,
            "region_stats": region_statistics(regions),
            "order": foe.order,
            "r_loc": self.r_loc,
            "spectral_bounds": foe.windows if kmode
                               else foe.spectral_bounds,
            "n_orbitals": m_orbitals,
            "n_pairs": nl.n_pairs,
            "fastpath": {"mode": self._last_solve_mode,
                         "mu_shift": foe.mu_shift,
                         "used_fallback": foe.used_fallback},
        }
        if kmode:
            res["n_kpoints"] = len(kcarts)
            res["kweights"] = self.kweights

        if forces:
            with self.timer.phase("forces"):
                if kmode:
                    fband, vband = sparse_band_forces_k(
                        atoms, model, nl, foe.rho_k, self.kweights, kcarts)
                    if sym_ops is not None:
                        fband = symmetrize_forces(fband, sym_ops,
                                                  atoms.cell)
                        vband = symmetrize_virial(vband, sym_ops,
                                                  atoms.cell)
                else:
                    fband, vband = sparse_band_forces(atoms, model, nl,
                                                      foe.rho)
                self._attach_forces(res, atoms, fband, frep, vband, vrep)
        return self._store(res)

    def _solve(self, H, regions, atoms, with_rho: bool):
        """Dispatch cold / warm / fused FOE, with stale-window recovery."""
        nelec = self.model.total_electrons(atoms.symbols)
        executor = self._region_executor()

        def fused(mu_guess):
            return solve_density_regions_fused(
                H, regions, nelec, self.kT, order=self.order,
                window=self._window, mu_guess=mu_guess,
                nworkers=self.nworkers, executor=executor,
                rho_tol=self.rho_tol, backend=self.backend,
                gather_maps=self._gather_maps(H, regions))

        def two_pass(window, bracket):
            return solve_density_regions(
                H, regions, nelec, self.kT, order=self.order,
                nworkers=self.nworkers, executor=executor,
                with_rho=with_rho, window=window, mu_bracket=bracket,
                backend=self.backend,
                gather_maps=self._gather_maps(H, regions))

        return self._dispatch_solve(with_rho, fused, two_pass,
                                    lambda: self._window,
                                    lambda: self._refresh_window(H))

    def _solve_k(self, H_k, regions, atoms, with_rho: bool):
        """k-sampled twin of :meth:`_solve`: same dispatch policy, with
        per-k windows and the common-μ k solvers."""
        nelec = self.model.total_electrons(atoms.symbols)
        executor = self._region_executor()

        def fused(mu_guess):
            return solve_density_regions_k_fused(
                H_k, self.kweights, regions, nelec, self.kT,
                order=self.order, windows=self._windows_k,
                mu_guess=mu_guess, nworkers=self.nworkers,
                executor=executor, rho_tol=self.rho_tol,
                backend=self.backend,
                # every H(k) shares the builder's CSR structure, so one
                # cached map set serves all k points
                gather_maps=self._gather_maps(H_k[0], regions))

        def two_pass(windows, bracket):
            return solve_density_regions_k(
                H_k, self.kweights, regions, nelec, self.kT,
                order=self.order, nworkers=self.nworkers, executor=executor,
                with_rho=with_rho, windows=windows, mu_bracket=bracket,
                backend=self.backend,
                gather_maps=self._gather_maps(H_k[0], regions))

        return self._dispatch_solve(with_rho, fused, two_pass,
                                    lambda: self._windows_k,
                                    lambda: self._refresh_windows_k(H_k))

    def _dispatch_solve(self, with_rho: bool, fused, two_pass,
                        cached_windows, refresh):
        """The one cold / warm / fused dispatch policy (Γ and k modes).

        Fused when warm (cached windows + warm μ guess, with_rho); on a
        stale-window error, refresh and fall back to the verified
        two-pass solve, which itself retries once after a refresh.
        *fused(mu_guess)* / *two_pass(windows, bracket)* close over the
        mode-specific solver arguments; *cached_windows()* / *refresh()*
        read and rebuild the mode's window cache.
        """
        mu_guess = self._mu_guess() if self.reuse else None

        if self.reuse and with_rho and mu_guess is not None and \
                cached_windows() is not None:
            try:
                foe = fused(mu_guess)
                if foe.used_fallback:
                    self._counters["foe_fallback"] += 1
                    self._last_solve_mode = "fused+fallback"
                    obs.counter_inc("foe.fallback")
                else:
                    self._counters["foe_fused"] += 1
                    self._last_solve_mode = "fused"
                    obs.counter_inc("foe.fused")
                obs.observe("foe.mu_shift", abs(foe.mu_shift or 0.0))
                obs.current_span().set(mode=self._last_solve_mode,
                                       mu_shift=foe.mu_shift)
                return foe
            except SpectralWindowError:
                self._counters["window_invalidations"] += 1
                obs.counter_inc("window.invalidated")
                refresh()
                # fall through to the verified two-pass solve

        bracket = None
        if self.reuse and mu_guess is not None:
            bracket = (mu_guess - 10.0 * self.kT, mu_guess + 10.0 * self.kT)
        try:
            foe = two_pass(cached_windows() if self.reuse else None, bracket)
        except SpectralWindowError:
            self._counters["window_invalidations"] += 1
            obs.counter_inc("window.invalidated")
            refresh()
            foe = two_pass(cached_windows(), bracket)
        self._counters["foe_cold"] += 1
        self._last_solve_mode = "two-pass"
        obs.counter_inc("foe.cold")
        obs.current_span().set(mode="two-pass")
        return foe

    def get_charges(self, atoms) -> np.ndarray:
        """Mulliken charges q_i = Z_i − population_i (|e|)."""
        return self.compute(atoms, forces=False)["charges"]

    def __repr__(self) -> str:
        if self._kgrid_size is None:
            kmode = "Γ"
        elif self.kpts_frac is None:
            kmode = "symmetry k-grid (unresolved)"
        else:
            kmode = f"{len(self.kpts_frac)} k-points ({self.kgrid_reduce})"
        return (f"LinearScalingCalculator(model={self.model.name!r}, "
                f"{kmode}, kT={self.kT} eV, r_loc={self.r_loc:.2f} Å, "
                f"order={self.order}, nworkers={self.nworkers}, "
                f"reuse={self.reuse}, backend={self.backend.name!r})")


class DensityMatrixCalculator(_DensityMatrixCalculatorBase):
    """Dense density-matrix calculator: purification or global FOE.

    ``method="purification"`` (Palser–Manolopoulos, kT = 0, gapped
    systems) or ``method="foe"`` (global Chebyshev expansion, kT > 0).
    Orthogonal models only.  Same getter surface as the other
    calculators; ``free_energy`` equals ``energy`` (purification is
    zero-temperature; the dense FOE does not expand the entropy).

    Step-to-step reuse: spectral bounds are cached across calls and
    refreshed on neighbour-list rebuilds; the FOE warm-starts its μ
    search from the last converged value.  ``reuse=False`` disables both.
    """

    def __init__(self, model, method: str = "purification", kT: float = 0.0,
                 order: int = 200, threshold: float = 0.0,
                 neighbor_method: str = "auto", skin: float = 0.5,
                 reuse: bool = True):
        if not model.orthogonal:
            raise ElectronicError(
                "density-matrix calculators support orthogonal models only"
            )
        if method not in ("purification", "foe"):
            raise ElectronicError(f"unknown density-matrix method {method!r}")
        if method == "purification" and kT != 0.0:
            raise ElectronicError(
                "purification is a zero-temperature method; drop the "
                "electronic temperature or use the FOE for kT > 0"
            )
        if method == "foe" and kT <= 0.0:
            raise ElectronicError("the FOE needs kT > 0")
        self.model = model
        self.method = method
        self.kT = float(kT)
        self.order = int(order)
        self.threshold = float(threshold)
        self.reuse = bool(reuse)
        self.timer = PhaseTimer()
        self._vlist = VerletList(rcut=model.cutoff, skin=skin,
                                 method=neighbor_method)
        self.invalidate()

    def _params(self) -> tuple:
        return (self.method, self.kT, self.order, self.threshold)

    def _reset_persistent(self) -> None:
        self._vlist.reset()
        self._bounds = None
        self._mu_prev = None

    def state_report(self) -> dict:
        """Reuse diagnostics (Verlet stats, cached bounds, warm μ)."""
        return {
            "reuse": self.reuse,
            "neighbors": self._vlist.stats(),
            "bounds_cached": self._bounds is not None,
            "mu_warm": self._mu_prev is not None,
        }

    def compute(self, atoms, forces: bool = True) -> dict:
        report = self._state.observe(atoms, params=self._params())
        cached = self._cached(report, forces)
        if cached is not None:
            return cached
        if not self.reuse or report.needs_full_reset or report.cell_changed:
            # dense spectral-bound caches have no a-posteriori guard, so a
            # cell change (which can shift the spectrum) resets them
            self._reset_persistent()
        model = self.model
        model.check_species(atoms.symbols)

        with self.timer.phase("neighbors"):
            nl = self._vlist.update(atoms)
        with self.timer.phase("hamiltonian"):
            H, _ = build_hamiltonian(atoms, model, nl)
        nelec = model.total_electrons(atoms.symbols)

        if self._bounds is None or self._vlist.last_update_rebuilt:
            with self.timer.phase("bounds"):
                if self.method == "purification":
                    self._bounds = spectral_bounds(H)
                else:
                    self._bounds = _padded_lanczos_window(H)

        with self.timer.phase("density_matrix"):
            if self.method == "purification":
                pur = purify_density_matrix(H, nelec,
                                            threshold=self.threshold,
                                            bounds=self._bounds)
                rho = pur.dense_rho_spin_summed()
                band = pur.band_energy
                extra = {"iterations": pur.iterations,
                         "idempotency_error": pur.idempotency_error}
            else:
                try:
                    foe = fermi_operator_expansion(H, nelec, self.kT,
                                                   order=self.order,
                                                   bounds=self._bounds,
                                                   mu_guess=self._mu_prev)
                except SpectralWindowError:
                    # cached window went stale between Verlet rebuilds:
                    # refresh the bounds and re-solve once
                    self._bounds = _padded_lanczos_window(H)
                    foe = fermi_operator_expansion(H, nelec, self.kT,
                                                   order=self.order,
                                                   bounds=self._bounds,
                                                   mu_guess=self._mu_prev)
                rho = foe["rho"]
                band = foe["band_energy"]
                self._mu_prev = foe["mu"]
                extra = {"fermi_level": foe["mu"], "order": foe["order"]}

        with self.timer.phase("repulsive"):
            erep, frep, vrep = repulsive_energy_forces(atoms, model, nl)

        energy = band + erep
        res = {
            "band_energy": band,
            "repulsive_energy": erep,
            "energy": energy,
            "free_energy": energy,
            "method": self.method,
            "n_orbitals": H.shape[0],
            "n_pairs": nl.n_pairs,
            **extra,
        }
        if forces:
            with self.timer.phase("forces"):
                fband, vband = band_forces(atoms, model, nl, rho)
                self._attach_forces(res, atoms, fband, frep, vband, vrep)
        return self._store(res)

    def __repr__(self) -> str:
        return (f"DensityMatrixCalculator(model={self.model.name!r}, "
                f"method={self.method!r}, kT={self.kT} eV)")

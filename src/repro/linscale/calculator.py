"""Calculators built on density matrices instead of eigen-spectra.

:class:`LinearScalingCalculator` is the O(N) production path: sparse
Hamiltonian → localization regions → FOE-in-regions → Hellmann–Feynman
forces from core density rows.  It is API-compatible with
:class:`~repro.tb.calculator.TBCalculator` (``compute`` /
``get_potential_energy`` / ``get_forces`` / ``get_stress`` …), so the MD
driver, the relaxers and the CLI run unchanged on top of it; the only
deliberate gap is anything needing an eigen-spectrum (eigenvalues,
HOMO/LUMO gap), which an O(N) method never produces.

:class:`DensityMatrixCalculator` wraps the *dense* O(N)-family kernels —
Palser–Manolopoulos purification (zero temperature) and the global
Chebyshev FOE (finite temperature) — behind the same interface, which is
what the CLI's ``--solver purification|foe`` flags dispatch to and what
the crossover benchmark compares against.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import ElectronicError, ModelError
from repro.neighbors.verlet import VerletList
from repro.tb.chebyshev import fermi_operator_expansion
from repro.tb.forces import band_forces, repulsive_energy_forces
from repro.tb.hamiltonian import build_hamiltonian
from repro.tb.purification import purify_density_matrix
from repro.units import EV_PER_A3_TO_GPA, KB
from repro.utils.timing import PhaseTimer

from repro.linscale.foe_local import solve_density_regions, sparse_band_forces
from repro.linscale.regions import extract_regions, region_statistics
from repro.linscale.sparse_hamiltonian import build_sparse_hamiltonian


class _DensityMatrixCalculatorBase:
    """Shared cache, force/stress assembly and getters.

    Subclasses implement ``_key(atoms)`` (what invalidates the cache) and
    ``compute(atoms, forces)``; everything else — the results cache, the
    virial → stress/pressure tail, and the TBCalculator-compatible getter
    surface — lives here once.
    """

    model = None
    timer: PhaseTimer

    def _key(self, atoms) -> tuple:  # pragma: no cover - overridden
        raise NotImplementedError

    def invalidate(self) -> None:
        """Drop the cached results (e.g. after mutating model parameters)."""
        self._cache_key = None
        self._results = {}

    def _cached(self, key, forces: bool) -> dict | None:
        if key == getattr(self, "_cache_key", None) and \
                (not forces or "forces" in self._results):
            return self._results
        return None

    def _store(self, key, res: dict) -> dict:
        self._cache_key = key
        self._results = res
        return res

    def _attach_forces(self, res: dict, atoms, fband, frep, vband, vrep
                       ) -> None:
        """Total forces, virial, and — for periodic cells — stress/pressure."""
        res["forces"] = fband + frep
        res["virial"] = vband + vrep
        if atoms.cell.fully_periodic:
            vol = atoms.cell.volume
            res["stress"] = res["virial"] / vol
            res["pressure"] = float(-np.trace(res["virial"]) / (3 * vol))
            res["pressure_gpa"] = res["pressure"] * EV_PER_A3_TO_GPA

    # -- convenience getters (TBCalculator-compatible) ---------------------
    def get_potential_energy(self, atoms) -> float:
        """Total energy (eV): band-structure + repulsive."""
        return self.compute(atoms, forces=False)["energy"]

    def get_free_energy(self, atoms) -> float:
        """Mermin free energy E − T·S_el (equals energy where S is not
        expanded)."""
        return self.compute(atoms, forces=False)["free_energy"]

    def get_forces(self, atoms) -> np.ndarray:
        """(N, 3) forces in eV/Å."""
        return self.compute(atoms, forces=True)["forces"]

    def get_stress(self, atoms) -> np.ndarray:
        """3×3 potential stress tensor in eV/Å³ (periodic cells only)."""
        res = self.compute(atoms, forces=True)
        if "stress" not in res:
            raise ModelError("stress requires a fully periodic cell")
        return res["stress"]

    def get_pressure(self, atoms) -> float:
        """Potential pressure −tr(virial)/3V in eV/Å³."""
        res = self.compute(atoms, forces=True)
        if "pressure" not in res:
            raise ModelError("pressure requires a fully periodic cell")
        return res["pressure"]

    def get_eigenvalues(self, atoms):
        raise ModelError(
            "density-matrix calculators never build an eigen-spectrum; use "
            "TBCalculator for eigenvalues / gaps"
        )


class LinearScalingCalculator(_DensityMatrixCalculatorBase):
    """O(N) tight-binding calculator (FOE in localization regions).

    Parameters
    ----------
    model :
        An *orthogonal* :class:`~repro.tb.models.base.TBModel`.
    kT :
        Electronic temperature in eV; must be > 0 (the Fermi operator is
        expanded, not diagonalised).  Accuracy vs the exact smeared
        diagonalisation is controlled by *r_loc* and *order* together.
    r_loc :
        Localization radius in Å (≥ ``model.cutoff``).  Defaults to
        1.5 × cutoff — a few bonding shells, the regime the paper's
        accuracy tables use.
    order :
        Chebyshev expansion order; needed order grows like
        (spectral width)/kT.
    nworkers, executor :
        Region solves are batched through the process pool
        (:func:`repro.parallel.pool.map_tasks`).
    """

    def __init__(self, model, kT: float = 0.1, r_loc: float | None = None,
                 order: int = 150, nworkers: int = 1, executor=None,
                 neighbor_method: str = "auto", skin: float = 0.5):
        if not model.orthogonal:
            raise ElectronicError(
                "LinearScalingCalculator supports orthogonal models only "
                "(no S-metric FOE)"
            )
        if kT <= 0:
            raise ElectronicError(
                "LinearScalingCalculator needs kT > 0 — the Fermi operator "
                "is expanded at finite electronic temperature"
            )
        self.model = model
        self.kT = float(kT)
        self.r_loc = float(r_loc) if r_loc is not None else 1.5 * model.cutoff
        if self.r_loc < model.cutoff:
            raise ElectronicError(
                f"r_loc = {self.r_loc} Å must be >= model cutoff "
                f"{model.cutoff} Å"
            )
        self.order = int(order)
        self.nworkers = int(nworkers)
        self.executor = executor
        self._own_pool = None
        self.timer = PhaseTimer()
        self._vlist = VerletList(rcut=model.cutoff, skin=skin,
                                 method=neighbor_method)
        self._vlist_loc = VerletList(rcut=self.r_loc, skin=skin,
                                     method=neighbor_method)
        self.invalidate()

    def _region_executor(self):
        """The executor region solves run on — user-supplied, or one pool
        kept alive for the calculator's lifetime (an MD run must not pay
        process spawn every step)."""
        if self.executor is not None:
            return self.executor
        if self.nworkers > 1 and self._own_pool is None:
            self._own_pool = ProcessPoolExecutor(max_workers=self.nworkers)
        return self._own_pool

    def close(self) -> None:
        """Shut down the calculator-owned worker pool (no-op otherwise)."""
        if self._own_pool is not None:
            self._own_pool.shutdown()
            self._own_pool = None

    def __del__(self):  # pragma: no cover - interpreter-exit ordering
        with contextlib.suppress(Exception):
            self.close()

    def _key(self, atoms) -> tuple:
        return (
            atoms.positions.tobytes(),
            atoms.cell.matrix.tobytes(),
            tuple(atoms.symbols),
            self.kT,
            self.r_loc,
            self.order,
        )

    def compute(self, atoms, forces: bool = True) -> dict:
        """Evaluate and return the full results dict.

        Keys: ``energy``, ``free_energy``, ``band_energy``,
        ``repulsive_energy``, ``fermi_level``, ``entropy``,
        ``populations``, ``charges``, ``n_regions``, ``region_stats``,
        ``order``, ``r_loc``, ``n_orbitals``, ``n_pairs`` and — with
        ``forces=True`` — ``forces``, ``virial``, ``stress`` (periodic
        cells), ``pressure``.
        """
        key = self._key(atoms)
        cached = self._cached(key, forces)
        if cached is not None:
            return cached

        model = self.model
        model.check_species(atoms.symbols)

        with self.timer.phase("neighbors"):
            nl = self._vlist.update(atoms)
            nl_loc = self._vlist_loc.update(atoms)

        with self.timer.phase("hamiltonian"):
            H, _ = build_sparse_hamiltonian(atoms, model, nl)

        with self.timer.phase("regions"):
            regions = extract_regions(atoms, model, self.r_loc, nl=nl_loc)

        with self.timer.phase("foe"):
            nelec = model.total_electrons(atoms.symbols)
            foe = solve_density_regions(
                H, regions, nelec, self.kT, order=self.order,
                nworkers=self.nworkers, executor=self._region_executor(),
                with_rho=forces)

        with self.timer.phase("repulsive"):
            erep, frep, vrep = repulsive_energy_forces(atoms, model, nl)

        z = np.array([model.n_electrons(s) for s in atoms.symbols])
        energy = foe.band_energy + erep
        res = {
            "band_energy": foe.band_energy,
            "repulsive_energy": erep,
            "energy": energy,
            "free_energy": energy - (self.kT / KB) * foe.entropy,
            "fermi_level": foe.mu,
            "entropy": foe.entropy,
            "populations": foe.populations,
            "charges": z - foe.populations,
            "n_electrons": foe.n_electrons,
            "n_regions": foe.n_regions,
            "region_stats": region_statistics(regions),
            "order": foe.order,
            "r_loc": self.r_loc,
            "spectral_bounds": foe.spectral_bounds,
            "n_orbitals": H.shape[0],
            "n_pairs": nl.n_pairs,
        }

        if forces:
            with self.timer.phase("forces"):
                fband, vband = sparse_band_forces(atoms, model, nl, foe.rho)
                self._attach_forces(res, atoms, fband, frep, vband, vrep)
        return self._store(key, res)

    def get_charges(self, atoms) -> np.ndarray:
        """Mulliken charges q_i = Z_i − population_i (|e|)."""
        return self.compute(atoms, forces=False)["charges"]

    def __repr__(self) -> str:
        return (f"LinearScalingCalculator(model={self.model.name!r}, "
                f"kT={self.kT} eV, r_loc={self.r_loc:.2f} Å, "
                f"order={self.order}, nworkers={self.nworkers})")


class DensityMatrixCalculator(_DensityMatrixCalculatorBase):
    """Dense density-matrix calculator: purification or global FOE.

    ``method="purification"`` (Palser–Manolopoulos, kT = 0, gapped
    systems) or ``method="foe"`` (global Chebyshev expansion, kT > 0).
    Orthogonal models only.  Same getter surface as the other
    calculators; ``free_energy`` equals ``energy`` (purification is
    zero-temperature; the dense FOE does not expand the entropy).
    """

    def __init__(self, model, method: str = "purification", kT: float = 0.0,
                 order: int = 200, threshold: float = 0.0,
                 neighbor_method: str = "auto", skin: float = 0.5):
        if not model.orthogonal:
            raise ElectronicError(
                "density-matrix calculators support orthogonal models only"
            )
        if method not in ("purification", "foe"):
            raise ElectronicError(f"unknown density-matrix method {method!r}")
        if method == "purification" and kT != 0.0:
            raise ElectronicError(
                "purification is a zero-temperature method; drop the "
                "electronic temperature or use the FOE for kT > 0"
            )
        if method == "foe" and kT <= 0.0:
            raise ElectronicError("the FOE needs kT > 0")
        self.model = model
        self.method = method
        self.kT = float(kT)
        self.order = int(order)
        self.threshold = float(threshold)
        self.timer = PhaseTimer()
        self._vlist = VerletList(rcut=model.cutoff, skin=skin,
                                 method=neighbor_method)
        self.invalidate()

    def _key(self, atoms) -> tuple:
        return (atoms.positions.tobytes(), atoms.cell.matrix.tobytes(),
                tuple(atoms.symbols), self.method, self.kT, self.order,
                self.threshold)

    def compute(self, atoms, forces: bool = True) -> dict:
        key = self._key(atoms)
        cached = self._cached(key, forces)
        if cached is not None:
            return cached
        model = self.model
        model.check_species(atoms.symbols)

        with self.timer.phase("neighbors"):
            nl = self._vlist.update(atoms)
        with self.timer.phase("hamiltonian"):
            H, _ = build_hamiltonian(atoms, model, nl)
        nelec = model.total_electrons(atoms.symbols)

        with self.timer.phase("density_matrix"):
            if self.method == "purification":
                pur = purify_density_matrix(H, nelec,
                                            threshold=self.threshold)
                rho = pur.dense_rho_spin_summed()
                band = pur.band_energy
                extra = {"iterations": pur.iterations,
                         "idempotency_error": pur.idempotency_error}
            else:
                foe = fermi_operator_expansion(H, nelec, self.kT,
                                               order=self.order)
                rho = foe["rho"]
                band = foe["band_energy"]
                extra = {"fermi_level": foe["mu"], "order": foe["order"]}

        with self.timer.phase("repulsive"):
            erep, frep, vrep = repulsive_energy_forces(atoms, model, nl)

        energy = band + erep
        res = {
            "band_energy": band,
            "repulsive_energy": erep,
            "energy": energy,
            "free_energy": energy,
            "method": self.method,
            "n_orbitals": H.shape[0],
            "n_pairs": nl.n_pairs,
            **extra,
        }
        if forces:
            with self.timer.phase("forces"):
                fband, vband = band_forces(atoms, model, nl, rho)
                self._attach_forces(res, atoms, fband, frep, vband, vrep)
        return self._store(key, res)

    def __repr__(self) -> str:
        return (f"DensityMatrixCalculator(model={self.model.name!r}, "
                f"method={self.method!r}, kT={self.kT} eV)")

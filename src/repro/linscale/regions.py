"""Localization regions: per-atom subgraphs of the neighbour graph.

The core idea of Goedecker & Colombo's O(N) scheme (PRL 73, 122 (1994)):
the density matrix ``ρ = f((H − μ)/kT)`` (their Eq. 1) of a gapped
system decays exponentially with distance, so the rows of ρ belonging to
atom *a* can be computed inside a *localization region* — every atom
within a radius ``r_loc`` (Å) of *a* — instead of the full system.  The
region splits into

* the **core**: atom *a* itself, whose ρ rows are kept;
* the **halo**: the surrounding atoms, present only so that the Chebyshev
  recursion sees the right environment (their rows are discarded).

Because every orbital is the core of exactly one region, summing
core-row traces over regions tiles the global trace exactly; the only
approximation is the truncation of the halo at ``r_loc``, which converges
exponentially for insulators.

Regions are *folded* subgraphs of the Γ-point supercell: membership comes
from a neighbour list at ``r_loc`` (periodic images collapse onto their
home atom), and the region Hamiltonian is the corresponding submatrix of
the sparse global H — consistent with how the dense Γ calculation folds
images, so the r_loc → ∞ limit is exactly the dense answer.

Regions are also **k-independent**: Bloch phases live in the matrix
elements of H(k), never in the bond graph, so the k-sampled engine
(:mod:`repro.linscale.kfoe`) reuses one region list (and one cached
pattern signature) across every k point — the region submatrix of a
complex H(k) is the same ``orbitals × orbitals`` slice.  In the
small-cell regime k sampling targets, the folded region typically covers
the whole cell and the halo truncation error vanishes identically; the
expansion order is then the only approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ElectronicError
from repro.neighbors.base import NeighborList, neighbor_list
from repro.tb.hamiltonian import orbital_offsets


@dataclass(frozen=True)
class LocalizationRegion:
    """One per-atom region: core atom + halo, with its orbital bookkeeping.

    Attributes
    ----------
    center :
        Global index of the core atom.
    atoms :
        Sorted global atom indices of the region (core included).
    orbitals :
        Global orbital (matrix row/column) indices of the region, ordered
        by the sorted atoms.
    core_local :
        Positions of the core atom's orbitals *within* ``orbitals``.
    """

    center: int
    atoms: np.ndarray
    orbitals: np.ndarray
    core_local: np.ndarray

    @property
    def n_atoms(self) -> int:
        return len(self.atoms)

    @property
    def n_orbitals(self) -> int:
        return len(self.orbitals)

    @property
    def halo_atoms(self) -> np.ndarray:
        """Region atoms minus the core."""
        return self.atoms[self.atoms != self.center]


def extract_regions(atoms, model, r_loc: float,
                    nl: NeighborList | None = None,
                    method: str = "auto") -> list[LocalizationRegion]:
    """Build one :class:`LocalizationRegion` per atom.

    Parameters
    ----------
    atoms :
        The structure; regions partition its orbitals (every orbital is
        the core of exactly one region).
    model :
        Tight-binding model supplying ``norb`` per species and the
        Hamiltonian ``cutoff`` (Å).
    r_loc :
        Localization radius (Å) — the halo truncation of the paper's
        localization ansatz; accuracy converges exponentially in it for
        gapped systems.  Must be ≥ ``model.cutoff`` so that every
        Hamiltonian neighbour of a core atom sits inside its region —
        otherwise core rows of ρ would miss bonded columns and the band
        energy/forces would be wrong even in the exact limit.
    nl :
        Optional pre-built neighbour list at cutoff ``r_loc`` (an MD loop
        reuses its Verlet list); built on demand otherwise.
    method :
        Neighbour-builder choice when *nl* is not given
        ("auto" / "brute" / "cell").

    Returns
    -------
    list[LocalizationRegion], one per atom, in atom order.
    """
    if r_loc < model.cutoff:
        raise ElectronicError(
            f"r_loc = {r_loc} Å must be >= the model cutoff "
            f"({model.cutoff} Å): a region must contain every Hamiltonian "
            "neighbour of its core atom"
        )
    if nl is None:
        nl = neighbor_list(atoms, r_loc, method=method)
    elif nl.rcut < r_loc - 1e-12:
        raise ElectronicError(
            f"neighbour list cutoff {nl.rcut} Å is smaller than r_loc {r_loc} Å"
        )

    symbols = atoms.symbols
    offsets, _ = orbital_offsets(symbols, model)
    norb = np.array([model.norb(s) for s in symbols], dtype=int)
    nbrs = nl.neighbors_by_atom()

    regions = []
    for a in range(len(atoms)):
        members = np.union1d(nbrs[a], [a])
        orbitals = np.concatenate(
            [offsets[t] + np.arange(norb[t]) for t in members])
        starts = np.concatenate(([0], np.cumsum(norb[members])))
        pos = int(np.searchsorted(members, a))
        core_local = np.arange(starts[pos], starts[pos + 1])
        regions.append(LocalizationRegion(
            center=a, atoms=members, orbitals=orbitals,
            core_local=core_local))
    return regions


def region_statistics(regions: list[LocalizationRegion]) -> dict:
    """Size statistics — the knobs that set the O(N) prefactor."""
    natoms = np.array([r.n_atoms for r in regions])
    norbs = np.array([r.n_orbitals for r in regions])
    return {
        "n_regions": len(regions),
        "atoms_mean": float(natoms.mean()),
        "atoms_max": int(natoms.max()),
        "orbitals_mean": float(norbs.mean()),
        "orbitals_max": int(norbs.max()),
    }
